#!/usr/bin/env bash
# CI driver: tier-1 suite plus the sanitizer lanes.
#
#   scripts/ci.sh            # all lanes (tier1, tsan, asan, faults)
#   scripts/ci.sh tier1      # plain Release build + full ctest
#   scripts/ci.sh tsan       # -DPINT_SAN=thread build + ctest -L tsan
#   scripts/ci.sh asan       # -DPINT_SAN=address build + ctest -L asan
#   scripts/ci.sh faults     # fault-injection suite (ctest -L faults) in
#                            # the plain AND the TSan builds
#
# Each lane builds into its own directory (build/, build-tsan/, build-asan/)
# so switching lanes never churns another lane's objects.  A sanitizer
# report exits the test non-zero, so a green lane means zero reports.

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
LANES=("$@")
if [ ${#LANES[@]} -eq 0 ]; then
  LANES=(tier1 tsan asan faults)
fi

build_dir() {
  local dir="$1" san="$2"
  cmake -B "$dir" -S . -DCMAKE_BUILD_TYPE=Release -DPINT_SAN="$san"
  cmake --build "$dir" -j "$JOBS"
}

run_lane() {
  local lane="$1" dir san label
  case "$lane" in
    tier1) dir=build;      san="";        label="" ;;
    tsan)  dir=build-tsan; san=thread;    label="-L tsan" ;;
    asan)  dir=build-asan; san=address;   label="-L asan" ;;
    faults)
      # The fault suite must give the same verdict with and without the
      # race detector watching the robustness machinery itself.
      echo "=== lane: faults (build dirs: build, build-tsan) ==="
      build_dir build ""
      (cd build && ctest --output-on-failure -L faults)
      build_dir build-tsan thread
      (cd build-tsan && ctest --output-on-failure -L faults)
      return
      ;;
    *) echo "unknown lane: $lane" >&2; exit 2 ;;
  esac
  echo "=== lane: $lane (build dir: $dir) ==="
  build_dir "$dir" "$san"
  # shellcheck disable=SC2086  # $label is intentionally word-split
  (cd "$dir" && ctest --output-on-failure $label)
}

for lane in "${LANES[@]}"; do
  run_lane "$lane"
done
echo "=== all lanes green ==="
