#!/usr/bin/env bash
# CI driver: tier-1 suite plus the sanitizer lanes.
#
#   scripts/ci.sh            # all lanes (tier1 ... perf, bulkapply)
#   scripts/ci.sh tier1      # plain Release build + full ctest
#   scripts/ci.sh tsan       # -DPINT_SAN=thread build + ctest -L tsan
#   scripts/ci.sh asan       # -DPINT_SAN=address build + ctest -L asan
#   scripts/ci.sh faults     # fault-injection suite (ctest -L faults) in
#                            # the plain AND the TSan builds
#   scripts/ci.sh telemetry  # telemetry suite + traced fig2 run with JSON
#                            # validation, then a -DPINT_TELEMETRY=OFF build
#                            # proving the zero-cost path still compiles
#   scripts/ci.sh perf       # perf smoke: micro_access (fails below the 3x
#                            # fast-path bar or with a dead memo cache),
#                            # emits BENCH_access.json; micro_treap
#                            # --bulk-json (fails below the 2x bulk-run
#                            # bar), emits BENCH_treap.json; micro_reach
#                            # (fails below the 2x DePa storm-qps geomean
#                            # bar), emits BENCH_reach.json; plus a tiny
#                            # fig1_overview run
#   scripts/ci.sh backend    # reachability backend matrix: full ctest with
#                            # -DPINT_REACH_BACKEND=sporder (the non-default
#                            # engine; tier1/tsan already cover depa), a
#                            # byte-for-byte race-report digest diff between
#                            # the two plain builds (ctest -L reachmatrix
#                            # with PINT_REACH_DIGEST), and ctest -L tsan in
#                            # a sporder TSan build
#   scripts/ci.sh bulkapply  # bulk-run equivalence suite (ctest -L
#                            # bulkapply) in the plain AND the TSan builds
#   scripts/ci.sh locks      # lockset matrix suite (ctest -L locks):
#                            # guarded/unguarded twin kernels through every
#                            # detector, in the plain AND the TSan builds
#   scripts/ci.sh simd       # hot-path knob suite (ctest -L simd): arena /
#                            # tier / SIMD-finalize bit-identity, in the
#                            # portable build AND a -DPINT_MARCH_NATIVE=ON
#                            # build (native vs scalar-fallback codegen)
#   scripts/ci.sh perfgate   # perf-regression gate: re-runs both micro
#                            # benches and fails on a >10% geomean
#                            # regression vs the committed BENCH_*.json, or
#                            # any enforced treap row under its bar
#                            # (scripts/perfgate.py via ctest -L perfgate)
#
# Each lane builds into its own directory (build/, build-tsan/, build-asan/,
# build-notelem/) so switching lanes never churns another lane's objects.  A
# sanitizer report exits the test non-zero, so a green lane means zero
# reports.

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
LANES=("$@")
if [ ${#LANES[@]} -eq 0 ]; then
  LANES=(tier1 tsan asan faults telemetry perf bulkapply locks simd backend
         perfgate)
fi

build_dir() {
  local dir="$1" san="$2"
  cmake -B "$dir" -S . -DCMAKE_BUILD_TYPE=Release -DPINT_SAN="$san"
  cmake --build "$dir" -j "$JOBS"
}

run_lane() {
  local lane="$1" dir san label
  case "$lane" in
    tier1) dir=build;      san="";        label="" ;;
    tsan)  dir=build-tsan; san=thread;    label="-L tsan" ;;
    asan)  dir=build-asan; san=address;   label="-L asan" ;;
    faults)
      # The fault suite must give the same verdict with and without the
      # race detector watching the robustness machinery itself.
      echo "=== lane: faults (build dirs: build, build-tsan) ==="
      build_dir build ""
      (cd build && ctest --output-on-failure -L faults)
      build_dir build-tsan thread
      (cd build-tsan && ctest --output-on-failure -L faults)
      return
      ;;
    bulkapply)
      # Bit-identical run-API equivalence must hold under TSan too: the
      # batched lane consumption defers the RECYCLE decrement, so the TSan
      # pass is what certifies the reordered release sequence.
      echo "=== lane: bulkapply (build dirs: build, build-tsan) ==="
      build_dir build ""
      (cd build && ctest --output-on-failure -L bulkapply)
      build_dir build-tsan thread
      (cd build-tsan && ctest --output-on-failure -L bulkapply)
      return
      ;;
    locks)
      # Lock-aware detection must hold under TSan too: the lockset table's
      # id->set chunk publication and the intersects() pair memo are read
      # lock-free from the history lanes, and TSan is what certifies those
      # release/acquire pairs.
      echo "=== lane: locks (build dirs: build, build-tsan) ==="
      build_dir build ""
      (cd build && ctest --output-on-failure -L locks)
      build_dir build-tsan thread
      (cd build-tsan && ctest --output-on-failure -L locks)
      return
      ;;
    simd)
      # The vectorized finalize must be bit-identical to the scalar merge
      # under BOTH codegen flavors: the portable default build (runtime AVX2
      # dispatch only) and a -march=native build (the compiler may also
      # auto-vectorize the scalar twin - the knob matrix still has to agree).
      echo "=== lane: simd (build dirs: build, build-native) ==="
      build_dir build ""
      (cd build && ctest --output-on-failure -L simd)
      cmake -B build-native -S . -DCMAKE_BUILD_TYPE=Release \
        -DPINT_MARCH_NATIVE=ON
      cmake --build build-native -j "$JOBS"
      (cd build-native && ctest --output-on-failure -L simd)
      return
      ;;
    telemetry)
      echo "=== lane: telemetry (build dirs: build, build-notelem) ==="
      build_dir build ""
      (cd build && ctest --output-on-failure -L telemetry)
      # End-to-end: a traced figure run must emit machine-readable JSON.
      local tdir
      tdir="$(mktemp -d)"
      ./build/bench/fig2_breakdown --kernel mmul --scale 0.5 \
        --trace-out="$tdir/trace.json" --stats-json="$tdir/stats.json"
      local nfiles=0
      for f in "$tdir"/*.json; do
        python3 -m json.tool "$f" > /dev/null
        nfiles=$((nfiles + 1))
      done
      echo "validated $nfiles telemetry JSON file(s)"
      [ "$nfiles" -ge 2 ]  # at least one trace + one metrics file
      rm -rf "$tdir"
      # The zero-cost contract: everything still builds and the telemetry
      # suite's OFF-branch assertions pass with the layer compiled out.
      cmake -B build-notelem -S . -DCMAKE_BUILD_TYPE=Release \
        -DPINT_TELEMETRY=OFF
      cmake --build build-notelem -j "$JOBS"
      (cd build-notelem && ctest --output-on-failure -L telemetry)
      return
      ;;
    perf)
      echo "=== lane: perf (build dir: build) ==="
      build_dir build ""
      # micro_access enforces the access-path acceptance bars itself: exits
      # non-zero if the cursor fast path is under 3x the slow route or no
      # kernel shows memo-cache hits.  The JSON it emits is the committed
      # BENCH_access.json (ns/access, hit rates, geo-mean overhead).
      ./build/bench/micro_access --json BENCH_access.json
      python3 -m json.tool BENCH_access.json > /dev/null
      echo "validated BENCH_access.json"
      # micro_treap --bulk-json enforces the bulk sorted-run bar itself:
      # exits non-zero if the run API is under 2x the per-record loop on the
      # disjoint or adjacent writer workload, or if the two paths diverge.
      ./build/bench/micro_treap --bulk-json BENCH_treap.json
      python3 -m json.tool BENCH_treap.json > /dev/null
      echo "validated BENCH_treap.json"
      # micro_reach enforces the reachability storm bar itself: exits
      # non-zero unless DePa's unmemoized precedes() rate averages >= 2x
      # SpOrder's (geomean over the 16-thread storm schedules, against a
      # pre-grown 2M-strand structure).  The JSON it emits is the committed
      # BENCH_reach.json.
      ./build/bench/micro_reach --json BENCH_reach.json
      python3 -m json.tool BENCH_reach.json > /dev/null
      echo "validated BENCH_reach.json"
      # Smoke the end-to-end overhead figure at a tiny scale: catches a
      # detector that silently stopped taking the fast path in the full
      # harness (the run aborts on verification failure or false races).
      ./build/bench/fig1_overview --kernel mmul --scale 0.25 --reps 1
      return
      ;;
    backend)
      # The seam contract (reach/engine.hpp) must hold for BOTH engines at
      # all times.  tier1/tsan exercise the default backend (depa); this
      # lane builds the sporder twin, runs the full suite against it, and
      # certifies the headline cross-backend property: byte-identical race
      # reports on the reachmatrix suite, plain and under TSan.
      echo "=== lane: backend (build dirs: build, build-reach-sporder," \
           "build-reach-sporder-tsan) ==="
      build_dir build ""
      cmake -B build-reach-sporder -S . -DCMAKE_BUILD_TYPE=Release \
        -DPINT_SAN="" -DPINT_REACH_BACKEND=sporder
      cmake --build build-reach-sporder -j "$JOBS"
      (cd build-reach-sporder && ctest --output-on-failure)
      # Race-report digest diff: the reachmatrix tests append one canonical
      # line per detector run when PINT_REACH_DIGEST is set; the two
      # backends must produce byte-identical files.
      local ddir
      ddir="$(mktemp -d)"
      (cd build && PINT_REACH_DIGEST="$ddir/depa.txt" \
        ctest --output-on-failure -L reachmatrix)
      (cd build-reach-sporder && PINT_REACH_DIGEST="$ddir/sporder.txt" \
        ctest --output-on-failure -L reachmatrix)
      diff "$ddir/depa.txt" "$ddir/sporder.txt"
      echo "race-report digests bit-identical across backends" \
           "($(wc -l < "$ddir/depa.txt") detector runs)"
      rm -rf "$ddir"
      # The sporder engine's seqlock protocol needs its own TSan
      # certification (the tsan lane's build is depa).
      cmake -B build-reach-sporder-tsan -S . -DCMAKE_BUILD_TYPE=Release \
        -DPINT_SAN=thread -DPINT_REACH_BACKEND=sporder
      cmake --build build-reach-sporder-tsan -j "$JOBS"
      (cd build-reach-sporder-tsan && ctest --output-on-failure -L tsan)
      return
      ;;
    perfgate)
      echo "=== lane: perfgate (build dir: build) ==="
      cmake -B build -S . -DCMAKE_BUILD_TYPE=Release -DPINT_SAN="" \
        -DPINT_PERFGATE=ON
      cmake --build build -j "$JOBS"
      (cd build && ctest --output-on-failure -L perfgate)
      return
      ;;
    *) echo "unknown lane: $lane" >&2; exit 2 ;;
  esac
  echo "=== lane: $lane (build dir: $dir) ==="
  build_dir "$dir" "$san"
  # shellcheck disable=SC2086  # $label is intentionally word-split
  (cd "$dir" && ctest --output-on-failure $label)
}

for lane in "${LANES[@]}"; do
  run_lane "$lane"
done
echo "=== all lanes green ==="
