#!/usr/bin/env bash
# CI driver: tier-1 suite plus the sanitizer lanes.
#
#   scripts/ci.sh            # all three lanes (tier1, tsan, asan)
#   scripts/ci.sh tier1      # plain Release build + full ctest
#   scripts/ci.sh tsan       # -DPINT_SAN=thread build + ctest -L tsan
#   scripts/ci.sh asan       # -DPINT_SAN=address build + ctest -L asan
#
# Each lane builds into its own directory (build/, build-tsan/, build-asan/)
# so switching lanes never churns another lane's objects.  A sanitizer
# report exits the test non-zero, so a green lane means zero reports.

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
LANES=("$@")
if [ ${#LANES[@]} -eq 0 ]; then
  LANES=(tier1 tsan asan)
fi

run_lane() {
  local lane="$1" dir san label
  case "$lane" in
    tier1) dir=build;      san="";        label="" ;;
    tsan)  dir=build-tsan; san=thread;    label="-L tsan" ;;
    asan)  dir=build-asan; san=address;   label="-L asan" ;;
    *) echo "unknown lane: $lane" >&2; exit 2 ;;
  esac
  echo "=== lane: $lane (build dir: $dir) ==="
  cmake -B "$dir" -S . -DCMAKE_BUILD_TYPE=Release -DPINT_SAN="$san"
  cmake --build "$dir" -j "$JOBS"
  # shellcheck disable=SC2086  # $label is intentionally word-split
  (cd "$dir" && ctest --output-on-failure $label)
}

for lane in "${LANES[@]}"; do
  run_lane "$lane"
done
echo "=== all lanes green ==="
