#!/usr/bin/env python3
"""Perf-regression gate over the committed micro-bench snapshots.

Runs (or is given) fresh bench/micro_access and bench/micro_treap JSONs and
compares them against the committed BENCH_access.json / BENCH_treap.json
(DESIGN.md section 11.4).  Fails when:

  * the access lane's geomean detection overhead regressed by more than
    --tolerance (default 10%) against the committed snapshot, compared on
    "geomean_overhead_3kernel" - the {mmul, heat, sort} subset older
    snapshots measured - so the gate compares like with like across the
    switch to the seven-kernel sweep (falls back to "geomean_overhead"
    when a snapshot predates the split);
  * any treap row marked "enforced" in the committed snapshot has a fresh
    per-record speedup below the committed "speedup_bar".

The in-binary acceptance bars (cursor >= 3x, sort cursor rate > 0.5, heat
memo rate > 0.5, enforced treap rows >= bar on their own fresh numbers)
already make the benches themselves exit non-zero; this script adds only
the against-the-committed-baseline comparison.

Usage:
  scripts/perfgate.py --bench-dir build/bench             # run benches
  scripts/perfgate.py --fresh-access a.json --fresh-treap t.json
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def geomean_key(snap):
    """The overhead figure comparable across snapshot generations."""
    if "geomean_overhead_3kernel" in snap:
        return snap["geomean_overhead_3kernel"], "geomean_overhead_3kernel"
    return snap["geomean_overhead"], "geomean_overhead"


def gate_access(baseline, fresh, tolerance):
    base, bkey = geomean_key(baseline)
    cur, fkey = geomean_key(fresh)
    ratio = cur / base if base > 0 else float("inf")
    line = (f"access geomean overhead: committed {base:.3f} ({bkey}) vs "
            f"fresh {cur:.3f} ({fkey}) -> ratio {ratio:.3f}")
    if ratio > 1.0 + tolerance:
        return [f"FAIL {line} exceeds 1 + {tolerance:.2f}"]
    print(f"ok   {line}")
    return []


def gate_treap(baseline, fresh):
    bar = baseline.get("speedup_bar", 2.0)
    fresh_rows = {r["name"]: r for r in fresh["rows"]}
    failures = []
    for row in baseline["rows"]:
        if not row.get("enforced", False):
            continue
        name = row["name"]
        fr = fresh_rows.get(name)
        if fr is None:
            failures.append(f"FAIL treap row '{name}' missing from fresh run")
            continue
        line = (f"treap {name}: fresh speedup {fr['speedup']:.2f} "
                f"(committed {row['speedup']:.2f}, bar {bar:.2f})")
        if fr["speedup"] < bar:
            failures.append(f"FAIL {line}")
        else:
            print(f"ok   {line}")
    return failures


def run_bench(bench_dir, exe, args, out):
    cmd = [os.path.join(bench_dir, exe)] + args + [out]
    print("+ " + " ".join(cmd), flush=True)
    subprocess.run(cmd, check=True, cwd=REPO, stdout=subprocess.DEVNULL)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--bench-dir",
                    help="directory holding micro_access/micro_treap; when "
                         "given, the benches are run into a temp dir")
    ap.add_argument("--fresh-access", help="pre-made fresh micro_access JSON")
    ap.add_argument("--fresh-treap", help="pre-made fresh micro_treap JSON")
    ap.add_argument("--baseline-access",
                    default=os.path.join(REPO, "BENCH_access.json"))
    ap.add_argument("--baseline-treap",
                    default=os.path.join(REPO, "BENCH_treap.json"))
    ap.add_argument("--tolerance", type=float, default=0.10,
                    help="allowed fractional geomean regression (default .10)")
    opts = ap.parse_args()

    tmp = None
    if opts.bench_dir:
        tmp = tempfile.mkdtemp(prefix="perfgate.")
        opts.fresh_access = os.path.join(tmp, "access.json")
        opts.fresh_treap = os.path.join(tmp, "treap.json")
        run_bench(opts.bench_dir, "micro_access", ["--json"],
                  opts.fresh_access)
        run_bench(opts.bench_dir, "micro_treap", ["--bulk-json"],
                  opts.fresh_treap)
    if not opts.fresh_access or not opts.fresh_treap:
        ap.error("need --bench-dir or both --fresh-access and --fresh-treap")

    with open(opts.baseline_access) as f:
        base_access = json.load(f)
    with open(opts.fresh_access) as f:
        fresh_access = json.load(f)
    with open(opts.baseline_treap) as f:
        base_treap = json.load(f)
    with open(opts.fresh_treap) as f:
        fresh_treap = json.load(f)

    failures = gate_access(base_access, fresh_access, opts.tolerance)
    failures += gate_treap(base_treap, fresh_treap)
    for line in failures:
        print(line, file=sys.stderr)
    if failures:
        sys.exit(1)
    print("perfgate: no regression against committed baselines")


if __name__ == "__main__":
    main()
