#!/usr/bin/env python3
"""Perf-regression gate over the committed micro-bench snapshots.

Runs (or is given) fresh bench/micro_access and bench/micro_treap JSONs and
compares them against the committed BENCH_access.json / BENCH_treap.json
(DESIGN.md section 11.4).  Fails when:

  * the access lane's geomean detection overhead regressed by more than
    --tolerance (default 10%) against the committed snapshot, compared on
    the full seven-kernel "geomean_overhead" whenever BOTH snapshots carry
    it (the enforced key since the hot-path work of DESIGN.md section 13;
    kernels outside the old {mmul, heat, sort} subset regressing now trips
    the gate).  Falls back to "geomean_overhead_3kernel" only when one
    side predates the seven-kernel sweep;
  * any single kernel's overhead regressed by more than --kernel-tolerance
    (default 10%; looser than the geomean bar because a single kernel's
    ratio is noisier than the geomean on a shared host) against its
    committed row;
  * any treap row marked "enforced" in the committed snapshot has a fresh
    per-record speedup below the committed "speedup_bar".

The in-binary acceptance bars (cursor >= 3x, sort cursor rate > 0.5, heat
memo rate > 0.5, enforced treap rows >= bar on their own fresh numbers)
already make the benches themselves exit non-zero; this script adds only
the against-the-committed-baseline comparison.

Usage:
  scripts/perfgate.py --bench-dir build/bench             # run benches
  scripts/perfgate.py --fresh-access a.json --fresh-treap t.json
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def geomean_key(baseline, fresh):
    """The widest overhead figure BOTH snapshots carry: the seven-kernel
    geomean when available on both sides, the 3-kernel subset otherwise."""
    if "geomean_overhead" in baseline and "geomean_overhead" in fresh:
        return "geomean_overhead"
    return "geomean_overhead_3kernel"


def gate_access(baseline, fresh, tolerance, kernel_tolerance):
    key = geomean_key(baseline, fresh)
    base, cur = baseline[key], fresh[key]
    ratio = cur / base if base > 0 else float("inf")
    line = (f"access geomean overhead: committed {base:.3f} vs "
            f"fresh {cur:.3f} ({key}) -> ratio {ratio:.3f}")
    failures = []
    if ratio > 1.0 + tolerance:
        failures.append(f"FAIL {line} exceeds 1 + {tolerance:.2f}")
    else:
        print(f"ok   {line}")
    # Per-kernel floor: the geomean can hide one kernel paying for another.
    fresh_rows = {r["name"]: r for r in fresh.get("kernels", [])}
    for row in baseline.get("kernels", []):
        fr = fresh_rows.get(row["name"])
        if fr is None:
            failures.append(
                f"FAIL access kernel '{row['name']}' missing from fresh run")
            continue
        kratio = (fr["overhead"] / row["overhead"]
                  if row["overhead"] > 0 else float("inf"))
        kline = (f"access {row['name']}: committed {row['overhead']:.2f}x vs "
                 f"fresh {fr['overhead']:.2f}x -> ratio {kratio:.3f}")
        if kratio > 1.0 + kernel_tolerance:
            failures.append(
                f"FAIL {kline} exceeds 1 + {kernel_tolerance:.2f}")
        else:
            print(f"ok   {kline}")
    return failures


def gate_treap(baseline, fresh):
    bar = baseline.get("speedup_bar", 2.0)
    fresh_rows = {r["name"]: r for r in fresh["rows"]}
    failures = []
    for row in baseline["rows"]:
        if not row.get("enforced", False):
            continue
        name = row["name"]
        fr = fresh_rows.get(name)
        if fr is None:
            failures.append(f"FAIL treap row '{name}' missing from fresh run")
            continue
        line = (f"treap {name}: fresh speedup {fr['speedup']:.2f} "
                f"(committed {row['speedup']:.2f}, bar {bar:.2f})")
        if fr["speedup"] < bar:
            failures.append(f"FAIL {line}")
        else:
            print(f"ok   {line}")
    return failures


def run_bench(bench_dir, exe, args, out):
    cmd = [os.path.join(bench_dir, exe)] + args + [out]
    print("+ " + " ".join(cmd), flush=True)
    subprocess.run(cmd, check=True, cwd=REPO, stdout=subprocess.DEVNULL)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--bench-dir",
                    help="directory holding micro_access/micro_treap; when "
                         "given, the benches are run into a temp dir")
    ap.add_argument("--fresh-access", help="pre-made fresh micro_access JSON")
    ap.add_argument("--fresh-treap", help="pre-made fresh micro_treap JSON")
    ap.add_argument("--baseline-access",
                    default=os.path.join(REPO, "BENCH_access.json"))
    ap.add_argument("--baseline-treap",
                    default=os.path.join(REPO, "BENCH_treap.json"))
    ap.add_argument("--tolerance", type=float, default=0.10,
                    help="allowed fractional geomean regression (default .10)")
    ap.add_argument("--kernel-tolerance", type=float, default=0.10,
                    help="allowed fractional per-kernel overhead regression "
                         "(default .10)")
    opts = ap.parse_args()

    tmp = None
    if opts.bench_dir:
        tmp = tempfile.mkdtemp(prefix="perfgate.")
        opts.fresh_access = os.path.join(tmp, "access.json")
        opts.fresh_treap = os.path.join(tmp, "treap.json")
        run_bench(opts.bench_dir, "micro_access", ["--json"],
                  opts.fresh_access)
        run_bench(opts.bench_dir, "micro_treap", ["--bulk-json"],
                  opts.fresh_treap)
    if not opts.fresh_access or not opts.fresh_treap:
        ap.error("need --bench-dir or both --fresh-access and --fresh-treap")

    with open(opts.baseline_access) as f:
        base_access = json.load(f)
    with open(opts.fresh_access) as f:
        fresh_access = json.load(f)
    with open(opts.baseline_treap) as f:
        base_treap = json.load(f)
    with open(opts.fresh_treap) as f:
        fresh_treap = json.load(f)

    failures = gate_access(base_access, fresh_access, opts.tolerance,
                           opts.kernel_tolerance)
    failures += gate_treap(base_treap, fresh_treap)
    for line in failures:
        print(line, file=sys.stderr)
    if failures:
        sys.exit(1)
    print("perfgate: no regression against committed baselines")


if __name__ == "__main__":
    main()
