#!/usr/bin/env python3
"""Perf-regression gate over the committed micro-bench snapshots.

Runs (or is given) fresh bench/micro_access and bench/micro_treap JSONs and
compares them against the committed BENCH_access.json / BENCH_treap.json
(DESIGN.md section 11.4).  Fails when:

  * the access lane's geomean detection overhead regressed by more than
    --tolerance (default 10%) against the committed snapshot, compared on
    the full seven-kernel "geomean_overhead" whenever BOTH snapshots carry
    it (the enforced key since the hot-path work of DESIGN.md section 13;
    kernels outside the old {mmul, heat, sort} subset regressing now trips
    the gate).  Falls back to "geomean_overhead_3kernel" only when one
    side predates the seven-kernel sweep;
  * any single kernel's overhead regressed by more than --kernel-tolerance
    (default 10%; looser than the geomean bar because a single kernel's
    ratio is noisier than the geomean on a shared host) against its
    committed row;
  * any treap row marked "enforced" in the committed snapshot has a fresh
    per-record speedup below the committed "speedup_bar";
  * the strong-scaling efficiency at max workers (BENCH_fig3.json, emitted
    by fig3_strong_scaling --json) regressed by more than
    --scaling-tolerance (default 10%) on the kernel geomean against the
    committed snapshot, or any single kernel fell through its loose floor -
    this is the key that keeps the next PR from quietly reintroducing the
    reachability scaling cliff.  The fresh fig3 run is replayed at the
    committed snapshot's scale and kernel list so the comparison is
    apples-to-apples, and a backend mismatch between the snapshots is a
    hard failure (efficiencies of different oracles are not comparable).

The in-binary acceptance bars (cursor >= 3x, sort cursor rate > 0.5, heat
memo rate > 0.5, enforced treap rows >= bar on their own fresh numbers)
already make the benches themselves exit non-zero; this script adds only
the against-the-committed-baseline comparison.

Usage:
  scripts/perfgate.py --bench-dir build/bench             # run benches
  scripts/perfgate.py --fresh-access a.json --fresh-treap t.json
"""

import argparse
import json
import math
import os
import subprocess
import sys
import tempfile

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def geomean_key(baseline, fresh):
    """The widest overhead figure BOTH snapshots carry: the seven-kernel
    geomean when available on both sides, the 3-kernel subset otherwise."""
    if "geomean_overhead" in baseline and "geomean_overhead" in fresh:
        return "geomean_overhead"
    return "geomean_overhead_3kernel"


def gate_access(baseline, fresh, tolerance, kernel_tolerance):
    key = geomean_key(baseline, fresh)
    base, cur = baseline[key], fresh[key]
    ratio = cur / base if base > 0 else float("inf")
    line = (f"access geomean overhead: committed {base:.3f} vs "
            f"fresh {cur:.3f} ({key}) -> ratio {ratio:.3f}")
    failures = []
    if ratio > 1.0 + tolerance:
        failures.append(f"FAIL {line} exceeds 1 + {tolerance:.2f}")
    else:
        print(f"ok   {line}")
    # Per-kernel floor: the geomean can hide one kernel paying for another.
    fresh_rows = {r["name"]: r for r in fresh.get("kernels", [])}
    for row in baseline.get("kernels", []):
        fr = fresh_rows.get(row["name"])
        if fr is None:
            failures.append(
                f"FAIL access kernel '{row['name']}' missing from fresh run")
            continue
        kratio = (fr["overhead"] / row["overhead"]
                  if row["overhead"] > 0 else float("inf"))
        kline = (f"access {row['name']}: committed {row['overhead']:.2f}x vs "
                 f"fresh {fr['overhead']:.2f}x -> ratio {kratio:.3f}")
        if kratio > 1.0 + kernel_tolerance:
            failures.append(
                f"FAIL {kline} exceeds 1 + {kernel_tolerance:.2f}")
        else:
            print(f"ok   {kline}")
    return failures


def gate_treap(baseline, fresh):
    bar = baseline.get("speedup_bar", 2.0)
    fresh_rows = {r["name"]: r for r in fresh["rows"]}
    failures = []
    for row in baseline["rows"]:
        if not row.get("enforced", False):
            continue
        name = row["name"]
        fr = fresh_rows.get(name)
        if fr is None:
            failures.append(f"FAIL treap row '{name}' missing from fresh run")
            continue
        line = (f"treap {name}: fresh speedup {fr['speedup']:.2f} "
                f"(committed {row['speedup']:.2f}, bar {bar:.2f})")
        if fr["speedup"] < bar:
            failures.append(f"FAIL {line}")
        else:
            print(f"ok   {line}")
    return failures


def gate_fig3(baseline, fresh, scaling_tolerance):
    """Scaling key: per-kernel efficiency@max is a ratio of two noisy cell
    times (measured single-run spread on the shared 1-core host is ~+/-15%),
    so the enforced --scaling-tolerance bound applies to the GEOMEAN of the
    per-kernel efficiency ratios; each kernel also gets a loose 25% floor -
    wide enough for cell noise, far below the 10-100x collapse an actual
    reachability cliff reintroduction shows (DESIGN.md section 14.4)."""
    kernel_floor = 0.25
    failures = []
    if baseline.get("backend") != fresh.get("backend"):
        return [f"FAIL fig3 backend mismatch: committed "
                f"'{baseline.get('backend')}' vs fresh "
                f"'{fresh.get('backend')}' (re-commit BENCH_fig3.json for "
                f"the active PINT_REACH_BACKEND)"]
    fresh_rows = {k["name"]: k for k in fresh.get("kernels", [])}
    log_sum, n = 0.0, 0
    for row in baseline.get("kernels", []):
        fr = fresh_rows.get(row["name"])
        if fr is None:
            failures.append(
                f"FAIL fig3 kernel '{row['name']}' missing from fresh run")
            continue
        base, cur = row["efficiency_at_max"], fr["efficiency_at_max"]
        ratio = cur / base if base > 0 else float("inf")
        log_sum += math.log(ratio)
        n += 1
        line = (f"fig3 {row['name']}: efficiency@max committed {base:.4f} "
                f"vs fresh {cur:.4f} -> ratio {ratio:.3f}")
        if ratio < 1.0 - kernel_floor:
            failures.append(
                f"FAIL {line} below the per-kernel floor 1 - {kernel_floor}")
        else:
            print(f"ok   {line}")
    if n:
        geo = math.exp(log_sum / n)
        gline = f"fig3 efficiency@max geomean ratio {geo:.3f}"
        if geo < 1.0 - scaling_tolerance:
            failures.append(
                f"FAIL {gline} regressed beyond 1 - {scaling_tolerance:.2f}")
        else:
            print(f"ok   {gline}")
    return failures


def run_bench(bench_dir, exe, args, out):
    cmd = [os.path.join(bench_dir, exe)] + args + [out]
    print("+ " + " ".join(cmd), flush=True)
    subprocess.run(cmd, check=True, cwd=REPO, stdout=subprocess.DEVNULL)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--bench-dir",
                    help="directory holding micro_access/micro_treap; when "
                         "given, the benches are run into a temp dir")
    ap.add_argument("--fresh-access", help="pre-made fresh micro_access JSON")
    ap.add_argument("--fresh-treap", help="pre-made fresh micro_treap JSON")
    ap.add_argument("--fresh-fig3",
                    help="pre-made fresh fig3_strong_scaling JSON")
    ap.add_argument("--baseline-access",
                    default=os.path.join(REPO, "BENCH_access.json"))
    ap.add_argument("--baseline-treap",
                    default=os.path.join(REPO, "BENCH_treap.json"))
    ap.add_argument("--baseline-fig3",
                    default=os.path.join(REPO, "BENCH_fig3.json"))
    ap.add_argument("--tolerance", type=float, default=0.10,
                    help="allowed fractional geomean regression (default .10)")
    ap.add_argument("--kernel-tolerance", type=float, default=0.10,
                    help="allowed fractional per-kernel overhead regression "
                         "(default .10)")
    ap.add_argument("--scaling-tolerance", type=float, default=0.10,
                    help="allowed fractional efficiency-at-max-workers "
                         "regression on the fig3 key (default .10)")
    opts = ap.parse_args()

    with open(opts.baseline_fig3) as f:
        base_fig3 = json.load(f)

    tmp = None
    if opts.bench_dir:
        tmp = tempfile.mkdtemp(prefix="perfgate.")
        opts.fresh_access = os.path.join(tmp, "access.json")
        opts.fresh_treap = os.path.join(tmp, "treap.json")
        run_bench(opts.bench_dir, "micro_access", ["--json"],
                  opts.fresh_access)
        run_bench(opts.bench_dir, "micro_treap", ["--bulk-json"],
                  opts.fresh_treap)
        # Replay the committed snapshot's exact sweep (scale + kernels) so
        # the efficiency comparison is apples-to-apples.
        opts.fresh_fig3 = os.path.join(tmp, "fig3.json")
        fig3_args = ["--scale", str(base_fig3.get("scale", 8)),
                     "--reps", "3"]
        for k in base_fig3.get("kernels", []):
            fig3_args += ["--kernel", k["name"]]
        fig3_args += ["--json"]
        run_bench(opts.bench_dir, "fig3_strong_scaling", fig3_args,
                  opts.fresh_fig3)
    if not opts.fresh_access or not opts.fresh_treap or not opts.fresh_fig3:
        ap.error("need --bench-dir or all of --fresh-access, --fresh-treap "
                 "and --fresh-fig3")

    with open(opts.baseline_access) as f:
        base_access = json.load(f)
    with open(opts.fresh_access) as f:
        fresh_access = json.load(f)
    with open(opts.baseline_treap) as f:
        base_treap = json.load(f)
    with open(opts.fresh_treap) as f:
        fresh_treap = json.load(f)
    with open(opts.fresh_fig3) as f:
        fresh_fig3 = json.load(f)

    failures = gate_access(base_access, fresh_access, opts.tolerance,
                           opts.kernel_tolerance)
    failures += gate_treap(base_treap, fresh_treap)
    failures += gate_fig3(base_fig3, fresh_fig3, opts.scaling_tolerance)
    for line in failures:
        print(line, file=sys.stderr)
    if failures:
        sys.exit(1)
    print("perfgate: no regression against committed baselines")


if __name__ == "__main__":
    main()
