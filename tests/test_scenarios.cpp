// Scenario battery run under EVERY detector configuration (TEST_P): the
// targeted behaviours from the paper - conflicting parallel accesses of each
// kind, series edges through sync, left/right-most reader retention,
// stack-frame reuse (§III-F), and deferred heap frees (§III-F).

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common.hpp"
#include "detect/instrument.hpp"

using namespace pint;
using test::Det;
using test::DetRun;
using test::run_under;

class Scenario : public ::testing::TestWithParam<Det> {
 protected:
  DetRun run(const std::function<void()>& body) {
    return run_under(GetParam(), body);
  }
};

TEST_P(Scenario, WriteWriteRaceDetected) {
  std::vector<long> x(8, 0);
  auto r = run([&] {
    rt::SpawnScope sc;
    sc.spawn([&] { record_write(&x[0], 8); });
    record_write(&x[0], 8);
    sc.sync();
  });
  EXPECT_TRUE(r.any_race);
}

TEST_P(Scenario, ReadWriteRaceDetected) {
  std::vector<long> x(8, 0);
  auto r = run([&] {
    rt::SpawnScope sc;
    sc.spawn([&] { record_read(&x[0], 8); });
    record_write(&x[0], 8);
    sc.sync();
  });
  EXPECT_TRUE(r.any_race);
}

TEST_P(Scenario, WriteReadRaceDetected) {
  std::vector<long> x(8, 0);
  auto r = run([&] {
    rt::SpawnScope sc;
    sc.spawn([&] { record_write(&x[0], 8); });
    record_read(&x[0], 8);
    sc.sync();
  });
  EXPECT_TRUE(r.any_race);
}

TEST_P(Scenario, ReadReadIsNotARace) {
  std::vector<long> x(8, 0);
  auto r = run([&] {
    rt::SpawnScope sc;
    sc.spawn([&] { record_read(&x[0], 64); });
    sc.spawn([&] { record_read(&x[0], 64); });
    record_read(&x[0], 64);
    sc.sync();
  });
  EXPECT_FALSE(r.any_race);
}

TEST_P(Scenario, SyncCreatesSeriesEdge) {
  std::vector<long> x(8, 0);
  auto r = run([&] {
    rt::SpawnScope sc;
    sc.spawn([&] { record_write(&x[0], 8); });
    sc.sync();
    record_write(&x[0], 8);  // strictly after the child
    record_read(&x[0], 8);
  });
  EXPECT_FALSE(r.any_race);
}

TEST_P(Scenario, DisjointIntervalsDoNotRace) {
  std::vector<long> x(64, 0);
  auto r = run([&] {
    rt::SpawnScope sc;
    sc.spawn([&] { record_write(&x[0], 32 * 8); });
    record_write(&x[32], 32 * 8);
    sc.sync();
  });
  EXPECT_FALSE(r.any_race);
}

TEST_P(Scenario, PartialOverlapRaces) {
  std::vector<long> x(64, 0);
  auto r = run([&] {
    rt::SpawnScope sc;
    sc.spawn([&] { record_write(&x[0], 33 * 8); });  // one element too far
    record_write(&x[32], 32 * 8);
    sc.sync();
  });
  EXPECT_TRUE(r.any_race);
}

TEST_P(Scenario, SiblingSubtreesRace) {
  std::vector<long> x(8, 0);
  auto r = run([&] {
    rt::SpawnScope sc;
    sc.spawn([&] {
      rt::SpawnScope inner;
      inner.spawn([&] { record_write(&x[0], 8); });
      inner.sync();
    });
    sc.spawn([&] {
      rt::SpawnScope inner;
      inner.spawn([&] { record_read(&x[0], 8); });
      inner.sync();
    });
    sc.sync();
  });
  EXPECT_TRUE(r.any_race);
}

TEST_P(Scenario, NestedSyncShieldsFromSibling) {
  // Child A's subtree fully syncs internally; sibling B runs after A was
  // spawned but the accesses are parallel -> race. Then a third access after
  // the OUTER sync must not race.
  std::vector<long> x(8, 0), y(8, 0);
  auto r = run([&] {
    rt::SpawnScope sc;
    sc.spawn([&] { record_write(&y[0], 8); });
    sc.sync();
    record_read(&y[0], 8);  // in series: fine
    rt::SpawnScope sc2;
    sc2.spawn([&] { record_write(&x[0], 8); });
    sc2.sync();
    record_write(&x[0], 8);  // in series: fine
  });
  EXPECT_FALSE(r.any_race);
}

TEST_P(Scenario, ThreeParallelReadersThenWriterRaces) {
  // The 2-reader (left-most/right-most) summary must still catch a writer
  // that races with the MIDDLE reader only... by SP structure, racing with
  // the middle implies racing with an extreme, which is what the lemma
  // guarantees; here all three are in one block so all race.
  std::vector<long> x(8, 0);
  auto r = run([&] {
    rt::SpawnScope sc;
    sc.spawn([&] { record_read(&x[0], 8); });
    sc.spawn([&] { record_read(&x[0], 8); });
    sc.spawn([&] { record_read(&x[0], 8); });
    record_write(&x[0], 8);
    sc.sync();
  });
  EXPECT_TRUE(r.any_race);
}

TEST_P(Scenario, LaterSerialReaderReplacesExtremes) {
  // Paper §II: if u, v are the extreme parallel readers and w reads after
  // both (in series), w replaces them. A writer parallel to w (but after
  // u/v's sync) must still race.
  std::vector<long> x(8, 0);
  auto r = run([&] {
    {
      rt::SpawnScope sc;
      sc.spawn([&] { record_read(&x[0], 8); });
      sc.spawn([&] { record_read(&x[0], 8); });
      sc.sync();
    }
    record_read(&x[0], 8);  // w: in series after u and v
    rt::SpawnScope sc2;
    sc2.spawn([&] { record_write(&x[0], 8); });  // parallel to nothing prior? no:
    // ...this write is parallel to the continuation below, which reads x.
    record_read(&x[0], 8);
    sc2.sync();
  });
  EXPECT_TRUE(r.any_race);
}

TEST_P(Scenario, WriterThenSerialReaderNoRace) {
  std::vector<long> x(8, 0);
  auto r = run([&] {
    record_write(&x[0], 8);
    rt::SpawnScope sc;
    sc.spawn([&] { record_read(&x[0], 8); });  // after the write in series
    sc.sync();
    record_read(&x[0], 8);
  });
  EXPECT_FALSE(r.any_race);
}

TEST_P(Scenario, DeferredFreeAllowsSafeReuse) {
  // B frees a block; C (in series after the free's strand) allocates and
  // writes memory that may alias it. No race must be reported.
  auto r = run([&] {
    void* p = nullptr;
    {
      rt::SpawnScope sc;
      sc.spawn([&] {
        p = dmalloc(64);
        record_write(p, 64);
      });
      sc.sync();
    }
    dfree(p);
    // Allocate repeatedly to encourage allocator reuse of p's block.
    for (int i = 0; i < 4; ++i) {
      void* q = dmalloc(64);
      record_write(q, 64);
      dfree(q);
    }
  });
  EXPECT_FALSE(r.any_race);
}

TEST_P(Scenario, FreedThenReusedByParallelStrandStillChecked) {
  // A true race on live memory is still a race even when other memory is
  // freed around it.
  std::vector<long> x(8, 0);
  auto r = run([&] {
    void* p = dmalloc(32);
    record_write(p, 32);
    dfree(p);
    rt::SpawnScope sc;
    sc.spawn([&] { record_write(&x[0], 8); });
    record_write(&x[0], 8);
    sc.sync();
  });
  EXPECT_TRUE(r.any_race);
}

TEST_P(Scenario, ManyStrandsManyIntervalsNoFalsePositives) {
  // Volume test: lots of strands and coalescable intervals, fully disjoint.
  std::vector<long> x(4096, 0);
  auto r = run([&] {
    struct Go {
      static void rec(long* base, std::size_t n) {
        if (n <= 64) {
          record_write(base, n * sizeof(long));
          record_read(base, n * sizeof(long));
          return;
        }
        rt::SpawnScope sc;
        long* b = base;
        const std::size_t h = n / 2;
        sc.spawn([b, h] { rec(b, h); });
        rec(base + h, n - h);
        sc.sync();
        record_read(base, n * sizeof(long));  // series after both halves
      }
    };
    Go::rec(x.data(), x.size());
  });
  EXPECT_FALSE(r.any_race);
}

TEST_P(Scenario, WriteBeforeSpawnIsSeriesWithChild) {
  std::vector<long> x(8, 0);
  auto r = run([&] {
    record_write(&x[0], 8);  // strictly before the spawn
    rt::SpawnScope sc;
    sc.spawn([&] { record_read(&x[0], 8); });
    sc.sync();
  });
  EXPECT_FALSE(r.any_race);
}

TEST_P(Scenario, SecondSyncBlockIsSeriesWithFirst) {
  std::vector<long> x(8, 0);
  auto r = run([&] {
    rt::SpawnScope sc;
    sc.spawn([&] { record_write(&x[0], 8); });
    sc.sync();  // block 1 ends
    sc.spawn([&] { record_write(&x[0], 8); });  // block 2: series with block 1
    sc.sync();
  });
  EXPECT_FALSE(r.any_race);
}

TEST_P(Scenario, ChildrenOfDifferentBlocksSameScopeRaceFreeWhenDisjoint) {
  std::vector<long> x(16, 0);
  auto r = run([&] {
    rt::SpawnScope sc;
    for (int block = 0; block < 4; ++block) {
      sc.spawn([&, block] { record_write(&x[std::size_t(block * 4)], 32); });
      sc.spawn([&, block] { record_write(&x[std::size_t(block * 4)], 32); });
      sc.sync();
      // two children of one block write the same range: race... unless the
      // writes are identical-range writes by parallel strands - still a race!
    }
  });
  EXPECT_TRUE(r.any_race);
}

TEST_P(Scenario, DeepNestingSeriesChainClean) {
  std::vector<long> x(8, 0);
  auto r = run([&] {
    struct Go {
      static void rec(long* p, int depth) {
        record_write(p, 8);  // every level writes the same location...
        if (depth == 0) return;
        rt::SpawnScope sc;
        sc.spawn([p, depth] { rec(p, depth - 1); });
        sc.sync();           // ...but always in series through the sync
        record_read(p, 8);
      }
    };
    Go::rec(&x[0], 24);
  });
  EXPECT_FALSE(r.any_race);
}

TEST_P(Scenario, TheoremFiveSomePairIsAlwaysReported) {
  // Paper's Theorem 5 discussion: u reads x, w reads x (parallel extremes),
  // then v - parallel to and left of u - reads then writes x. Different
  // detectors may attribute the race to different pairs, but every detector
  // must report at least one true racing pair.
  std::vector<long> x(8, 0);
  auto r = run([&] {
    rt::SpawnScope sc;
    sc.spawn([&] { record_read(&x[0], 8); });   // u
    sc.spawn([&] { record_read(&x[0], 8); });   // w
    sc.spawn([&] {                              // v: reads then writes
      record_read(&x[0], 8);
      record_write(&x[0], 8);
    });
    sc.sync();
  });
  EXPECT_TRUE(r.any_race);
}

TEST_P(Scenario, RaceAcrossStolenContinuationBoundary) {
  // The racing access sits on a continuation strand that (under multi-worker
  // runs) is a steal candidate - exercises label/trace handling at the
  // steal boundary.
  std::vector<long> x(8, 0);
  auto r = run([&] {
    rt::SpawnScope sc;
    sc.spawn([&] {
      volatile long spin = 0;
      for (int i = 0; i < 20000; ++i) spin = spin + 1;  // invite a steal
      record_write(&x[0], 8);
    });
    record_write(&x[0], 8);  // continuation: parallel with the child
    sc.sync();
  });
  EXPECT_TRUE(r.any_race);
}

TEST_P(Scenario, ZeroLengthProgramClean) {
  auto r = run([] {});
  EXPECT_FALSE(r.any_race);
}

TEST_P(Scenario, SpawnWithNoAccessesClean) {
  auto r = run([] {
    rt::SpawnScope sc;
    for (int i = 0; i < 64; ++i) sc.spawn([] {});
    sc.sync();
  });
  EXPECT_FALSE(r.any_race);
}

TEST_P(Scenario, SingleByteOverlapIsEnough) {
  std::vector<unsigned char> x(64, 0);
  auto r = run([&] {
    rt::SpawnScope sc;
    sc.spawn([&] { record_write(&x[0], 33); });  // [0, 32]
    record_write(&x[32], 32);                    // [32, 63]: one shared byte
    sc.sync();
  });
  EXPECT_TRUE(r.any_race);
}

INSTANTIATE_TEST_SUITE_P(AllDetectors, Scenario,
                         ::testing::ValuesIn(test::all_detectors()),
                         [](const auto& info) {
                           return test::det_name(info.param);
                         });

// ---------------------------------------------------------------------------
// Stack-reuse handling (paper §III-F) - exercised with the interval
// detectors, which record accesses to the task fibers' own stacks.
// ---------------------------------------------------------------------------

namespace {

/// Task body that writes its OWN stack frame (recorded), then returns.
/// Sequential siblings reuse the pooled fiber => same addresses; parallel
/// detectors must not report a race thanks to return-node clearing.
void touch_own_stack() {
  volatile long frame[16];
  for (int i = 0; i < 16; ++i) {
    record_write(const_cast<long*>(&frame[i]), sizeof(long));
    frame[i] = i;
  }
  record_read(const_cast<long*>(&frame[0]), sizeof(frame));
}

}  // namespace

class StackReuse : public ::testing::TestWithParam<Det> {};

TEST_P(StackReuse, PooledFiberStacksDoNotFalseRace) {
  auto r = run_under(GetParam(), [] {
    rt::SpawnScope sc;
    for (int i = 0; i < 32; ++i) {
      sc.spawn([] { touch_own_stack(); });
      // Not syncing between spawns: the children are logically parallel and
      // (on few workers) will reuse each other's pooled fiber stacks.
    }
    sc.sync();
    for (int i = 0; i < 8; ++i) {
      sc.spawn([] { touch_own_stack(); });
      sc.sync();  // sequential reuse: B returns, C gets B's fiber
    }
  });
  EXPECT_FALSE(r.any_race);
}

INSTANTIATE_TEST_SUITE_P(AllDetectors, StackReuse,
                         ::testing::ValuesIn(test::all_detectors()),
                         [](const auto& info) {
                           return test::det_name(info.param);
                         });
