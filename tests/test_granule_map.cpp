// Unit tests for the per-granule hashmap access history (the ablation
// backend), including equivalence with the interval treap at granule
// resolution.

#include <gtest/gtest.h>

#include <map>

#include "detect/granule_map.hpp"
#include "support/rng.hpp"

using namespace pint;
using detect::GranuleMap;
using treap::Accessor;

namespace {
Accessor acc(std::uint64_t sid) { return {{}, sid}; }
constexpr std::uint64_t G = GranuleMap::kGranuleBytes;
}  // namespace

TEST(GranuleMap, WriterInsertAndQuery) {
  GranuleMap m;
  m.insert_writer(0, 3 * G - 1, acc(1), [](auto, auto, const auto&) {});
  int hits = 0;
  m.query(0, 3 * G - 1, [&](std::uint64_t, std::uint64_t, const Accessor& a) {
    EXPECT_EQ(a.sid, 1u);
    ++hits;
  });
  EXPECT_EQ(hits, 3);
  EXPECT_EQ(m.size(), 3u);
}

TEST(GranuleMap, WriterOverwriteReportsPrevious) {
  GranuleMap m;
  m.insert_writer(0, G - 1, acc(1), [](auto, auto, const auto&) {});
  std::uint64_t prev = 0;
  m.insert_writer(0, G - 1, acc(2),
                  [&](std::uint64_t, std::uint64_t, const Accessor& a) {
                    prev = a.sid;
                  });
  EXPECT_EQ(prev, 1u);
  std::uint64_t now = 0;
  m.query(0, G - 1,
          [&](std::uint64_t, std::uint64_t, const Accessor& a) { now = a.sid; });
  EXPECT_EQ(now, 2u);
}

TEST(GranuleMap, SubGranuleAccessesAlias) {
  GranuleMap m;
  m.insert_writer(0, 0, acc(1), [](auto, auto, const auto&) {});
  bool overlap = false;
  m.insert_writer(1, 1, acc(2),
                  [&](std::uint64_t, std::uint64_t, const Accessor&) {
                    overlap = true;  // same 8-byte granule
                  });
  EXPECT_TRUE(overlap);
}

TEST(GranuleMap, ReaderResolveControlsWinner) {
  GranuleMap m;
  m.insert_reader(0, G - 1, acc(1),
                  [](const Accessor&, const Accessor&) { return true; });
  m.insert_reader(0, G - 1, acc(2),
                  [](const Accessor&, const Accessor&) { return false; });
  std::uint64_t got = 0;
  m.query(0, G - 1,
          [&](std::uint64_t, std::uint64_t, const Accessor& a) { got = a.sid; });
  EXPECT_EQ(got, 1u);
  m.insert_reader(0, G - 1, acc(3),
                  [](const Accessor&, const Accessor&) { return true; });
  m.query(0, G - 1,
          [&](std::uint64_t, std::uint64_t, const Accessor& a) { got = a.sid; });
  EXPECT_EQ(got, 3u);
}

TEST(GranuleMap, EraseRangeRemovesCoverage) {
  GranuleMap m;
  m.insert_writer(0, 10 * G - 1, acc(1), [](auto, auto, const auto&) {});
  m.erase_range(2 * G, 5 * G - 1);
  int hits = 0;
  m.query(0, 10 * G - 1, [&](auto, auto, const auto&) { ++hits; });
  EXPECT_EQ(hits, 7);
}

TEST(GranuleMap, TombstoneSlotsAreReusable) {
  GranuleMap m;
  for (int round = 0; round < 50; ++round) {
    m.insert_writer(0, 64 * G - 1, acc(std::uint64_t(round) + 1),
                    [](auto, auto, const auto&) {});
    m.erase_range(0, 64 * G - 1);
  }
  EXPECT_EQ(m.size(), 0u);
  m.insert_writer(0, G - 1, acc(7), [](auto, auto, const auto&) {});
  EXPECT_EQ(m.size(), 1u);
}

TEST(GranuleMap, TinyCapacitiesAreRoundedUpToTheMinimum) {
  // Regression: capacity 0 used to underflow the mask to all-ones over an
  // empty slot table, so the very first probe walked out of bounds.
  for (const std::size_t cap : {std::size_t(0), std::size_t(1),
                                std::size_t(2), std::size_t(8)}) {
    GranuleMap m(cap);
    EXPECT_GE(m.capacity(), GranuleMap::kMinCapacity) << "cap=" << cap;
    m.insert_writer(0, 4 * G - 1, acc(3), [](auto, auto, const auto&) {});
    std::uint64_t hits = 0;
    m.query(0, 4 * G - 1, [&](auto, auto, const Accessor& a) {
      EXPECT_EQ(a.sid, 3u);
      ++hits;
    });
    EXPECT_EQ(hits, 4u) << "cap=" << cap;
  }
}

TEST(GranuleMap, GrowsPastInitialCapacity) {
  GranuleMap m(16);
  constexpr std::uint64_t kN = 4096;
  m.insert_writer(0, kN * G - 1, acc(9), [](auto, auto, const auto&) {});
  EXPECT_EQ(m.size(), kN);
  EXPECT_GE(m.capacity(), kN);
  std::uint64_t hits = 0;
  m.query(0, kN * G - 1, [&](auto, auto, const Accessor& a) {
    EXPECT_EQ(a.sid, 9u);
    ++hits;
  });
  EXPECT_EQ(hits, kN);
}

TEST(GranuleMap, PropertyMatchesReferenceMap) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    pint::Xoshiro256 rng(seed);
    GranuleMap m(64);
    std::map<std::uint64_t, std::uint64_t> ref;  // granule -> sid
    constexpr std::uint64_t kSpanGranules = 512;
    for (int op = 0; op < 4000; ++op) {
      const std::uint64_t glo = rng.next_below(kSpanGranules);
      const std::uint64_t ghi = glo + rng.next_below(8);
      const std::uint64_t lo = glo * G, hi = ghi * G + G - 1;
      if (rng.next_below(5) == 0) {
        m.erase_range(lo, hi);
        ref.erase(ref.lower_bound(glo), ref.upper_bound(ghi));
      } else {
        const std::uint64_t sid = 1 + rng.next_below(100);
        m.insert_writer(lo, hi, acc(sid), [](auto, auto, const auto&) {});
        for (auto g = glo; g <= ghi; ++g) ref[g] = sid;
      }
    }
    for (std::uint64_t g = 0; g < kSpanGranules + 8; ++g) {
      std::uint64_t got = 0;
      m.query(g * G, g * G + G - 1,
              [&](auto, auto, const Accessor& a) { got = a.sid; });
      const auto it = ref.find(g);
      ASSERT_EQ(got, it == ref.end() ? 0 : it->second)
          << "seed=" << seed << " granule=" << g;
    }
    ASSERT_EQ(m.size(), ref.size()) << "seed=" << seed;
  }
}
