// Unit tests for the support layer: RNG, spinlock, timers, fibers.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "support/fiber.hpp"
#include "support/rng.hpp"
#include "support/spinlock.hpp"
#include "support/timer.hpp"

using namespace pint;

TEST(Rng, DeterministicForSeed) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 4);
}

TEST(Rng, NextBelowInRange) {
  Xoshiro256 r(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.next_below(17), 17u);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Xoshiro256 r(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, Splitmix64Advances) {
  std::uint64_t s = 0;
  const auto a = splitmix64(s);
  const auto b = splitmix64(s);
  EXPECT_NE(a, b);
  EXPECT_NE(s, 0u);
}

TEST(Spinlock, MutualExclusionCounter) {
  Spinlock mu;
  std::uint64_t counter = 0;
  constexpr int kThreads = 4;
  constexpr int kIters = 20000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        LockGuard<Spinlock> g(mu);
        ++counter;
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(counter, std::uint64_t(kThreads) * kIters);
}

TEST(Spinlock, TryLock) {
  Spinlock mu;
  EXPECT_TRUE(mu.try_lock());
  EXPECT_FALSE(mu.try_lock());
  mu.unlock();
  EXPECT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(Timer, Monotonic) {
  Timer t;
  const auto a = t.elapsed_ns();
  const auto b = t.elapsed_ns();
  EXPECT_GE(b, a);
}

TEST(StopwatchAccum, Accumulates) {
  StopwatchAccum w;
  w.start();
  w.stop();
  const auto first = w.total_ns();
  w.start();
  w.stop();
  EXPECT_GE(w.total_ns(), first);
  w.clear();
  EXPECT_EQ(w.total_ns(), 0u);
}

namespace {

struct FiberArg {
  Context* back = nullptr;
  Context self;
  int hits = 0;
};

void fiber_entry(void* p) {
  auto* a = static_cast<FiberArg*>(p);
  a->hits++;
  ctx_switch(a->self, *a->back);  // yield back
  a->hits++;
  ctx_switch(a->self, *a->back);  // done
  for (;;) {}
}

}  // namespace

TEST(Fiber, SwitchInAndOut) {
  Context main_ctx;
  san::adopt_current_thread_stack(main_ctx.san);
  FiberArg arg;
  arg.back = &main_ctx;
  Fiber* f = Fiber::create(64 * 1024, &fiber_entry, &arg);
  arg.self = f->context();

  ctx_switch(main_ctx, f->context());
  EXPECT_EQ(arg.hits, 1);
  f->context() = arg.self;  // resume where the fiber saved itself
  ctx_switch(main_ctx, f->context());
  EXPECT_EQ(arg.hits, 2);
  f->destroy();
}

TEST(Fiber, StackRangeNonEmpty) {
  FiberArg arg;
  Fiber* f = Fiber::create(64 * 1024, &fiber_entry, &arg);
  EXPECT_GT(f->stack_hi(), f->stack_lo());
  EXPECT_GE(f->stack_hi() - f->stack_lo(), std::uintptr_t(64 * 1024));
  f->destroy();
}

TEST(Fiber, ResetReusesStack) {
  Context main_ctx;
  san::adopt_current_thread_stack(main_ctx.san);
  FiberArg a1;
  a1.back = &main_ctx;
  Fiber* f = Fiber::create(64 * 1024, &fiber_entry, &a1);
  a1.self = f->context();
  ctx_switch(main_ctx, f->context());
  EXPECT_EQ(a1.hits, 1);

  FiberArg a2;
  a2.back = &main_ctx;
  f->reset(&fiber_entry, &a2);
  a2.self = f->context();
  ctx_switch(main_ctx, f->context());
  EXPECT_EQ(a2.hits, 1);
  f->destroy();
}

namespace {
void deep_recursion_entry(void* p) {
  // Overflow the fiber stack; the PROT_NONE guard page must fault instead
  // of silently corrupting a neighbouring allocation.
  struct R {
    static std::uint64_t go(std::uint64_t n) {
      volatile char pad[1024];
      pad[0] = char(n);
      if (n == 0) return pad[0];
      return go(n - 1) + pad[0];
    }
  };
  volatile std::uint64_t sink = R::go(1 << 20);
  (void)sink;
  (void)p;
  for (;;) {}
}
}  // namespace

TEST(FiberDeathTest, GuardPageCatchesOverflow) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Context main_ctx;
        san::adopt_current_thread_stack(main_ctx.san);
        Fiber* f = Fiber::create(64 * 1024, &deep_recursion_entry, nullptr);
        ctx_switch(main_ctx, f->context());
      },
      "");
}
