// Typed tests for the strand-processing semantics (detect/history.hpp):
// identical behaviour is required from the interval treap and the granule
// map, and from the address-sharded composition (pint/sharded_history.hpp).

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "detect/granule_map.hpp"
#include "detect/history.hpp"
#include "pint/sharded_history.hpp"
#include "treap/interval_treap.hpp"

using namespace pint;
using detect::ReaderSide;
using detect::Strand;

namespace {

/// Harness: builds labelled strands on a real reachability engine.
struct HistoryFixture {
  reach::Engine reach;
  detect::RaceReporter rep;
  detect::Stats stats;
  std::vector<std::unique_ptr<Strand>> strands;

  Strand* strand(const reach::Engine::Label& l) {
    auto s = std::make_unique<Strand>();
    s->reset(std::uint64_t(strands.size()) + 1);
    s->label = l;
    strands.push_back(std::move(s));
    return strands.back().get();
  }

  /// root -> spawn: returns (child, cont, sync) strands.
  struct Trio {
    Strand* child;
    Strand* cont;
    Strand* sync;
  };
  Trio spawn_from(Strand* u) {
    Strand* j = strand({});
    auto labels = reach.on_spawn(u->label, &j->label);
    return {strand(labels.child), strand(labels.cont), j};
  }
  Strand* root() { return strand(reach.root_label()); }
};

void add_read(Strand* s, std::uint64_t lo, std::uint64_t hi) {
  s->reads.add(lo, hi);
}
void add_write(Strand* s, std::uint64_t lo, std::uint64_t hi) {
  s->writes.add(lo, hi);
}

}  // namespace

template <class Store>
class HistoryStore : public ::testing::Test {
 public:
  Store writer_store;
  Store lreader_store;
  Store rreader_store;
  HistoryFixture fx;

  void process(Strand* s) {
    detect::process_writer_treap(writer_store, *s, fx.reach, fx.rep, fx.stats);
    detect::process_reader_treap(lreader_store, *s, fx.reach, fx.rep, fx.stats,
                                 ReaderSide::kLeftMost);
    detect::process_reader_treap(rreader_store, *s, fx.reach, fx.rep, fx.stats,
                                 ReaderSide::kRightMost);
  }
};

using Stores = ::testing::Types<treap::IntervalTreap, detect::GranuleMap>;
TYPED_TEST_SUITE(HistoryStore, Stores);

TYPED_TEST(HistoryStore, ParallelWriteWriteRaces) {
  auto& fx = this->fx;
  Strand* u = fx.root();
  auto t = fx.spawn_from(u);
  add_write(t.child, 0, 63);
  add_write(t.cont, 32, 95);
  this->process(t.child);
  this->process(t.cont);
  EXPECT_TRUE(fx.rep.any());
}

TYPED_TEST(HistoryStore, SeriesWriteWriteClean) {
  auto& fx = this->fx;
  Strand* u = fx.root();
  auto t = fx.spawn_from(u);
  add_write(t.child, 0, 63);
  add_write(t.sync, 0, 63);  // sync node: in series with the child
  this->process(t.child);
  this->process(t.sync);
  EXPECT_FALSE(fx.rep.any());
}

TYPED_TEST(HistoryStore, ParallelReadReadClean) {
  auto& fx = this->fx;
  Strand* u = fx.root();
  auto t = fx.spawn_from(u);
  add_read(t.child, 0, 63);
  add_read(t.cont, 0, 63);
  this->process(t.child);
  this->process(t.cont);
  EXPECT_FALSE(fx.rep.any());
}

TYPED_TEST(HistoryStore, ReadThenParallelWriteRaces) {
  auto& fx = this->fx;
  Strand* u = fx.root();
  auto t = fx.spawn_from(u);
  add_read(t.child, 16, 23);
  add_write(t.cont, 16, 23);
  this->process(t.child);
  this->process(t.cont);
  EXPECT_TRUE(fx.rep.any());
}

TYPED_TEST(HistoryStore, WriteThenParallelReadRaces) {
  auto& fx = this->fx;
  Strand* u = fx.root();
  auto t = fx.spawn_from(u);
  add_write(t.child, 16, 23);
  add_read(t.cont, 16, 23);
  this->process(t.child);
  this->process(t.cont);
  EXPECT_TRUE(fx.rep.any());
}

TYPED_TEST(HistoryStore, ClearsBreakHistory) {
  auto& fx = this->fx;
  Strand* u = fx.root();
  auto t = fx.spawn_from(u);
  add_write(t.child, 0, 63);
  t.child->clears.push_back({0, 63});  // e.g. its stack frame dies
  add_write(t.cont, 0, 63);            // parallel, but history was cleared
  this->process(t.child);
  this->process(t.cont);
  EXPECT_FALSE(fx.rep.any());
}

TYPED_TEST(HistoryStore, DeferredFreeRangeCleared) {
  auto& fx = this->fx;
  Strand* u = fx.root();
  auto t = fx.spawn_from(u);
  add_write(t.child, 100, 163);
  t.child->frees.push_back({nullptr, 100, 163});
  add_write(t.cont, 100, 163);
  this->process(t.child);
  this->process(t.cont);
  EXPECT_FALSE(fx.rep.any());
}

TYPED_TEST(HistoryStore, LeftmostRightmostCatchMiddleWriter) {
  // Three parallel readers; a later writer parallel to all of them must be
  // caught through the two retained extremes.
  auto& fx = this->fx;
  Strand* u = fx.root();
  auto b = fx.spawn_from(u);
  auto b2 = fx.spawn_from(b.cont);   // same block: second spawn
  auto b3 = fx.spawn_from(b2.cont);  // third spawn
  add_read(b.child, 0, 7);
  add_read(b2.child, 0, 7);
  add_read(b3.child, 0, 7);
  add_write(b3.cont, 0, 7);  // parallel with all three readers
  this->process(b.child);
  this->process(b2.child);
  this->process(b3.child);
  this->process(b3.cont);
  EXPECT_TRUE(fx.rep.any());
}

TYPED_TEST(HistoryStore, SerialReaderAfterParallelSetReplaces) {
  auto& fx = this->fx;
  Strand* u = fx.root();
  auto b = fx.spawn_from(u);
  add_read(b.child, 0, 7);
  add_read(b.cont, 0, 7);
  add_read(b.sync, 0, 7);   // in series after both readers: replaces them
  add_write(b.sync, 0, 7);  // same strand writing is fine
  this->process(b.child);
  this->process(b.cont);
  this->process(b.sync);
  EXPECT_FALSE(fx.rep.any());
}

// ---------------------------------------------------------------------------
// Sharded composition equivalence
// ---------------------------------------------------------------------------

TEST(ShardedHistory, PieceDecompositionCoversExactly) {
  // The shard pieces of [lo, hi] across all shards must partition it.
  const std::uint64_t lo = 3 * pintd::kShardStripeBytes - 17;
  const std::uint64_t hi = 7 * pintd::kShardStripeBytes + 123;
  for (int n : {1, 2, 3, 4, 8}) {
    std::vector<std::pair<std::uint64_t, std::uint64_t>> pieces;
    for (int k = 0; k < n; ++k) {
      pintd::for_shard_pieces(lo, hi, k, n, [&](std::uint64_t a, std::uint64_t b) {
        pieces.push_back({a, b});
      });
    }
    std::sort(pieces.begin(), pieces.end());
    ASSERT_FALSE(pieces.empty());
    EXPECT_EQ(pieces.front().first, lo);
    EXPECT_EQ(pieces.back().second, hi);
    for (std::size_t i = 1; i < pieces.size(); ++i) {
      EXPECT_EQ(pieces[i].first, pieces[i - 1].second + 1) << "n=" << n;
    }
  }
}

TEST(ShardedHistory, MatchesRoleWorkersOnScriptedStrands) {
  // Apply the same strand sequence to (a) the classic three stores and
  // (b) 3 shards; both must reach the same any-race verdict on a spread of
  // scripted conflict patterns.
  for (int variant = 0; variant < 6; ++variant) {
    HistoryFixture fx_a, fx_b;
    treap::IntervalTreap w, l, r;
    pintd::HistoryShard s0(1, 2, 3), s1(4, 5, 6), s2(7, 8, 9);
    pintd::HistoryShard* shards[3] = {&s0, &s1, &s2};

    auto drive = [&](HistoryFixture& fx, auto&& apply) {
      Strand* u = fx.root();
      auto b = fx.spawn_from(u);
      const std::uint64_t base = pintd::kShardStripeBytes;  // cross stripes
      const std::uint64_t span = 3 * pintd::kShardStripeBytes;
      switch (variant) {
        case 0:  // overlapping parallel writes across stripes
          add_write(b.child, base, base + span);
          add_write(b.cont, base + span / 2, base + span + span / 2);
          break;
        case 1:  // disjoint parallel writes
          add_write(b.child, base, base + span);
          add_write(b.cont, base + 2 * span, base + 3 * span);
          break;
        case 2:  // read vs parallel write, small overlap at a stripe edge
          add_read(b.child, base, 2 * base - 1);
          add_write(b.cont, 2 * base - 8, 2 * base + 8);
          break;
        case 3:  // series through the sync node
          add_write(b.child, base, base + span);
          add_write(b.sync, base, base + span);
          break;
        case 4:  // clears break the history
          add_write(b.child, base, base + span);
          b.child->clears.push_back({base, base + span});
          add_write(b.cont, base, base + span);
          break;
        default:  // parallel read-read
          add_read(b.child, base, base + span);
          add_read(b.cont, base, base + span);
          break;
      }
      apply(fx, b.child);
      apply(fx, b.cont);
      apply(fx, b.sync);
    };

    drive(fx_a, [&](HistoryFixture& fx, Strand* s) {
      detect::process_writer_treap(w, *s, fx.reach, fx.rep, fx.stats);
      detect::process_reader_treap(l, *s, fx.reach, fx.rep, fx.stats,
                                   ReaderSide::kLeftMost);
      detect::process_reader_treap(r, *s, fx.reach, fx.rep, fx.stats,
                                   ReaderSide::kRightMost);
    });
    drive(fx_b, [&](HistoryFixture& fx, Strand* s) {
      for (int k = 0; k < 3; ++k) {
        shards[k]->process(*s, k, 3, fx.reach, fx.rep, fx.stats);
      }
    });
    EXPECT_EQ(fx_a.rep.any(), fx_b.rep.any()) << "variant=" << variant;
  }
}
