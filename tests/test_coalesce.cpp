// Tests for the runtime access coalescer (AccessBuffer).

#include <gtest/gtest.h>

#include "detect/types.hpp"
#include "support/rng.hpp"

using namespace pint::detect;

TEST(Coalesce, AdjacentAccessesMerge) {
  AccessBuffer b;
  b.add(0, 7);
  b.add(8, 15);
  b.add(16, 23);
  EXPECT_EQ(b.items().size(), 1u);
  EXPECT_EQ(b.items()[0], (Interval{0, 23}));
}

TEST(Coalesce, OverlappingAccessesMerge) {
  AccessBuffer b;
  b.add(0, 10);
  b.add(5, 20);
  EXPECT_EQ(b.items().size(), 1u);
  EXPECT_EQ(b.items()[0], (Interval{0, 20}));
}

TEST(Coalesce, GapCreatesNewInterval) {
  AccessBuffer b;
  b.add(0, 7);
  b.add(100, 107);
  EXPECT_EQ(b.items().size(), 2u);
}

TEST(Coalesce, InterleavedStreamsMergeViaMultiTail) {
  // The B[k][j] / C[i][j] pattern: two (or three) streams alternating.
  AccessBuffer b;
  for (std::uint64_t j = 0; j < 100; ++j) {
    b.add(1000 + j * 8, 1000 + j * 8 + 7);    // stream 1
    b.add(50000 + j * 8, 50000 + j * 8 + 7);  // stream 2
    b.add(90000 + j * 8, 90000 + j * 8 + 7);  // stream 3
  }
  EXPECT_EQ(b.items().size(), 3u);
}

TEST(Coalesce, TooManyStreamsFallBackToFinalize) {
  AccessBuffer b;
  // kTails + 2 interleaved streams: the fast path cannot hold them all...
  constexpr std::uint64_t kStreams = AccessBuffer::kTails + 2;
  for (std::uint64_t j = 0; j < 50; ++j) {
    for (std::uint64_t s = 0; s < kStreams; ++s) {
      b.add(s * 100000 + j * 8, s * 100000 + j * 8 + 7);
    }
  }
  EXPECT_GT(b.items().size(), kStreams);
  // ...but finalize() sort-merges them down to exactly kStreams intervals.
  b.finalize();
  EXPECT_EQ(b.items().size(), kStreams);
}

TEST(Coalesce, FinalizeSortsAndMerges) {
  AccessBuffer b;
  b.add(100, 109);
  b.add(0, 9);
  b.add(10, 19);   // adjacent to [0,9] but not to the tail [100,109]... kTails=4 reaches it
  b.add(50, 59);
  b.finalize();
  ASSERT_EQ(b.items().size(), 3u);
  EXPECT_EQ(b.items()[0], (Interval{0, 19}));
  EXPECT_EQ(b.items()[1], (Interval{50, 59}));
  EXPECT_EQ(b.items()[2], (Interval{100, 109}));
}

TEST(Coalesce, FinalizeWithoutCoalescingKeepsRawRecords) {
  AccessBuffer b;
  b.add(0, 7);
  b.add(100, 107);
  b.add(200, 207);
  b.finalize(/*coalesce=*/false);
  EXPECT_EQ(b.items().size(), 3u);
}

TEST(Coalesce, ClearEmpties) {
  AccessBuffer b;
  b.add(0, 7);
  b.clear();
  EXPECT_TRUE(b.empty());
  b.add(1, 2);
  EXPECT_EQ(b.items().size(), 1u);
}

TEST(Coalesce, PropertyCoverageEqualsUnion) {
  // Whatever the fast path does, after finalize() the set of covered bytes
  // must equal the union of all recorded accesses.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    pint::Xoshiro256 rng(seed);
    AccessBuffer b;
    std::vector<char> covered(4096, 0);
    for (int i = 0; i < 500; ++i) {
      const std::uint64_t lo = rng.next_below(4000);
      const std::uint64_t hi = lo + rng.next_below(64);
      b.add(lo, hi);
      for (auto x = lo; x <= hi && x < covered.size(); ++x) covered[x] = 1;
    }
    b.finalize();
    // Disjoint, sorted, and exactly covering.
    std::vector<char> got(4096, 0);
    std::uint64_t prev_hi = 0;
    bool first = true;
    for (const Interval& iv : b.items()) {
      if (!first) {
        EXPECT_GT(iv.lo, prev_hi + 1) << "not maximally merged";
      }
      first = false;
      prev_hi = iv.hi;
      for (auto x = iv.lo; x <= iv.hi && x < got.size(); ++x) got[x] = 1;
    }
    EXPECT_EQ(covered, got) << "seed=" << seed;
  }
}
