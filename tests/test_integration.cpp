// Heavier integration tests: benchmark kernels at a moderate scale under
// the full detector matrix, the sharded-history extension end-to-end, and
// stress configurations (tiny stacks, tiny queues, many workers).

#include <gtest/gtest.h>

#include <string>

#include "common.hpp"
#include "kernels/kernels.hpp"

using namespace pint;
using test::Det;

namespace {
constexpr double kScale = 0.5;
}

class KernelModerate : public ::testing::TestWithParam<std::string> {};

TEST_P(KernelModerate, PintParallelMatchesOracleVerdict) {
  // Race-free kernels at a size where every recursion level is exercised.
  kernels::KernelConfig cfg;
  cfg.scale = kScale;
  auto k = kernels::make_kernel(GetParam(), cfg);
  k->prepare();
  auto r = test::run_under(Det::kPint4, [&] { k->run(); });
  EXPECT_FALSE(r.any_race);
  EXPECT_TRUE(k->verify());
}

TEST_P(KernelModerate, ShardedHistoryEndToEnd) {
  kernels::KernelConfig cfg;
  cfg.scale = kScale;
  {
    auto k = kernels::make_kernel(GetParam(), cfg);
    k->prepare();
    pintd::PintDetector::Options o;
    o.core_workers = 2;
    o.history_shards = 4;
    pintd::PintDetector d(o);
    d.run([&] { k->run(); });
    EXPECT_FALSE(d.reporter().any());
    EXPECT_TRUE(k->verify());
  }
  {
    kernels::KernelConfig rc = cfg;
    rc.scale = 0.12;
    rc.seeded_race = true;
    auto k = kernels::make_kernel(GetParam(), rc);
    k->prepare();
    pintd::PintDetector::Options o;
    o.core_workers = 2;
    o.history_shards = 4;
    pintd::PintDetector d(o);
    d.run([&] { k->run(); });
    EXPECT_TRUE(d.reporter().any()) << "sharded history missed a seeded race";
  }
}

TEST_P(KernelModerate, GranuleMapHistoryEndToEnd) {
  kernels::KernelConfig cfg;
  cfg.scale = 0.12;  // the per-granule store is slow by design
  auto k = kernels::make_kernel(GetParam(), cfg);
  k->prepare();
  pintd::PintDetector::Options o;
  o.core_workers = 2;
  o.history = detect::HistoryKind::kGranuleMap;
  pintd::PintDetector d(o);
  d.run([&] { k->run(); });
  EXPECT_FALSE(d.reporter().any());
  EXPECT_TRUE(k->verify());
}

INSTANTIATE_TEST_SUITE_P(All, KernelModerate,
                         ::testing::ValuesIn(kernels::kernel_names()),
                         [](const auto& info) { return info.param; });

TEST(StressConfig, SmallStacksStillWork) {
  // 64 KiB task stacks: deep call chains inside tasks must still fit, and
  // stack-range clearing must handle the smaller ranges.
  pintd::PintDetector::Options o;
  o.core_workers = 2;
  o.stack_bytes = 64 * 1024;
  pintd::PintDetector d(o);
  kernels::KernelConfig cfg;
  cfg.scale = 0.12;
  auto k = kernels::make_kernel("sort", cfg);
  k->prepare();
  d.run([&] { k->run(); });
  EXPECT_FALSE(d.reporter().any());
  EXPECT_TRUE(k->verify());
}

TEST(StressConfig, ManyCoreWorkersOversubscribed) {
  // 8 workers on 1 CPU: heavy preemption => many steals and migrations.
  pintd::PintDetector::Options o;
  o.core_workers = 8;
  pintd::PintDetector d(o);
  kernels::KernelConfig cfg;
  cfg.scale = 0.25;
  auto k = kernels::make_kernel("heat", cfg);
  k->prepare();
  d.run([&] { k->run(); });
  EXPECT_FALSE(d.reporter().any());
  EXPECT_TRUE(k->verify());
}

TEST(StressConfig, BackToBackDetectorRuns) {
  // Detector instances are single-use; many instances in sequence must not
  // leak or interfere (fresh engines, treaps, schedulers each time).
  for (int i = 0; i < 6; ++i) {
    kernels::KernelConfig cfg;
    cfg.scale = 0.12;
    cfg.seeded_race = (i % 2 == 1);
    auto k = kernels::make_kernel("mmul", cfg);
    k->prepare();
    pintd::PintDetector::Options o;
    o.core_workers = 1 + i % 3;
    pintd::PintDetector d(o);
    d.run([&] { k->run(); });
    EXPECT_EQ(d.reporter().any(), cfg.seeded_race) << "iteration " << i;
  }
}

TEST(StressConfig, StintMapKernelEndToEnd) {
  kernels::KernelConfig cfg;
  cfg.scale = 0.12;
  auto k = kernels::make_kernel("stra", cfg);
  k->prepare();
  stint::StintDetector::Options o;
  o.history = detect::HistoryKind::kGranuleMap;
  stint::StintDetector d(o);
  d.run([&] { k->run(); });
  EXPECT_FALSE(d.reporter().any());
  EXPECT_TRUE(k->verify());
}

TEST(StressConfig, CoalescingOffEndToEnd) {
  // Per-access intervals all the way through the pipeline.
  kernels::KernelConfig cfg;
  cfg.scale = 0.12;
  auto k = kernels::make_kernel("fft", cfg);
  k->prepare();
  pintd::PintDetector::Options o;
  o.core_workers = 2;
  o.coalesce = false;
  pintd::PintDetector d(o);
  d.run([&] { k->run(); });
  EXPECT_FALSE(d.reporter().any());
  EXPECT_TRUE(k->verify());
  const auto s = d.stats().snapshot();
  // No coalescing: one history interval per recorded access.
  EXPECT_EQ(s.read_intervals + s.write_intervals, s.raw_reads + s.raw_writes);
}

TEST(StressConfig, PhasedHistoryWithParallelCore) {
  // parallel_history=false buffers ALL traces while the core component runs
  // on several workers, then drains them in phases - the untuned corner of
  // the configuration matrix.
  pintd::PintDetector::Options o;
  o.core_workers = 4;
  o.parallel_history = false;
  pintd::PintDetector d(o);
  kernels::KernelConfig cfg;
  cfg.scale = 0.25;
  auto k = kernels::make_kernel("mmul", cfg);
  k->prepare();
  d.run([&] { k->run(); });
  EXPECT_FALSE(d.reporter().any());
  EXPECT_TRUE(k->verify());
}

TEST(StressConfig, ShardedHistoryRejectsGranuleMap) {
  pintd::PintDetector::Options o;
  o.history = detect::HistoryKind::kGranuleMap;
  o.history_shards = 4;
  EXPECT_DEATH({ pintd::PintDetector d(o); },
               "sharded history supports the treap store only");
}
