// End-to-end validation of PINT's DAG-conforming collection (Lemmas 1-4):
// the writer treap worker records the label of every strand in collection
// order; the test then checks, for every pair, that no strand was collected
// before one of its DAG predecessors.  This exercises the whole chain the
// lemmas depend on - trace switching at steals and non-trivial syncs, pred
// counters, and the front-trace FIFO collection rules - under real steal
// schedules (multi-worker runs on a timesliced CPU).

#include <gtest/gtest.h>

#include <vector>

#include "detect/instrument.hpp"
#include "pint/pint_detector.hpp"
#include "runtime/scheduler.hpp"
#include "support/rng.hpp"

using namespace pint;

namespace {

/// Irregular spawn tree with some busy work to invite preemption steals.
/// Recorded locations live on the task's own fiber stack: the detector's
/// deferred fiber release + return-node clearing make that safe, whereas a
/// std::vector here would be freed behind the detector's back (plain
/// operator delete, not dfree) and allocator reuse across parallel nodes
/// would manufacture exactly the SIII-F false races.
constexpr int kMaxFanout = 4;

void churn(int depth, int fanout, Xoshiro256* rng, long* sink) {
  long acc = 0;
  const int spin = 50 + int(rng->next_below(200));
  for (int i = 0; i < spin; ++i) acc += i;
  record_write(sink, sizeof(long));
  *sink += acc;
  if (depth == 0) return;
  PINT_CHECK(fanout <= kMaxFanout);
  rt::SpawnScope sc;
  long sinks[kMaxFanout] = {};
  Xoshiro256 rngs[kMaxFanout];
  for (int i = 0; i < fanout; ++i) rngs[i] = Xoshiro256(rng->next());
  for (int i = 0; i < fanout; ++i) {
    long* s = &sinks[i];
    Xoshiro256* r = &rngs[i];
    sc.spawn([depth, fanout, r, s] { churn(depth - 1, fanout, r, s); });
    if (rng->next_below(2) == 0) sc.sync();  // mix trivial/non-trivial syncs
  }
  sc.sync();
  for (int i = 0; i < fanout; ++i) {
    record_read(&sinks[i], sizeof(long));
    *sink += sinks[i];
  }
}

void verify_dag_conforming(pintd::PintDetector& det) {
  const auto& order = det.collection_order();
  ASSERT_GT(order.size(), 10u);
  auto& reach = det.reachability();
  // For i < j in collection order, H[j] must never precede H[i] in the DAG.
  for (std::size_t i = 0; i < order.size(); ++i) {
    for (std::size_t j = i + 1; j < order.size(); ++j) {
      ASSERT_FALSE(reach.precedes(order[j], order[i]))
          << "strand collected at position " << j
          << " is a DAG predecessor of the one at position " << i;
    }
  }
}

}  // namespace

class CollectionOrder : public ::testing::TestWithParam<int> {};

TEST_P(CollectionOrder, IsDagConformingUnderSteals) {
  pintd::PintDetector::Options o;
  o.core_workers = GetParam();
  o.record_collection_order = true;
  pintd::PintDetector det(o);
  long sink = 0;
  Xoshiro256 rng(7 + std::uint64_t(GetParam()));
  det.run([&] { churn(4, 3, &rng, &sink); });
  EXPECT_FALSE(det.reporter().any());  // all sinks are distinct locations
  verify_dag_conforming(det);
}

INSTANTIATE_TEST_SUITE_P(Workers, CollectionOrder, ::testing::Values(1, 2, 4),
                         [](const auto& info) {
                           return "w" + std::to_string(info.param);
                         });

TEST(CollectionOrder, SequentialModeMatchesSerialOrder) {
  pintd::PintDetector::Options o;
  o.core_workers = 1;
  o.parallel_history = false;
  o.record_collection_order = true;
  pintd::PintDetector det(o);
  long sink = 0;
  Xoshiro256 rng(99);
  det.run([&] { churn(3, 2, &rng, &sink); });
  verify_dag_conforming(det);
}

TEST(CollectionOrder, TinyQueueStillDagConforming) {
  // Backpressure (constant reclaim) must not reorder collection.
  pintd::PintDetector::Options o;
  o.core_workers = 3;
  o.queue_capacity = 8;
  o.record_collection_order = true;
  pintd::PintDetector det(o);
  long sink = 0;
  Xoshiro256 rng(123);
  det.run([&] { churn(4, 2, &rng, &sink); });
  verify_dag_conforming(det);
}
