// Cross-backend certification of the happens-before oracle seam
// (DESIGN.md §14; ctest label `reachmatrix`).
//
// Three layers, from the engine surface out to whole detector runs:
//
//  1. TYPED engine tests - run the same semantic checks against BOTH
//     backends (SpOrderEngine and DePaEngine are always compiled, whichever
//     one `reach::Engine` aliases), including the DePa-specific regimes:
//     paths long enough to freeze chunks, equal-label lockset splits, and
//     memo bit-identity against the un-memoized query.
//
//  2. LOCKSTEP fuzz - drive both engines through the identical random spawn
//     sequence and require bit-identical Relation verdicts on every ordered
//     label pair, with a transitive-closure oracle arbitrating.  This is
//     the in-binary half of the cross-backend bit-identity criterion: it
//     holds in every build, no matter which backend is selected.
//
//  3. DETECTOR matrix - the full kernel x detector x history-mode sweep and
//     the random-program / lock-twin suites run under the SELECTED backend,
//     with canonical race-report digests.  The ci.sh `backend` lane runs
//     this binary in a sporder build and a depa build with
//     PINT_REACH_DIGEST set and diffs the two files byte-for-byte - THAT is
//     the cross-build "race reports bit-identical" proof.  Every digested
//     configuration is deterministic (one core worker; history modes only
//     change who processes the work, never strand identity).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <tuple>
#include <vector>

#include "common.hpp"
#include "detect/report.hpp"
#include "kernels/kernels.hpp"
#include "reach/engine.hpp"

using namespace pint;
using test::Det;
using test::det_name;

// ---------------------------------------------------------------------------
// 1. Typed engine-surface tests: both backends, always.
// ---------------------------------------------------------------------------

template <class E>
class ReachBackend : public ::testing::Test {};

using BothBackends = ::testing::Types<reach::SpOrderEngine, reach::DePaEngine>;
TYPED_TEST_SUITE(ReachBackend, BothBackends);

TYPED_TEST(ReachBackend, SpawnRelations) {
  TypeParam e;
  using L = typename TypeParam::Label;
  L u = e.root_label();
  L sync;
  const auto s = e.on_spawn(u, &sync);
  EXPECT_TRUE(e.precedes(u, s.child));
  EXPECT_TRUE(e.precedes(u, s.cont));
  EXPECT_TRUE(e.parallel(s.child, s.cont));
  EXPECT_TRUE(e.left_of(s.child, s.cont));
  EXPECT_TRUE(e.precedes(s.child, sync));
  EXPECT_TRUE(e.precedes(s.cont, sync));
  EXPECT_FALSE(e.precedes(sync, s.child));
}

TYPED_TEST(ReachBackend, EqualLabelsOrderedByNeither) {
  // The lock-segmentation contract: a lock event splits a strand into
  // segments with THE SAME label and a fresh sid; such segments must be
  // ordered by neither relation bit, so they can never race with each
  // other and never perturb reader retention.
  TypeParam e;
  using L = typename TypeParam::Label;
  L u = e.root_label();
  L sync;
  const auto s = e.on_spawn(u, &sync);
  const L copy = s.child;  // the split segment carries a byte-identical label
  const auto r = e.relation(s.child, copy, nullptr);
  EXPECT_FALSE(r.eng);
  EXPECT_FALSE(r.heb);
  EXPECT_FALSE(e.parallel(s.child, copy));
  EXPECT_FALSE(e.precedes(s.child, copy));
  // Memoized route must agree.
  typename TypeParam::Memo memo;
  const auto rm = e.relation(s.child, copy, &memo);
  EXPECT_FALSE(rm.eng);
  EXPECT_FALSE(rm.heb);
}

TYPED_TEST(ReachBackend, DeepChainCrossesWordBoundaries) {
  // 200 spawns deep: DePa paths reach ~400 bits (7 words), exercising the
  // chunk freeze/shared-suffix machinery several times over; SpOrder gets
  // the same loop as a sublist-growth smoke.  Every prefix strand must
  // precede every deeper one, and each child stays parallel to every
  // later continuation's child.
  TypeParam e;
  using L = typename TypeParam::Label;
  std::vector<L> chain;   // continuation spine
  std::vector<L> kids;    // one child per level
  std::vector<L> syncs;
  chain.push_back(e.root_label());
  for (int i = 0; i < 200; ++i) {
    syncs.emplace_back();
    const auto s = e.on_spawn(chain.back(), &syncs.back());
    kids.push_back(s.child);
    chain.push_back(s.cont);
  }
  for (std::size_t i = 0; i < chain.size(); i += 37) {
    for (std::size_t j = i + 1; j < chain.size(); j += 23) {
      EXPECT_TRUE(e.precedes(chain[i], chain[j])) << i << "," << j;
      EXPECT_FALSE(e.precedes(chain[j], chain[i])) << i << "," << j;
    }
  }
  // None of the per-level sync nodes is joined back into the spine, so every
  // child is parallel to (and English-left of) everything spawned after it.
  for (std::size_t i = 0; i < kids.size(); i += 29) {
    for (std::size_t j = i + 1; j < kids.size(); j += 31) {
      EXPECT_TRUE(e.parallel(kids[i], kids[j])) << i << "," << j;
      EXPECT_TRUE(e.left_of(kids[i], kids[j])) << i << "," << j;
      EXPECT_TRUE(e.parallel(kids[i], chain[j])) << i << "," << j;
    }
    EXPECT_TRUE(e.precedes(kids[i], syncs[i])) << i;
    EXPECT_TRUE(e.precedes(chain[i + 1], syncs[i])) << i;
  }
}

TYPED_TEST(ReachBackend, WideFanSharesOneBlock) {
  // 100 spawns in ONE sync block: all children pairwise parallel, in
  // spawn order under left_of, all preceding the single sync node.
  TypeParam e;
  using L = typename TypeParam::Label;
  L cur = e.root_label();
  L sync;
  std::vector<L> kids;
  for (int i = 0; i < 100; ++i) {
    const auto s = e.on_spawn(cur, &sync);
    kids.push_back(s.child);
    cur = s.cont;
  }
  for (std::size_t i = 0; i < kids.size(); i += 13) {
    for (std::size_t j = i + 1; j < kids.size(); j += 17) {
      EXPECT_TRUE(e.parallel(kids[i], kids[j])) << i << "," << j;
      EXPECT_TRUE(e.left_of(kids[i], kids[j])) << i << "," << j;
      EXPECT_FALSE(e.left_of(kids[j], kids[i])) << i << "," << j;
    }
    EXPECT_TRUE(e.precedes(kids[i], sync));
    EXPECT_FALSE(e.precedes(sync, kids[i]));
  }
  EXPECT_TRUE(e.precedes(cur, sync));
}

TYPED_TEST(ReachBackend, MemoBitIdenticalAndCounted) {
  // The memo may change the cost of a query, never its verdict - and its
  // counters must move (detectors fold them into Stats).
  TypeParam e;
  using L = typename TypeParam::Label;
  L cur = e.root_label();
  std::vector<L> all;
  all.push_back(cur);
  for (int i = 0; i < 40; ++i) {
    L sync;
    const auto s = e.on_spawn(cur, &sync);
    all.push_back(s.child);
    all.push_back(s.cont);
    all.push_back(sync);
    cur = (i % 3 == 0) ? s.child : s.cont;
  }
  typename TypeParam::Memo memo;
  for (int pass = 0; pass < 2; ++pass) {
    for (std::size_t i = 0; i < all.size(); ++i) {
      for (std::size_t j = 0; j < all.size(); ++j) {
        const auto direct = e.relation(all[i], all[j], nullptr);
        const auto memod = e.relation(all[i], all[j], &memo);
        ASSERT_EQ(direct.eng, memod.eng) << i << "," << j << " pass " << pass;
        ASSERT_EQ(direct.heb, memod.heb) << i << "," << j << " pass " << pass;
      }
    }
  }
  EXPECT_GT(memo.queries, 0u);
  EXPECT_GT(memo.hits, 0u);  // second pass must hit
  EXPECT_LE(memo.hits, memo.queries);
  memo.clear();
  EXPECT_EQ(memo.queries, 0u);
}

TEST(DePaEngine, ChunkArenaFreezesLongPaths) {
  reach::DePaEngine e;
  EXPECT_EQ(e.chunks_minted(), 0u);
  auto cur = e.root_label();
  for (int i = 0; i < 40; ++i) {  // 40 symbols = 80 bits > one word
    reach::DePaEngine::Label sync;
    cur = e.on_spawn(cur, &sync).cont;
  }
  EXPECT_GT(e.chunks_minted(), 0u);
  EXPECT_GT(cur.bits, 64u);
  // The frozen prefix plus tail must reproduce order against a shallow label.
  const auto root = e.root_label();
  EXPECT_TRUE(e.precedes(root, cur));
  EXPECT_FALSE(e.precedes(cur, root));
}

TEST(DePaEngine, StructuralEpochIsConstant) {
  reach::DePaEngine e;
  const std::uint64_t before = e.structural_epoch();
  auto cur = e.root_label();
  for (int i = 0; i < 1000; ++i) {
    reach::DePaEngine::Label sync;
    cur = e.on_spawn(cur, &sync).cont;
  }
  EXPECT_EQ(e.structural_epoch(), before);
}

// ---------------------------------------------------------------------------
// 2. Lockstep fuzz: both engines, one spawn sequence, identical verdicts.
// ---------------------------------------------------------------------------

namespace {

/// Grows the same random fork-join computation on both engines while
/// recording ground-truth edges for a transitive-closure oracle.
struct DualBuilder {
  reach::SpOrderEngine sp;
  reach::DePaEngine dp;
  std::vector<reach::SpOrderEngine::Label> spl;
  std::vector<reach::DePaEngine::Label> dpl;
  std::vector<std::pair<int, int>> edges;
  Xoshiro256 rng;

  explicit DualBuilder(std::uint64_t seed) : rng(seed) {}

  int add(const reach::SpOrderEngine::Label& a,
          const reach::DePaEngine::Label& b) {
    spl.push_back(a);
    dpl.push_back(b);
    return int(spl.size()) - 1;
  }

  int run_function(int cur, int depth, int max_depth) {
    const int blocks = 1 + int(rng.next_below(2));
    for (int b = 0; b < blocks; ++b) {
      const bool force = depth == 0 && b == 0;
      if (!force && (depth >= max_depth || rng.next_below(100) < 30)) continue;
      // Occasional WIDE blocks so sibling fans and deep tails both occur.
      const int nspawn = rng.next_below(100) < 10 ? 6 : 1 + int(rng.next_below(3));
      reach::SpOrderEngine::Label ssync;
      reach::DePaEngine::Label dsync;
      std::vector<int> tails;
      for (int s = 0; s < nspawn; ++s) {
        const auto sl = sp.on_spawn(spl[std::size_t(cur)], &ssync);
        const auto dl = dp.on_spawn(dpl[std::size_t(cur)], &dsync);
        const int child = add(sl.child, dl.child);
        const int cont = add(sl.cont, dl.cont);
        edges.push_back({cur, child});
        edges.push_back({cur, cont});
        tails.push_back(run_function(child, depth + 1, max_depth));
        cur = cont;
      }
      const int j = add(ssync, dsync);
      edges.push_back({cur, j});
      for (int t : tails) edges.push_back({t, j});
      cur = j;
    }
    return cur;
  }
};

}  // namespace

TEST(ReachLockstep, BothBackendsBitIdenticalOnRandomDags) {
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    DualBuilder b(seed);
    const int root = b.add(b.sp.root_label(), b.dp.root_label());
    b.run_function(root, 0, seed % 3 == 0 ? 5 : 4);

    const std::size_t n = b.spl.size();
    ASSERT_GE(n, 2u);
    ASSERT_LT(n, 4000u) << "generator config drifted; closure would crawl";
    std::vector<std::vector<char>> closure(n, std::vector<char>(n, 0));
    for (auto [u, v] : b.edges) closure[std::size_t(u)][std::size_t(v)] = 1;
    for (std::size_t k = 0; k < n; ++k) {
      for (std::size_t i = 0; i < n; ++i) {
        if (!closure[i][k]) continue;
        for (std::size_t j = 0; j < n; ++j) {
          if (closure[k][j]) closure[i][j] = 1;
        }
      }
    }
    reach::SpOrderEngine::Memo smemo;
    reach::DePaEngine::Memo dmemo;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        if (i == j) continue;
        const auto rs = b.sp.relation(b.spl[i], b.spl[j], &smemo);
        const auto rd = b.dp.relation(b.dpl[i], b.dpl[j], &dmemo);
        ASSERT_EQ(rs.eng, rd.eng) << "seed=" << seed << " i=" << i << " j=" << j;
        ASSERT_EQ(rs.heb, rd.heb) << "seed=" << seed << " i=" << i << " j=" << j;
        ASSERT_EQ(rs.eng && rs.heb, bool(closure[i][j]))
            << "oracle disagrees: seed=" << seed << " i=" << i << " j=" << j;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// 3. Detector matrix under the selected backend, with canonical digests.
// ---------------------------------------------------------------------------

namespace {

/// Digest sink: when PINT_REACH_DIGEST names a file, every deterministic
/// configuration appends one canonical line.  The ci.sh backend lane diffs
/// the files from the sporder and depa builds.
struct Digest {
  static FILE* file() {
    static FILE* f = [] {
      const char* path = std::getenv("PINT_REACH_DIGEST");
      return path != nullptr ? std::fopen(path, "w") : nullptr;
    }();
    return f;
  }

  static void line(const std::string& config, std::uint64_t distinct,
                   std::vector<detect::RaceRecord> records) {
    FILE* f = file();
    if (f == nullptr) return;
    // A record's identity is (sids, kinds) - the reporter dedups on exactly
    // that.  The lo/hi range is NOT digested: it is an absolute address
    // (ASLR-scrambled across binaries) and records whichever of the pair's
    // racing accesses reported first (arrival order under pipelined
    // history), so it is environmental, not semantic.
    std::sort(records.begin(), records.end(),
              [](const detect::RaceRecord& a, const detect::RaceRecord& b) {
                return std::tie(a.prev_sid, a.cur_sid, a.prev_write,
                                a.cur_write) <
                       std::tie(b.prev_sid, b.cur_sid, b.prev_write,
                                b.cur_write);
              });
    std::fprintf(f, "%s distinct=%llu", config.c_str(),
                 (unsigned long long)distinct);
    for (const auto& r : records) {
      std::fprintf(f, " %llu%c:%llu%c",
                   (unsigned long long)r.prev_sid, r.prev_write ? 'W' : 'R',
                   (unsigned long long)r.cur_sid, r.cur_write ? 'W' : 'R');
    }
    std::fprintf(f, "\n");
    std::fflush(f);
  }
};

struct MatrixRun {
  bool any_race = false;
  std::uint64_t distinct = 0;
  std::uint64_t dropped = 0;
  std::vector<detect::RaceRecord> records;
};

// Deterministic detector configurations: exactly one core worker, so strand
// identity (sids) is schedule-independent and race-report sets are
// reproducible across builds.  The history modes - STINT inline, PINT
// phased, PINT pipelined, PINT sharded, C-RACER, oracle - only move WHERE
// conflict checks run, never which strands exist.
enum class Mode { kStint, kPhased, kPipelined, kSharded, kCracer, kOracle };

const char* mode_name(Mode m) {
  switch (m) {
    case Mode::kStint: return "stint";
    case Mode::kPhased: return "pint_phased";
    case Mode::kPipelined: return "pint_pipelined";
    case Mode::kSharded: return "pint_sharded";
    case Mode::kCracer: return "cracer";
    case Mode::kOracle: return "oracle";
  }
  return "?";
}

const std::vector<Mode>& all_modes() {
  static const std::vector<Mode> v = {Mode::kStint,   Mode::kPhased,
                                      Mode::kPipelined, Mode::kSharded,
                                      Mode::kCracer,  Mode::kOracle};
  return v;
}

MatrixRun run_mode(Mode m, const std::function<void()>& body) {
  MatrixRun out;
  switch (m) {
    case Mode::kStint: {
      stint::StintDetector det(stint::StintDetector::Options{});
      det.run(body);
      out = {det.reporter().any(), det.reporter().distinct_races(),
             det.reporter().dropped_records(), det.reporter().records()};
      break;
    }
    case Mode::kPhased:
    case Mode::kPipelined:
    case Mode::kSharded: {
      pintd::PintDetector::Options o;
      o.core_workers = 1;
      o.parallel_history = m != Mode::kPhased;
      if (m == Mode::kSharded) o.history_shards = 3;
      pintd::PintDetector det(o);
      det.run(body);
      out = {det.reporter().any(), det.reporter().distinct_races(),
             det.reporter().dropped_records(), det.reporter().records()};
      break;
    }
    case Mode::kCracer: {
      cracer::CracerDetector::Options o;
      o.workers = 1;
      cracer::CracerDetector det(o);
      det.run(body);
      out = {det.reporter().any(), det.reporter().distinct_races(),
             det.reporter().dropped_records(), det.reporter().records()};
      break;
    }
    case Mode::kOracle: {
      oracle::OracleDetector det;
      det.run(body);
      out.any_race = det.any_race();
      out.distinct = det.any_race() ? 1 : 0;
      break;
    }
  }
  return out;
}

}  // namespace

// All 7 kernels x every detector/history mode: race-free inputs must report
// ZERO races under the selected backend (false positives are what a broken
// relation would produce first), verify() must hold, and each cell lands in
// the digest.
class ReachMatrixKernels
    : public ::testing::TestWithParam<std::tuple<std::string, Mode>> {};

TEST_P(ReachMatrixKernels, RaceFreeKernelStaysSilent) {
  const auto& [kernel, mode] = GetParam();
  kernels::KernelConfig cfg;
  cfg.scale = 0.12;
  auto k = kernels::make_kernel(kernel, cfg);
  k->prepare();
  const MatrixRun r = run_mode(mode, [&] { k->run(); });
  EXPECT_TRUE(k->verify()) << kernel << " under " << mode_name(mode);
  EXPECT_FALSE(r.any_race)
      << kernel << " false race under " << mode_name(mode) << " backend "
      << reach::Engine::kName;
  EXPECT_EQ(r.distinct, 0u);
  Digest::line(std::string("kernel/") + kernel + "/" + mode_name(mode),
               r.distinct, r.records);
}

INSTANTIATE_TEST_SUITE_P(
    AllKernelsAllModes, ReachMatrixKernels,
    ::testing::Combine(::testing::ValuesIn(kernels::kernel_names()),
                       ::testing::ValuesIn(all_modes())),
    [](const auto& info) {
      return std::get<0>(info.param) + "_" +
             mode_name(std::get<1>(info.param));
    });

// Seeded-race kernel variants: every mode must catch the race, and the
// deterministic report set goes into the digest.
class ReachMatrixSeeded : public ::testing::TestWithParam<Mode> {};

TEST_P(ReachMatrixSeeded, SeededRacesCaughtAndDigested) {
  const Mode mode = GetParam();
  for (const char* kernel : {"mmul", "heat", "sort"}) {
    kernels::KernelConfig cfg;
    cfg.scale = 0.12;
    cfg.seeded_race = true;
    auto k = kernels::make_kernel(kernel, cfg);
    k->prepare();
    const MatrixRun r = run_mode(mode, [&] { k->run(); });
    EXPECT_TRUE(r.any_race) << kernel << " seeded race missed under "
                            << mode_name(mode);
    // Seeded kernels race on hundreds of distinct pairs - past the 256-record
    // cap the record LIST depends on arrival order (history workers), so only
    // the exact distinct-pair count is digested once records were dropped.
    Digest::line(std::string("seeded/") + kernel + "/" + mode_name(mode),
                 r.distinct,
                 r.dropped == 0 ? r.records : std::vector<detect::RaceRecord>{});
  }
}

INSTANTIATE_TEST_SUITE_P(AllModes, ReachMatrixSeeded,
                         ::testing::ValuesIn(all_modes()),
                         [](const auto& info) { return mode_name(info.param); });

// Random-program property fuzz: the selected backend must agree with the
// oracle on ANY-race for every generated program, in every history mode;
// racy programs' deterministic report sets join the digest.
TEST(ReachMatrixFuzz, RandomProgramsMatchOracle) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    for (const bool race_free : {true, false}) {
      test::ProgramConfig cfg;
      cfg.race_free = race_free;
      test::ProgramGen gen(seed, cfg);
      auto prog = gen.generate();
      const std::size_t pool = test::program_pool_bytes(cfg);
      const bool oracle_race = test::oracle_any_race(*prog, pool);
      if (race_free) {
        EXPECT_FALSE(oracle_race) << "seed=" << seed;
      }
      for (const Mode mode : all_modes()) {
        if (mode == Mode::kOracle) continue;
        std::vector<unsigned char> mem(pool, 0);
        unsigned char* base = mem.data();
        const test::PNode* p = prog.get();
        const MatrixRun r =
            run_mode(mode, [p, base] { test::exec_node(*p, base); });
        EXPECT_EQ(r.any_race, oracle_race)
            << "seed=" << seed << " race_free=" << race_free << " mode="
            << mode_name(mode) << " backend=" << reach::Engine::kName;
        char tag[64];
        std::snprintf(tag, sizeof tag, "fuzz/seed%llu/%s/%s",
                      (unsigned long long)seed, race_free ? "clean" : "racy",
                      mode_name(mode));
        if (r.dropped == 0) Digest::line(tag, r.distinct, r.records);
      }
    }
  }
}

// Lock-kernel twins (test_locks.cpp's matrix) re-run under the selected
// backend: mutex-guarded twins stay silent - equal-label segment splits
// must remain inert under immutable DePa labels - and unguarded twins keep
// racing.
TEST(ReachMatrixLocks, LockTwinsAgreeUnderSelectedBackend) {
  for (const char* kernel : {"lktwin", "lkcache"}) {
    for (const bool seeded : {false, true}) {
      for (const Mode mode : all_modes()) {
        if (mode == Mode::kOracle) continue;  // oracle has no lock filter
        kernels::KernelConfig cfg;
        cfg.scale = 0.3;
        cfg.seeded_race = seeded;
        auto k = kernels::make_kernel(kernel, cfg);
        k->prepare();
        const MatrixRun r = run_mode(mode, [&] { k->run(); });
        EXPECT_EQ(r.any_race, seeded)
            << kernel << " seeded=" << seeded << " under " << mode_name(mode)
            << " backend " << reach::Engine::kName;
        if (r.dropped == 0) {
          Digest::line(std::string("locks/") + kernel +
                           (seeded ? "/unguarded/" : "/guarded/") +
                           mode_name(mode),
                       r.distinct, r.records);
        }
      }
    }
  }
}
