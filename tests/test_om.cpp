// Unit + property tests for the concurrent order-maintenance list.

#include <gtest/gtest.h>

#include <atomic>
#include <list>
#include <thread>
#include <vector>

#include "om/order_maintenance.hpp"
#include "support/rng.hpp"

using namespace pint;

TEST(Om, BaseIsMinimum) {
  om::List l;
  auto* b = l.base();
  auto* x = l.insert_after(b);
  EXPECT_TRUE(l.precedes(b, x));
  EXPECT_FALSE(l.precedes(x, b));
  EXPECT_FALSE(l.precedes(x, x));
}

TEST(Om, InsertAfterOrdersBetween) {
  om::List l;
  auto* a = l.base();
  auto* c = l.insert_after(a);
  auto* b = l.insert_after(a);  // between a and c
  EXPECT_TRUE(l.precedes(a, b));
  EXPECT_TRUE(l.precedes(b, c));
  EXPECT_TRUE(l.precedes(a, c));
  EXPECT_TRUE(l.check_invariants());
}

TEST(Om, AppendChainStaysOrdered) {
  om::List l;
  std::vector<om::Item*> items{l.base()};
  for (int i = 0; i < 1000; ++i) items.push_back(l.insert_after(items.back()));
  for (std::size_t i = 0; i + 1 < items.size(); i += 37) {
    EXPECT_TRUE(l.precedes(items[i], items[i + 1]));
    EXPECT_FALSE(l.precedes(items[i + 1], items[i]));
  }
  EXPECT_TRUE(l.check_invariants());
  EXPECT_EQ(l.size(), items.size());
}

TEST(Om, HotspotInsertionForcesRedistribution) {
  // Repeated insert-after-the-same-item exhausts local subtag gaps and must
  // trigger redistributions/splits while keeping the order correct.
  om::List l;
  auto* pivot = l.insert_after(l.base());
  auto* end = l.insert_after(pivot);
  om::Item* prev = nullptr;
  for (int i = 0; i < 5000; ++i) {
    om::Item* x = l.insert_after(pivot);
    EXPECT_TRUE(l.precedes(pivot, x));
    EXPECT_TRUE(l.precedes(x, end));
    if (prev) {
      EXPECT_TRUE(l.precedes(x, prev));  // each lands right after pivot
    }
    prev = x;
  }
  EXPECT_GT(l.structural_mutations(), 0u);
  EXPECT_TRUE(l.check_invariants());
}

TEST(Om, PropertyMatchesListReference) {
  // Random insert-afters mirrored into a std::list; verify precedes()
  // matches the reference order on random pairs.
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    Xoshiro256 rng(seed);
    om::List l;
    std::list<om::Item*> ref{l.base()};
    std::vector<std::list<om::Item*>::iterator> iters;
    iters.push_back(ref.begin());
    for (int i = 0; i < 2000; ++i) {
      const auto pos = rng.next_below(iters.size());
      auto it = iters[pos];
      om::Item* x = l.insert_after(*it);
      auto nit = ref.insert(std::next(it), x);
      iters.push_back(nit);
    }
    ASSERT_TRUE(l.check_invariants());
    // Build rank map from the reference.
    std::vector<const om::Item*> order(ref.begin(), ref.end());
    for (int q = 0; q < 4000; ++q) {
      const auto i = rng.next_below(order.size());
      const auto j = rng.next_below(order.size());
      EXPECT_EQ(l.precedes(order[i], order[j]), i < j)
          << "seed=" << seed << " i=" << i << " j=" << j;
    }
  }
}

TEST(Om, ConcurrentInsertAndQueryStress) {
  om::List l;
  // A shared ordered backbone.
  std::vector<om::Item*> backbone{l.base()};
  for (int i = 0; i < 512; ++i) backbone.push_back(l.insert_after(backbone.back()));

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> bad{0};

  std::vector<std::thread> writers;
  for (int t = 0; t < 3; ++t) {
    writers.emplace_back([&, t] {
      Xoshiro256 rng(100 + std::uint64_t(t));
      // Each writer grows private chains hanging off backbone items and
      // checks its own chain ordering (single-writer-per-chain).
      for (int rounds = 0; rounds < 200; ++rounds) {
        om::Item* anchor = backbone[rng.next_below(backbone.size())];
        om::Item* prev = anchor;
        std::vector<om::Item*> chain;
        for (int i = 0; i < 20; ++i) {
          prev = l.insert_after(prev);
          chain.push_back(prev);
        }
        for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
          if (!l.precedes(chain[i], chain[i + 1])) bad.fetch_add(1);
        }
        if (!l.precedes(anchor, chain.front())) bad.fetch_add(1);
      }
    });
  }
  std::thread reader([&] {
    Xoshiro256 rng(999);
    while (!stop.load(std::memory_order_relaxed)) {
      const auto i = rng.next_below(backbone.size());
      const auto j = rng.next_below(backbone.size());
      const bool p = l.precedes(backbone[i], backbone[j]);
      if (p != (i < j)) bad.fetch_add(1);
    }
  });
  for (auto& w : writers) w.join();
  stop.store(true);
  reader.join();
  EXPECT_EQ(bad.load(), 0u);
  EXPECT_TRUE(l.check_invariants());
}

TEST(Om, ManyGroupsSplitKeepsGlobalOrder) {
  om::List l;
  std::vector<om::Item*> items{l.base()};
  // Force many group splits by bulk appending.
  for (int i = 0; i < 20000; ++i) items.push_back(l.insert_after(items.back()));
  EXPECT_TRUE(l.check_invariants());
  Xoshiro256 rng(5);
  for (int q = 0; q < 2000; ++q) {
    const auto i = rng.next_below(items.size());
    const auto j = rng.next_below(items.size());
    if (i == j) continue;
    EXPECT_EQ(l.precedes(items[i], items[j]), i < j);
  }
}

// Regression: structural-mutation windows must be serialized.  Before
// struct_lock_, two inserters splitting DIFFERENT groups interleaved their
// seqlock open/close read-modify-writes; the counter could pass through an
// even value mid-window (queries validating torn coordinates) and end the
// race stranded odd, after which every precedes() retried forever.  Four
// hotspot writers + four readers reproduced that hang within milliseconds.
// The test hammers exactly that schedule; completing (and agreeing with the
// intra-chain ground truth) is the assertion - under the old code it never
// terminates.
TEST(Om, ConcurrentSplitsSerializeTheSeqlockWindow) {
  om::List l;
  constexpr int kWriters = 4;
  constexpr int kReaders = 4;
  constexpr int kSpawnsPerWriter = 30000;  // far past many split cycles

  // One hotspot anchor per writer, spread across distinct groups.
  std::vector<om::Item*> anchors;
  om::Item* cur = l.base();
  for (int w = 0; w < kWriters; ++w) {
    for (int i = 0; i < 80; ++i) cur = l.insert_after(cur);  // force groups
    anchors.push_back(cur);
  }

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> bad{0};
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      om::Item* prev = anchors[std::size_t(w)];
      for (int i = 0; i < kSpawnsPerWriter; ++i) {
        om::Item* next = l.insert_after(prev);
        if (!l.precedes(prev, next)) bad.fetch_add(1);
        prev = next;
      }
    });
  }
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      Xoshiro256 rng(std::uint64_t(r) + 100);
      while (!stop.load(std::memory_order_relaxed)) {
        const auto i = rng.next_below(anchors.size());
        const auto j = rng.next_below(anchors.size());
        if (i == j) continue;
        if (l.precedes(anchors[i], anchors[j]) != (i < j)) bad.fetch_add(1);
      }
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true);
  for (auto& r : readers) r.join();
  EXPECT_EQ(bad.load(), 0u);
  EXPECT_TRUE(l.check_invariants());
}
