// Concurrency stress tests, written to be run under the sanitizer lanes
// (-DPINT_SAN=thread / address, see scripts/ci.sh) as well as plain builds.
// They hammer exactly the cross-thread protocols DESIGN.md's
// "Memory-ordering contracts" section documents: AhQueue publish/reclaim
// with slot wrap-around, strand pool recycling, OM seqlock queries racing
// structural mutations, and the full PINT pipeline under a tiny queue.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <thread>
#include <vector>

#include "common.hpp"
#include "detect/strand.hpp"
#include "kernels/kernels.hpp"
#include "om/order_maintenance.hpp"
#include "pint/ah_queue.hpp"
#include "pint/sharded_history.hpp"

using namespace pint;

// ---------------------------------------------------------------------------
// AhQueue: one producer, three consumers, heavy wrap-around + reclaim
// ---------------------------------------------------------------------------

namespace {

// The queue stores Strand*; for the stress test only sid (sequence number)
// and the consumers counter matter.
struct StrandPool {
  std::vector<std::unique_ptr<detect::Strand>> owned;
  std::vector<detect::Strand*> free_list;
  explicit StrandPool(std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      owned.push_back(std::make_unique<detect::Strand>());
      free_list.push_back(owned.back().get());
    }
  }
};

}  // namespace

TEST(AhQueueStress, ProducerAndThreeConsumersWrapAround) {
  constexpr std::uint64_t kPushes = 5000;
  constexpr int kConsumers = 3;
  constexpr std::size_t kCapacity = 8;  // tiny ring => constant wrap-around

  pintd::AhQueue q(kCapacity);
  StrandPool pool(2 * kCapacity);

  std::atomic<bool> fail{false};
  std::uint64_t next_reclaimed_sid = 0;  // producer-local: reclaim order check

  std::thread producer([&] {
    std::uint64_t sid = 0;
    while (sid < kPushes) {
      detect::Strand* s = nullptr;
      while (s == nullptr) {
        if (!pool.free_list.empty()) {
          s = pool.free_list.back();
          pool.free_list.pop_back();
          break;
        }
        q.reclaim([&](detect::Strand* d) {
          // Reclaim must hand strands back in push (FIFO) order.
          if (d->sid != next_reclaimed_sid) fail.store(true);
          ++next_reclaimed_sid;
          pool.free_list.push_back(d);
        });
        if (pool.free_list.empty()) std::this_thread::yield();
      }
      s->sid = sid;
      s->consumers.store(kConsumers, std::memory_order_release);
      while (!q.try_push(s)) {
        q.reclaim([&](detect::Strand* d) {
          if (d->sid != next_reclaimed_sid) fail.store(true);
          ++next_reclaimed_sid;
          pool.free_list.push_back(d);
        });
        std::this_thread::yield();
      }
      ++sid;
    }
    // Drain the in-flight tail (reclaim is producer-only, so the final
    // drain must happen on this thread, not after join on the main thread).
    while (q.reclaimed() < kPushes) {
      q.reclaim([&](detect::Strand* d) {
        if (d->sid != next_reclaimed_sid) fail.store(true);
        ++next_reclaimed_sid;
      });
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&q, &fail] {
      q.register_consumer();
      std::uint64_t cursor = 0;
      while (cursor < kPushes) {
        const std::uint64_t h = q.head();
        if (cursor == h) {
          std::this_thread::yield();
          continue;
        }
        while (cursor < h) {
          detect::Strand* s = q.at(cursor);
          // Publication contract: every slot < head() holds the strand with
          // exactly its cursor's sequence number.
          if (s->sid != cursor) fail.store(true);
          s->consumers.fetch_sub(1, std::memory_order_acq_rel);
          ++cursor;
        }
      }
      q.unregister_consumer();
    });
  }

  producer.join();
  for (auto& t : consumers) t.join();

  EXPECT_FALSE(fail.load());
  EXPECT_EQ(q.reclaimed(), kPushes);
  EXPECT_EQ(next_reclaimed_sid, kPushes);
  EXPECT_EQ(q.active_consumers(), 0);
}

// Deterministic reclaim-ordering semantics: reclamation is strictly FIFO -
// a finished strand behind an unfinished one stays unreclaimed.
TEST(AhQueueStress, ReclaimIsFifoEvenWhenLaterSlotsFinishFirst) {
  pintd::AhQueue q(4);
  StrandPool pool(4);
  detect::Strand* s[4];
  for (int i = 0; i < 4; ++i) {
    s[i] = pool.owned[std::size_t(i)].get();
    s[i]->sid = std::uint64_t(i);
    s[i]->consumers.store(1, std::memory_order_release);
    ASSERT_TRUE(q.try_push(s[i]));
  }
  detect::Strand extra;
  EXPECT_FALSE(q.try_push(&extra));  // ring full

  // Finish slots 1..3 but NOT 0: nothing is reclaimable yet.
  for (int i = 1; i < 4; ++i) {
    s[i]->consumers.fetch_sub(1, std::memory_order_acq_rel);
  }
  std::vector<std::uint64_t> order;
  q.reclaim([&](detect::Strand* d) { order.push_back(d->sid); });
  EXPECT_TRUE(order.empty());
  EXPECT_EQ(q.reclaimed(), 0u);

  // Finishing slot 0 unblocks all four, in push order.
  s[0]->consumers.fetch_sub(1, std::memory_order_acq_rel);
  q.reclaim([&](detect::Strand* d) { order.push_back(d->sid); });
  EXPECT_EQ(order, (std::vector<std::uint64_t>{0, 1, 2, 3}));
  EXPECT_EQ(q.reclaimed(), 4u);

  // The freed capacity is usable again (wrap-around indices).
  for (int i = 0; i < 4; ++i) {
    s[i]->sid = std::uint64_t(4 + i);
    s[i]->consumers.store(0, std::memory_order_release);
    ASSERT_TRUE(q.try_push(s[i]));
  }
  EXPECT_EQ(q.at(4)->sid, 4u);
  EXPECT_EQ(q.at(7)->sid, 7u);
}

TEST(AhQueueDeathTest, GrowWithLiveConsumerIsRejected) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        pintd::AhQueue q(4);
        q.register_consumer();
        q.grow_unsynchronized();
      },
      "live consumer");
}

#ifndef NDEBUG
// Debug-only: producer-side calls are pinned to the first caller's thread.
TEST(AhQueueDeathTest, SecondProducerThreadIsRejected) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        pintd::AhQueue q(4);
        detect::Strand s;
        std::thread t([&] { (void)q.try_push(&s); });
        t.join();
        (void)q.try_push(&s);  // second producer thread: contract violation
      },
      "single-producer");
}
#endif

// ---------------------------------------------------------------------------
// OM list: lock-free precedes() queries racing structural mutations
// ---------------------------------------------------------------------------

TEST(OmStress, QueriesRaceSplitsAndRelabels) {
  om::List list;

  // A known chain: items[i] precedes items[j] iff i < j.  Later concurrent
  // inserts land *between* existing items and cannot disturb this order.
  constexpr std::size_t kChain = 200;
  std::vector<om::Item*> items;
  items.reserve(kChain);
  om::Item* x = list.base();
  for (std::size_t i = 0; i < kChain; ++i) {
    x = list.insert_after(x);
    items.push_back(x);
  }

  std::atomic<bool> stop{false};
  std::atomic<bool> fail{false};

  // Two inserters keep splitting groups / relabelling the top level by
  // always inserting at the same hot spots.
  std::vector<std::thread> inserters;
  for (int t = 0; t < 2; ++t) {
    inserters.emplace_back([&list, &items, t] {
      Xoshiro256 rng(std::uint64_t(91 + t));
      for (int i = 0; i < 2000; ++i) {
        om::Item* at = items[rng.next_below(items.size())];
        om::Item* fresh = list.insert_after(at);
        // Chain a few more after the fresh item to stress subtag gaps.
        list.insert_after(fresh);
      }
    });
  }

  std::vector<std::thread> queriers;
  for (int t = 0; t < 2; ++t) {
    queriers.emplace_back([&list, &items, &stop, &fail, t] {
      Xoshiro256 rng(std::uint64_t(17 + t));
      std::uint64_t q = 0;
      while (!stop.load(std::memory_order_acquire) || q < 2000) {
        const std::size_t i = rng.next_below(kChain);
        const std::size_t j = rng.next_below(kChain);
        if (i == j) continue;
        const bool got = list.precedes(items[i], items[j]);
        if (got != (i < j)) fail.store(true);
        ++q;
      }
    });
  }

  for (auto& t : inserters) t.join();
  stop.store(true, std::memory_order_release);
  for (auto& t : queriers) t.join();

  EXPECT_FALSE(fail.load());
  EXPECT_TRUE(list.check_invariants());
  EXPECT_EQ(list.size(), 1 + kChain + 2 * 2000 * 2);
  EXPECT_GT(list.structural_mutations(), 0u);
}

// ---------------------------------------------------------------------------
// for_shard_pieces: boundary regression near the top of the address space
// ---------------------------------------------------------------------------

namespace {

// Collects the pieces of [lo, hi] over ALL shards and verifies they tile the
// interval exactly (complete, disjoint, in order, no overflow wrap).
void check_piece_tiling(detect::addr_t lo, detect::addr_t hi, int nshards) {
  struct Piece {
    detect::addr_t lo, hi;
  };
  std::vector<Piece> pieces;
  for (int shard = 0; shard < nshards; ++shard) {
    pintd::for_shard_pieces(lo, hi, shard, nshards,
                            [&](detect::addr_t plo, detect::addr_t phi) {
                              pieces.push_back({plo, phi});
                              // Piece lies in one stripe owned by `shard`.
                              EXPECT_LE(plo, phi);
                              EXPECT_EQ(plo / pintd::kShardStripeBytes,
                                        phi / pintd::kShardStripeBytes);
                              EXPECT_EQ(int((plo / pintd::kShardStripeBytes) %
                                            std::uint64_t(nshards)),
                                        shard);
                            });
  }
  std::sort(pieces.begin(), pieces.end(),
            [](const Piece& a, const Piece& b) { return a.lo < b.lo; });
  ASSERT_FALSE(pieces.empty());
  EXPECT_EQ(pieces.front().lo, lo);
  EXPECT_EQ(pieces.back().hi, hi);
  for (std::size_t k = 1; k < pieces.size(); ++k) {
    EXPECT_EQ(pieces[k].lo, pieces[k - 1].hi + 1);
  }
}

}  // namespace

TEST(ShardPieces, TilesSmallIntervals) {
  for (int nshards = 1; nshards <= 4; ++nshards) {
    check_piece_tiling(0, 0, nshards);
    check_piece_tiling(0, pintd::kShardStripeBytes - 1, nshards);
    check_piece_tiling(5, 5 * pintd::kShardStripeBytes + 123, nshards);
    check_piece_tiling(pintd::kShardStripeBytes - 1, pintd::kShardStripeBytes,
                       nshards);
  }
}

TEST(ShardPieces, TilesIntervalsTouchingAddrMax) {
  constexpr detect::addr_t kMax = std::numeric_limits<detect::addr_t>::max();
  for (int nshards = 1; nshards <= 4; ++nshards) {
    // Entirely inside the very last stripe (the old `slo + stripe - 1`
    // arithmetic and `stripe <= last` loop bound are most fragile here).
    check_piece_tiling(kMax, kMax, nshards);
    check_piece_tiling(kMax - 10, kMax, nshards);
    // Crossing into the last stripe.
    check_piece_tiling(kMax - pintd::kShardStripeBytes - 5, kMax, nshards);
    check_piece_tiling(kMax - 3 * pintd::kShardStripeBytes, kMax - 1, nshards);
  }
}

// ---------------------------------------------------------------------------
// Full PINT pipeline under a tiny queue (constant reclaim pressure)
// ---------------------------------------------------------------------------

namespace {

test::DetRun run_pint_tiny_queue(const std::function<void()>& body,
                                 std::uint64_t seed, int core_workers,
                                 int history_shards) {
  pintd::PintDetector::Options o;
  o.seed = seed;
  o.core_workers = core_workers;
  o.parallel_history = true;
  o.history_shards = history_shards;
  o.queue_capacity = 8;  // tiny: every few strands wrap the ring
  pintd::PintDetector det(o);
  det.run(body);
  return {det.reporter().any(), det.reporter().distinct_races()};
}

}  // namespace

TEST(PintStress, TinyQueueManyCoresMatchesOracle) {
  for (std::uint64_t seed : {11u, 23u, 57u}) {
    test::ProgramConfig cfg;
    cfg.max_depth = 5;
    cfg.max_children = 3;
    auto prog = test::ProgramGen(seed, cfg).generate();
    const bool expect = test::oracle_any_race(*prog, cfg.pool_bytes);

    std::vector<unsigned char> pool(cfg.pool_bytes, 0);
    unsigned char* base = pool.data();
    const test::PNode* p = prog.get();
    const auto r =
        run_pint_tiny_queue([p, base] { test::exec_node(*p, base); }, seed,
                            /*core_workers=*/4, /*history_shards=*/0);
    EXPECT_EQ(r.any_race, expect) << "seed=" << seed;
  }
}

TEST(PintStress, TinyQueueRaceFreeStaysSilent) {
  for (std::uint64_t seed : {5u, 29u}) {
    test::ProgramConfig cfg;
    cfg.max_depth = 5;
    cfg.race_free = true;
    auto prog = test::ProgramGen(seed, cfg).generate();

    std::vector<unsigned char> pool(test::program_pool_bytes(cfg), 0);
    unsigned char* base = pool.data();
    const test::PNode* p = prog.get();
    const auto r =
        run_pint_tiny_queue([p, base] { test::exec_node(*p, base); }, seed,
                            /*core_workers=*/4, /*history_shards=*/0);
    EXPECT_FALSE(r.any_race) << "seed=" << seed;
  }
}

TEST(PintStress, TinyQueueShardedHistoryMatchesOracle) {
  for (std::uint64_t seed : {13u, 41u}) {
    test::ProgramConfig cfg;
    cfg.max_depth = 4;
    auto prog = test::ProgramGen(seed, cfg).generate();
    const bool expect = test::oracle_any_race(*prog, cfg.pool_bytes);

    std::vector<unsigned char> pool(cfg.pool_bytes, 0);
    unsigned char* base = pool.data();
    const test::PNode* p = prog.get();
    const auto r =
        run_pint_tiny_queue([p, base] { test::exec_node(*p, base); }, seed,
                            /*core_workers=*/2, /*history_shards=*/3);
    EXPECT_EQ(r.any_race, expect) << "seed=" << seed;
  }
}

TEST(PintStress, SeededRaceKernelCaughtUnderTwoWorkers) {
  kernels::KernelConfig kc;
  kc.scale = 0.08;
  kc.seeded_race = true;
  auto k = kernels::make_kernel("mmul", kc);
  k->prepare();

  pintd::PintDetector::Options o;
  o.seed = 3;
  o.core_workers = 2;
  o.parallel_history = true;
  o.queue_capacity = 8;
  pintd::PintDetector det(o);
  det.run([&] { k->run(); });
  EXPECT_TRUE(det.reporter().any()) << "missed the seeded race";
}

// ---------------------------------------------------------------------------
// Stats: clear()/snapshot() are only meaningful at quiescence
// ---------------------------------------------------------------------------

TEST(StatsContract, SnapshotAndClearAtQuiescence) {
  pintd::PintDetector::Options o;
  o.seed = 9;
  o.core_workers = 2;
  o.parallel_history = true;
  pintd::PintDetector det(o);
  std::vector<unsigned char> pool(256, 0);
  unsigned char* base = pool.data();
  det.run([base] {
    rt::SpawnScope sc;
    sc.spawn([base] { record_write(base, 16); });
    record_write(base + 64, 16);
    sc.sync();
  });

  // run() joined every worker and history thread: the snapshot is coherent.
  const auto snap = const_cast<detect::Stats&>(det.stats()).snapshot();
  EXPECT_GT(snap.raw_writes, 0u);
  EXPECT_GT(snap.strands, 0u);
  EXPECT_GT(snap.total_ns, 0u);

  // clear() at quiescence resets every field; a fresh snapshot shows zeros.
  const_cast<detect::Stats&>(det.stats()).clear();
  const auto zero = det.stats().snapshot();
  EXPECT_EQ(zero.raw_reads, 0u);
  EXPECT_EQ(zero.raw_writes, 0u);
  EXPECT_EQ(zero.strands, 0u);
  EXPECT_EQ(zero.traces, 0u);
  EXPECT_EQ(zero.total_ns, 0u);
}
