// Tests for the detection-layer plumbing: race reporter, instrumentation
// facade, dmalloc/dfree, and PINT-specific machinery (queue backpressure,
// strand recycling, stats accounting).

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common.hpp"
#include "detect/instrument.hpp"
#include "detect/report.hpp"
#include "cracer/cracer_detector.hpp"
#include "pint/pint_detector.hpp"
#include "stint/stint_detector.hpp"

using namespace pint;

TEST(Reporter, DedupsByStrandPair) {
  detect::RaceReporter rep;
  rep.report(1, true, 2, true, 0, 7);
  rep.report(1, true, 2, true, 8, 15);   // same pair+kinds: deduped
  rep.report(2, true, 1, true, 0, 7);    // symmetric: deduped
  rep.report(1, true, 3, true, 0, 7);    // different pair
  rep.report(1, false, 2, true, 0, 7);   // different kinds: kept
  EXPECT_EQ(rep.distinct_races(), 3u);
  EXPECT_EQ(rep.raw_reports(), 5u);
  EXPECT_TRUE(rep.any());
}

TEST(Reporter, RecordsCapped) {
  detect::RaceReporter rep(4);
  for (std::uint64_t i = 0; i < 100; ++i) rep.report(i, true, i + 1000, true, 0, 0);
  EXPECT_EQ(rep.records().size(), 4u);
  EXPECT_EQ(rep.distinct_races(), 100u);
}

TEST(Reporter, ClearResets) {
  detect::RaceReporter rep;
  rep.report(1, true, 2, true, 0, 0);
  rep.clear();
  EXPECT_FALSE(rep.any());
  EXPECT_TRUE(rep.records().empty());
}

TEST(Instrument, NoopWithoutDetector) {
  // Outside any detector run, records must be harmless no-ops.
  long x = 0;
  record_write(&x, sizeof(x));
  record_read(&x, sizeof(x));
  SUCCEED();
}

TEST(Instrument, DmallocRoundTrip) {
  void* p = dmalloc(100);
  ASSERT_NE(p, nullptr);
  std::memset(p, 0xAB, 100);
  dfree(p);  // no detector active: frees immediately
  dfree(nullptr);  // must be a no-op
}

TEST(PintInternals, QueueBackpressureWithTinyQueue) {
  // A queue far smaller than the strand count forces the writer to reclaim
  // continuously; everything must still complete and detect correctly.
  pintd::PintDetector::Options o;
  o.core_workers = 2;
  o.queue_capacity = 16;
  pintd::PintDetector d(o);
  std::vector<long> x(512, 0);
  d.run([&] {
    struct Go {
      static void rec(long* b, std::size_t n) {
        if (n <= 8) {
          record_write(b, n * sizeof(long));
          return;
        }
        rt::SpawnScope sc;
        const std::size_t h = n / 2;
        sc.spawn([b, h] { rec(b, h); });
        rec(b + h, n - h);
        sc.sync();
      }
    };
    Go::rec(x.data(), x.size());
  });
  EXPECT_FALSE(d.reporter().any());
  EXPECT_GT(d.stats().strands.load(), 100u);
}

TEST(PintInternals, StatsAccounting) {
  pintd::PintDetector::Options o;
  o.core_workers = 1;
  o.parallel_history = false;
  pintd::PintDetector d(o);
  std::vector<long> x(64, 0);
  d.run([&] {
    rt::SpawnScope sc;
    sc.spawn([&] {
      record_write(&x[0], 8);
      record_write(&x[1], 8);  // adjacent: coalesces into one interval
    });
    record_read(&x[32], 8);
    sc.sync();
  });
  const auto s = d.stats().snapshot();
  EXPECT_EQ(s.raw_writes, 2u);
  EXPECT_EQ(s.raw_reads, 1u);
  EXPECT_EQ(s.write_intervals, 1u);  // coalesced
  EXPECT_EQ(s.read_intervals, 1u);
  EXPECT_GE(s.strands, 4u);  // root pieces + child + sync node
  EXPECT_GE(s.traces, 1u);
  EXPECT_GT(s.total_ns, 0u);
}

TEST(PintInternals, CoalescingOffTracksRawIntervals) {
  pintd::PintDetector::Options o;
  o.core_workers = 1;
  o.parallel_history = false;
  o.coalesce = false;
  pintd::PintDetector d(o);
  std::vector<long> x(64, 0);
  d.run([&] {
    for (int i = 0; i < 8; i += 2) {
      record_write(&x[std::size_t(i * 4)], 8);  // far apart: 4 raw intervals
    }
  });
  EXPECT_EQ(d.stats().snapshot().write_intervals, 4u);
  EXPECT_FALSE(d.reporter().any());
}

TEST(PintInternals, ManyRunsRecycleStrands) {
  // Strand churn well above the pool's initial size; the writer must keep
  // recycling through the consumer counters without leaks or crashes.
  pintd::PintDetector::Options o;
  o.core_workers = 3;
  o.queue_capacity = 64;
  pintd::PintDetector d(o);
  std::vector<long> x(4096, 0);
  d.run([&] {
    struct Go {
      static void rec(long* b, std::size_t n) {
        if (n <= 4) {
          record_read(b, n * sizeof(long));
          return;
        }
        rt::SpawnScope sc;
        const std::size_t h = n / 2;
        sc.spawn([b, h] { rec(b, h); });
        rec(b + h, n - h);
        sc.sync();
        record_write(b, 8);
      }
    };
    Go::rec(x.data(), x.size());
  });
  // Every write happens after the sync of its own subtree and the two
  // subtree footprints are disjoint: race-free.
  EXPECT_FALSE(d.reporter().any());
  EXPECT_GT(d.stats().strands.load(), 1000u);
}

TEST(NamedSpawns, TagsAppearInRaceRecords) {
  std::vector<long> x(8, 0);
  pintd::PintDetector::Options o;
  o.core_workers = 2;
  pintd::PintDetector d(o);
  d.run([&] {
    rt::SpawnScope sc;
    sc.spawn("producer", [&] { record_write(&x[0], 8); });
    sc.spawn("consumer", [&] { record_read(&x[0], 8); });
    sc.sync();
  });
  ASSERT_TRUE(d.reporter().any());
  const auto recs = d.reporter().records();
  ASSERT_FALSE(recs.empty());
  bool saw_named_pair = false;
  for (const auto& r : recs) {
    if (r.prev_tag != nullptr && r.cur_tag != nullptr) {
      const std::string a = r.prev_tag, b = r.cur_tag;
      if ((a == "producer" && b == "consumer") ||
          (a == "consumer" && b == "producer")) {
        saw_named_pair = true;
      }
    }
  }
  EXPECT_TRUE(saw_named_pair);
}

TEST(NamedSpawns, UnnamedSpawnsHaveNullTags) {
  std::vector<long> x(8, 0);
  stint::StintDetector d;
  d.run([&] {
    rt::SpawnScope sc;
    sc.spawn([&] { record_write(&x[0], 8); });
    record_write(&x[0], 8);
    sc.sync();
  });
  ASSERT_TRUE(d.reporter().any());
  for (const auto& r : d.reporter().records()) {
    EXPECT_EQ(r.prev_tag, nullptr);
    EXPECT_EQ(r.cur_tag, nullptr);
  }
}

TEST(NamedSpawns, CracerCarriesTagsToo) {
  std::vector<long> x(8, 0);
  cracer::CracerDetector::Options o;
  o.workers = 2;
  cracer::CracerDetector d(o);
  d.run([&] {
    rt::SpawnScope sc;
    sc.spawn("left", [&] { record_write(&x[0], 8); });
    sc.spawn("right", [&] { record_write(&x[0], 8); });
    sc.sync();
  });
  ASSERT_TRUE(d.reporter().any());
  bool named = false;
  for (const auto& r : d.reporter().records()) {
    if (r.prev_tag && r.cur_tag) named = true;
  }
  EXPECT_TRUE(named);
}
