// Hot-path knob equivalence suite (DESIGN.md §13): the arena recycler, the
// tiered flat+treap history and the SIMD finalize are pure mechanism - they
// must be invisible to detection results.  Checked at three strengths:
//
//  * store-level: TieredHistory (tier enabled, small compact_every so
//    compactions actually fire) against a plain IntervalTreap - exact
//    callback/resolver sequences, final stored segment sets, invariants;
//  * finalize-level: finalize_intervals with the SIMD knob on vs off over
//    adversarial interval shapes (radix-path sizes, near-zero and
//    near-kMaxAddr addresses exercising the sign-bias trick, nested /
//    adjacent / duplicate intervals) - identical canonical output;
//  * whole-detector: race RECORDS bit-identical on the deterministic
//    detectors (STINT, phased one-core PINT) for every single-knob flip on
//    the kernel suite and for the full 2^3 knob cross-product on random
//    series-parallel programs; pipelined / sharded PINT agree on the
//    verdict (same caveat as test_access_path.cpp).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <tuple>
#include <vector>

#include "common.hpp"
#include "detect/tiered_history.hpp"
#include "detect/tuning.hpp"
#include "detect/types.hpp"
#include "kernels/kernels.hpp"
#include "support/arena.hpp"
#include "treap/interval_treap.hpp"

using namespace pint;

namespace {

constexpr treap::addr_t kMaxAddr = ~treap::addr_t(0);

treap::Accessor acc(std::uint64_t sid) { return {{}, sid}; }

// Event log entry: op tag + three op-dependent fields (see the loggers).
using Ev = std::tuple<char, std::uint64_t, std::uint64_t, std::uint64_t>;
// Stored interval: (lo, hi, sid).
using Seg = std::tuple<std::uint64_t, std::uint64_t, std::uint64_t>;

template <class Store>
std::vector<Seg> contents(const Store& t) {
  std::vector<Seg> out;
  t.for_each([&](auto lo, auto hi, const auto& w) {
    out.push_back({lo, hi, w.sid});
  });
  return out;
}

bool resolve_by_sid(const treap::Accessor& prev, const treap::Accessor& a) {
  return ((prev.sid * 31 + a.sid) & 1) == 0;
}

struct Iv {
  treap::addr_t lo, hi;
};

std::vector<Iv> random_run(Xoshiro256& rng, std::uint64_t span) {
  const std::size_t k = 1 + rng.next_below(8);
  std::vector<Iv> run;
  std::uint64_t lo = rng.next_below(span);
  for (std::size_t j = 0; j < k; ++j) {
    const std::uint64_t len = 1 + rng.next_below(96);
    run.push_back({lo, lo + len - 1});
    lo += len + rng.next_below(3);
  }
  return run;
}

// ---------------------------------------------------------------------------
// TieredHistory vs plain treap (cold-tier compaction/query property test)
// ---------------------------------------------------------------------------

TEST(TieredHistory, RandomizedOpsMatchPlainTreapExactly) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    Xoshiro256 rng(seed);
    treap::IntervalTreap plain(seed * 977);
    // compact_every=16: hundreds of compaction sweeps over a 300-step run,
    // so the cold tier carries real coverage and the carve/zipper paths see
    // hot+cold splits of every shape.
    detect::TieredHistory tiered(seed * 977, /*enabled=*/true,
                                 /*compact_every=*/16);
    std::vector<Ev> ev_plain, ev_tier;
    auto log_to = [](std::vector<Ev>& ev, char tag) {
      return [&ev, tag](auto lo, auto hi, const auto& w) {
        ev.push_back({tag, lo, hi, w.sid});
      };
    };
    for (int step = 0; step < 300; ++step) {
      const std::uint64_t lo = rng.next_below(1 << 13);
      const std::uint64_t hi = lo + rng.next_below(256);
      const std::uint64_t sid = 2 + std::uint64_t(step);
      switch (rng.next_below(4)) {
        case 0:
          plain.insert_writer(lo, hi, acc(sid), log_to(ev_plain, 'w'));
          tiered.insert_writer(lo, hi, acc(sid), log_to(ev_tier, 'w'));
          break;
        case 1:
          plain.insert_reader(lo, hi, acc(sid),
                              [&](const auto& p, const auto& a) {
                                ev_plain.push_back({'r', p.sid, a.sid, 0});
                                return resolve_by_sid(p, a);
                              });
          tiered.insert_reader(lo, hi, acc(sid),
                               [&](const auto& p, const auto& a) {
                                 ev_tier.push_back({'r', p.sid, a.sid, 0});
                                 return resolve_by_sid(p, a);
                               });
          break;
        case 2:
          plain.query(lo, hi, log_to(ev_plain, 'q'));
          tiered.query(lo, hi, log_to(ev_tier, 'q'));
          break;
        case 3:
          plain.erase_range(lo, hi);
          tiered.erase_range(lo, hi);
          break;
      }
      ASSERT_EQ(ev_plain, ev_tier) << "seed=" << seed << " step=" << step;
      if (step % 25 == 0) {
        ASSERT_EQ(contents(plain), contents(tiered))
            << "seed=" << seed << " step=" << step;
        ASSERT_TRUE(tiered.check_invariants());
        ASSERT_EQ(plain.size(), tiered.size());
      }
    }
    EXPECT_EQ(contents(plain), contents(tiered)) << "seed=" << seed;
    EXPECT_TRUE(tiered.check_invariants());
    // The property run must actually have exercised the tier, not just the
    // hot treap: compactions fired and queries were served from cold.
    EXPECT_GT(tiered.compactions(), 0u) << "seed=" << seed;
    EXPECT_GT(tiered.cold_hits(), 0u) << "seed=" << seed;
  }
}

TEST(TieredHistory, BulkRunDelegationMatchesPlainTreapRuns) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Xoshiro256 rng(seed);
    treap::IntervalTreap plain(seed * 1663);
    detect::TieredHistory tiered(seed * 1663, true, 16);
    std::vector<Ev> ev_plain, ev_tier;
    auto log_to = [](std::vector<Ev>& ev, char tag) {
      return [&ev, tag](auto lo, auto hi, const auto& w) {
        ev.push_back({tag, lo, hi, w.sid});
      };
    };
    for (int step = 0; step < 120; ++step) {
      const auto r = random_run(rng, 1 << 13);
      const std::uint64_t sid = 2 + std::uint64_t(step);
      switch (rng.next_below(4)) {
        case 0:
          plain.insert_writer_run(r.data(), r.size(), acc(sid),
                                  log_to(ev_plain, 'w'));
          tiered.insert_writer_run(r.data(), r.size(), acc(sid),
                                   log_to(ev_tier, 'w'));
          break;
        case 1:
          plain.insert_reader_run(r.data(), r.size(), acc(sid),
                                  [&](const auto& p, const auto& a) {
                                    ev_plain.push_back({'r', p.sid, a.sid, 0});
                                    return resolve_by_sid(p, a);
                                  });
          tiered.insert_reader_run(r.data(), r.size(), acc(sid),
                                   [&](const auto& p, const auto& a) {
                                     ev_tier.push_back({'r', p.sid, a.sid, 0});
                                     return resolve_by_sid(p, a);
                                   });
          break;
        case 2:
          plain.query_run(r.data(), r.size(), log_to(ev_plain, 'q'));
          tiered.query_run(r.data(), r.size(), log_to(ev_tier, 'q'));
          break;
        case 3:
          plain.erase_run(r.data(), r.size());
          tiered.erase_run(r.data(), r.size());
          break;
      }
      ASSERT_EQ(ev_plain, ev_tier) << "seed=" << seed << " step=" << step;
    }
    EXPECT_EQ(contents(plain), contents(tiered)) << "seed=" << seed;
    EXPECT_TRUE(tiered.check_invariants());
  }
}

TEST(TieredHistory, ColdStraddlesAndMaxAddrMatchPlainTreap) {
  treap::IntervalTreap plain(5);
  detect::TieredHistory tiered(5, true, /*compact_every=*/1);
  auto noop = [](auto, auto, const auto&) {};
  // compact_every=1: every insert lands in cold immediately, so the next op
  // always hits the cold-vacate paths (left / right / both-straddle).
  plain.insert_writer(100, 999, acc(1), noop);
  tiered.insert_writer(100, 999, acc(1), noop);
  // Both-straddle: the right remainder must become its own node either way.
  plain.insert_writer(400, 599, acc(2), noop);
  tiered.insert_writer(400, 599, acc(2), noop);
  EXPECT_EQ(contents(plain), contents(tiered));
  // Reader over a hot/cold split with the kMaxAddr wrap guard.
  plain.insert_writer(kMaxAddr - 100, kMaxAddr, acc(3), noop);
  tiered.insert_writer(kMaxAddr - 100, kMaxAddr, acc(3), noop);
  std::vector<Ev> ev_plain, ev_tier;
  plain.insert_reader(kMaxAddr - 150, kMaxAddr, acc(4),
                      [&](const auto& p, const auto& a) {
                        ev_plain.push_back({'r', p.sid, a.sid, 0});
                        return resolve_by_sid(p, a);
                      });
  tiered.insert_reader(kMaxAddr - 150, kMaxAddr, acc(4),
                       [&](const auto& p, const auto& a) {
                         ev_tier.push_back({'r', p.sid, a.sid, 0});
                         return resolve_by_sid(p, a);
                       });
  EXPECT_EQ(ev_plain, ev_tier);
  EXPECT_EQ(contents(plain), contents(tiered));
  EXPECT_TRUE(tiered.check_invariants());
  // Erase across both tiers.
  plain.erase_range(0, kMaxAddr);
  tiered.erase_range(0, kMaxAddr);
  EXPECT_TRUE(tiered.empty());
  EXPECT_EQ(contents(plain), contents(tiered));
}

TEST(TieredHistory, DisabledIsAPassThrough) {
  treap::IntervalTreap plain(7);
  detect::TieredHistory off(7, /*enabled=*/false, 1);
  auto noop = [](auto, auto, const auto&) {};
  for (int i = 0; i < 64; ++i) {
    plain.insert_writer(i * 10, i * 10 + 5, acc(1 + i), noop);
    off.insert_writer(i * 10, i * 10 + 5, acc(1 + i), noop);
  }
  EXPECT_EQ(contents(plain), contents(off));
  EXPECT_EQ(off.compactions(), 0u);  // never tiers when disabled
  EXPECT_EQ(off.cold_hits(), 0u);
  EXPECT_FALSE(off.enabled());
}

// ---------------------------------------------------------------------------
// finalize_intervals: SIMD vs scalar fuzz
// ---------------------------------------------------------------------------

// RAII: restore the global SIMD knob flipped by these tests.
struct SimdGuard {
  bool saved = detect::simd_merge();
  ~SimdGuard() { detect::set_simd_merge(saved); }
};

std::vector<detect::Interval> finalize_with(std::vector<detect::Interval> v,
                                            bool simd,
                                            detect::FinalizePath* path) {
  SimdGuard g;
  detect::set_simd_merge(simd);
  const detect::FinalizePath p = detect::finalize_intervals(v);
  if (path != nullptr) *path = p;
  return v;
}

void check_canonical(const std::vector<detect::Interval>& v) {
  for (std::size_t i = 0; i < v.size(); ++i) {
    ASSERT_LE(v[i].lo, v[i].hi);
    // Minimal: neighbors neither overlap nor touch (adjacent would have
    // been merged into one interval).
    if (i > 0) {
      ASSERT_GT(v[i].lo, v[i - 1].hi + 1);
    }
  }
}

TEST(SimdFinalize, FuzzMatchesScalarOnAdversarialShapes) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    Xoshiro256 rng(seed);
    // Size straddles the kSimdMin=32 dispatch bar and goes well past it.
    const std::size_t n = 16 + rng.next_below(2048);
    // Base region: near zero, near kMaxAddr (sign-bias XOR coverage), or a
    // huge random offset (wide radix spread).
    std::uint64_t base;
    switch (seed % 3) {
      case 0: base = rng.next_below(64); break;
      case 1: base = kMaxAddr - (1 << 16); break;
      default: base = rng.next() >> 1; break;
    }
    const std::uint64_t span =
        (seed % 4 == 0) ? (std::uint64_t(1) << 40)  // sparse: wide spread
                        : (1 << 12);                // dense: heavy overlap
    std::vector<detect::Interval> v;
    v.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      std::uint64_t lo = base + rng.next_below(span);
      std::uint64_t len = rng.next_below(3) == 0
                              ? rng.next_below(span / 4 + 1)  // nested-prone
                              : rng.next_below(16);           // small
      if (lo > kMaxAddr - len) len = kMaxAddr - lo;
      v.push_back({lo, lo + len});
    }
    if (seed % 5 == 0) std::sort(v.begin(), v.end(), [](auto& a, auto& b) {
      return a.lo < b.lo;
    });
    if (seed % 7 == 0) {  // duplicates
      for (std::size_t i = 1; i < v.size(); i += 4) v[i] = v[i - 1];
    }
    detect::FinalizePath p_on, p_off;
    const auto simd = finalize_with(v, true, &p_on);
    const auto scalar = finalize_with(v, false, &p_off);
    ASSERT_EQ(simd, scalar) << "seed=" << seed << " n=" << n;
    check_canonical(simd);
    EXPECT_NE(p_off, detect::FinalizePath::kSimd) << "knob off took SIMD";
  }
}

TEST(SimdFinalize, AdjacentAndContainedIntervalsCollapse) {
  // Exact-adjacency chains and full containment are the merge loop's edge
  // rules; both paths must produce the single collapsed interval.
  std::vector<detect::Interval> v;
  for (std::uint64_t i = 0; i < 64; ++i) v.push_back({i * 8, i * 8 + 7});
  for (std::uint64_t i = 0; i < 32; ++i) v.push_back({i * 16 + 2, i * 16 + 4});
  const auto on = finalize_with(v, true, nullptr);
  const auto off = finalize_with(v, false, nullptr);
  EXPECT_EQ(on, off);
  ASSERT_EQ(on.size(), 1u);
  EXPECT_EQ(on[0].lo, 0u);
  EXPECT_EQ(on[0].hi, 64 * 8 - 1);
}

TEST(SimdFinalize, MaxAddrEndpointsSurviveBothPaths) {
  std::vector<detect::Interval> v;
  for (std::uint64_t i = 0; i < 48; ++i) {
    v.push_back({kMaxAddr - 1000 + i * 20, kMaxAddr - 1000 + i * 20 + 9});
  }
  v.push_back({kMaxAddr - 5, kMaxAddr});
  v.push_back({0, 3});  // forces the full radix spread in one buffer
  const auto on = finalize_with(v, true, nullptr);
  const auto off = finalize_with(v, false, nullptr);
  EXPECT_EQ(on, off);
  check_canonical(on);
  EXPECT_EQ(on.back().hi, kMaxAddr);
  EXPECT_EQ(on.front().lo, 0u);
}

TEST(SimdFinalize, AlreadySortedInputSkipsTheSort) {
  std::vector<detect::Interval> v;
  for (std::uint64_t i = 0; i < 64; ++i) v.push_back({i * 100, i * 100 + 10});
  detect::FinalizePath p;
  const auto out = finalize_with(v, true, &p);
  EXPECT_EQ(p, detect::FinalizePath::kSorted);
  EXPECT_EQ(out.size(), 64u);  // disjoint: nothing merges
}

// ---------------------------------------------------------------------------
// Whole-detector knob bit-identity
// ---------------------------------------------------------------------------

// RAII: tests push Tuning combos into the process globals via the detector's
// apply_globals(); never leak the settings.
struct TuningGuard {
  detect::Tuning saved = detect::Tuning::current();
  ~TuningGuard() { saved.apply_globals(); }
};

// Full record: (prev_sid, cur_sid, prev_write, cur_write, lo, hi).
using FullRecord = std::tuple<std::uint64_t, std::uint64_t, int, int,
                              std::uint64_t, std::uint64_t>;
using PairKey = std::tuple<std::uint64_t, std::uint64_t, int, int>;

enum class Sys { kStint, kPintSeq, kPint1, kShard3 };

struct RunOut {
  std::vector<FullRecord> rebased;
  std::vector<PairKey> pairs;
  std::uint64_t distinct = 0;
  std::uint64_t dropped = 0;
  detect::Stats::Snapshot stats{};
};

RunOut summarize(const detect::RaceReporter& rep, const detect::Stats& stats) {
  RunOut out;
  std::uint64_t min_lo = ~std::uint64_t(0);
  std::vector<FullRecord> full;
  for (const detect::RaceRecord& r : rep.records()) {
    full.push_back(
        {r.prev_sid, r.cur_sid, r.prev_write, r.cur_write, r.lo, r.hi});
    min_lo = std::min(min_lo, r.lo);
    std::uint64_t a = r.prev_sid, b = r.cur_sid;
    int aw = r.prev_write, bw = r.cur_write;
    if (a > b) {
      std::swap(a, b);
      std::swap(aw, bw);
    }
    out.pairs.push_back({a, b, aw, bw});
  }
  std::sort(full.begin(), full.end());
  out.rebased = std::move(full);
  for (auto& [ps, cs, pw, cw, lo, hi] : out.rebased) {
    lo -= min_lo;
    hi -= min_lo;
  }
  std::sort(out.pairs.begin(), out.pairs.end());
  out.pairs.erase(std::unique(out.pairs.begin(), out.pairs.end()),
                  out.pairs.end());
  out.distinct = rep.distinct_races();
  out.dropped = rep.dropped_records();
  out.stats = stats.snapshot();
  return out;
}

struct Knobs {
  bool arena, tier, simd;
};

RunOut run_config(Sys sys, Knobs k, const std::function<void()>& body,
                  std::uint64_t seed = 7) {
  TuningGuard g;
  detect::Tuning t = g.saved;
  t.arena = k.arena;
  t.tier = k.tier;
  t.simd = k.simd;
  if (sys == Sys::kStint) {
    stint::StintDetector::Options o;
    o.seed = seed;
    o.tuning = t;
    stint::StintDetector det(o);
    det.run(body);
    return summarize(det.reporter(), det.stats());
  }
  pintd::PintDetector::Options o;
  o.seed = seed;
  o.tuning = t;
  o.parallel_history = sys != Sys::kPintSeq;
  o.core_workers = 1;  // deterministic strand ids (see test_bulk_apply.cpp)
  if (sys == Sys::kShard3) o.history_shards = 3;
  pintd::PintDetector det(o);
  det.run(body);
  return summarize(det.reporter(), det.stats());
}

const Knobs kDefaults = {true, false, true};

class KernelHotpathKnobs : public ::testing::TestWithParam<std::string> {};

TEST_P(KernelHotpathKnobs, SingleKnobFlipsAreBitIdentical) {
  kernels::KernelConfig cfg;
  cfg.scale = 0.1;
  cfg.seeded_race = true;  // non-trivial race sets to compare
  for (Sys sys : {Sys::kStint, Sys::kPintSeq}) {
    auto fresh = [&] {
      auto k = kernels::make_kernel(GetParam(), cfg);
      k->prepare();
      return k;
    };
    auto kr = fresh();
    const RunOut ref = run_config(sys, kDefaults, [&] { kr->run(); });
    const Knobs flips[] = {
        {false, false, true},  // arena off
        {true, true, true},    // tier on
        {true, false, false},  // simd off
    };
    for (const Knobs& k : flips) {
      auto kf = fresh();
      const RunOut out = run_config(sys, k, [&] { kf->run(); });
      EXPECT_EQ(ref.rebased, out.rebased)
          << "records diverge, sys=" << int(sys) << " arena=" << k.arena
          << " tier=" << k.tier << " simd=" << k.simd;
      EXPECT_EQ(ref.distinct, out.distinct);
      if (!k.simd) {
        EXPECT_EQ(out.stats.finalize_simd, 0u) << "simd off still vectorized";
      }
      if (!k.arena) {
        EXPECT_EQ(out.stats.arena_reuses, 0u) << "arena off still recycled";
      }
    }
  }
}

TEST_P(KernelHotpathKnobs, PipelinedAndShardedAgreeOnTheVerdict) {
  kernels::KernelConfig cfg;
  cfg.scale = 0.1;
  cfg.seeded_race = true;
  for (Sys sys : {Sys::kPint1, Sys::kShard3}) {
    auto fresh = [&] {
      auto k = kernels::make_kernel(GetParam(), cfg);
      k->prepare();
      return k;
    };
    auto kr = fresh();
    const RunOut ref = run_config(sys, kDefaults, [&] { kr->run(); });
    auto kf = fresh();
    const RunOut out = run_config(sys, {false, true, false}, [&] { kf->run(); });
    EXPECT_EQ(ref.distinct, out.distinct) << "sys=" << int(sys);
    if (ref.dropped == 0 && out.dropped == 0) {
      EXPECT_EQ(ref.pairs, out.pairs) << "sys=" << int(sys);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(All, KernelHotpathKnobs,
                         ::testing::ValuesIn(kernels::kernel_names()),
                         [](const auto& info) { return info.param; });

// The full 2^3 cross-product on random series-parallel programs: cheap
// enough to run every combination bit-exactly (same pool address every run,
// so the rebase is the identity).
TEST(RandomProgramHotpathKnobs, AllKnobCombosAgreeAndMatchTheOracle) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    test::ProgramConfig pc;
    auto prog = test::ProgramGen(seed, pc).generate();
    std::vector<unsigned char> pool(test::program_pool_bytes(pc), 0);
    unsigned char* base = pool.data();
    const test::PNode* p = prog.get();
    const auto body = [p, base] { test::exec_node(*p, base); };

    const RunOut ref = run_config(Sys::kStint, kDefaults, body);
    for (int mask = 0; mask < 8; ++mask) {
      const Knobs k = {(mask & 1) != 0, (mask & 2) != 0, (mask & 4) != 0};
      const RunOut out = run_config(Sys::kStint, k, body);
      EXPECT_EQ(ref.rebased, out.rebased)
          << "seed=" << seed << " arena=" << k.arena << " tier=" << k.tier
          << " simd=" << k.simd;
      EXPECT_EQ(ref.distinct, out.distinct) << "seed=" << seed;
    }
    EXPECT_EQ(ref.distinct > 0,
              test::oracle_any_race(*p, test::program_pool_bytes(pc)))
        << "seed=" << seed;
  }
}

TEST(RandomProgramHotpathKnobs, PhasedPintFullCrossProduct) {
  for (std::uint64_t seed = 11; seed <= 16; ++seed) {
    test::ProgramConfig pc;
    auto prog = test::ProgramGen(seed, pc).generate();
    std::vector<unsigned char> pool(test::program_pool_bytes(pc), 0);
    unsigned char* base = pool.data();
    const test::PNode* p = prog.get();
    const auto body = [p, base] { test::exec_node(*p, base); };

    const RunOut ref = run_config(Sys::kPintSeq, kDefaults, body);
    for (int mask = 0; mask < 8; ++mask) {
      const Knobs k = {(mask & 1) != 0, (mask & 2) != 0, (mask & 4) != 0};
      const RunOut out = run_config(Sys::kPintSeq, k, body);
      EXPECT_EQ(ref.rebased, out.rebased)
          << "seed=" << seed << " arena=" << k.arena << " tier=" << k.tier
          << " simd=" << k.simd;
    }
  }
}

TEST(ArenaKnob, RecyclerActuallyReusesAcrossDetectorInstances) {
  // Two arena-on runs back to back: the second draws its strand records
  // from the recycler the first retired into.  (Process-wide counters; the
  // per-run stats field is the delta, see pint_detector.cpp.)
  kernels::KernelConfig cfg;
  cfg.scale = 0.05;
  auto body = [&](const char* name) {
    auto k = kernels::make_kernel(name, cfg);
    k->prepare();
    return run_config(Sys::kStint, kDefaults, [&] { k->run(); });
  };
  (void)body("sort");  // warm the recycler
  const RunOut second = body("sort");
  EXPECT_GT(second.stats.arena_reuses, 0u)
      << "second arena-on run allocated everything fresh";
}

TEST(TuningKnobs, DefaultsMatchTheDocumentedContract) {
  const detect::Tuning t;
  EXPECT_TRUE(t.arena);   // recycling on: provenance only, never bytes
  EXPECT_FALSE(t.tier);   // off: kernel suite is rewrite-heavy (DESIGN.md §13)
  EXPECT_TRUE(t.simd);    // on: bit-identical scalar fallback exists
}

}  // namespace
