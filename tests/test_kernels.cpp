// Kernel-level integration tests: every benchmark kernel computes the right
// answer under every system, reports no races when race-free, and every
// seeded-race variant is caught.

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "common.hpp"
#include "kernels/kernels.hpp"
#include "runtime/scheduler.hpp"

using namespace pint;
using test::Det;

namespace {
constexpr double kTestScale = 0.12;  // small but past all base cases
}

class KernelBaseline : public ::testing::TestWithParam<std::string> {};

TEST_P(KernelBaseline, ComputesCorrectResultSerial) {
  kernels::KernelConfig cfg;
  cfg.scale = kTestScale;
  auto k = kernels::make_kernel(GetParam(), cfg);
  k->prepare();
  rt::Scheduler::Options o;
  o.workers = 1;
  rt::Scheduler s(o);
  s.run([&] { k->run(); });
  EXPECT_TRUE(k->verify()) << k->config_string();
}

TEST_P(KernelBaseline, ComputesCorrectResultParallel) {
  kernels::KernelConfig cfg;
  cfg.scale = kTestScale;
  auto k = kernels::make_kernel(GetParam(), cfg);
  k->prepare();
  rt::Scheduler::Options o;
  o.workers = 4;
  rt::Scheduler s(o);
  s.run([&] { k->run(); });
  EXPECT_TRUE(k->verify()) << k->config_string();
}

TEST_P(KernelBaseline, RepeatedPrepareRunIsDeterministic) {
  kernels::KernelConfig cfg;
  cfg.scale = kTestScale;
  auto k = kernels::make_kernel(GetParam(), cfg);
  for (int rep = 0; rep < 2; ++rep) {
    k->prepare();
    rt::Scheduler::Options o;
    o.workers = 2;
    rt::Scheduler s(o);
    s.run([&] { k->run(); });
    EXPECT_TRUE(k->verify()) << "rep=" << rep;
  }
}

INSTANTIATE_TEST_SUITE_P(All, KernelBaseline,
                         ::testing::ValuesIn(kernels::kernel_names()),
                         [](const auto& info) { return info.param; });

// ---------------------------------------------------------------------------
// kernel x detector matrix
// ---------------------------------------------------------------------------

using KD = std::tuple<std::string, Det>;

class KernelUnderDetector : public ::testing::TestWithParam<KD> {};

TEST_P(KernelUnderDetector, RaceFreeAndCorrect) {
  const auto& [name, det] = GetParam();
  kernels::KernelConfig cfg;
  cfg.scale = kTestScale;
  auto k = kernels::make_kernel(name, cfg);
  k->prepare();
  auto r = test::run_under(det, [&] { k->run(); });
  EXPECT_FALSE(r.any_race) << "false positive";
  EXPECT_TRUE(k->verify());
}

TEST_P(KernelUnderDetector, SeededRaceIsDetected) {
  const auto& [name, det] = GetParam();
  kernels::KernelConfig cfg;
  cfg.scale = kTestScale;
  cfg.seeded_race = true;
  auto k = kernels::make_kernel(name, cfg);
  k->prepare();
  auto r = test::run_under(det, [&] { k->run(); });
  EXPECT_TRUE(r.any_race) << "missed the seeded race";
}

namespace {
std::vector<KD> kernel_detector_matrix() {
  std::vector<KD> out;
  for (const auto& k : kernels::kernel_names()) {
    for (Det d : {Det::kStint, Det::kPintSeq, Det::kPint2, Det::kPint4,
                  Det::kCracer1, Det::kCracer4}) {
      out.push_back({k, d});
    }
  }
  return out;
}
}  // namespace

INSTANTIATE_TEST_SUITE_P(Matrix, KernelUnderDetector,
                         ::testing::ValuesIn(kernel_detector_matrix()),
                         [](const auto& info) {
                           return std::get<0>(info.param) + "_" +
                                  test::det_name(std::get<1>(info.param));
                         });
