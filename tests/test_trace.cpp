// Tests for PINT's trace FIFO and access-history queue.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "detect/strand.hpp"
#include "pint/ah_queue.hpp"
#include "pint/trace.hpp"

using namespace pint;
using detect::Strand;
using pintd::AhQueue;
using pintd::Trace;
using pintd::TraceChunk;

namespace {

struct TraceFixture {
  std::vector<std::unique_ptr<TraceChunk>> chunks;
  TraceChunk* chunk() {
    chunks.push_back(std::make_unique<TraceChunk>());
    return chunks.back().get();
  }
};

}  // namespace

TEST(Trace, FifoOrderWithinChunk) {
  TraceFixture fx;
  Trace t;
  t.init(fx.chunk());
  Strand a, b, c;
  t.push(&a);
  t.push(&b);
  t.push(&c);
  EXPECT_EQ(t.peek(), &a);
  t.pop();
  EXPECT_EQ(t.peek(), &b);
  t.pop();
  EXPECT_EQ(t.peek(), &c);
  t.pop();
  EXPECT_EQ(t.peek(), nullptr);
  EXPECT_FALSE(t.drained());  // not finished yet
  t.mark_finished();
  EXPECT_TRUE(t.drained());
}

TEST(Trace, CrossesChunkBoundaries) {
  TraceFixture fx;
  Trace t;
  t.init(fx.chunk());
  std::vector<Strand> strands(TraceChunk::kSlots * 3 + 5);
  for (auto& s : strands) {
    if (t.push_needs_chunk()) t.supply_chunk(fx.chunk());
    t.push(&s);
  }
  t.mark_finished();
  std::size_t drained_chunks = 0;
  for (auto& s : strands) {
    ASSERT_EQ(t.peek(), &s);
    if (t.take_drained_chunk()) ++drained_chunks;
    t.pop();
  }
  EXPECT_EQ(t.peek(), nullptr);
  EXPECT_TRUE(t.drained());
  EXPECT_EQ(drained_chunks, 3u);
}

TEST(Trace, FinishedRecheckCatchesLatePush) {
  TraceFixture fx;
  Trace t;
  t.init(fx.chunk());
  Strand a;
  // drained() must re-probe after seeing finished (push then finish order).
  t.push(&a);
  t.mark_finished();
  EXPECT_FALSE(t.drained());
  EXPECT_EQ(t.peek(), &a);
  t.pop();
  EXPECT_TRUE(t.drained());
}

TEST(Trace, SpscStress) {
  TraceFixture fx;
  Trace t;
  t.init(fx.chunk());
  constexpr int kN = 100000;
  std::vector<Strand> strands(kN);
  Spinlock chunk_mu;

  std::thread producer([&] {
    for (int i = 0; i < kN; ++i) {
      if (t.push_needs_chunk()) {
        LockGuard<Spinlock> g(chunk_mu);
        t.supply_chunk(fx.chunk());
      }
      strands[std::size_t(i)].sid = std::uint64_t(i) + 1;
      t.push(&strands[std::size_t(i)]);
    }
    t.mark_finished();
  });

  std::uint64_t expected = 1;
  for (;;) {
    Strand* s = t.peek();
    t.take_drained_chunk();
    if (s == nullptr) {
      if (t.drained()) break;
      std::this_thread::yield();
      continue;
    }
    ASSERT_EQ(s->sid, expected);
    ++expected;
    t.pop();
  }
  producer.join();
  EXPECT_EQ(expected, std::uint64_t(kN) + 1);
}

TEST(Trace, NextTraceLinking) {
  TraceFixture fx;
  Trace t1, t2;
  t1.init(fx.chunk());
  t2.init(fx.chunk());
  EXPECT_EQ(t1.next_trace(), nullptr);
  t1.mark_finished();
  t1.set_next_trace(&t2);
  EXPECT_EQ(t1.next_trace(), &t2);
  EXPECT_TRUE(t1.drained());
}

// ---------------------------------------------------------------------------
// Access-history queue
// ---------------------------------------------------------------------------

TEST(AhQueue, PushAndReadBack) {
  AhQueue q(8);
  std::vector<Strand> strands(5);
  for (auto& s : strands) {
    s.consumers.store(1);
    ASSERT_TRUE(q.try_push(&s));
  }
  EXPECT_EQ(q.head(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) EXPECT_EQ(q.at(i), &strands[i]);
}

TEST(AhQueue, FullRejectsUntilReclaim) {
  AhQueue q(4);
  std::vector<Strand> strands(6);
  for (int i = 0; i < 4; ++i) {
    strands[std::size_t(i)].consumers.store(0);  // immediately reclaimable
    ASSERT_TRUE(q.try_push(&strands[std::size_t(i)]));
  }
  EXPECT_FALSE(q.try_push(&strands[4]));
  int recycled = 0;
  q.reclaim([&](Strand*) { ++recycled; });
  EXPECT_EQ(recycled, 4);
  EXPECT_TRUE(q.try_push(&strands[4]));
}

TEST(AhQueue, ReclaimStopsAtBusyStrand) {
  AhQueue q(8);
  Strand a, b, c;
  a.consumers.store(0);
  b.consumers.store(2);  // still being processed
  c.consumers.store(0);
  ASSERT_TRUE(q.try_push(&a));
  ASSERT_TRUE(q.try_push(&b));
  ASSERT_TRUE(q.try_push(&c));
  std::vector<Strand*> recycled;
  q.reclaim([&](Strand* s) { recycled.push_back(s); });
  EXPECT_EQ(recycled, (std::vector<Strand*>{&a}));
  b.consumers.store(0);
  q.reclaim([&](Strand* s) { recycled.push_back(s); });
  EXPECT_EQ(recycled, (std::vector<Strand*>{&a, &b, &c}));
}

TEST(AhQueue, GrowPreservesContents) {
  AhQueue q(4);
  std::vector<Strand> strands(64);
  std::uint64_t pushed = 0;
  for (auto& s : strands) {
    s.consumers.store(3);
    while (!q.try_push(&s)) q.grow_unsynchronized();
    ++pushed;
  }
  EXPECT_EQ(q.head(), pushed);
  for (std::uint64_t i = 0; i < pushed; ++i) {
    EXPECT_EQ(q.at(i), &strands[i]) << i;
  }
}

TEST(AhQueue, SingleProducerMultiConsumerStress) {
  AhQueue q(1 << 8);
  constexpr int kN = 50000;
  std::vector<Strand> strands(kN);
  std::atomic<std::uint64_t> sum_a{0}, sum_b{0};
  std::atomic<bool> done{false};

  auto consumer = [&](std::atomic<std::uint64_t>& sum) {
    std::uint64_t cursor = 0;
    for (;;) {
      const std::uint64_t h = q.head();
      if (cursor == h) {
        if (done.load(std::memory_order_acquire) && cursor == q.head()) break;
        std::this_thread::yield();
        continue;
      }
      while (cursor < h) {
        Strand* s = q.at(cursor);
        sum.fetch_add(s->sid, std::memory_order_relaxed);
        s->consumers.fetch_sub(1, std::memory_order_acq_rel);
        ++cursor;
      }
    }
  };
  std::thread ca([&] { consumer(sum_a); });
  std::thread cb([&] { consumer(sum_b); });

  std::uint64_t expect = 0;
  for (int i = 0; i < kN; ++i) {
    Strand* s = &strands[std::size_t(i)];
    s->sid = std::uint64_t(i) + 1;
    expect += s->sid;
    s->consumers.store(2, std::memory_order_release);
    while (!q.try_push(s)) {
      q.reclaim([](Strand*) {});
      std::this_thread::yield();
    }
  }
  done.store(true, std::memory_order_release);
  ca.join();
  cb.join();
  EXPECT_EQ(sum_a.load(), expect);
  EXPECT_EQ(sum_b.load(), expect);
}
