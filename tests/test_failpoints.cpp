// Fault-injection suite (label: faults): exercises the named fail points,
// the pipeline watchdog, and the graceful-degradation paths of
// PintDetector::run().  Everything here is deterministic - prob-mode points
// are seeded and counter-keyed - so the suite gives the same verdict run
// after run, in plain, TSan, and ASan builds.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "support/error_sink.hpp"
#include "support/failpoint.hpp"
#include "support/watchdog.hpp"

namespace pint::test {
namespace {

using pintd::PintDetector;
using pintd::RunResult;
using pintd::RunStatus;

// ---------------------------------------------------------------------------
// Workloads
// ---------------------------------------------------------------------------

// 2^depth leaves, every one writing the same byte: racy by construction.
void racy_tree(int depth, unsigned char* base) {
  if (depth == 0) {
    record_write(base, 1);
    return;
  }
  rt::SpawnScope sc;
  sc.spawn([=] { racy_tree(depth - 1, base); });
  sc.spawn([=] { racy_tree(depth - 1, base); });
  sc.sync();
}

// 2^depth leaves, each writing its own 8-byte slot: race-free.
void disjoint_tree(int depth, unsigned char* base, std::uint32_t idx) {
  if (depth == 0) {
    record_write(base + std::size_t(idx) * 8, 4);
    return;
  }
  rt::SpawnScope sc;
  sc.spawn([=] { disjoint_tree(depth - 1, base, idx * 2); });
  sc.spawn([=] { disjoint_tree(depth - 1, base, idx * 2 + 1); });
  sc.sync();
}

// ---------------------------------------------------------------------------
// Harness plumbing
// ---------------------------------------------------------------------------

/// Redirects the shared error sink into a tmpfile for the lifetime of the
/// object; text() returns everything written so far.
struct CaptureErrors {
  std::FILE* f = nullptr;
  CaptureErrors() : f(std::tmpfile()) { set_error_stream(f); }
  ~CaptureErrors() {
    set_error_stream(nullptr);
    if (f != nullptr) std::fclose(f);
  }
  std::string text() const {
    std::fflush(f);
    std::rewind(f);
    std::string s;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) s.append(buf, n);
    return s;
  }
};

class FailPointTest : public ::testing::Test {
 protected:
  void SetUp() override { fail::reset(); }
  void TearDown() override { fail::reset(); }
};

RunResult run_pint(const PintDetector::Options& opt,
                   const std::function<void()>& body, bool* any_race,
                   detect::Stats::Snapshot* stats = nullptr) {
  PintDetector det(opt);
  const RunResult r = det.run(body);
  *any_race = det.reporter().any();
  if (stats != nullptr) *stats = det.stats().snapshot();
  return r;
}

// ---------------------------------------------------------------------------
// Fail-point framework units
// ---------------------------------------------------------------------------

TEST_F(FailPointTest, OnceFiresExactlyOnce) {
  if (!fail::kCompiledIn) GTEST_SKIP() << "fail points compiled out";
  ASSERT_TRUE(fail::configure("p=once"));
  EXPECT_TRUE(fail::any_configured());
  EXPECT_TRUE(fail::hit("p"));
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(fail::hit("p"));
  EXPECT_EQ(fail::hit_count("p"), 11u);
  EXPECT_EQ(fail::fire_count("p"), 1u);
}

TEST_F(FailPointTest, EveryNFiresOnMultiples) {
  if (!fail::kCompiledIn) GTEST_SKIP() << "fail points compiled out";
  ASSERT_TRUE(fail::configure("p=every:3"));
  std::vector<int> fired_at;
  for (int i = 1; i <= 9; ++i) {
    if (fail::hit("p")) fired_at.push_back(i);
  }
  EXPECT_EQ(fired_at, (std::vector<int>{3, 6, 9}));
}

TEST_F(FailPointTest, ProbIsDeterministicForFixedSeed) {
  if (!fail::kCompiledIn) GTEST_SKIP() << "fail points compiled out";
  auto sample = [] {
    std::vector<bool> v;
    for (int i = 0; i < 128; ++i) v.push_back(fail::hit("p"));
    return v;
  };
  ASSERT_TRUE(fail::configure("p=prob:0.5,seed:9"));
  const std::vector<bool> a = sample();
  fail::reset();
  ASSERT_TRUE(fail::configure("p=prob:0.5,seed:9"));
  const std::vector<bool> b = sample();
  EXPECT_EQ(a, b);
  const std::uint64_t fires = fail::fire_count("p");
  EXPECT_GT(fires, 0u);   // p = 0.5 over 128 draws: both bounds hold
  EXPECT_LT(fires, 128u);
}

TEST_F(FailPointTest, ParseErrorsAreReportedAndSkipped) {
  if (!fail::kCompiledIn) GTEST_SKIP() << "fail points compiled out";
  EXPECT_FALSE(fail::configure("no-equals-sign"));
  EXPECT_FALSE(fail::configure("p=bogus"));
  EXPECT_FALSE(fail::configure("p=every:0"));
  EXPECT_FALSE(fail::configure("p=prob:1.5"));
  EXPECT_FALSE(fail::configure("=once"));
  // Parsing stops at the first bad clause: earlier clauses stay installed,
  // later ones are never armed.
  EXPECT_FALSE(fail::configure("good=once;bad;late=always"));
  EXPECT_TRUE(fail::hit("good"));
  EXPECT_FALSE(fail::hit("late"));
  EXPECT_EQ(fail::hit_count("late"), 0u);
  // Unknown names are inert.
  EXPECT_FALSE(fail::hit("never-configured"));
  EXPECT_EQ(fail::hit_count("never-configured"), 0u);
}

TEST_F(FailPointTest, DelayOnlySpecFiresEveryHit) {
  if (!fail::kCompiledIn) GTEST_SKIP() << "fail points compiled out";
  ASSERT_TRUE(fail::configure("p=delay:1"));
  EXPECT_TRUE(fail::hit("p"));
  EXPECT_TRUE(fail::hit("p"));
  EXPECT_EQ(fail::fire_count("p"), 2u);
}

TEST_F(FailPointTest, EnvVariableConfiguresPoints) {
  if (!fail::kCompiledIn) GTEST_SKIP() << "fail points compiled out";
  ::setenv("PINT_FAILPOINTS", "envpoint=every:2", 1);
  EXPECT_TRUE(fail::configure_from_env());
  ::unsetenv("PINT_FAILPOINTS");
  EXPECT_FALSE(fail::hit("envpoint"));
  EXPECT_TRUE(fail::hit("envpoint"));
}

TEST_F(FailPointTest, MacroIsConstantFalseWhenCompiledOut) {
  if (fail::kCompiledIn) {
    GTEST_SKIP() << "build has fail points compiled in";
  }
  fail::configure("x=always");
  EXPECT_FALSE(PINT_FAILPOINT("x"));
  EXPECT_EQ(fail::hit_count("x"), 0u);  // the site never reached hit()
}

// ---------------------------------------------------------------------------
// Watchdog units
// ---------------------------------------------------------------------------

TEST(WatchdogTest, BusySilentHeartbeatTrips) {
  Heartbeat hb;  // starts busy (idle = false) and never beats
  Watchdog::Options o;
  o.deadline_ms = 30;
  Watchdog wd(o);
  wd.add("stage-x", &hb);
  std::atomic<int> snapshots{0};
  std::atomic<int> stalls{0};
  wd.set_snapshot([&](const char* name) {
    EXPECT_STREQ(name, "stage-x");
    snapshots.fetch_add(1);
  });
  wd.set_on_stall([&](const char*) { stalls.fetch_add(1); });
  wd.arm();
  for (int i = 0; i < 200 && !wd.tripped(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  wd.disarm();
  EXPECT_TRUE(wd.tripped());
  EXPECT_STREQ(wd.tripped_name(), "stage-x");
  EXPECT_EQ(snapshots.load(), 1);
  EXPECT_EQ(stalls.load(), 1);
}

TEST(WatchdogTest, IdleAndBeatingHeartbeatsDoNotTrip) {
  Heartbeat idle_hb;
  idle_hb.set_idle(true);  // legitimately waiting: never trips
  Heartbeat busy_hb;       // busy but making progress: never trips
  Watchdog::Options o;
  o.deadline_ms = 40;
  Watchdog wd(o);
  wd.add("idler", &idle_hb);
  wd.add("worker", &busy_hb);
  wd.arm();
  for (int i = 0; i < 30; ++i) {
    busy_hb.beat();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  wd.disarm();
  EXPECT_FALSE(wd.tripped());
  EXPECT_EQ(wd.tripped_name(), nullptr);
}

// ---------------------------------------------------------------------------
// Pipeline fault scenarios
// ---------------------------------------------------------------------------

TEST_F(FailPointTest, ReaderStallTripsWatchdogWithSnapshot) {
  if (!fail::kCompiledIn) GTEST_SKIP() << "fail points compiled out";
  CaptureErrors cap;
  // One reader sleeps 300 ms mid-strand while marked busy; the 50 ms
  // watchdog deadline must fire, dump the snapshot, and cancel the run.
  ASSERT_TRUE(fail::configure("reader.stall=once,delay:300"));
  PintDetector::Options o;
  o.core_workers = 2;
  o.watchdog_ms = 50;
  std::vector<unsigned char> pool(64, 0);
  bool any = false;
  detect::Stats::Snapshot st{};
  const RunResult r =
      run_pint(o, [&] { racy_tree(4, pool.data()); }, &any, &st);
  EXPECT_EQ(r.status, RunStatus::kStalled);
  EXPECT_TRUE(r.watchdog_tripped);
  EXPECT_FALSE(r.ok());
  EXPECT_STREQ(r.status_name(), "stalled");
  EXPECT_EQ(st.watchdog_trips, 1u);
  EXPECT_GE(fail::fire_count("reader.stall"), 1u);
  const std::string out = cap.text();
  EXPECT_NE(out.find("WATCHDOG"), std::string::npos) << out;
  EXPECT_NE(out.find("[pint "), std::string::npos) << out;  // sink header
  EXPECT_NE(out.find("queue: head="), std::string::npos) << out;
  EXPECT_NE(out.find("consumer"), std::string::npos) << out;
}

TEST_F(FailPointTest, SlowButProgressingReaderDoesNotTrip) {
  if (!fail::kCompiledIn) GTEST_SKIP() << "fail points compiled out";
  // Every strand costs an extra 2 ms but the lane beats between sleeps:
  // slow is not stalled, so a (generous) watchdog must stay quiet.
  ASSERT_TRUE(fail::configure("reader.stall=delay:2"));
  PintDetector::Options o;
  o.core_workers = 2;
  o.watchdog_ms = 400;
  std::vector<unsigned char> pool(64, 0);
  bool any = false;
  detect::Stats::Snapshot st{};
  const RunResult r =
      run_pint(o, [&] { racy_tree(3, pool.data()); }, &any, &st);
  EXPECT_EQ(r.status, RunStatus::kOk);
  EXPECT_FALSE(r.watchdog_tripped);
  EXPECT_EQ(st.watchdog_trips, 0u);
  EXPECT_GT(fail::fire_count("reader.stall"), 0u);
  EXPECT_TRUE(any);
}

TEST_F(FailPointTest, PoolAllocFailureDegradesToCleanOom) {
  if (!fail::kCompiledIn) GTEST_SKIP() << "fail points compiled out";
  PintDetector::Options o;
  o.core_workers = 2;
  std::vector<unsigned char> pool(64, 0);

  bool clean_any = false;
  const RunResult clean =
      run_pint(o, [&] { racy_tree(4, pool.data()); }, &clean_any);
  ASSERT_EQ(clean.status, RunStatus::kOk);
  ASSERT_TRUE(clean_any);

  CaptureErrors cap;
  ASSERT_TRUE(fail::configure("pool.alloc=once"));
  bool faulty_any = false;
  detect::Stats::Snapshot st{};
  const RunResult r =
      run_pint(o, [&] { racy_tree(4, pool.data()); }, &faulty_any, &st);
  // The emergency reserve absorbs the failed allocation: the run finishes,
  // reports kOutOfMemory, and detection still matches the clean run.  The
  // ASan lane additionally proves the degradation path leaks nothing.
  EXPECT_EQ(r.status, RunStatus::kOutOfMemory);
  EXPECT_STREQ(r.status_name(), "out-of-memory");
  EXPECT_GE(st.oom_events, 1u);
  EXPECT_EQ(fail::fire_count("pool.alloc"), 1u);
  EXPECT_EQ(faulty_any, clean_any);
  EXPECT_NE(cap.text().find("allocation"), std::string::npos);
}

TEST_F(FailPointTest, SpawnFailureFallsBackToSequentialHistory) {
  if (!fail::kCompiledIn) GTEST_SKIP() << "fail points compiled out";
  CaptureErrors cap;
  ASSERT_TRUE(fail::configure("history.spawn=once"));
  PintDetector::Options o;
  o.core_workers = 2;
  o.parallel_history = true;
  std::vector<unsigned char> pool(64, 0);
  bool any = false;
  const RunResult r = run_pint(o, [&] { racy_tree(4, pool.data()); }, &any);
  // Detection is complete and exact in the fallback mode; only the
  // history-pipeline asynchrony is lost, so the status stays kOk.
  EXPECT_EQ(r.status, RunStatus::kOk);
  EXPECT_TRUE(r.degraded_sequential_history);
  EXPECT_TRUE(any);
  EXPECT_NE(cap.text().find("falling back"), std::string::npos);
}

TEST_F(FailPointTest, QueueFullStormKeepsDetectionExact) {
  if (!fail::kCompiledIn) GTEST_SKIP() << "fail points compiled out";
  PintDetector::Options o;
  o.core_workers = 2;
  o.queue_capacity = 8;  // tiny ring + injected full-pressure
  std::vector<unsigned char> pool(1024, 0);

  ASSERT_TRUE(fail::configure("ahqueue.push.full=prob:0.5,seed:11"));
  bool racy_any = false;
  detect::Stats::Snapshot st{};
  const RunResult r1 =
      run_pint(o, [&] { racy_tree(4, pool.data()); }, &racy_any, &st);
  EXPECT_EQ(r1.status, RunStatus::kOk);
  EXPECT_TRUE(racy_any);  // matches the oracle: the racy tree races
  EXPECT_GT(st.stalled_pushes, 0u);
  EXPECT_GT(st.backoff_pauses, 0u);

  fail::reset();
  ASSERT_TRUE(fail::configure("ahqueue.push.full=prob:0.5,seed:11"));
  bool clean_any = true;
  const RunResult r2 =
      run_pint(o, [&] { disjoint_tree(4, pool.data(), 0); }, &clean_any);
  EXPECT_EQ(r2.status, RunStatus::kOk);
  EXPECT_FALSE(clean_any);  // and the race-free tree stays race-free
}

TEST_F(FailPointTest, TransientBackoffDoesNotTripWatchdogLater) {
  if (!fail::kCompiledIn) GTEST_SKIP() << "fail points compiled out";
  // Regression: a single queue-full backoff marks the collector-backoff
  // heartbeat busy; collect() must return it to idle once the push lands,
  // or any run outliving the watchdog deadline after one transient stall
  // is cancelled as kStalled despite being perfectly healthy.
  ASSERT_TRUE(fail::configure("ahqueue.push.full=once"));
  PintDetector::Options o;
  o.core_workers = 2;
  o.watchdog_ms = 50;
  std::vector<unsigned char> pool(64, 0);
  bool any = false;
  detect::Stats::Snapshot st{};
  const RunResult r = run_pint(
      o,
      [&] {
        racy_tree(3, pool.data());  // pushes strands; first push is stalled
        // Keep the run alive well past the deadline after the stall.
        std::this_thread::sleep_for(std::chrono::milliseconds(200));
      },
      &any, &st);
  EXPECT_EQ(r.status, RunStatus::kOk);
  EXPECT_FALSE(r.watchdog_tripped);
  EXPECT_EQ(st.watchdog_trips, 0u);
  EXPECT_GE(st.stalled_pushes, 1u);
  EXPECT_EQ(fail::fire_count("ahqueue.push.full"), 1u);
  EXPECT_TRUE(any);
}

TEST_F(FailPointTest, SequentialRingCapShedsAndReportsOom) {
  CaptureErrors cap;
  // No fail point needed: the cap itself is the fault.  Sequential mode
  // buffers every strand, so a 16-slot ceiling against ~dozens of strands
  // must shed, keep running, and report kOutOfMemory.
  PintDetector::Options o;
  o.parallel_history = false;
  o.queue_capacity = 8;
  o.max_queue_capacity = 16;
  std::vector<unsigned char> pool(64, 0);
  bool any = false;
  detect::Stats::Snapshot st{};
  const RunResult r =
      run_pint(o, [&] { racy_tree(5, pool.data()); }, &any, &st);
  EXPECT_EQ(r.status, RunStatus::kOutOfMemory);
  EXPECT_GT(r.dropped_strands, 0u);
  EXPECT_EQ(st.dropped_strands, r.dropped_strands);
  EXPECT_GE(st.oom_events, 1u);
  EXPECT_NE(cap.text().find("max_queue_capacity"), std::string::npos);
}

TEST_F(FailPointTest, UncappedSequentialRingStillGrows) {
  // Regression guard for the bounded-growth rewrite: the default
  // (max_queue_capacity = 0) keeps the old grow-forever behaviour.
  PintDetector::Options o;
  o.parallel_history = false;
  o.queue_capacity = 8;
  std::vector<unsigned char> pool(64, 0);
  bool any = false;
  const RunResult r = run_pint(o, [&] { racy_tree(5, pool.data()); }, &any);
  EXPECT_EQ(r.status, RunStatus::kOk);
  EXPECT_EQ(r.dropped_strands, 0u);
  EXPECT_TRUE(any);
}

// ---------------------------------------------------------------------------
// Reporter record shedding
// ---------------------------------------------------------------------------

TEST(ReporterTest, DroppedRecordsAreObservable) {
  detect::RaceReporter rep(/*max_records=*/2);
  for (std::uint64_t i = 0; i < 5; ++i) {
    rep.report(/*prev_sid=*/10 + 2 * i, true, /*cur_sid=*/11 + 2 * i, true,
               /*lo=*/0, /*hi=*/8);
  }
  EXPECT_EQ(rep.distinct_races(), 5u);  // counting never stops
  EXPECT_EQ(rep.records().size(), 2u);  // detail capped at max_records
  EXPECT_EQ(rep.dropped_records(), 3u);
  rep.clear();
  EXPECT_EQ(rep.dropped_records(), 0u);
}

}  // namespace
}  // namespace pint::test
