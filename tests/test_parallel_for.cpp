// Tests for the parallel_for / parallel_reduce loop skeletons.

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "common.hpp"
#include "detect/instrument.hpp"
#include "runtime/parallel_for.hpp"
#include "runtime/scheduler.hpp"

using namespace pint;

class ParallelFor : public ::testing::TestWithParam<int> {};

TEST_P(ParallelFor, CoversEveryIndexOnce) {
  rt::Scheduler::Options o;
  o.workers = GetParam();
  rt::Scheduler s(o);
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  s.run([&] {
    rt::parallel_for(0, kN, 64, [&](std::size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
  });
  for (std::size_t i = 0; i < kN; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
}

TEST_P(ParallelFor, EmptyAndTinyRanges) {
  rt::Scheduler::Options o;
  o.workers = GetParam();
  rt::Scheduler s(o);
  int count = 0;
  s.run([&] {
    rt::parallel_for(5, 5, 8, [&](std::size_t) { ++count; });
    rt::parallel_for(7, 8, 8, [&](std::size_t) { ++count; });
  });
  EXPECT_EQ(count, 1);
}

TEST_P(ParallelFor, ReduceSum) {
  rt::Scheduler::Options o;
  o.workers = GetParam();
  rt::Scheduler s(o);
  constexpr std::size_t kN = 1 << 15;
  long total = -1;
  s.run([&] {
    total = rt::parallel_reduce(
        0, kN, 128, 0L, [](std::size_t i) { return long(i); },
        [](long a, long b) { return a + b; });
  });
  EXPECT_EQ(total, long(kN) * (kN - 1) / 2);
}

TEST_P(ParallelFor, ReduceMax) {
  rt::Scheduler::Options o;
  o.workers = GetParam();
  rt::Scheduler s(o);
  std::vector<long> v(5000);
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = long((i * 2654435761u) % 100000);
  }
  long expect = 0;
  for (long x : v) expect = std::max(expect, x);
  long got = -1;
  s.run([&] {
    got = rt::parallel_reduce(
        0, v.size(), 32, 0L, [&](std::size_t i) { return v[i]; },
        [](long a, long b) { return a < b ? b : a; });
  });
  EXPECT_EQ(got, expect);
}

INSTANTIATE_TEST_SUITE_P(Workers, ParallelFor, ::testing::Values(1, 2, 4),
                         [](const auto& info) {
                           return "w" + std::to_string(info.param);
                         });

TEST(ParallelForDetect, InstrumentedLoopIsRaceFree) {
  std::vector<long> data(4096, 0);
  auto r = test::run_under(test::Det::kPint2, [&] {
    rt::parallel_for(0, data.size(), 64, [&](std::size_t i) {
      record_write(&data[i], sizeof(long));
      data[i] = long(i);
    });
    rt::parallel_for(0, data.size(), 64, [&](std::size_t i) {
      record_read(&data[i], sizeof(long));
    });
  });
  EXPECT_FALSE(r.any_race);
}

TEST(ParallelForDetect, OverlappingBodiesAreCaught) {
  std::vector<long> data(4096, 0);
  auto r = test::run_under(test::Det::kPint2, [&] {
    rt::parallel_for(0, data.size() - 1, 64, [&](std::size_t i) {
      // Each iteration writes its slot AND its right neighbour: adjacent
      // (parallel) iterations collide.
      record_write(&data[i], 2 * sizeof(long));
      data[i] = long(i);
    });
  });
  EXPECT_TRUE(r.any_race);
}
