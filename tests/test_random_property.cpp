// Property tests: random series-parallel programs executed under every real
// detector must agree with the exact oracle on "does a race exist" -
// Theorem 5's guarantee. Race-free-by-construction programs must never
// trigger a report from any detector.

#include <gtest/gtest.h>

#include <vector>

#include "common.hpp"

using namespace pint;
using test::Det;
using test::ProgramConfig;
using test::ProgramGen;

namespace {

struct Case {
  std::uint64_t seed;
  bool race_free;
};

std::vector<Case> make_cases() {
  std::vector<Case> cases;
  for (std::uint64_t s = 1; s <= 12; ++s) cases.push_back({s, false});
  for (std::uint64_t s = 101; s <= 108; ++s) cases.push_back({s, true});
  return cases;
}

}  // namespace

class RandomProgram : public ::testing::TestWithParam<Case> {};

TEST_P(RandomProgram, AllDetectorsMatchOracle) {
  const Case c = GetParam();
  ProgramConfig cfg;
  cfg.race_free = c.race_free;
  ProgramGen gen(c.seed, cfg);
  auto prog = gen.generate();
  const std::size_t pool = test::program_pool_bytes(cfg);

  const bool truth = test::oracle_any_race(*prog, pool);
  if (c.race_free) {
    ASSERT_FALSE(truth) << "race-free generator produced a racy program";
  }

  for (Det d : test::all_detectors()) {
    std::vector<unsigned char> mem(pool, 0);
    unsigned char* base = mem.data();
    const test::PNode* p = prog.get();
    auto r = test::run_under(d, [p, base] { test::exec_node(*p, base); });
    EXPECT_EQ(r.any_race, truth)
        << "detector=" << test::det_name(d) << " seed=" << c.seed
        << " race_free=" << c.race_free;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgram,
                         ::testing::ValuesIn(make_cases()),
                         [](const auto& info) {
                           return std::string(info.param.race_free ? "clean"
                                                                   : "rand") +
                                  std::to_string(info.param.seed);
                         });

// Repeated runs of the same racy program under the parallel detectors:
// schedule nondeterminism must never flip the any-race verdict.
TEST(RandomProgramStability, ParallelSchedulesAgree) {
  ProgramConfig cfg;
  ProgramGen gen(42, cfg);
  auto prog = gen.generate();
  const std::size_t pool = test::program_pool_bytes(cfg);
  const bool truth = test::oracle_any_race(*prog, pool);

  for (int rep = 0; rep < 5; ++rep) {
    for (Det d : {Det::kPint2, Det::kPint4, Det::kCracer4}) {
      std::vector<unsigned char> mem(pool, 0);
      unsigned char* base = mem.data();
      const test::PNode* p = prog.get();
      auto r = test::run_under(d, [p, base] { test::exec_node(*p, base); },
                               std::uint64_t(rep) * 17 + 3);
      EXPECT_EQ(r.any_race, truth)
          << "detector=" << test::det_name(d) << " rep=" << rep;
    }
  }
}

// Deeper/wider programs for the interval machinery: longer actions, more
// nodes - race-free construction, so any report is a false positive.
TEST(RandomProgramStability, LargeRaceFreeProgramsStayClean) {
  for (std::uint64_t seed : {7u, 8u, 9u}) {
    ProgramConfig cfg;
    cfg.race_free = true;
    cfg.max_depth = 6;
    cfg.max_children = 4;
    cfg.max_actions = 6;
    ProgramGen gen(seed, cfg);
    auto prog = gen.generate();
    const std::size_t pool = test::program_pool_bytes(cfg);
    for (Det d : {Det::kStint, Det::kPint4, Det::kCracer4}) {
      std::vector<unsigned char> mem(pool, 0);
      unsigned char* base = mem.data();
      const test::PNode* p = prog.get();
      auto r = test::run_under(d, [p, base] { test::exec_node(*p, base); });
      EXPECT_FALSE(r.any_race)
          << "detector=" << test::det_name(d) << " seed=" << seed;
    }
  }
}
