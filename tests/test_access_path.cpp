// Equivalence regression for the access hot path (DESIGN.md §9): the
// thread-local AccessCursor fast path and the classic record_access_slow
// route must produce the same detection result, and so must coalescing
// on/off.  Checked at three strengths:
//
//  * cursor unit tests: install/invalidate, inline coalescing, pending-ring
//    spill, the misuse guard and the global knob;
//  * deterministic detectors (STINT, phased one-core PINT): the full race
//    RECORDS are bit-identical across fast path on/off (same sids, same
//    kinds, same byte ranges - rebased when the two runs use fresh kernel
//    heaps);
//  * pipelined PINT: the detected pair set and distinct count match; the
//    sampled records() prefix is only compared below the reporter cap;
//  * coalesce on/off: identical racing-pair sets on every kernel; on random
//    programs the contract is the detection verdict (checked against the
//    oracle), since finer intervals may retain different readers.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <tuple>
#include <vector>

#include "common.hpp"
#include "kernels/kernels.hpp"
#include "reach/engine.hpp"

using namespace pint;

namespace {

// RAII: tests flip the global fast-path knob; never leak the setting.
struct FastPathGuard {
  bool saved = detect::access_fast_path();
  ~FastPathGuard() { detect::set_access_fast_path(saved); }
};

// ---------------------------------------------------------------------------
// Cursor unit tests (drive detail::record_access directly - no detector)
// ---------------------------------------------------------------------------

TEST(AccessCursor, SequentialAccessesCoalesceToOneInterval) {
  FastPathGuard g;
  detect::set_access_fast_path(true);
  detect::AccessBuffer reads, writes;
  detect::cursor_install(&reads, &writes, /*coalesce=*/true);
  ASSERT_TRUE(detect::cursor_installed());
  alignas(8) unsigned char buf[256] = {};
  for (int i = 0; i < 32; ++i) detail::record_access(buf + i * 8, 8, false);
  const detect::CursorFlush fl = detect::cursor_invalidate();
  EXPECT_FALSE(detect::cursor_installed());
  EXPECT_EQ(fl.raw_reads, 32u);
  EXPECT_EQ(fl.raw_writes, 0u);
  // Every access is absorbed in cursor storage (no per-access buffer
  // touch), including the one that opened the interval: hits = raw - spills.
  EXPECT_EQ(fl.hits, 32u);
  EXPECT_EQ(fl.spills, 0u);
  reads.finalize(true);
  ASSERT_EQ(reads.items().size(), 1u);
  EXPECT_EQ(reads.items()[0].lo, detect::addr_of(buf));
  EXPECT_EQ(reads.items()[0].hi, detect::addr_of(buf) + 255);
  EXPECT_TRUE(writes.empty());
}

TEST(AccessCursor, InterleavedStreamsStayInThePendingRing) {
  FastPathGuard g;
  detect::set_access_fast_path(true);
  detect::AccessBuffer reads, writes;
  detect::cursor_install(&reads, &writes, true);
  // kTails interleaved streams - the GEMM shape the tail probe exists for.
  // One arena with gaps between the streams: separate allocations can land
  // adjacent (they do under the TSan allocator), which would legitimately
  // merge the per-stream intervals and break the counts below.
  constexpr std::size_t kStreams = detect::AccessBuffer::kTails;
  constexpr std::size_t kStride = 1024;  // 512 used + 512 gap
  std::vector<unsigned char> arena(kStreams * kStride);
  for (int i = 0; i < 64; ++i) {
    for (std::size_t s = 0; s < kStreams; ++s) {
      detail::record_access(arena.data() + s * kStride + i * 8, 8, true);
    }
  }
  const detect::CursorFlush fl = detect::cursor_invalidate();
  EXPECT_EQ(fl.raw_writes, 64u * kStreams);
  // kTails streams fit exactly in cursor storage (open + pending ring), so
  // nothing ever spills: every access counts as absorbed.
  EXPECT_EQ(fl.hits, 64u * kStreams);
  EXPECT_EQ(fl.spills, 0u);
  writes.finalize(true);
  EXPECT_EQ(writes.items().size(), kStreams);
}

TEST(AccessCursor, OverflowSpillsToTheBufferWithoutLosingBytes) {
  FastPathGuard g;
  detect::set_access_fast_path(true);
  detect::AccessBuffer reads, writes;
  detect::cursor_install(&reads, &writes, true);
  // More concurrent streams than cursor storage: correctness must not
  // depend on the cursor's capacity, only hit counts may drop.  Gapped
  // arena for the same reason as above.
  constexpr std::size_t kStreams = detect::AccessBuffer::kTails * 3;
  constexpr std::size_t kStride = 128;  // 64 used + 64 gap
  std::vector<unsigned char> arena(kStreams * kStride);
  for (int i = 0; i < 8; ++i) {
    for (std::size_t s = 0; s < kStreams; ++s) {
      detail::record_access(arena.data() + s * kStride + i * 8, 8, false);
    }
  }
  detect::cursor_invalidate();
  reads.finalize(true);
  ASSERT_EQ(reads.items().size(), kStreams);
  std::uint64_t bytes = 0;
  for (const auto& iv : reads.items()) bytes += iv.hi - iv.lo + 1;
  EXPECT_EQ(bytes, kStreams * 64u);
}

TEST(AccessCursor, CoalesceOffRecordsEveryAccessRaw) {
  FastPathGuard g;
  detect::set_access_fast_path(true);
  detect::AccessBuffer reads, writes;
  detect::cursor_install(&reads, &writes, /*coalesce=*/false);
  unsigned char buf[128] = {};
  for (int i = 0; i < 16; ++i) detail::record_access(buf + i * 8, 8, true);
  const detect::CursorFlush fl = detect::cursor_invalidate();
  EXPECT_EQ(fl.raw_writes, 16u);
  EXPECT_EQ(fl.hits, 0u);
  writes.finalize(false);
  EXPECT_EQ(writes.items().size(), 16u);  // ablation: one interval per access
}

TEST(AccessCursor, KnobOffMeansNoCursorEverInstalls) {
  FastPathGuard g;
  detect::set_access_fast_path(false);
  detect::AccessBuffer reads, writes;
  detect::cursor_install(&reads, &writes, true);
  EXPECT_FALSE(detect::cursor_installed());
  const detect::CursorFlush fl = detect::cursor_invalidate();
  EXPECT_EQ(fl.raw_reads + fl.raw_writes + fl.hits, 0u);
}

TEST(AccessCursor, DoubleInstallFlushesThePreviousStrand) {
  FastPathGuard g;
  detect::set_access_fast_path(true);
  detect::AccessBuffer r1, w1, r2, w2;
  unsigned char buf[64] = {};
  detect::cursor_install(&r1, &w1, true);
  detail::record_access(buf, 8, false);
  detect::cursor_install(&r2, &w2, true);  // misuse guard path
  detail::record_access(buf + 8, 8, false);
  detect::cursor_invalidate();
  r1.finalize(true);
  r2.finalize(true);
  ASSERT_EQ(r1.items().size(), 1u);  // first strand's access was not lost
  ASSERT_EQ(r2.items().size(), 1u);
  EXPECT_EQ(r1.items()[0].lo, detect::addr_of(buf));
  EXPECT_EQ(r2.items()[0].lo, detect::addr_of(buf) + 8);
}

TEST(AccessCursor, ZeroLengthAccessesAreDiscardedByTheWrappers) {
  unsigned char buf[8] = {};
  record_read(buf, 0);  // must not reach any recording path
  record_write(buf, 0);
}

// ---------------------------------------------------------------------------
// Whole-detector equivalence
// ---------------------------------------------------------------------------

// Full record: (prev_sid, cur_sid, prev_write, cur_write, lo, hi).
using FullRecord = std::tuple<std::uint64_t, std::uint64_t, int, int,
                              std::uint64_t, std::uint64_t>;
// Dedup identity: symmetric strand pair + kind bits (report.hpp pair_key).
using PairKey = std::tuple<std::uint64_t, std::uint64_t, int, int>;

enum class Sys { kStint, kPintSeq, kPint1, kPintShard };

// RAII: policy tests flip the global cursor-policy knob; never leak the
// setting, and clear this thread's per-site table so a later test starts
// from virgin policy state.  (Worker-thread tables may keep stale site
// modes; that is perf-only state and can never change a verdict.)
struct CursorPolicyGuard {
  detect::CursorPolicy saved = detect::cursor_policy();
  ~CursorPolicyGuard() {
    detect::set_cursor_policy(saved);
    detect::cursor_policy_reset();
  }
};

constexpr detect::CursorPolicy kAllPolicies[] = {
    detect::CursorPolicy::kAdaptive, detect::CursorPolicy::kInline,
    detect::CursorPolicy::kWide, detect::CursorPolicy::kBypass};

struct RunOut {
  std::vector<FullRecord> full;    // sorted, absolute addresses
  std::vector<FullRecord> rebased; // same, addresses rebased to the run min
  std::vector<PairKey> pairs;      // sorted + deduped
  std::uint64_t distinct = 0;
  std::uint64_t dropped = 0;       // records shed at the reporter cap
  detect::Stats::Snapshot stats{};
};

RunOut summarize(const detect::RaceReporter& rep,
                 const detect::Stats& stats) {
  RunOut out;
  std::uint64_t min_lo = ~std::uint64_t(0);
  for (const detect::RaceRecord& r : rep.records()) {
    out.full.push_back(
        {r.prev_sid, r.cur_sid, r.prev_write, r.cur_write, r.lo, r.hi});
    min_lo = std::min(min_lo, r.lo);
    std::uint64_t a = r.prev_sid, b = r.cur_sid;
    int aw = r.prev_write, bw = r.cur_write;
    if (a > b) {
      std::swap(a, b);
      std::swap(aw, bw);
    }
    out.pairs.push_back({a, b, aw, bw});
  }
  std::sort(out.full.begin(), out.full.end());
  // Kernels allocate their working set per instance, so two runs see the
  // same byte ranges at different heap bases; rebasing to the run's minimum
  // recorded address makes records comparable while still pinning every
  // relative offset and interval extent bit-for-bit.
  out.rebased = out.full;
  for (auto& [ps, cs, pw, cw, lo, hi] : out.rebased) {
    lo -= min_lo;
    hi -= min_lo;
  }
  std::sort(out.pairs.begin(), out.pairs.end());
  out.pairs.erase(std::unique(out.pairs.begin(), out.pairs.end()),
                  out.pairs.end());
  out.distinct = rep.distinct_races();
  out.dropped = rep.dropped_records();
  out.stats = stats.snapshot();
  return out;
}

RunOut run_config(Sys sys, bool coalesce, bool fast,
                  const std::function<void()>& body, std::uint64_t seed = 7) {
  FastPathGuard g;
  detect::set_access_fast_path(fast);
  if (sys == Sys::kStint) {
    stint::StintDetector::Options o;
    o.seed = seed;
    o.coalesce = coalesce;
    stint::StintDetector det(o);
    det.run(body);
    return summarize(det.reporter(), det.stats());
  }
  pintd::PintDetector::Options o;
  o.seed = seed;
  o.coalesce = coalesce;
  o.parallel_history = sys != Sys::kPintSeq;
  if (sys == Sys::kPintShard) o.history_shards = 2;  // §VI sharded mode
  o.core_workers = 1;
  pintd::PintDetector det(o);
  det.run(body);
  return summarize(det.reporter(), det.stats());
}

class KernelAccessPath : public ::testing::TestWithParam<std::string> {};

TEST_P(KernelAccessPath, FastPathIsBitIdenticalOnDeterministicDetectors) {
  kernels::KernelConfig cfg;
  cfg.scale = 0.1;
  cfg.seeded_race = true;  // non-trivial race sets to compare
  for (Sys sys : {Sys::kStint, Sys::kPintSeq}) {
    auto fresh = [&] {
      auto k = kernels::make_kernel(GetParam(), cfg);
      k->prepare();
      return k;
    };
    auto kf = fresh();
    const RunOut fast = run_config(sys, true, true, [&] { kf->run(); });
    auto ks = fresh();
    const RunOut slow = run_config(sys, true, false, [&] { ks->run(); });
    // Each run gets a fresh kernel instance (fresh heap base), so compare
    // rebased records: every sid, kind, relative offset and interval extent
    // must match bit-for-bit.
    EXPECT_EQ(fast.rebased, slow.rebased)
        << "fast/slow records diverge, sys=" << int(sys);
    EXPECT_EQ(fast.distinct, slow.distinct);
    // The route split must be total: everything fast with the cursor on,
    // everything slow with it off, identical raw-access totals either way.
    EXPECT_GT(fast.stats.fastpath_accesses, 0u);
    EXPECT_EQ(fast.stats.slowpath_accesses, 0u);
    EXPECT_EQ(slow.stats.fastpath_accesses, 0u);
    EXPECT_GT(slow.stats.slowpath_accesses, 0u);
    EXPECT_EQ(fast.stats.raw_reads + fast.stats.raw_writes,
              slow.stats.raw_reads + slow.stats.raw_writes);
  }
}

TEST_P(KernelAccessPath, CoalesceOnOffReportTheSameRacingPairs) {
  kernels::KernelConfig cfg;
  cfg.scale = 0.1;
  cfg.seeded_race = true;
  for (const bool fast : {true, false}) {
    auto fresh = [&] {
      auto k = kernels::make_kernel(GetParam(), cfg);
      k->prepare();
      return k;
    };
    auto kon = fresh();
    const RunOut on = run_config(Sys::kStint, true, fast, [&] { kon->run(); });
    auto koff = fresh();
    const RunOut off =
        run_config(Sys::kStint, false, fast, [&] { koff->run(); });
    EXPECT_EQ(on.pairs, off.pairs) << "coalesce on/off diverge, fast=" << fast;
  }
}

TEST_P(KernelAccessPath, PipelinedPintAgreesOnThePairSet) {
  kernels::KernelConfig cfg;
  cfg.scale = 0.1;
  cfg.seeded_race = true;
  auto fresh = [&] {
    auto k = kernels::make_kernel(GetParam(), cfg);
    k->prepare();
    return k;
  };
  auto kf = fresh();
  const RunOut fast = run_config(Sys::kPint1, true, true, [&] { kf->run(); });
  auto ks = fresh();
  const RunOut slow = run_config(Sys::kPint1, true, false, [&] { ks->run(); });
  // The detected pair SET is deterministic (queue order fixes processing
  // order), but records() keeps only the first max_records distinct pairs,
  // and on race-heavy kernels WHICH pairs land in that prefix depends on
  // reader-thread interleaving.  So the sampled pair sets are only
  // comparable when neither run hit the cap; the distinct count always is.
  EXPECT_EQ(fast.distinct, slow.distinct);
  if (fast.dropped == 0 && slow.dropped == 0) {
    EXPECT_EQ(fast.pairs, slow.pairs);
  }
}

TEST_P(KernelAccessPath, RaceFreeKernelStaysRaceFreeUnderTheCursor) {
  kernels::KernelConfig cfg;
  cfg.scale = 0.1;
  auto k = kernels::make_kernel(GetParam(), cfg);
  k->prepare();
  const RunOut out = run_config(Sys::kPintSeq, true, true, [&] { k->run(); });
  EXPECT_TRUE(out.full.empty()) << "cursor fast path introduced a false race";
  EXPECT_TRUE(k->verify());
}

INSTANTIATE_TEST_SUITE_P(All, KernelAccessPath,
                         ::testing::ValuesIn(kernels::kernel_names()),
                         [](const auto& info) { return info.param; });

// Random series-parallel programs: denser spawn/sync structure than the
// kernels, so cursor install/invalidate churns at every boundary shape.
TEST(RandomProgramAccessPath, AllFourConfigurationsAgree) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    test::ProgramConfig pc;
    auto prog = test::ProgramGen(seed, pc).generate();
    std::vector<unsigned char> pool(test::program_pool_bytes(pc), 0);
    unsigned char* base = pool.data();
    const test::PNode* p = prog.get();
    const auto body = [p, base] { test::exec_node(*p, base); };

    // Same pool for every run, so records compare at absolute addresses.
    // Fast vs slow must agree bit-for-bit at either coalesce setting; across
    // coalesce settings only the detection VERDICT is contractual for random
    // programs (finer intervals can retain different readers in the history,
    // so the sampled pair set may differ - see report.hpp).
    const RunOut ref = run_config(Sys::kStint, true, true, body);
    const RunOut slow = run_config(Sys::kStint, true, false, body);
    EXPECT_EQ(ref.full, slow.full) << "seed=" << seed;
    const RunOut raw_fast = run_config(Sys::kStint, false, true, body);
    const RunOut raw_slow = run_config(Sys::kStint, false, false, body);
    EXPECT_EQ(raw_fast.full, raw_slow.full) << "seed=" << seed;
    EXPECT_EQ(ref.distinct > 0, raw_fast.distinct > 0) << "seed=" << seed;
    EXPECT_EQ(ref.distinct > 0,
              test::oracle_any_race(*p, test::program_pool_bytes(pc)))
        << "seed=" << seed;
  }
}

// ---------------------------------------------------------------------------
// Adaptive-cursor policy equivalence (DESIGN.md §11)
// ---------------------------------------------------------------------------

// The per-site policy machine may only move work between the cursor's
// absorption tiers and the spill path - never change what gets recorded.
// Deterministic detectors must be record-bit-identical under every policy.
TEST_P(KernelAccessPath, EveryCursorPolicyIsBitIdenticalOnPhasedDetectors) {
  CursorPolicyGuard pg;
  kernels::KernelConfig cfg;
  cfg.scale = 0.1;
  cfg.seeded_race = true;
  auto fresh = [&] {
    auto k = kernels::make_kernel(GetParam(), cfg);
    k->prepare();
    return k;
  };
  detect::set_cursor_policy(detect::CursorPolicy::kAdaptive);
  auto ks = fresh();
  // Reference: the slow route, which no cursor policy can touch.
  const RunOut ref = run_config(Sys::kPintSeq, true, false, [&] { ks->run(); });
  for (const detect::CursorPolicy p : kAllPolicies) {
    detect::set_cursor_policy(p);
    auto k = fresh();
    const RunOut out = run_config(Sys::kPintSeq, true, true, [&] { k->run(); });
    EXPECT_EQ(out.rebased, ref.rebased)
        << "policy " << detect::cursor_policy_name(p) << " changed records";
    EXPECT_EQ(out.distinct, ref.distinct)
        << "policy " << detect::cursor_policy_name(p);
  }
}

// Pipelined and sharded PINT: the distinct-race count is deterministic for
// a fixed configuration (the sampled records() prefix is not, see
// PipelinedPintAgreesOnThePairSet) - so policy invariance is checked per
// system against that system's own slow-route run.
TEST_P(KernelAccessPath, EveryCursorPolicyAgreesOnPipelinedAndSharded) {
  CursorPolicyGuard pg;
  kernels::KernelConfig cfg;
  cfg.scale = 0.1;
  cfg.seeded_race = true;
  auto fresh = [&] {
    auto k = kernels::make_kernel(GetParam(), cfg);
    k->prepare();
    return k;
  };
  for (const Sys sys : {Sys::kPint1, Sys::kPintShard}) {
    detect::set_cursor_policy(detect::CursorPolicy::kAdaptive);
    auto ks = fresh();
    const RunOut ref = run_config(sys, true, false, [&] { ks->run(); });
    for (const detect::CursorPolicy p : kAllPolicies) {
      detect::set_cursor_policy(p);
      auto k = fresh();
      const RunOut out = run_config(sys, true, true, [&] { k->run(); });
      EXPECT_EQ(out.distinct, ref.distinct)
          << "sys=" << int(sys) << " policy "
          << detect::cursor_policy_name(p);
      if (out.dropped == 0 && ref.dropped == 0) {
        EXPECT_EQ(out.pairs, ref.pairs)
            << "sys=" << int(sys) << " policy "
            << detect::cursor_policy_name(p);
      }
    }
  }
}

// Random programs hit the policy machine with much denser strand churn than
// the kernels (sites see cross-strand windows, bypass leases straddle
// installs).  Full records must still be bit-identical on STINT, and the
// verdict must agree on sharded PINT.
TEST(RandomProgramAccessPath, EveryCursorPolicyAgrees) {
  CursorPolicyGuard pg;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    test::ProgramConfig pc;
    auto prog = test::ProgramGen(seed, pc).generate();
    std::vector<unsigned char> pool(test::program_pool_bytes(pc), 0);
    unsigned char* base = pool.data();
    const test::PNode* p = prog.get();
    const auto body = [p, base] { test::exec_node(*p, base); };
    detect::set_cursor_policy(detect::CursorPolicy::kAdaptive);
    const RunOut ref = run_config(Sys::kStint, true, false, body);
    for (const detect::CursorPolicy pol : kAllPolicies) {
      detect::set_cursor_policy(pol);
      const RunOut out = run_config(Sys::kStint, true, true, body);
      EXPECT_EQ(out.full, ref.full)
          << "seed=" << seed << " policy " << detect::cursor_policy_name(pol);
      const RunOut sh = run_config(Sys::kPintShard, true, true, body);
      EXPECT_EQ(sh.distinct > 0, ref.distinct > 0)
          << "seed=" << seed << " policy " << detect::cursor_policy_name(pol);
    }
  }
}

// Regression for the measured 0.00 cursor hit rate on the sort kernel: the
// old accounting charged every interval OPEN as a miss, so sort's
// alternating merge streams (which the pending ring absorbs perfectly)
// scored zero.  Hits are now defined as raw accesses minus actual
// AccessBuffer spills; sort must score well above the BENCH_access bar.
TEST(CursorPolicy, SortKernelKeepsAHighCursorHitRate) {
  CursorPolicyGuard pg;
  detect::set_cursor_policy(detect::CursorPolicy::kAdaptive);
  kernels::KernelConfig cfg;
  cfg.scale = 0.2;  // the BENCH_access.json shape
  auto k = kernels::make_kernel("sort", cfg);
  k->prepare();
  const RunOut out = run_config(Sys::kStint, true, true, [&] { k->run(); });
  ASSERT_GT(out.stats.fastpath_accesses, 0u);
  const double rate = double(out.stats.fastpath_hits) /
                      double(out.stats.fastpath_accesses);
  EXPECT_GT(rate, 0.5) << "sort cursor hit rate regressed";
}

// The memo cache must not change verdicts: seeded-race kernels under PintSeq
// exercise writer + both reader lanes with memos on every query (they are
// always on; this pins the hit-rate counters' sanity instead).
TEST(MemoCache, CountersAreCoherent) {
  kernels::KernelConfig cfg;
  cfg.scale = 0.1;
  cfg.seeded_race = true;
  auto k = kernels::make_kernel("heat", cfg);
  k->prepare();
  const RunOut out = run_config(Sys::kPintSeq, true, true, [&] { k->run(); });
  EXPECT_LE(out.stats.memo_hits, out.stats.memo_queries);
  EXPECT_GT(out.stats.memo_queries, 0u);
}

// Every history configuration must fold memo counters from every lane it
// runs (STINT's inline phases, phased/pipelined writer + both readers,
// sharded's per-shard caches), so the BENCH_access hit rates stay
// comparable across modes.
TEST(MemoCache, EveryModeCountsQueriesOnAllLanes) {
  kernels::KernelConfig cfg;
  cfg.scale = 0.1;
  cfg.seeded_race = true;
  for (const Sys sys :
       {Sys::kStint, Sys::kPintSeq, Sys::kPint1, Sys::kPintShard}) {
    auto k = kernels::make_kernel("heat", cfg);
    k->prepare();
    const RunOut out = run_config(sys, true, true, [&] { k->run(); });
    EXPECT_GT(out.stats.memo_queries, 0u) << "sys=" << int(sys);
    EXPECT_LE(out.stats.memo_hits, out.stats.memo_queries)
        << "sys=" << int(sys);
  }
}

// The bump-tolerant keying contract (DESIGN.md §11): an OM relabel
// (subtag redistribution or sublist split) invalidates exactly the pairs
// whose sublists it touched.  A far pair survives frontier churn that
// relabels other sublists; only a TOP-LEVEL relabel - which rewrites every
// group tag - may take it down.
// This pins the SpOrder backend EXPLICITLY (not the selected reach::Engine):
// sublist-version keying is that backend's own mechanism, and the test must
// keep certifying it even in a -DPINT_REACH_BACKEND=depa build (where the
// DePa memo never invalidates at all - see test_reach_backends.cpp).
TEST(MemoCache, RelabelInvalidatesOnlyTheTouchedSublists) {
  reach::SpOrderEngine eng;
  reach::MemoCache memo;
  reach::Label sync;
  const auto sl = eng.on_spawn(eng.root_label(), &sync);
  const reach::Label A = sl.child, B = sl.cont;
  // Grow both orders well past one sublist so A/B's groups sit far from the
  // insertion frontier.
  reach::Label tail = B;
  for (int i = 0; i < 512; ++i) {
    reach::Label s;
    tail = eng.on_spawn(tail, &s).cont;
  }
  // A second pair AT the frontier, whose sublists the churn below relabels.
  reach::Label s2;
  const auto nl = eng.on_spawn(tail, &s2);
  const reach::Label C = nl.child, D = nl.cont;
  (void)eng.relation(A, B, &memo);
  (void)eng.relation(C, D, &memo);
  ASSERT_TRUE(memo.cached(A.eng, B.eng));
  ASSERT_TRUE(memo.cached(C.eng, D.eng));
  // Dense churn right after D: overflows D's ~64-item sublist, forcing at
  // least one redistribution/split there.  The near pair must invalidate;
  // the far pair's four sublists are untouched, so its entry must survive -
  // the bump tolerance the PR 4 global epoch lacked (any mutation anywhere
  // wiped the whole cache).
  for (int i = 0; i < 48; ++i) {
    reach::Label s;
    (void)eng.on_spawn(D, &s);
  }
  EXPECT_FALSE(memo.cached(C.eng, D.eng))
      << "a relabel of the touched sublist left a stale entry cached";
  EXPECT_TRUE(memo.cached(A.eng, B.eng))
      << "a far-sublist relabel invalidated an untouched pair";
  // Keep hammering the same spot: the classic OM worst case, re-subdividing
  // one gap until the top-level tags exhaust and relabel_top rewrites every
  // group.  No insertion ever lands near A/B, so the first invalidation of
  // their pair IS the top-level relabel - and it must be observed.
  bool invalidated = false;
  for (int i = 0; i < 200000 && !invalidated; ++i) {
    reach::Label s;
    (void)eng.on_spawn(D, &s);
    invalidated = !memo.cached(A.eng, B.eng);
  }
  EXPECT_TRUE(invalidated)
      << "a top-level relabel left a stale pair verdict cached";
  // And the refill after the relabel serves the same verdict.
  const reach::Relation r = eng.relation(A, B, &memo);
  EXPECT_TRUE(r.eng);   // A (child) precedes B (cont) in English order
  EXPECT_FALSE(r.heb);  // ...and follows it in Hebrew order
  EXPECT_TRUE(memo.cached(A.eng, B.eng));
}

}  // namespace
