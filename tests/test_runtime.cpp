// Tests for the work-stealing runtime: correctness of spawn/sync across
// worker counts, scope semantics, the deque, and steal behaviour.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "runtime/deque.hpp"
#include "runtime/scheduler.hpp"

using namespace pint;

namespace {

long fib_ref(int n) { return n < 2 ? n : fib_ref(n - 1) + fib_ref(n - 2); }

void fib(int n, long* out) {
  if (n < 2) {
    *out = n;
    return;
  }
  long a = 0, b = 0;
  rt::SpawnScope sc;
  sc.spawn([&] { fib(n - 1, &a); });
  fib(n - 2, &b);
  sc.sync();
  *out = a + b;
}

}  // namespace

class RuntimeWorkers : public ::testing::TestWithParam<int> {};

TEST_P(RuntimeWorkers, FibIsCorrect) {
  rt::Scheduler::Options o;
  o.workers = GetParam();
  rt::Scheduler s(o);
  long r = 0;
  s.run([&] { fib(22, &r); });
  EXPECT_EQ(r, fib_ref(22));
}

TEST_P(RuntimeWorkers, ParallelSumReduction) {
  rt::Scheduler::Options o;
  o.workers = GetParam();
  rt::Scheduler s(o);
  constexpr int kN = 1 << 14;
  std::vector<long> v(kN);
  for (int i = 0; i < kN; ++i) v[std::size_t(i)] = i;
  struct Sum {
    static long go(const long* a, std::size_t n) {
      if (n <= 64) {
        long t = 0;
        for (std::size_t i = 0; i < n; ++i) t += a[i];
        return t;
      }
      long left = 0;
      rt::SpawnScope sc;
      sc.spawn([&, a, n] { left = go(a, n / 2); });
      const long right = go(a + n / 2, n - n / 2);
      sc.sync();
      return left + right;
    }
  };
  long total = 0;
  s.run([&] { total = Sum::go(v.data(), v.size()); });
  EXPECT_EQ(total, long(kN) * (kN - 1) / 2);
}

TEST_P(RuntimeWorkers, ManySequentialBlocksInOneScope) {
  rt::Scheduler::Options o;
  o.workers = GetParam();
  rt::Scheduler s(o);
  int counter = 0;
  s.run([&] {
    rt::SpawnScope sc;
    for (int round = 0; round < 50; ++round) {
      int a = 0, b = 0;
      sc.spawn([&] { a = 1; });
      sc.spawn([&] { b = 2; });
      sc.sync();
      counter += a + b;  // both children must be done here
    }
  });
  EXPECT_EQ(counter, 150);
}

TEST_P(RuntimeWorkers, NestedScopesInOneFunction) {
  rt::Scheduler::Options o;
  o.workers = GetParam();
  rt::Scheduler s(o);
  int x = 0, y = 0;
  s.run([&] {
    rt::SpawnScope outer;
    outer.spawn([&] {
      rt::SpawnScope inner;
      inner.spawn([&] { x = 7; });
      inner.sync();
      y = x + 1;  // must observe the inner child
    });
    outer.sync();
  });
  EXPECT_EQ(x, 7);
  EXPECT_EQ(y, 8);
}

TEST_P(RuntimeWorkers, WideSpawnFanout) {
  rt::Scheduler::Options o;
  o.workers = GetParam();
  rt::Scheduler s(o);
  constexpr int kTasks = 500;
  std::vector<int> hit(kTasks, 0);
  s.run([&] {
    rt::SpawnScope sc;
    for (int i = 0; i < kTasks; ++i) {
      sc.spawn([&hit, i] { hit[std::size_t(i)] = 1; });
    }
    sc.sync();
  });
  for (int i = 0; i < kTasks; ++i) EXPECT_EQ(hit[std::size_t(i)], 1) << i;
}

TEST_P(RuntimeWorkers, DeepSpawnChain) {
  rt::Scheduler::Options o;
  o.workers = GetParam();
  rt::Scheduler s(o);
  struct Deep {
    static void go(int depth, int* out) {
      if (depth == 0) {
        *out = 1;
        return;
      }
      int inner = 0;
      rt::SpawnScope sc;
      sc.spawn([&, depth] { go(depth - 1, &inner); });
      sc.sync();
      *out = inner + 1;
    }
  };
  int d = 0;
  s.run([&] { Deep::go(300, &d); });
  EXPECT_EQ(d, 301);
}

TEST_P(RuntimeWorkers, LargeClosureUsesHeapPath) {
  rt::Scheduler::Options o;
  o.workers = GetParam();
  rt::Scheduler s(o);
  struct Big {
    char pad[512];  // exceeds TaskFrame::kInlineClosure
    int value = 5;
  } big;
  big.pad[0] = 1;
  int got = 0;
  s.run([&] {
    rt::SpawnScope sc;
    sc.spawn([big, &got] { got = big.value; });
    sc.sync();
  });
  EXPECT_EQ(got, 5);
}

INSTANTIATE_TEST_SUITE_P(Workers, RuntimeWorkers, ::testing::Values(1, 2, 3, 4),
                         [](const auto& info) {
                           return "w" + std::to_string(info.param);
                         });

TEST(Runtime, SequentialExecutionOrderOnOneWorker) {
  // With one worker, continuation stealing must reproduce the exact serial
  // (depth-first, child-before-continuation) order.
  rt::Scheduler::Options o;
  o.workers = 1;
  rt::Scheduler s(o);
  std::vector<int> order;
  s.run([&] {
    rt::SpawnScope sc;
    order.push_back(0);
    sc.spawn([&] { order.push_back(1); });
    order.push_back(2);
    sc.spawn([&] { order.push_back(3); });
    order.push_back(4);
    sc.sync();
    order.push_back(5);
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5}));
}

TEST(Runtime, StealsHappenUnderContention) {
  // Even on one CPU, preemption produces steals for long enough runs.
  rt::Scheduler::Options o;
  o.workers = 4;
  rt::Scheduler s(o);
  long r = 0;
  s.run([&] { fib(27, &r); });
  EXPECT_EQ(r, fib_ref(27));
  // Not asserted > 0 (scheduling-dependent), but report it for visibility.
  ::testing::Test::RecordProperty("steals", std::to_string(s.total_steals()));
}

TEST(Runtime, RunTwiceOnSameScheduler) {
  rt::Scheduler::Options o;
  o.workers = 2;
  rt::Scheduler s(o);
  long a = 0, b = 0;
  s.run([&] { fib(15, &a); });
  s.run([&] { fib(16, &b); });
  EXPECT_EQ(a, fib_ref(15));
  EXPECT_EQ(b, fib_ref(16));
}

// ---------------------------------------------------------------------------
// Chase-Lev deque
// ---------------------------------------------------------------------------

TEST(Deque, LifoPopFifoSteal) {
  rt::WsDeque d(64);
  auto* f1 = reinterpret_cast<rt::TaskFrame*>(0x10);
  auto* f2 = reinterpret_cast<rt::TaskFrame*>(0x20);
  auto* f3 = reinterpret_cast<rt::TaskFrame*>(0x30);
  d.push(f1);
  d.push(f2);
  d.push(f3);
  EXPECT_EQ(d.steal(), f1);  // oldest
  EXPECT_EQ(d.pop(), f3);    // youngest
  EXPECT_EQ(d.pop(), f2);
  EXPECT_EQ(d.pop(), nullptr);
}

TEST(Deque, EmptyBehaviour) {
  rt::WsDeque d(64);
  EXPECT_TRUE(d.empty());
  EXPECT_EQ(d.pop(), nullptr);
  EXPECT_EQ(d.steal(), nullptr);
  d.push(reinterpret_cast<rt::TaskFrame*>(0x10));
  EXPECT_FALSE(d.empty());
  EXPECT_NE(d.pop(), nullptr);
  EXPECT_TRUE(d.empty());
}

TEST(Deque, ConcurrentStealStressNoLossNoDup) {
  rt::WsDeque d(1 << 18);  // must hold the worst-case backlog of this test
  constexpr int kItems = 200000;
  constexpr int kThieves = 3;
  std::vector<std::atomic<int>> seen(kItems);
  for (auto& s : seen) s.store(0);
  std::atomic<bool> done{false};

  std::vector<std::thread> thieves;
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      while (!done.load(std::memory_order_acquire) || !d.empty()) {
        rt::TaskFrame* f = d.steal();
        if (f) {
          seen[reinterpret_cast<std::uintptr_t>(f) - 1].fetch_add(1);
        }
      }
    });
  }
  // Owner: push all items, popping some itself.
  int pushed = 0;
  while (pushed < kItems) {
    const int burst = std::min(64, kItems - pushed);
    for (int i = 0; i < burst; ++i, ++pushed) {
      d.push(reinterpret_cast<rt::TaskFrame*>(std::uintptr_t(pushed) + 1));
    }
    for (int i = 0; i < burst / 2; ++i) {
      rt::TaskFrame* f = d.pop();
      if (f) seen[reinterpret_cast<std::uintptr_t>(f) - 1].fetch_add(1);
    }
  }
  for (rt::TaskFrame* f = d.pop(); f; f = d.pop()) {
    seen[reinterpret_cast<std::uintptr_t>(f) - 1].fetch_add(1);
  }
  done.store(true, std::memory_order_release);
  for (auto& t : thieves) t.join();
  for (rt::TaskFrame* f = d.steal(); f; f = d.steal()) {
    seen[reinterpret_cast<std::uintptr_t>(f) - 1].fetch_add(1);
  }
  for (int i = 0; i < kItems; ++i) {
    ASSERT_EQ(seen[std::size_t(i)].load(), 1) << "item " << i;
  }
}

TEST(Runtime, SchedulerChurnStealPublicationRace) {
  // Regression test: the parent's continuation must become stealable only
  // AFTER its context is saved (the child's trampoline publishes it). The
  // old order - push before ctx_switch - let a thief resume the parent from
  // a stale context and jump to garbage; ~1e3 scheduler lifecycles at 2
  // workers reproduced it reliably on a single-CPU host.
  for (int i = 0; i < 700; ++i) {
    rt::Scheduler::Options o;
    o.workers = 2;
    rt::Scheduler s(o);
    long r = 0;
    s.run([&] { fib(17, &r); });
    ASSERT_EQ(r, fib_ref(17)) << "iteration " << i;
  }
}
