// Lockset matrix (DESIGN.md §12): mutex-guarded programs must report ZERO
// races with lock edges on, their unguarded twins must keep racing, and the
// verdicts must agree across every detector and history mode.  Also covers
// the LocksetTable itself and memo bit-identity with lock edges enabled.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common.hpp"
#include "detect/lockset.hpp"
#include "kernels/kernels.hpp"
#include "oracle/oracle_detector.hpp"
#include "pint/pint_detector.hpp"
#include "stint/stint_detector.hpp"

namespace pint::test {
namespace {

// ---------------------------------------------------------------------------
// LocksetTable unit tests
// ---------------------------------------------------------------------------

TEST(LocksetTable, AcquireReleaseRoundTrip) {
  auto& tbl = detect::LocksetTable::instance();
  // Distinct addresses per test so the process-wide table stays inert
  // across tests.
  static int mva, mvb;
  const auto a = detect::addr_of(&mva), b = detect::addr_of(&mvb);

  const detect::lockset_t s1 = tbl.acquire(0, a);
  ASSERT_NE(s1, 0u);
  EXPECT_EQ(tbl.locks(s1), std::vector<detect::addr_t>({a}));

  const detect::lockset_t s2 = tbl.acquire(s1, b);
  ASSERT_NE(s2, 0u);
  ASSERT_NE(s2, s1);
  EXPECT_EQ(tbl.locks(s2).size(), 2u);

  // Releasing returns the interned predecessor ids, ending at empty (0).
  EXPECT_EQ(tbl.release(s2, b), s1);
  EXPECT_EQ(tbl.release(s1, a), 0u);

  // Interning is canonical: the same set always gets the same id.
  EXPECT_EQ(tbl.acquire(0, a), s1);
  EXPECT_EQ(tbl.acquire(s1, b), s2);
  // Acquire order does not matter (sets, not sequences).
  const detect::lockset_t sb = tbl.acquire(0, b);
  EXPECT_EQ(tbl.acquire(sb, a), s2);
}

TEST(LocksetTable, RecursiveAndUnmatchedAreNoOps) {
  auto& tbl = detect::LocksetTable::instance();
  static int mv;
  const auto a = detect::addr_of(&mv);
  const detect::lockset_t s1 = tbl.acquire(0, a);
  EXPECT_EQ(tbl.acquire(s1, a), s1);  // recursive re-acquire
  EXPECT_EQ(tbl.release(0, a), 0u);   // unmatched release of empty
  EXPECT_EQ(tbl.release(s1, a), 0u);
  static int other;
  EXPECT_EQ(tbl.release(s1, detect::addr_of(&other)), s1);  // not held
}

TEST(LocksetTable, Intersects) {
  auto& tbl = detect::LocksetTable::instance();
  static int mva, mvb, mvc;
  const auto a = detect::addr_of(&mva), b = detect::addr_of(&mvb),
             c = detect::addr_of(&mvc);
  const auto sa = tbl.acquire(0, a);
  const auto sb = tbl.acquire(0, b);
  const auto sab = tbl.acquire(sa, b);
  const auto sc = tbl.acquire(0, c);

  EXPECT_FALSE(detect::locksets_share(0, sa));
  EXPECT_FALSE(detect::locksets_share(sa, 0));
  EXPECT_TRUE(detect::locksets_share(sa, sa));
  EXPECT_FALSE(detect::locksets_share(sa, sb));
  EXPECT_TRUE(detect::locksets_share(sa, sab));
  EXPECT_TRUE(detect::locksets_share(sb, sab));
  EXPECT_FALSE(detect::locksets_share(sc, sab));
  // Memoized second query must agree.
  EXPECT_TRUE(detect::locksets_share(sa, sab));
  EXPECT_FALSE(detect::locksets_share(sc, sab));
}

// ---------------------------------------------------------------------------
// Guarded / unguarded twin matrix
// ---------------------------------------------------------------------------

DetRun run_kernel_under(Det d, const char* kernel, bool seeded,
                        std::uint64_t seed = 7) {
  kernels::KernelConfig kc;
  kc.scale = 0.5;
  kc.seeded_race = seeded;
  auto k = kernels::make_kernel(kernel, kc);
  k->prepare();
  DetRun r = run_under(d, [&] { k->run(); }, seed);
  if (!seeded) {
    EXPECT_TRUE(k->verify()) << kernel << " under " << det_name(d);
  }
  return r;
}

TEST(LockMatrix, GuardedTwinIsRaceFreeEverywhere) {
  for (Det d : all_detectors()) {
    const DetRun r = run_kernel_under(d, "lktwin", /*seeded=*/false);
    EXPECT_FALSE(r.any_race) << "guarded lktwin raced under " << det_name(d);
    EXPECT_EQ(r.distinct, 0u) << det_name(d);
  }
}

TEST(LockMatrix, UnguardedTwinRacesEverywhere) {
  for (Det d : all_detectors()) {
    const DetRun r = run_kernel_under(d, "lktwin", /*seeded=*/true);
    EXPECT_TRUE(r.any_race) << "unguarded lktwin missed under " << det_name(d);
  }
}

TEST(LockMatrix, GuardedCacheIsRaceFreeEverywhere) {
  for (Det d : all_detectors()) {
    const DetRun r = run_kernel_under(d, "lkcache", /*seeded=*/false);
    EXPECT_FALSE(r.any_race) << "guarded lkcache raced under " << det_name(d);
  }
}

TEST(LockMatrix, RacyCacheRacesEverywhere) {
  for (Det d : all_detectors()) {
    const DetRun r = run_kernel_under(d, "lkcache", /*seeded=*/true);
    EXPECT_TRUE(r.any_race) << "racy lkcache missed under " << det_name(d);
  }
}

TEST(LockMatrix, OracleAgreesOnBothTwins) {
  for (bool seeded : {false, true}) {
    kernels::KernelConfig kc;
    kc.scale = 0.5;
    kc.seeded_race = seeded;
    auto k = kernels::make_kernel("lktwin", kc);
    k->prepare();
    oracle::OracleDetector det;
    det.run([&] { k->run(); });
    EXPECT_EQ(det.any_race(), seeded) << (seeded ? "unguarded" : "guarded");
  }
}

// ---------------------------------------------------------------------------
// Ablations: the filter is load-bearing, and switchable
// ---------------------------------------------------------------------------

TEST(LockAblation, LockEdgesOffRestoresTheForkJoinVerdict) {
  // With lock edges disabled the guarded twin is indistinguishable from the
  // unguarded one: pure fork-join reachability must flag it.
  kernels::KernelConfig kc;
  kc.scale = 0.5;
  auto k = kernels::make_kernel("lktwin", kc);
  k->prepare();
  stint::StintDetector::Options o;
  o.tuning.lock_edges = false;
  stint::StintDetector det(o);
  det.run([&] { k->run(); });
  EXPECT_TRUE(det.reporter().any());
}

TEST(LockAblation, LockEdgesOffUnderPint) {
  kernels::KernelConfig kc;
  kc.scale = 0.5;
  auto k = kernels::make_kernel("lktwin", kc);
  k->prepare();
  pintd::PintDetector::Options o;
  o.core_workers = 2;
  o.tuning.lock_edges = false;
  pintd::PintDetector det(o);
  det.run([&] { k->run(); });
  EXPECT_TRUE(det.reporter().any());
}

TEST(LockAblation, EnvSpecTogglesLockEdges) {
  detect::Tuning t;  // defaults
  t = detect::Tuning::parse("locks=off", t);
  EXPECT_FALSE(t.lock_edges);
  t = detect::Tuning::parse("locks=on,memo=off", t);
  EXPECT_TRUE(t.lock_edges);
  EXPECT_FALSE(t.memo);
}

// ---------------------------------------------------------------------------
// Memo bit-identity with lock edges on
// ---------------------------------------------------------------------------

TEST(LockMemo, MemoOnOffBitIdenticalWithLockEdges) {
  // The memo may change the cost of reachability queries, never a verdict -
  // including across the lockset strand splits (same-label segments).  The
  // racy cache has a rich mix of guarded and unguarded pairs.
  for (bool seeded : {false, true}) {
    std::uint64_t base_races = ~std::uint64_t(0);
    for (bool memo : {true, false}) {
      kernels::KernelConfig kc;
      kc.scale = 0.5;
      kc.seeded_race = seeded;
      auto k = kernels::make_kernel("lkcache", kc);
      k->prepare();
      stint::StintDetector::Options o;
      o.tuning.memo = memo;
      stint::StintDetector det(o);
      det.run([&] { k->run(); });
      const std::uint64_t got = det.reporter().distinct_races();
      if (base_races == ~std::uint64_t(0)) {
        base_races = got;
      } else {
        EXPECT_EQ(got, base_races)
            << "memo changed the race set (seeded=" << seeded << ")";
      }
      if (!memo) {
        EXPECT_EQ(det.stats().memo_queries.load(), 0u);
      }
    }
    if (seeded) EXPECT_GT(base_races, 0u);
    if (!seeded) EXPECT_EQ(base_races, 0u);
  }
}

TEST(LockMemo, PintShardedMemoBitIdenticalWithLockEdges) {
  for (bool memo : {true, false}) {
    kernels::KernelConfig kc;
    kc.scale = 0.5;
    kc.seeded_race = true;
    auto k = kernels::make_kernel("lktwin", kc);
    k->prepare();
    pintd::PintDetector::Options o;
    o.core_workers = 2;
    o.history_shards = 3;
    o.tuning.memo = memo;
    pintd::PintDetector det(o);
    det.run([&] { k->run(); });
    EXPECT_TRUE(det.reporter().any());
    if (!memo) EXPECT_EQ(det.stats().memo_queries.load(), 0u);
  }
}

}  // namespace
}  // namespace pint::test
