// Tests for SP-order reachability: hand-built scenarios plus a property
// test against a transitive-closure oracle on random series-parallel DAGs.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "reach/engine.hpp"
#include "support/rng.hpp"

using namespace pint;
using reach::Engine;
using Label = reach::Engine::Label;  // backend-generic: whatever is selected

TEST(Reach, SpawnMakesChildAndContinuationParallel) {
  Engine e;
  Label u = e.root_label();
  Label sync;
  auto s = e.on_spawn(u, &sync);
  EXPECT_TRUE(e.precedes(u, s.child));
  EXPECT_TRUE(e.precedes(u, s.cont));
  EXPECT_TRUE(e.parallel(s.child, s.cont));
  EXPECT_FALSE(e.precedes(s.child, s.cont));
  EXPECT_FALSE(e.precedes(s.cont, s.child));
}

TEST(Reach, SyncNodeInSeriesWithWholeBlock) {
  Engine e;
  Label u = e.root_label();
  Label sync;
  auto s1 = e.on_spawn(u, &sync);
  auto s2 = e.on_spawn(s1.cont, &sync);  // second spawn, same block
  // Both children and both continuations precede the sync node.
  EXPECT_TRUE(e.precedes(s1.child, sync));
  EXPECT_TRUE(e.precedes(s2.child, sync));
  EXPECT_TRUE(e.precedes(s1.cont, sync));
  EXPECT_TRUE(e.precedes(s2.cont, sync));
  // The two children are parallel siblings.
  EXPECT_TRUE(e.parallel(s1.child, s2.child));
  // First child is left of second child.
  EXPECT_TRUE(e.left_of(s1.child, s2.child));
  EXPECT_FALSE(e.left_of(s2.child, s1.child));
  // Continuation 1 precedes child 2 (spawned later in program order).
  EXPECT_TRUE(e.precedes(s1.cont, s2.child));
}

TEST(Reach, NestedSpawnRegionsAreParallel) {
  Engine e;
  Label u = e.root_label();
  Label outer_sync;
  auto s1 = e.on_spawn(u, &outer_sync);
  // The child spawns its own subtree.
  Label inner_sync;
  auto c1 = e.on_spawn(s1.child, &inner_sync);
  // Everything in the child's subtree is parallel to the continuation.
  EXPECT_TRUE(e.parallel(c1.child, s1.cont));
  EXPECT_TRUE(e.parallel(c1.cont, s1.cont));
  EXPECT_TRUE(e.parallel(inner_sync, s1.cont));
  // ...but in series with the outer sync.
  EXPECT_TRUE(e.precedes(c1.child, outer_sync));
  EXPECT_TRUE(e.precedes(inner_sync, outer_sync));
}

TEST(Reach, SequentialBlocksAreInSeries) {
  Engine e;
  Label u = e.root_label();
  Label sync1;
  auto s1 = e.on_spawn(u, &sync1);
  // After the first block's sync, a second block begins at sync1.
  Label sync2;
  auto s2 = e.on_spawn(sync1, &sync2);
  EXPECT_TRUE(e.precedes(s1.child, s2.child));
  EXPECT_TRUE(e.precedes(s1.cont, s2.cont));
  EXPECT_TRUE(e.precedes(sync1, sync2));
}

// ---------------------------------------------------------------------------
// Property test: random SP tree vs transitive-closure oracle.
// ---------------------------------------------------------------------------

namespace {

/// Builds a random fork-join computation using the engine while recording
/// every strand and the ground-truth precedence edges; the oracle relation
/// is the transitive closure over those edges.
struct SpBuilder {
  Engine e;
  std::vector<Label> strands;
  std::vector<std::pair<int, int>> edges;
  Xoshiro256 rng;

  explicit SpBuilder(std::uint64_t seed) : rng(seed) {}

  int add(const Label& l) {
    strands.push_back(l);
    return int(strands.size()) - 1;
  }

  /// Simulates executing a function whose current strand is `cur` (index).
  /// Returns the index of its final strand.
  int run_function(int cur, int depth) {
    const int blocks = 1 + int(rng.next_below(2));
    for (int b = 0; b < blocks; ++b) {
      const bool force = depth == 0 && b == 0;  // at least one spawn overall
      if (!force && (depth >= 4 || rng.next_below(100) < 30)) continue;
      const int nspawn = 1 + int(rng.next_below(3));
      Label sync;
      std::vector<int> block_tails;
      for (int s = 0; s < nspawn; ++s) {
        auto labels = e.on_spawn(strands[std::size_t(cur)], &sync);
        const int child = add(labels.child);
        const int cont = add(labels.cont);
        edges.push_back({cur, child});
        edges.push_back({cur, cont});
        const int child_tail = run_function(child, depth + 1);
        block_tails.push_back(child_tail);
        cur = cont;
      }
      const int j = add(sync);
      edges.push_back({cur, j});
      for (int t : block_tails) edges.push_back({t, j});
      cur = j;
    }
    return cur;
  }
};

}  // namespace

TEST(Reach, PropertyMatchesTransitiveClosure) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    SpBuilder b(seed);
    const int root = b.add(b.e.root_label());
    b.run_function(root, 0);

    const std::size_t n = b.strands.size();
    ASSERT_GE(n, 2u);
    // Floyd-Warshall-style closure on a bit matrix.
    std::vector<std::vector<char>> reach(n, std::vector<char>(n, 0));
    for (auto [u, v] : b.edges) reach[std::size_t(u)][std::size_t(v)] = 1;
    for (std::size_t k = 0; k < n; ++k) {
      for (std::size_t i = 0; i < n; ++i) {
        if (!reach[i][k]) continue;
        for (std::size_t j = 0; j < n; ++j) {
          if (reach[k][j]) reach[i][j] = 1;
        }
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        if (i == j) continue;
        EXPECT_EQ(b.e.precedes(b.strands[i], b.strands[j]), bool(reach[i][j]))
            << "seed=" << seed << " i=" << i << " j=" << j;
      }
    }
  }
}
