#pragma once

// Shared test helpers: run a closure under any of the detectors through one
// interface, and generate random series-parallel programs for the
// oracle-comparison property tests.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cracer/cracer_detector.hpp"
#include "detect/instrument.hpp"
#include "oracle/oracle_detector.hpp"
#include "pint/pint_detector.hpp"
#include "runtime/scheduler.hpp"
#include "stint/stint_detector.hpp"
#include "support/rng.hpp"

namespace pint::test {

enum class Det {
  kStint,
  kStintMap,  // STINT with the per-granule hashmap history (ablation)
  kPintSeq,   // one-core phased PINT
  kPint1,     // PINT, 1 core worker + 3 treap workers
  kPint2,
  kPint4,
  kPintMap,   // PINT pipeline over the hashmap history (ablation)
  kPintShard3,  // SVI extension: 3 address-sharded history workers
  kCracer1,
  kCracer4,
};

inline const char* det_name(Det d) {
  switch (d) {
    case Det::kStint: return "stint";
    case Det::kStintMap: return "stint_map";
    case Det::kPintSeq: return "pint_seq";
    case Det::kPint1: return "pint_w1";
    case Det::kPint2: return "pint_w2";
    case Det::kPint4: return "pint_w4";
    case Det::kPintMap: return "pint_map";
    case Det::kPintShard3: return "pint_shard3";
    case Det::kCracer1: return "cracer_w1";
    case Det::kCracer4: return "cracer_w4";
  }
  return "?";
}

inline const std::vector<Det>& all_detectors() {
  static const std::vector<Det> v = {
      Det::kStint,   Det::kStintMap, Det::kPintSeq,    Det::kPint1,
      Det::kPint2,   Det::kPint4,    Det::kPintMap,    Det::kPintShard3,
      Det::kCracer1, Det::kCracer4};
  return v;
}

struct DetRun {
  bool any_race = false;
  std::uint64_t distinct = 0;
};

/// Runs body() under the given detector configuration.
inline DetRun run_under(Det d, const std::function<void()>& body,
                        std::uint64_t seed = 7) {
  DetRun out;
  switch (d) {
    case Det::kStint:
    case Det::kStintMap: {
      stint::StintDetector::Options o;
      o.seed = seed;
      if (d == Det::kStintMap) o.history = detect::HistoryKind::kGranuleMap;
      stint::StintDetector det(o);
      det.run(body);
      out.any_race = det.reporter().any();
      out.distinct = det.reporter().distinct_races();
      break;
    }
    case Det::kPintSeq:
    case Det::kPint1:
    case Det::kPint2:
    case Det::kPint4:
    case Det::kPintMap:
    case Det::kPintShard3: {
      pintd::PintDetector::Options o;
      o.seed = seed;
      o.parallel_history = d != Det::kPintSeq;
      o.core_workers =
          d == Det::kPint2 || d == Det::kPintMap || d == Det::kPintShard3
              ? 2
              : d == Det::kPint4 ? 4 : 1;
      if (d == Det::kPintMap) o.history = detect::HistoryKind::kGranuleMap;
      if (d == Det::kPintShard3) o.history_shards = 3;
      pintd::PintDetector det(o);
      det.run(body);
      out.any_race = det.reporter().any();
      out.distinct = det.reporter().distinct_races();
      break;
    }
    case Det::kCracer1:
    case Det::kCracer4: {
      cracer::CracerDetector::Options o;
      o.seed = seed;
      o.workers = d == Det::kCracer4 ? 4 : 1;
      cracer::CracerDetector det(o);
      det.run(body);
      out.any_race = det.reporter().any();
      out.distinct = det.reporter().distinct_races();
      break;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Random series-parallel program generator
// ---------------------------------------------------------------------------

struct Action {
  std::uint32_t offset;
  std::uint16_t len;
  bool write;
};

struct PNode {
  std::vector<Action> pre;   // before any spawn
  std::vector<Action> mid;   // between spawns (continuation strands)
  std::vector<Action> post;  // after the sync
  std::vector<std::unique_ptr<PNode>> children;
};

struct ProgramConfig {
  int max_depth = 4;
  int max_children = 3;
  int max_actions = 4;
  std::uint32_t pool_bytes = 256;  // small pool => overlaps are likely
  bool race_free = false;          // partition the pool per node instead
};

class ProgramGen {
 public:
  ProgramGen(std::uint64_t seed, const ProgramConfig& cfg)
      : rng_(seed), cfg_(cfg) {}

  std::unique_ptr<PNode> generate() { return gen_node(0); }

 private:
  std::unique_ptr<PNode> gen_node(int depth) {
    auto n = std::make_unique<PNode>();
    gen_actions(n->pre);
    if (depth < cfg_.max_depth && rng_.next_below(100) < 70) {
      const int k = 1 + int(rng_.next_below(std::uint64_t(cfg_.max_children)));
      for (int i = 0; i < k; ++i) {
        n->children.push_back(gen_node(depth + 1));
        gen_actions(n->mid);
      }
    }
    gen_actions(n->post);
    return n;
  }

  void gen_actions(std::vector<Action>& out) {
    const int k = int(rng_.next_below(std::uint64_t(cfg_.max_actions) + 1));
    for (int i = 0; i < k; ++i) {
      std::uint32_t off;
      std::uint16_t len = std::uint16_t(1 + rng_.next_below(16));
      if (cfg_.race_free) {
        // Each node draws from its own 64-byte slab, assigned on first use.
        if (slab_ == 0) slab_ = next_slab_ += 64;
        off = std::uint32_t(slab_ - 64 + rng_.next_below(48));
        len = std::uint16_t(1 + rng_.next_below(16));
      } else {
        off = std::uint32_t(rng_.next_below(cfg_.pool_bytes - 16));
      }
      out.push_back({off, len, rng_.next_below(2) == 0});
    }
    slab_ = 0;  // a fresh slab per strand segment in race-free mode
  }

  Xoshiro256 rng_;
  ProgramConfig cfg_;
  std::uint32_t slab_ = 0;
  std::uint32_t next_slab_ = 0;
};

/// Total bytes a race-free program might touch (slabs are handed out
/// monotonically; bound generously).
inline std::size_t program_pool_bytes(const ProgramConfig& cfg) {
  return cfg.race_free ? std::size_t(1) << 20 : cfg.pool_bytes;
}

inline void exec_node(const PNode& n, unsigned char* base) {
  auto do_actions = [&](const std::vector<Action>& as) {
    for (const Action& a : as) {
      if (a.write) {
        record_write(base + a.offset, a.len);
      } else {
        record_read(base + a.offset, a.len);
      }
    }
  };
  do_actions(n.pre);
  if (!n.children.empty()) {
    rt::SpawnScope sc;
    std::size_t mid_idx = 0;
    const std::size_t mid_per_child =
        n.children.empty() ? 0 : n.mid.size() / n.children.size();
    for (const auto& c : n.children) {
      const PNode* cp = c.get();
      sc.spawn([cp, base] { exec_node(*cp, base); });
      // A slice of mid actions lands on this continuation strand.
      for (std::size_t k = 0; k < mid_per_child && mid_idx < n.mid.size();
           ++k, ++mid_idx) {
        const Action& a = n.mid[mid_idx];
        if (a.write) {
          record_write(base + a.offset, a.len);
        } else {
          record_read(base + a.offset, a.len);
        }
      }
    }
    sc.sync();
  }
  do_actions(n.post);
}

/// Ground truth for a generated program.
inline bool oracle_any_race(const PNode& prog, std::size_t pool_bytes) {
  std::vector<unsigned char> pool(pool_bytes, 0);
  oracle::OracleDetector d;
  unsigned char* base = pool.data();
  const PNode* p = &prog;
  d.run([p, base] { exec_node(*p, base); });
  return d.any_race();
}

}  // namespace pint::test
