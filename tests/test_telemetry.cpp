// Telemetry suite (label: telemetry): the span/counter recorder, the
// background sampler, the Chrome-trace/metrics exporters, and the unified
// detect::DetectorRunner seam the bench harness dispatches through.
//
// The exporter checks parse the emitted JSON with a minimal recursive-
// descent parser (no third-party dependency) and verify structural
// invariants: balanced begin/end spans per track, per-role span totals that
// agree with the detector's CPU-time Stats within tolerance, and a
// monotonic sampler time series.  The same file compiles under
// -DPINT_TELEMETRY=OFF, where it instead asserts that every stub is inert.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common.hpp"
#include "detect/run_result.hpp"
#include "support/telemetry.hpp"

namespace pint::test {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON parser (objects, arrays, strings, numbers, bools, null)
// ---------------------------------------------------------------------------

struct JNode {
  enum Kind { kNull, kBool, kNum, kStr, kArr, kObj } kind = kNull;
  bool b = false;
  double num = 0;
  std::string str;
  std::vector<JNode> arr;
  std::map<std::string, JNode> obj;

  const JNode* get(const std::string& key) const {
    auto it = obj.find(key);
    return it == obj.end() ? nullptr : &it->second;
  }
};

class JParser {
 public:
  explicit JParser(const std::string& s) : s_(s) {}

  bool parse(JNode* out) {
    skip_ws();
    if (!value(out)) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                                s_[pos_] == '\n' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }
  bool lit(const char* w, std::size_t n) {
    if (s_.compare(pos_, n, w) != 0) return false;
    pos_ += n;
    return true;
  }
  bool string(std::string* out) {
    if (pos_ >= s_.size() || s_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        if (pos_ + 1 >= s_.size()) return false;
        const char e = s_[pos_ + 1];
        pos_ += 2;
        switch (e) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          case 'r': out->push_back('\r'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'u':
            if (pos_ + 4 > s_.size()) return false;
            out->push_back('?');  // structural checks never read these
            pos_ += 4;
            break;
          default: return false;
        }
      } else {
        out->push_back(s_[pos_++]);
      }
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool value(JNode* out) {
    skip_ws();
    if (pos_ >= s_.size()) return false;
    const char c = s_[pos_];
    if (c == '{') {
      out->kind = JNode::kObj;
      ++pos_;
      skip_ws();
      if (pos_ < s_.size() && s_[pos_] == '}') { ++pos_; return true; }
      for (;;) {
        skip_ws();
        std::string key;
        if (!string(&key)) return false;
        skip_ws();
        if (pos_ >= s_.size() || s_[pos_] != ':') return false;
        ++pos_;
        JNode v;
        if (!value(&v)) return false;
        out->obj.emplace(std::move(key), std::move(v));
        skip_ws();
        if (pos_ >= s_.size()) return false;
        if (s_[pos_] == ',') { ++pos_; continue; }
        if (s_[pos_] == '}') { ++pos_; return true; }
        return false;
      }
    }
    if (c == '[') {
      out->kind = JNode::kArr;
      ++pos_;
      skip_ws();
      if (pos_ < s_.size() && s_[pos_] == ']') { ++pos_; return true; }
      for (;;) {
        JNode v;
        if (!value(&v)) return false;
        out->arr.push_back(std::move(v));
        skip_ws();
        if (pos_ >= s_.size()) return false;
        if (s_[pos_] == ',') { ++pos_; continue; }
        if (s_[pos_] == ']') { ++pos_; return true; }
        return false;
      }
    }
    if (c == '"') {
      out->kind = JNode::kStr;
      return string(&out->str);
    }
    if (c == 't') { out->kind = JNode::kBool; out->b = true; return lit("true", 4); }
    if (c == 'f') { out->kind = JNode::kBool; out->b = false; return lit("false", 5); }
    if (c == 'n') { out->kind = JNode::kNull; return lit("null", 4); }
    // number
    std::size_t end = pos_;
    while (end < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[end])) || s_[end] == '-' ||
            s_[end] == '+' || s_[end] == '.' || s_[end] == 'e' || s_[end] == 'E')) {
      ++end;
    }
    if (end == pos_) return false;
    out->kind = JNode::kNum;
    out->num = std::atof(s_.substr(pos_, end - pos_).c_str());
    pos_ = end;
    return true;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string tmp_path(const char* leaf) {
  return ::testing::TempDir() + leaf;
}

// ---------------------------------------------------------------------------
// Workload: race-free spawn tree with enough accesses to fill real spans
// ---------------------------------------------------------------------------

constexpr int kDepth = 9;                       // 512 leaf strands
constexpr std::size_t kSlot = 256;              // bytes written per leaf

void tree(int depth, unsigned char* base, std::uint32_t idx) {
  if (depth == 0) {
    record_write(base + std::size_t(idx) * kSlot, kSlot);
    for (std::size_t i = 0; i < kSlot; ++i) base[std::size_t(idx) * kSlot + i] = 1;
    record_read(base + std::size_t(idx) * kSlot, kSlot);
    return;
  }
  rt::SpawnScope sc;
  sc.spawn([=] { tree(depth - 1, base, idx * 2); });
  sc.spawn([=] { tree(depth - 1, base, idx * 2 + 1); });
  sc.sync();
}

void run_workload() {
  static std::vector<unsigned char> buf((std::size_t(1) << kDepth) * kSlot);
  tree(kDepth, buf.data(), 0);
}

#if PINT_TELEMETRY_ENABLED

/// Runs the phased one-core PINT mode under telemetry and returns the
/// detector's stats snapshot.  Phased mode is the calibration target: each
/// role runs alone on the calling thread, so wall-clock spans and the
/// CPU-time stats watches measure the same work.
detect::Stats::Snapshot traced_pintseq_run() {
  telem::reset();
  telem::set_enabled(true);
  pintd::PintDetector::Options o;
  o.core_workers = 1;
  o.parallel_history = false;
  pintd::PintDetector d(o);
  const detect::RunResult rr = d.run([] { run_workload(); });
  telem::set_enabled(false);
  EXPECT_TRUE(rr.ok());
  EXPECT_FALSE(d.reporter().any());
  return d.stats().snapshot();
}

std::uint64_t span_total(const char* name) {
  for (const telem::Total& t : telem::span_totals()) {
    if (t.name == name) return t.total;
  }
  return 0;
}

// --- recorder + exporter ---------------------------------------------------

TEST(Telemetry, ChromeTraceIsValidWithBalancedSpans) {
  traced_pintseq_run();
  const std::string path = tmp_path("telem_trace.json");
  ASSERT_TRUE(telem::write_chrome_trace(path));

  JNode root;
  ASSERT_TRUE(JParser(slurp(path)).parse(&root)) << "trace is not valid JSON";
  ASSERT_EQ(root.kind, JNode::kObj);
  const JNode* events = root.get("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->kind, JNode::kArr);
  ASSERT_FALSE(events->arr.empty());

  // Per-track span stack: every E matches the innermost open B of the same
  // name, and every track's stack is empty at end of trace.
  std::map<double, std::vector<std::string>> open;
  std::map<double, std::string> track_names;
  for (const JNode& e : events->arr) {
    ASSERT_EQ(e.kind, JNode::kObj);
    const JNode* ph = e.get("ph");
    const JNode* tid = e.get("tid");
    ASSERT_NE(ph, nullptr);
    ASSERT_NE(tid, nullptr);
    if (ph->str == "M") {
      const JNode* args = e.get("args");
      ASSERT_NE(args, nullptr);
      const JNode* nm = args->get("name");
      ASSERT_NE(nm, nullptr);
      track_names[tid->num] = nm->str;
      continue;
    }
    ASSERT_NE(e.get("ts"), nullptr);
    const JNode* name = e.get("name");
    ASSERT_NE(name, nullptr);
    if (ph->str == "B") {
      open[tid->num].push_back(name->str);
    } else if (ph->str == "E") {
      auto& stack = open[tid->num];
      ASSERT_FALSE(stack.empty()) << "E without open B on tid " << tid->num;
      EXPECT_EQ(stack.back(), name->str);
      stack.pop_back();
    } else {
      EXPECT_EQ(ph->str, "C") << "unexpected phase " << ph->str;
    }
  }
  for (const auto& [tid, stack] : open) {
    EXPECT_TRUE(stack.empty()) << "unbalanced spans on tid " << tid;
  }
  // Every tid that carried events was named via thread_name metadata, and
  // the phased run produced all four pipeline role tracks.
  std::vector<std::string> roles;
  for (const auto& [tid, nm] : track_names) roles.push_back(nm);
  for (const char* want : {"core0", "writer", "lreader", "rreader", "sampler"}) {
    bool found = false;
    for (const auto& r : roles) found = found || r == want;
    EXPECT_TRUE(found) << "missing track " << want;
  }
}

TEST(Telemetry, SpanTotalsAgreeWithStatsBreakdown) {
  const detect::Stats::Snapshot s = traced_pintseq_run();
  const struct { const char* span; std::uint64_t stat_ns; } rows[] = {
      {"writer.strand", s.writer_ns},
      {"lreader.strand", s.lreader_ns},
      {"rreader.strand", s.rreader_ns},
  };
  for (const auto& row : rows) {
    const std::uint64_t sp = span_total(row.span);
    ASSERT_GT(sp, 0u) << row.span;
    ASSERT_GT(row.stat_ns, 0u) << row.span;
    // Spans use the wall clock, the stats watches use thread CPU time; in
    // phased mode they bracket the same code, so allow 25% relative plus a
    // small absolute slack for scheduler preemption on a busy host.
    const double diff = sp > row.stat_ns ? double(sp - row.stat_ns)
                                         : double(row.stat_ns - sp);
    EXPECT_LT(diff, 0.25 * double(row.stat_ns) + 2e6)
        << row.span << ": span=" << sp << " stats=" << row.stat_ns;
  }
}

TEST(Telemetry, SamplerSeriesIsMonotonicAndCoversRun) {
  traced_pintseq_run();
  std::uint64_t last_ts = 0;
  std::size_t samples = 0;
  bool saw_depth = false;
  for (const telem::EventRec& e : telem::snapshot_events()) {
    if (e.track != "sampler") continue;
    EXPECT_EQ(e.kind, telem::EventKind::kGauge);
    EXPECT_GE(e.ts_ns, last_ts);  // single sampler thread: time moves forward
    last_ts = e.ts_ns;
    ++samples;
    saw_depth = saw_depth || e.name == "queue.depth";
  }
  // One probe fires immediately and one on stop, so even a near-instant run
  // yields at least two rounds of gauges.
  EXPECT_GE(samples, 2u);
  EXPECT_TRUE(saw_depth);
}

TEST(Telemetry, MetricsJsonHasAllSections) {
  const detect::Stats::Snapshot s = traced_pintseq_run();
  const std::string path = tmp_path("telem_metrics.json");
  ASSERT_TRUE(telem::write_metrics_json(
      path, {{"total_ns", s.total_ns}, {"strands", s.strands}}));
  JNode root;
  ASSERT_TRUE(JParser(slurp(path)).parse(&root)) << "metrics is not valid JSON";
  for (const char* sec : {"spans", "counters", "series", "stats", "telemetry"}) {
    const JNode* n = root.get(sec);
    ASSERT_NE(n, nullptr) << sec;
    EXPECT_EQ(n->kind, JNode::kObj) << sec;
  }
  const JNode* spans = root.get("spans");
  ASSERT_NE(spans->get("writer.strand"), nullptr);
  const JNode* stats = root.get("stats");
  const JNode* strands = stats->get("strands");
  ASSERT_NE(strands, nullptr);
  EXPECT_EQ(std::uint64_t(strands->num), s.strands);
}

TEST(Telemetry, DisabledRunRecordsNothing) {
  telem::reset();
  // Not enabled: every site must stay silent (this is the default-off state
  // every non-traced benchmark run relies on).
  pintd::PintDetector::Options o;
  o.core_workers = 1;
  o.parallel_history = false;
  pintd::PintDetector d(o);
  EXPECT_TRUE(d.run([] { run_workload(); }).ok());
  EXPECT_TRUE(telem::snapshot_events().empty());
  EXPECT_TRUE(telem::span_totals().empty());
  EXPECT_TRUE(telem::counter_totals().empty());
  EXPECT_EQ(telem::dropped_events(), 0u);
}

TEST(Telemetry, RingWrapKeepsTotalsExact) {
  telem::set_ring_capacity(1);  // clamps up to the minimum ring size
  telem::reset();               // applies the new capacity to live buffers
  telem::set_enabled(true);
  constexpr std::uint64_t kSpans = 5000;  // overflows the minimum ring
  for (std::uint64_t i = 0; i < kSpans; ++i) {
    telem::ScopedSpan span("wrap.test");
    telem::count("wrap.count");
  }
  telem::set_enabled(false);
  std::uint64_t n = 0;
  for (const telem::Total& t : telem::span_totals()) {
    if (t.name == "wrap.test") n = t.count;
  }
  EXPECT_EQ(n, kSpans);
  EXPECT_GT(telem::dropped_events(), 0u);
  telem::set_ring_capacity(std::size_t(1) << 16);  // default, for later tests
  telem::reset();
}

#else  // !PINT_TELEMETRY_ENABLED -------------------------------------------

TEST(TelemetryOff, EverythingIsInert) {
  telem::set_enabled(true);
  EXPECT_FALSE(telem::enabled());
  {
    PINT_TSPAN("off.span");
    PINT_TCOUNT("off.count");
    telem::gauge("off.gauge", 1);
    telem::set_thread_role("off");
  }
  telem::Sampler sampler;
  sampler.start([](telem::Sampler::Sink& sink) { sink.gauge("g", 1); });
  sampler.stop();
  EXPECT_TRUE(telem::snapshot_events().empty());
  EXPECT_TRUE(telem::span_totals().empty());
  EXPECT_TRUE(telem::counter_totals().empty());
  EXPECT_EQ(telem::dropped_events(), 0u);
  EXPECT_FALSE(telem::write_chrome_trace(tmp_path("off_trace.json")));
  EXPECT_FALSE(telem::write_metrics_json(tmp_path("off_metrics.json")));
}

#endif  // PINT_TELEMETRY_ENABLED

// ---------------------------------------------------------------------------
// Unified runner seam (works in both telemetry build flavors)
// ---------------------------------------------------------------------------

TEST(RunnerSeam, AllDetectorsRunThroughDetectorRunner) {
  std::vector<std::unique_ptr<detect::DetectorRunner>> runners;
  {
    stint::StintDetector::Options o;
    runners.push_back(std::make_unique<stint::StintDetector>(o));
  }
  {
    pintd::PintDetector::Options o;
    o.core_workers = 2;
    runners.push_back(std::make_unique<pintd::PintDetector>(o));
  }
  {
    cracer::CracerDetector::Options o;
    o.workers = 2;
    runners.push_back(std::make_unique<cracer::CracerDetector>(o));
  }
  runners.push_back(std::make_unique<oracle::OracleDetector>());

  for (auto& r : runners) {
    const detect::RunResult rr = r->run([] { run_workload(); });
    EXPECT_TRUE(rr.ok()) << r->name() << ": " << rr.status_name();
    EXPECT_FALSE(rr.degraded_sequential_history) << r->name();
    EXPECT_EQ(r->reporter().distinct_races(), 0u) << r->name();
    EXPECT_GT(r->stats().total_ns.load(), 0u) << r->name();
    EXPECT_NE(r->name(), nullptr);
  }
}

TEST(RunnerSeam, SharedOptionsReachEveryDetector) {
  // CommonOptions fields must flow through each Options subclass unchanged.
  stint::StintDetector::Options so;
  so.coalesce = false;
  so.seed = 99;
  EXPECT_FALSE(static_cast<detect::CommonOptions&>(so).coalesce);
  pintd::PintDetector::Options po;
  po.history = detect::HistoryKind::kGranuleMap;
  EXPECT_EQ(static_cast<detect::CommonOptions&>(po).history,
            detect::HistoryKind::kGranuleMap);
  cracer::CracerDetector::Options co;
  co.verbose_races = true;
  EXPECT_TRUE(static_cast<detect::CommonOptions&>(co).verbose_races);
  oracle::OracleDetector::Options oo;
  oo.stack_bytes = std::size_t(1) << 20;
  EXPECT_EQ(static_cast<detect::CommonOptions&>(oo).stack_bytes,
            std::size_t(1) << 20);
}

}  // namespace
}  // namespace pint::test
