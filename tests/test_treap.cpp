// Unit + property tests for the non-overlapping interval treap.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "support/rng.hpp"
#include "treap/interval_treap.hpp"

using namespace pint;
using treap::Accessor;
using treap::IntervalTreap;

namespace {

Accessor acc(std::uint64_t sid) { return {{}, sid}; }

struct Seg {
  std::uint64_t lo, hi, sid;
  bool operator==(const Seg&) const = default;
};

std::vector<Seg> contents(const IntervalTreap& t) {
  std::vector<Seg> out;
  t.for_each([&](std::uint64_t lo, std::uint64_t hi, const Accessor& a) {
    out.push_back({lo, hi, a.sid});
  });
  return out;
}

/// Reference model: one owner per byte.
class ByteModel {
 public:
  void write(std::uint64_t lo, std::uint64_t hi, std::uint64_t sid) {
    for (auto b = lo; b <= hi; ++b) owner_[b] = sid;
  }
  void erase(std::uint64_t lo, std::uint64_t hi) {
    owner_.erase(owner_.lower_bound(lo), owner_.upper_bound(hi));
  }
  /// Segments as (byte -> sid) coalesced like the treap would store them...
  /// only per-byte equality is checked, which is representation-independent.
  std::uint64_t at(std::uint64_t b) const {
    auto it = owner_.find(b);
    return it == owner_.end() ? 0 : it->second;
  }
  const std::map<std::uint64_t, std::uint64_t>& map() const { return owner_; }

 private:
  std::map<std::uint64_t, std::uint64_t> owner_;
};

std::uint64_t treap_at(const IntervalTreap& t, std::uint64_t b) {
  std::uint64_t sid = 0;
  t.query(b, b, [&](std::uint64_t, std::uint64_t, const Accessor& a) {
    sid = a.sid;
  });
  return sid;
}

}  // namespace

TEST(Treap, PaperExampleSplitsCorrectly) {
  // Paper §III-A: {[1,4]:u, [6,10]:v} + write [3,7]:w
  //            => {[1,2]:u, [3,7]:w, [8,10]:v}
  IntervalTreap t;
  t.insert_writer(1, 4, acc(1), [](auto, auto, const auto&) {});
  t.insert_writer(6, 10, acc(2), [](auto, auto, const auto&) {});
  std::vector<Seg> reported;
  t.insert_writer(3, 7, acc(3), [&](std::uint64_t lo, std::uint64_t hi,
                                    const Accessor& a) {
    reported.push_back({lo, hi, a.sid});
  });
  EXPECT_EQ(contents(t), (std::vector<Seg>{{1, 2, 1}, {3, 7, 3}, {8, 10, 2}}));
  // Overlapped segments reported in address order with previous owners.
  EXPECT_EQ(reported, (std::vector<Seg>{{3, 4, 1}, {6, 7, 2}}));
  EXPECT_TRUE(t.check_invariants());
}

TEST(Treap, ExactCoverInsert) {
  IntervalTreap t;
  t.insert_writer(10, 20, acc(1), [](auto, auto, const auto&) {});
  std::vector<Seg> rep;
  t.insert_writer(10, 20, acc(2), [&](std::uint64_t lo, std::uint64_t hi,
                                      const Accessor& a) {
    rep.push_back({lo, hi, a.sid});
  });
  EXPECT_EQ(rep, (std::vector<Seg>{{10, 20, 1}}));
  EXPECT_EQ(contents(t), (std::vector<Seg>{{10, 20, 2}}));
}

TEST(Treap, InsertInsideSplitsBothSides) {
  IntervalTreap t;
  t.insert_writer(0, 100, acc(1), [](auto, auto, const auto&) {});
  t.insert_writer(40, 60, acc(2), [](auto, auto, const auto&) {});
  EXPECT_EQ(contents(t),
            (std::vector<Seg>{{0, 39, 1}, {40, 60, 2}, {61, 100, 1}}));
  EXPECT_TRUE(t.check_invariants());
}

TEST(Treap, QueryDoesNotMutate) {
  IntervalTreap t;
  t.insert_writer(5, 9, acc(1), [](auto, auto, const auto&) {});
  int hits = 0;
  t.query(0, 100, [&](std::uint64_t lo, std::uint64_t hi, const Accessor& a) {
    EXPECT_EQ(lo, 5u);
    EXPECT_EQ(hi, 9u);
    EXPECT_EQ(a.sid, 1u);
    ++hits;
  });
  EXPECT_EQ(hits, 1);
  EXPECT_EQ(contents(t).size(), 1u);
}

TEST(Treap, QueryTrimsToRange) {
  IntervalTreap t;
  t.insert_writer(10, 30, acc(1), [](auto, auto, const auto&) {});
  t.query(20, 25, [&](std::uint64_t lo, std::uint64_t hi, const Accessor&) {
    EXPECT_EQ(lo, 20u);
    EXPECT_EQ(hi, 25u);
  });
}

TEST(Treap, EraseRangeTruncatesBoundaries) {
  IntervalTreap t;
  t.insert_writer(0, 9, acc(1), [](auto, auto, const auto&) {});
  t.insert_writer(10, 19, acc(2), [](auto, auto, const auto&) {});
  t.insert_writer(20, 29, acc(3), [](auto, auto, const auto&) {});
  t.erase_range(5, 24);
  EXPECT_EQ(contents(t), (std::vector<Seg>{{0, 4, 1}, {25, 29, 3}}));
  EXPECT_TRUE(t.check_invariants());
}

TEST(Treap, EraseAllLeavesEmpty) {
  IntervalTreap t;
  for (int i = 0; i < 64; ++i) {
    t.insert_writer(std::uint64_t(i) * 10, std::uint64_t(i) * 10 + 5, acc(1),
                    [](auto, auto, const auto&) {});
  }
  t.erase_range(0, 10000);
  EXPECT_TRUE(t.empty());
}

TEST(Treap, ReaderInsertSeriesReplaces) {
  IntervalTreap t;
  t.insert_reader(0, 50, acc(1), [](const Accessor&, const Accessor&) {
    return true;  // unconditionally take new (no prior anyway)
  });
  // New reader wins every overlap (simulates prev ~> cur).
  t.insert_reader(10, 20, acc(2),
                  [](const Accessor&, const Accessor&) { return true; });
  EXPECT_EQ(contents(t),
            (std::vector<Seg>{{0, 9, 1}, {10, 20, 2}, {21, 50, 1}}));
}

TEST(Treap, ReaderInsertKeepLosesGaps) {
  IntervalTreap t;
  t.insert_reader(10, 20, acc(1),
                  [](const Accessor&, const Accessor&) { return true; });
  // Old reader kept on overlap; the new one still fills uncovered gaps.
  t.insert_reader(0, 30, acc(2),
                  [](const Accessor&, const Accessor&) { return false; });
  EXPECT_EQ(contents(t),
            (std::vector<Seg>{{0, 9, 2}, {10, 20, 1}, {21, 30, 2}}));
}

TEST(Treap, ReaderInsertCoalescesSameWinner) {
  IntervalTreap t;
  t.insert_reader(10, 14, acc(1),
                  [](const Accessor&, const Accessor&) { return true; });
  t.insert_reader(15, 19, acc(1),
                  [](const Accessor&, const Accessor&) { return true; });
  // Covering insert where the NEW accessor always wins merges to one node.
  t.insert_reader(5, 25, acc(1),
                  [](const Accessor&, const Accessor&) { return true; });
  EXPECT_EQ(contents(t), (std::vector<Seg>{{5, 25, 1}}));
}

TEST(Treap, AdjacentIntervalsDoNotMergeAcrossOwners) {
  IntervalTreap t;
  t.insert_writer(0, 9, acc(1), [](auto, auto, const auto&) {});
  t.insert_writer(10, 19, acc(2), [](auto, auto, const auto&) {});
  EXPECT_EQ(contents(t).size(), 2u);
}

TEST(Treap, SingleByteIntervals) {
  IntervalTreap t;
  for (std::uint64_t b = 0; b < 100; b += 2) {
    t.insert_writer(b, b, acc(b + 1), [](auto, auto, const auto&) {});
  }
  EXPECT_EQ(t.size(), 50u);
  t.insert_writer(0, 99, acc(777), [](auto, auto, const auto&) {});
  EXPECT_EQ(contents(t), (std::vector<Seg>{{0, 99, 777}}));
}

TEST(Treap, PropertyWriterMatchesByteModel) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Xoshiro256 rng(seed);
    IntervalTreap t(seed);
    ByteModel m;
    constexpr std::uint64_t kSpan = 2000;
    for (int op = 0; op < 3000; ++op) {
      const std::uint64_t lo = rng.next_below(kSpan);
      const std::uint64_t hi = lo + rng.next_below(64);
      const auto kind = rng.next_below(10);
      if (kind < 7) {
        const std::uint64_t sid = 1 + rng.next_below(1000);
        t.insert_writer(lo, hi, acc(sid), [](auto, auto, const auto&) {});
        m.write(lo, hi, sid);
      } else if (kind < 9) {
        // query must report exactly the model's owned bytes
        std::map<std::uint64_t, std::uint64_t> got;
        t.query(lo, hi,
                [&](std::uint64_t a, std::uint64_t b, const Accessor& who) {
                  for (auto x = a; x <= b; ++x) got[x] = who.sid;
                });
        for (auto x = lo; x <= hi; ++x) {
          const auto it = got.find(x);
          EXPECT_EQ(it == got.end() ? 0 : it->second, m.at(x));
        }
      } else {
        t.erase_range(lo, hi);
        m.erase(lo, hi);
      }
    }
    ASSERT_TRUE(t.check_invariants()) << "seed=" << seed;
    for (std::uint64_t b = 0; b < kSpan + 64; b += 7) {
      ASSERT_EQ(treap_at(t, b), m.at(b)) << "seed=" << seed << " byte=" << b;
    }
  }
}

TEST(Treap, PropertyNoOverlapInvariantUnderChurn) {
  Xoshiro256 rng(99);
  IntervalTreap t;
  for (int op = 0; op < 20000; ++op) {
    const std::uint64_t lo = rng.next_below(1 << 16);
    const std::uint64_t hi = lo + rng.next_below(256);
    if (rng.next_below(4) == 0) {
      t.erase_range(lo, hi);
    } else if (rng.next_below(2) == 0) {
      t.insert_writer(lo, hi, acc(op + 1), [](auto, auto, const auto&) {});
    } else {
      t.insert_reader(lo, hi, acc(op + 1),
                      [&](const Accessor&, const Accessor&) {
                        return rng.next_below(2) == 0;
                      });
    }
    if (op % 2000 == 0) {
      ASSERT_TRUE(t.check_invariants()) << "op=" << op;
    }
  }
  EXPECT_TRUE(t.check_invariants());
}
