// Unit tests for C-RACER's shadow memory (two-level page table of cells).

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "cracer/shadow.hpp"

using namespace pint;
using cracer::ShadowCell;
using cracer::ShadowMemory;

namespace {
constexpr std::uint64_t G = ShadowMemory::kGranuleBytes;
}

TEST(Shadow, ForCellsCoversRangeExactly) {
  ShadowMemory sm;
  int cells = 0;
  sm.for_cells(0, 10 * G - 1, [&](ShadowCell&) { ++cells; });
  EXPECT_EQ(cells, 10);
}

TEST(Shadow, SubGranuleRangeTouchesOneCell) {
  ShadowMemory sm;
  int cells = 0;
  sm.for_cells(3, 5, [&](ShadowCell&) { ++cells; });
  EXPECT_EQ(cells, 1);
}

TEST(Shadow, StraddlingRangeTouchesBothCells) {
  ShadowMemory sm;
  int cells = 0;
  sm.for_cells(G - 1, G, [&](ShadowCell&) { ++cells; });
  EXPECT_EQ(cells, 2);
}

TEST(Shadow, SameAddressSameCell) {
  ShadowMemory sm;
  ShadowCell* first = nullptr;
  sm.for_cells(100, 100, [&](ShadowCell& c) { first = &c; });
  ShadowCell* second = nullptr;
  sm.for_cells(100, 100, [&](ShadowCell& c) { second = &c; });
  EXPECT_EQ(first, second);
}

TEST(Shadow, DistantAddressesDistinctCells) {
  ShadowMemory sm;
  std::set<ShadowCell*> cells;
  for (std::uint64_t a = 0; a < 64; ++a) {
    sm.for_cells(a * (1 << 20), a * (1 << 20), [&](ShadowCell& c) {
      cells.insert(&c);
    });
  }
  EXPECT_EQ(cells.size(), 64u);
  EXPECT_GE(sm.pages_allocated(), 64u);
}

TEST(Shadow, CellStatePersists) {
  ShadowMemory sm;
  sm.for_cells(500, 500, [&](ShadowCell& c) { c.writer.sid = 42; });
  std::uint64_t got = 0;
  sm.for_cells(500, 500, [&](ShadowCell& c) { got = c.writer.sid; });
  EXPECT_EQ(got, 42u);
}

TEST(Shadow, ClearRangeZeroesCells) {
  ShadowMemory sm;
  sm.for_cells(0, 32 * G - 1, [&](ShadowCell& c) {
    c.writer.sid = 1;
    c.lreader.sid = 2;
    c.rreader.sid = 3;
  });
  sm.clear_range(8 * G, 16 * G - 1);
  int live = 0, dead = 0;
  std::uint64_t i = 0;
  sm.for_cells(0, 32 * G - 1, [&](ShadowCell& c) {
    const bool in_cleared = i >= 8 && i < 16;
    if (c.writer.sid == 0 && c.lreader.sid == 0 && c.rreader.sid == 0) {
      ++dead;
      EXPECT_TRUE(in_cleared) << "cell " << i;
    } else {
      ++live;
      EXPECT_FALSE(in_cleared) << "cell " << i;
    }
    ++i;
  });
  EXPECT_EQ(dead, 8);
  EXPECT_EQ(live, 24);
}

TEST(Shadow, ClearRangeOnUnmappedPagesIsCheapNoop) {
  ShadowMemory sm;
  // Gigabytes of never-touched address space: must not allocate pages.
  sm.clear_range(std::uint64_t(1) << 40, (std::uint64_t(1) << 40) + (1 << 30));
  EXPECT_EQ(sm.pages_allocated(), 0u);
}

TEST(Shadow, ConcurrentPageCreationStress) {
  ShadowMemory sm(1 << 10);
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPages = 128;
  std::atomic<int> bad{0};
  std::vector<std::thread> ts;
  std::vector<std::vector<ShadowCell*>> seen(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      for (std::uint64_t p = 0; p < kPages; ++p) {
        sm.for_cells(p * 4096 + 8, p * 4096 + 8, [&](ShadowCell& c) {
          seen[std::size_t(t)].push_back(&c);
        });
      }
    });
  }
  for (auto& th : ts) th.join();
  // Every thread must have resolved each page to the same cell object.
  for (int t = 1; t < kThreads; ++t) {
    if (seen[std::size_t(t)] != seen[0]) bad.fetch_add(1);
  }
  EXPECT_EQ(bad.load(), 0);
  EXPECT_EQ(sm.pages_allocated(), kPages);
}
