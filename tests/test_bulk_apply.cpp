// Equivalence regression for the bulk sorted-run apply (DESIGN.md §10): the
// *_run treap operations and the batched history-lane consumption must be
// invisible to detection results.  Checked at three strengths:
//
//  * treap unit tests: randomized interleaved runs/erases compare the run
//    API against per-interval loops - exact callback/resolver sequences,
//    final contents and invariants - plus targeted edge shapes (segments
//    spanning several run intervals, runs ending at kMaxAddr, the
//    no-cross-interval coalescing rule, the GranuleMap shims);
//  * deterministic detectors (STINT, phased one-core PINT): full race
//    RECORDS are bit-identical with the bulk knob on vs off;
//  * pipelined / sharded PINT: the distinct count always matches and the
//    pair set matches whenever the reporter cap was not hit (same caveat as
//    test_access_path.cpp - sharded mode interleaves the three stores per
//    batch, which moves records() sampling order but never the set).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <tuple>
#include <vector>

#include "common.hpp"
#include "detect/granule_map.hpp"
#include "detect/history.hpp"
#include "kernels/kernels.hpp"
#include "treap/interval_treap.hpp"

using namespace pint;

namespace {

constexpr treap::addr_t kMaxAddr = ~treap::addr_t(0);

struct Iv {
  treap::addr_t lo, hi;
};

treap::Accessor acc(std::uint64_t sid) { return {{}, sid}; }

// Event log entry: op tag, segment bounds, accessor sid.
using Ev = std::tuple<char, std::uint64_t, std::uint64_t, std::uint64_t>;
// Stored interval: (lo, hi, sid).
using Seg = std::tuple<std::uint64_t, std::uint64_t, std::uint64_t>;

std::vector<Seg> contents(const treap::IntervalTreap& t) {
  std::vector<Seg> out;
  t.for_each([&](auto lo, auto hi, const auto& w) {
    out.push_back({lo, hi, w.sid});
  });
  return out;
}

/// Deterministic winner rule shared by both twins of every reader test.
bool resolve_by_sid(const treap::Accessor& prev, const treap::Accessor& a) {
  return ((prev.sid * 31 + a.sid) & 1) == 0;
}

/// A sorted, pairwise-disjoint run (adjacency allowed) - the finalized
/// strand-record shape the run API is specified for.
std::vector<Iv> random_run(Xoshiro256& rng, std::uint64_t span) {
  const std::size_t k = 1 + rng.next_below(8);
  std::vector<Iv> run;
  std::uint64_t lo = rng.next_below(span);
  for (std::size_t j = 0; j < k; ++j) {
    const std::uint64_t len = 1 + rng.next_below(96);
    run.push_back({lo, lo + len - 1});
    lo += len + rng.next_below(3);  // gap 0 = adjacent (still disjoint)
  }
  return run;
}

// ---------------------------------------------------------------------------
// Treap-level equivalence
// ---------------------------------------------------------------------------

TEST(TreapRunApi, RandomizedRunsMatchPerRecordExactly) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    Xoshiro256 rng(seed);
    // Same treap seed: node priorities may still diverge (run apply rebuilds
    // gap nodes, consuming the RNG differently), but contents, callback
    // order and invariants must not.
    treap::IntervalTreap per(seed * 977), run(seed * 977);
    std::vector<Ev> ev_per, ev_run;
    auto log_to = [](std::vector<Ev>& ev, char tag) {
      return [&ev, tag](auto lo, auto hi, const auto& w) {
        ev.push_back({tag, lo, hi, w.sid});
      };
    };
    for (int step = 0; step < 200; ++step) {
      const auto r = random_run(rng, 1 << 14);
      const std::uint64_t sid = 2 + std::uint64_t(step);
      switch (rng.next_below(4)) {
        case 0:  // writer insert
          for (const Iv& iv : r) {
            per.insert_writer(iv.lo, iv.hi, acc(sid), log_to(ev_per, 'w'));
          }
          run.insert_writer_run(r.data(), r.size(), acc(sid),
                                log_to(ev_run, 'w'));
          break;
        case 1:  // reader insert
          for (const Iv& iv : r) {
            per.insert_reader(iv.lo, iv.hi, acc(sid), [&](const auto& p,
                                                          const auto& a) {
              ev_per.push_back({'r', p.sid, a.sid, 0});
              return resolve_by_sid(p, a);
            });
          }
          run.insert_reader_run(r.data(), r.size(), acc(sid),
                                [&](const auto& p, const auto& a) {
                                  ev_run.push_back({'r', p.sid, a.sid, 0});
                                  return resolve_by_sid(p, a);
                                });
          break;
        case 2:  // query
          for (const Iv& iv : r) {
            per.query(iv.lo, iv.hi, log_to(ev_per, 'q'));
          }
          run.query_run(r.data(), r.size(), log_to(ev_run, 'q'));
          break;
        case 3:  // erase
          for (const Iv& iv : r) per.erase_range(iv.lo, iv.hi);
          run.erase_run(r.data(), r.size());
          break;
      }
      ASSERT_EQ(ev_per, ev_run) << "seed=" << seed << " step=" << step;
      if (step % 25 == 0) {
        ASSERT_EQ(contents(per), contents(run))
            << "seed=" << seed << " step=" << step;
        ASSERT_TRUE(run.check_invariants());
        ASSERT_EQ(per.size(), run.size());
      }
    }
    EXPECT_EQ(contents(per), contents(run)) << "seed=" << seed;
    EXPECT_TRUE(per.check_invariants());
    EXPECT_TRUE(run.check_invariants());
  }
}

/// Strided runs: tiny intervals with gaps orders of magnitude wider (the
/// fft butterfly shape).  These take the sparse dispatch in every *_run -
/// the per-interval path instead of the span carve (DESIGN.md §11.3) - and
/// must stay indistinguishable from the per-record twin while the treap's
/// gap coverage (written by interleaved DENSE runs, which stay on the
/// carve) sits inside every sparse span.
TEST(TreapRunApi, SparseStridedRunsMatchPerRecordExactly) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Xoshiro256 rng(seed);
    treap::IntervalTreap per(seed * 1663), run(seed * 1663);
    std::vector<Ev> ev_per, ev_run;
    auto log_to = [](std::vector<Ev>& ev, char tag) {
      return [&ev, tag](auto lo, auto hi, const auto& w) {
        ev.push_back({tag, lo, hi, w.sid});
      };
    };
    auto strided_run = [&]() {
      const std::size_t k = 2 + rng.next_below(31);
      std::vector<Iv> r;
      std::uint64_t lo = rng.next_below(1 << 14);
      for (std::size_t j = 0; j < k; ++j) {
        const std::uint64_t len = 1 + rng.next_below(8);
        r.push_back({lo, lo + len - 1});
        lo += len + 256 + rng.next_below(768);  // gap >> len: sparse
      }
      return r;
    };
    for (int step = 0; step < 150; ++step) {
      const bool sparse = rng.next_below(2) == 0;
      const auto r = sparse ? strided_run() : random_run(rng, 1 << 15);
      const std::uint64_t sid = 2 + std::uint64_t(step);
      switch (rng.next_below(4)) {
        case 0:
          for (const Iv& iv : r) {
            per.insert_writer(iv.lo, iv.hi, acc(sid), log_to(ev_per, 'w'));
          }
          run.insert_writer_run(r.data(), r.size(), acc(sid),
                                log_to(ev_run, 'w'));
          break;
        case 1:
          for (const Iv& iv : r) {
            per.insert_reader(iv.lo, iv.hi, acc(sid),
                              [&](const auto& p, const auto& a) {
                                ev_per.push_back({'r', p.sid, a.sid, 0});
                                return resolve_by_sid(p, a);
                              });
          }
          run.insert_reader_run(r.data(), r.size(), acc(sid),
                                [&](const auto& p, const auto& a) {
                                  ev_run.push_back({'r', p.sid, a.sid, 0});
                                  return resolve_by_sid(p, a);
                                });
          break;
        case 2:
          for (const Iv& iv : r) per.query(iv.lo, iv.hi, log_to(ev_per, 'q'));
          run.query_run(r.data(), r.size(), log_to(ev_run, 'q'));
          break;
        case 3:
          for (const Iv& iv : r) per.erase_range(iv.lo, iv.hi);
          run.erase_run(r.data(), r.size());
          break;
      }
      ASSERT_EQ(ev_per, ev_run) << "seed=" << seed << " step=" << step;
      if (step % 25 == 0) {
        ASSERT_EQ(contents(per), contents(run))
            << "seed=" << seed << " step=" << step;
        ASSERT_TRUE(run.check_invariants());
      }
    }
    EXPECT_EQ(contents(per), contents(run)) << "seed=" << seed;
    EXPECT_TRUE(per.check_invariants());
    EXPECT_TRUE(run.check_invariants());
  }
}

TEST(TreapRunApi, SegmentSpanningSeveralRunIntervalsIsTrimmedPerInterval) {
  treap::IntervalTreap t;
  t.insert_writer(0, 999, acc(1), [](auto, auto, const auto&) {});
  const Iv run[] = {{100, 199}, {300, 399}, {500, 599}};
  std::vector<Ev> ev;
  t.insert_writer_run(run, 3, acc(2), [&](auto lo, auto hi, const auto& w) {
    ev.push_back({'w', lo, hi, w.sid});
  });
  // One stored segment overlapping three run intervals fires once per
  // interval, trimmed to it, in address order.
  const std::vector<Ev> want = {
      {'w', 100, 199, 1}, {'w', 300, 399, 1}, {'w', 500, 599, 1}};
  EXPECT_EQ(ev, want);
  // Gap coverage survives with its original owner; run intervals are owned
  // by the new accessor.
  const std::vector<Seg> got = contents(t);
  const std::vector<Seg> want_c = {{0, 99, 1},    {100, 199, 2}, {200, 299, 1},
                                   {300, 399, 2}, {400, 499, 1}, {500, 599, 2},
                                   {600, 999, 1}};
  EXPECT_EQ(got, want_c);
  EXPECT_TRUE(t.check_invariants());
}

TEST(TreapRunApi, RunsEndingAtMaxAddrMatchPerRecord) {
  const Iv run[] = {{kMaxAddr - 300, kMaxAddr - 201},
                    {kMaxAddr - 100, kMaxAddr}};
  for (const bool reader : {false, true}) {
    treap::IntervalTreap per(5), bulk(5);
    for (treap::IntervalTreap* t : {&per, &bulk}) {
      t->insert_writer(kMaxAddr - 350, kMaxAddr - 250, acc(1),
                       [](auto, auto, const auto&) {});
      t->insert_writer(kMaxAddr - 50, kMaxAddr, acc(1),
                       [](auto, auto, const auto&) {});
    }
    std::vector<Ev> ev_per, ev_run;
    if (reader) {
      for (const Iv& iv : run) {
        per.insert_reader(iv.lo, iv.hi, acc(2), [&](const auto& p,
                                                    const auto& a) {
          ev_per.push_back({'r', p.sid, a.sid, 0});
          return resolve_by_sid(p, a);
        });
      }
      bulk.insert_reader_run(run, 2, acc(2), [&](const auto& p,
                                                 const auto& a) {
        ev_run.push_back({'r', p.sid, a.sid, 0});
        return resolve_by_sid(p, a);
      });
    } else {
      for (const Iv& iv : run) {
        per.insert_writer(iv.lo, iv.hi, acc(2),
                          [&](auto lo, auto hi, const auto& w) {
                            ev_per.push_back({'w', lo, hi, w.sid});
                          });
      }
      bulk.insert_writer_run(run, 2, acc(2),
                             [&](auto lo, auto hi, const auto& w) {
                               ev_run.push_back({'w', lo, hi, w.sid});
                             });
    }
    EXPECT_EQ(ev_per, ev_run) << "reader=" << reader;
    EXPECT_EQ(contents(per), contents(bulk)) << "reader=" << reader;
    EXPECT_TRUE(bulk.check_invariants());
  }
}

// Regression for the hi+1 wrap at kMaxAddr in the per-record reader insert
// (found while deriving the run variant): the tail-gap push must not wrap
// cursor past kMaxAddr and emit a bogus [0, kMaxAddr] piece.
TEST(TreapRunApi, PerRecordReaderInsertAtMaxAddrDoesNotWrap) {
  treap::IntervalTreap t;
  t.insert_reader(kMaxAddr - 7, kMaxAddr, acc(1),
                  [](const auto&, const auto&) { return true; });
  std::vector<Seg> want = {{kMaxAddr - 7, kMaxAddr, 1}};
  EXPECT_EQ(contents(t), want);
  // Now with existing coverage ending exactly at kMaxAddr (the loop-exit
  // case rather than the tail case).
  t.insert_reader(kMaxAddr - 15, kMaxAddr, acc(2),
                  [](const auto&, const auto&) { return false; });
  want = {{kMaxAddr - 15, kMaxAddr - 8, 2}, {kMaxAddr - 7, kMaxAddr, 1}};
  EXPECT_EQ(contents(t), want);
  EXPECT_TRUE(t.check_invariants());
}

TEST(TreapRunApi, ReaderRunNeverCoalescesAcrossIntervalBoundaries) {
  // Adjacent run intervals with the same winner: k separate insert_reader
  // calls leave k nodes (coalescing is per-call), so the run variant must
  // too - this is what keeps final contents bit-identical.
  const Iv run[] = {{0, 63}, {64, 127}, {128, 191}};
  treap::IntervalTreap per(9), bulk(9);
  for (const Iv& iv : run) {
    per.insert_reader(iv.lo, iv.hi, acc(1),
                      [](const auto&, const auto&) { return true; });
  }
  bulk.insert_reader_run(run, 3, acc(1),
                         [](const auto&, const auto&) { return true; });
  EXPECT_EQ(per.size(), 3u);
  EXPECT_EQ(contents(per), contents(bulk));
  // Within one interval coalescing still applies: fragmented prior coverage
  // resolved to one winner collapses to one node either way.
  treap::IntervalTreap frag(11);
  frag.insert_writer(200, 219, acc(2), [](auto, auto, const auto&) {});
  frag.insert_writer(230, 249, acc(3), [](auto, auto, const auto&) {});
  const Iv one[] = {{200, 259}};
  frag.insert_reader_run(one, 1, acc(4),
                         [](const auto&, const auto&) { return true; });
  EXPECT_EQ(contents(frag), (std::vector<Seg>{{200, 259, 4}}));
}

TEST(TreapRunApi, EraseRunPreservesGapCoverage) {
  treap::IntervalTreap t;
  t.insert_writer(0, 999, acc(1), [](auto, auto, const auto&) {});
  const Iv run[] = {{0, 99}, {200, 299}, {900, 999}};
  t.erase_run(run, 3);
  const std::vector<Seg> want = {{100, 199, 1}, {300, 899, 1}};
  EXPECT_EQ(contents(t), want);
  EXPECT_TRUE(t.check_invariants());
}

TEST(GranuleMapRunShims, MatchPerIntervalLoops) {
  Xoshiro256 rng(21);
  detect::GranuleMap per, bulk;
  std::vector<Ev> ev_per, ev_run;
  for (int step = 0; step < 60; ++step) {
    const auto r = random_run(rng, 1 << 12);
    const std::uint64_t sid = 2 + std::uint64_t(step);
    switch (rng.next_below(4)) {
      case 0:
        for (const Iv& iv : r) {
          per.insert_writer(iv.lo, iv.hi, acc(sid),
                            [&](auto lo, auto hi, const auto& w) {
                              ev_per.push_back({'w', lo, hi, w.sid});
                            });
        }
        bulk.insert_writer_run(r.data(), r.size(), acc(sid),
                               [&](auto lo, auto hi, const auto& w) {
                                 ev_run.push_back({'w', lo, hi, w.sid});
                               });
        break;
      case 1:
        for (const Iv& iv : r) {
          per.insert_reader(iv.lo, iv.hi, acc(sid), resolve_by_sid);
        }
        bulk.insert_reader_run(r.data(), r.size(), acc(sid), resolve_by_sid);
        break;
      case 2:
        for (const Iv& iv : r) {
          per.query(iv.lo, iv.hi, [&](auto lo, auto hi, const auto& w) {
            ev_per.push_back({'q', lo, hi, w.sid});
          });
        }
        bulk.query_run(r.data(), r.size(),
                       [&](auto lo, auto hi, const auto& w) {
                         ev_run.push_back({'q', lo, hi, w.sid});
                       });
        break;
      case 3:
        for (const Iv& iv : r) per.erase_range(iv.lo, iv.hi);
        bulk.erase_run(r.data(), r.size());
        break;
    }
    ASSERT_EQ(ev_per, ev_run) << "step=" << step;
    ASSERT_EQ(per.size(), bulk.size()) << "step=" << step;
  }
}

// ---------------------------------------------------------------------------
// Whole-detector equivalence (bulk knob on vs off)
// ---------------------------------------------------------------------------

// RAII: tests flip the global bulk-apply knob; never leak the setting.
struct BulkGuard {
  bool saved = detect::bulk_apply();
  ~BulkGuard() { detect::set_bulk_apply(saved); }
};

// Full record: (prev_sid, cur_sid, prev_write, cur_write, lo, hi).
using FullRecord = std::tuple<std::uint64_t, std::uint64_t, int, int,
                              std::uint64_t, std::uint64_t>;
using PairKey = std::tuple<std::uint64_t, std::uint64_t, int, int>;

enum class Sys { kStint, kStintMap, kPintSeq, kPint1, kShard3 };

struct RunOut {
  std::vector<FullRecord> rebased;  // sorted, addresses rebased to run min
  std::vector<PairKey> pairs;       // sorted + deduped
  std::uint64_t distinct = 0;
  std::uint64_t dropped = 0;
  detect::Stats::Snapshot stats{};
};

RunOut summarize(const detect::RaceReporter& rep, const detect::Stats& stats) {
  RunOut out;
  std::uint64_t min_lo = ~std::uint64_t(0);
  std::vector<FullRecord> full;
  for (const detect::RaceRecord& r : rep.records()) {
    full.push_back(
        {r.prev_sid, r.cur_sid, r.prev_write, r.cur_write, r.lo, r.hi});
    min_lo = std::min(min_lo, r.lo);
    std::uint64_t a = r.prev_sid, b = r.cur_sid;
    int aw = r.prev_write, bw = r.cur_write;
    if (a > b) {
      std::swap(a, b);
      std::swap(aw, bw);
    }
    out.pairs.push_back({a, b, aw, bw});
  }
  std::sort(full.begin(), full.end());
  out.rebased = std::move(full);
  for (auto& [ps, cs, pw, cw, lo, hi] : out.rebased) {
    lo -= min_lo;
    hi -= min_lo;
  }
  std::sort(out.pairs.begin(), out.pairs.end());
  out.pairs.erase(std::unique(out.pairs.begin(), out.pairs.end()),
                  out.pairs.end());
  out.distinct = rep.distinct_races();
  out.dropped = rep.dropped_records();
  out.stats = stats.snapshot();
  return out;
}

RunOut run_config(Sys sys, bool bulk, const std::function<void()>& body,
                  bool coalesce = true, std::uint64_t seed = 7) {
  BulkGuard g;
  detect::set_bulk_apply(bulk);
  if (sys == Sys::kStint || sys == Sys::kStintMap) {
    stint::StintDetector::Options o;
    o.seed = seed;
    o.coalesce = coalesce;
    if (sys == Sys::kStintMap) o.history = detect::HistoryKind::kGranuleMap;
    stint::StintDetector det(o);
    det.run(body);
    return summarize(det.reporter(), det.stats());
  }
  pintd::PintDetector::Options o;
  o.seed = seed;
  o.coalesce = coalesce;
  o.parallel_history = sys != Sys::kPintSeq;
  // One core worker always: with 2+, work stealing makes strand ids
  // nondeterministic and the pair sets incomparable across runs.  The
  // bulk-sensitive machinery under test (history lanes / shard workers)
  // is fully parallel regardless.
  o.core_workers = 1;
  if (sys == Sys::kShard3) o.history_shards = 3;
  pintd::PintDetector det(o);
  det.run(body);
  return summarize(det.reporter(), det.stats());
}

class KernelBulkApply : public ::testing::TestWithParam<std::string> {};

TEST_P(KernelBulkApply, BulkIsBitIdenticalOnDeterministicDetectors) {
  kernels::KernelConfig cfg;
  cfg.scale = 0.1;
  cfg.seeded_race = true;  // non-trivial race sets to compare
  for (Sys sys : {Sys::kStint, Sys::kStintMap, Sys::kPintSeq}) {
    auto fresh = [&] {
      auto k = kernels::make_kernel(GetParam(), cfg);
      k->prepare();
      return k;
    };
    auto kb = fresh();
    const RunOut on = run_config(sys, true, [&] { kb->run(); });
    auto kp = fresh();
    const RunOut off = run_config(sys, false, [&] { kp->run(); });
    EXPECT_EQ(on.rebased, off.rebased)
        << "bulk on/off records diverge, sys=" << int(sys);
    EXPECT_EQ(on.distinct, off.distinct);
    // The route split must be total: runs counted with the knob on, none
    // with it off, and the interval totals must cover at least the runs.
    EXPECT_GT(on.stats.bulk_runs, 0u) << "sys=" << int(sys);
    EXPECT_GE(on.stats.bulk_run_intervals, on.stats.bulk_runs);
    EXPECT_EQ(off.stats.bulk_runs, 0u);
  }
}

TEST_P(KernelBulkApply, PipelinedAndShardedAgreeOnTheVerdict) {
  kernels::KernelConfig cfg;
  cfg.scale = 0.1;
  cfg.seeded_race = true;
  for (Sys sys : {Sys::kPint1, Sys::kShard3}) {
    auto fresh = [&] {
      auto k = kernels::make_kernel(GetParam(), cfg);
      k->prepare();
      return k;
    };
    auto kb = fresh();
    const RunOut on = run_config(sys, true, [&] { kb->run(); });
    auto kp = fresh();
    const RunOut off = run_config(sys, false, [&] { kp->run(); });
    EXPECT_EQ(on.distinct, off.distinct) << "sys=" << int(sys);
    if (on.dropped == 0 && off.dropped == 0) {
      EXPECT_EQ(on.pairs, off.pairs) << "sys=" << int(sys);
    }
  }
}

TEST_P(KernelBulkApply, RaceFreeKernelStaysRaceFreeUnderBulk) {
  kernels::KernelConfig cfg;
  cfg.scale = 0.1;
  auto k = kernels::make_kernel(GetParam(), cfg);
  k->prepare();
  const RunOut out = run_config(Sys::kShard3, true, [&] { k->run(); });
  EXPECT_EQ(out.distinct, 0u) << "bulk apply introduced a false race";
  EXPECT_TRUE(k->verify());
}

INSTANTIATE_TEST_SUITE_P(All, KernelBulkApply,
                         ::testing::ValuesIn(kernels::kernel_names()),
                         [](const auto& info) { return info.param; });

// Random series-parallel programs: denser spawn/sync structure and irregular
// interval lists (single-interval and empty records mixed with long runs).
TEST(RandomProgramBulkApply, BulkOnOffAgreeAndMatchTheOracle) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    test::ProgramConfig pc;
    auto prog = test::ProgramGen(seed, pc).generate();
    std::vector<unsigned char> pool(test::program_pool_bytes(pc), 0);
    unsigned char* base = pool.data();
    const test::PNode* p = prog.get();
    const auto body = [p, base] { test::exec_node(*p, base); };

    // Same pool every run: records compare at absolute addresses, so the
    // rebase is the identity and the comparison is fully bit-exact.
    const RunOut on = run_config(Sys::kStint, true, body);
    const RunOut off = run_config(Sys::kStint, false, body);
    EXPECT_EQ(on.rebased, off.rebased) << "seed=" << seed;
    EXPECT_EQ(on.distinct, off.distinct) << "seed=" << seed;
    // Coalescing off leaves raw (non-canonical) buffers: the run API must
    // gate itself off and still agree with the per-record path.
    const RunOut raw_on = run_config(Sys::kStint, true, body, false);
    const RunOut raw_off = run_config(Sys::kStint, false, body, false);
    EXPECT_EQ(raw_on.rebased, raw_off.rebased) << "seed=" << seed;
    EXPECT_EQ(on.distinct > 0,
              test::oracle_any_race(*p, test::program_pool_bytes(pc)))
        << "seed=" << seed;
  }
}

TEST(BulkKnob, DefaultsOnAndGuardsRestore) {
  EXPECT_TRUE(detect::bulk_apply());  // paper-faithful default
  {
    BulkGuard g;
    detect::set_bulk_apply(false);
    EXPECT_FALSE(detect::bulk_apply());
  }
  EXPECT_TRUE(detect::bulk_apply());
}

}  // namespace
