#pragma once

// STINT baseline (Xu et al., ALENEX'22): the *sequential* interval-based
// race detector PINT parallelizes.
//
// STINT executes the task-parallel program on one worker (the serial
// elision order), coalesces each strand's accesses into intervals with the
// same mechanism PINT uses, and maintains a synchronous two-treap access
// history: one last-writer treap and one reader treap holding the single
// relevant reader per interval (the Feng-Leiserson serial rule: a new
// reader replaces the stored one only when the stored one precedes it).
//
// Everything - race checks, inserts, stack clearing, heap frees - happens
// inline at the end of each strand, on the single execution thread.

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "detect/detector.hpp"
#include "detect/history.hpp"
#include "detect/report.hpp"
#include "detect/run_result.hpp"
#include "detect/stats.hpp"
#include "detect/strand.hpp"
#include "detect/tiered_history.hpp"
#include "reach/engine.hpp"
#include "runtime/scheduler.hpp"
#include "support/timer.hpp"
#include "treap/interval_treap.hpp"

namespace pint::stint {

class StintDetector final : public detect::Detector,
                            public detect::DetectorRunner,
                            public rt::SchedulerHooks {
 public:
  /// All knobs are the shared ones (`history` selects the STINT treap vs the
  /// per-granule hashmap ablation).
  struct Options : detect::CommonOptions {};

  StintDetector() : StintDetector(Options{}) {}
  explicit StintDetector(const Options& opt);
  ~StintDetector() override;

  /// Executes fn() sequentially under race detection. Single-use.  The
  /// synchronous design cannot degrade: the result is always kOk.
  detect::RunResult run(std::function<void()> fn) override;

  detect::RaceReporter& reporter() override { return rep_; }
  const detect::Stats& stats() const override { return stats_; }

  // --- detect::Detector ---
  void on_access(rt::Worker& w, rt::TaskFrame& f, detect::addr_t lo,
                 detect::addr_t hi, bool is_write) override;
  void on_heap_free(rt::Worker& w, rt::TaskFrame& f, void* base,
                    detect::addr_t lo, detect::addr_t hi) override;
  void on_lock_acquire(rt::Worker& w, rt::TaskFrame& f,
                       detect::addr_t lock) override;
  void on_lock_release(rt::Worker& w, rt::TaskFrame& f,
                       detect::addr_t lock) override;
  const char* name() const override { return "STINT"; }

  // --- rt::SchedulerHooks ---
  void on_root_start(rt::Worker& w, rt::TaskFrame& f) override;
  void on_root_end(rt::Worker& w, rt::TaskFrame& f) override;
  void on_spawn(rt::Worker& w, rt::TaskFrame& parent, rt::SyncBlock& blk,
                rt::TaskFrame& child) override;
  void on_spawn_return(rt::Worker& w, rt::TaskFrame& child,
                       bool continuation_stolen) override;
  void on_continuation(rt::Worker& w, rt::TaskFrame& parent, bool stolen) override;
  void on_sync(rt::Worker& w, rt::TaskFrame& f, rt::SyncBlock& blk,
               bool trivial) override;
  void on_after_sync(rt::Worker& w, rt::TaskFrame& f, rt::SyncBlock& blk,
                     bool trivial) override;

 private:
  detect::Strand* alloc_strand();
  void recycle_strand(detect::Strand* s);
  /// Synchronous end-of-strand processing: check + insert + clear, then
  /// recycle the record.  Drains the execution thread's AccessCursor first
  /// (process_strand is only ever called on the current strand).
  void process_strand(detect::Strand* s);
  void seal_strand(detect::Strand* s);
  void cursor_flush();
  /// Lockset change: seal the running segment, continue under the same
  /// label with the new lockset id (DESIGN.md §12).
  void on_lock_event(rt::TaskFrame& f, detect::addr_t lock, bool acquire);

  Options opt_;
  reach::Engine reach_;
  detect::RaceReporter rep_;
  detect::Stats stats_;
  detect::TieredHistory writer_treap_;
  detect::TieredHistory reader_treap_;
  detect::GranuleMap writer_map_;
  detect::GranuleMap reader_map_;
  // precedes() memo - everything is single-threaded here, so one cache is
  // shared by the writer and reader phases: a strand pair judged while
  // walking the writer treap is served from cache again in the reader walk
  // (strands that both wrote and read a region sit in both stores).
  reach::Engine::Memo memo_;

  detect::Strand* free_list_ = nullptr;
  std::vector<detect::Strand*> owned_;
  std::uint64_t next_sid_ = 0;
  std::uint64_t raw_reads_ = 0, raw_writes_ = 0;
  std::uint64_t read_intervals_ = 0, write_intervals_ = 0;
  std::uint64_t strands_ = 0;
  std::uint64_t fast_accesses_ = 0, fast_hits_ = 0, slow_accesses_ = 0;
  std::uint64_t cursor_spills_ = 0, policy_switches_ = 0, policy_bypass_ = 0;
  std::uint64_t tail_hits_ = 0, tail_misses_ = 0;
  std::uint64_t fin_sorted_ = 0, fin_simd_ = 0;
  StopwatchAccum writer_watch_, reader_watch_;
  bool used_ = false;
};

}  // namespace pint::stint
