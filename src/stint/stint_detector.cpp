#include "stint/stint_detector.hpp"

#include <cstdlib>
#include <memory>

#include "detect/instrument.hpp"
#include "support/arena.hpp"
#include "support/rng.hpp"
#include "support/telemetry.hpp"

namespace pint::stint {

using detect::Strand;

StintDetector::StintDetector(const Options& opt)
    : opt_(opt),
      writer_treap_(opt.seed * 2 + 1, opt.tuning.tier),
      reader_treap_(opt.seed * 2 + 2, opt.tuning.tier) {
  rep_.set_verbose(opt_.verbose_races);
}

StintDetector::~StintDetector() {
  // Arena retirement (DESIGN.md §13): the whole owned set goes back to the
  // process-wide recycler in one hand-off; with the knob off give_all
  // destroys them, matching the old per-object delete.
  std::vector<std::unique_ptr<Strand>> batch;
  batch.reserve(owned_.size());
  for (Strand* s : owned_) batch.emplace_back(s);
  support::Recycler<Strand>::instance().give_all(&batch);
}

Strand* StintDetector::alloc_strand() {
  Strand* s = free_list_;
  if (s != nullptr) {
    free_list_ = s->pool_next;
  } else if (auto rec = support::Recycler<Strand>::instance().take()) {
    s = rec.release();
    owned_.push_back(s);
  } else {
    support::note_arena_fresh();
    s = new Strand();
    owned_.push_back(s);
  }
  s->reset(++next_sid_);
  ++strands_;
  return s;
}

void StintDetector::recycle_strand(Strand* s) {
  s->pool_next = free_list_;
  free_list_ = s;
}

void StintDetector::seal_strand(Strand* s) {
  s->reads.finalize(opt_.coalesce);
  s->writes.finalize(opt_.coalesce);
  read_intervals_ += s->reads.items().size();
  write_intervals_ += s->writes.items().size();
  tail_hits_ += s->reads.tail_hits() + s->writes.tail_hits();
  tail_misses_ += s->reads.tail_misses() + s->writes.tail_misses();
  fin_sorted_ += (s->reads.fin_path() == detect::FinalizePath::kSorted) +
                 (s->writes.fin_path() == detect::FinalizePath::kSorted);
  fin_simd_ += (s->reads.fin_path() == detect::FinalizePath::kSimd) +
               (s->writes.fin_path() == detect::FinalizePath::kSimd);
}

void StintDetector::cursor_flush() {
  const detect::CursorFlush fl = detect::cursor_invalidate();
  raw_reads_ += fl.raw_reads;
  raw_writes_ += fl.raw_writes;
  fast_accesses_ += fl.raw_reads + fl.raw_writes;
  fast_hits_ += fl.hits;
  cursor_spills_ += fl.spills;
  policy_switches_ += fl.policy_switches;
  policy_bypass_ += fl.bypassed;
}

void StintDetector::process_strand(Strand* s) {
  cursor_flush();  // pending cursor intervals land in s before the seal
  seal_strand(s);
  // Empty-strand skip (DESIGN.md §13): no accesses, clears or frees means
  // the history phases would be no-ops - skip their stopwatch reads and
  // spans entirely.
  if (!s->has_work()) {
    stats_.empty_strand_skips.fetch_add(1, std::memory_order_relaxed);
    recycle_strand(s);
    return;
  }
  reach::Engine::Memo* memo = opt_.tuning.memo ? &memo_ : nullptr;
  // STINT's history runs inline on the execution thread; the two spans make
  // its writer/reader phases comparable with PINT's asynchronous tracks.
  writer_watch_.start();
  {
    // Span nested inside the watch so the CPU-clock reads stay out of it
    // (same reasoning as PintDetector::process_writer).
    PINT_TSPAN("stint.writer");
    if (opt_.history == detect::HistoryKind::kTreap) {
      detect::process_writer_treap(writer_treap_, *s, reach_, rep_, stats_,
                                   memo);
    } else {
      detect::process_writer_treap(writer_map_, *s, reach_, rep_, stats_,
                                   memo);
    }
  }
  writer_watch_.stop();
  reader_watch_.start();
  {
    PINT_TSPAN("stint.reader");
    if (opt_.history == detect::HistoryKind::kTreap) {
      detect::process_reader_treap(reader_treap_, *s, reach_, rep_, stats_,
                                   detect::ReaderSide::kSerial, memo);
    } else {
      detect::process_reader_treap(reader_map_, *s, reach_, rep_, stats_,
                                   detect::ReaderSide::kSerial, memo);
    }
  }
  reader_watch_.stop();
  recycle_strand(s);
}

// --- lock events (DESIGN.md §12) ---------------------------------------

void StintDetector::on_lock_event(rt::TaskFrame& f, detect::addr_t lock,
                                  bool acquire) {
  auto* u = static_cast<Strand*>(f.det_strand);
  PINT_ASSERT(u != nullptr);
  auto& tbl = detect::LocksetTable::instance();
  const detect::lockset_t nid =
      acquire ? tbl.acquire(u->lsid, lock) : tbl.release(u->lsid, lock);
  if (nid == u->lsid) return;  // recursive acquire / unmatched release
  cursor_flush();
  if (!u->has_work()) {
    // Nothing recorded under the old lockset: relabel the segment in place.
    u->lsid = nid;
    detect::cursor_install(&u->reads, &u->writes, opt_.coalesce);
    return;
  }
  // Seal the segment recorded under the old lockset and continue at the
  // same DAG position: the successor keeps u's label (equal labels are
  // ordered by neither order, so sibling segments can never race with each
  // other) under a fresh sid + the new lockset id.
  Strand* v = alloc_strand();
  v->label = u->label;
  v->tag = u->tag;
  v->lsid = nid;
  f.det_strand = v;
  process_strand(u);
  detect::cursor_install(&v->reads, &v->writes, opt_.coalesce);
}

void StintDetector::on_lock_acquire(rt::Worker&, rt::TaskFrame& f,
                                    detect::addr_t lock) {
  if (!opt_.tuning.lock_edges) return;
  on_lock_event(f, lock, true);
}

void StintDetector::on_lock_release(rt::Worker&, rt::TaskFrame& f,
                                    detect::addr_t lock) {
  if (!opt_.tuning.lock_edges) return;
  on_lock_event(f, lock, false);
}

// --- memory events -----------------------------------------------------

void StintDetector::on_access(rt::Worker&, rt::TaskFrame& f, detect::addr_t lo,
                              detect::addr_t hi, bool is_write) {
  // Classic route: only taken when the AccessCursor fast path is disabled.
  auto* s = static_cast<Strand*>(f.det_strand);
  PINT_ASSERT(s != nullptr);
  ++slow_accesses_;
  if (is_write) {
    ++raw_writes_;
    if (opt_.coalesce) {
      s->writes.add(lo, hi);
    } else {
      s->writes.add_raw(lo, hi);
    }
  } else {
    ++raw_reads_;
    if (opt_.coalesce) {
      s->reads.add(lo, hi);
    } else {
      s->reads.add_raw(lo, hi);
    }
  }
}

void StintDetector::on_heap_free(rt::Worker&, rt::TaskFrame& f, void* base,
                                 detect::addr_t lo, detect::addr_t hi) {
  // Synchronous detector: the memory may be handed back to the allocator at
  // once - any strand that reuses it is processed after this strand (serial
  // order), by which point the range below has been erased.
  std::free(base);
  auto* s = static_cast<Strand*>(f.det_strand);
  s->frees.push_back({nullptr, lo, hi});
}

// --- control events (serial execution: nothing is ever stolen) ---------

void StintDetector::on_root_start(rt::Worker&, rt::TaskFrame& f) {
  Strand* r = alloc_strand();
  r->label = reach_.root_label();
  r->tag = f.task_name;
  f.det_strand = r;
  detect::cursor_install(&r->reads, &r->writes, opt_.coalesce);
}

void StintDetector::on_root_end(rt::Worker&, rt::TaskFrame& f) {
  auto* u = static_cast<Strand*>(f.det_strand);
  u->clears.push_back({f.fiber->stack_lo(), f.fiber->stack_hi() - 1});
  process_strand(u);
  f.det_strand = nullptr;
}

void StintDetector::on_spawn(rt::Worker&, rt::TaskFrame& parent,
                             rt::SyncBlock& blk, rt::TaskFrame& child) {
  auto* u = static_cast<Strand*>(parent.det_strand);
  auto* j = static_cast<Strand*>(blk.det_sync);
  if (j == nullptr) {
    j = alloc_strand();
    blk.det_sync = j;
  }
  if (j->tag == nullptr) j->tag = parent.task_name;
  const auto labels = reach_.on_spawn(u->label, &j->label);
  Strand* g = alloc_strand();
  g->label = labels.child;
  g->tag = child.task_name;
  Strand* t = alloc_strand();
  t->label = labels.cont;
  t->tag = parent.task_name;
  // The continuation still holds whatever the parent held at the spawn; the
  // child starts with an empty lockset (it may run on another worker that
  // does NOT hold the parent's mutexes - inheriting would hide real races).
  t->lsid = u->lsid;
  child.det_strand = g;
  parent.det_cont = t;
  process_strand(u);
  // The spawned child runs next (serial elision order).
  detect::cursor_install(&g->reads, &g->writes, opt_.coalesce);
}

void StintDetector::on_spawn_return(rt::Worker&, rt::TaskFrame& child,
                                    bool continuation_stolen) {
  PINT_CHECK_MSG(!continuation_stolen, "STINT must run on one worker");
  auto* u = static_cast<Strand*>(child.det_strand);
  u->clears.push_back({child.fiber->stack_lo(), child.fiber->stack_hi() - 1});
  process_strand(u);
  child.det_strand = nullptr;
}

void StintDetector::on_continuation(rt::Worker&, rt::TaskFrame& parent,
                                    bool stolen) {
  PINT_CHECK_MSG(!stolen, "STINT must run on one worker");
  auto* t = static_cast<Strand*>(parent.det_cont);
  parent.det_strand = t;
  parent.det_cont = nullptr;
  detect::cursor_install(&t->reads, &t->writes, opt_.coalesce);
}

void StintDetector::on_sync(rt::Worker&, rt::TaskFrame& f, rt::SyncBlock& blk,
                            bool trivial) {
  PINT_CHECK_MSG(trivial, "STINT must run on one worker");
  if (blk.det_sync == nullptr) return;  // no spawn since the last sync
  auto* u = static_cast<Strand*>(f.det_strand);
  // Join maintenance for the reachability engine (no-op for both current
  // backends; seam contract).  Here rather than on_after_sync because this
  // detector retires the joining strand record below.
  reach_.on_join(u->label, static_cast<Strand*>(blk.det_sync)->label);
  process_strand(u);
  f.det_strand = nullptr;
}

void StintDetector::on_after_sync(rt::Worker&, rt::TaskFrame& f,
                                  rt::SyncBlock& blk, bool) {
  auto* j = static_cast<Strand*>(blk.det_sync);
  if (j == nullptr) return;  // cursor of the continuing strand stays live
  f.det_strand = j;
  blk.det_sync = nullptr;
  detect::cursor_install(&j->reads, &j->writes, opt_.coalesce);
}

// --- run ----------------------------------------------------------------

detect::RunResult StintDetector::run(std::function<void()> fn) {
  PINT_CHECK_MSG(!used_, "StintDetector instances are single-use");
  used_ = true;
  opt_.tuning.apply_globals();

  rt::Scheduler::Options so;
  so.workers = 1;  // STINT executes the computation sequentially
  so.hooks = this;
  so.stack_bytes = opt_.stack_bytes;
  so.seed = opt_.seed;
  rt::Scheduler sched(so);

  detect::set_active_detector(this);
  const support::ArenaCounters arena0 = support::arena_counters();
  Timer total;
  sched.run([&] { fn(); });
  stats_.total_ns.store(total.elapsed_ns());
  detect::set_active_detector(nullptr);

  stats_.raw_reads.store(raw_reads_);
  stats_.raw_writes.store(raw_writes_);
  stats_.read_intervals.store(read_intervals_);
  stats_.write_intervals.store(write_intervals_);
  stats_.strands.store(strands_);
  stats_.fastpath_accesses.store(fast_accesses_);
  stats_.fastpath_hits.store(fast_hits_);
  stats_.cursor_spills.store(cursor_spills_);
  stats_.policy_switches.store(policy_switches_);
  stats_.policy_bypass.store(policy_bypass_);
  stats_.slowpath_accesses.store(slow_accesses_);
  const std::uint64_t mq = memo_.queries;
  const std::uint64_t mh = memo_.hits;
  stats_.memo_queries.store(mq);
  stats_.memo_hits.store(mh);
  stats_.tail_probe_hits.store(tail_hits_);
  stats_.tail_probe_misses.store(tail_misses_);
  stats_.finalize_sorted_skips.store(fin_sorted_);
  stats_.finalize_simd.store(fin_simd_);
  // Arena counters are process-wide monotonic; attribute this run's delta.
  const support::ArenaCounters arena1 = support::arena_counters();
  stats_.arena_reuses.store(arena1.reuses - arena0.reuses);
  stats_.arena_fresh.store(arena1.fresh - arena0.fresh);
  stats_.tier_compactions.store(writer_treap_.compactions() +
                                reader_treap_.compactions());
  stats_.tier_cold_hits.store(writer_treap_.cold_hits() +
                              reader_treap_.cold_hits());
  telem::count("access.tail.hits", tail_hits_);
  telem::count("access.tail.misses", tail_misses_);
  telem::count("access.finalize.sorted", fin_sorted_);
  telem::count("access.finalize.simd", fin_simd_);
  telem::count("access.fastpath.total", fast_accesses_);
  telem::count("access.fastpath.hits", fast_hits_);
  telem::count("access.fastpath.spills", cursor_spills_);
  telem::count("access.policy.switches", policy_switches_);
  telem::count("access.policy.bypass", policy_bypass_);
  telem::count("access.slowpath.total", slow_accesses_);
  telem::count("reach.memo.queries", mq);
  telem::count("reach.memo.hits", mh);
  // Bulk-run counters accumulate live in process_strand (fetch_add, never
  // overwritten here); STINT has no consumer lanes, so only these two.
  telem::count("history.bulk.runs",
               stats_.bulk_runs.load(std::memory_order_relaxed));
  telem::count("history.bulk.intervals",
               stats_.bulk_run_intervals.load(std::memory_order_relaxed));
  stats_.writer_ns.store(writer_watch_.total_ns());
  stats_.lreader_ns.store(reader_watch_.total_ns());
  stats_.core_ns.store(total.elapsed_ns() - writer_watch_.total_ns() -
                       reader_watch_.total_ns());
  return {};
}

}  // namespace pint::stint
