#pragma once

// SP-order reachability for series-parallel DAGs (the WSP-Order component).
//
// Each strand carries a Label = one position in the "English" order and one
// in the "Hebrew" order (Bender et al. SPAA'04; parallelized as in WSP-Order,
// Utterback et al. SPAA'16).  For two distinct strands u, v:
//
//     u ~> v (series)  <=>  u precedes v in BOTH orders
//     u  ||  v         <=>  the two orders disagree
//
// Maintenance at a spawn of strand u (child c, continuation t):
//     English:  ... u, c, t ...      (child first)
//     Hebrew:   ... u, t, c ...      (continuation first)
//
// The sync node j of a sync block is positioned at the FIRST spawn of the
// block: English right after t, Hebrew right after c.  Every later insertion
// belonging to the block lands strictly inside the (u, j) window of both
// orders, so j ends up in series with the entire block - this is how the
// detector knows the label of the strand that follows the sync before the
// sync is reached.
//
// All operations are thread-safe; precedes() is lock-free (see om::List).

#include <cstdint>
#include <vector>

#include "om/order_maintenance.hpp"

namespace pint::reach {

/// A strand's position in the two total orders. Labels are immutable once
/// published and live for the entire detection run (treaps keep them after
/// the strand record is recycled).
struct Label {
  om::Item* eng = nullptr;
  om::Item* heb = nullptr;
  bool valid() const { return eng != nullptr; }
};

/// Both order verdicts for an ordered label pair (u, v).  One Relation
/// answers every predicate the history lanes ask: series (eng && heb),
/// parallel (eng != heb), and English-order left_of (eng) - and because the
/// two orders are strict total orders over distinct items, the reversed pair
/// is just the negation of both bits.
struct Relation {
  bool eng = false;  // u before v in the English order
  bool heb = false;  // u before v in the Hebrew order
};

/// Bump-tolerant pair memo for SpOrderEngine::relation().  One cache per history
/// worker - strictly single-threaded, like the treap it sits next to.
///
/// Caches (label pair -> Relation) like the PR 4 memo, but validity is keyed
/// on per-sublist version deltas instead of the global `om::List` seqlock
/// epoch (which any structural mutation anywhere wiped wholesale).  At fill
/// time an entry records the four `om::Group`s the pair's items sat in (one
/// per item per order) and the SUM of their `om::Group::version` counters:
///
///     valid(e)  <=>  sum of e.g[i]->version  ==  e.vsum
///
/// Group versions are monotone non-decreasing and bumped on every mutation
/// that rewrites that sublist's coordinates (subtag redistribution, the kept
/// half of a split, every group on a top-level relabel), so an unchanged sum
/// means none of the four sublists was touched - and because a split bumps
/// the group it migrates items OUT of, it also means neither item moved to a
/// different group.  The relative order of two untouched items is exactly
/// what OM maintenance preserves, so the cached verdict is still correct.  A
/// split or relabel of an *unrelated* sublist changes no term of the sum -
/// the "bump tolerance" the heat kernel needs, where the PR 4 global epoch
/// sat at a 0.12 hit rate.
///
/// Cost model (the reason this caches verdicts, not coordinates): a hit
/// touches one direct-mapped table line plus four Group version counters -
/// groups are shared by ~64 labels each, so those lines stay hot - and
/// never dereferences the items.  Validation happens inside an even-stable
/// window of both lists' seqlocks (free on TSO; the window only establishes
/// that the four version reads are mutually coherent, it does NOT key
/// validity).  A miss re-reads the pair's coordinates inside the same
/// window - no dearer than the direct un-memoized query - and commits the
/// entry only after the window recheck passes, so a torn read can never
/// enter the table.
class MemoCache {
 public:
  // 16K direct-mapped 64-byte entries (1 MiB).  Sized from the measured
  // miss decomposition on the bench kernels: at 2K slots conflict evictions
  // cost heat ~0.22 of hit rate; 16K sits within ~0.01 of the
  // infinite-table (compulsory-miss-only) ceiling.
  static constexpr std::size_t kSlots = std::size_t(1) << 14;

  MemoCache() : entries_(kSlots) {}

  void clear() {
    entries_.assign(kSlots, Entry{});
    hits = queries = fills = 0;
  }

  /// Test-only: is this ordered pair's entry present and still valid (i.e.
  /// would the next relation(u, v) be served from the cache)?
  bool cached(const om::Item* ueng, const om::Item* veng) const {
    const Entry& e = entries_[slot_of(ueng, veng)];
    if (e.u != ueng || e.v != veng) return false;
    std::uint64_t sum = 0;
    for (const om::Group* g : e.g) sum += g->version.load(std::memory_order_relaxed);
    return sum == e.vsum;
  }

  // Hit-rate counters, flushed into detect::Stats at run end.  A query is a
  // hit when the pair's cached verdict was served without re-reading any
  // coordinate; `fills` counts pair entries (re)computed.
  std::uint64_t hits = 0;
  std::uint64_t queries = 0;
  std::uint64_t fills = 0;

 private:
  friend class SpOrderEngine;
  struct alignas(64) Entry {  // exactly one cache line per probe
    const om::Item* u = nullptr;  // key: the pair's English items
    const om::Item* v = nullptr;
    // Groups of u.eng, v.eng, u.heb, v.heb at fill time, and the sum of
    // their version counters.  Groups are arena-allocated and never freed
    // during a run, so stale pointers stay safely dereferenceable.
    const om::Group* g[4] = {nullptr, nullptr, nullptr, nullptr};
    std::uint64_t vsum = 0;
    Relation rel;
  };

  static std::size_t slot_of(const om::Item* u, const om::Item* v) {
    const auto a = std::uint64_t(reinterpret_cast<std::uintptr_t>(u));
    const auto b = std::uint64_t(reinterpret_cast<std::uintptr_t>(v));
    const std::uint64_t h = (a >> 4) * 0x9e3779b97f4a7c15ULL +
                            (b >> 4) * 0xc2b2ae3d27d4eb4fULL;
    return std::size_t(h >> 32) & (kSlots - 1);
  }

  std::vector<Entry> entries_;
};

/// The SP-order (fork-join) happens-before backend.  Consumers name it
/// through the `reach::Engine` alias selected in reach/engine.hpp; the
/// nested aliases below are the concept's required surface.
class SpOrderEngine {
 public:
  using Label = reach::Label;
  using Relation = reach::Relation;
  using Memo = MemoCache;

  static constexpr const char* kName = "sporder";

  SpOrderEngine() = default;
  SpOrderEngine(const SpOrderEngine&) = delete;
  SpOrderEngine& operator=(const SpOrderEngine&) = delete;

  /// Label of the initial strand (the whole computation's first strand).
  Label root_label() { return {eng_.base(), heb_.base()}; }

  struct SpawnLabels {
    Label child;  // first strand of the spawned function
    Label cont;   // continuation strand of the parent
  };

  /// Called when strand `u` executes a spawn. If `*sync_node` is invalid
  /// this spawn opens a new sync block and the sync node's label is created
  /// and stored there.
  SpawnLabels on_spawn(const Label& u, Label* sync_node) {
    SpawnLabels out;
    out.child.eng = eng_.insert_after(u.eng);
    out.cont.eng = eng_.insert_after(out.child.eng);
    out.cont.heb = heb_.insert_after(u.heb);
    out.child.heb = heb_.insert_after(out.cont.heb);
    if (!sync_node->valid()) {
      sync_node->eng = eng_.insert_after(out.cont.eng);
      sync_node->heb = heb_.insert_after(out.child.heb);
    }
    return out;
  }

  /// Maintenance hooks an order-per-worker backend (DePa) needs; SP-order
  /// labels encode reachability globally, so both are no-ops here.
  void on_steal(const Label&) {}
  void on_join(const Label&, const Label&) {}

  /// Both order verdicts for (u, v), optionally memoized.  With a memo the
  /// pair's cached verdict is served when its four sublists are untouched
  /// (see MemoCache); a miss recomputes from the raw coordinates and
  /// refills.  A null memo degrades to the two direct seqlock queries.
  /// Either route computes the same strict-total-order answer - the memo
  /// can change cost, never a verdict.
  Relation relation(const Label& u, const Label& v, MemoCache* memo) const {
    if (memo == nullptr) {
      return {eng_.precedes(u.eng, v.eng), heb_.precedes(u.heb, v.heb)};
    }
    ++memo->queries;
    if (u.eng == v.eng) return {};  // same label: strictly ordered by neither
    MemoCache::Entry& e = memo->entries_[MemoCache::slot_of(u.eng, v.eng)];
    Backoff bo;
    for (;;) {
      // One even-stable window across BOTH lists: every load below (entry
      // validation and, on a miss, the coordinate re-reads) is mutually
      // coherent, because any coordinate rewrite holds an odd window.
      const std::uint64_t ve = eng_.structural_version();
      const std::uint64_t vh = heb_.structural_version();
      if ((ve | vh) & 1) {
        bo.pause();
        continue;
      }
      if (e.u == u.eng && e.v == v.eng) {
        std::uint64_t sum = 0;
        for (const om::Group* g : e.g) {
          sum += g->version.load(std::memory_order_relaxed);
        }
        std::atomic_thread_fence(std::memory_order_acquire);
        if (eng_.structural_version() != ve ||
            heb_.structural_version() != vh) {
          bo.pause();
          continue;
        }
        if (sum == e.vsum) {
          ++memo->hits;
          return e.rel;
        }
        // Key matches but a sublist moved on: fall through and refill.
      }
      MemoCache::Entry fill;
      fill.u = u.eng;
      fill.v = v.eng;
      const om::Item* it[4] = {u.eng, v.eng, u.heb, v.heb};
      std::uint64_t tag[4], sub[4];
      for (int i = 0; i < 4; ++i) {
        const om::Group* g = it[i]->group.load(std::memory_order_relaxed);
        fill.g[i] = g;
        fill.vsum += g->version.load(std::memory_order_relaxed);
        tag[i] = g->tag.load(std::memory_order_relaxed);
        sub[i] = it[i]->subtag.load(std::memory_order_relaxed);
      }
      std::atomic_thread_fence(std::memory_order_acquire);
      if (eng_.structural_version() != ve || heb_.structural_version() != vh) {
        bo.pause();
        continue;
      }
      fill.rel.eng =
          tag[0] < tag[1] || (tag[0] == tag[1] && sub[0] < sub[1]);
      fill.rel.heb =
          tag[2] < tag[3] || (tag[2] == tag[3] && sub[2] < sub[3]);
      e = fill;
      ++memo->fills;
      return fill.rel;
    }
  }

  /// u ~> v : is u in series with (an ancestor of) v?
  bool precedes(const Label& u, const Label& v, MemoCache* memo = nullptr) const {
    const Relation r = relation(u, v, memo);
    return r.eng && r.heb;
  }

  /// u || v : logically parallel (neither reaches the other).
  bool parallel(const Label& u, const Label& v, MemoCache* memo = nullptr) const {
    const Relation r = relation(u, v, memo);
    return r.eng != r.heb;
  }

  /// For two *parallel* strands: is u left of v in the left-to-right
  /// depth-first execution order? (Used by the left/right-most reader
  /// treaps.) Equivalent to English-order comparison.
  bool left_of(const Label& u, const Label& v, MemoCache* memo = nullptr) const {
    return relation(u, v, memo).eng;
  }

  /// Global structural epoch: the sum of the two OM seqlock versions.  Both
  /// are monotone non-decreasing, so equal sums imply both versions
  /// unchanged.  (No longer the memo key - kept for stats/tests.)
  std::uint64_t structural_epoch() const {
    return eng_.structural_version() + heb_.structural_version();
  }

  om::List& english() { return eng_; }
  om::List& hebrew() { return heb_; }

 private:
  om::List eng_;
  om::List heb_;
};

}  // namespace pint::reach
