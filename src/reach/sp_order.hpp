#pragma once

// SP-order reachability for series-parallel DAGs (the WSP-Order component).
//
// Each strand carries a Label = one position in the "English" order and one
// in the "Hebrew" order (Bender et al. SPAA'04; parallelized as in WSP-Order,
// Utterback et al. SPAA'16).  For two distinct strands u, v:
//
//     u ~> v (series)  <=>  u precedes v in BOTH orders
//     u  ||  v         <=>  the two orders disagree
//
// Maintenance at a spawn of strand u (child c, continuation t):
//     English:  ... u, c, t ...      (child first)
//     Hebrew:   ... u, t, c ...      (continuation first)
//
// The sync node j of a sync block is positioned at the FIRST spawn of the
// block: English right after t, Hebrew right after c.  Every later insertion
// belonging to the block lands strictly inside the (u, j) window of both
// orders, so j ends up in series with the entire block - this is how the
// detector knows the label of the strand that follows the sync before the
// sync is reached.
//
// All operations are thread-safe; precedes() is lock-free (see om::List).

#include "om/order_maintenance.hpp"

namespace pint::reach {

/// A strand's position in the two total orders. Labels are immutable once
/// published and live for the entire detection run (treaps keep them after
/// the strand record is recycled).
struct Label {
  om::Item* eng = nullptr;
  om::Item* heb = nullptr;
  bool valid() const { return eng != nullptr; }
};

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Label of the initial strand (the whole computation's first strand).
  Label root_label() { return {eng_.base(), heb_.base()}; }

  struct SpawnLabels {
    Label child;  // first strand of the spawned function
    Label cont;   // continuation strand of the parent
  };

  /// Called when strand `u` executes a spawn. If `*sync_node` is invalid
  /// this spawn opens a new sync block and the sync node's label is created
  /// and stored there.
  SpawnLabels on_spawn(const Label& u, Label* sync_node) {
    SpawnLabels out;
    out.child.eng = eng_.insert_after(u.eng);
    out.cont.eng = eng_.insert_after(out.child.eng);
    out.cont.heb = heb_.insert_after(u.heb);
    out.child.heb = heb_.insert_after(out.cont.heb);
    if (!sync_node->valid()) {
      sync_node->eng = eng_.insert_after(out.cont.eng);
      sync_node->heb = heb_.insert_after(out.child.heb);
    }
    return out;
  }

  /// u ~> v : is u in series with (an ancestor of) v?
  bool precedes(const Label& u, const Label& v) const {
    return eng_.precedes(u.eng, v.eng) && heb_.precedes(u.heb, v.heb);
  }

  /// u || v : logically parallel (neither reaches the other).
  bool parallel(const Label& u, const Label& v) const {
    const bool e = eng_.precedes(u.eng, v.eng);
    const bool h = heb_.precedes(u.heb, v.heb);
    return e != h;
  }

  /// For two *parallel* strands: is u left of v in the left-to-right
  /// depth-first execution order? (Used by the left/right-most reader
  /// treaps.) Equivalent to English-order comparison.
  bool left_of(const Label& u, const Label& v) const {
    return eng_.precedes(u.eng, v.eng);
  }

  om::List& english() { return eng_; }
  om::List& hebrew() { return heb_; }

 private:
  om::List eng_;
  om::List heb_;
};

}  // namespace pint::reach
