#pragma once

// SP-order reachability for series-parallel DAGs (the WSP-Order component).
//
// Each strand carries a Label = one position in the "English" order and one
// in the "Hebrew" order (Bender et al. SPAA'04; parallelized as in WSP-Order,
// Utterback et al. SPAA'16).  For two distinct strands u, v:
//
//     u ~> v (series)  <=>  u precedes v in BOTH orders
//     u  ||  v         <=>  the two orders disagree
//
// Maintenance at a spawn of strand u (child c, continuation t):
//     English:  ... u, c, t ...      (child first)
//     Hebrew:   ... u, t, c ...      (continuation first)
//
// The sync node j of a sync block is positioned at the FIRST spawn of the
// block: English right after t, Hebrew right after c.  Every later insertion
// belonging to the block lands strictly inside the (u, j) window of both
// orders, so j ends up in series with the entire block - this is how the
// detector knows the label of the strand that follows the sync before the
// sync is reached.
//
// All operations are thread-safe; precedes() is lock-free (see om::List).

#include <cstdint>
#include <vector>

#include "om/order_maintenance.hpp"

namespace pint::reach {

/// A strand's position in the two total orders. Labels are immutable once
/// published and live for the entire detection run (treaps keep them after
/// the strand record is recycled).
struct Label {
  om::Item* eng = nullptr;
  om::Item* heb = nullptr;
  bool valid() const { return eng != nullptr; }
};

/// Both order verdicts for an ordered label pair (u, v).  One Relation
/// answers every predicate the history lanes ask: series (eng && heb),
/// parallel (eng != heb), and English-order left_of (eng) - and because the
/// two orders are strict total orders over distinct items, the reversed pair
/// is just the negation of both bits.
struct Relation {
  bool eng = false;  // u before v in the English order
  bool heb = false;  // u before v in the Hebrew order
};

/// Direct-mapped memo for Engine::relation(), keyed by label identity (the
/// English om::Item* uniquely identifies a label).  One cache per history
/// worker - strictly single-threaded, like the treap it sits next to.  An
/// entry is valid only while the engine's structural epoch (the sum of the
/// two OM lists' seqlock versions) is unchanged; any completed OM relabel
/// bumps the epoch and lazily invalidates the whole cache.  Inserting one
/// strand's intervals re-queries the same few accessor labels across many
/// overlapping treap nodes, which is exactly the reuse a direct-mapped
/// cache captures.
class MemoCache {
 public:
  static constexpr std::size_t kSlots = std::size_t(1) << 12;

  MemoCache() : entries_(kSlots) {}

  void clear() {
    entries_.assign(kSlots, Entry{});
    hits = queries = 0;
  }

  // Hit-rate counters, flushed into detect::Stats at run end.
  std::uint64_t hits = 0;
  std::uint64_t queries = 0;

 private:
  friend class Engine;
  struct Entry {
    const om::Item* a = nullptr;  // key: canonically ordered label pair
    const om::Item* b = nullptr;
    std::uint64_t epoch = 0;
    Relation rel;
  };

  static std::size_t slot_of(const om::Item* a, const om::Item* b) {
    const auto x = std::uint64_t(reinterpret_cast<std::uintptr_t>(a));
    const auto y = std::uint64_t(reinterpret_cast<std::uintptr_t>(b));
    std::uint64_t h = (x >> 4) * 0x9e3779b97f4a7c15ULL;
    h ^= (y >> 4) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    return std::size_t(h) & (kSlots - 1);
  }

  std::vector<Entry> entries_;
};

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Label of the initial strand (the whole computation's first strand).
  Label root_label() { return {eng_.base(), heb_.base()}; }

  struct SpawnLabels {
    Label child;  // first strand of the spawned function
    Label cont;   // continuation strand of the parent
  };

  /// Called when strand `u` executes a spawn. If `*sync_node` is invalid
  /// this spawn opens a new sync block and the sync node's label is created
  /// and stored there.
  SpawnLabels on_spawn(const Label& u, Label* sync_node) {
    SpawnLabels out;
    out.child.eng = eng_.insert_after(u.eng);
    out.cont.eng = eng_.insert_after(out.child.eng);
    out.cont.heb = heb_.insert_after(u.heb);
    out.child.heb = heb_.insert_after(out.cont.heb);
    if (!sync_node->valid()) {
      sync_node->eng = eng_.insert_after(out.cont.eng);
      sync_node->heb = heb_.insert_after(out.child.heb);
    }
    return out;
  }

  /// Both order verdicts for (u, v), optionally memoized.  The memo key is
  /// the canonically ordered pointer pair, so (u, v) and (v, u) share one
  /// entry (the reversed answer is the negation of both bits - the orders
  /// are strict and total over distinct items).  A null memo degrades to
  /// the two direct seqlock queries.
  Relation relation(const Label& u, const Label& v, MemoCache* memo) const {
    if (memo == nullptr) {
      return {eng_.precedes(u.eng, v.eng), heb_.precedes(u.heb, v.heb)};
    }
    ++memo->queries;
    if (u.eng == v.eng) return {};  // same label: strictly ordered by neither
    const bool flip = reinterpret_cast<std::uintptr_t>(u.eng) >
                      reinterpret_cast<std::uintptr_t>(v.eng);
    const Label& a = flip ? v : u;
    const Label& b = flip ? u : v;
    MemoCache::Entry& e = memo->entries_[MemoCache::slot_of(a.eng, b.eng)];
    const std::uint64_t now = structural_epoch();
    if (e.a == a.eng && e.b == b.eng && e.epoch == now) {
      ++memo->hits;
      return flip ? Relation{!e.rel.eng, !e.rel.heb} : e.rel;
    }
    const Relation r{eng_.precedes(a.eng, b.eng), heb_.precedes(a.heb, b.heb)};
    e.a = a.eng;
    e.b = b.eng;
    e.epoch = now;
    e.rel = r;
    return flip ? Relation{!r.eng, !r.heb} : r;
  }

  /// u ~> v : is u in series with (an ancestor of) v?
  bool precedes(const Label& u, const Label& v, MemoCache* memo = nullptr) const {
    const Relation r = relation(u, v, memo);
    return r.eng && r.heb;
  }

  /// u || v : logically parallel (neither reaches the other).
  bool parallel(const Label& u, const Label& v, MemoCache* memo = nullptr) const {
    const Relation r = relation(u, v, memo);
    return r.eng != r.heb;
  }

  /// For two *parallel* strands: is u left of v in the left-to-right
  /// depth-first execution order? (Used by the left/right-most reader
  /// treaps.) Equivalent to English-order comparison.
  bool left_of(const Label& u, const Label& v, MemoCache* memo = nullptr) const {
    return relation(u, v, memo).eng;
  }

  /// Memo validity epoch: the sum of the two OM seqlock versions.  Both are
  /// monotone non-decreasing, so equal sums imply both versions unchanged.
  std::uint64_t structural_epoch() const {
    return eng_.structural_version() + heb_.structural_version();
  }

  om::List& english() { return eng_; }
  om::List& hebrew() { return heb_; }

 private:
  om::List eng_;
  om::List heb_;
};

}  // namespace pint::reach
