#pragma once

// The pluggable happens-before oracle seam (DESIGN.md §12).
//
// Every consumer of reachability - detect/history.hpp, the sharded history,
// the memo cache plumbing and all four detectors - names the oracle through
// `reach::Engine`, an alias selected here at compile time, instead of the
// concrete SP-order types.  An alternate backend (a DePa-style OM engine, or
// a futures-aware oracle per "Efficient Race Detection with Futures") plugs
// in by defining PINT_REACH_BACKEND to its engine type; the concept below
// states the full contract it must honor.
//
// Contract highlights an alternate backend must preserve:
//
//  * Labels are immutable once published and outlive the strand records that
//    carry them (history treaps retain labels after strand recycling).
//  * relation(u, v, memo) answers both order verdicts for the ordered pair;
//    equal labels are ordered by NEITHER (relation yields {false, false}),
//    which is what makes same-label strand segments (lockset splits) inert.
//  * relation() must be safe to call concurrently with maintenance hooks
//    (on_spawn runs on core workers while history lanes query).
//  * Memo contract: `Memo` caches (pair -> Relation) verdicts and validates
//    them against backend version counters.  The backend may change the COST
//    of a query via the memo, never its verdict, and passing a null memo must
//    degrade to the direct query.  Memo instances are single-threaded (one
//    per history lane).
//  * structural_epoch() is monotone non-decreasing and changes whenever any
//    cached verdict could have been invalidated (stats/tests key on it).

#include <concepts>
#include <cstdint>

// Both backends are ALWAYS compiled (and concept-checked below) no matter
// which one PINT_REACH_BACKEND selects, so an edit that breaks the seam for
// the non-selected engine still fails every build - the backend-matrix CI
// lane then proves behavioral (not just syntactic) interchangeability.
#include "reach/depa.hpp"
#include "reach/sp_order.hpp"

namespace pint::reach {

/// The happens-before oracle concept.  `detect/history.hpp` and the
/// detectors are written against exactly this surface; sp_order's
/// SpOrderEngine is the reference model.
template <class E>
concept HappensBeforeEngine =
    requires(E e, const E ce, const typename E::Label& u,
             typename E::Label* sync_node, typename E::Memo* memo) {
      typename E::Label;
      typename E::Relation;
      typename E::Memo;
      // Label of the computation's initial strand.
      { e.root_label() } -> std::same_as<typename E::Label>;
      // Maintenance hooks: spawn creates child/continuation labels (and the
      // sync node's label at the block's first spawn); steal/join are no-ops
      // for SP-order but a backend tracking per-worker state needs them.
      { e.on_spawn(u, sync_node) };
      { e.on_steal(u) };
      { e.on_join(u, u) };
      // Queries.  All const: safe from any history lane.
      { ce.relation(u, u, memo) } -> std::same_as<typename E::Relation>;
      { ce.precedes(u, u, memo) } -> std::same_as<bool>;
      { ce.parallel(u, u, memo) } -> std::same_as<bool>;
      { ce.left_of(u, u, memo) } -> std::same_as<bool>;
      { ce.structural_epoch() } -> std::same_as<std::uint64_t>;
      // Relation exposes the two order bits the reader-retention resolver
      // needs: series = eng && heb, parallel = eng != heb, left_of = eng.
      requires requires(const typename E::Relation r) {
        { r.eng } -> std::convertible_to<bool>;
        { r.heb } -> std::convertible_to<bool>;
      };
    };

// Compile-time backend selection.  Detectors, history lanes and records all
// name `reach::Engine` (and its nested Label/Relation/Memo); swapping the
// oracle is a -DPINT_REACH_BACKEND=... away (the top-level CMake option of
// the same name maps `sporder`/`depa` onto these types) and everything
// re-types.  Selection is compile-time, not a detect::Tuning runtime knob,
// deliberately: strands, treap nodes and trace records embed Engine::Label
// BY VALUE, so runtime dispatch would mean either fattening every record to
// the union of both label layouts or virtualizing the hottest query in the
// detector - EXPERIMENTS.md §fig3 carries the measured ablation that
// justifies skipping that cost.
#ifndef PINT_REACH_BACKEND
#define PINT_REACH_BACKEND ::pint::reach::SpOrderEngine
#endif

using Engine = PINT_REACH_BACKEND;

// BOTH backends must honor the contract at all times, selected or not.
static_assert(HappensBeforeEngine<SpOrderEngine>,
              "SpOrderEngine must satisfy reach::HappensBeforeEngine");
static_assert(HappensBeforeEngine<DePaEngine>,
              "DePaEngine must satisfy reach::HappensBeforeEngine");
static_assert(HappensBeforeEngine<Engine>,
              "PINT_REACH_BACKEND must satisfy reach::HappensBeforeEngine");

}  // namespace pint::reach
