#pragma once

// DePa graph-encoded reachability for series-parallel DAGs (DESIGN.md §14).
//
// Where the SP-order backend (sp_order.hpp) maintains two shared
// order-maintenance lists - and therefore pays seqlock-guarded group splits
// and top-level relabels that stall every concurrent reader - this backend
// encodes each strand's position IN ITS OWN LABEL: the path from the root of
// the binary fork-join decomposition, as a string of 2-bit symbols packed
// into 64-bit words (a (depth, path-bitstring) pair, after Westrick/Wang/
// Acar's "DePa: Simple, Provably Efficient, and Practical Order Maintenance
// for Task Parallelism").
//
// At a spawn of strand u the three successor vertices get
//
//     child        = u . Child
//     continuation = u . Cont
//     sync node    = u . Join     (created at the block's FIRST spawn,
//                                  exactly the sp_order sync-node contract)
//
// and for two labels the relation is decided by the LOWEST-indexed symbol
// where the paths diverge:
//
//     Join vs x     ->  the Join side FOLLOWS the other (the whole block
//                       precedes its sync node)
//     Child vs Cont ->  parallel, Child side is English-left
//     proper prefix ->  the prefix precedes the extension (series)
//     equal labels  ->  ordered by NEITHER (same-label lockset segments)
//
// Symbols are appended at the tail word of the label; when a word fills it
// is frozen into an immutable, reverse-linked PathChunk drawn from the PR 8
// slab arena.  Chunks below a fork are SHARED by every descendant label, so
// (a) a label costs O(1) amortized space per spawn and (b) relation() can
// stop its word-compare loop the moment both sides reach the same chunk
// object - everything below the fork is identical by construction.
//
// What this buys over SP-order, structurally:
//   * on_spawn touches no shared mutable state (one spinlocked slab bump
//     every 32 symbols of depth is the only cross-thread contact),
//   * relation() is a pure word-compare over immutable memory - no seqlock
//     windows, no retries, no fences - safe and wait-free from any lane,
//   * structural_epoch() is constant: a cached pair verdict can never be
//     invalidated structurally, so the memo is re-keyed on label CONTENT
//     (tail word + chunk pointer + bit length per side) and entries live
//     forever.

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "support/arena.hpp"
#include "support/assert.hpp"
#include "support/spinlock.hpp"

namespace pint::reach {

// Relation{eng, heb} is shared with the SP-order backend (sp_order.hpp).
struct Relation;

/// One frozen 64-bit word of a label's path, reverse-linked toward the root.
/// Immutable after publication; allocated from the engine's slab arena and
/// shared by every label that extends the path below it.
struct DePaPathChunk {
  const DePaPathChunk* prev;  // word `index - 1`, null when index == 0
  std::uint64_t word;         // path bits [64*index, 64*index + 64)
  std::uint32_t index;        // word position in the path, 0-based
};

/// A strand's path in the fork tree.  `frozen` holds words [0, index] of the
/// path; `tail` holds the remaining bits [64*(index+1), bits) - always fewer
/// than 64 of them, so appending a 2-bit symbol is one OR plus, every 32nd
/// append per branch, one chunk freeze.  Value-semantic (24 bytes), immutable
/// once published, and meaningful independent of any engine state: two labels
/// can be compared with nothing but their own words.
struct DePaLabel {
  std::uint64_t tail = 0;
  const DePaPathChunk* frozen = nullptr;
  std::uint32_t bits = 0;   // total path length in bits (2 per symbol)
  std::uint32_t live = 0;   // 0 = default-constructed/invalid (root has bits=0)
  bool valid() const { return live != 0; }
};

/// Pair-verdict memo for DePaEngine::relation().  One per history lane,
/// strictly single-threaded, direct-mapped like the SP-order MemoCache - but
/// keyed on label IDENTITY (the full 20-byte content of each side) instead
/// of om::Group version sums.  DePa labels are immutable and a given path
/// has exactly one (frozen, tail, bits) representation, so a key match IS
/// the verdict: entries never need invalidation and there is no validation
/// read at all on a hit.  structural_epoch() being constant is the same
/// fact seen from the outside.
class DePaMemo {
 public:
  static constexpr std::size_t kSlots = std::size_t(1) << 14;  // 1 MiB

  DePaMemo() : entries_(kSlots) {}

  void clear() {
    entries_.assign(kSlots, Entry{});
    hits = queries = fills = 0;
  }

  /// Test-only: would the next relation(u, v) be served from the cache?
  bool cached(const DePaLabel& u, const DePaLabel& v) const {
    const Entry& e = entries_[slot_of(u, v)];
    return e.used != 0 && key_matches(e, u, v);
  }

  std::uint64_t hits = 0;
  std::uint64_t queries = 0;
  std::uint64_t fills = 0;

 private:
  friend class DePaEngine;
  struct alignas(64) Entry {  // one cache line per probe
    std::uint64_t utail = 0, vtail = 0;
    const DePaPathChunk* ufrozen = nullptr;
    const DePaPathChunk* vfrozen = nullptr;
    std::uint32_t ubits = 0, vbits = 0;
    std::uint32_t used = 0;  // the root label is all-zero, so key it explicitly
    bool releng = false, relheb = false;
  };

  static bool key_matches(const Entry& e, const DePaLabel& u,
                          const DePaLabel& v) {
    return e.utail == u.tail && e.vtail == v.tail && e.ufrozen == u.frozen &&
           e.vfrozen == v.frozen && e.ubits == u.bits && e.vbits == v.bits;
  }

  // Path tails are highly structured (low-entropy 2-bit symbol strings that
  // share long prefixes), so the slot hash needs real avalanche - a plain
  // multiply-xor left heat's hit rate ~0.10 below its compulsory ceiling
  // from conflict evictions alone.  One murmur3 finalizer over a
  // multiply-combined key restores it.
  static std::uint64_t mix(std::uint64_t x) {
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 29;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 32;
    return x;
  }

  static std::size_t slot_of(const DePaLabel& u, const DePaLabel& v) {
    std::uint64_t h = u.tail * 0x9e3779b97f4a7c15ULL;
    h += v.tail * 0xc2b2ae3d27d4eb4fULL;
    h += (std::uint64_t(u.bits) << 32 | v.bits) * 0xd6e8feb86659fd93ULL;
    h += std::uint64_t(reinterpret_cast<std::uintptr_t>(u.frozen)) >> 4;
    h += (std::uint64_t(reinterpret_cast<std::uintptr_t>(v.frozen)) >> 4) *
         0xa0761d6478bd642fULL;
    return std::size_t(mix(h)) & (kSlots - 1);
  }

  std::vector<Entry> entries_;
};

/// The DePa (graph-encoded) happens-before backend.  Selected via
/// -DPINT_REACH_BACKEND=depa; satisfies reach::HappensBeforeEngine.
class DePaEngine {
 public:
  using Label = DePaLabel;
  using Memo = DePaMemo;
  // Relation is defined in sp_order.hpp (both backends share it); alias
  // established below, after the symbol constants.
  using Relation = reach::Relation;

  static constexpr const char* kName = "depa";

  DePaEngine() = default;
  DePaEngine(const DePaEngine&) = delete;
  DePaEngine& operator=(const DePaEngine&) = delete;

  ~DePaEngine() {
    for (void* s : slabs_) support::SlabSource::instance().give(s, kSlabBytes);
  }

  /// Label of the computation's initial strand: the empty path.
  Label root_label() {
    Label l;
    l.live = 1;
    return l;
  }

  struct SpawnLabels {
    Label child;  // first strand of the spawned function
    Label cont;   // continuation strand of the parent
  };

  /// Called when strand `u` executes a spawn.  O(1): extends u's path by one
  /// symbol per successor; no shared structure is read or written unless a
  /// tail word happens to fill (then one spinlocked slab bump).  If
  /// `*sync_node` is invalid this spawn opens a new sync block and the sync
  /// node's label - u.Join - is created and stored there; every strand of
  /// the block extends u by Child/Cont strings that diverge from Join at the
  /// same symbol, which is exactly what makes the block precede its sync.
  SpawnLabels on_spawn(const Label& u, Label* sync_node) {
    SpawnLabels out;
    out.child = append(u, kChild);
    out.cont = append(u, kCont);
    if (!sync_node->valid()) *sync_node = append(u, kJoin);
    return out;
  }

  /// Steal/join maintenance: DePa labels are globally valid the moment they
  /// are minted (nothing is worker-relative), so both are no-ops here.  The
  /// detectors still CALL them on the stolen-continuation and sync-elapsed
  /// paths - the seam's contract, so a backend tracking per-worker state
  /// plugs in without touching the trace layers.
  void on_steal(const Label&) {}
  void on_join(const Label&, const Label&) {}

  /// Both order verdicts for (u, v).  Wait-free: reads only the two labels'
  /// immutable words.  The memo can change the cost, never the verdict, and
  /// a null memo degrades to the direct word-compare.
  Relation relation(const Label& u, const Label& v, Memo* memo) const;

  /// u ~> v : is u in series with (an ancestor of) v?
  bool precedes(const Label& u, const Label& v, Memo* memo = nullptr) const;

  /// u || v : logically parallel (neither reaches the other).
  bool parallel(const Label& u, const Label& v, Memo* memo = nullptr) const;

  /// For two *parallel* strands: is u left of v in the left-to-right
  /// depth-first execution order? (English-order comparison.)
  bool left_of(const Label& u, const Label& v, Memo* memo = nullptr) const;

  /// Labels are immutable and self-contained: no structural mutation can
  /// ever invalidate a cached verdict.  Constant (and trivially monotone).
  std::uint64_t structural_epoch() const { return 0; }

  /// Total frozen chunks minted (test/stats visibility).
  std::uint64_t chunks_minted() const {
    LockGuard<Spinlock> g(mu_);
    return chunks_minted_;
  }

 private:
  // 2-bit path symbols.  0b00 is reserved as "no symbol" so a masked-out
  // word region can never alias a real symbol.
  static constexpr std::uint64_t kChild = 0b01;  // spawned function
  static constexpr std::uint64_t kCont = 0b10;   // parent's continuation
  static constexpr std::uint64_t kJoin = 0b11;   // the block's sync node

  static std::uint32_t frozen_words(const Label& l) {
    return l.frozen == nullptr ? 0 : l.frozen->index + 1;
  }

  /// u extended by one symbol.  The tail has room for at most 31 symbols;
  /// the 32nd fills the word, which is frozen into a shared chunk.
  Label append(const Label& u, std::uint64_t sym) {
    PINT_ASSERT(u.valid());
    const std::uint32_t tail_len = u.bits - 64 * frozen_words(u);
    Label out = u;
    out.live = 1;
    out.tail = u.tail | (sym << tail_len);
    out.bits = u.bits + 2;
    if (tail_len == 62) {
      out.frozen = new_chunk(u.frozen, out.tail, frozen_words(u));
      out.tail = 0;
    }
    return out;
  }

  const DePaPathChunk* new_chunk(const DePaPathChunk* prev, std::uint64_t word,
                                 std::uint32_t index) {
    LockGuard<Spinlock> g(mu_);
    if (slab_used_ == kChunksPerSlab) {
      slabs_.push_back(support::SlabSource::instance().take(kSlabBytes));
      slab_used_ = 0;
    }
    auto* base = static_cast<DePaPathChunk*>(slabs_.back());
    ++chunks_minted_;
    return new (base + slab_used_++) DePaPathChunk{prev, word, index};
  }

  /// Word `j` of a label's path, with backward iteration.  `chunk` non-null
  /// means the cursor sits in the frozen chain; null means it sits on the
  /// tail word (from which step_back() re-enters the chain at its head).
  struct Cursor {
    const DePaPathChunk* chunk;
    const DePaPathChunk* head;
    std::uint64_t tail;
    std::uint64_t word() const { return chunk != nullptr ? chunk->word : tail; }
    void step_back() { chunk = chunk != nullptr ? chunk->prev : head; }
  };

  static Cursor cursor_at(const Label& l, std::uint32_t j) {
    Cursor c{nullptr, l.frozen, l.tail};
    if (j < frozen_words(l)) {
      const DePaPathChunk* p = l.frozen;
      while (p->index != j) p = p->prev;
      c.chunk = p;
    }
    return c;
  }

  static bool label_eq(const Label& u, const Label& v) {
    return u.bits == v.bits && u.tail == v.tail && u.frozen == v.frozen;
  }

  static Relation relation_direct(const Label& u, const Label& v);

  static constexpr std::size_t kSlabBytes = std::size_t(64) << 10;
  static constexpr std::size_t kChunksPerSlab = kSlabBytes / sizeof(DePaPathChunk);

  mutable Spinlock mu_;
  std::vector<void*> slabs_;
  std::size_t slab_used_ = kChunksPerSlab;  // force a slab on first freeze
  std::uint64_t chunks_minted_ = 0;
};

}  // namespace pint::reach

// Relation's definition lives in sp_order.hpp; both backend headers are
// always compiled together (engine.hpp includes both), so pulling it in here
// keeps this header self-sufficient without duplicating the type.
#include "reach/sp_order.hpp"

namespace pint::reach {

inline DePaEngine::Relation DePaEngine::relation_direct(const Label& u,
                                                        const Label& v) {
  PINT_ASSERT(u.valid() && v.valid());
  if (label_eq(u, v)) return {};  // same label: strictly ordered by neither

  const std::uint32_t m = u.bits < v.bits ? u.bits : v.bits;
  // Walk the two word sequences top-down over the common prefix length,
  // remembering the LOWEST-indexed differing word.  The loop ends early when
  // both cursors land on the same chunk object: every word below a shared
  // chunk is shared too, so the divergence (if any) was already seen.  Cost
  // is O(words between the fork and min(|u|,|v|)) plus the walk positioning
  // the deeper label's cursor - the paths' divergence, not their length.
  std::uint32_t diff_w = 0;
  std::uint64_t da = 0, db = 0;
  bool differ = false;
  if (m != 0) {
    const std::uint32_t nw = (m + 63) / 64;  // words covering bits [0, m)
    Cursor cu = cursor_at(u, nw - 1);
    Cursor cv = cursor_at(v, nw - 1);
    for (std::uint32_t j = nw; j-- > 0;) {
      if (cu.chunk != nullptr && cu.chunk == cv.chunk) break;
      std::uint64_t a = cu.word();
      std::uint64_t b = cv.word();
      if (j == nw - 1) {
        // Top word: only bits below m belong to the common prefix.
        const std::uint32_t top = m - 64 * (nw - 1);
        if (top < 64) {
          const std::uint64_t mask = (std::uint64_t(1) << top) - 1;
          a &= mask;
          b &= mask;
        }
      }
      if (a != b) {
        diff_w = j;
        da = a;
        db = b;
        differ = true;
      }
      if (j != 0) {
        cu.step_back();
        cv.step_back();
      }
    }
  }

  if (differ) {
    const std::uint32_t bit =
        std::uint32_t(std::countr_zero(da ^ db));  // lowest diff within word
    const std::uint32_t off = bit & ~std::uint32_t(1);  // its symbol's offset
    const std::uint64_t a2 = (da >> off) & 3;
    const std::uint64_t b2 = (db >> off) & 3;
    (void)diff_w;
    // First divergent symbol decides everything (DESIGN.md §14):
    //   u on the Join side -> the entire block (v's side) precedes u.
    //   v on the Join side -> u precedes v.
    //   Child vs Cont      -> parallel; Child is English-first (left),
    //                         Cont is Hebrew-first.
    if (a2 == kJoin) return {false, false};
    if (b2 == kJoin) return {true, true};
    return {a2 == kChild, a2 == kCont};
  }

  // No divergence on the common prefix: one path extends the other, and a
  // vertex precedes every vertex of its own subtree.
  if (u.bits < v.bits) return {true, true};
  if (u.bits > v.bits) return {false, false};
  return {};  // identical content (same vertex reached via copies)
}

inline DePaEngine::Relation DePaEngine::relation(const Label& u, const Label& v,
                                                 Memo* memo) const {
  if (memo == nullptr) return relation_direct(u, v);
  ++memo->queries;
  if (label_eq(u, v)) return {};
  DePaMemo::Entry& e = memo->entries_[DePaMemo::slot_of(u, v)];
  if (e.used != 0 && DePaMemo::key_matches(e, u, v)) {
    ++memo->hits;
    return {e.releng, e.relheb};
  }
  const Relation r = relation_direct(u, v);
  e.utail = u.tail;
  e.vtail = v.tail;
  e.ufrozen = u.frozen;
  e.vfrozen = v.frozen;
  e.ubits = u.bits;
  e.vbits = v.bits;
  e.used = 1;
  e.releng = r.eng;
  e.relheb = r.heb;
  ++memo->fills;
  return r;
}

inline bool DePaEngine::precedes(const Label& u, const Label& v,
                                 Memo* memo) const {
  const Relation r = relation(u, v, memo);
  return r.eng && r.heb;
}

inline bool DePaEngine::parallel(const Label& u, const Label& v,
                                 Memo* memo) const {
  const Relation r = relation(u, v, memo);
  return r.eng != r.heb;
}

inline bool DePaEngine::left_of(const Label& u, const Label& v,
                                Memo* memo) const {
  return relation(u, v, memo).eng;
}

}  // namespace pint::reach
