#pragma once

// Concurrent order-maintenance (OM) list.
//
// Maintains a total order under two operations:
//   insert_after(x) -> y   (y becomes x's immediate successor)
//   precedes(a, b)         (is a before b?)
//
// This is the data-structure core of WSP-Order reachability (Utterback et
// al., SPAA'16): core workers insert strand labels concurrently while treap
// workers issue precedes() queries asynchronously.  The design here is a
// classic two-level tag list:
//
//  * top level: doubly-linked list of Groups, each with a 64-bit tag;
//  * bottom level: items within a group carry 64-bit subtags.
//
// Order of items = lexicographic (group tag, subtag).
//
// Concurrency protocol
//  * plain inserts take only the target group's spinlock and, when a subtag
//    gap exists, touch no existing item - concurrent queries are unaffected;
//  * structural mutations (group split, subtag redistribution, top-level
//    relabel) are guarded by a global sequence lock: precedes() is a
//    lock-free seqlock read that retries if a structural mutation raced it.
//    Mutation windows are serialized by struct_lock_ (the seqlock counter
//    is single-writer; see make_gap) - writers queue, readers never block.
//
// Items are allocated from an internal arena and live until the List dies;
// race detectors keep strand labels in treaps long after the strand record
// itself is recycled, so labels must never be freed mid-run.

#include <atomic>
#include <cstdint>
#include <vector>

#include "support/spinlock.hpp"

namespace pint::om {

class List;
struct Group;

struct Item {
  std::atomic<Group*> group{nullptr};
  std::atomic<std::uint64_t> subtag{0};
  // Intra-group doubly-linked list, guarded by the group's lock.
  Item* prev = nullptr;
  Item* next = nullptr;
};

struct Group {
  std::atomic<std::uint64_t> tag{0};
  // Per-sublist coordinate version: bumped (inside the global seqlock
  // window, before any coordinate is rewritten) whenever this group's tag
  // or any member's subtag changes — i.e. on subtag redistribution, on the
  // kept half of a split, and on every group during a top-level relabel.
  // Item migration to a fresh group needs no bump: the migrated item's
  // `group` pointer changes, which consumers key on directly.  This is what
  // lets reach::MemoCache validate cached (tag, subtag) coordinates per
  // sublist instead of being wiped by every unrelated structural mutation.
  std::atomic<std::uint64_t> version{0};
  Group* prev = nullptr;  // top-level links, guarded by List::top_lock_
  Group* next = nullptr;
  Spinlock lock;
  Item* first = nullptr;  // intra-group list, guarded by `lock`
  Item* last = nullptr;
  std::uint32_t count = 0;
};

class List {
 public:
  List();
  ~List();
  List(const List&) = delete;
  List& operator=(const List&) = delete;

  /// The minimum element, created by the constructor.
  Item* base() { return base_; }

  /// Inserts a new item immediately after `x`. Thread-safe.
  Item* insert_after(Item* x);

  /// True iff a is ordered strictly before b. Lock-free; safe to call
  /// concurrently with inserts. a and b must be items of this list.
  bool precedes(const Item* a, const Item* b) const;

  // --- introspection (tests / stats) ---
  std::size_t size() const { return size_.load(std::memory_order_relaxed); }
  std::uint64_t structural_mutations() const {
    return version_.load(std::memory_order_relaxed) / 2;
  }
  /// Raw seqlock epoch for memoizing query results (reach::MemoCache): even
  /// while quiescent, odd while a structural-mutation window is open, and
  /// monotone non-decreasing.  Two reads returning the same value bracket a
  /// window with no *completed* relabel/split - and since the relative order
  /// of two existing items never changes under any OM mutation, a cached
  /// precedes() result guarded by epoch equality is doubly safe (the epoch
  /// check is belt-and-braces; see DESIGN.md §9).
  std::uint64_t structural_version() const {
    return version_.load(std::memory_order_acquire);
  }
  /// Walks the whole structure under the top lock and verifies every
  /// ordering invariant. Test-only (stops the world is not needed; caller
  /// must ensure no concurrent inserts).
  bool check_invariants() const;

 private:
  static constexpr std::uint32_t kMaxGroupItems = 64;
  static constexpr std::uint64_t kAppendGap = std::uint64_t(1) << 40;

  Item* alloc_item();
  Group* alloc_group();
  /// Splits g (held locked) or redistributes its subtags, guaranteeing a
  /// usable gap after x. Returns the (locked) group that now contains x.
  Group* make_gap(Group* g, Item* x);
  void relabel_top();  // caller holds top_lock_

  Item* base_ = nullptr;
  /// Serializes structural-mutation windows (split / redistribute / top
  /// relabel).  The `version_` seqlock is a single-writer design: concurrent
  /// openers interleaving `load; store v+1; ...; store v+2` can present an
  /// even count inside an open window and strand the counter odd afterward
  /// (every query then retries forever).  Acquired after the mutating
  /// group's lock, before top_lock_.
  Spinlock struct_lock_;
  mutable Spinlock top_lock_;
  Group* head_ = nullptr;  // top-level list head
  std::atomic<std::uint64_t> version_{0};
  std::atomic<std::size_t> size_{0};

  // Chunked arenas (items/groups are never individually freed).
  static constexpr std::size_t kChunk = 1024;
  Spinlock arena_lock_;
  std::vector<Item*> item_chunks_;
  std::vector<Group*> group_chunks_;
  std::atomic<std::size_t> item_used_{kChunk};   // index into newest chunk
  std::atomic<std::size_t> group_used_{kChunk};
};

}  // namespace pint::om
