#include "om/order_maintenance.hpp"

#include <cstdint>
#include <limits>

#include "support/assert.hpp"

namespace pint::om {

namespace {
constexpr std::uint64_t kMaxTag = std::numeric_limits<std::uint64_t>::max();
}

List::List() {
  Group* g = alloc_group();
  g->tag.store(kMaxTag / 2, std::memory_order_relaxed);
  head_ = g;
  Item* it = alloc_item();
  it->group.store(g, std::memory_order_relaxed);
  it->subtag.store(kAppendGap, std::memory_order_relaxed);
  g->first = g->last = it;
  g->count = 1;
  base_ = it;
  size_.store(1, std::memory_order_relaxed);
}

List::~List() {
  for (Item* c : item_chunks_) delete[] c;
  for (Group* c : group_chunks_) delete[] c;
}

Item* List::alloc_item() {
  LockGuard<Spinlock> g(arena_lock_);
  std::size_t used = item_used_.load(std::memory_order_relaxed);
  if (used == kChunk) {
    item_chunks_.push_back(new Item[kChunk]);
    used = 0;
  }
  item_used_.store(used + 1, std::memory_order_relaxed);
  return &item_chunks_.back()[used];
}

Group* List::alloc_group() {
  LockGuard<Spinlock> g(arena_lock_);
  std::size_t used = group_used_.load(std::memory_order_relaxed);
  if (used == kChunk) {
    group_chunks_.push_back(new Group[kChunk]);
    used = 0;
  }
  group_used_.store(used + 1, std::memory_order_relaxed);
  return &group_chunks_.back()[used];
}

Item* List::insert_after(Item* x) {
  Item* y = alloc_item();
  for (;;) {
    Group* g = x->group.load(std::memory_order_acquire);
    g->lock.lock();
    if (x->group.load(std::memory_order_relaxed) != g) {
      g->lock.unlock();  // x migrated during a split; chase it
      continue;
    }

    const Item* nxt0 = x->next;
    const std::uint64_t xs0 = x->subtag.load(std::memory_order_relaxed);
    const bool no_gap =
        nxt0 ? (nxt0->subtag.load(std::memory_order_relaxed) - xs0 < 2)
             : (xs0 >= kMaxTag - 1);
    if (g->count >= kMaxGroupItems || no_gap) {
      g = make_gap(g, x);  // returns the (locked) group now holding x
    }

    Item* nxt = x->next;
    const std::uint64_t xs = x->subtag.load(std::memory_order_relaxed);
    std::uint64_t tag;
    if (nxt == nullptr) {
      tag = (xs <= kMaxTag - kAppendGap) ? xs + kAppendGap
                                         : xs + (kMaxTag - xs) / 2;
    } else {
      tag = xs + (nxt->subtag.load(std::memory_order_relaxed) - xs) / 2;
    }
    PINT_ASSERT(tag > xs);
    PINT_ASSERT(nxt == nullptr ||
                tag < nxt->subtag.load(std::memory_order_relaxed));

    // y is invisible to queries until the caller publishes it, so relaxed
    // stores suffice here; the publication edge provides the ordering.
    y->subtag.store(tag, std::memory_order_relaxed);
    y->group.store(g, std::memory_order_relaxed);
    y->prev = x;
    y->next = nxt;
    if (nxt)
      nxt->prev = y;
    else
      g->last = y;
    x->next = y;
    ++g->count;
    g->lock.unlock();
    size_.fetch_add(1, std::memory_order_relaxed);
    return y;
  }
}

Group* List::make_gap(Group* g, Item* x) {
  // Structural windows must be SERIALIZED: the seqlock below is a plain
  // even/odd counter, and two concurrent openers would interleave their
  // read-modify-writes - a reader could then observe an even value inside
  // an open window (validating torn coordinates), and the counter can end
  // the dance odd with no window open, spinning every future query forever.
  // Not hypothetical: two spawners splitting different groups reproduce the
  // stuck-odd state within milliseconds (bench/micro_reach.cpp's storm).
  // Lock order: group lock (held by caller) -> struct_lock_ -> top_lock_;
  // the migrated-item chase in insert_after holds nothing while it waits,
  // so the order is acyclic.  Plain gap inserts never take this lock -
  // only split/redistribute/relabel do, which amortize to a tiny fraction
  // of spawns.
  struct_lock_.lock();
  // Open the structural-mutation window: queries retry while version is odd.
  const std::uint64_t v = version_.load(std::memory_order_relaxed);
  version_.store(v + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);

  Group* holder = g;
  // Coordinates in g are about to be rewritten (either branch rewrites its
  // subtags); publish the sublist-version bump before touching them so a
  // coordinate cache can never validate a stale entry against the new
  // layout.  Readers that race the window itself retry on the seqlock.
  g->version.fetch_add(1, std::memory_order_relaxed);
  if (g->count >= kMaxGroupItems) {
    // Split: move the upper half of g into a fresh group placed right after
    // g in the top-level list.
    Group* ng = alloc_group();
    ng->lock.lock();  // must be held before any item points at ng

    top_lock_.lock();
    Group* after = g->next;
    std::uint64_t lo = g->tag.load(std::memory_order_relaxed);
    std::uint64_t hi = after ? after->tag.load(std::memory_order_relaxed) : kMaxTag;
    if (hi - lo < 2) {
      relabel_top();
      lo = g->tag.load(std::memory_order_relaxed);
      hi = after ? after->tag.load(std::memory_order_relaxed) : kMaxTag;
      PINT_CHECK_MSG(hi - lo >= 2, "top-level tag space exhausted");
    }
    ng->tag.store(lo + (hi - lo) / 2, std::memory_order_relaxed);
    ng->prev = g;
    ng->next = after;
    if (after) after->prev = ng;
    g->next = ng;
    top_lock_.unlock();

    // Find the split point (keep the lower half in g).
    std::uint32_t keep = g->count / 2;
    Item* mid = g->first;
    for (std::uint32_t i = 1; i < keep; ++i) mid = mid->next;
    Item* moved = mid->next;
    mid->next = nullptr;
    ng->first = moved;
    ng->last = g->last;
    g->last = mid;
    moved->prev = nullptr;
    ng->count = g->count - keep;
    g->count = keep;

    std::uint64_t t = kAppendGap;
    for (Item* it = moved; it; it = it->next, t += kAppendGap) {
      it->group.store(ng, std::memory_order_relaxed);
      it->subtag.store(t, std::memory_order_relaxed);
    }
    t = kAppendGap;
    for (Item* it = g->first; it; it = it->next, t += kAppendGap) {
      it->subtag.store(t, std::memory_order_relaxed);
    }

    if (x->group.load(std::memory_order_relaxed) == ng) {
      g->lock.unlock();
      holder = ng;
    } else {
      ng->lock.unlock();
    }
  } else {
    // Local subtag redistribution: plenty of 64-bit space for <= 64 items.
    std::uint64_t t = kAppendGap;
    for (Item* it = g->first; it; it = it->next, t += kAppendGap) {
      it->subtag.store(t, std::memory_order_relaxed);
    }
  }

  std::atomic_thread_fence(std::memory_order_release);
  version_.store(v + 2, std::memory_order_release);
  struct_lock_.unlock();
  return holder;
}

void List::relabel_top() {
  // Caller holds top_lock_ and the seqlock window is already open.
  std::size_t n = 0;
  for (Group* g = head_; g; g = g->next) ++n;
  const std::uint64_t spacing = kMaxTag / (n + 2);
  PINT_CHECK_MSG(spacing >= 2, "too many OM groups to relabel");
  // Every group's tag changes, so every sublist's coordinate version must
  // bump (before the tag stores, same reasoning as make_gap).
  for (Group* g = head_; g; g = g->next) {
    g->version.fetch_add(1, std::memory_order_relaxed);
  }
  std::uint64_t t = spacing;
  for (Group* g = head_; g; g = g->next, t += spacing) {
    g->tag.store(t, std::memory_order_relaxed);
  }
}

bool List::precedes(const Item* a, const Item* b) const {
  if (a == b) return false;
  Backoff bo;
  for (;;) {
    const std::uint64_t v1 = version_.load(std::memory_order_acquire);
    if (v1 & 1) {
      bo.pause();
      continue;
    }
    const Group* ga = a->group.load(std::memory_order_relaxed);
    const Group* gb = b->group.load(std::memory_order_relaxed);
    const std::uint64_t ta = ga->tag.load(std::memory_order_relaxed);
    const std::uint64_t tb = gb->tag.load(std::memory_order_relaxed);
    const std::uint64_t sa = a->subtag.load(std::memory_order_relaxed);
    const std::uint64_t sb = b->subtag.load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (version_.load(std::memory_order_relaxed) == v1) {
      return ta < tb || (ta == tb && sa < sb);
    }
    bo.pause();
  }
}

bool List::check_invariants() const {
  std::size_t items = 0;
  std::uint64_t prev_tag = 0;
  bool first_group = true;
  for (const Group* g = head_; g; g = g->next) {
    const std::uint64_t t = g->tag.load(std::memory_order_relaxed);
    if (!first_group && t <= prev_tag) return false;
    first_group = false;
    prev_tag = t;
    if (g->next && g->next->prev != g) return false;

    std::uint32_t n = 0;
    std::uint64_t prev_sub = 0;
    const Item* prev_item = nullptr;
    for (const Item* it = g->first; it; it = it->next) {
      if (it->group.load(std::memory_order_relaxed) != g) return false;
      const std::uint64_t s = it->subtag.load(std::memory_order_relaxed);
      if (prev_item && s <= prev_sub) return false;
      if (it->prev != prev_item) return false;
      prev_item = it;
      prev_sub = s;
      ++n;
      ++items;
    }
    if (g->last != prev_item) return false;
    if (n != g->count) return false;
  }
  return items == size();
}

}  // namespace pint::om
