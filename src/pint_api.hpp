#pragma once

// PINT public API - the single stable header for embedders.
//
// Everything an instrumented program needs lives here: the detector factory
// (`DetectorKind` / `DetectorSpec` / `make_detector`), the shared options +
// result types (`detect::CommonOptions`, `detect::Tuning`,
// `detect::RunResult`), the instrumentation facade (record_read/record_write,
// lock_acquire/lock_release, dmalloc/dfree and the PINT_* macros below), and
// the fork-join runtime (rt::SpawnScope, parallel_for).  Sub-headers under
// src/ remain includable but are NOT a stability boundary; this header is
// the only stable entry point (the old `pint.hpp` alias is gone).
//
// Quickstart:
//
//   #include "pint_api.hpp"
//
//   void work(std::vector<long>& v) {
//     pint::rt::SpawnScope sc;             // a Cilk sync block
//     sc.spawn([&] {
//       PINT_WRITE(&v[0], 8);              // instrument accesses
//       v[0] = 1;
//     });
//     PINT_WRITE(&v[0], 8);                // races with the child!
//     v[0] = 2;
//     sc.sync();                           // (also implicit in ~SpawnScope)
//   }
//
//   int main() {
//     std::vector<long> v(1);
//     pint::DetectorSpec spec;             // defaults: PINT, 1 core worker
//     spec.workers = 4;                    // + 3 treap workers
//     auto det = pint::make_detector(spec);
//     det->run([&] { work(v); });
//     return det->reporter().any() ? 1 : 0;
//   }
//
// Mutex-guarded programs: wrap acquire/release in PINT_LOCK_ACQUIRE /
// PINT_LOCK_RELEASE (or use detect-aware guards like InstrumentedLockGuard);
// two parallel accesses whose segments held a common lock are then filtered
// out of the race set (DESIGN.md §12).

#include <functional>
#include <memory>

#include "cracer/cracer_detector.hpp"
#include "detect/instrument.hpp"
#include "detect/run_result.hpp"
#include "detect/tuning.hpp"
#include "kernels/kernels.hpp"
#include "oracle/oracle_detector.hpp"
#include "pint/pint_detector.hpp"
#include "runtime/parallel_for.hpp"
#include "runtime/scheduler.hpp"
#include "stint/stint_detector.hpp"
#include "support/telemetry.hpp"

namespace pint {

/// Which detector implementation make_detector() builds.
enum class DetectorKind {
  kPint,    ///< the paper's parallel interval-based detector
  kStint,   ///< sequential interval baseline (ALENEX'22)
  kCracer,  ///< per-access shadow-memory baseline (SPAA'16)
  kOracle,  ///< exact test oracle: one worker, every accessor kept
};

inline const char* detector_kind_name(DetectorKind k) {
  switch (k) {
    case DetectorKind::kPint: return "PINT";
    case DetectorKind::kStint: return "STINT";
    case DetectorKind::kCracer: return "C-RACER";
    case DetectorKind::kOracle: return "oracle";
  }
  return "?";
}

/// One spec for any detector.  The common block (seed, coalesce, history
/// store, tuning) applies everywhere; the remaining knobs map onto the
/// detector that understands them and are ignored by the others.
struct DetectorSpec {
  DetectorKind kind = DetectorKind::kPint;
  /// Shared knobs, including detect::Tuning (bulk apply, cursor policy,
  /// memo, lock edges) - see detect/run_result.hpp.
  detect::CommonOptions common;
  /// Program workers: PINT core workers / C-RACER workers.  STINT and the
  /// oracle are sequential by construction and ignore it.
  int workers = 1;
  /// PINT only: false = the paper's phased one-core history mode.
  bool parallel_history = true;
  /// PINT only: 0 = the paper's 3 role workers, N > 0 = address-sharded.
  int history_shards = 0;
};

/// Builds the requested detector behind the uniform run/reporter/stats seam.
std::unique_ptr<detect::DetectorRunner> make_detector(const DetectorSpec& spec);

}  // namespace pint

// ---------------------------------------------------------------------------
// Instrumentation macros (the Tapir-pass substitute, spelled as macros so an
// uninstrumented build can compile them away with -DPINT_DISABLE_INSTRUMENT).
// ---------------------------------------------------------------------------

#ifndef PINT_DISABLE_INSTRUMENT
#define PINT_READ(ptr, bytes) ::pint::record_read((ptr), (bytes))
#define PINT_WRITE(ptr, bytes) ::pint::record_write((ptr), (bytes))
#define PINT_LOCK_ACQUIRE(mutex_ptr) ::pint::lock_acquire((mutex_ptr))
#define PINT_LOCK_RELEASE(mutex_ptr) ::pint::lock_release((mutex_ptr))
#else
#define PINT_READ(ptr, bytes) ((void)0)
#define PINT_WRITE(ptr, bytes) ((void)0)
#define PINT_LOCK_ACQUIRE(mutex_ptr) ((void)0)
#define PINT_LOCK_RELEASE(mutex_ptr) ((void)0)
#endif
