#pragma once

// Shadow memory for C-RACER: the conventional hashmap-based access history
// the paper compares against.
//
// Address space is covered at a fixed granule (8 bytes).  Each granule's
// shadow cell stores the classic triple for parallel SP race detection
// (Mellor-Crummey '91): last writer, left-most reader, right-most reader -
// each as {reachability label, strand id}.  Cells are located through a
// two-level scheme: an open-addressing page table from 4 KiB page keys to
// lazily-allocated shadow pages.  Page lookups are lock-free once a page
// exists; each cell carries its own spinlock byte for concurrent updates
// from parallel strands.

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "detect/lockset.hpp"
#include "detect/types.hpp"
#include "reach/engine.hpp"
#include "support/assert.hpp"
#include "support/spinlock.hpp"

namespace pint::cracer {

struct AccessorRec {
  reach::Engine::Label label;
  std::uint64_t sid = 0;        // 0 = empty
  const char* tag = nullptr;    // task name from named spawns, for reports
  detect::lockset_t lsid = 0;   // lockset held during this segment
};

struct ShadowCell {
  Spinlock lock;
  AccessorRec writer;
  AccessorRec lreader;
  AccessorRec rreader;
};

class ShadowMemory {
 public:
  static constexpr std::size_t kGranuleBytes = 8;
  static constexpr std::size_t kPageBytes = 4096;
  static constexpr std::size_t kCellsPerPage = kPageBytes / kGranuleBytes;

  explicit ShadowMemory(std::size_t table_pow2 = std::size_t(1) << 16)
      : mask_(table_pow2 - 1), table_(new Entry[table_pow2]) {
    PINT_CHECK_MSG((table_pow2 & mask_) == 0, "table size must be a power of 2");
  }
  ~ShadowMemory() {
    for (Page* p : pages_) delete p;
  }
  ShadowMemory(const ShadowMemory&) = delete;
  ShadowMemory& operator=(const ShadowMemory&) = delete;

  /// Invokes fn(cell) for every granule cell covering [lo, hi], allocating
  /// shadow pages on demand. The callback runs WITHOUT the cell lock; take
  /// it inside.
  template <class F>
  void for_cells(detect::addr_t lo, detect::addr_t hi, F&& fn) {
    detect::addr_t g = lo / kGranuleBytes;
    const detect::addr_t gend = hi / kGranuleBytes;
    Page* page = nullptr;
    detect::addr_t page_key = ~detect::addr_t(0);
    for (; g <= gend; ++g) {
      const detect::addr_t key = (g * kGranuleBytes) / kPageBytes;
      if (key != page_key) {
        page = lookup_or_create(key);
        page_key = key;
      }
      fn(page->cells[g % kCellsPerPage]);
    }
  }

  /// Clears (zeroes) every cell covering [lo, hi] in *existing* pages.
  void clear_range(detect::addr_t lo, detect::addr_t hi) {
    detect::addr_t g = lo / kGranuleBytes;
    const detect::addr_t gend = hi / kGranuleBytes;
    Page* page = nullptr;
    detect::addr_t page_key = ~detect::addr_t(0);
    for (; g <= gend; ++g) {
      const detect::addr_t key = (g * kGranuleBytes) / kPageBytes;
      if (key != page_key) {
        page = lookup(key);
        page_key = key;
      }
      if (page == nullptr) {
        // Skip to the next page boundary.
        g = (key + 1) * (kPageBytes / kGranuleBytes) - 1;
        continue;
      }
      ShadowCell& c = page->cells[g % kCellsPerPage];
      LockGuard<Spinlock> guard(c.lock);
      // sids are probed without the lock (detector fast paths): store them
      // atomically.
      c.writer.label = {};
      c.writer.lsid = 0;
      std::atomic_ref<std::uint64_t>(c.writer.sid).store(0, std::memory_order_relaxed);
      c.lreader.label = {};
      c.lreader.lsid = 0;
      std::atomic_ref<std::uint64_t>(c.lreader.sid).store(0, std::memory_order_relaxed);
      c.rreader.label = {};
      c.rreader.lsid = 0;
      std::atomic_ref<std::uint64_t>(c.rreader.sid).store(0, std::memory_order_relaxed);
    }
  }

  std::size_t pages_allocated() const {
    return page_count_.load(std::memory_order_relaxed);
  }

 private:
  struct Page {
    ShadowCell cells[kCellsPerPage];
  };
  struct Entry {
    std::atomic<detect::addr_t> key{0};  // page key + 1 (0 = empty)
    std::atomic<Page*> page{nullptr};
  };

  Page* lookup(detect::addr_t key) {
    const detect::addr_t stored = key + 1;
    std::size_t i = hash(key) & mask_;
    for (;;) {
      const detect::addr_t k = table_[i].key.load(std::memory_order_acquire);
      if (k == stored) {
        Page* p = table_[i].page.load(std::memory_order_acquire);
        if (p != nullptr) return p;  // fully published
        // Another thread is mid-install; treat as present and spin briefly.
        Backoff bo;
        while ((p = table_[i].page.load(std::memory_order_acquire)) == nullptr)
          bo.pause();
        return p;
      }
      if (k == 0) return nullptr;
      i = (i + 1) & mask_;
    }
  }

  Page* lookup_or_create(detect::addr_t key) {
    const detect::addr_t stored = key + 1;
    std::size_t i = hash(key) & mask_;
    std::size_t probes = 0;
    for (;;) {
      detect::addr_t k = table_[i].key.load(std::memory_order_acquire);
      if (k == stored) {
        Page* p = table_[i].page.load(std::memory_order_acquire);
        if (p != nullptr) return p;
        Backoff bo;
        while ((p = table_[i].page.load(std::memory_order_acquire)) == nullptr)
          bo.pause();
        return p;
      }
      if (k == 0) {
        detect::addr_t expected = 0;
        if (table_[i].key.compare_exchange_strong(expected, stored,
                                                  std::memory_order_acq_rel)) {
          Page* p = new Page();
          {
            LockGuard<Spinlock> g(pages_mu_);
            pages_.push_back(p);
          }
          page_count_.fetch_add(1, std::memory_order_relaxed);
          table_[i].page.store(p, std::memory_order_release);
          return p;
        }
        continue;  // someone claimed the slot; re-read it
      }
      i = (i + 1) & mask_;
      PINT_CHECK_MSG(++probes <= mask_, "shadow page table full");
    }
  }

  static std::size_t hash(detect::addr_t key) {
    std::uint64_t h = key * 0x9e3779b97f4a7c15ULL;
    return std::size_t(h ^ (h >> 29));
  }

  const std::size_t mask_;
  std::unique_ptr<Entry[]> table_;
  Spinlock pages_mu_;
  std::vector<Page*> pages_;
  std::atomic<std::size_t> page_count_{0};
};

}  // namespace pint::cracer
