#include "cracer/cracer_detector.hpp"

#include <cstdlib>

#include "detect/instrument.hpp"

#include <atomic>

namespace pint::cracer {

namespace {
/// Per-worker access counters (plain fields: one writer each).
struct WsCount {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
};

/// Cell sids are probed without the cell lock (fast paths), so publication
/// must be atomic. Stores happen under the lock; the probe is relaxed - a
/// stale value only misses the fast path, never skips a needed update.
std::uint64_t peek_sid(const AccessorRec& r) {
  return std::atomic_ref<std::uint64_t>(const_cast<std::uint64_t&>(r.sid))
      .load(std::memory_order_relaxed);
}
void set_rec(AccessorRec& dst, const AccessorRec& src) {
  dst.label = src.label;
  dst.tag = src.tag;
  dst.lsid = src.lsid;
  std::atomic_ref<std::uint64_t>(dst.sid).store(src.sid,
                                                std::memory_order_relaxed);
}

/// Conflict filter: skip the (dearer) reachability query when both sides'
/// segments held a common mutex - the pair cannot be a race either way.
bool lock_guarded(const AccessorRec& prev, const AccessorRec& me) {
  return detect::locksets_share(prev.lsid, me.lsid);
}
}  // namespace

CracerDetector::CracerDetector(const Options& opt)
    : opt_(opt), shadow_(opt.shadow_table_pow2) {
  rep_.set_verbose(opt_.verbose_races);
}

AccessorRec* CracerDetector::alloc_strand(const reach::Engine::Label& label,
                                          const char* tag,
                                          detect::lockset_t lsid) {
  LockGuard<Spinlock> g(arena_mu_);
  arena_.push_back({label,
                    next_sid_.fetch_add(1, std::memory_order_relaxed) + 1, tag,
                    lsid});
  strands_.fetch_add(1, std::memory_order_relaxed);
  return &arena_.back();
}

// ---------------------------------------------------------------------------
// Shadow-cell protocol (Mellor-Crummey '91 triple, WSP-Order reachability)
// ---------------------------------------------------------------------------

void CracerDetector::read_cell(ShadowCell& c, const AccessorRec& me) {
  // Fast path: this strand is already recorded as a reader of the cell, so
  // re-reading changes nothing (any conflicting writer since then reports
  // the race from its own write_cell check).
  if (peek_sid(c.lreader) == me.sid || peek_sid(c.rreader) == me.sid) return;
  LockGuard<Spinlock> g(c.lock);
  if (c.writer.sid != 0 && c.writer.sid != me.sid &&
      !lock_guarded(c.writer, me)) {
    stats_.reach_queries.fetch_add(1, std::memory_order_relaxed);
    if (reach_.parallel(c.writer.label, me.label)) {
      rep_.report(c.writer.sid, /*prev_write=*/true, me.sid,
                  /*cur_write=*/false, 0, 0, c.writer.tag, me.tag);
    }
  }
  if (c.lreader.sid == 0) {
    set_rec(c.lreader, me);
    set_rec(c.rreader, me);
    return;
  }
  if (c.lreader.sid == me.sid || c.rreader.sid == me.sid) return;
  stats_.reach_queries.fetch_add(2, std::memory_order_relaxed);
  if (reach_.precedes(c.lreader.label, me.label) &&
      reach_.precedes(c.rreader.label, me.label)) {
    // In series after every recorded parallel reader: me replaces the set.
    set_rec(c.lreader, me);
    set_rec(c.rreader, me);
    return;
  }
  // Otherwise keep the extremes in English (depth-first execution) order.
  if (reach_.left_of(me.label, c.lreader.label)) set_rec(c.lreader, me);
  if (reach_.left_of(c.rreader.label, me.label)) set_rec(c.rreader, me);
}

void CracerDetector::write_cell(ShadowCell& c, const AccessorRec& me) {
  // Fast path: this strand is already the last writer; a repeated write
  // changes nothing (conflicting readers/writers report from their side).
  if (peek_sid(c.writer) == me.sid) return;
  LockGuard<Spinlock> g(c.lock);
  if (c.writer.sid != 0 && c.writer.sid != me.sid &&
      !lock_guarded(c.writer, me)) {
    stats_.reach_queries.fetch_add(1, std::memory_order_relaxed);
    if (reach_.parallel(c.writer.label, me.label)) {
      rep_.report(c.writer.sid, true, me.sid, true, 0, 0, c.writer.tag,
                  me.tag);
    }
  }
  if (c.lreader.sid != 0 && c.lreader.sid != me.sid &&
      !lock_guarded(c.lreader, me)) {
    stats_.reach_queries.fetch_add(1, std::memory_order_relaxed);
    if (reach_.parallel(c.lreader.label, me.label)) {
      rep_.report(c.lreader.sid, false, me.sid, true, 0, 0, c.lreader.tag,
                  me.tag);
    }
  }
  if (c.rreader.sid != 0 && c.rreader.sid != me.sid &&
      c.rreader.sid != c.lreader.sid && !lock_guarded(c.rreader, me)) {
    stats_.reach_queries.fetch_add(1, std::memory_order_relaxed);
    if (reach_.parallel(c.rreader.label, me.label)) {
      rep_.report(c.rreader.sid, false, me.sid, true, 0, 0, c.rreader.tag,
                  me.tag);
    }
  }
  set_rec(c.writer, me);
}

// ---------------------------------------------------------------------------
// Memory events
// ---------------------------------------------------------------------------

void CracerDetector::on_access(rt::Worker& w, rt::TaskFrame& f,
                               detect::addr_t lo, detect::addr_t hi,
                               bool is_write) {
  auto* me = static_cast<AccessorRec*>(f.det_strand);
  PINT_ASSERT(me != nullptr);
  auto* cnt = static_cast<WsCount*>(w.det_worker);
  if (is_write) {
    ++cnt->writes;
    shadow_.for_cells(lo, hi, [&](ShadowCell& c) { write_cell(c, *me); });
  } else {
    ++cnt->reads;
    shadow_.for_cells(lo, hi, [&](ShadowCell& c) { read_cell(c, *me); });
  }
}

void CracerDetector::on_heap_free(rt::Worker&, rt::TaskFrame&, void* base,
                                  detect::addr_t lo, detect::addr_t hi) {
  // Synchronous detector: clear the history for the block, then free.
  shadow_.clear_range(lo, hi);
  std::free(base);
}

// ---------------------------------------------------------------------------
// Control events (reachability labels only; no traces, no queues)
// ---------------------------------------------------------------------------

void CracerDetector::on_root_start(rt::Worker&, rt::TaskFrame& f) {
  f.det_strand = alloc_strand(reach_.root_label(), f.task_name);
}

void CracerDetector::on_spawn(rt::Worker&, rt::TaskFrame& parent,
                              rt::SyncBlock& blk, rt::TaskFrame& child) {
  auto* u = static_cast<AccessorRec*>(parent.det_strand);
  auto* j = static_cast<AccessorRec*>(blk.det_sync);
  if (j == nullptr) {
    j = alloc_strand({}, parent.task_name);
    blk.det_sync = j;
  }
  const auto labels = reach_.on_spawn(u->label, &j->label);
  // Lockset rule (same as every detector): the continuation inherits the
  // parent's held locks, the child starts empty.
  child.det_strand = alloc_strand(labels.child, child.task_name);
  parent.det_cont = alloc_strand(labels.cont, parent.task_name, u->lsid);
}

void CracerDetector::on_lock_event(rt::TaskFrame& f, detect::addr_t lock,
                                   bool acquire) {
  auto* u = static_cast<AccessorRec*>(f.det_strand);
  PINT_ASSERT(u != nullptr);
  auto& tbl = detect::LocksetTable::instance();
  const detect::lockset_t nid =
      acquire ? tbl.acquire(u->lsid, lock) : tbl.release(u->lsid, lock);
  if (nid == u->lsid) return;
  // Continue under the same label with a FRESH sid: the per-cell fast paths
  // dedup on sid, so the new segment's accesses re-record with the new
  // lockset; same-label segments are never judged parallel to each other.
  f.det_strand = alloc_strand(u->label, u->tag, nid);
}

void CracerDetector::on_lock_acquire(rt::Worker&, rt::TaskFrame& f,
                                     detect::addr_t lock) {
  if (!opt_.tuning.lock_edges) return;
  on_lock_event(f, lock, true);
}

void CracerDetector::on_lock_release(rt::Worker&, rt::TaskFrame& f,
                                     detect::addr_t lock) {
  if (!opt_.tuning.lock_edges) return;
  on_lock_event(f, lock, false);
}

void CracerDetector::on_spawn_return(rt::Worker&, rt::TaskFrame& child, bool) {
  // The spawned function's stack dies; clear it before the fiber is pooled
  // (synchronously - the runtime reuses the fiber only after this returns).
  shadow_.clear_range(child.fiber->stack_lo(), child.fiber->stack_hi() - 1);
}

void CracerDetector::on_continuation(rt::Worker&, rt::TaskFrame& parent,
                                     bool stolen) {
  PINT_ASSERT(parent.det_cont != nullptr);
  auto* t = static_cast<AccessorRec*>(parent.det_cont);
  // Steal maintenance for the reachability engine (no-op for both current
  // backends - their labels are globally valid; seam contract).
  if (stolen) reach_.on_steal(t->label);
  parent.det_strand = t;
  parent.det_cont = nullptr;
}

void CracerDetector::on_after_sync(rt::Worker&, rt::TaskFrame& f,
                                   rt::SyncBlock& blk, bool) {
  auto* j = static_cast<AccessorRec*>(blk.det_sync);
  if (j == nullptr) return;
  // Join maintenance (no-op for both current backends; seam contract).
  reach_.on_join(static_cast<AccessorRec*>(f.det_strand)->label, j->label);
  f.det_strand = j;
  blk.det_sync = nullptr;
}

// ---------------------------------------------------------------------------
// Run
// ---------------------------------------------------------------------------

detect::RunResult CracerDetector::run(std::function<void()> fn) {
  PINT_CHECK_MSG(!used_, "CracerDetector instances are single-use");
  used_ = true;
  opt_.tuning.apply_globals();

  rt::Scheduler::Options so;
  so.workers = opt_.workers;
  so.hooks = this;
  so.stack_bytes = opt_.stack_bytes;
  so.seed = opt_.seed;
  rt::Scheduler sched(so);

  std::vector<WsCount> counts(std::size_t(opt_.workers));
  for (int i = 0; i < opt_.workers; ++i) {
    sched.worker(i).det_worker = &counts[std::size_t(i)];
  }

  detect::set_active_detector(this);
  Timer total;
  sched.run([&] { fn(); });
  stats_.total_ns.store(total.elapsed_ns());
  stats_.core_ns.store(total.elapsed_ns());
  detect::set_active_detector(nullptr);

  for (const WsCount& c : counts) {
    stats_.raw_reads.fetch_add(c.reads);
    stats_.raw_writes.fetch_add(c.writes);
  }
  stats_.strands.store(strands_.load());
  stats_.steals.store(sched.total_steals());
  return {};
}

}  // namespace pint::cracer
