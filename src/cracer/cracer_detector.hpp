#pragma once

// C-RACER baseline (Utterback et al., SPAA'16): the state-of-the-art
// *parallel* race detector with conventional hashmap-style access history.
//
// Same reachability engine as PINT (WSP-Order / SP-order labels), but the
// access history is shadow memory queried and updated *synchronously at
// every memory access* - the cost profile PINT's interval-based history is
// designed to beat.  Because checks are per-access, strands need no interval
// buffers; each strand is just a label + id, allocated from an arena and
// referenced by shadow cells for the rest of the run.

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>

#include "cracer/shadow.hpp"
#include "detect/detector.hpp"
#include "detect/report.hpp"
#include "detect/run_result.hpp"
#include "detect/stats.hpp"
#include "reach/engine.hpp"
#include "runtime/scheduler.hpp"
#include "support/spinlock.hpp"
#include "support/timer.hpp"

namespace pint::cracer {

class CracerDetector final : public detect::Detector,
                             public detect::DetectorRunner,
                             public rt::SchedulerHooks {
 public:
  /// The shared `coalesce`/`history` knobs are inert here: C-RACER checks at
  /// every access, so there is nothing to coalesce and no interval store.
  struct Options : detect::CommonOptions {
    int workers = 1;
    std::size_t shadow_table_pow2 = std::size_t(1) << 16;
  };

  CracerDetector() : CracerDetector(Options{}) {}
  explicit CracerDetector(const Options& opt);

  /// Executes fn() in parallel under per-access race detection. Single-use.
  /// The synchronous design cannot degrade: the result is always kOk.
  detect::RunResult run(std::function<void()> fn) override;

  detect::RaceReporter& reporter() override { return rep_; }
  const detect::Stats& stats() const override { return stats_; }

  // --- detect::Detector ---
  void on_access(rt::Worker& w, rt::TaskFrame& f, detect::addr_t lo,
                 detect::addr_t hi, bool is_write) override;
  void on_heap_free(rt::Worker& w, rt::TaskFrame& f, void* base,
                    detect::addr_t lo, detect::addr_t hi) override;
  void on_lock_acquire(rt::Worker& w, rt::TaskFrame& f,
                       detect::addr_t lock) override;
  void on_lock_release(rt::Worker& w, rt::TaskFrame& f,
                       detect::addr_t lock) override;
  const char* name() const override { return "C-RACER"; }

  // --- rt::SchedulerHooks ---
  void on_root_start(rt::Worker& w, rt::TaskFrame& f) override;
  void on_spawn(rt::Worker& w, rt::TaskFrame& parent, rt::SyncBlock& blk,
                rt::TaskFrame& child) override;
  void on_spawn_return(rt::Worker& w, rt::TaskFrame& child,
                       bool continuation_stolen) override;
  void on_continuation(rt::Worker& w, rt::TaskFrame& parent, bool stolen) override;
  void on_after_sync(rt::Worker& w, rt::TaskFrame& f, rt::SyncBlock& blk,
                     bool trivial) override;

 private:
  AccessorRec* alloc_strand(const reach::Engine::Label& label, const char* tag,
                            detect::lockset_t lsid = 0);
  void read_cell(ShadowCell& c, const AccessorRec& me);
  void write_cell(ShadowCell& c, const AccessorRec& me);
  void on_lock_event(rt::TaskFrame& f, detect::addr_t lock, bool acquire);

  Options opt_;
  reach::Engine reach_;
  detect::RaceReporter rep_;
  detect::Stats stats_;
  ShadowMemory shadow_;

  // Strand arena: labels/ids live in shadow cells for the whole run.
  Spinlock arena_mu_;
  std::deque<AccessorRec> arena_;
  std::atomic<std::uint64_t> next_sid_{0};
  std::atomic<std::uint64_t> strands_{0};
  bool used_ = false;
};

}  // namespace pint::cracer
