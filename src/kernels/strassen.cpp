// stra / straz: Strassen's matrix multiplication, C += A * B.
//
// The seven recursive products run in parallel, each into a dmalloc'd
// temporary (this is the suite's heavy exerciser of PINT's deferred-free
// machinery); the quadrant combines run as four parallel accumulations.
//
// Two memory layouts, as in the paper:
//   stra  - plain row-major (interval = one row segment)
//   straz - Morton-style tiled layout: contiguous kTile x kTile tiles, so a
//           base-case operand is a single large interval
// The layout is a template policy so both kernels share one recursion.

#include <cmath>
#include <cstring>
#include <memory>
#include <string>

#include "detect/instrument.hpp"
#include "kernels/dense.hpp"
#include "kernels/kernels.hpp"
#include "runtime/scheduler.hpp"
#include "support/rng.hpp"

namespace pint::kernels {

namespace {

// --------------------------------------------------------------------------
// Layout policies
// --------------------------------------------------------------------------

struct RowMajorPolicy {
  using Blk = Block;
  /// Units are elements per side; stop recursion at 32x32.
  static constexpr std::size_t kStop = 32;

  static Blk quad(Blk b, std::size_t qi, std::size_t qj, std::size_t half) {
    return b.quad(qi, qj, half);
  }
  static Blk alloc_temp(std::size_t h) {
    auto* p = static_cast<double*>(dmalloc(h * h * sizeof(double)));
    std::memset(p, 0, h * h * sizeof(double));
    touch_write(p, h * h);
    return {p, h};
  }
  static void free_temp(Blk b) { dfree(b.base); }

  static void add2(Blk d, Blk x, Blk y, double sign, std::size_t h) {
    for (std::size_t i = 0; i < h; ++i) {
      const double *xr = x.row(i), *yr = y.row(i);
      double* dr = d.row(i);
      for (std::size_t j = 0; j < h; ++j) {
        touch_read(&xr[j], 1);
        touch_read(&yr[j], 1);
        touch_write(&dr[j], 1);
        dr[j] = xr[j] + sign * yr[j];
      }
    }
  }
  static void accum(Blk c, Blk m, double sign, std::size_t h) {
    for (std::size_t i = 0; i < h; ++i) {
      const double* mr = m.row(i);
      double* cr = c.row(i);
      for (std::size_t j = 0; j < h; ++j) {
        touch_read(&mr[j], 1);
        touch_read(&cr[j], 1);
        touch_write(&cr[j], 1);
        cr[j] += sign * mr[j];
      }
    }
  }
  static void base_mul(Blk c, Blk a, Blk b, std::size_t n) {
    gemm_base(c, a, b, n);
  }
};

struct TiledPolicy {
  static constexpr std::size_t kTile = 16;
  static constexpr std::size_t kTileElems = kTile * kTile;
  /// Units are tiles per side; stop at a 2x2 tile grid.
  static constexpr std::size_t kStop = 2;

  struct Blk {
    double* base;     // first tile of the block
    std::size_t tld;  // leading dimension, in tiles
  };

  static double* tile(Blk b, std::size_t ti, std::size_t tj) {
    return b.base + (ti * b.tld + tj) * kTileElems;
  }
  static Blk quad(Blk b, std::size_t qi, std::size_t qj, std::size_t half) {
    return {b.base + (qi * half * b.tld + qj * half) * kTileElems, b.tld};
  }
  static Blk alloc_temp(std::size_t t) {
    auto* p = static_cast<double*>(dmalloc(t * t * kTileElems * sizeof(double)));
    std::memset(p, 0, t * t * kTileElems * sizeof(double));
    touch_write(p, t * t * kTileElems);
    return {p, t};
  }
  static void free_temp(Blk b) { dfree(b.base); }

  static void add2(Blk d, Blk x, Blk y, double sign, std::size_t t) {
    for (std::size_t ti = 0; ti < t; ++ti) {
      for (std::size_t tj = 0; tj < t; ++tj) {
        const double *xt = tile(x, ti, tj), *yt = tile(y, ti, tj);
        double* dt = tile(d, ti, tj);
        for (std::size_t e = 0; e < kTileElems; ++e) {
          touch_read(&xt[e], 1);
          touch_read(&yt[e], 1);
          touch_write(&dt[e], 1);
          dt[e] = xt[e] + sign * yt[e];
        }
      }
    }
  }
  static void accum(Blk c, Blk m, double sign, std::size_t t) {
    for (std::size_t ti = 0; ti < t; ++ti) {
      for (std::size_t tj = 0; tj < t; ++tj) {
        const double* mt = tile(m, ti, tj);
        double* ct = tile(c, ti, tj);
        for (std::size_t e = 0; e < kTileElems; ++e) {
          touch_read(&mt[e], 1);
          touch_read(&ct[e], 1);
          touch_write(&ct[e], 1);
          ct[e] += sign * mt[e];
        }
      }
    }
  }
  static void base_mul(Blk c, Blk a, Blk b, std::size_t t) {
    for (std::size_t ti = 0; ti < t; ++ti) {
      for (std::size_t tj = 0; tj < t; ++tj) {
        double* ct = tile(c, ti, tj);
        for (std::size_t tk = 0; tk < t; ++tk) {
          const double* at = tile(a, ti, tk);
          const double* bt = tile(b, tk, tj);
          for (std::size_t i = 0; i < kTile; ++i) {
            for (std::size_t k = 0; k < kTile; ++k) {
              touch_read(&at[i * kTile + k], 1);
              const double av = at[i * kTile + k];
              const double* br = bt + k * kTile;
              double* cr = ct + i * kTile;
              for (std::size_t j = 0; j < kTile; ++j) {
                touch_read(&br[j], 1);
                touch_read(&cr[j], 1);
                touch_write(&cr[j], 1);
                cr[j] += av * br[j];
              }
            }
          }
        }
      }
    }
  }
};

// --------------------------------------------------------------------------
// Layout-generic Strassen recursion
// --------------------------------------------------------------------------

template <class P>
void strassen_rec(typename P::Blk C, typename P::Blk A, typename P::Blk B,
                  std::size_t n, bool racy) {
  if (n <= P::kStop) {
    P::base_mul(C, A, B, n);
    return;
  }
  const std::size_t h = n / 2;
  const auto A11 = P::quad(A, 0, 0, h), A12 = P::quad(A, 0, 1, h);
  const auto A21 = P::quad(A, 1, 0, h), A22 = P::quad(A, 1, 1, h);
  const auto B11 = P::quad(B, 0, 0, h), B12 = P::quad(B, 0, 1, h);
  const auto B21 = P::quad(B, 1, 0, h), B22 = P::quad(B, 1, 1, h);
  const auto C11 = P::quad(C, 0, 0, h), C12 = P::quad(C, 0, 1, h);
  const auto C21 = P::quad(C, 1, 0, h), C22 = P::quad(C, 1, 1, h);

  const auto m1 = P::alloc_temp(h);
  // Seeded race: M2's product shares M1's buffer while both run in parallel.
  const auto m2 = racy ? m1 : P::alloc_temp(h);
  const auto m3 = P::alloc_temp(h), m4 = P::alloc_temp(h);
  const auto m5 = P::alloc_temp(h), m6 = P::alloc_temp(h);
  const auto m7 = P::alloc_temp(h);

  rt::SpawnScope sc;
  sc.spawn([=] {  // M1 = (A11 + A22)(B11 + B22)
    auto sa = P::alloc_temp(h), sb = P::alloc_temp(h);
    P::add2(sa, A11, A22, +1, h);
    P::add2(sb, B11, B22, +1, h);
    strassen_rec<P>(m1, sa, sb, h, racy);
    P::free_temp(sa);
    P::free_temp(sb);
  });
  sc.spawn([=] {  // M2 = (A21 + A22) B11
    auto sa = P::alloc_temp(h);
    P::add2(sa, A21, A22, +1, h);
    strassen_rec<P>(m2, sa, B11, h, racy);
    P::free_temp(sa);
  });
  sc.spawn([=] {  // M3 = A11 (B12 - B22)
    auto sb = P::alloc_temp(h);
    P::add2(sb, B12, B22, -1, h);
    strassen_rec<P>(m3, A11, sb, h, racy);
    P::free_temp(sb);
  });
  sc.spawn([=] {  // M4 = A22 (B21 - B11)
    auto sb = P::alloc_temp(h);
    P::add2(sb, B21, B11, -1, h);
    strassen_rec<P>(m4, A22, sb, h, racy);
    P::free_temp(sb);
  });
  sc.spawn([=] {  // M5 = (A11 + A12) B22
    auto sa = P::alloc_temp(h);
    P::add2(sa, A11, A12, +1, h);
    strassen_rec<P>(m5, sa, B22, h, racy);
    P::free_temp(sa);
  });
  sc.spawn([=] {  // M6 = (A21 - A11)(B11 + B12)
    auto sa = P::alloc_temp(h), sb = P::alloc_temp(h);
    P::add2(sa, A21, A11, -1, h);
    P::add2(sb, B11, B12, +1, h);
    strassen_rec<P>(m6, sa, sb, h, racy);
    P::free_temp(sa);
    P::free_temp(sb);
  });
  {  // M7 = (A12 - A22)(B21 + B22), on the spawning strand
    auto sa = P::alloc_temp(h), sb = P::alloc_temp(h);
    P::add2(sa, A12, A22, -1, h);
    P::add2(sb, B21, B22, +1, h);
    strassen_rec<P>(m7, sa, sb, h, racy);
    P::free_temp(sa);
    P::free_temp(sb);
  }
  sc.sync();

  sc.spawn([=] {  // C11 += M1 + M4 - M5 + M7
    P::accum(C11, m1, +1, h);
    P::accum(C11, m4, +1, h);
    P::accum(C11, m5, -1, h);
    P::accum(C11, m7, +1, h);
  });
  sc.spawn([=] {  // C12 += M3 + M5
    P::accum(C12, m3, +1, h);
    P::accum(C12, m5, +1, h);
  });
  sc.spawn([=] {  // C21 += M2 + M4
    P::accum(C21, m2, +1, h);
    P::accum(C21, m4, +1, h);
  });
  {  // C22 += M1 - M2 + M3 + M6
    P::accum(C22, m1, +1, h);
    P::accum(C22, m2, -1, h);
    P::accum(C22, m3, +1, h);
    P::accum(C22, m6, +1, h);
  }
  sc.sync();

  P::free_temp(m1);
  if (!racy) P::free_temp(m2);
  P::free_temp(m3);
  P::free_temp(m4);
  P::free_temp(m5);
  P::free_temp(m6);
  P::free_temp(m7);
}

std::size_t scaled_n(double scale) {
  const double target = 128.0 * std::cbrt(scale);
  std::size_t n = 64;
  while (n * 2 <= std::size_t(target + 0.5)) n *= 2;
  return n;
}

// --------------------------------------------------------------------------
// stra (row-major)
// --------------------------------------------------------------------------

class StraKernel final : public KernelInstance {
 public:
  explicit StraKernel(const KernelConfig& cfg) : cfg_(cfg), n_(scaled_n(cfg.scale)) {}
  const char* name() const override { return "stra"; }
  std::string config_string() const override {
    return "n=" + std::to_string(n_) + " b=" + std::to_string(RowMajorPolicy::kStop);
  }
  void prepare() override {
    Xoshiro256 rng(cfg_.seed);
    a_ = Matrix(n_, n_);
    b_ = Matrix(n_, n_);
    c_ = Matrix(n_, n_);
    a_.fill_random(rng);
    b_.fill_random(rng);
  }
  void run() override {
    strassen_rec<RowMajorPolicy>({c_.row(0), n_}, {a_.row(0), n_},
                                 {b_.row(0), n_}, n_, cfg_.seeded_race);
  }
  bool verify() override {
    Xoshiro256 rng(cfg_.seed ^ 0x5757);
    for (int t = 0; t < 32; ++t) {
      const std::size_t i = rng.next_below(n_), j = rng.next_below(n_);
      double ref = 0.0;
      for (std::size_t k = 0; k < n_; ++k) ref += a_.at(i, k) * b_.at(k, j);
      if (!nearly_equal(ref, c_.at(i, j), 1e-5)) return false;
    }
    return true;
  }

 private:
  KernelConfig cfg_;
  std::size_t n_;
  Matrix a_, b_, c_;
};

// --------------------------------------------------------------------------
// straz (tiled / Morton-style layout)
// --------------------------------------------------------------------------

class StrazKernel final : public KernelInstance {
 public:
  explicit StrazKernel(const KernelConfig& cfg) : cfg_(cfg), n_(scaled_n(cfg.scale)) {
    tiles_ = n_ / TiledPolicy::kTile;
  }
  const char* name() const override { return "straz"; }
  std::string config_string() const override {
    return "n=" + std::to_string(n_) +
           " tile=" + std::to_string(TiledPolicy::kTile);
  }
  void prepare() override {
    Xoshiro256 rng(cfg_.seed);
    const std::size_t total = n_ * n_;
    a_.assign(total, 0.0);
    b_.assign(total, 0.0);
    c_.assign(total, 0.0);
    for (double& v : a_) v = -1.0 + 2.0 * rng.next_double();
    for (double& v : b_) v = -1.0 + 2.0 * rng.next_double();
  }
  void run() override {
    strassen_rec<TiledPolicy>({c_.data(), tiles_}, {a_.data(), tiles_},
                              {b_.data(), tiles_}, tiles_, cfg_.seeded_race);
  }
  bool verify() override {
    Xoshiro256 rng(cfg_.seed ^ 0x5a5a);
    for (int t = 0; t < 32; ++t) {
      const std::size_t i = rng.next_below(n_), j = rng.next_below(n_);
      double ref = 0.0;
      for (std::size_t k = 0; k < n_; ++k) ref += tat(a_, i, k) * tat(b_, k, j);
      if (!nearly_equal(ref, tat(c_, i, j), 1e-5)) return false;
    }
    return true;
  }

 private:
  double tat(const std::vector<double>& m, std::size_t i, std::size_t j) const {
    constexpr std::size_t kT = TiledPolicy::kTile;
    const std::size_t ti = i / kT, tj = j / kT;
    return m[(ti * tiles_ + tj) * TiledPolicy::kTileElems + (i % kT) * kT +
             (j % kT)];
  }
  KernelConfig cfg_;
  std::size_t n_, tiles_;
  std::vector<double> a_, b_, c_;
};

}  // namespace

std::unique_ptr<KernelInstance> make_stra(const KernelConfig& cfg) {
  return std::make_unique<StraKernel>(cfg);
}
std::unique_ptr<KernelInstance> make_straz(const KernelConfig& cfg) {
  return std::make_unique<StrazKernel>(cfg);
}

}  // namespace pint::kernels
