// mmul: cache-oblivious divide-and-conquer matrix multiplication C = A * B.
//
// Each recursion level splits into two serialized phases of four parallel
// quadrant updates (the two phases accumulate into the same C quadrants, so
// they must not overlap - the seeded-race variant runs them concurrently).

#include <cmath>
#include <cstdint>
#include <memory>
#include <string>

#include "kernels/dense.hpp"
#include "kernels/kernels.hpp"
#include "runtime/scheduler.hpp"
#include "support/assert.hpp"
#include "support/rng.hpp"

namespace pint::kernels {

namespace {

constexpr std::size_t kBase = 16;

void mmul_rec(Block C, Block A, Block B, std::size_t n, bool racy) {
  if (n <= kBase) {
    gemm_base(C, A, B, n);
    return;
  }
  const std::size_t h = n / 2;
  rt::SpawnScope sc;
  // Phase 1: C_ij += A_i0 * B_0j
  sc.spawn([=] { mmul_rec(C.quad(0, 0, h), A.quad(0, 0, h), B.quad(0, 0, h), h, racy); });
  sc.spawn([=] { mmul_rec(C.quad(0, 1, h), A.quad(0, 0, h), B.quad(0, 1, h), h, racy); });
  sc.spawn([=] { mmul_rec(C.quad(1, 0, h), A.quad(1, 0, h), B.quad(0, 0, h), h, racy); });
  mmul_rec(C.quad(1, 1, h), A.quad(1, 0, h), B.quad(0, 1, h), h, racy);
  if (!racy) sc.sync();  // racy variant: phase 2 overlaps phase 1 on C
  // Phase 2: C_ij += A_i1 * B_1j
  sc.spawn([=] { mmul_rec(C.quad(0, 0, h), A.quad(0, 1, h), B.quad(1, 0, h), h, racy); });
  sc.spawn([=] { mmul_rec(C.quad(0, 1, h), A.quad(0, 1, h), B.quad(1, 1, h), h, racy); });
  sc.spawn([=] { mmul_rec(C.quad(1, 0, h), A.quad(1, 1, h), B.quad(1, 0, h), h, racy); });
  mmul_rec(C.quad(1, 1, h), A.quad(1, 1, h), B.quad(1, 1, h), h, racy);
  // implicit sync in ~SpawnScope
}

class MmulKernel final : public KernelInstance {
 public:
  explicit MmulKernel(const KernelConfig& cfg) : cfg_(cfg) {
    double target = 128.0 * std::cbrt(cfg.scale);
    n_ = kBase;
    while (n_ * 2 <= std::size_t(target + 0.5)) n_ *= 2;
    if (n_ < 2 * kBase) n_ = 2 * kBase;
  }

  const char* name() const override { return "mmul"; }
  std::string config_string() const override {
    return "n=" + std::to_string(n_) + " b=" + std::to_string(kBase);
  }

  void prepare() override {
    Xoshiro256 rng(cfg_.seed);
    a_ = Matrix(n_, n_);
    b_ = Matrix(n_, n_);
    c_ = Matrix(n_, n_);
    a_.fill_random(rng);
    b_.fill_random(rng);
  }

  void run() override {
    mmul_rec({c_.row(0), n_}, {a_.row(0), n_}, {b_.row(0), n_}, n_,
             cfg_.seeded_race);
  }

  bool verify() override {
    Xoshiro256 rng(cfg_.seed ^ 0xabcdef);
    for (int t = 0; t < 32; ++t) {
      const std::size_t i = rng.next_below(n_);
      const std::size_t j = rng.next_below(n_);
      double ref = 0.0;
      for (std::size_t k = 0; k < n_; ++k) ref += a_.at(i, k) * b_.at(k, j);
      if (!nearly_equal(ref, c_.at(i, j))) return false;
    }
    return true;
  }

 private:
  KernelConfig cfg_;
  std::size_t n_;
  Matrix a_, b_, c_;
};

}  // namespace

std::unique_ptr<KernelInstance> make_mmul(const KernelConfig& cfg) {
  return std::make_unique<MmulKernel>(cfg);
}

}  // namespace pint::kernels
