#pragma once

// The paper's benchmark suite: seven task-parallel kernels (§IV), written
// against the runtime's spawn/sync API with explicit instrumentation calls
// (our substitute for the Tapir compiler pass - see DESIGN.md §3).
//
// Each kernel is created by the factory with a `scale` knob (1.0 = this
// repo's default benchmarking size; the paper's sizes are ~10-100x larger
// and are impractical on a single-core container) and an optional
// `seeded_race` variant that omits one synchronization/partitioning step so
// tests can verify every detector flags it.
//
// Protocol:
//   auto k = make_kernel("mmul", 1.0);
//   k->prepare();                    // allocate + fill inputs (outside timing)
//   detector.run([&]{ k->run(); });  // the parallel, instrumented part
//   PINT_CHECK(k->verify());         // numerical correctness

#include <memory>
#include <string>
#include <vector>

namespace pint::kernels {

class KernelInstance {
 public:
  virtual ~KernelInstance() = default;
  virtual const char* name() const = 0;
  /// Allocates and initialises inputs; idempotent per instance.
  virtual void prepare() = 0;
  /// The parallel computation; must run inside a scheduler (detector.run).
  virtual void run() = 0;
  /// Checks the numerical result of the last run().
  virtual bool verify() = 0;
  /// One-line human description of the configured problem size.
  virtual std::string config_string() const = 0;
};

struct KernelConfig {
  double scale = 1.0;
  bool seeded_race = false;
  std::uint64_t seed = 12345;
};

/// Factory. Names: chol, sort, fft, heat, mmul, stra, straz, plus the
/// lock-scenario kernels lkcache and lktwin (mutex-guarded sharing; not in
/// kernel_names(), so the paper's seven-kernel sweeps are unchanged).
std::unique_ptr<KernelInstance> make_kernel(const std::string& name,
                                            const KernelConfig& cfg = {});

/// All seven benchmark names, in the paper's table order.
const std::vector<std::string>& kernel_names();

}  // namespace pint::kernels
