// Lock-shaped scenario kernels for the mutex-aware detection path.
//
// Unlike the paper's seven fork-join kernels, these two exercise accesses
// that are ordered by MUTUAL EXCLUSION rather than by the series-parallel
// DAG: pure fork-join reachability judges them parallel, and only the
// lockset filter (DESIGN.md §12) keeps them out of the race set.
//
//   lkcache - parallel tasks sharing one bounded memo cache behind a single
//             spinlock; every access to the shared table is guarded, so a
//             lock-aware detector must report zero races.  The seeded_race
//             variant skips the lock on the table WRITES (classic
//             check-then-act corruption).
//   lktwin  - guarded/unguarded twin counters: tasks hammer a small counter
//             array, each increment wrapped in the lock (guarded) or bare
//             (seeded_race: every pair of tasks on a counter is a true
//             race).  The twin shape gives tests an A/B with identical
//             structure, footprint, and schedule.
//
// Both use pint::Spinlock (fiber-safe: pure spin, no OS blocking) and never
// spawn/sync while holding the lock, so continuation stealing cannot park a
// fiber that owns a mutex.

#include <memory>
#include <string>
#include <vector>

#include "detect/instrument.hpp"
#include "kernels/kernels.hpp"
#include "runtime/scheduler.hpp"
#include "support/rng.hpp"
#include "support/spinlock.hpp"

namespace pint::kernels {

namespace {

constexpr std::size_t kTaskBase = 2;  // leaf size of the task-range splits

/// Recursively splits [t0, t1) into parallel leaves running fn(t).
template <class F>
void split_tasks(std::size_t t0, std::size_t t1, const F& fn) {
  if (t1 - t0 <= kTaskBase) {
    for (std::size_t t = t0; t < t1; ++t) fn(t);
    return;
  }
  const std::size_t mid = t0 + (t1 - t0) / 2;
  rt::SpawnScope sc;
  sc.spawn([&, t0, mid] { split_tasks(t0, mid, fn); });
  split_tasks(mid, t1, fn);
  sc.sync();
}

// ---------------------------------------------------------------------------
// lkcache
// ---------------------------------------------------------------------------

class LockedCacheKernel final : public KernelInstance {
 public:
  explicit LockedCacheKernel(const KernelConfig& cfg) : cfg_(cfg) {
    tasks_ = std::size_t(16.0 * cfg.scale);
    if (tasks_ < 8) tasks_ = 8;
    lookups_ = 32;
    slots_ = 16;
  }
  const char* name() const override { return "lkcache"; }
  std::string config_string() const override {
    return "tasks=" + std::to_string(tasks_) +
           " lookups=" + std::to_string(lookups_) +
           " slots=" + std::to_string(slots_);
  }
  void prepare() override {
    keys_.assign(slots_, 0);
    vals_.assign(slots_, 0);
    hits_.assign(tasks_, 0);
    sums_.assign(tasks_, 0);
  }
  void run() override {
    split_tasks(0, tasks_, [this](std::size_t t) { task(t); });
  }
  bool verify() override {
    // The racy variant really corrupts the table (torn key/value pairs), so
    // its numeric result is unverifiable by design - like the other seeded
    // variants, it exists for the detectors, not for the answer.
    if (cfg_.seeded_race) return true;
    // Every task must have accumulated the same total: the cached value of a
    // key equals the direct computation, hit or miss.
    std::uint64_t expect = 0;
    for (std::size_t q = 0; q < lookups_; ++q) expect += value_of(key_of(q));
    for (std::size_t t = 0; t < tasks_; ++t) {
      if (sums_[t] != expect) return false;
    }
    return true;
  }

 private:
  static std::uint64_t value_of(std::uint64_t key) {
    std::uint64_t s = key * 0x2545f4914f6cdd1dULL + 1;
    return splitmix64(s);
  }
  std::uint64_t key_of(std::size_t q) const {
    // A few distinct keys, revisited: realistic cache traffic (mostly hits).
    return (q * q + 7) % (slots_ * 2);
  }

  void task(std::size_t t) {
    std::uint64_t sum = 0, hits = 0;
    for (std::size_t q = 0; q < lookups_; ++q) {
      const std::uint64_t key = key_of(q);
      const std::size_t slot = std::size_t(key) % slots_;
      std::uint64_t v;
      if (cfg_.seeded_race) {
        // Racy variant: the probe is still guarded but the fill is not, so
        // two missing tasks write the table in parallel - a true race on
        // keys_/vals_ (and torn key/value pairs in a real program).
        bool hit;
        {
          InstrumentedLockGuard<Spinlock> g(mu_);
          record_read(&keys_[slot], sizeof(keys_[slot]));
          hit = keys_[slot] == key + 1;
          if (hit) {
            record_read(&vals_[slot], sizeof(vals_[slot]));
            v = vals_[slot];
          }
        }
        if (!hit) {
          v = value_of(key);
          record_write(&keys_[slot], sizeof(keys_[slot]));
          record_write(&vals_[slot], sizeof(vals_[slot]));
          keys_[slot] = key + 1;
          vals_[slot] = v;
        } else {
          ++hits;
        }
      } else {
        // Guarded variant: probe + fill under the one lock.  Every access
        // to the shared table happens lock-held, so the lockset filter
        // removes all cross-task pairs: zero races.
        InstrumentedLockGuard<Spinlock> g(mu_);
        record_read(&keys_[slot], sizeof(keys_[slot]));
        if (keys_[slot] == key + 1) {
          record_read(&vals_[slot], sizeof(vals_[slot]));
          v = vals_[slot];
          ++hits;
        } else {
          v = value_of(key);
          record_write(&keys_[slot], sizeof(keys_[slot]));
          record_write(&vals_[slot], sizeof(vals_[slot]));
          keys_[slot] = key + 1;
          vals_[slot] = v;
        }
      }
      sum += v;
    }
    // Private per-task outputs: ordinary unguarded (non-racing) intervals.
    record_write(&sums_[t], sizeof(sums_[t]));
    sums_[t] = sum;
    record_write(&hits_[t], sizeof(hits_[t]));
    hits_[t] = hits;
  }

  KernelConfig cfg_;
  std::size_t tasks_, lookups_, slots_;
  Spinlock mu_;
  std::vector<std::uint64_t> keys_, vals_;  // the shared cache table
  std::vector<std::uint64_t> hits_, sums_;  // per-task private outputs
};

// ---------------------------------------------------------------------------
// lktwin
// ---------------------------------------------------------------------------

class LockedTwinKernel final : public KernelInstance {
 public:
  explicit LockedTwinKernel(const KernelConfig& cfg) : cfg_(cfg) {
    tasks_ = std::size_t(16.0 * cfg.scale);
    if (tasks_ < 8) tasks_ = 8;
    incs_ = 16;
    counters_n_ = 4;
  }
  const char* name() const override { return "lktwin"; }
  std::string config_string() const override {
    return "tasks=" + std::to_string(tasks_) + " incs=" + std::to_string(incs_) +
           " counters=" + std::to_string(counters_n_) +
           (cfg_.seeded_race ? " unguarded" : " guarded");
  }
  void prepare() override {
    counters_.assign(counters_n_, 0);
    done_.assign(tasks_, 0);
  }
  void run() override {
    split_tasks(0, tasks_, [this](std::size_t t) { task(t); });
  }
  bool verify() override {
    std::uint64_t total = 0;
    for (std::uint64_t c : counters_) total += c;
    for (std::size_t t = 0; t < tasks_; ++t) {
      if (done_[t] != 1) return false;
    }
    // The unguarded twin runs the increments bare, so updates may be lost -
    // only an upper bound holds there.
    const std::uint64_t expect = std::uint64_t(tasks_) * incs_;
    return cfg_.seeded_race ? total <= expect : total == expect;
  }

 private:
  void task(std::size_t t) {
    for (std::size_t i = 0; i < incs_; ++i) {
      std::uint64_t& c = counters_[(t + i) % counters_n_];
      if (cfg_.seeded_race) {
        record_read(&c, sizeof(c));
        const std::uint64_t v = c;
        record_write(&c, sizeof(c));
        c = v + 1;
      } else {
        InstrumentedLockGuard<Spinlock> g(mu_);
        record_read(&c, sizeof(c));
        const std::uint64_t v = c;
        record_write(&c, sizeof(c));
        c = v + 1;
      }
    }
    record_write(&done_[t], sizeof(done_[t]));
    done_[t] = 1;
  }

  KernelConfig cfg_;
  std::size_t tasks_, incs_, counters_n_;
  Spinlock mu_;
  std::vector<std::uint64_t> counters_;
  std::vector<std::uint64_t> done_;
};

}  // namespace

std::unique_ptr<KernelInstance> make_lkcache(const KernelConfig& cfg) {
  return std::make_unique<LockedCacheKernel>(cfg);
}

std::unique_ptr<KernelInstance> make_lktwin(const KernelConfig& cfg) {
  return std::make_unique<LockedTwinKernel>(cfg);
}

}  // namespace pint::kernels
