#pragma once

// Shared helpers for the dense linear-algebra kernels: a row-major matrix
// with instrumented row-segment access helpers.  Instrumentation granularity
// is one contiguous row segment per record - the same granularity a
// compile-time coalescing pass produces for these loops.

#include <cmath>
#include <cstddef>
#include <vector>

#include "detect/instrument.hpp"
#include "support/rng.hpp"

namespace pint::kernels {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  double* row(std::size_t i) { return data_.data() + i * cols_; }
  const double* row(std::size_t i) const { return data_.data() + i * cols_; }
  double& at(std::size_t i, std::size_t j) { return data_[i * cols_ + j]; }
  double at(std::size_t i, std::size_t j) const { return data_[i * cols_ + j]; }

  void fill_random(Xoshiro256& rng, double lo = -1.0, double hi = 1.0) {
    for (double& v : data_) v = lo + (hi - lo) * rng.next_double();
  }

 private:
  std::size_t rows_ = 0, cols_ = 0;
  std::vector<double> data_;
};

/// A view of a square sub-block of a row-major matrix, carrying the leading
/// dimension so recursion can address quadrants without copying.
struct Block {
  double* base = nullptr;  // element (0,0) of the block
  std::size_t ld = 0;      // leading dimension (row stride, in elements)

  double* row(std::size_t i) const { return base + i * ld; }
  Block quad(std::size_t qi, std::size_t qj, std::size_t half) const {
    return {base + qi * half * ld + qj * half, ld};
  }
};

inline void touch_read(const double* p, std::size_t n) {
  record_read(p, n * sizeof(double));
}
inline void touch_write(const double* p, std::size_t n) {
  record_write(p, n * sizeof(double));
}

/// Base-case GEMM: C += A * B on n x n blocks, instrumented per element
/// like compiler-inserted hooks (every load/store records; the runtime
/// coalescer collapses each contiguous stream into one interval).
inline void gemm_base(Block C, Block A, Block B, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const double* ar = A.row(i);
    double* cr = C.row(i);
    for (std::size_t k = 0; k < n; ++k) {
      touch_read(&ar[k], 1);
      const double a = ar[k];
      const double* br = B.row(k);
      for (std::size_t j = 0; j < n; ++j) {
        touch_read(&br[j], 1);
        touch_read(&cr[j], 1);
        touch_write(&cr[j], 1);
        cr[j] += a * br[j];
      }
    }
  }
}

inline bool nearly_equal(double a, double b, double tol = 1e-6) {
  const double scale = std::fmax(1.0, std::fmax(std::fabs(a), std::fabs(b)));
  return std::fabs(a - b) <= tol * scale;
}

}  // namespace pint::kernels
