#include "kernels/kernels.hpp"

#include "support/assert.hpp"

namespace pint::kernels {

std::unique_ptr<KernelInstance> make_chol(const KernelConfig&);
std::unique_ptr<KernelInstance> make_sort(const KernelConfig&);
std::unique_ptr<KernelInstance> make_fft(const KernelConfig&);
std::unique_ptr<KernelInstance> make_heat(const KernelConfig&);
std::unique_ptr<KernelInstance> make_mmul(const KernelConfig&);
std::unique_ptr<KernelInstance> make_stra(const KernelConfig&);
std::unique_ptr<KernelInstance> make_straz(const KernelConfig&);
std::unique_ptr<KernelInstance> make_lkcache(const KernelConfig&);
std::unique_ptr<KernelInstance> make_lktwin(const KernelConfig&);

std::unique_ptr<KernelInstance> make_kernel(const std::string& name,
                                            const KernelConfig& cfg) {
  if (name == "chol") return make_chol(cfg);
  if (name == "sort") return make_sort(cfg);
  if (name == "fft") return make_fft(cfg);
  if (name == "heat") return make_heat(cfg);
  if (name == "mmul") return make_mmul(cfg);
  if (name == "stra") return make_stra(cfg);
  if (name == "straz") return make_straz(cfg);
  // Lock-scenario kernels: dispatchable by name but deliberately NOT in
  // kernel_names() - the paper's seven-kernel sweeps (and the committed
  // BENCH_access baselines keyed on them) must not change shape.
  if (name == "lkcache") return make_lkcache(cfg);
  if (name == "lktwin") return make_lktwin(cfg);
  PINT_CHECK_MSG(false, "unknown kernel name");
  return nullptr;
}

const std::vector<std::string>& kernel_names() {
  static const std::vector<std::string> names = {
      "chol", "heat", "mmul", "sort", "stra", "straz", "fft"};
  return names;
}

}  // namespace pint::kernels
