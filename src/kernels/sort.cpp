// sort: parallel mergesort with a parallel divide-and-conquer merge.
//
// Halves sort in parallel, then merge into a temp buffer via recursive
// binary-search splitting, then copy back in parallel.  Instrumentation is
// one record per contiguous range a base case touches.
//
// The seeded-race variant makes the merge split point off by one, so two
// parallel merge sub-tasks write an overlapping output element.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "detect/instrument.hpp"
#include "kernels/kernels.hpp"
#include "runtime/scheduler.hpp"
#include "support/rng.hpp"

namespace pint::kernels {

namespace {

using key_t = std::int64_t;
constexpr std::size_t kSortBase = 2048;
constexpr std::size_t kMergeBase = 2048;

void touch_r(const key_t* p, std::size_t n) {
  if (n) record_read(p, n * sizeof(key_t));
}
void touch_w(const key_t* p, std::size_t n) {
  if (n) record_write(p, n * sizeof(key_t));
}

void merge_rec(const key_t* x, std::size_t nx, const key_t* y, std::size_t ny,
               key_t* out, bool racy) {
  if (nx + ny <= kMergeBase) {
    touch_r(x, nx);
    touch_r(y, ny);
    touch_w(out, nx + ny);
    std::merge(x, x + nx, y, y + ny, out);
    return;
  }
  if (nx < ny) {  // split the larger side
    merge_rec(y, ny, x, nx, out, racy);
    return;
  }
  const std::size_t mx = nx / 2;
  const key_t pivot = x[mx];
  touch_r(&x[mx], 1);
  const std::size_t my = std::size_t(
      std::lower_bound(y, y + ny, pivot) - y);
  touch_r(y, ny == 0 ? 0 : my + 1 > ny ? ny : my + 1);
  // Seeded race: the right half also writes out[mx+my] (overlap of one).
  const std::size_t right_off = racy && mx + my > 0 ? mx + my - 1 : mx + my;
  rt::SpawnScope sc;
  sc.spawn([=] { merge_rec(x, mx, y, my, out, racy); });
  merge_rec(x + mx, nx - mx, y + my, ny - my, out + right_off, racy);
  sc.sync();
}

void copy_range(const key_t* src, key_t* dst, std::size_t n) {
  constexpr std::size_t kCopyBase = 4096;
  if (n <= kCopyBase) {
    touch_r(src, n);
    touch_w(dst, n);
    std::copy(src, src + n, dst);
    return;
  }
  rt::SpawnScope sc;
  sc.spawn([=] { copy_range(src, dst, n / 2); });
  copy_range(src + n / 2, dst + n / 2, n - n / 2);
  sc.sync();
}

void msort(key_t* a, key_t* tmp, std::size_t n, bool racy) {
  if (n <= kSortBase) {
    touch_r(a, n);
    touch_w(a, n);
    std::sort(a, a + n);
    return;
  }
  const std::size_t h = n / 2;
  rt::SpawnScope sc;
  sc.spawn([=] { msort(a, tmp, h, racy); });
  msort(a + h, tmp + h, n - h, racy);
  sc.sync();
  merge_rec(a, h, a + h, n - h, tmp, racy);
  sc.sync();
  copy_range(tmp, a, n);
}

class SortKernel final : public KernelInstance {
 public:
  explicit SortKernel(const KernelConfig& cfg) : cfg_(cfg) {
    n_ = std::size_t(double(1 << 17) * cfg.scale);
    if (n_ < 4 * kSortBase) n_ = 4 * kSortBase;
  }
  const char* name() const override { return "sort"; }
  std::string config_string() const override {
    return "n=" + std::to_string(n_) + " b=" + std::to_string(kSortBase);
  }
  void prepare() override {
    Xoshiro256 rng(cfg_.seed);
    data_.resize(n_);
    tmp_.assign(n_, 0);
    checksum_ = 0;
    for (key_t& v : data_) {
      v = key_t(rng.next());
      checksum_ += std::uint64_t(v);
    }
  }
  void run() override { msort(data_.data(), tmp_.data(), n_, cfg_.seeded_race); }
  bool verify() override {
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < n_; ++i) {
      if (i > 0 && data_[i - 1] > data_[i]) return false;
      sum += std::uint64_t(data_[i]);
    }
    return sum == checksum_;
  }

 private:
  KernelConfig cfg_;
  std::size_t n_;
  std::vector<key_t> data_, tmp_;
  std::uint64_t checksum_ = 0;
};

}  // namespace

std::unique_ptr<KernelInstance> make_sort(const KernelConfig& cfg) {
  return std::make_unique<SortKernel>(cfg);
}

}  // namespace pint::kernels
