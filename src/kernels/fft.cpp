// fft: parallel out-of-place Cooley-Tukey (decimation in time) on strided
// views, as in cache-oblivious FFT codes.
//
// The leaf gathers read STRIDED elements - one 8-byte record each, with a
// gap of stride*8 bytes between consecutive records - so runtime coalescing
// buys almost nothing here.  Together with single-precision data (one
// complex<float> = one shadow granule) this reproduces the paper's fft
// result: the interval-based history loses its advantage and C-RACER's
// per-access shadow memory wins (§IV-A).
//
// The seeded-race variant gives sibling recursions overlapping output
// halves.

#include <cmath>
#include <complex>
#include <memory>
#include <numbers>
#include <string>
#include <vector>

#include "detect/instrument.hpp"
#include "kernels/kernels.hpp"
#include "runtime/scheduler.hpp"
#include "support/rng.hpp"

namespace pint::kernels {

namespace {

// Single precision, as in the paper's fft (it reports 4-byte accesses):
// one complex<float> is exactly one 8-byte shadow granule.
using cplx = std::complex<float>;
constexpr std::size_t kFftBase = 128;

/// Iterative in-place radix-2 FFT over a contiguous buffer (no
/// instrumentation: callers record the whole range once).
void fft_contiguous(cplx* a, std::size_t n, bool inverse) {
  // bit reversal
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = (inverse ? 2.0 : -2.0) * std::numbers::pi / double(len);
    const cplx wl(float(std::cos(ang)), float(std::sin(ang)));
    for (std::size_t i = 0; i < n; i += len) {
      cplx w(1.0f, 0.0f);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const cplx u = a[i + k];
        const cplx v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
        w *= wl;
      }
    }
  }
}

/// out[0..n) = FFT of in[0], in[stride], in[2*stride], ...
void fft_rec(const cplx* in, std::size_t stride, cplx* out, std::size_t n,
             bool racy) {
  if (n <= kFftBase) {
    // Strided gather: one tiny record per element - the anti-coalescing
    // access pattern this benchmark exists to exercise.
    for (std::size_t i = 0; i < n; ++i) {
      record_read(&in[i * stride], sizeof(cplx));
      out[i] = in[i * stride];
    }
    record_write(out, n * sizeof(cplx));
    fft_contiguous(out, n, false);
    return;
  }
  const std::size_t h = n / 2;
  const std::size_t right_off = racy ? h - 1 : h;  // seeded overlap
  rt::SpawnScope sc;
  sc.spawn([=] { fft_rec(in, 2 * stride, out, h, racy); });
  fft_rec(in + stride, 2 * stride, out + right_off, h, racy);
  sc.sync();
  // Butterfly combine, instrumented per element as a compiler pass would
  // (each iteration touches two locations h elements apart, so the records
  // alternate between two far-apart streams).
  const double ang = -2.0 * std::numbers::pi / double(n);
  const cplx wl(float(std::cos(ang)), float(std::sin(ang)));
  cplx w(1.0f, 0.0f);
  for (std::size_t k = 0; k < h; ++k) {
    record_read(&out[k], sizeof(cplx));
    record_read(&out[h + k], sizeof(cplx));
    record_write(&out[k], sizeof(cplx));
    record_write(&out[h + k], sizeof(cplx));
    const cplx u = out[k];
    const cplx v = out[h + k] * w;
    out[k] = u + v;
    out[h + k] = u - v;
    w *= wl;
  }
}

class FftKernel final : public KernelInstance {
 public:
  explicit FftKernel(const KernelConfig& cfg) : cfg_(cfg) {
    const double target = double(1 << 14) * cfg.scale;
    n_ = 2 * kFftBase;
    while (n_ * 2 <= std::size_t(target + 0.5)) n_ *= 2;
  }
  const char* name() const override { return "fft"; }
  std::string config_string() const override {
    return "n=" + std::to_string(n_) + " b=" + std::to_string(kFftBase);
  }
  void prepare() override {
    Xoshiro256 rng(cfg_.seed);
    in_.resize(n_);
    out_.assign(n_, cplx{});
    for (cplx& v : in_) {
      v = cplx(float(rng.next_double() - 0.5), float(rng.next_double() - 0.5));
    }
  }
  void run() override { fft_rec(in_.data(), 1, out_.data(), n_, cfg_.seeded_race); }
  bool verify() override {
    // Inverse-transform the output (serially, uninstrumented) and compare.
    std::vector<cplx> back = out_;
    fft_contiguous(back.data(), n_, /*inverse=*/true);
    Xoshiro256 rng(cfg_.seed ^ 0xfff7);
    for (int t = 0; t < 64; ++t) {
      const std::size_t i = rng.next_below(n_);
      const cplx v = back[i] / float(n_);
      if (std::abs(v - in_[i]) > 2e-3f * (1.0f + std::abs(in_[i]))) return false;
    }
    return true;
  }

 private:
  KernelConfig cfg_;
  std::size_t n_;
  std::vector<cplx> in_, out_;
};

}  // namespace

std::unique_ptr<KernelInstance> make_fft(const KernelConfig& cfg) {
  return std::make_unique<FftKernel>(cfg);
}

}  // namespace pint::kernels
