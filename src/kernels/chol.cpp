// chol: blocked recursive dense Cholesky factorization A = L * L^T (lower),
// in place.
//
//   chol(A11); A21 <- A21 * L11^-T (trsm, rows in parallel);
//   A22 -= A21 * A21^T (syrk, quadrants in parallel); chol(A22)
//
// The seeded-race variant runs trsm and syrk concurrently, so syrk reads
// A21 while trsm is still writing it.

#include <cmath>
#include <memory>
#include <string>

#include "kernels/dense.hpp"
#include "kernels/kernels.hpp"
#include "runtime/scheduler.hpp"
#include "support/rng.hpp"

namespace pint::kernels {

namespace {

constexpr std::size_t kCholBase = 16;

/// In-place lower Cholesky of an n x n block (n <= kCholBase).
void potrf_base(Block A, std::size_t n) {
  for (std::size_t j = 0; j < n; ++j) {
    double* rj = A.row(j);
    double d = rj[j];
    touch_read(&rj[j], 1);
    for (std::size_t k = 0; k < j; ++k) {
      touch_read(&rj[k], 1);
      d -= rj[k] * rj[k];
    }
    d = std::sqrt(d);
    rj[j] = d;
    touch_write(&rj[j], 1);
    for (std::size_t i = j + 1; i < n; ++i) {
      double* ri = A.row(i);
      touch_read(&ri[j], 1);
      double v = ri[j];
      for (std::size_t k = 0; k < j; ++k) {
        touch_read(&ri[k], 1);
        touch_read(&rj[k], 1);
        v -= ri[k] * rj[k];
      }
      ri[j] = v / d;
      touch_write(&ri[j], 1);
    }
  }
}

/// B (m x n) <- B * L^-T where L (n x n) is lower triangular: row-parallel
/// forward substitution.
void trsm_rec(Block B, Block L, std::size_t m, std::size_t n) {
  if (m <= kCholBase) {
    for (std::size_t i = 0; i < m; ++i) {
      double* bi = B.row(i);
      for (std::size_t j = 0; j < n; ++j) {
        const double* lj = L.row(j);
        touch_read(&bi[j], 1);
        double v = bi[j];
        for (std::size_t k = 0; k < j; ++k) {
          touch_read(&bi[k], 1);
          touch_read(&lj[k], 1);
          v -= bi[k] * lj[k];
        }
        touch_read(&lj[j], 1);
        bi[j] = v / lj[j];
        touch_write(&bi[j], 1);
      }
    }
    return;
  }
  const std::size_t h = m / 2;
  rt::SpawnScope sc;
  sc.spawn([=] { trsm_rec(B, L, h, n); });
  trsm_rec({B.row(h), B.ld}, L, m - h, n);
  sc.sync();
}

/// C (m x n, with only j <= global lower triangle used) -= A * B^T where
/// A is m x k and B is n x k. Quadrants recurse in parallel.
void gemm_nt_rec(Block C, Block A, Block B, std::size_t m, std::size_t n,
                 std::size_t k) {
  if (m <= kCholBase && n <= kCholBase) {
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        double v = 0.0;
        const double *ai = A.row(i), *bj = B.row(j);
        for (std::size_t t = 0; t < k; ++t) {
          touch_read(&ai[t], 1);
          touch_read(&bj[t], 1);
          v += ai[t] * bj[t];
        }
        touch_read(&C.row(i)[j], 1);
        touch_write(&C.row(i)[j], 1);
        C.row(i)[j] -= v;
      }
    }
    return;
  }
  if (m >= n) {
    const std::size_t h = m / 2;
    rt::SpawnScope sc;
    sc.spawn([=] { gemm_nt_rec(C, A, B, h, n, k); });
    gemm_nt_rec({C.row(h), C.ld}, {A.row(h), A.ld}, B, m - h, n, k);
    sc.sync();
  } else {
    const std::size_t h = n / 2;
    rt::SpawnScope sc;
    sc.spawn([=] { gemm_nt_rec(C, A, B, m, h, k); });
    gemm_nt_rec({C.base + h, C.ld}, A, {B.row(h), B.ld}, m, n - h, k);
    sc.sync();
  }
}

/// C (n x n, lower) -= A * A^T where A is n x k.
void syrk_rec(Block C, Block A, std::size_t n, std::size_t k) {
  if (n <= kCholBase) {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j <= i; ++j) {
        double v = 0.0;
        const double *ai = A.row(i), *aj = A.row(j);
        for (std::size_t t = 0; t < k; ++t) {
          touch_read(&ai[t], 1);
          touch_read(&aj[t], 1);
          v += ai[t] * aj[t];
        }
        touch_read(&C.row(i)[j], 1);
        touch_write(&C.row(i)[j], 1);
        C.row(i)[j] -= v;
      }
    }
    return;
  }
  const std::size_t h = n / 2;
  rt::SpawnScope sc;
  sc.spawn([=] { syrk_rec(C, A, h, k); });
  sc.spawn([=] {
    gemm_nt_rec({C.row(h), C.ld}, {A.row(h), A.ld}, A, n - h, h, k);
  });
  syrk_rec({C.row(h) + h, C.ld}, {A.row(h), A.ld}, n - h, k);
  sc.sync();
}

void chol_rec(Block A, std::size_t n, bool racy) {
  if (n <= kCholBase) {
    potrf_base(A, n);
    return;
  }
  const std::size_t h = n / 2;
  const Block A11 = A;
  const Block A21 = {A.row(h), A.ld};
  const Block A22 = {A.row(h) + h, A.ld};
  chol_rec(A11, h, racy);
  if (racy) {
    // Seeded race: syrk reads A21 concurrently with trsm writing it.
    rt::SpawnScope sc;
    sc.spawn([=] { trsm_rec(A21, A11, h, h); });
    syrk_rec(A22, A21, h, h);
    sc.sync();
  } else {
    trsm_rec(A21, A11, h, h);
    syrk_rec(A22, A21, h, h);
  }
  chol_rec(A22, h, racy);
}

class CholKernel final : public KernelInstance {
 public:
  explicit CholKernel(const KernelConfig& cfg) : cfg_(cfg) {
    const double target = 128.0 * std::cbrt(cfg.scale);
    n_ = 2 * kCholBase;
    while (n_ * 2 <= std::size_t(target + 0.5)) n_ *= 2;
  }
  const char* name() const override { return "chol"; }
  std::string config_string() const override {
    return "n=" + std::to_string(n_) + " b=" + std::to_string(kCholBase);
  }
  void prepare() override {
    Xoshiro256 rng(cfg_.seed);
    Matrix m(n_, n_);
    m.fill_random(rng, -1.0, 1.0);
    a_ = Matrix(n_, n_);
    for (std::size_t i = 0; i < n_; ++i) {
      for (std::size_t j = 0; j <= i; ++j) {
        double v = 0.0;
        for (std::size_t k = 0; k < n_; ++k) v += m.at(i, k) * m.at(j, k);
        a_.at(i, j) = v;
        a_.at(j, i) = v;
      }
      a_.at(i, i) += double(n_);  // strongly SPD
    }
    orig_ = a_;
  }
  void run() override { chol_rec({a_.row(0), n_}, n_, cfg_.seeded_race); }
  bool verify() override {
    Xoshiro256 rng(cfg_.seed ^ 0xc401);
    for (int t = 0; t < 48; ++t) {
      std::size_t i = rng.next_below(n_);
      std::size_t j = rng.next_below(n_);
      if (j > i) std::swap(i, j);
      double v = 0.0;
      for (std::size_t k = 0; k <= j; ++k) v += a_.at(i, k) * a_.at(j, k);
      if (!nearly_equal(v, orig_.at(i, j), 1e-6)) return false;
    }
    return true;
  }

 private:
  KernelConfig cfg_;
  std::size_t n_;
  Matrix a_, orig_;
};

}  // namespace

std::unique_ptr<KernelInstance> make_chol(const KernelConfig& cfg) {
  return std::make_unique<CholKernel>(cfg);
}

}  // namespace pint::kernels
