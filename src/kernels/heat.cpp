// heat: Jacobi 5-point stencil time-stepping on a 2D grid.
//
// Each step recursively splits the interior rows into parallel strips; a
// base case reads three full source rows per output row and writes one
// destination row (all full-row intervals, the friendliest case for the
// interval history).  Buffers swap between steps on the root strand.
//
// The seeded-race variant updates the grid IN PLACE, so neighbouring strips
// race on their boundary rows (read vs write of the same row).

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "detect/instrument.hpp"
#include "kernels/kernels.hpp"
#include "runtime/scheduler.hpp"
#include "support/rng.hpp"

namespace pint::kernels {

namespace {

constexpr std::size_t kRowBase = 8;

void stencil_rows(const double* src, double* dst, std::size_t ny,
                  std::size_t r0, std::size_t r1) {
  if (r1 - r0 <= kRowBase) {
    for (std::size_t i = r0; i < r1; ++i) {
      const double* up = src + (i - 1) * ny;
      const double* mid = src + i * ny;
      const double* dn = src + (i + 1) * ny;
      double* out = dst + i * ny;
      record_read(up, ny * sizeof(double));
      record_read(mid, ny * sizeof(double));
      record_read(dn, ny * sizeof(double));
      record_write(out, ny * sizeof(double));
      out[0] = mid[0];
      out[ny - 1] = mid[ny - 1];
      for (std::size_t j = 1; j + 1 < ny; ++j) {
        out[j] = 0.25 * (up[j] + dn[j] + mid[j - 1] + mid[j + 1]);
      }
    }
    return;
  }
  const std::size_t mid = r0 + (r1 - r0) / 2;
  rt::SpawnScope sc;
  sc.spawn([=] { stencil_rows(src, dst, ny, r0, mid); });
  stencil_rows(src, dst, ny, mid, r1);
  sc.sync();
}

class HeatKernel final : public KernelInstance {
 public:
  explicit HeatKernel(const KernelConfig& cfg) : cfg_(cfg) {
    const double lin = std::sqrt(cfg.scale);
    nx_ = std::size_t(128.0 * lin);
    ny_ = std::size_t(128.0 * lin);
    if (nx_ < 4 * kRowBase) nx_ = 4 * kRowBase;
    if (ny_ < 16) ny_ = 16;
    steps_ = 50;
  }
  const char* name() const override { return "heat"; }
  std::string config_string() const override {
    return "nx=" + std::to_string(nx_) + " ny=" + std::to_string(ny_) +
           " steps=" + std::to_string(steps_) + " b=" + std::to_string(kRowBase);
  }
  void prepare() override {
    Xoshiro256 rng(cfg_.seed);
    cur_.assign(nx_ * ny_, 0.0);
    nxt_.assign(nx_ * ny_, 0.0);
    for (double& v : cur_) v = rng.next_double();
    initial_ = cur_;
  }
  void run() override {
    double* a = cur_.data();
    double* b = cfg_.seeded_race ? cur_.data() : nxt_.data();  // in-place = racy
    for (std::size_t s = 0; s < steps_; ++s) {
      // Boundary rows are Dirichlet: copy them once per step.
      if (a != b) {
        record_read(a, ny_ * sizeof(double));
        record_write(b, ny_ * sizeof(double));
        std::copy(a, a + ny_, b);
        const std::size_t last = (nx_ - 1) * ny_;
        record_read(a + last, ny_ * sizeof(double));
        record_write(b + last, ny_ * sizeof(double));
        std::copy(a + last, a + last + ny_, b + last);
      }
      stencil_rows(a, b, ny_, 1, nx_ - 1);
      std::swap(a, b);
    }
    result_ = (steps_ % 2 == 0 || cfg_.seeded_race) ? 0 : 1;  // which buffer holds the result
  }
  bool verify() override {
    // Serial uninstrumented recomputation from the saved initial state.
    std::vector<double> a = initial_, b(nx_ * ny_, 0.0);
    for (std::size_t s = 0; s < steps_; ++s) {
      std::copy(a.begin(), a.begin() + ny_, b.begin());
      std::copy(a.end() - ny_, a.end(), b.end() - ny_);
      for (std::size_t i = 1; i + 1 < nx_; ++i) {
        const double *up = &a[(i - 1) * ny_], *mid = &a[i * ny_],
                     *dn = &a[(i + 1) * ny_];
        double* out = &b[i * ny_];
        out[0] = mid[0];
        out[ny_ - 1] = mid[ny_ - 1];
        for (std::size_t j = 1; j + 1 < ny_; ++j) {
          out[j] = 0.25 * (up[j] + dn[j] + mid[j - 1] + mid[j + 1]);
        }
      }
      std::swap(a, b);
    }
    const std::vector<double>& got = result_ == 0 ? cur_ : nxt_;
    for (std::size_t i = 0; i < nx_ * ny_; ++i) {
      if (!(std::fabs(a[i] - got[i]) <= 1e-9)) return false;
    }
    return true;
  }

 private:
  KernelConfig cfg_;
  std::size_t nx_, ny_, steps_;
  std::vector<double> cur_, nxt_, initial_;
  int result_ = 0;
};

}  // namespace

std::unique_ptr<KernelInstance> make_heat(const KernelConfig& cfg) {
  return std::make_unique<HeatKernel>(cfg);
}

}  // namespace pint::kernels
