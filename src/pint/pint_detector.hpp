#pragma once

// PINT - Parallel INTerval-based race detector (the paper's contribution).
//
// Architecture (paper §III):
//  * CORE COMPONENT: `core_workers` workers execute the program under the
//    continuation-stealing scheduler, maintain WSP-Order reachability
//    labels, coalesce each strand's accesses into intervals, and deposit
//    finished strands into per-worker trace FIFOs (Algorithm 1).
//  * ACCESS-HISTORY COMPONENT: three treap workers run asynchronously.  The
//    WRITER treap worker collects ready strands from the traces in a
//    DAG-conforming order (Algorithm 2 + collection rules), appends them to
//    the shared access-history queue, maintains the last-writer treap,
//    performs deferred heap frees, and releases retired fiber stacks.  The
//    two READER treap workers follow the queue with private cursors and
//    maintain the left-most / right-most reader treaps.
//
// One-core mode (`parallel_history = false`) reproduces the paper's
// single-core PINT measurement: the core component runs to completion first
// and the three treap phases run afterwards on the calling thread, which
// makes the Fig. 2 work breakdown directly measurable.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "detect/detector.hpp"
#include "detect/history.hpp"
#include "detect/report.hpp"
#include "detect/run_result.hpp"
#include "detect/stats.hpp"
#include "detect/strand.hpp"
#include "detect/tiered_history.hpp"
#include "pint/ah_queue.hpp"
#include "pint/sharded_history.hpp"
#include "pint/trace.hpp"
#include "reach/engine.hpp"
#include "runtime/scheduler.hpp"
#include "support/timer.hpp"
#include "support/watchdog.hpp"
#include "treap/interval_treap.hpp"

namespace pint::pintd {

// The run-status/result types were born here and are now the repo-wide
// detector contract; the aliases keep existing pintd:: spellings compiling.
using RunStatus = detect::RunStatus;
using RunResult = detect::RunResult;

class PintDetector final : public detect::Detector,
                           public detect::DetectorRunner,
                           public rt::SchedulerHooks {
 public:
  struct Options : detect::CommonOptions {
    /// Workers executing the program (the paper's "P - 3 core workers").
    int core_workers = 1;
    /// True: three concurrent treap workers (the real PINT). False: phased
    /// one-core execution used for the overhead measurements.
    bool parallel_history = true;
    /// 0 = the paper's three role-workers (writer/lreader/rreader).
    /// N > 0 = the §VI extension: N address-sharded history workers, each
    /// owning all three stores for its stripes (requires kTreap).
    int history_shards = 0;
    std::size_t queue_capacity = std::size_t(1) << 16;
    /// Sequential one-core mode buffers the whole run in the ring and grows
    /// it on demand; this caps the growth (slots, power of two).  0 =
    /// unbounded.  At the cap the run sheds strands from the history (they
    /// are still freed/accounted) and reports kOutOfMemory instead of
    /// growing until bad_alloc aborts the process.
    std::size_t max_queue_capacity = 0;
    /// Pipeline watchdog deadline: a busy pipeline stage (writer, reader /
    /// shard, collector backoff) silent for this long dumps a progress
    /// snapshot to the error sink and cancels the run (RunStatus::kStalled).
    /// 0 disables the watchdog.
    std::uint32_t watchdog_ms = 10000;
    /// Test-only: record the label of every collected strand so tests can
    /// verify the collection order is DAG-conforming (Lemmas 1-4).
    bool record_collection_order = false;
  };

  explicit PintDetector(const Options& opt);
  ~PintDetector() override;

  /// Executes fn() under race detection. One run per detector instance.
  /// Always returns (modulo unsurvivable dead-ends, which abort through the
  /// shared error sink); the result says whether detection is complete or
  /// the pipeline degraded.  Existing callers may ignore the result.
  RunResult run(std::function<void()> fn) override;

  detect::RaceReporter& reporter() override { return rep_; }
  const detect::Stats& stats() const override { return stats_; }
  reach::Engine& reachability() { return reach_; }
  /// Valid after run() when Options::record_collection_order was set.
  const std::vector<reach::Engine::Label>& collection_order() const {
    return collection_log_;
  }

  // --- detect::Detector ---
  void on_access(rt::Worker& w, rt::TaskFrame& f, detect::addr_t lo,
                 detect::addr_t hi, bool is_write) override;
  void on_heap_free(rt::Worker& w, rt::TaskFrame& f, void* base,
                    detect::addr_t lo, detect::addr_t hi) override;
  void on_lock_acquire(rt::Worker& w, rt::TaskFrame& f,
                       detect::addr_t lock) override;
  void on_lock_release(rt::Worker& w, rt::TaskFrame& f,
                       detect::addr_t lock) override;
  const char* name() const override { return "PINT"; }

  // --- rt::SchedulerHooks (Algorithm 1 events) ---
  void on_root_start(rt::Worker& w, rt::TaskFrame& f) override;
  void on_root_end(rt::Worker& w, rt::TaskFrame& f) override;
  void on_spawn(rt::Worker& w, rt::TaskFrame& parent, rt::SyncBlock& blk,
                rt::TaskFrame& child) override;
  void on_spawn_return(rt::Worker& w, rt::TaskFrame& child,
                       bool continuation_stolen) override;
  void on_continuation(rt::Worker& w, rt::TaskFrame& parent, bool stolen) override;
  void on_sync(rt::Worker& w, rt::TaskFrame& f, rt::SyncBlock& blk,
               bool trivial) override;
  void on_after_sync(rt::Worker& w, rt::TaskFrame& f, rt::SyncBlock& blk,
                     bool trivial) override;
  bool on_task_retire(rt::Worker& w, rt::TaskFrame& f) override;

 private:
  /// Per-core-worker state: the producer end of its trace list, the
  /// consumer cursor the writer treap worker walks, a strand pool, and
  /// cheap (non-atomic) per-worker counters flushed at run end.
  struct CoreWS {
    std::uint32_t index = 0;
    // producer side (owned by the core worker)
    Trace* cur = nullptr;
    std::uint64_t next_sid = 0;
    std::uint64_t raw_reads = 0, raw_writes = 0;
    std::uint64_t read_intervals = 0, write_intervals = 0;
    std::uint64_t strands = 0, traces = 0;
    // AccessCursor effectiveness (DESIGN.md §9): raw accesses recorded via
    // the thread-local cursor, the subset its inline caches absorbed, and
    // accesses that took the classic virtual-dispatch route.
    std::uint64_t fast_accesses = 0, fast_hits = 0, slow_accesses = 0;
    std::uint64_t cursor_spills = 0, policy_switches = 0, policy_bypass = 0;
    // AccessBuffer::add tail-probe outcomes and finalize route tallies
    // (DESIGN.md §13), folded from each strand's buffers at seal time.
    std::uint64_t tail_hits = 0, tail_misses = 0;
    std::uint64_t fin_sorted = 0, fin_simd = 0;
    // consumer side (owned by the writer treap worker)
    Trace* ccur = nullptr;
    // Strand pool: owner pops, writer treap worker returns.  Same
    // vector-pool shape as the trace/chunk pools so all three share the
    // pool_take() idiom (and ownership stays with the unique_ptrs - the
    // Trace doc contract: callers allocate, pools never own ad hoc).
    Spinlock pool_mu;
    std::vector<detect::Strand*> pool;
    std::vector<std::unique_ptr<detect::Strand>> owned;
  };

  /// One queue consumer's monitored state: a heartbeat for the watchdog
  /// plus the processing cursor, published for the progress snapshot.
  struct ConsumerLane {
    char name[16] = {0};
    Heartbeat hb;
    std::atomic<std::uint64_t> cursor{0};
  };

  detect::Strand* alloc_strand(CoreWS& ws);
  void recycle_strand(detect::Strand* s);
  Trace* alloc_trace();
  TraceChunk* alloc_chunk();
  void recycle_trace(Trace* t);
  void recycle_chunk(TraceChunk* c);
  void trace_push(CoreWS& ws, detect::Strand* s);
  void start_new_trace(CoreWS& ws);
  void seal_strand(CoreWS& ws, detect::Strand* s);
  /// Invalidates the calling thread's AccessCursor, folding its drained
  /// counters into ws.  Must run before seal_strand() of the cursor's
  /// strand (pending cursor intervals land in the strand's AccessBuffers).
  void cursor_flush(CoreWS& ws);
  /// Lockset transition: splits the current strand into a new segment with
  /// the same label and a fresh sid/lsid (see detect/strand.hpp).
  void on_lock_event(rt::Worker& w, rt::TaskFrame& f, detect::addr_t lock,
                     bool acquire);

  // graceful degradation (allocation-failure paths)
  void note_oom(const char* what);
  detect::Strand* strand_fallback(CoreWS& ws);
  Trace* trace_fallback();
  TraceChunk* chunk_fallback();

  // access-history component
  void writer_loop();
  void reader_loop(detect::ReaderSide side);
  void shard_loop(int shard);
  /// Collects ready strands from one worker's traces (bounded batch).
  /// Returns true if progress was made; sets *drained when nothing can ever
  /// come from this worker again.
  bool collect_from(CoreWS& ws, bool* drained);
  void collect(detect::Strand* s);
  void process_writer(detect::Strand* s);
  void finish_history_sequential();
  /// Drains one consumer lane's cursor against the queue; shared by
  /// reader_loop and shard_loop.
  template <class ProcessFn>
  void consume_loop(ConsumerLane& lane, ProcessFn&& process);

  // run orchestration / robustness
  bool spawn_history_threads(std::thread* writer,
                             std::vector<std::thread>* history);
  void dump_progress(const char* stalled);

  Options opt_;
  reach::Engine reach_;
  detect::RaceReporter rep_;
  detect::Stats stats_;
  AhQueue queue_;
  detect::TieredHistory writer_treap_;
  detect::TieredHistory lreader_treap_;
  detect::TieredHistory rreader_treap_;
  detect::GranuleMap writer_map_;
  detect::GranuleMap lreader_map_;
  detect::GranuleMap rreader_map_;
  // Per-history-worker precedes() memo caches: each is touched only by the
  // one thread that owns the matching store (sharded mode keeps its own
  // cache inside each HistoryShard).
  reach::Engine::Memo memo_writer_;
  reach::Engine::Memo memo_lreader_;
  reach::Engine::Memo memo_rreader_;
  std::vector<std::unique_ptr<HistoryShard>> shards_;

  std::vector<std::unique_ptr<CoreWS>> ws_;
  rt::Scheduler* sched_ = nullptr;
  bool used_ = false;

  std::atomic<bool> core_done_{false};
  std::atomic<bool> collecting_done_{false};
  // Writer-owned; atomic so the watchdog snapshot can read it.
  std::atomic<std::uint64_t> pushed_{0};

  // --- robustness state ---
  /// Effective history mode for this run: starts as !opt_.parallel_history
  /// and flips to true if history-thread spawn fails (graceful fallback).
  bool seq_history_ = false;
  /// Phased one-core mode hoists the CPU-clock stopwatches from per-strand
  /// to per-phase (finish_history_sequential): each lane runs as one
  /// uninterrupted phase on the calling thread, so two clock reads bound the
  /// same work that thousands of per-strand reads did - at ~200ns per read
  /// that is a measurable slice of the Fig. 2 overhead.  Written before the
  /// phases start, read on the same thread (seq mode is single-threaded).
  bool phase_watch_ = false;
  /// Set by the watchdog's on-stall action (or an unsurvivable allocation
  /// wait): pipeline loops wind down promptly instead of spinning forever.
  std::atomic<bool> cancel_{false};
  /// An allocation failure was survived; run() reports kOutOfMemory.
  std::atomic<bool> oom_{false};
  std::atomic<std::uint64_t> dropped_strands_{0};
  /// Start gate for history threads: 0 = hold, 1 = go, 2 = abort (spawn
  /// rollback).  Threads touch no shared pipeline structure (queue producer
  /// pin, consumer registration) until released, so a partial spawn can be
  /// rolled back and rerun sequentially.
  std::atomic<int> gate_{0};
  /// Monitored heartbeats: writer progress, collector backoff liveness,
  /// one lane per queue consumer (2 readers or N shards).
  Heartbeat hb_writer_;
  Heartbeat hb_backoff_;
  std::vector<std::unique_ptr<ConsumerLane>> lanes_;
  // Emergency reserves, allocated up-front and tapped only after a real or
  // injected allocation failure (then the pipeline drain takes over).
  Spinlock reserve_mu_;
  std::vector<std::unique_ptr<detect::Strand>> reserve_strands_owned_;
  std::vector<detect::Strand*> reserve_strands_;
  std::vector<std::unique_ptr<TraceChunk>> reserve_chunks_owned_;
  std::vector<TraceChunk*> reserve_chunks_;
  std::vector<std::unique_ptr<Trace>> reserve_traces_owned_;
  std::vector<Trace*> reserve_traces_;

  // trace / chunk pools (core workers allocate, writer recycles)
  Spinlock tp_mu_;
  std::vector<Trace*> trace_pool_;
  std::vector<std::unique_ptr<Trace>> all_traces_;
  Spinlock cp_mu_;
  std::vector<TraceChunk*> chunk_pool_;
  std::vector<std::unique_ptr<TraceChunk>> all_chunks_;
  // Pool-occupancy gauges for the telemetry sampler: the pool vectors and
  // per-worker free lists are lock-protected, so the sampler thread reads
  // these relaxed mirrors instead (allocated-and-in-use object counts).
  std::atomic<std::int64_t> traces_outstanding_{0};
  std::atomic<std::int64_t> chunks_outstanding_{0};
  std::atomic<std::int64_t> strands_outstanding_{0};

  StopwatchAccum writer_watch_, lreader_watch_, rreader_watch_;
  std::vector<reach::Engine::Label> collection_log_;  // writer-thread only
};

}  // namespace pint::pintd
