#pragma once

// Sharded access history - this repository's implementation of the paper's
// §VI future-work direction: "parallelize the treap accesses since they are
// increasingly more likely to become the bottleneck".
//
// Instead of one worker per ROLE (writer / left-most / right-most), N
// history workers each own all three stores for a disjoint ADDRESS STRIPE
// set (64 KiB stripes, round-robin).  Every worker consumes the same
// access-history queue in the same DAG-conforming order and applies only
// the pieces of each interval that fall into its stripes.
//
// Soundness: each byte belongs to exactly one shard, whose worker maintains
// the full (last-writer, left-most-reader, right-most-reader) summary for
// it and observes all strands in the single global order - so per byte the
// algorithm is literally the original one, and Theorem 5's argument applies
// shard-by-shard.  No synchronization between shards is ever needed; the
// only cost is that a large interval is processed as one piece per stripe
// it spans (still ~8000x coarser than per-granule work).

#include <cstdint>
#include <vector>

#include "detect/history.hpp"
#include "detect/tiered_history.hpp"
#include "reach/engine.hpp"
#include "support/assert.hpp"
#include "support/timer.hpp"
#include "treap/interval_treap.hpp"

namespace pint::pintd {

/// Stripe size: big enough that treap operations stay coarse, small enough
/// that a benchmark's working set spreads across shards.
constexpr std::uint64_t kShardStripeBytes = std::uint64_t(1) << 16;

/// Invokes fn(piece_lo, piece_hi) for the parts of [lo, hi] whose stripe
/// index maps to `shard` (stripe_index % nshards == shard).
///
/// Written to be overflow-proof over the full addr_t domain, including
/// intervals that touch the last stripe (hi == addr_t max):
///  * the stripe's top byte is `slo | (stripe_size-1)` - an OR can't wrap,
///    unlike `slo + stripe_size - 1`;
///  * the loop exits by comparing the CURRENT stripe against the last one
///    before incrementing, so `++stripe` never wraps past the final stripe.
template <class F>
inline void for_shard_pieces(detect::addr_t lo, detect::addr_t hi, int shard,
                             int nshards, F&& fn) {
  PINT_ASSERT(lo <= hi);
  const std::uint64_t last = hi / kShardStripeBytes;
  for (std::uint64_t stripe = lo / kShardStripeBytes;; ++stripe) {
    if (int(stripe % std::uint64_t(nshards)) == shard) {
      const detect::addr_t slo = stripe * kShardStripeBytes;
      const detect::addr_t shi = slo | (kShardStripeBytes - 1);
      fn(lo > slo ? lo : slo, hi < shi ? hi : shi);
    }
    if (stripe == last) break;
  }
}

/// One history shard: the full three-store summary for its stripes.
struct HistoryShard {
  detect::TieredHistory writer;
  detect::TieredHistory lreader;
  detect::TieredHistory rreader;
  StopwatchAccum watch;
  // precedes() memo - touched only by this shard's worker thread, like the
  // treaps above.  Counters summed into Stats at run end (quiescence).
  reach::Engine::Memo memo;

  HistoryShard(std::uint64_t seed_w, std::uint64_t seed_l, std::uint64_t seed_r,
               bool tier = false)
      : writer(seed_w, tier), lreader(seed_l, tier), rreader(seed_r, tier) {}

  /// Applies one strand record to this shard (reads checked then inserted,
  /// writes checked against all three stores then inserted, clears/frees
  /// erased) - the same order as the three dedicated workers use, restricted
  /// to this shard's stripes.
  ///
  /// Bulk path (DESIGN.md §10): a canonical record list's shard pieces -
  /// sorted pieces of sorted disjoint intervals - form one sorted disjoint
  /// run, so each store takes ONE *_run call per phase instead of one
  /// operation per piece.  The race-report SET is unchanged (queries don't
  /// mutate and the per-store event sequences are identical); only the
  /// interleaving of the three stores' reports within a strand moves.
  void process(const detect::Strand& s, int shard, int nshards,
               reach::Engine& reach, detect::RaceReporter& rep,
               detect::Stats& stats, bool use_memo = true) {
    using detect::ReaderSide;
    const treap::Accessor me = detect::accessor_of(s);
    const bool bulk = detect::bulk_apply();
    reach::Engine::Memo* const mm = use_memo ? &memo : nullptr;

    if (bulk && s.reads.canonical()) {
      gather_pieces(s.reads.items(), shard, nshards);
      if (!run_buf_.empty()) {
        detect::note_bulk_run(stats, run_buf_.size());
        writer.query_run(run_buf_.data(), run_buf_.size(),
                         detect::make_conflict_cb(me, true, false, reach, rep,
                                                  stats, mm));
      }
    } else {
      for (const detect::Interval& r : s.reads.items()) {
        for_shard_pieces(r.lo, r.hi, shard, nshards, [&](auto lo, auto hi) {
          writer.query(lo, hi, detect::make_conflict_cb(me, true, false, reach,
                                                        rep, stats, mm));
        });
      }
    }
    if (bulk && s.writes.canonical()) {
      gather_pieces(s.writes.items(), shard, nshards);
      if (!run_buf_.empty()) {
        detect::note_bulk_run(stats, run_buf_.size() * 3);
        lreader.query_run(run_buf_.data(), run_buf_.size(),
                          detect::make_conflict_cb(me, false, true, reach, rep,
                                                   stats, mm));
        rreader.query_run(run_buf_.data(), run_buf_.size(),
                          detect::make_conflict_cb(me, false, true, reach, rep,
                                                   stats, mm));
        writer.insert_writer_run(run_buf_.data(), run_buf_.size(), me,
                                 detect::make_conflict_cb(me, true, true, reach,
                                                          rep, stats, mm));
      }
    } else {
      for (const detect::Interval& w : s.writes.items()) {
        for_shard_pieces(w.lo, w.hi, shard, nshards, [&](auto lo, auto hi) {
          lreader.query(lo, hi, detect::make_conflict_cb(me, false, true, reach,
                                                         rep, stats, mm));
          rreader.query(lo, hi, detect::make_conflict_cb(me, false, true, reach,
                                                         rep, stats, mm));
          writer.insert_writer(lo, hi, me,
                               detect::make_conflict_cb(me, true, true, reach,
                                                        rep, stats, mm));
        });
      }
    }
    const auto lresolve = detect::make_reader_resolver(
        me, reach, stats, ReaderSide::kLeftMost, mm);
    const auto rresolve = detect::make_reader_resolver(
        me, reach, stats, ReaderSide::kRightMost, mm);
    if (bulk && s.reads.canonical()) {
      gather_pieces(s.reads.items(), shard, nshards);
      if (!run_buf_.empty()) {
        detect::note_bulk_run(stats, run_buf_.size() * 2);
        lreader.insert_reader_run(run_buf_.data(), run_buf_.size(), me,
                                  lresolve);
        rreader.insert_reader_run(run_buf_.data(), run_buf_.size(), me,
                                  rresolve);
      }
    } else {
      for (const detect::Interval& r : s.reads.items()) {
        for_shard_pieces(r.lo, r.hi, shard, nshards, [&](auto lo, auto hi) {
          lreader.insert_reader(lo, hi, me, lresolve);
          rreader.insert_reader(lo, hi, me, rresolve);
        });
      }
    }
    // One interval's shard pieces are always a sorted disjoint run, so the
    // clears/frees (arbitrary-order lists) erase one run per interval.
    for (const detect::Interval& c : s.clears) erase_pieces(c.lo, c.hi, shard, nshards, bulk);
    for (const detect::HeapFree& f : s.frees) erase_pieces(f.lo, f.hi, shard, nshards, bulk);
  }

 private:
  /// Collects this shard's pieces of every interval in the (canonical) list
  /// into run_buf_.  Piece order within an interval is ascending and the
  /// intervals are sorted and disjoint, so the concatenation is one sorted
  /// disjoint run.
  template <class List>
  void gather_pieces(const List& items, int shard, int nshards) {
    run_buf_.clear();
    for (const auto& it : items) {
      for_shard_pieces(it.lo, it.hi, shard, nshards, [&](auto lo, auto hi) {
        run_buf_.push_back({lo, hi});
      });
    }
  }

  void erase_pieces(detect::addr_t lo, detect::addr_t hi, int shard,
                    int nshards, bool bulk) {
    if (bulk) {
      run_buf_.clear();
      for_shard_pieces(lo, hi, shard, nshards, [&](auto plo, auto phi) {
        run_buf_.push_back({plo, phi});
      });
      if (run_buf_.empty()) return;
      writer.erase_run(run_buf_.data(), run_buf_.size());
      lreader.erase_run(run_buf_.data(), run_buf_.size());
      rreader.erase_run(run_buf_.data(), run_buf_.size());
    } else {
      for_shard_pieces(lo, hi, shard, nshards, [&](auto plo, auto phi) {
        writer.erase_range(plo, phi);
        lreader.erase_range(plo, phi);
        rreader.erase_range(plo, phi);
      });
    }
  }

  std::vector<detect::Interval> run_buf_;  // shard-worker private scratch
};

}  // namespace pint::pintd
