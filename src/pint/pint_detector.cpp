#include "pint/pint_detector.hpp"

#include <cstdio>
#include <cstdlib>
#include <new>
#include <system_error>
#include <thread>

#include "detect/history.hpp"
#include "detect/instrument.hpp"
#include "support/arena.hpp"
#include "support/error_sink.hpp"
#include "support/failpoint.hpp"
#include "support/rng.hpp"
#include "support/telemetry.hpp"
#include "support/timer.hpp"

namespace pint::pintd {

using detect::ReaderSide;
using detect::Strand;

namespace {
std::uint64_t subseed(std::uint64_t seed, std::uint64_t salt) {
  std::uint64_t s = seed + salt * 0x9e3779b97f4a7c15ULL;
  return splitmix64(s);
}

// How long an allocation-failure fallback waits for the pipeline to recycle
// an object before declaring the run unsurvivable (clean abort through the
// error sink rather than a silent hang).
constexpr std::uint64_t kAllocWaitNs = 10ull * 1000 * 1000 * 1000;

// Consumer-lane batch size: strands processed per head snapshot before the
// deferred RECYCLE decrements, cursor publication, and heartbeat run
// (DESIGN.md §10).  Small enough that the watchdog still sees beats from a
// merely-slow lane, big enough to amortize the per-strand acq_rel RMW and
// the two heartbeat stores.
constexpr std::uint64_t kConsumeBatch = 32;

// Software prefetch of the next strand's record chunks while the current
// one is processed: the strand header plus the interval arrays its history
// ops will walk.  Advisory only - correctness never depends on it; the
// strand was published before the head store the caller snapshotted.
inline void prefetch_strand_records(const Strand* s) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(static_cast<const void*>(s), 0, 3);
  const auto& reads = s->reads.items();
  if (!reads.empty()) __builtin_prefetch(reads.data(), 0, 2);
  const auto& writes = s->writes.items();
  if (!writes.empty()) __builtin_prefetch(writes.data(), 0, 2);
#else
  (void)s;
#endif
}

// Emergency-reserve sizes (per detector), carved out at construction while
// memory is still available.  Sized for the transient burst between an
// allocation failure and the pipeline drain catching up: a spawn allocates
// up to 3 strands, so 32 strands ≈ 10 spawns of cushion.
constexpr std::size_t kReserveStrands = 32;
constexpr std::size_t kReserveChunks = 8;
constexpr std::size_t kReserveTraces = 4;

// Shared pool-take: reuse from `pool`, or allocate fresh into `owned`.  One
// lock acquisition either way (the old per-pool copies dropped and re-took
// the lock on the miss path).  `on_reuse` reinitialises a recycled object
// and runs under the lock, before the object escapes the pool.  A same-run
// pool miss first tries the process-wide arena recycler (DESIGN.md §13) -
// objects retired by a previous detector instance, reused here with their
// grown container capacities intact; the recycler sits AFTER the failpoint
// so injected allocation failures behave identically with the arena on.
// Returns nullptr when the fresh allocation fails - really (bad_alloc) or
// by injection ("pool.alloc" fires only on the miss path, so `once` mode
// deterministically fails one true allocation).
template <class T, class Reuse>
T* pool_take(Spinlock& mu, std::vector<T*>& pool,
             std::vector<std::unique_ptr<T>>& owned, Reuse&& on_reuse) {
  LockGuard<Spinlock> g(mu);
  if (!pool.empty()) {
    T* t = pool.back();
    pool.pop_back();
    on_reuse(t);
    return t;
  }
  if (PINT_UNLIKELY(PINT_FAILPOINT("pool.alloc"))) return nullptr;
  if (auto rec = support::Recycler<T>::instance().take()) {
    T* t = rec.get();
    owned.push_back(std::move(rec));
    on_reuse(t);
    return t;
  }
  try {
    support::note_arena_fresh();
    auto fresh = std::make_unique<T>();
    T* p = fresh.get();
    owned.push_back(std::move(fresh));
    return p;
  } catch (const std::bad_alloc&) {
    return nullptr;
  }
}
}  // namespace

PintDetector::PintDetector(const Options& opt)
    : opt_(opt),
      queue_(opt.queue_capacity),
      writer_treap_(subseed(opt.seed, 1), opt.tuning.tier),
      lreader_treap_(subseed(opt.seed, 2), opt.tuning.tier),
      rreader_treap_(subseed(opt.seed, 3), opt.tuning.tier) {
  rep_.set_verbose(opt_.verbose_races);
  PINT_CHECK_MSG(
      opt_.history_shards == 0 || opt_.history == detect::HistoryKind::kTreap,
      "sharded history supports the treap store only");
  for (int k = 0; k < opt_.history_shards; ++k) {
    shards_.push_back(std::make_unique<HistoryShard>(
        subseed(opt_.seed, 10 + std::uint64_t(k) * 3),
        subseed(opt_.seed, 11 + std::uint64_t(k) * 3),
        subseed(opt_.seed, 12 + std::uint64_t(k) * 3), opt_.tuning.tier));
  }
  for (int i = 0; i < opt_.core_workers; ++i) {
    auto ws = std::make_unique<CoreWS>();
    ws->index = std::uint32_t(i);
    ws_.push_back(std::move(ws));
  }
  seq_history_ = !opt_.parallel_history;

  // One monitored lane per queue consumer (2 readers, or N shards).
  const int nlanes = shards_.empty() ? 2 : int(shards_.size());
  for (int i = 0; i < nlanes; ++i) {
    auto lane = std::make_unique<ConsumerLane>();
    if (shards_.empty()) {
      std::snprintf(lane->name, sizeof(lane->name), "%s",
                    i == 0 ? "lreader" : "rreader");
    } else {
      std::snprintf(lane->name, sizeof(lane->name), "shard%d", i);
    }
    // Idle until the consumer loop starts (the core phase may run long
    // before any history work exists).
    lane->hb.set_idle(true);
    lanes_.push_back(std::move(lane));
  }
  hb_writer_.set_idle(true);
  hb_backoff_.set_idle(true);

  // Emergency reserves: carved out now so an allocation failure mid-run has
  // a cushion while the pipeline drain catches up.
  reserve_strands_owned_.reserve(kReserveStrands);
  for (std::size_t i = 0; i < kReserveStrands; ++i) {
    reserve_strands_owned_.push_back(std::make_unique<Strand>());
    reserve_strands_.push_back(reserve_strands_owned_.back().get());
  }
  reserve_chunks_owned_.reserve(kReserveChunks);
  for (std::size_t i = 0; i < kReserveChunks; ++i) {
    reserve_chunks_owned_.push_back(std::make_unique<TraceChunk>());
    reserve_chunks_.push_back(reserve_chunks_owned_.back().get());
  }
  reserve_traces_owned_.reserve(kReserveTraces);
  for (std::size_t i = 0; i < kReserveTraces; ++i) {
    reserve_traces_owned_.push_back(std::make_unique<Trace>());
    reserve_traces_.push_back(reserve_traces_owned_.back().get());
  }
}

PintDetector::~PintDetector() {
  // Arena retirement (DESIGN.md §13): hand every owned pool object to the
  // process-wide recyclers wholesale so the next detector instance starts
  // warm.  Recycler::give_all checks the live knob itself (off -> plain
  // destruction); objects are retired as-is - takers reinitialize.
  for (auto& ws : ws_) {
    support::Recycler<Strand>::instance().give_all(&ws->owned);
  }
  support::Recycler<Strand>::instance().give_all(&reserve_strands_owned_);
  support::Recycler<Trace>::instance().give_all(&all_traces_);
  support::Recycler<Trace>::instance().give_all(&reserve_traces_owned_);
  support::Recycler<TraceChunk>::instance().give_all(&all_chunks_);
  support::Recycler<TraceChunk>::instance().give_all(&reserve_chunks_owned_);
}

// ---------------------------------------------------------------------------
// Pools
// ---------------------------------------------------------------------------

Strand* PintDetector::alloc_strand(CoreWS& ws) {
  Strand* s = pool_take(ws.pool_mu, ws.pool, ws.owned,
                        [](Strand*) { /* reset(sid) below */ });
  if (PINT_UNLIKELY(s == nullptr)) s = strand_fallback(ws);
  const std::uint64_t sid =
      (std::uint64_t(ws.index + 1) << 40) | ++ws.next_sid;
  s->reset(sid);
  s->owner_worker = ws.index;
  ws.strands++;
  strands_outstanding_.fetch_add(1, std::memory_order_relaxed);
  return s;
}

// ---------------------------------------------------------------------------
// Graceful degradation: allocation-failure fallbacks
// ---------------------------------------------------------------------------

void PintDetector::note_oom(const char* what) {
  if (!oom_.exchange(true, std::memory_order_acq_rel)) {
    error_headerf("allocation failure (%s): degrading - tapping the "
                  "emergency reserve / draining the pipeline; the run will "
                  "report out-of-memory\n",
                  what);
  }
  stats_.oom_events.fetch_add(1, std::memory_order_relaxed);
}

Strand* PintDetector::strand_fallback(CoreWS& ws) {
  note_oom("strand pool");
  {
    LockGuard<Spinlock> g(reserve_mu_);
    if (!reserve_strands_.empty()) {
      Strand* s = reserve_strands_.back();
      reserve_strands_.pop_back();
      return s;
    }
  }
  // Reserve exhausted: block on the pipeline drain - the writer recycles
  // strands into this worker's free list as consumers finish with them.
  // Sequential mode has no concurrent drain, and a cancelled pipeline will
  // never refill the list: both are unsurvivable dead-ends, reported
  // cleanly through the error sink instead of hanging.
  const std::uint64_t give_up_at = now_ns() + kAllocWaitNs;
  Backoff bo;
  for (;;) {
    {
      LockGuard<Spinlock> g(ws.pool_mu);
      if (!ws.pool.empty()) {
        Strand* s = ws.pool.back();
        ws.pool.pop_back();
        return s;
      }
    }
    if (seq_history_) {
      fatal_errorf("strand allocation failed in sequential-history mode "
                   "(nothing recycles until the reader phases; cannot "
                   "degrade further)\n");
    }
    if (cancel_.load(std::memory_order_relaxed) || now_ns() > give_up_at) {
      fatal_errorf("strand pool exhausted and the pipeline drain made no "
                   "progress; giving up cleanly\n");
    }
    bo.pause();
  }
}

Trace* PintDetector::trace_fallback() {
  note_oom("trace pool");
  {
    LockGuard<Spinlock> g(reserve_mu_);
    if (!reserve_traces_.empty()) {
      Trace* t = reserve_traces_.back();
      reserve_traces_.pop_back();
      return t;
    }
  }
  const std::uint64_t give_up_at = now_ns() + kAllocWaitNs;
  Backoff bo;
  for (;;) {
    {
      LockGuard<Spinlock> g(tp_mu_);
      if (!trace_pool_.empty()) {
        Trace* t = trace_pool_.back();
        trace_pool_.pop_back();
        return t;
      }
    }
    if (seq_history_) {
      fatal_errorf("trace allocation failed in sequential-history mode; "
                   "cannot degrade further\n");
    }
    if (cancel_.load(std::memory_order_relaxed) || now_ns() > give_up_at) {
      fatal_errorf("trace pool exhausted and the pipeline drain made no "
                   "progress; giving up cleanly\n");
    }
    bo.pause();
  }
}

TraceChunk* PintDetector::chunk_fallback() {
  note_oom("chunk pool");
  {
    LockGuard<Spinlock> g(reserve_mu_);
    if (!reserve_chunks_.empty()) {
      TraceChunk* c = reserve_chunks_.back();
      reserve_chunks_.pop_back();
      return c;  // freshly constructed: already clean
    }
  }
  const std::uint64_t give_up_at = now_ns() + kAllocWaitNs;
  Backoff bo;
  for (;;) {
    {
      LockGuard<Spinlock> g(cp_mu_);
      if (!chunk_pool_.empty()) {
        TraceChunk* c = chunk_pool_.back();
        chunk_pool_.pop_back();
        for (auto& slot : c->slots) {
          slot.store(nullptr, std::memory_order_relaxed);
        }
        c->next.store(nullptr, std::memory_order_relaxed);
        return c;
      }
    }
    if (seq_history_) {
      fatal_errorf("chunk allocation failed in sequential-history mode; "
                   "cannot degrade further\n");
    }
    if (cancel_.load(std::memory_order_relaxed) || now_ns() > give_up_at) {
      fatal_errorf("chunk pool exhausted and the pipeline drain made no "
                   "progress; giving up cleanly\n");
    }
    bo.pause();
  }
}

void PintDetector::recycle_strand(Strand* s) {
  CoreWS& ws = *ws_[s->owner_worker];
  strands_outstanding_.fetch_sub(1, std::memory_order_relaxed);
  LockGuard<Spinlock> g(ws.pool_mu);
  ws.pool.push_back(s);
}

Trace* PintDetector::alloc_trace() {
  Trace* t = pool_take(tp_mu_, trace_pool_, all_traces_,
                       [](Trace*) { /* callers init() before use */ });
  traces_outstanding_.fetch_add(1, std::memory_order_relaxed);
  return PINT_LIKELY(t != nullptr) ? t : trace_fallback();
}

TraceChunk* PintDetector::alloc_chunk() {
  TraceChunk* c =
      pool_take(cp_mu_, chunk_pool_, all_chunks_, [](TraceChunk* ch) {
        for (auto& slot : ch->slots) {
          slot.store(nullptr, std::memory_order_relaxed);
        }
        ch->next.store(nullptr, std::memory_order_relaxed);
      });
  chunks_outstanding_.fetch_add(1, std::memory_order_relaxed);
  return PINT_LIKELY(c != nullptr) ? c : chunk_fallback();
}

void PintDetector::recycle_trace(Trace* t) {
  traces_outstanding_.fetch_sub(1, std::memory_order_relaxed);
  LockGuard<Spinlock> g(tp_mu_);
  trace_pool_.push_back(t);
}

void PintDetector::recycle_chunk(TraceChunk* c) {
  chunks_outstanding_.fetch_sub(1, std::memory_order_relaxed);
  LockGuard<Spinlock> g(cp_mu_);
  chunk_pool_.push_back(c);
}

// ---------------------------------------------------------------------------
// Core-component helpers
// ---------------------------------------------------------------------------

void PintDetector::trace_push(CoreWS& ws, Strand* s) {
  if (ws.cur->push_needs_chunk()) ws.cur->supply_chunk(alloc_chunk());
  ws.cur->push(s);
}

void PintDetector::start_new_trace(CoreWS& ws) {
  Trace* t = alloc_trace();
  t->init(alloc_chunk());
  Trace* old = ws.cur;
  old->mark_finished();
  old->set_next_trace(t);  // after mark_finished: consumer sees both in order
  ws.cur = t;
  ws.traces++;
}

void PintDetector::seal_strand(CoreWS& ws, Strand* s) {
  PINT_TCOUNT("core.seal");
  s->reads.finalize(opt_.coalesce);
  s->writes.finalize(opt_.coalesce);
  ws.read_intervals += s->reads.items().size();
  ws.write_intervals += s->writes.items().size();
  ws.tail_hits += s->reads.tail_hits() + s->writes.tail_hits();
  ws.tail_misses += s->reads.tail_misses() + s->writes.tail_misses();
  ws.fin_sorted += (s->reads.fin_path() == detect::FinalizePath::kSorted) +
                   (s->writes.fin_path() == detect::FinalizePath::kSorted);
  ws.fin_simd += (s->reads.fin_path() == detect::FinalizePath::kSimd) +
                 (s->writes.fin_path() == detect::FinalizePath::kSimd);
}

void PintDetector::cursor_flush(CoreWS& ws) {
  const detect::CursorFlush fl = detect::cursor_invalidate();
  ws.raw_reads += fl.raw_reads;
  ws.raw_writes += fl.raw_writes;
  ws.fast_accesses += fl.raw_reads + fl.raw_writes;
  ws.fast_hits += fl.hits;
  ws.cursor_spills += fl.spills;
  ws.policy_switches += fl.policy_switches;
  ws.policy_bypass += fl.bypassed;
}

// ---------------------------------------------------------------------------
// detect::Detector (memory events, on core workers)
// ---------------------------------------------------------------------------

void PintDetector::on_access(rt::Worker& w, rt::TaskFrame& f, detect::addr_t lo,
                             detect::addr_t hi, bool is_write) {
  // Classic route: taken only when the AccessCursor fast path is disabled
  // (ablation) - with a cursor installed, record_access never reaches here.
  auto& ws = *static_cast<CoreWS*>(w.det_worker);
  auto* s = static_cast<Strand*>(f.det_strand);
  PINT_ASSERT(s != nullptr);
  ws.slow_accesses++;
  if (is_write) {
    ws.raw_writes++;
    if (opt_.coalesce) {
      s->writes.add(lo, hi);
    } else {
      s->writes.add_raw(lo, hi);
    }
  } else {
    ws.raw_reads++;
    if (opt_.coalesce) {
      s->reads.add(lo, hi);
    } else {
      s->reads.add_raw(lo, hi);
    }
  }
}

void PintDetector::on_heap_free(rt::Worker&, rt::TaskFrame& f, void* base,
                                detect::addr_t lo, detect::addr_t hi) {
  auto* s = static_cast<Strand*>(f.det_strand);
  PINT_ASSERT(s != nullptr);
  s->frees.push_back({base, lo, hi});
}

void PintDetector::on_lock_event(rt::Worker& w, rt::TaskFrame& f,
                                 detect::addr_t lock, bool acquire) {
  auto& ws = *static_cast<CoreWS*>(w.det_worker);
  auto* u = static_cast<Strand*>(f.det_strand);
  PINT_ASSERT(u != nullptr);
  auto& tbl = detect::LocksetTable::instance();
  const detect::lockset_t nid =
      acquire ? tbl.acquire(u->lsid, lock) : tbl.release(u->lsid, lock);
  if (nid == u->lsid) return;  // recursive re-acquire / unmatched release
  cursor_flush(ws);
  if (!u->has_work()) {
    // Nothing recorded under the old lockset yet: relabel in place instead
    // of emitting an empty segment (the common acquire-then-touch shape).
    u->lsid = nid;
    detect::cursor_install(&u->reads, &u->writes, opt_.coalesce);
    return;
  }
  // Split: seal the old segment and continue on a fresh strand with the
  // SAME reachability label (no HB edge - same-label segments are ordered
  // by neither order, so they are never judged parallel) but a new sid and
  // the new lockset.  u keeps its pred gate / first-of-trace role; v
  // follows it in series within the same trace, so the DAG-conforming
  // collection order is unchanged.
  seal_strand(ws, u);
  Strand* v = alloc_strand(ws);
  v->label = u->label;
  v->tag = u->tag;
  v->lsid = nid;
  f.det_strand = v;
  trace_push(ws, u);
  detect::cursor_install(&v->reads, &v->writes, opt_.coalesce);
}

void PintDetector::on_lock_acquire(rt::Worker& w, rt::TaskFrame& f,
                                   detect::addr_t lock) {
  if (!opt_.tuning.lock_edges) return;
  on_lock_event(w, f, lock, true);
}

void PintDetector::on_lock_release(rt::Worker& w, rt::TaskFrame& f,
                                   detect::addr_t lock) {
  if (!opt_.tuning.lock_edges) return;
  on_lock_event(w, f, lock, false);
}

// ---------------------------------------------------------------------------
// rt::SchedulerHooks (Algorithm 1)
// ---------------------------------------------------------------------------

void PintDetector::on_root_start(rt::Worker& w, rt::TaskFrame& f) {
  auto& ws = *static_cast<CoreWS*>(w.det_worker);
  Strand* r = alloc_strand(ws);
  r->label = reach_.root_label();
  r->tag = f.task_name;
  f.det_strand = r;
  detect::cursor_install(&r->reads, &r->writes, opt_.coalesce);
}

void PintDetector::on_root_end(rt::Worker& w, rt::TaskFrame& f) {
  auto& ws = *static_cast<CoreWS*>(w.det_worker);
  auto* u = static_cast<Strand*>(f.det_strand);
  cursor_flush(ws);
  seal_strand(ws, u);
  u->clears.push_back({f.fiber->stack_lo(), f.fiber->stack_hi() - 1});
  // trace insertion happens at on_task_retire, off this fiber's stack
}

void PintDetector::on_spawn(rt::Worker& w, rt::TaskFrame& parent,
                            rt::SyncBlock& blk, rt::TaskFrame& child) {
  auto& ws = *static_cast<CoreWS*>(w.det_worker);
  auto* u = static_cast<Strand*>(parent.det_strand);
  cursor_flush(ws);
  seal_strand(ws, u);

  auto* j = static_cast<Strand*>(blk.det_sync);
  if (j == nullptr) {
    // First spawn of the sync block: create the sync node now so its label
    // is in series with the entire block (see reach/sp_order.hpp).
    j = alloc_strand(ws);
    blk.det_sync = j;
  }
  if (j->tag == nullptr) j->tag = parent.task_name;
  const auto labels = reach_.on_spawn(u->label, &j->label);
  Strand* g = alloc_strand(ws);  // first strand of the spawned function
  g->label = labels.child;
  g->tag = child.task_name;
  Strand* t = alloc_strand(ws);  // continuation strand
  t->label = labels.cont;
  t->tag = parent.task_name;
  // Lockset rule (same as every detector): the continuation still holds the
  // parent's locks; the child may run on a worker that does not, so it
  // starts empty (as does the sync node).
  t->lsid = u->lsid;
  t->pred.store(1, std::memory_order_relaxed);  // Algorithm 1, line 8
  u->collect_child = t;  // "u is a spawn node" case of Algorithm 2

  child.det_strand = g;
  parent.det_cont = t;
  trace_push(ws, u);  // Algorithm 1, line 11
  // The spawned child runs next on this worker (continuation stealing).
  detect::cursor_install(&g->reads, &g->writes, opt_.coalesce);
}

void PintDetector::on_spawn_return(rt::Worker& w, rt::TaskFrame& child,
                                   bool continuation_stolen) {
  auto& ws = *static_cast<CoreWS*>(w.det_worker);
  auto* u = static_cast<Strand*>(child.det_strand);  // the return node
  cursor_flush(ws);
  seal_strand(ws, u);
  if (continuation_stolen) {
    // Algorithm 1, lines 15-17: this return node becomes a predecessor of
    // the parent block's (non-trivial) sync node.
    auto* j = static_cast<Strand*>(child.parent_scope->det_sync);
    PINT_ASSERT(j != nullptr);
    u->collect_child = j;
    j->pred.fetch_add(1, std::memory_order_acq_rel);
  }
  // The spawned function's stack dies with it: clear it from the access
  // history when this strand is processed (paper §III-F), and hold the
  // fiber back until then (set at on_task_retire).
  u->clears.push_back({child.fiber->stack_lo(), child.fiber->stack_hi() - 1});
}

void PintDetector::on_continuation(rt::Worker& w, rt::TaskFrame& parent,
                                   bool stolen) {
  auto* t = static_cast<Strand*>(parent.det_cont);
  PINT_ASSERT(t != nullptr);
  parent.det_cont = nullptr;
  parent.det_strand = t;
  if (stolen) {
    // Algorithm 1, lines 22-24: a stolen continuation starts a new trace on
    // the thief.  The reachability engine hears about the migration too -
    // a no-op for both current backends (their labels are globally valid),
    // but the seam's contract for an engine keeping per-worker state.
    reach_.on_steal(t->label);
    auto& ws = *static_cast<CoreWS*>(w.det_worker);
    start_new_trace(ws);
  }
  // The continuation strand runs next on this worker - on the thief after a
  // steal, on the original worker otherwise (its child-cursor was flushed
  // at on_spawn_return).
  detect::cursor_install(&t->reads, &t->writes, opt_.coalesce);
}

void PintDetector::on_sync(rt::Worker& w, rt::TaskFrame& f, rt::SyncBlock& blk,
                           bool trivial) {
  auto* j = static_cast<Strand*>(blk.det_sync);
  if (j == nullptr) return;  // no spawn since the last sync: sync is a no-op
  // (strand u continues - its cursor stays installed)
  auto& ws = *static_cast<CoreWS*>(w.det_worker);
  auto* u = static_cast<Strand*>(f.det_strand);
  cursor_flush(ws);
  seal_strand(ws, u);
  if (!trivial) {
    // Algorithm 1, lines 29-31.
    u->collect_child = j;
    j->pred.fetch_add(1, std::memory_order_acq_rel);
  }
  trace_push(ws, u);  // Algorithm 1, line 32
}

void PintDetector::on_after_sync(rt::Worker& w, rt::TaskFrame& f,
                                 rt::SyncBlock& blk, bool trivial) {
  auto* j = static_cast<Strand*>(blk.det_sync);
  if (j == nullptr) return;
  // Join maintenance: the strand that reached the sync joins the block's
  // sync node (no-op for both current backends; seam contract).
  reach_.on_join(static_cast<Strand*>(f.det_strand)->label, j->label);
  if (!trivial) {
    // Algorithm 1, lines 35-37: a non-trivial sync starts a new trace on
    // whichever worker passed it.
    auto& ws = *static_cast<CoreWS*>(w.det_worker);
    start_new_trace(ws);
  }
  f.det_strand = j;  // the sync node is the new current strand
  blk.det_sync = nullptr;
  // A non-trivial sync may resume on a different worker thread than the one
  // that parked at on_sync - install on whichever thread runs j next.
  detect::cursor_install(&j->reads, &j->writes, opt_.coalesce);
}

bool PintDetector::on_task_retire(rt::Worker& w, rt::TaskFrame& f) {
  // Runs on the worker loop, after the finished fiber was switched away
  // from - only now is it safe to publish the return-node strand (and with
  // it the fiber, whose stack must not be reused until the writer treap
  // worker processes this strand).
  auto& ws = *static_cast<CoreWS*>(w.det_worker);
  auto* u = static_cast<Strand*>(f.det_strand);
  if (seq_history_) {
    // Phased one-core mode: the whole run is a single trace, so any reuse of
    // this fiber's stack is by a strand strictly later in trace order - the
    // clear recorded on this return node is processed first (paper §III-F).
    // The fiber can be pooled immediately; only the strand record is held.
    trace_push(ws, u);
    return false;
  }
  u->retired_frame = &f;
  trace_push(ws, u);
  return true;
}

// ---------------------------------------------------------------------------
// Access-history component
// ---------------------------------------------------------------------------

void PintDetector::collect(Strand* s) {
  // Empty-strand skip (DESIGN.md §13): a strand with no accesses, clears or
  // frees contributes nothing to any history store, so publishing it only to
  // have every consumer step over it costs a ring slot, an acq_rel fence
  // pair and two stopwatch reads per lane.  The collection bookkeeping that
  // DOES matter still runs - the order log (the strand IS collected, in
  // order), the successor's pred decrement, and the retired-fiber release
  // (the writer released it at this same point in the collection order
  // before; an empty strand carries no clears whose ordering could matter).
  if (!s->has_work()) {
    if (opt_.record_collection_order) collection_log_.push_back(s->label);
    if (s->collect_child != nullptr) {
      s->collect_child->pred.fetch_sub(1, std::memory_order_acq_rel);
    }
    if (s->retired_frame != nullptr) {
      sched_->release_frame(s->retired_frame);
      s->retired_frame = nullptr;
    }
    stats_.empty_strand_skips.fetch_add(1, std::memory_order_relaxed);
    recycle_strand(s);
    return;
  }
  // Covers the queue push (including any backoff on a full ring) plus the
  // nested writer.strand span, so queue pressure is visible as the gap
  // between the two on the writer track.
  PINT_TSPAN("collect.strand");
  const std::int32_t nconsumers =
      shards_.empty() ? 3 : std::int32_t(shards_.size());
  s->consumers.store(nconsumers, std::memory_order_release);
  bool published = true;
  Backoff bo;
  for (;;) {
    // "ahqueue.push.full" simulates queue-full pressure: a fired hit makes
    // this attempt behave as if the ring had no room.
    const bool forced_full = PINT_FAILPOINT("ahqueue.push.full");
    if (PINT_LIKELY(!forced_full) && queue_.try_push(s)) break;
    stats_.stalled_pushes.fetch_add(1, std::memory_order_relaxed);
    PINT_TCOUNT("queue.full");
    if (seq_history_) {
      // Sequential mode buffers the entire run before the reader phases, so
      // the ring grows (no consumers are live yet) - up to the configured
      // cap, past which the strand is shed from the history: its deferred
      // resources are still released below, only its accesses are lost, and
      // the run reports kOutOfMemory.
      if (!queue_.try_grow_unsynchronized(opt_.max_queue_capacity)) {
        note_oom("history ring at max_queue_capacity");
        dropped_strands_.fetch_add(1, std::memory_order_relaxed);
        stats_.dropped_strands.fetch_add(1, std::memory_order_relaxed);
        published = false;
        break;
      }
      continue;
    }
    queue_.reclaim([this](Strand* d) { recycle_strand(d); });
    // The backoff path is alive-but-stalled: it beats its own heartbeat
    // (so the watchdog blames the stage that stopped draining, not the
    // waiting writer) and honors cancellation so a dead consumer cannot
    // wedge collection forever.
    hb_backoff_.set_idle(false);
    hb_backoff_.beat();
    stats_.backoff_pauses.fetch_add(1, std::memory_order_relaxed);
    PINT_TCOUNT("collect.backoff");
    if (PINT_UNLIKELY(cancel_.load(std::memory_order_relaxed))) {
      dropped_strands_.fetch_add(1, std::memory_order_relaxed);
      stats_.dropped_strands.fetch_add(1, std::memory_order_relaxed);
      published = false;
      break;
    }
    bo.pause();
  }
  // The backoff heartbeat is busy only while the loop above spins on a full
  // queue; every exit (push succeeded, strand shed, cancelled) returns it to
  // idle so a past transient stall cannot trip the watchdog later.
  hb_backoff_.set_idle(true);
  if (PINT_LIKELY(published)) {
    pushed_.fetch_add(1, std::memory_order_relaxed);
    if (opt_.record_collection_order) collection_log_.push_back(s->label);
  }
  // Algorithm 2, lines 42-44.  Runs even for shed strands: successors must
  // still become collectable.
  if (s->collect_child != nullptr) {
    s->collect_child->pred.fetch_sub(1, std::memory_order_acq_rel);
  }
  process_writer(s);
  if (shards_.empty() && published) {
    s->consumers.fetch_sub(1, std::memory_order_acq_rel);
  }
}

void PintDetector::process_writer(Strand* s) {
  if (!phase_watch_) writer_watch_.start();
  {
    // Span nested just inside the watch so the watch's CLOCK_THREAD_CPUTIME
    // reads (hundreds of ns each) stay out of the span; the exported
    // writer.strand sum then tracks Stats::writer_ns (the Fig. 2 "writer"
    // bar) to within the much cheaper span-record overhead.
    PINT_TSPAN("writer.strand");
    if (!shards_.empty()) {
      // Sharded mode: the collector does no history work itself; shards own
      // all three stores. Deferred resources are still released here (the
      // queue-order argument of paper SIII-F is unchanged).
    } else if (opt_.history == detect::HistoryKind::kTreap) {
      detect::process_writer_treap(writer_treap_, *s, reach_, rep_, stats_,
                                   opt_.tuning.memo ? &memo_writer_ : nullptr);
    } else {
      detect::process_writer_treap(writer_map_, *s, reach_, rep_, stats_,
                                   opt_.tuning.memo ? &memo_writer_ : nullptr);
    }
    // Deferred frees become real here: any later reuse of this memory is by
    // a strand collected after s, so each treap erases the range before
    // seeing the new owner's accesses (paper §III-F).
    for (const detect::HeapFree& hf : s->frees) std::free(hf.base);
    if (s->retired_frame != nullptr) {
      // Same argument for the fiber stack: reuse is only possible for
      // strands that land later in the access-history order.
      sched_->release_frame(s->retired_frame);
      s->retired_frame = nullptr;
    }
  }
  if (!phase_watch_) writer_watch_.stop();
}

bool PintDetector::collect_from(CoreWS& ws, bool* drained) {
  constexpr int kBatch = 64;
  bool progress = false;
  *drained = false;
  for (int i = 0; i < kBatch; ++i) {
    Trace* t = ws.ccur;
    Strand* s = t->peek();
    if (TraceChunk* dc = t->take_drained_chunk()) recycle_chunk(dc);
    if (s == nullptr) {
      if (t->drained()) {
        Trace* nt = t->next_trace();
        if (nt != nullptr) {
          recycle_chunk(t->last_chunk_for_recycle());
          recycle_trace(t);
          ws.ccur = nt;
          progress = true;
          continue;
        }
        *drained = true;
      }
      return progress;
    }
    if (!t->first_collected()) {
      // Collection Rule 1: the first strand of a trace is collectable only
      // once all its immediate predecessors were collected.
      if (s->pred.load(std::memory_order_acquire) != 0) return progress;
    }
    t->pop();
    t->set_first_collected();
    collect(s);
    progress = true;
  }
  return progress;
}

void PintDetector::writer_loop() {
  // Runs on the dedicated writer thread in parallel-history mode and on the
  // calling thread in the phased one-core mode; either way this is the
  // "writer" track from here on.
  telem::set_thread_role("writer");
  Backoff bo;
  for (;;) {
    if (PINT_UNLIKELY(cancel_.load(std::memory_order_relaxed))) break;
    const bool done_before_scan = core_done_.load(std::memory_order_acquire);
    bool progress = false;
    bool all_drained = true;
    for (auto& ws : ws_) {
      bool drained = false;
      progress |= collect_from(*ws, &drained);
      all_drained &= drained;
    }
    // Reclaim once per scan - batch granularity matching the consumers'
    // batched cursor publication (each scan collects up to kBatch strands
    // per worker, so both ends of the ring amortize their atomics).
    queue_.reclaim([this](Strand* d) { recycle_strand(d); });
    if (done_before_scan && all_drained) break;
    if (progress) {
      hb_writer_.set_idle(false);
      hb_writer_.beat();
      bo.reset();
    } else {
      // Nothing collectable right now: the core workers haven't produced
      // (or a first-strand pred gate is closed).  A legitimate wait, not a
      // stall - the watchdog must not blame the writer for a slow core.
      hb_writer_.set_idle(true);
      bo.pause();
    }
  }
  // Set even on cancellation so consumer loops drain what was published
  // and exit instead of spinning on a writer that is gone.
  collecting_done_.store(true, std::memory_order_release);
}

template <class ProcessFn>
void PintDetector::consume_loop(ConsumerLane& lane, ProcessFn&& process) {
  queue_.register_consumer();
  std::uint64_t cursor = 0;
  std::uint64_t batches = 0, drained = 0, prefetches = 0;
  Backoff bo;
  for (;;) {
    const std::uint64_t h = queue_.head();
    if (cursor == h) {
      if (collecting_done_.load(std::memory_order_acquire) &&
          cursor == queue_.head()) {
        break;
      }
      lane.hb.set_idle(true);
      bo.pause();
      continue;
    }
    lane.hb.set_idle(false);
    bo.reset();
    while (cursor < h) {
      // Batched drain (DESIGN.md §10): process up to kConsumeBatch strands
      // per head snapshot, prefetching the next strand's records behind the
      // current one, then retire the whole batch - the RECYCLE decrement,
      // cursor publication, and heartbeat move from per-strand to per-batch.
      const std::uint64_t end =
          h - cursor > kConsumeBatch ? cursor + kConsumeBatch : h;
      for (std::uint64_t i = cursor; i < end; ++i) {
        // Injection point for consumer stalls: with a delay-mode fail point
        // configured, this sleeps mid-processing while the lane is BUSY,
        // which is exactly the shape the watchdog exists to catch.
        (void)PINT_FAILPOINT("reader.stall");
        if (i + 1 < end) {
          prefetch_strand_records(queue_.at(i + 1));
          ++prefetches;
        }
        process(queue_.at(i));
      }
      // Deferred RECYCLE handoffs: each strand's last use above is still
      // sequenced before its own fetch_sub, so the release/acquire pairing
      // with AhQueue::reclaim() is unchanged - recycling is merely delayed,
      // and never by more than kConsumeBatch strands.
      for (std::uint64_t i = cursor; i < end; ++i) {
        queue_.at(i)->consumers.fetch_sub(1, std::memory_order_acq_rel);
      }
      drained += end - cursor;
      ++batches;
      cursor = end;
      lane.cursor.store(cursor, std::memory_order_relaxed);
      lane.hb.beat();
    }
  }
  lane.hb.set_idle(true);
  queue_.unregister_consumer();
  // Local tallies folded once per lane at exit; run() joins this thread
  // before snapshotting (Stats quiescence contract).
  stats_.batch_drains.fetch_add(batches, std::memory_order_relaxed);
  stats_.batch_strands.fetch_add(drained, std::memory_order_relaxed);
  stats_.prefetch_issues.fetch_add(prefetches, std::memory_order_relaxed);
}

void PintDetector::reader_loop(ReaderSide side) {
  const bool left = side == ReaderSide::kLeftMost;
  telem::set_thread_role(left ? "lreader" : "rreader");
  const char* span_name = left ? "lreader.strand" : "rreader.strand";
  detect::TieredHistory& t = left ? lreader_treap_ : rreader_treap_;
  detect::GranuleMap& m = left ? lreader_map_ : rreader_map_;
  const bool use_treap = opt_.history == detect::HistoryKind::kTreap;
  StopwatchAccum& watch = left ? lreader_watch_ : rreader_watch_;
  ConsumerLane& lane = *lanes_[left ? 0 : 1];
  // Phased one-core mode runs all three lanes on this one thread, so they
  // can share the writer lane's memo: a strand pair already judged while
  // walking the writer treap (strands that both wrote and read a region
  // appear in all three stores) is served from cache here too.  Pipelined
  // mode keeps one single-threaded cache per lane.
  reach::Engine::Memo* memo =
      !opt_.tuning.memo
          ? nullptr
          : (seq_history_ ? &memo_writer_
                          : (left ? &memo_lreader_ : &memo_rreader_));
  const bool pw = phase_watch_;
  consume_loop(lane, [&](Strand* s) {
    if (!pw) watch.start();
    {
      // Nested inside the watch (see process_writer): span sum ~= *_ns.
      telem::ScopedSpan span(span_name);
      if (use_treap) {
        detect::process_reader_treap(t, *s, reach_, rep_, stats_, side, memo);
      } else {
        detect::process_reader_treap(m, *s, reach_, rep_, stats_, side, memo);
      }
    }
    if (!pw) watch.stop();
  });
}

void PintDetector::shard_loop(int shard) {
  if (telem::enabled()) {
    char role[16];
    std::snprintf(role, sizeof(role), "shard%d", shard);
    telem::set_thread_role(role);
  }
  HistoryShard& hs = *shards_[std::size_t(shard)];
  const int n = int(shards_.size());
  ConsumerLane& lane = *lanes_[std::size_t(shard)];
  const bool pw = phase_watch_;
  consume_loop(lane, [&](Strand* s) {
    if (!pw) hs.watch.start();
    {
      PINT_TSPAN("shard.strand");
      hs.process(*s, shard, n, reach_, rep_, stats_, opt_.tuning.memo);
    }
    if (!pw) hs.watch.stop();
  });
}

void PintDetector::finish_history_sequential() {
  // Each lane is one uninterrupted phase on this thread, so the stopwatches
  // wrap the phases instead of every strand (see phase_watch_).  The writer
  // phase's watch covers collection too - which is the writer worker's job
  // in the paper's breakdown anyway.  Traced runs keep the per-strand
  // watches: the exported *.strand span sums are documented to agree with
  // the *_ns stats, which requires both to bracket the same code (the phase
  // watch also counts loop bookkeeping between strands), and a traced run
  // is diagnostic anyway - it already pays per-strand span records.
  phase_watch_ = !telem::enabled();
  const bool pw = phase_watch_;
  // Phase 1: collection (+ writer treap in the classic configuration).
  if (pw) writer_watch_.start();
  writer_loop();
  if (pw) writer_watch_.stop();
  if (!shards_.empty()) {
    for (int k = 0; k < int(shards_.size()); ++k) {
      HistoryShard& hs = *shards_[std::size_t(k)];
      if (pw) hs.watch.start();
      shard_loop(k);
      if (pw) hs.watch.stop();
    }
    return;
  }
  // Phase 2 & 3: the two reader treaps over the same global order.
  if (pw) lreader_watch_.start();
  reader_loop(ReaderSide::kLeftMost);
  if (pw) lreader_watch_.stop();
  if (pw) rreader_watch_.start();
  reader_loop(ReaderSide::kRightMost);
  if (pw) rreader_watch_.stop();
}

// ---------------------------------------------------------------------------
// Run orchestration
// ---------------------------------------------------------------------------

namespace {
/// Blocks a gated history thread until run() releases (go) or rolls back
/// (abort) the spawn batch.  Returns true to proceed into the loop.
bool wait_gate(const std::atomic<int>& gate) {
  Backoff bo;
  for (;;) {
    const int g = gate.load(std::memory_order_acquire);
    if (g != 0) return g == 1;
    bo.pause();
  }
}
}  // namespace

bool PintDetector::spawn_history_threads(std::thread* writer,
                                         std::vector<std::thread>* history) {
  // Threads hold at the gate until the whole batch spawned: none of them
  // touches the queue (producer pin, consumer registration) or the trace
  // cursors before release, so a partial batch can be joined and the run
  // rolled over to sequential-history mode with no shared state poisoned.
  gate_.store(0, std::memory_order_release);
  try {
    history->reserve(shards_.empty() ? 2 : shards_.size());
    if (PINT_FAILPOINT("history.spawn")) {
      throw std::system_error(
          std::make_error_code(std::errc::resource_unavailable_try_again),
          "injected history.spawn failure");
    }
    *writer = std::thread([this] {
      if (wait_gate(gate_)) writer_loop();
    });
    if (shards_.empty()) {
      for (int i = 0; i < 2; ++i) {
        if (PINT_FAILPOINT("history.spawn")) {
          throw std::system_error(
              std::make_error_code(std::errc::resource_unavailable_try_again),
              "injected history.spawn failure");
        }
        const ReaderSide side =
            i == 0 ? ReaderSide::kLeftMost : ReaderSide::kRightMost;
        history->emplace_back([this, side] {
          if (wait_gate(gate_)) reader_loop(side);
        });
      }
    } else {
      for (int k = 0; k < int(shards_.size()); ++k) {
        if (PINT_FAILPOINT("history.spawn")) {
          throw std::system_error(
              std::make_error_code(std::errc::resource_unavailable_try_again),
              "injected history.spawn failure");
        }
        history->emplace_back([this, k] {
          if (wait_gate(gate_)) shard_loop(k);
        });
      }
    }
  } catch (const std::exception& e) {
    // std::system_error from std::thread, or bad_alloc growing *history -
    // both take the same rollback to sequential-history mode.
    // Roll back: release every thread that did spawn straight to exit.
    gate_.store(2, std::memory_order_release);
    if (writer->joinable()) writer->join();
    for (auto& t : *history) {
      if (t.joinable()) t.join();
    }
    history->clear();
    error_headerf("history thread spawn failed (%s): falling back to the "
                  "sequential one-core history mode\n",
                  e.what());
    return false;
  }
  gate_.store(1, std::memory_order_release);
  return true;
}

void PintDetector::dump_progress(const char* stalled) {
  // Runs on the watchdog monitor thread while the pipeline may still be
  // live: reads only atomics (queue cursors, heartbeats, stats counters).
  std::FILE* f = error_stream();
  error_headerf(
      "WATCHDOG: pipeline stage '%s' busy but silent for %u ms - progress "
      "snapshot follows; cancelling the history pipeline\n",
      stalled, opt_.watchdog_ms);
  const std::uint64_t head = queue_.head();
  const std::uint64_t reclaimed = queue_.reclaimed();
  std::fprintf(f, "  queue: head=%llu reclaimed=%llu in-flight=%llu capacity=%zu\n",
               (unsigned long long)head, (unsigned long long)reclaimed,
               (unsigned long long)(head - reclaimed), queue_.capacity());
  std::fprintf(
      f, "  writer: pushed=%llu beats=%llu idle=%d\n",
      (unsigned long long)pushed_.load(std::memory_order_relaxed),
      (unsigned long long)hb_writer_.beats(), int(hb_writer_.idle()));
  std::fprintf(
      f,
      "  collector-backoff: stalled_pushes=%llu backoff_pauses=%llu "
      "dropped_strands=%llu beats=%llu\n",
      (unsigned long long)stats_.stalled_pushes.load(std::memory_order_relaxed),
      (unsigned long long)stats_.backoff_pauses.load(std::memory_order_relaxed),
      (unsigned long long)dropped_strands_.load(std::memory_order_relaxed),
      (unsigned long long)hb_backoff_.beats());
  for (const auto& lane : lanes_) {
    std::fprintf(
        f, "  consumer %-8s cursor=%llu beats=%llu idle=%d\n", lane->name,
        (unsigned long long)lane->cursor.load(std::memory_order_relaxed),
        (unsigned long long)lane->hb.beats(), int(lane->hb.idle()));
  }
  std::fflush(f);
}

RunResult PintDetector::run(std::function<void()> fn) {
  PINT_CHECK_MSG(!used_, "PintDetector instances are single-use");
  used_ = true;
  // Tuning snapshot -> process globals (access fast path, cursor policy,
  // bulk apply); the per-detector knobs are read from opt_.tuning directly.
  opt_.tuning.apply_globals();
  RunResult result;

  set_run_context("seed=%llu cw=%d shards=%d mode=%s",
                  (unsigned long long)opt_.seed, opt_.core_workers,
                  int(shards_.size()), seq_history_ ? "seq" : "par");

  rt::Scheduler::Options so;
  so.workers = opt_.core_workers;
  so.hooks = this;
  so.stack_bytes = opt_.stack_bytes;
  so.seed = opt_.seed;
  rt::Scheduler sched(so);
  sched_ = &sched;

  for (int i = 0; i < opt_.core_workers; ++i) {
    sched.worker(i).det_worker = ws_[i].get();
    Trace* t = alloc_trace();
    t->init(alloc_chunk());
    ws_[i]->cur = t;
    ws_[i]->ccur = t;
    ws_[i]->traces = 1;
  }

  detect::set_active_detector(this);
  // Deep-backoff attribution: the counter is process-wide, so record the
  // run's share as a delta (concurrent detector runs would blur it - fine
  // for a monitoring counter).
  const std::uint64_t deep_backoffs_at_start = Backoff::deep_entries();
  const support::ArenaCounters arena_at_start = support::arena_counters();

  std::thread writer;
  std::vector<std::thread> history;
  if (!seq_history_ && !spawn_history_threads(&writer, &history)) {
    // Graceful fallback: the paper's phased one-core history mode needs no
    // extra threads.  Detection stays exact; only the asynchrony is lost.
    seq_history_ = true;
    result.degraded_sequential_history = true;
    set_run_context("seed=%llu cw=%d shards=%d mode=seq-fallback",
                    (unsigned long long)opt_.seed, opt_.core_workers,
                    int(shards_.size()));
  }

  // Background telemetry sampler: turns the monitoring-safe atomics (the
  // same ones dump_progress reads) into a queue-pressure time series.  A
  // no-op unless telemetry is armed.
  telem::Sampler sampler;
  sampler.start([this](telem::Sampler::Sink& sink) {
    const std::uint64_t head = queue_.head();
    const std::uint64_t reclaimed = queue_.reclaimed();
    sink.gauge("queue.depth", head - reclaimed);
    sink.gauge("queue.capacity", queue_.capacity());
    sink.gauge("queue.pushed", pushed_.load(std::memory_order_relaxed));
    for (const auto& lane : lanes_) {
      char g[32];
      std::snprintf(g, sizeof(g), "lag.%s", lane->name);
      const std::uint64_t cur = lane->cursor.load(std::memory_order_relaxed);
      sink.gauge(g, head >= cur ? head - cur : 0);
      std::snprintf(g, sizeof(g), "idle.%s", lane->name);
      sink.gauge(g, lane->hb.idle() ? 1 : 0);
    }
    sink.gauge("idle.writer", hb_writer_.idle() ? 1 : 0);
    sink.gauge("beats.writer", hb_writer_.beats());
    sink.gauge("pool.strands", std::uint64_t(std::max<std::int64_t>(
                                   0, strands_outstanding_.load(
                                          std::memory_order_relaxed))));
    sink.gauge("pool.traces", std::uint64_t(std::max<std::int64_t>(
                                  0, traces_outstanding_.load(
                                         std::memory_order_relaxed))));
    sink.gauge("pool.chunks", std::uint64_t(std::max<std::int64_t>(
                                  0, chunks_outstanding_.load(
                                         std::memory_order_relaxed))));
    sink.gauge("dropped.strands",
               dropped_strands_.load(std::memory_order_relaxed));
  });

  Watchdog::Options wo;
  wo.deadline_ms = opt_.watchdog_ms;
  Watchdog wd(wo);
  if (opt_.watchdog_ms != 0) {
    wd.add("writer", &hb_writer_);
    wd.add("collector-backoff", &hb_backoff_);
    for (auto& lane : lanes_) wd.add(lane->name, &lane->hb);
    wd.set_snapshot([this](const char* stalled) { dump_progress(stalled); });
    wd.set_on_stall([this](const char*) {
      stats_.watchdog_trips.fetch_add(1, std::memory_order_relaxed);
      cancel_.store(true, std::memory_order_release);
    });
    wd.arm();
  }

  // The measured window covers exactly the detection pipeline: thread spawn,
  // sampler and watchdog setup happen above, their teardown below the
  // elapsed read - so total_ns (the overhead-figure numerator) is not
  // padded with monitoring scaffolding.
  Timer total;
  if (!seq_history_) {
    Timer core;
    sched.run([&] { fn(); });
    stats_.core_ns.store(core.elapsed_ns());

    for (auto& ws : ws_) ws->cur->mark_finished();
    core_done_.store(true, std::memory_order_release);
    writer.join();
    for (auto& t : history) t.join();
  } else {
    Timer core;
    sched.run([&] { fn(); });
    stats_.core_ns.store(core.elapsed_ns());
    for (auto& ws : ws_) ws->cur->mark_finished();
    core_done_.store(true, std::memory_order_release);
    finish_history_sequential();
  }
  stats_.total_ns.store(total.elapsed_ns());

  wd.disarm();
  sampler.stop();
  stats_.writer_ns.store(writer_watch_.total_ns());
  if (shards_.empty()) {
    stats_.lreader_ns.store(lreader_watch_.total_ns());
    stats_.rreader_ns.store(rreader_watch_.total_ns());
  } else {
    // Sharded mode: lreader_ns = busiest shard, rreader_ns = total shard work.
    std::uint64_t mx = 0, sum = 0;
    for (const auto& sh : shards_) {
      mx = std::max(mx, sh->watch.total_ns());
      sum += sh->watch.total_ns();
    }
    stats_.lreader_ns.store(mx);
    stats_.rreader_ns.store(sum);
  }
  stats_.steals.store(sched.total_steals());
  for (auto& ws : ws_) {
    stats_.raw_reads.fetch_add(ws->raw_reads);
    stats_.raw_writes.fetch_add(ws->raw_writes);
    stats_.read_intervals.fetch_add(ws->read_intervals);
    stats_.write_intervals.fetch_add(ws->write_intervals);
    stats_.strands.fetch_add(ws->strands);
    stats_.traces.fetch_add(ws->traces);
    stats_.fastpath_accesses.fetch_add(ws->fast_accesses);
    stats_.fastpath_hits.fetch_add(ws->fast_hits);
    stats_.cursor_spills.fetch_add(ws->cursor_spills);
    stats_.policy_switches.fetch_add(ws->policy_switches);
    stats_.policy_bypass.fetch_add(ws->policy_bypass);
    stats_.slowpath_accesses.fetch_add(ws->slow_accesses);
    stats_.tail_probe_hits.fetch_add(ws->tail_hits);
    stats_.tail_probe_misses.fetch_add(ws->tail_misses);
    stats_.finalize_sorted_skips.fetch_add(ws->fin_sorted);
    stats_.finalize_simd.fetch_add(ws->fin_simd);
  }
  // Arena counters are process-wide monotonic; attribute this run's delta
  // (same pattern as deep_backoffs below).
  const support::ArenaCounters arena_now = support::arena_counters();
  stats_.arena_reuses.fetch_add(arena_now.reuses - arena_at_start.reuses);
  stats_.arena_fresh.fetch_add(arena_now.fresh - arena_at_start.fresh);
  // Tiered-history tallies: all history threads joined (quiescence).
  std::uint64_t tier_comp = writer_treap_.compactions() +
                            lreader_treap_.compactions() +
                            rreader_treap_.compactions();
  std::uint64_t tier_cold = writer_treap_.cold_hits() +
                            lreader_treap_.cold_hits() +
                            rreader_treap_.cold_hits();
  for (const auto& sh : shards_) {
    tier_comp += sh->writer.compactions() + sh->lreader.compactions() +
                 sh->rreader.compactions();
    tier_cold += sh->writer.cold_hits() + sh->lreader.cold_hits() +
                 sh->rreader.cold_hits();
  }
  stats_.tier_compactions.fetch_add(tier_comp);
  stats_.tier_cold_hits.fetch_add(tier_cold);
  // Memo-cache totals: all history threads are joined (quiescence), so the
  // plain per-cache counters are safe to sum here.
  std::uint64_t mq = memo_writer_.queries + memo_lreader_.queries +
                     memo_rreader_.queries;
  std::uint64_t mh =
      memo_writer_.hits + memo_lreader_.hits + memo_rreader_.hits;
  for (const auto& sh : shards_) {
    mq += sh->memo.queries;
    mh += sh->memo.hits;
  }
  stats_.memo_queries.fetch_add(mq);
  stats_.memo_hits.fetch_add(mh);
  stats_.deep_backoffs.fetch_add(Backoff::deep_entries() -
                                 deep_backoffs_at_start);
  telem::count("history.bulk.runs",
               stats_.bulk_runs.load(std::memory_order_relaxed));
  telem::count("history.bulk.intervals",
               stats_.bulk_run_intervals.load(std::memory_order_relaxed));
  telem::count("queue.batch.drains",
               stats_.batch_drains.load(std::memory_order_relaxed));
  telem::count("queue.batch.strands",
               stats_.batch_strands.load(std::memory_order_relaxed));
  telem::count("queue.prefetch.issues",
               stats_.prefetch_issues.load(std::memory_order_relaxed));
  telem::count("backoff.deep.entries",
               stats_.deep_backoffs.load(std::memory_order_relaxed));
  telem::count("access.fastpath.total",
               stats_.fastpath_accesses.load(std::memory_order_relaxed));
  telem::count("access.fastpath.hits",
               stats_.fastpath_hits.load(std::memory_order_relaxed));
  telem::count("access.fastpath.spills",
               stats_.cursor_spills.load(std::memory_order_relaxed));
  telem::count("access.policy.switches",
               stats_.policy_switches.load(std::memory_order_relaxed));
  telem::count("access.policy.bypass",
               stats_.policy_bypass.load(std::memory_order_relaxed));
  telem::count("access.slowpath.total",
               stats_.slowpath_accesses.load(std::memory_order_relaxed));
  telem::count("reach.memo.queries", mq);
  telem::count("reach.memo.hits", mh);
  telem::count("access.tail.hits",
               stats_.tail_probe_hits.load(std::memory_order_relaxed));
  telem::count("access.tail.misses",
               stats_.tail_probe_misses.load(std::memory_order_relaxed));
  telem::count("access.finalize.sorted",
               stats_.finalize_sorted_skips.load(std::memory_order_relaxed));
  telem::count("access.finalize.simd",
               stats_.finalize_simd.load(std::memory_order_relaxed));
  telem::count("collect.empty.skips",
               stats_.empty_strand_skips.load(std::memory_order_relaxed));
  telem::count("arena.reuses",
               stats_.arena_reuses.load(std::memory_order_relaxed));
  telem::count("arena.fresh",
               stats_.arena_fresh.load(std::memory_order_relaxed));

  detect::set_active_detector(nullptr);
  sched_ = nullptr;

  result.watchdog_tripped = wd.tripped();
  result.dropped_strands = dropped_strands_.load(std::memory_order_relaxed);
  if (result.watchdog_tripped) {
    result.status = RunStatus::kStalled;
  } else if (oom_.load(std::memory_order_acquire)) {
    result.status = RunStatus::kOutOfMemory;
  } else {
    result.status = RunStatus::kOk;
  }
  clear_run_context();
  return result;
}

}  // namespace pint::pintd
