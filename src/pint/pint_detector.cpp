#include "pint/pint_detector.hpp"

#include <cstdlib>
#include <thread>

#include "detect/history.hpp"
#include "detect/instrument.hpp"
#include "support/rng.hpp"
#include "support/timer.hpp"

namespace pint::pintd {

using detect::ReaderSide;
using detect::Strand;

namespace {
std::uint64_t subseed(std::uint64_t seed, std::uint64_t salt) {
  std::uint64_t s = seed + salt * 0x9e3779b97f4a7c15ULL;
  return splitmix64(s);
}

// Shared pool-take: reuse from `pool`, or allocate fresh into `owned`.  One
// lock acquisition either way (the old per-pool copies dropped and re-took
// the lock on the miss path).  `on_reuse` reinitialises a recycled object
// and runs under the lock, before the object escapes the pool.
template <class T, class Reuse>
T* pool_take(Spinlock& mu, std::vector<T*>& pool,
             std::vector<std::unique_ptr<T>>& owned, Reuse&& on_reuse) {
  LockGuard<Spinlock> g(mu);
  if (!pool.empty()) {
    T* t = pool.back();
    pool.pop_back();
    on_reuse(t);
    return t;
  }
  auto fresh = std::make_unique<T>();
  T* p = fresh.get();
  owned.push_back(std::move(fresh));
  return p;
}
}  // namespace

PintDetector::PintDetector(const Options& opt)
    : opt_(opt),
      queue_(opt.queue_capacity),
      writer_treap_(subseed(opt.seed, 1)),
      lreader_treap_(subseed(opt.seed, 2)),
      rreader_treap_(subseed(opt.seed, 3)) {
  rep_.set_verbose(opt_.verbose_races);
  PINT_CHECK_MSG(
      opt_.history_shards == 0 || opt_.history == detect::HistoryKind::kTreap,
      "sharded history supports the treap store only");
  for (int k = 0; k < opt_.history_shards; ++k) {
    shards_.push_back(std::make_unique<HistoryShard>(
        subseed(opt_.seed, 10 + std::uint64_t(k) * 3),
        subseed(opt_.seed, 11 + std::uint64_t(k) * 3),
        subseed(opt_.seed, 12 + std::uint64_t(k) * 3)));
  }
  for (int i = 0; i < opt_.core_workers; ++i) {
    auto ws = std::make_unique<CoreWS>();
    ws->index = std::uint32_t(i);
    ws_.push_back(std::move(ws));
  }
}

PintDetector::~PintDetector() {
  for (auto& ws : ws_) {
    for (Strand* s : ws->owned) delete s;
  }
}

// ---------------------------------------------------------------------------
// Pools
// ---------------------------------------------------------------------------

Strand* PintDetector::alloc_strand(CoreWS& ws) {
  Strand* s = nullptr;
  {
    LockGuard<Spinlock> g(ws.pool_mu);
    if (ws.free_list != nullptr) {
      s = ws.free_list;
      ws.free_list = s->pool_next;
    }
  }
  if (s == nullptr) {
    s = new Strand();
    ws.owned.push_back(s);
  }
  const std::uint64_t sid =
      (std::uint64_t(ws.index + 1) << 40) | ++ws.next_sid;
  s->reset(sid);
  s->owner_worker = ws.index;
  ws.strands++;
  return s;
}

void PintDetector::recycle_strand(Strand* s) {
  CoreWS& ws = *ws_[s->owner_worker];
  LockGuard<Spinlock> g(ws.pool_mu);
  s->pool_next = ws.free_list;
  ws.free_list = s;
}

Trace* PintDetector::alloc_trace() {
  return pool_take(tp_mu_, trace_pool_, all_traces_,
                   [](Trace*) { /* callers init() before use */ });
}

TraceChunk* PintDetector::alloc_chunk() {
  return pool_take(cp_mu_, chunk_pool_, all_chunks_, [](TraceChunk* c) {
    for (auto& slot : c->slots) slot.store(nullptr, std::memory_order_relaxed);
    c->next.store(nullptr, std::memory_order_relaxed);
  });
}

void PintDetector::recycle_trace(Trace* t) {
  LockGuard<Spinlock> g(tp_mu_);
  trace_pool_.push_back(t);
}

void PintDetector::recycle_chunk(TraceChunk* c) {
  LockGuard<Spinlock> g(cp_mu_);
  chunk_pool_.push_back(c);
}

// ---------------------------------------------------------------------------
// Core-component helpers
// ---------------------------------------------------------------------------

void PintDetector::trace_push(CoreWS& ws, Strand* s) {
  if (ws.cur->push_needs_chunk()) ws.cur->supply_chunk(alloc_chunk());
  ws.cur->push(s);
}

void PintDetector::start_new_trace(CoreWS& ws) {
  Trace* t = alloc_trace();
  t->init(alloc_chunk());
  Trace* old = ws.cur;
  old->mark_finished();
  old->set_next_trace(t);  // after mark_finished: consumer sees both in order
  ws.cur = t;
  ws.traces++;
}

void PintDetector::seal_strand(CoreWS& ws, Strand* s) {
  s->reads.finalize(opt_.coalesce);
  s->writes.finalize(opt_.coalesce);
  ws.read_intervals += s->reads.items().size();
  ws.write_intervals += s->writes.items().size();
}

// ---------------------------------------------------------------------------
// detect::Detector (memory events, on core workers)
// ---------------------------------------------------------------------------

void PintDetector::on_access(rt::Worker& w, rt::TaskFrame& f, detect::addr_t lo,
                             detect::addr_t hi, bool is_write) {
  auto& ws = *static_cast<CoreWS*>(w.det_worker);
  auto* s = static_cast<Strand*>(f.det_strand);
  PINT_ASSERT(s != nullptr);
  if (is_write) {
    ws.raw_writes++;
    if (opt_.coalesce) {
      s->writes.add(lo, hi);
    } else {
      s->writes.add_raw(lo, hi);
    }
  } else {
    ws.raw_reads++;
    if (opt_.coalesce) {
      s->reads.add(lo, hi);
    } else {
      s->reads.add_raw(lo, hi);
    }
  }
}

void PintDetector::on_heap_free(rt::Worker&, rt::TaskFrame& f, void* base,
                                detect::addr_t lo, detect::addr_t hi) {
  auto* s = static_cast<Strand*>(f.det_strand);
  PINT_ASSERT(s != nullptr);
  s->frees.push_back({base, lo, hi});
}

// ---------------------------------------------------------------------------
// rt::SchedulerHooks (Algorithm 1)
// ---------------------------------------------------------------------------

void PintDetector::on_root_start(rt::Worker& w, rt::TaskFrame& f) {
  auto& ws = *static_cast<CoreWS*>(w.det_worker);
  Strand* r = alloc_strand(ws);
  r->label = reach_.root_label();
  r->tag = f.task_name;
  f.det_strand = r;
}

void PintDetector::on_root_end(rt::Worker& w, rt::TaskFrame& f) {
  auto& ws = *static_cast<CoreWS*>(w.det_worker);
  auto* u = static_cast<Strand*>(f.det_strand);
  seal_strand(ws, u);
  u->clears.push_back({f.fiber->stack_lo(), f.fiber->stack_hi() - 1});
  // trace insertion happens at on_task_retire, off this fiber's stack
}

void PintDetector::on_spawn(rt::Worker& w, rt::TaskFrame& parent,
                            rt::SyncBlock& blk, rt::TaskFrame& child) {
  auto& ws = *static_cast<CoreWS*>(w.det_worker);
  auto* u = static_cast<Strand*>(parent.det_strand);
  seal_strand(ws, u);

  auto* j = static_cast<Strand*>(blk.det_sync);
  if (j == nullptr) {
    // First spawn of the sync block: create the sync node now so its label
    // is in series with the entire block (see reach/sp_order.hpp).
    j = alloc_strand(ws);
    blk.det_sync = j;
  }
  if (j->tag == nullptr) j->tag = parent.task_name;
  const auto labels = reach_.on_spawn(u->label, &j->label);
  Strand* g = alloc_strand(ws);  // first strand of the spawned function
  g->label = labels.child;
  g->tag = child.task_name;
  Strand* t = alloc_strand(ws);  // continuation strand
  t->label = labels.cont;
  t->tag = parent.task_name;
  t->pred.store(1, std::memory_order_relaxed);  // Algorithm 1, line 8
  u->collect_child = t;  // "u is a spawn node" case of Algorithm 2

  child.det_strand = g;
  parent.det_cont = t;
  trace_push(ws, u);  // Algorithm 1, line 11
}

void PintDetector::on_spawn_return(rt::Worker& w, rt::TaskFrame& child,
                                   bool continuation_stolen) {
  auto& ws = *static_cast<CoreWS*>(w.det_worker);
  auto* u = static_cast<Strand*>(child.det_strand);  // the return node
  seal_strand(ws, u);
  if (continuation_stolen) {
    // Algorithm 1, lines 15-17: this return node becomes a predecessor of
    // the parent block's (non-trivial) sync node.
    auto* j = static_cast<Strand*>(child.parent_scope->det_sync);
    PINT_ASSERT(j != nullptr);
    u->collect_child = j;
    j->pred.fetch_add(1, std::memory_order_acq_rel);
  }
  // The spawned function's stack dies with it: clear it from the access
  // history when this strand is processed (paper §III-F), and hold the
  // fiber back until then (set at on_task_retire).
  u->clears.push_back({child.fiber->stack_lo(), child.fiber->stack_hi() - 1});
}

void PintDetector::on_continuation(rt::Worker& w, rt::TaskFrame& parent,
                                   bool stolen) {
  auto* t = static_cast<Strand*>(parent.det_cont);
  PINT_ASSERT(t != nullptr);
  parent.det_cont = nullptr;
  parent.det_strand = t;
  if (stolen) {
    // Algorithm 1, lines 22-24: a stolen continuation starts a new trace on
    // the thief.
    auto& ws = *static_cast<CoreWS*>(w.det_worker);
    start_new_trace(ws);
  }
}

void PintDetector::on_sync(rt::Worker& w, rt::TaskFrame& f, rt::SyncBlock& blk,
                           bool trivial) {
  auto* j = static_cast<Strand*>(blk.det_sync);
  if (j == nullptr) return;  // no spawn since the last sync: sync is a no-op
  auto& ws = *static_cast<CoreWS*>(w.det_worker);
  auto* u = static_cast<Strand*>(f.det_strand);
  seal_strand(ws, u);
  if (!trivial) {
    // Algorithm 1, lines 29-31.
    u->collect_child = j;
    j->pred.fetch_add(1, std::memory_order_acq_rel);
  }
  trace_push(ws, u);  // Algorithm 1, line 32
}

void PintDetector::on_after_sync(rt::Worker& w, rt::TaskFrame& f,
                                 rt::SyncBlock& blk, bool trivial) {
  auto* j = static_cast<Strand*>(blk.det_sync);
  if (j == nullptr) return;
  if (!trivial) {
    // Algorithm 1, lines 35-37: a non-trivial sync starts a new trace on
    // whichever worker passed it.
    auto& ws = *static_cast<CoreWS*>(w.det_worker);
    start_new_trace(ws);
  }
  f.det_strand = j;  // the sync node is the new current strand
  blk.det_sync = nullptr;
}

bool PintDetector::on_task_retire(rt::Worker& w, rt::TaskFrame& f) {
  // Runs on the worker loop, after the finished fiber was switched away
  // from - only now is it safe to publish the return-node strand (and with
  // it the fiber, whose stack must not be reused until the writer treap
  // worker processes this strand).
  auto& ws = *static_cast<CoreWS*>(w.det_worker);
  auto* u = static_cast<Strand*>(f.det_strand);
  if (!opt_.parallel_history) {
    // Phased one-core mode: the whole run is a single trace, so any reuse of
    // this fiber's stack is by a strand strictly later in trace order - the
    // clear recorded on this return node is processed first (paper §III-F).
    // The fiber can be pooled immediately; only the strand record is held.
    trace_push(ws, u);
    return false;
  }
  u->retired_frame = &f;
  trace_push(ws, u);
  return true;
}

// ---------------------------------------------------------------------------
// Access-history component
// ---------------------------------------------------------------------------

void PintDetector::collect(Strand* s) {
  const std::int32_t nconsumers =
      shards_.empty() ? 3 : std::int32_t(shards_.size());
  s->consumers.store(nconsumers, std::memory_order_release);
  Backoff bo;
  while (!queue_.try_push(s)) {
    if (!opt_.parallel_history) {
      // Sequential mode buffers the entire run before the reader phases, so
      // the ring simply grows (no consumers are live yet).
      queue_.grow_unsynchronized();
      continue;
    }
    queue_.reclaim([this](Strand* d) { recycle_strand(d); });
    bo.pause();
  }
  ++pushed_;
  if (opt_.record_collection_order) collection_log_.push_back(s->label);
  // Algorithm 2, lines 42-44.
  if (s->collect_child != nullptr) {
    s->collect_child->pred.fetch_sub(1, std::memory_order_acq_rel);
  }
  process_writer(s);
  if (shards_.empty()) {
    s->consumers.fetch_sub(1, std::memory_order_acq_rel);
  }
}

void PintDetector::process_writer(Strand* s) {
  writer_watch_.start();
  if (!shards_.empty()) {
    // Sharded mode: the collector does no history work itself; shards own
    // all three stores. Deferred resources are still released here (the
    // queue-order argument of paper SIII-F is unchanged).
  } else if (opt_.history == detect::HistoryKind::kTreap) {
    detect::process_writer_treap(writer_treap_, *s, reach_, rep_, stats_);
  } else {
    detect::process_writer_treap(writer_map_, *s, reach_, rep_, stats_);
  }
  // Deferred frees become real here: any later reuse of this memory is by a
  // strand collected after s, so each treap erases the range before seeing
  // the new owner's accesses (paper §III-F).
  for (const detect::HeapFree& hf : s->frees) std::free(hf.base);
  if (s->retired_frame != nullptr) {
    // Same argument for the fiber stack: reuse is only possible for strands
    // that land later in the access-history order.
    sched_->release_frame(s->retired_frame);
    s->retired_frame = nullptr;
  }
  writer_watch_.stop();
}

bool PintDetector::collect_from(CoreWS& ws, bool* drained) {
  constexpr int kBatch = 64;
  bool progress = false;
  *drained = false;
  for (int i = 0; i < kBatch; ++i) {
    Trace* t = ws.ccur;
    Strand* s = t->peek();
    if (TraceChunk* dc = t->take_drained_chunk()) recycle_chunk(dc);
    if (s == nullptr) {
      if (t->drained()) {
        Trace* nt = t->next_trace();
        if (nt != nullptr) {
          recycle_chunk(t->last_chunk_for_recycle());
          recycle_trace(t);
          ws.ccur = nt;
          progress = true;
          continue;
        }
        *drained = true;
      }
      return progress;
    }
    if (!t->first_collected()) {
      // Collection Rule 1: the first strand of a trace is collectable only
      // once all its immediate predecessors were collected.
      if (s->pred.load(std::memory_order_acquire) != 0) return progress;
    }
    t->pop();
    t->set_first_collected();
    collect(s);
    progress = true;
  }
  return progress;
}

void PintDetector::writer_loop() {
  Backoff bo;
  for (;;) {
    const bool done_before_scan = core_done_.load(std::memory_order_acquire);
    bool progress = false;
    bool all_drained = true;
    for (auto& ws : ws_) {
      bool drained = false;
      progress |= collect_from(*ws, &drained);
      all_drained &= drained;
    }
    queue_.reclaim([this](Strand* d) { recycle_strand(d); });
    if (done_before_scan && all_drained) break;
    if (progress) {
      bo.reset();
    } else {
      bo.pause();
    }
  }
  collecting_done_.store(true, std::memory_order_release);
}

void PintDetector::reader_loop(ReaderSide side) {
  treap::IntervalTreap& t =
      side == ReaderSide::kLeftMost ? lreader_treap_ : rreader_treap_;
  detect::GranuleMap& m =
      side == ReaderSide::kLeftMost ? lreader_map_ : rreader_map_;
  const bool use_treap = opt_.history == detect::HistoryKind::kTreap;
  StopwatchAccum& watch =
      side == ReaderSide::kLeftMost ? lreader_watch_ : rreader_watch_;
  queue_.register_consumer();
  std::uint64_t cursor = 0;
  Backoff bo;
  for (;;) {
    const std::uint64_t h = queue_.head();
    if (cursor == h) {
      if (collecting_done_.load(std::memory_order_acquire) &&
          cursor == queue_.head()) {
        break;
      }
      bo.pause();
      continue;
    }
    bo.reset();
    while (cursor < h) {
      Strand* s = queue_.at(cursor);
      watch.start();
      if (use_treap) {
        detect::process_reader_treap(t, *s, reach_, rep_, stats_, side);
      } else {
        detect::process_reader_treap(m, *s, reach_, rep_, stats_, side);
      }
      watch.stop();
      s->consumers.fetch_sub(1, std::memory_order_acq_rel);
      ++cursor;
    }
  }
  queue_.unregister_consumer();
}

void PintDetector::shard_loop(int shard) {
  HistoryShard& hs = *shards_[std::size_t(shard)];
  const int n = int(shards_.size());
  queue_.register_consumer();
  std::uint64_t cursor = 0;
  Backoff bo;
  for (;;) {
    const std::uint64_t h = queue_.head();
    if (cursor == h) {
      if (collecting_done_.load(std::memory_order_acquire) &&
          cursor == queue_.head()) {
        break;
      }
      bo.pause();
      continue;
    }
    bo.reset();
    while (cursor < h) {
      Strand* s = queue_.at(cursor);
      hs.watch.start();
      hs.process(*s, shard, n, reach_, rep_, stats_);
      hs.watch.stop();
      s->consumers.fetch_sub(1, std::memory_order_acq_rel);
      ++cursor;
    }
  }
  queue_.unregister_consumer();
}

void PintDetector::finish_history_sequential() {
  // Phase 1: collection (+ writer treap in the classic configuration).
  writer_loop();
  if (!shards_.empty()) {
    for (int k = 0; k < int(shards_.size()); ++k) shard_loop(k);
    return;
  }
  // Phase 2 & 3: the two reader treaps over the same global order.
  reader_loop(ReaderSide::kLeftMost);
  reader_loop(ReaderSide::kRightMost);
}

// ---------------------------------------------------------------------------
// Run orchestration
// ---------------------------------------------------------------------------

void PintDetector::run(std::function<void()> fn) {
  PINT_CHECK_MSG(!used_, "PintDetector instances are single-use");
  used_ = true;

  rt::Scheduler::Options so;
  so.workers = opt_.core_workers;
  so.hooks = this;
  so.stack_bytes = opt_.stack_bytes;
  so.seed = opt_.seed;
  rt::Scheduler sched(so);
  sched_ = &sched;

  for (int i = 0; i < opt_.core_workers; ++i) {
    sched.worker(i).det_worker = ws_[i].get();
    Trace* t = alloc_trace();
    t->init(alloc_chunk());
    ws_[i]->cur = t;
    ws_[i]->ccur = t;
    ws_[i]->traces = 1;
  }

  detect::set_active_detector(this);
  Timer total;

  if (opt_.parallel_history) {
    std::thread writer([this] { writer_loop(); });
    std::vector<std::thread> history;
    if (shards_.empty()) {
      history.emplace_back([this] { reader_loop(ReaderSide::kLeftMost); });
      history.emplace_back([this] { reader_loop(ReaderSide::kRightMost); });
    } else {
      for (int k = 0; k < int(shards_.size()); ++k) {
        history.emplace_back([this, k] { shard_loop(k); });
      }
    }

    Timer core;
    sched.run([&] { fn(); });
    stats_.core_ns.store(core.elapsed_ns());

    for (auto& ws : ws_) ws->cur->mark_finished();
    core_done_.store(true, std::memory_order_release);
    writer.join();
    for (auto& t : history) t.join();
  } else {
    Timer core;
    sched.run([&] { fn(); });
    stats_.core_ns.store(core.elapsed_ns());
    for (auto& ws : ws_) ws->cur->mark_finished();
    core_done_.store(true, std::memory_order_release);
    finish_history_sequential();
  }

  stats_.total_ns.store(total.elapsed_ns());
  stats_.writer_ns.store(writer_watch_.total_ns());
  if (shards_.empty()) {
    stats_.lreader_ns.store(lreader_watch_.total_ns());
    stats_.rreader_ns.store(rreader_watch_.total_ns());
  } else {
    // Sharded mode: lreader_ns = busiest shard, rreader_ns = total shard work.
    std::uint64_t mx = 0, sum = 0;
    for (const auto& sh : shards_) {
      mx = std::max(mx, sh->watch.total_ns());
      sum += sh->watch.total_ns();
    }
    stats_.lreader_ns.store(mx);
    stats_.rreader_ns.store(sum);
  }
  stats_.steals.store(sched.total_steals());
  for (auto& ws : ws_) {
    stats_.raw_reads.fetch_add(ws->raw_reads);
    stats_.raw_writes.fetch_add(ws->raw_writes);
    stats_.read_intervals.fetch_add(ws->read_intervals);
    stats_.write_intervals.fetch_add(ws->write_intervals);
    stats_.strands.fetch_add(ws->strands);
    stats_.traces.fetch_add(ws->traces);
  }

  detect::set_active_detector(nullptr);
  sched_ = nullptr;
}

}  // namespace pint::pintd
