#pragma once

// The trace data structure (paper §III-E, Algorithm 1).
//
// A Trace is a single-producer single-consumer FIFO of executed strands:
// the owning core worker appends each strand when it ends; the writer treap
// worker consumes them in order (collection Rule 2).  A core worker puts its
// current trace away and starts a new one exactly when it executes a stolen
// continuation or passes a non-trivial sync, which yields the three Lemma-1
// properties the collection rules depend on.
//
// Storage is a linked list of fixed-size chunks of Strand* slots (the
// paper's footnote 2 uses the same layout).  Slots are written with release
// stores and read with acquire loads; a null slot means "not produced yet"
// unless the trace is finished.  Strand objects may be recycled the moment
// the consumer moves past them, so the consumer must never re-read a slot.
//
// Traces of one worker form their own SPSC linked list in creation order;
// the consumer advances to the next trace only after the current one is
// finished and fully drained (front-trace FIFO is deadlock-free; see
// DESIGN.md §2.4).

#include <atomic>
#include <cstdint>

#include "detect/strand.hpp"
#include "support/assert.hpp"
#include "support/spinlock.hpp"

namespace pint::pintd {

struct TraceChunk {
  static constexpr std::size_t kSlots = 128;
  std::atomic<detect::Strand*> slots[kSlots] = {};
  std::atomic<TraceChunk*> next{nullptr};
};

class Trace {
 public:
  // --- producer side (core worker) ---
  void init(TraceChunk* first_chunk) {
    head_ = tail_ = first_chunk;
    p_index_ = 0;
    c_chunk_ = first_chunk;
    c_index_ = 0;
    first_collected_ = false;
    finished_.store(false, std::memory_order_relaxed);
    next_trace_.store(nullptr, std::memory_order_relaxed);
  }

  /// Appends a strand; needs a fresh chunk when the current one is full
  /// (caller allocates to keep pools out of this class).
  bool push_needs_chunk() const { return p_index_ == TraceChunk::kSlots; }
  void supply_chunk(TraceChunk* c) {
    PINT_ASSERT(push_needs_chunk());
    tail_->next.store(c, std::memory_order_release);
    tail_ = c;
    p_index_ = 0;
  }
  void push(detect::Strand* s) {
    PINT_ASSERT(!push_needs_chunk());
    tail_->slots[p_index_].store(s, std::memory_order_release);
    ++p_index_;
  }

  void mark_finished() { finished_.store(true, std::memory_order_release); }

  // --- consumer side (writer treap worker) ---
  /// Next uncollected strand, or nullptr if none is available right now.
  detect::Strand* peek() {
    if (c_index_ == TraceChunk::kSlots) {
      TraceChunk* n = c_chunk_->next.load(std::memory_order_acquire);
      if (n == nullptr) return nullptr;
      // The drained chunk is recycled by the caller via take_drained_chunk.
      drained_ = c_chunk_;
      c_chunk_ = n;
      c_index_ = 0;
    }
    return c_chunk_->slots[c_index_].load(std::memory_order_acquire);
  }
  void pop() { ++c_index_; }

  /// After peek() switched chunks, the consumer can recycle the old one.
  TraceChunk* take_drained_chunk() {
    TraceChunk* c = drained_;
    drained_ = nullptr;
    return c;
  }

  /// True once the producer finished this trace and everything is consumed.
  bool drained() {
    if (peek() != nullptr) return false;
    if (!finished_.load(std::memory_order_acquire)) return false;
    // finished was set after the last push; re-check for a strand that
    // landed between our peek and the finished load.
    return peek() == nullptr;
  }

  bool first_collected() const { return first_collected_; }
  void set_first_collected() { first_collected_ = true; }

  Trace* next_trace() { return next_trace_.load(std::memory_order_acquire); }
  void set_next_trace(Trace* t) {
    next_trace_.store(t, std::memory_order_release);
  }
  TraceChunk* last_chunk_for_recycle() { return c_chunk_; }

 private:
  // producer
  TraceChunk* head_ = nullptr;
  TraceChunk* tail_ = nullptr;
  std::size_t p_index_ = 0;
  std::atomic<bool> finished_{false};
  std::atomic<Trace*> next_trace_{nullptr};
  // consumer
  TraceChunk* c_chunk_ = nullptr;
  std::size_t c_index_ = 0;
  TraceChunk* drained_ = nullptr;
  bool first_collected_ = false;
};

}  // namespace pint::pintd
