#pragma once

// The access-history queue (paper §III-D).
//
// A single producer - the writer treap worker - inserts collected strands in
// DAG-conforming order; all three treap workers consume the same sequence
// through private cursors, which is what guarantees every treap observes one
// global access-history order (Lemma 4).
//
// Slot recycling follows the paper: each strand carries a consumer counter
// initialised to the number of treap workers; each worker decrements it
// after processing, and the producer reclaims slots (recycling the strand
// and releasing its retired fiber already happened at processing time) once
// the counter hits zero.

#include <atomic>
#include <cstdint>
#include <memory>

#include "detect/strand.hpp"
#include "support/assert.hpp"

namespace pint::pintd {

class AhQueue {
 public:
  explicit AhQueue(std::size_t capacity_pow2)
      : mask_(capacity_pow2 - 1),
        slots_(new detect::Strand*[capacity_pow2]) {
    PINT_CHECK_MSG((capacity_pow2 & mask_) == 0, "capacity must be a power of 2");
  }

  /// Producer. Fails (returns false) when the ring is full; the producer
  /// should reclaim and retry - the readers drain independently, so this
  /// cannot deadlock.
  bool try_push(detect::Strand* s) {
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    if (h - tail_ > mask_) return false;
    slots_[h & mask_] = s;
    head_.store(h + 1, std::memory_order_release);
    return true;
  }

  /// Producer: walk finished slots from the tail, invoking recycle(strand)
  /// for each strand all consumers are done with.
  template <class F>
  void reclaim(F&& recycle) {
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    while (tail_ < h) {
      detect::Strand* s = slots_[tail_ & mask_];
      if (s->consumers.load(std::memory_order_acquire) != 0) break;
      recycle(s);
      ++tail_;
    }
  }

  /// Consumers: published number of strands (a cursor < head() may read).
  std::uint64_t head() const { return head_.load(std::memory_order_acquire); }
  detect::Strand* at(std::uint64_t index) const {
    return slots_[index & mask_];
  }

  std::uint64_t reclaimed() const { return tail_; }
  std::size_t capacity() const { return mask_ + 1; }

  /// Doubles the ring. ONLY legal while no consumer threads are running
  /// (used by PINT's sequential one-core mode, where the whole queue is
  /// buffered before the reader phases start).
  void grow_unsynchronized() {
    const std::size_t old_cap = mask_ + 1;
    const std::size_t new_cap = old_cap * 2;
    auto fresh = std::make_unique<detect::Strand*[]>(new_cap);
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    for (std::uint64_t i = tail_; i < h; ++i) {
      fresh[i & (new_cap - 1)] = slots_[i & mask_];
    }
    slots_ = std::move(fresh);
    mask_ = new_cap - 1;
  }

 private:
  std::uint64_t mask_;
  std::unique_ptr<detect::Strand*[]> slots_;
  alignas(64) std::atomic<std::uint64_t> head_{0};
  std::uint64_t tail_ = 0;  // producer-local reclaim cursor
};

}  // namespace pint::pintd
