#pragma once

// The access-history queue (paper §III-D).
//
// A single producer - the writer treap worker - inserts collected strands in
// DAG-conforming order; all three treap workers consume the same sequence
// through private cursors, which is what guarantees every treap observes one
// global access-history order (Lemma 4).
//
// Slot recycling follows the paper: each strand carries a consumer counter
// initialised to the number of treap workers; each worker decrements it
// after processing, and the producer reclaims slots (recycling the strand
// and releasing its retired fiber already happened at processing time) once
// the counter hits zero.
//
// Memory-ordering contract (see also DESIGN.md, "Memory-ordering contracts"):
//
//  * SINGLE PRODUCER.  try_push / reclaim / grow_unsynchronized may only be
//    called from one thread (debug builds pin the first caller's thread id
//    and assert on it).  `tail_` is therefore producer-owned; it is an
//    atomic only so that monitoring reads of reclaimed() from other threads
//    are not data races.
//  * PUBLISH: the producer's plain store to slots_[h] is published by the
//    release store of head_; consumers must acquire-load head() before
//    touching at(i) for any i < head().
//  * RECYCLE: a consumer's last use of a strand/slot is sequenced before its
//    consumers.fetch_sub(1, acq_rel); the producer acquire-loads the counter
//    in reclaim() and only then reuses the slot.  The fetch_sub chain forms
//    a release sequence, so observing 0 synchronizes with *every* consumer.
//  * grow_unsynchronized() is legal ONLY while no consumer is registered
//    (sequential one-core mode); it asserts active_consumers() == 0.

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>

#include "detect/strand.hpp"
#include "support/assert.hpp"

namespace pint::pintd {

class AhQueue {
 public:
  explicit AhQueue(std::size_t capacity_pow2)
      : mask_(capacity_pow2 - 1),
        slots_(new detect::Strand*[capacity_pow2]) {
    PINT_CHECK_MSG((capacity_pow2 & (capacity_pow2 - 1)) == 0,
                   "capacity must be a power of 2");
  }

  /// Producer. Fails (returns false) when the ring is full; the producer
  /// should reclaim and retry - the readers drain independently, so this
  /// cannot deadlock.
  bool try_push(detect::Strand* s) {
    assert_single_producer();
    const std::uint64_t mask = mask_.load(std::memory_order_relaxed);
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    if (h - tail_.load(std::memory_order_relaxed) > mask) return false;
    slots_[h & mask] = s;
    head_.store(h + 1, std::memory_order_release);
    return true;
  }

  /// Producer: walk finished slots from the tail, invoking recycle(strand)
  /// for each strand all consumers are done with.
  template <class F>
  void reclaim(F&& recycle) {
    assert_single_producer();
    const std::uint64_t mask = mask_.load(std::memory_order_relaxed);
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    std::uint64_t t = tail_.load(std::memory_order_relaxed);
    while (t < h) {
      detect::Strand* s = slots_[t & mask];
      if (s->consumers.load(std::memory_order_acquire) != 0) break;
      recycle(s);
      tail_.store(++t, std::memory_order_relaxed);
    }
  }

  /// Consumers: published number of strands (a cursor < head() may read).
  std::uint64_t head() const { return head_.load(std::memory_order_acquire); }
  detect::Strand* at(std::uint64_t index) const {
    return slots_[index & mask_.load(std::memory_order_relaxed)];
  }

  std::uint64_t reclaimed() const {
    return tail_.load(std::memory_order_relaxed);
  }
  /// Monitoring-safe (the watchdog snapshot reads it cross-thread; growth
  /// only ever happens at consumer quiescence, so a relaxed load suffices).
  std::size_t capacity() const {
    return std::size_t(mask_.load(std::memory_order_relaxed)) + 1;
  }

  /// Consumer threads bracket their cursor loop with register/unregister so
  /// the producer-side structural mutation (grow_unsynchronized) can assert
  /// quiescence instead of silently racing a live cursor.
  void register_consumer() {
    active_consumers_.fetch_add(1, std::memory_order_acq_rel);
  }
  void unregister_consumer() {
    const int prev = active_consumers_.fetch_sub(1, std::memory_order_acq_rel);
    PINT_ASSERT(prev > 0);
    (void)prev;
  }
  int active_consumers() const {
    return active_consumers_.load(std::memory_order_acquire);
  }

  /// Doubles the ring. ONLY legal while no consumer threads are running
  /// (used by PINT's sequential one-core mode, where the whole queue is
  /// buffered before the reader phases start): a live consumer cursor holds
  /// a pointer into the old slot array and indexes it with the old mask.
  ///
  /// Bounded-growth form: returns false - leaving the ring untouched -
  /// when doubling would exceed max_capacity (0 = unbounded) or when the
  /// larger slot array cannot be allocated, so the caller can degrade
  /// (shed strands, report kOutOfMemory) instead of aborting in bad_alloc.
  bool try_grow_unsynchronized(std::size_t max_capacity) {
    assert_single_producer();
    PINT_CHECK_MSG(active_consumers() == 0,
                   "AhQueue::grow_unsynchronized with live consumer cursors");
    const std::uint64_t mask = mask_.load(std::memory_order_relaxed);
    const std::size_t old_cap = std::size_t(mask) + 1;
    const std::size_t new_cap = old_cap * 2;
    if (max_capacity != 0 && new_cap > max_capacity) return false;
    std::unique_ptr<detect::Strand*[]> fresh;
    try {
      fresh = std::make_unique<detect::Strand*[]>(new_cap);
    } catch (const std::bad_alloc&) {
      return false;
    }
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    for (std::uint64_t i = tail_.load(std::memory_order_relaxed); i < h; ++i) {
      fresh[i & (new_cap - 1)] = slots_[i & mask];
    }
    slots_ = std::move(fresh);
    mask_.store(new_cap - 1, std::memory_order_relaxed);
    return true;
  }

  /// Unbounded growth; aborts (cleanly, through the error sink) if the
  /// allocation itself fails.  Kept for callers with no degradation path.
  void grow_unsynchronized() {
    PINT_CHECK_MSG(try_grow_unsynchronized(0),
                   "AhQueue ring growth failed (allocation)");
  }

 private:
  // Debug-only single-producer enforcement: the first producer-side call
  // pins its thread id; every later call must come from the same thread.
  void assert_single_producer() {
#ifndef NDEBUG
    const std::thread::id self = std::this_thread::get_id();
    std::thread::id expected{};  // "no producer yet"
    if (!producer_.compare_exchange_strong(expected, self,
                                           std::memory_order_relaxed)) {
      PINT_CHECK_MSG(expected == self,
                     "AhQueue producer-side call from a second thread "
                     "(single-producer contract violated)");
    }
#endif
  }

  // Atomic only for monitoring reads of capacity(): every mutation happens
  // at consumer quiescence and every hot-path load is relaxed (plain mov).
  std::atomic<std::uint64_t> mask_;
  std::unique_ptr<detect::Strand*[]> slots_;
  alignas(64) std::atomic<std::uint64_t> head_{0};
  // Producer-owned reclaim cursor; atomic only for cross-thread reclaimed().
  alignas(64) std::atomic<std::uint64_t> tail_{0};
  std::atomic<int> active_consumers_{0};
#ifndef NDEBUG
  std::atomic<std::thread::id> producer_{};
#endif
};

}  // namespace pint::pintd
