#pragma once

// Process-wide recycled allocation for the detector hot path (DESIGN.md §13).
//
// Two primitives, both behind the `arena` Tuning knob:
//
//  * SlabSource - a freelist of raw fixed-size memory blocks keyed by size
//    class.  The interval treaps carve their 512-node chunks from it instead
//    of `new Node[kChunk]`, and hand every chunk back wholesale in their
//    destructor.  Steady-state treap growth therefore touches the system
//    allocator only the first time a size class is seen.
//
//  * Recycler<T> - a freelist of fully-constructed heap objects (Strand,
//    Trace, TraceChunk).  A detector's pools draw from it before calling
//    `new`, and the detector destructor retires its entire owned set in one
//    bulk hand-off (one lock acquisition, not one free per object).  Because
//    a recycled Strand keeps the grown capacity of its AccessBuffers and
//    clears/frees vectors, the steady state of a benchmark rep - construct
//    detector, run, destruct - performs no per-strand heap allocation at
//    all after the first rep.
//
// Recycled objects are NOT reinitialized here: the taker owns that (pool
// on_reuse / Strand::reset / Trace::init), exactly as it already owns it for
// same-run pool recycling.  With the knob off, take() always misses and
// give() destroys, restoring the seed allocation behavior bit-for-bit (the
// knob only changes where memory comes from, never what is stored in it).
//
// Counters are process-wide monotonic totals (same pattern as the Backoff
// deep-entry counter); detectors attribute per-run deltas to
// Stats::arena_reuses / arena_fresh.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

#include "support/spinlock.hpp"

namespace pint::support {

/// Global arena knob (detect::Tuning pushes it in apply_globals()).
inline std::atomic<bool>& arena_knob() {
  static std::atomic<bool> on{true};
  return on;
}
inline void set_arena_recycle(bool on) {
  arena_knob().store(on, std::memory_order_relaxed);
}
inline bool arena_recycle() {
  return arena_knob().load(std::memory_order_relaxed);
}

/// Process-wide monotonic counters: takes served from a freelist vs from the
/// system allocator (objects and slabs both count here).
inline std::atomic<std::uint64_t> g_arena_reuses{0};
inline std::atomic<std::uint64_t> g_arena_fresh{0};

struct ArenaCounters {
  std::uint64_t reuses = 0;
  std::uint64_t fresh = 0;
};
inline ArenaCounters arena_counters() {
  return {g_arena_reuses.load(std::memory_order_relaxed),
          g_arena_fresh.load(std::memory_order_relaxed)};
}

/// Freelist of raw memory blocks, one list per distinct byte size.  take()
/// and give() must use the same `bytes` for a given block.  Blocks are
/// retained for the life of the process (the working set is bounded by the
/// high-water mark of concurrently live detectors).
class SlabSource {
 public:
  static SlabSource& instance() {
    static SlabSource s;
    return s;
  }

  /// Free every retained block at process exit (the function-local static's
  /// destructor).  Anything still checked out is its taker's to give back
  /// first - detectors are destroyed before main returns, and the treaps
  /// hand their chunks back in their own destructors.
  ~SlabSource() {
    for (auto& c : classes_) {
      for (void* p : c.free) ::operator delete(p);
    }
  }

  /// A block of exactly `bytes`, recycled if one is available.  Never fails:
  /// falls through to ::operator new (which may throw bad_alloc like the
  /// plain `new` it replaces).
  void* take(std::size_t bytes) {
    if (arena_recycle()) {
      LockGuard<Spinlock> g(mu_);
      for (auto& c : classes_) {
        if (c.bytes == bytes && !c.free.empty()) {
          void* p = c.free.back();
          c.free.pop_back();
          g_arena_reuses.fetch_add(1, std::memory_order_relaxed);
          return p;
        }
      }
    }
    g_arena_fresh.fetch_add(1, std::memory_order_relaxed);
    return ::operator new(bytes);
  }

  /// Return a block previously obtained from take(bytes).  With the knob
  /// off the block is released to the system allocator immediately.
  void give(void* p, std::size_t bytes) {
    if (!arena_recycle()) {
      ::operator delete(p);
      return;
    }
    LockGuard<Spinlock> g(mu_);
    for (auto& c : classes_) {
      if (c.bytes == bytes) {
        c.free.push_back(p);
        return;
      }
    }
    classes_.push_back({bytes, {p}});
  }

 private:
  struct Class {
    std::size_t bytes;
    std::vector<void*> free;
  };
  Spinlock mu_;
  std::vector<Class> classes_;
};

/// Freelist of fully-constructed heap objects of one type.  Takers must
/// reinitialize (the object carries its previous run's state, including any
/// grown container capacity - which is the point).
template <class T>
class Recycler {
 public:
  static Recycler& instance() {
    static Recycler r;
    return r;
  }

  /// A recycled object, or null when the list is empty / the knob is off.
  std::unique_ptr<T> take() {
    if (!arena_recycle()) return nullptr;
    LockGuard<Spinlock> g(mu_);
    if (free_.empty()) return nullptr;
    std::unique_ptr<T> p = std::move(free_.back());
    free_.pop_back();
    g_arena_reuses.fetch_add(1, std::memory_order_relaxed);
    return p;
  }

  /// Retire a batch of objects wholesale (one lock hold).  The vector is
  /// emptied either way; with the knob off the objects are destroyed.
  /// Retention is capped so one huge run cannot pin memory forever.
  void give_all(std::vector<std::unique_ptr<T>>* batch) {
    if (batch->empty()) return;
    if (arena_recycle()) {
      LockGuard<Spinlock> g(mu_);
      for (auto& p : *batch) {
        if (free_.size() >= kMaxRetained) break;
        if (p != nullptr) free_.push_back(std::move(p));
      }
    }
    batch->clear();  // destroys whatever was not retained
  }

  /// Retire a single object.
  void give(std::unique_ptr<T> p) {
    if (p == nullptr || !arena_recycle()) return;
    LockGuard<Spinlock> g(mu_);
    if (free_.size() < kMaxRetained) free_.push_back(std::move(p));
  }

 private:
  static constexpr std::size_t kMaxRetained = 65536;
  Spinlock mu_;
  std::vector<std::unique_ptr<T>> free_;
};

/// Count one system-allocator construction (pool miss paths call this so the
/// fresh/reuse split stays accurate even though `new` happens at the caller).
inline void note_arena_fresh() {
  g_arena_fresh.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace pint::support
