#pragma once

// Small deterministic PRNGs.
//
// SplitMix64 is used for seeding; Xoshiro256** is the general-purpose
// generator (treap priorities, victim selection, test workloads).  Both are
// tiny, allocation-free, and safe to embed one-per-worker to avoid shared
// state.

#include <cstdint>

namespace pint {

inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bULL) {
    std::uint64_t sm = seed;
    for (auto& w : s_) w = splitmix64(sm);
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform value in [0, bound). bound must be nonzero.
  std::uint64_t next_below(std::uint64_t bound) { return next() % bound; }

  /// Uniform double in [0, 1).
  double next_double() { return double(next() >> 11) * 0x1.0p-53; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace pint
