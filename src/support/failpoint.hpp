#pragma once

// Deterministic fault injection for the PINT pipeline.
//
// A *fail point* is a named site in the code - `PINT_FAILPOINT("pool.alloc")`
// - that normally evaluates to false at the cost of a single relaxed atomic
// load.  When a point of that name has been configured (programmatically or
// through the PINT_FAILPOINTS environment variable) the site counts the hit,
// decides per its trigger mode whether to *fire*, optionally sleeps (stall
// injection), and returns whether the caller should simulate the failure.
//
// Spec grammar (env var or configure() string):
//
//   PINT_FAILPOINTS="<name>=<spec>[;<name>=<spec>...]"
//   spec  := term[,term...]
//   term  := once          fire on the first hit only
//          | always        fire on every hit
//          | every:N       fire on hits N, 2N, 3N, ...
//          | prob:P        fire with probability P in [0,1] (seeded)
//          | seed:S        RNG seed for prob (default: global seed 42)
//          | delay:MS      when fired, sleep MS milliseconds first
//
// Examples:
//   PINT_FAILPOINTS="pool.alloc=once"
//   PINT_FAILPOINTS="reader.stall=once,delay:250;ahqueue.push.full=prob:0.5,seed:7"
//
// A term with `delay` but no trigger fires on every hit.  `prob` uses a
// counter-keyed hash of the seed, so a fixed seed and a fixed per-site hit
// order give a reproducible fire pattern.
//
// Build gating: with the CMake option PINT_FAILPOINTS=OFF the macro compiles
// to a constant false and every site disappears from the hot path entirely
// (the configuration API stays linkable so tools compile either way; tests
// skip themselves via kCompiledIn).
//
// Thread-safety: hit() may be called from any thread. configure()/reset()
// mutate the registry and are quiescence-only (before a run / in test
// setup), mirroring the Stats contract.

#include <cstdint>
#include <string>

#include "support/assert.hpp"

namespace pint::fail {

#ifdef PINT_FAILPOINTS_ENABLED
inline constexpr bool kCompiledIn = true;
#else
inline constexpr bool kCompiledIn = false;
#endif

/// Parses and installs fail points from a spec string ("" is a no-op).
/// Returns false (and installs nothing from the bad clause on) on a parse
/// error. Replaces points with the same name, keeps others.
bool configure(const std::string& spec);
/// configure(getenv("PINT_FAILPOINTS")); called once automatically at
/// library load, callable again by tests after reset().
bool configure_from_env();
/// Removes every configured point and returns counters to zero.
void reset();

/// True when at least one point is configured (the macro's fast gate).
bool any_configured();

/// Site entry point used by the macro; prefer the macro in library code.
bool hit(const char* name);

/// Observability for tests: times a site was reached / times it fired.
/// Unknown names read as 0.
std::uint64_t hit_count(const char* name);
std::uint64_t fire_count(const char* name);

}  // namespace pint::fail

#ifdef PINT_FAILPOINTS_ENABLED
#define PINT_FAILPOINT(name) \
  (PINT_UNLIKELY(::pint::fail::any_configured()) && ::pint::fail::hit(name))
#else
#define PINT_FAILPOINT(name) (false)
#endif
