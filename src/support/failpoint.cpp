#include "support/failpoint.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "support/rng.hpp"

namespace pint::fail {

namespace {

struct FailPoint {
  enum class Trigger : std::uint8_t { kAlways, kOnce, kEveryN, kProb };
  Trigger trigger = Trigger::kAlways;
  std::uint64_t every_n = 1;
  double prob = 1.0;
  std::uint64_t seed = 42;
  std::uint32_t delay_ms = 0;
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> fires{0};

  /// hit_index is 1-based (the fetch_add result + 1).
  bool should_fire(std::uint64_t hit_index) {
    switch (trigger) {
      case Trigger::kAlways:
        return true;
      case Trigger::kOnce:
        return hit_index == 1;
      case Trigger::kEveryN:
        return every_n != 0 && hit_index % every_n == 0;
      case Trigger::kProb: {
        // Counter-keyed: deterministic for a fixed seed and per-site hit
        // order (sites called from one thread replay exactly).
        std::uint64_t s = seed ^ (hit_index * 0x9e3779b97f4a7c15ULL);
        const std::uint64_t r = splitmix64(s);
        return double(r >> 11) * 0x1.0p-53 < prob;
      }
    }
    return false;
  }
};

// Registry: configure()/reset() are quiescence-only, so hit() may walk the
// map without the lock were it not for concurrent *counter* access - which
// is atomic.  We still take the lock for the name lookup to keep the
// contract honest under TSan; the lock is uncontended outside fault tests
// and never held across the injected delay.
std::mutex reg_mu;
std::unordered_map<std::string, std::unique_ptr<FailPoint>>& registry() {
  static std::unordered_map<std::string, std::unique_ptr<FailPoint>> r;
  return r;
}
std::atomic<int> configured_count{0};

FailPoint* find(const char* name) {
  std::lock_guard<std::mutex> g(reg_mu);
  auto it = registry().find(name);
  return it == registry().end() ? nullptr : it->second.get();
}

/// Parses one "term[,term...]" clause into *fp. Returns false on error.
bool parse_spec(const std::string& spec, FailPoint* fp) {
  bool have_trigger = false;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t end = spec.find(',', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string term = spec.substr(pos, end - pos);
    pos = end + 1;
    const std::size_t colon = term.find(':');
    const std::string key = term.substr(0, colon);
    const std::string arg =
        colon == std::string::npos ? "" : term.substr(colon + 1);
    char* rest = nullptr;
    if (key == "once" && arg.empty()) {
      fp->trigger = FailPoint::Trigger::kOnce;
      have_trigger = true;
    } else if (key == "always" && arg.empty()) {
      fp->trigger = FailPoint::Trigger::kAlways;
      have_trigger = true;
    } else if (key == "every" && !arg.empty()) {
      fp->every_n = std::strtoull(arg.c_str(), &rest, 10);
      if (*rest != '\0' || fp->every_n == 0) return false;
      fp->trigger = FailPoint::Trigger::kEveryN;
      have_trigger = true;
    } else if (key == "prob" && !arg.empty()) {
      fp->prob = std::strtod(arg.c_str(), &rest);
      if (*rest != '\0' || fp->prob < 0.0 || fp->prob > 1.0) return false;
      fp->trigger = FailPoint::Trigger::kProb;
      have_trigger = true;
    } else if (key == "seed" && !arg.empty()) {
      fp->seed = std::strtoull(arg.c_str(), &rest, 10);
      if (*rest != '\0') return false;
    } else if (key == "delay" && !arg.empty()) {
      fp->delay_ms = std::uint32_t(std::strtoul(arg.c_str(), &rest, 10));
      if (*rest != '\0') return false;
    } else {
      return false;
    }
  }
  // A pure delay point stalls on every hit.
  if (!have_trigger && fp->delay_ms == 0) return false;
  return true;
}

// Load-time env pickup: the macro's fast gate (any_configured) must already
// see env-configured points at the first site hit, so PINT_FAILPOINTS is
// parsed before main() rather than lazily on the hot path.
[[maybe_unused]] const bool env_init = configure_from_env();

}  // namespace

bool configure(const std::string& spec) {
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t end = spec.find(';', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string clause = spec.substr(pos, end - pos);
    pos = end + 1;
    if (clause.empty()) continue;
    // Stop at the first bad clause: nothing from it on is installed (the
    // documented contract in failpoint.hpp), so a typo cannot silently arm
    // only the tail of a spec.
    const std::size_t eq = clause.find('=');
    if (eq == std::string::npos || eq == 0) return false;
    auto fp = std::make_unique<FailPoint>();
    if (!parse_spec(clause.substr(eq + 1), fp.get())) return false;
    std::lock_guard<std::mutex> g(reg_mu);
    auto [it, inserted] =
        registry().emplace(clause.substr(0, eq), std::move(fp));
    if (!inserted) {
      it->second = std::move(fp);
    } else {
      configured_count.fetch_add(1, std::memory_order_release);
    }
  }
  return true;
}

bool configure_from_env() {
  const char* env = std::getenv("PINT_FAILPOINTS");
  if (env == nullptr || *env == '\0') return true;
  return configure(env);
}

void reset() {
  std::lock_guard<std::mutex> g(reg_mu);
  registry().clear();
  configured_count.store(0, std::memory_order_release);
}

bool any_configured() {
  return configured_count.load(std::memory_order_relaxed) != 0;
}

bool hit(const char* name) {
  FailPoint* fp = find(name);
  if (fp == nullptr) return false;
  const std::uint64_t idx = fp->hits.fetch_add(1, std::memory_order_relaxed) + 1;
  if (!fp->should_fire(idx)) return false;
  fp->fires.fetch_add(1, std::memory_order_relaxed);
  if (fp->delay_ms != 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(fp->delay_ms));
  }
  return true;
}

std::uint64_t hit_count(const char* name) {
  FailPoint* fp = find(name);
  return fp ? fp->hits.load(std::memory_order_relaxed) : 0;
}

std::uint64_t fire_count(const char* name) {
  FailPoint* fp = find(name);
  return fp ? fp->fires.load(std::memory_order_relaxed) : 0;
}

}  // namespace pint::fail
