#pragma once

// Lightweight assertion / hint macros used across the library.
//
// PINT_ASSERT  - debug-only invariant check (compiled out in NDEBUG builds).
// PINT_CHECK   - always-on check for conditions that must hold even in
//                release builds (cheap, on error paths only).
// PINT_UNREACHABLE - marks impossible control flow.
//
// All failures route through the shared error sink (support/error_sink.hpp)
// so they carry the same run-identifying header as the watchdog's progress
// snapshot and every other fatal path.

namespace pint {

[[noreturn]] void assert_fail(const char* expr, const char* file, int line,
                              const char* msg);

}  // namespace pint

#define PINT_CHECK(expr)                                            \
  do {                                                              \
    if (!(expr)) ::pint::assert_fail(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define PINT_CHECK_MSG(expr, msg)                                      \
  do {                                                                 \
    if (!(expr)) ::pint::assert_fail(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)

#ifndef NDEBUG
#define PINT_ASSERT(expr) PINT_CHECK(expr)
#else
#define PINT_ASSERT(expr) ((void)0)
#endif

#define PINT_UNREACHABLE() ::pint::assert_fail("unreachable", __FILE__, __LINE__, "")

#if defined(__GNUC__)
#define PINT_LIKELY(x) __builtin_expect(!!(x), 1)
#define PINT_UNLIKELY(x) __builtin_expect(!!(x), 0)
#define PINT_NOINLINE __attribute__((noinline))
#else
#define PINT_LIKELY(x) (x)
#define PINT_UNLIKELY(x) (x)
#define PINT_NOINLINE
#endif
