#include "support/telemetry.hpp"

#if PINT_TELEMETRY_ENABLED

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <map>
#include <memory>
#include <mutex>

#include "support/timer.hpp"

namespace pint::telem {

namespace detail {
std::atomic<bool> g_on{false};
std::uint64_t ts_now() { return now_ns(); }
}  // namespace detail

namespace {

constexpr std::size_t kMinRing = std::size_t(1) << 10;
constexpr std::size_t kMaxRing = std::size_t(1) << 24;
constexpr std::size_t kDefaultRing = std::size_t(1) << 16;
// Distinct span/count names per thread.  The pipeline uses ~a dozen; the
// table is fixed-size so hot-path lookup is a short pointer scan.
constexpr int kMaxNames = 48;

struct Event {
  std::uint64_t ts;
  const char* name;
  std::uint64_t value;
  EventKind kind;
};

struct NamedTotal {
  const char* name;
  std::uint64_t count;
  std::uint64_t total;
};

/// One thread's recording state.  Single-writer (the owning thread); readers
/// (export, totals) run at quiescence under the registry lock.
struct ThreadBuf {
  std::vector<Event> ring;
  std::uint64_t n = 0;  // events ever written; ring slot = n % ring.size()
  NamedTotal spans[kMaxNames];
  int nspans = 0;
  NamedTotal counts[kMaxNames];
  int ncounts = 0;
  /// Stable storage for copied strings (roles, gauge names).  deque: the
  /// c_str() pointers survive growth.
  std::deque<std::string> strings;
  /// (event index, role) transitions - kept outside the ring so track
  /// attribution survives wrap-around.
  std::vector<std::pair<std::uint64_t, const char*>> role_log;
  int seq = 0;
  std::atomic<bool> released{false};

  void clear() {
    n = 0;
    nspans = ncounts = 0;
    strings.clear();
    role_log.clear();
  }

  const char* store(const char* s) {
    for (const auto& t : strings) {
      if (t == s) return t.c_str();
    }
    strings.emplace_back(s);
    return strings.back().c_str();
  }

  void push(std::uint64_t ts, const char* name, std::uint64_t v, EventKind k) {
    ring[std::size_t(n % ring.size())] = {ts, name, v, k};
    ++n;
  }

  NamedTotal* tot(NamedTotal* arr, int& na, const char* name) {
    for (int i = 0; i < na; ++i) {
      if (arr[i].name == name) return &arr[i];
    }
    if (na == kMaxNames) return nullptr;  // overflow names lose their totals
    arr[na] = {name, 0, 0};
    return &arr[na++];
  }

  std::size_t retained() const { return std::size_t(std::min<std::uint64_t>(n, ring.size())); }
  std::uint64_t first_index() const { return n - retained(); }
  const Event& at(std::uint64_t abs_index) const {
    return ring[std::size_t(abs_index % ring.size())];
  }
  const char* role_at(std::uint64_t abs_index) const {
    const char* r = nullptr;
    for (const auto& [idx, role] : role_log) {
      if (idx > abs_index) break;
      r = role;
    }
    return r;
  }
};

std::mutex g_reg_mu;
std::vector<std::unique_ptr<ThreadBuf>> g_bufs;
std::vector<ThreadBuf*> g_free;
int g_next_seq = 0;
std::size_t g_ring_cap = 0;  // 0 = not resolved yet

std::size_t ring_cap_locked() {
  if (g_ring_cap == 0) {
    std::size_t cap = kDefaultRing;
    if (const char* e = std::getenv("PINT_TELEMETRY_EVENTS")) {
      const long long v = std::atoll(e);
      if (v > 0) cap = std::size_t(v);
    }
    g_ring_cap = std::clamp(cap, kMinRing, kMaxRing);
  }
  return g_ring_cap;
}

/// Marks the buffer reusable when its thread exits; reset() recycles it.
struct TlHolder {
  ThreadBuf* buf = nullptr;
  ~TlHolder() {
    if (buf != nullptr) buf->released.store(true, std::memory_order_release);
  }
};
thread_local TlHolder tl_holder;

ThreadBuf* tl_buf() {
  ThreadBuf* b = tl_holder.buf;
  if (b != nullptr) return b;
  std::lock_guard<std::mutex> g(g_reg_mu);
  if (!g_free.empty()) {
    b = g_free.back();
    g_free.pop_back();
    b->released.store(false, std::memory_order_relaxed);
  } else {
    g_bufs.push_back(std::make_unique<ThreadBuf>());
    b = g_bufs.back().get();
    b->ring.resize(ring_cap_locked());
  }
  b->seq = g_next_seq++;
  tl_holder.buf = b;
  return b;
}

void json_escape(std::string* out, const char* s) {
  for (; *s != '\0'; ++s) {
    const unsigned char c = (unsigned char)*s;
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(char(c));
    } else if (c < 0x20) {
      char esc[8];
      std::snprintf(esc, sizeof(esc), "\\u%04x", c);
      out->append(esc);
    } else {
      out->push_back(char(c));
    }
  }
}

std::string escaped(const char* s) {
  std::string out;
  json_escape(&out, s);
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Recording
// ---------------------------------------------------------------------------

void set_enabled(bool on) {
  detail::g_on.store(on, std::memory_order_release);
}

void set_ring_capacity(std::size_t events) {
  std::lock_guard<std::mutex> g(g_reg_mu);
  g_ring_cap = std::clamp(events, kMinRing, kMaxRing);
}

void reset() {
  std::lock_guard<std::mutex> g(g_reg_mu);
  g_free.clear();
  for (auto& b : g_bufs) {
    b->clear();
    // Re-apply the current capacity so a set_ring_capacity() between runs
    // takes effect for live threads too, not only newly created buffers.
    if (b->ring.size() != ring_cap_locked()) b->ring.resize(ring_cap_locked());
    if (b->released.load(std::memory_order_acquire)) g_free.push_back(b.get());
  }
}

void set_thread_role(const char* role) {
  if (!enabled()) return;
  ThreadBuf* b = tl_buf();
  b->role_log.emplace_back(b->n, b->store(role));
}

void count(const char* name, std::uint64_t delta) {
  if (!enabled()) return;
  ThreadBuf* b = tl_buf();
  std::uint64_t running = delta;
  if (NamedTotal* t = b->tot(b->counts, b->ncounts, name)) {
    t->count += 1;
    t->total += delta;
    running = t->total;
  }
  b->push(now_ns(), name, running, EventKind::kCount);
}

void gauge(const char* name, std::uint64_t value) {
  if (!enabled()) return;
  ThreadBuf* b = tl_buf();
  b->push(now_ns(), b->store(name), value, EventKind::kGauge);
}

namespace detail {

void span_begin(const char* name, std::uint64_t t0_ns) {
  tl_buf()->push(t0_ns, name, 0, EventKind::kBegin);
}

void span_end(const char* name, std::uint64_t t0_ns) {
  // The ScopedSpan captured enabled() at construction; recording the end
  // even if telemetry was disabled mid-span keeps every begin balanced.
  const std::uint64_t t1 = now_ns();
  const std::uint64_t dur = t1 >= t0_ns ? t1 - t0_ns : 0;
  ThreadBuf* b = tl_buf();
  if (NamedTotal* t = b->tot(b->spans, b->nspans, name)) {
    t->count += 1;
    t->total += dur;
  }
  b->push(t1, name, dur, EventKind::kEnd);
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Sampler
// ---------------------------------------------------------------------------

struct Sampler::Waiter {
  std::mutex mu;
  std::condition_variable cv;
  bool stop = false;
};

void Sampler::start(Probe probe, const Options& opt) {
  if (!enabled() || thread_.joinable()) return;
  waiter_ = new Waiter();
  Waiter* w = waiter_;
  const std::uint32_t period_us = opt.period_us == 0 ? 200 : opt.period_us;
  const char* role = opt.role;
  thread_ = std::thread([w, probe = std::move(probe), period_us, role] {
    set_thread_role(role);
    Sink sink;
    for (;;) {
      probe(sink);
      std::unique_lock<std::mutex> lk(w->mu);
      if (w->cv.wait_for(lk, std::chrono::microseconds(period_us),
                         [w] { return w->stop; })) {
        break;
      }
    }
    probe(sink);  // final sample: the series covers the run's end state
  });
}

void Sampler::stop() {
  if (thread_.joinable()) {
    {
      std::lock_guard<std::mutex> g(waiter_->mu);
      waiter_->stop = true;
    }
    waiter_->cv.notify_all();
    thread_.join();
  }
  delete waiter_;
  waiter_ = nullptr;
}

// ---------------------------------------------------------------------------
// Aggregates / introspection
// ---------------------------------------------------------------------------

namespace {

std::vector<Total> merge_totals(bool spans) {
  std::lock_guard<std::mutex> g(g_reg_mu);
  std::map<std::string, Total> merged;
  for (const auto& b : g_bufs) {
    const NamedTotal* arr = spans ? b->spans : b->counts;
    const int na = spans ? b->nspans : b->ncounts;
    for (int i = 0; i < na; ++i) {
      Total& t = merged[arr[i].name];
      t.name = arr[i].name;
      t.count += arr[i].count;
      t.total += arr[i].total;
    }
  }
  std::vector<Total> out;
  out.reserve(merged.size());
  for (auto& [_, t] : merged) out.push_back(std::move(t));
  return out;
}

}  // namespace

std::vector<Total> span_totals() { return merge_totals(/*spans=*/true); }
std::vector<Total> counter_totals() { return merge_totals(/*spans=*/false); }

std::uint64_t dropped_events() {
  std::lock_guard<std::mutex> g(g_reg_mu);
  std::uint64_t dropped = 0;
  for (const auto& b : g_bufs) {
    if (b->n > b->ring.size()) dropped += b->n - b->ring.size();
  }
  return dropped;
}

std::vector<EventRec> snapshot_events() {
  std::lock_guard<std::mutex> g(g_reg_mu);
  std::vector<EventRec> out;
  for (const auto& b : g_bufs) {
    char fallback[24];
    std::snprintf(fallback, sizeof(fallback), "thread-%d", b->seq);
    for (std::uint64_t i = b->first_index(); i < b->n; ++i) {
      const Event& e = b->at(i);
      const char* role = b->role_at(i);
      EventRec r;
      r.ts_ns = e.ts;
      r.track = role != nullptr ? role : fallback;
      r.name = e.name;
      r.value = e.value;
      r.kind = e.kind;
      out.push_back(std::move(r));
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Export
// ---------------------------------------------------------------------------

bool write_chrome_trace(const std::string& path) {
  std::lock_guard<std::mutex> g(g_reg_mu);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;

  // Pass 1: the earliest retained timestamp anchors ts=0 in the export.
  std::uint64_t base_ts = ~std::uint64_t(0);
  for (const auto& b : g_bufs) {
    for (std::uint64_t i = b->first_index(); i < b->n; ++i) {
      base_ts = std::min(base_ts, b->at(i).ts);
    }
  }
  if (base_ts == ~std::uint64_t(0)) base_ts = 0;

  std::fputs("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n", f);
  bool first = true;
  auto sep = [&] {
    if (!first) std::fputs(",\n", f);
    first = false;
  };
  auto us = [&](std::uint64_t ts) { return double(ts - base_ts) / 1000.0; };

  // One Chrome "thread" (tid) per (recording thread, role): a thread that
  // changes roles across the run - the phased one-core mode - appears as one
  // track per role.
  std::map<std::pair<int, std::string>, int> tids;
  int next_tid = 1;
  auto tid_for = [&](const ThreadBuf& b, const char* role,
                     const char* fallback) {
    const char* track = role != nullptr ? role : fallback;
    auto [it, inserted] = tids.insert({{b.seq, track}, next_tid});
    if (inserted) {
      ++next_tid;
      sep();
      std::fprintf(f,
                   "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                   "\"tid\":%d,\"args\":{\"name\":\"%s\"}}",
                   it->second, escaped(track).c_str());
    }
    return it->second;
  };

  for (const auto& b : g_bufs) {
    char fallback[24];
    std::snprintf(fallback, sizeof(fallback), "thread-%d", b->seq);
    // Wrap repair: an end whose begin was overwritten is dropped; a begin
    // still open when the track ends (or the thread switches role) gets a
    // synthesized end, so every exported track is balanced.
    std::vector<std::pair<const char*, int>> open;  // (name, tid)
    int cur_tid = -1;
    std::uint64_t last_ts = base_ts;
    const char* cur_role = nullptr;
    auto close_open = [&](std::uint64_t at_ts) {
      while (!open.empty()) {
        sep();
        std::fprintf(f,
                     "{\"name\":\"%s\",\"ph\":\"E\",\"pid\":1,\"tid\":%d,"
                     "\"ts\":%.3f}",
                     escaped(open.back().first).c_str(), open.back().second,
                     us(at_ts));
        open.pop_back();
      }
    };
    for (std::uint64_t i = b->first_index(); i < b->n; ++i) {
      const Event& e = b->at(i);
      const char* role = b->role_at(i);
      if (role != cur_role || cur_tid < 0) {
        close_open(e.ts);  // spans never straddle a role change
        cur_role = role;
        cur_tid = tid_for(*b, role, fallback);
      }
      last_ts = e.ts;
      switch (e.kind) {
        case EventKind::kBegin:
          sep();
          std::fprintf(f,
                       "{\"name\":\"%s\",\"ph\":\"B\",\"pid\":1,\"tid\":%d,"
                       "\"ts\":%.3f}",
                       escaped(e.name).c_str(), cur_tid, us(e.ts));
          open.push_back({e.name, cur_tid});
          break;
        case EventKind::kEnd:
          if (!open.empty()) {
            sep();
            std::fprintf(f,
                         "{\"name\":\"%s\",\"ph\":\"E\",\"pid\":1,\"tid\":%d,"
                         "\"ts\":%.3f}",
                         escaped(open.back().first).c_str(), open.back().second,
                         us(e.ts));
            open.pop_back();
          }
          break;
        case EventKind::kCount:
        case EventKind::kGauge:
          sep();
          std::fprintf(f,
                       "{\"name\":\"%s\",\"ph\":\"C\",\"pid\":1,\"tid\":%d,"
                       "\"ts\":%.3f,\"args\":{\"value\":%llu}}",
                       escaped(e.name).c_str(), cur_tid, us(e.ts),
                       (unsigned long long)e.value);
          break;
        case EventKind::kRole:
          break;  // roles are carried by role_log, never by ring events
      }
    }
    close_open(last_ts);
  }
  std::fputs("\n]}\n", f);
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

bool write_metrics_json(
    const std::string& path,
    const std::vector<std::pair<std::string, std::uint64_t>>& extra) {
  // Aggregates first (they take the registry lock themselves).
  const std::vector<Total> spans = span_totals();
  const std::vector<Total> counters = counter_totals();
  const std::uint64_t dropped = dropped_events();

  struct Series {
    std::uint64_t samples = 0;
    std::uint64_t min = ~std::uint64_t(0);
    std::uint64_t max = 0;
    std::uint64_t last = 0;
    std::uint64_t last_ts = 0;
  };
  std::map<std::string, Series> series;
  std::size_t threads = 0;
  std::uint64_t retained = 0;
  {
    std::lock_guard<std::mutex> g(g_reg_mu);
    threads = g_bufs.size();
    for (const auto& b : g_bufs) {
      retained += b->retained();
      for (std::uint64_t i = b->first_index(); i < b->n; ++i) {
        const Event& e = b->at(i);
        if (e.kind != EventKind::kGauge) continue;
        Series& s = series[e.name];
        s.samples += 1;
        s.min = std::min(s.min, e.value);
        s.max = std::max(s.max, e.value);
        if (e.ts >= s.last_ts) {
          s.last_ts = e.ts;
          s.last = e.value;
        }
      }
    }
  }

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fputs("{\n  \"spans\": {", f);
  bool first = true;
  for (const Total& t : spans) {
    std::fprintf(f, "%s\n    \"%s\": {\"count\": %llu, \"total_ns\": %llu}",
                 first ? "" : ",", escaped(t.name.c_str()).c_str(),
                 (unsigned long long)t.count, (unsigned long long)t.total);
    first = false;
  }
  std::fputs("\n  },\n  \"counters\": {", f);
  first = true;
  for (const Total& t : counters) {
    std::fprintf(f, "%s\n    \"%s\": %llu", first ? "" : ",",
                 escaped(t.name.c_str()).c_str(),
                 (unsigned long long)t.total);
    first = false;
  }
  std::fputs("\n  },\n  \"series\": {", f);
  first = true;
  for (const auto& [name, s] : series) {
    std::fprintf(f,
                 "%s\n    \"%s\": {\"samples\": %llu, \"min\": %llu, "
                 "\"max\": %llu, \"last\": %llu}",
                 first ? "" : ",", escaped(name.c_str()).c_str(),
                 (unsigned long long)s.samples, (unsigned long long)s.min,
                 (unsigned long long)s.max, (unsigned long long)s.last);
    first = false;
  }
  std::fputs("\n  },\n  \"stats\": {", f);
  first = true;
  for (const auto& [key, value] : extra) {
    std::fprintf(f, "%s\n    \"%s\": %llu", first ? "" : ",",
                 escaped(key.c_str()).c_str(), (unsigned long long)value);
    first = false;
  }
  std::fprintf(f,
               "\n  },\n  \"telemetry\": {\"threads\": %zu, "
               "\"events_retained\": %llu, \"events_dropped\": %llu}\n}\n",
               threads, (unsigned long long)retained,
               (unsigned long long)dropped);
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

}  // namespace pint::telem

#endif  // PINT_TELEMETRY_ENABLED
