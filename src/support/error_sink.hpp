#pragma once

// One sink for every failure-path line the library emits: assertion
// failures (PINT_CHECK / PINT_ASSERT via assert_fail), fatal degradation
// errors, and the watchdog's progress snapshot all go through the same
// stream and carry the same run-identifying header, so a log line can
// always be matched to the detector run that produced it.
//
// The sink defaults to stderr; tests redirect it with set_error_stream to
// capture and assert on diagnostics.  The run context is a short string
// (seed / worker counts / mode) set by the detector at run start.
//
// Thread-safety: all entry points may be called from any thread (the
// watchdog monitor thread and worker threads report concurrently); the
// header state is guarded internally.  set_error_stream / set_run_context
// are expected at quiescence (test setup, run start) but are safe anytime.

#include <cstdio>

namespace pint {

/// Replaces the sink stream (nullptr resets to stderr). Returns the
/// previous stream so tests can restore it.
std::FILE* set_error_stream(std::FILE* f);
std::FILE* error_stream();

/// Sets the run-identifying context string, printf-style (truncated to an
/// internal fixed buffer). Shown as "[pint <ctx>]" in every sink line.
void set_run_context(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
void clear_run_context();
/// Copies the current context into buf (always NUL-terminated).
void run_context(char* buf, std::size_t len);

/// Writes "[pint <ctx>] " followed by the formatted message to the sink.
/// One call = one atomic-ish line group (internally locked, then flushed).
void error_headerf(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// error_headerf, then abort(). For unsurvivable degradation dead-ends.
[[noreturn]] void fatal_errorf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace pint
