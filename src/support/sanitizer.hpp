#pragma once

// Sanitizer integration for the hand-rolled fiber switch.
//
// ThreadSanitizer and AddressSanitizer both track per-thread stacks; a raw
// `pint_ctx_switch` moves execution to a different stack behind their backs,
// which makes TSan attribute events to the wrong logical thread (bogus races,
// broken lock-sets) and makes ASan mis-handle fake-stack frames.  Both
// runtimes expose annotation hooks for exactly this situation:
//
//  * TSan: every stack gets a "fiber context" (__tsan_create_fiber /
//    __tsan_get_current_fiber); __tsan_switch_to_fiber(target) must be
//    called immediately before the switch.  Flag 0 establishes a
//    happens-before edge from switcher to switchee - correct here, because a
//    real context switch on one OS thread totally orders the two.
//  * ASan: __sanitizer_start_switch_fiber(&fake, bottom, size) before the
//    switch and __sanitizer_finish_switch_fiber(fake, ...) first thing on
//    the destination stack.  A context that will never be resumed (a task
//    fiber at its final switch-out) passes nullptr for &fake so ASan
//    releases the dying stack's fake frames.
//
// Everything here compiles to nothing in a plain build; the lanes are
// selected with -DPINT_SAN=thread|address (see the top-level CMakeLists).

#include <cstddef>

#if defined(__SANITIZE_THREAD__)
#define PINT_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define PINT_TSAN 1
#endif
#endif

#if defined(__SANITIZE_ADDRESS__)
#define PINT_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define PINT_ASAN 1
#endif
#endif

#if defined(PINT_TSAN)
#include <sanitizer/tsan_interface.h>
#endif
#if defined(PINT_ASAN)
#include <pthread.h>

#include <sanitizer/asan_interface.h>
#include <sanitizer/common_interface_defs.h>
#endif

namespace pint::san {

/// Per-context sanitizer metadata, embedded in every pint::Context.  Empty
/// (and zero-cost) when no sanitizer lane is active.
struct ContextMeta {
#if defined(PINT_TSAN)
  void* tsan_fiber = nullptr;
#endif
#if defined(PINT_ASAN)
  const void* stack_bottom = nullptr;
  std::size_t stack_size = 0;
#endif
};

/// Registers a fiber stack (called once per Fiber at creation).
inline void create_fiber_meta(ContextMeta& m, const void* stack_bottom,
                              std::size_t stack_size) {
#if defined(PINT_TSAN)
  m.tsan_fiber = __tsan_create_fiber(0);
#endif
#if defined(PINT_ASAN)
  m.stack_bottom = stack_bottom;
  m.stack_size = stack_size;
#endif
  (void)m;
  (void)stack_bottom;
  (void)stack_size;
}

inline void destroy_fiber_meta(ContextMeta& m) {
#if defined(PINT_TSAN)
  if (m.tsan_fiber != nullptr) {
    __tsan_destroy_fiber(m.tsan_fiber);
    m.tsan_fiber = nullptr;
  }
#endif
  (void)m;
}

/// Adopts the *currently executing* stack as the context's identity; used by
/// worker loops for their thread context (which, for nested schedulers, may
/// itself be an outer fiber - __tsan_get_current_fiber handles both).  The
/// caller supplies the stack bounds it knows (may be null/0 when unknown;
/// ASan tolerates approximate bounds for a context that is only ever
/// switched back into from annotated switches).
inline void adopt_current_stack(ContextMeta& m, const void* stack_bottom,
                                std::size_t stack_size) {
#if defined(PINT_TSAN)
  m.tsan_fiber = __tsan_get_current_fiber();
#endif
#if defined(PINT_ASAN)
  m.stack_bottom = stack_bottom;
  m.stack_size = stack_size;
#endif
  (void)m;
  (void)stack_bottom;
  (void)stack_size;
}

/// Adopts the calling OS thread's own stack (bounds via pthread) - for
/// worker loops that run directly on a pthread, not on a fiber.
inline void adopt_current_thread_stack(ContextMeta& m) {
#if defined(PINT_TSAN)
  m.tsan_fiber = __tsan_get_current_fiber();
#endif
#if defined(PINT_ASAN)
  pthread_attr_t attr;
  if (pthread_getattr_np(pthread_self(), &attr) == 0) {
    void* base = nullptr;
    std::size_t size = 0;
    pthread_attr_getstack(&attr, &base, &size);
    m.stack_bottom = base;
    m.stack_size = size;
    pthread_attr_destroy(&attr);
  }
#endif
  (void)m;
}

/// First statement on a freshly entered fiber (the entry trampoline): closes
/// the switch that ASan opened on the source stack.
inline void on_fiber_entry() {
#if defined(PINT_ASAN)
  __sanitizer_finish_switch_fiber(nullptr, nullptr, nullptr);
#endif
}

/// A fiber stack is about to be reused (Fiber::reset) or returned to the OS
/// (Fiber::destroy).  The frames abandoned at the fiber's final switch-out
/// never ran their epilogues, so their redzone poison is still in shadow
/// memory; the next code to occupy those addresses - a reset fiber, or an
/// unrelated mapping after munmap - would misfire on it.
inline void clear_stack_poison(const void* stack_bottom, std::size_t size) {
#if defined(PINT_ASAN)
  if (stack_bottom != nullptr && size != 0) {
    __asan_unpoison_memory_region(const_cast<void*>(stack_bottom), size);
  }
#endif
  (void)stack_bottom;
  (void)size;
}

}  // namespace pint::san
