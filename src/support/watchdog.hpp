#pragma once

// Pipeline liveness watchdog.
//
// The PINT pipeline's forward-progress argument (writer collects -> queue ->
// readers drain -> producer reclaims) holds only while every stage keeps
// moving; a stage that stops dead turns collect() and the consumer cursors
// into silent infinite loops.  The watchdog makes that observable: each
// pipeline loop owns a Heartbeat it (a) beats whenever it completes a unit
// of work and (b) marks idle while it is legitimately waiting with nothing
// to do.  A monitor thread polls all registered heartbeats; a heartbeat
// that is BUSY (not idle) and has not beaten for the configured deadline
// trips the watchdog once: the snapshot callback dumps structured progress
// state through the shared error sink, then the on-stall callback lets the
// owner cancel the run cleanly instead of hanging.
//
// Heartbeat contract (see DESIGN.md "Failure model & degradation"):
//  * beat() after every completed unit of work (strand processed, trace
//    advanced, backoff pause survived);
//  * set_idle(true) only at a genuine wait point (no input available yet);
//    set_idle(false) before touching work again;
//  * an idle heartbeat never trips; a busy, silent one always does.
//
// All heartbeat state is atomic with relaxed ordering - the monitor only
// needs an eventually-consistent view, never synchronization.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pint {

class Heartbeat {
 public:
  void beat() { beats_.fetch_add(1, std::memory_order_relaxed); }
  void set_idle(bool idle) { idle_.store(idle, std::memory_order_relaxed); }
  std::uint64_t beats() const {
    return beats_.load(std::memory_order_relaxed);
  }
  bool idle() const { return idle_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> beats_{0};
  std::atomic<bool> idle_{false};
};

class Watchdog {
 public:
  struct Options {
    /// A busy heartbeat silent for this long trips the watchdog.
    std::uint32_t deadline_ms = 10000;
    /// Monitor poll period; 0 = deadline/4 clamped to [1, 100] ms.
    std::uint32_t poll_ms = 0;
  };

  /// Both callbacks run on the monitor thread, at most once per arm();
  /// they receive the name of the first heartbeat found stalled.
  using SnapshotFn = std::function<void(const char* stalled)>;
  using StallFn = std::function<void(const char* stalled)>;

  explicit Watchdog(const Options& opt) : opt_(opt) {}
  ~Watchdog() { disarm(); }
  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Registration and callback setup happen before arm().
  void add(const char* name, Heartbeat* hb) {
    entries_.push_back(Entry{name, hb, 0, 0});
  }
  void set_snapshot(SnapshotFn fn) { snapshot_ = std::move(fn); }
  void set_on_stall(StallFn fn) { on_stall_ = std::move(fn); }

  /// Starts the monitor thread. No-op when already armed or when no
  /// heartbeat is registered.
  void arm();
  /// Stops and joins the monitor thread (idempotent; safe if never armed).
  void disarm();

  bool tripped() const { return tripped_.load(std::memory_order_acquire); }
  /// Name of the heartbeat that tripped, or nullptr.
  const char* tripped_name() const {
    return tripped_name_.load(std::memory_order_acquire);
  }

 private:
  struct Entry {
    const char* name;
    Heartbeat* hb;
    std::uint64_t last_beats;
    std::uint64_t changed_at_ns;
  };

  void monitor();

  Options opt_;
  std::vector<Entry> entries_;
  SnapshotFn snapshot_;
  StallFn on_stall_;
  std::thread thread_;
  bool armed_ = false;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;  // guarded by mu_
  std::atomic<bool> tripped_{false};
  std::atomic<const char*> tripped_name_{nullptr};
};

}  // namespace pint
