#pragma once

// Spinlocks and backoff helpers.
//
// The runtime oversubscribes cores (worker threads + treap workers can
// exceed hardware threads), so every spin loop must eventually yield to the
// OS scheduler or it can livelock on small machines.  Backoff centralises
// that policy.

#include <atomic>
#include <thread>

namespace pint {

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

/// Exponential-ish backoff: pause a few times, then yield to the OS.
class Backoff {
 public:
  void pause() {
    if (count_ < kSpinLimit) {
      for (int i = 0; i < (1 << count_); ++i) cpu_relax();
      ++count_;
    } else {
      std::this_thread::yield();
    }
  }
  void reset() { count_ = 0; }

 private:
  static constexpr int kSpinLimit = 6;
  int count_ = 0;
};

/// Minimal test-and-test-and-set spinlock with yield fallback.
class Spinlock {
 public:
  void lock() {
    Backoff bo;
    for (;;) {
      if (!flag_.exchange(true, std::memory_order_acquire)) return;
      while (flag_.load(std::memory_order_relaxed)) bo.pause();
    }
  }
  bool try_lock() { return !flag_.exchange(true, std::memory_order_acquire); }
  void unlock() { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> flag_{false};
};

/// RAII guard (std::lock_guard works too; this avoids <mutex> include).
template <class Lock>
class LockGuard {
 public:
  explicit LockGuard(Lock& l) : l_(l) { l_.lock(); }
  ~LockGuard() { l_.unlock(); }
  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Lock& l_;
};

}  // namespace pint
