#pragma once

// Spinlocks and backoff helpers.
//
// The runtime oversubscribes cores (worker threads + treap workers can
// exceed hardware threads), so every spin loop must eventually yield to the
// OS scheduler or it can livelock on small machines.  Backoff centralises
// that policy.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>

namespace pint {

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

/// Process-wide count of Backoff waits that reached the bounded-sleep tier
/// (relaxed: a monitoring counter, never synchronizes anything).  Detectors
/// attribute the delta across a run to Stats::deep_backoffs.
inline std::atomic<std::uint64_t> g_deep_backoff_entries{0};

/// Three-tier backoff: exponential cpu_relax, then sched-yield, then a
/// bounded sleep.  The sleep tier keeps idle history lanes from burning a
/// full core on oversubscribed machines while capping the wake-up latency a
/// sleeping waiter can add (kSleepUs per pause).
class Backoff {
 public:
  void pause() {
    if (count_ < kSpinLimit) {
      for (int i = 0; i < (1 << count_); ++i) cpu_relax();
      ++count_;
    } else if (count_ < kSpinLimit + kYieldLimit) {
      std::this_thread::yield();
      ++count_;
    } else {
      if (count_ == kSpinLimit + kYieldLimit) {
        ++count_;  // saturate: one deep entry per reset cycle
        g_deep_backoff_entries.fetch_add(1, std::memory_order_relaxed);
      }
      std::this_thread::sleep_for(std::chrono::microseconds(kSleepUs));
    }
  }
  void reset() { count_ = 0; }

  /// Cumulative deep-tier entries since process start.
  static std::uint64_t deep_entries() {
    return g_deep_backoff_entries.load(std::memory_order_relaxed);
  }

 private:
  static constexpr int kSpinLimit = 6;    // exponential cpu_relax phase
  static constexpr int kYieldLimit = 64;  // yield phase before sleeping
  static constexpr int kSleepUs = 100;    // bounded nap per deep pause
  int count_ = 0;
};

/// Minimal test-and-test-and-set spinlock with yield fallback.
class Spinlock {
 public:
  void lock() {
    Backoff bo;
    for (;;) {
      if (!flag_.exchange(true, std::memory_order_acquire)) return;
      while (flag_.load(std::memory_order_relaxed)) bo.pause();
    }
  }
  bool try_lock() { return !flag_.exchange(true, std::memory_order_acquire); }
  void unlock() { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> flag_{false};
};

/// RAII guard (std::lock_guard works too; this avoids <mutex> include).
template <class Lock>
class LockGuard {
 public:
  explicit LockGuard(Lock& l) : l_(l) { l_.lock(); }
  ~LockGuard() { l_.unlock(); }
  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Lock& l_;
};

}  // namespace pint
