#include "support/error_sink.hpp"

#include <cstdarg>
#include <cstdlib>
#include <cstring>

#include "support/spinlock.hpp"

namespace pint {

namespace {
// Guarded by sink_mu: the stream pointer and the context buffer.  A spinlock
// is fine here - every path through the sink is a failure/diagnostic path.
Spinlock sink_mu;
std::FILE* sink_stream = nullptr;  // nullptr = stderr
char sink_ctx[128] = {0};

std::FILE* stream_locked() { return sink_stream ? sink_stream : stderr; }

void vheaderf_locked(const char* fmt, va_list ap) {
  std::FILE* f = stream_locked();
  if (sink_ctx[0] != '\0') {
    std::fprintf(f, "[pint %s] ", sink_ctx);
  } else {
    std::fprintf(f, "[pint] ");
  }
  std::vfprintf(f, fmt, ap);
  std::fflush(f);
}
}  // namespace

std::FILE* set_error_stream(std::FILE* f) {
  LockGuard<Spinlock> g(sink_mu);
  std::FILE* old = sink_stream;
  sink_stream = f;
  return old;
}

std::FILE* error_stream() {
  LockGuard<Spinlock> g(sink_mu);
  return stream_locked();
}

void set_run_context(const char* fmt, ...) {
  char buf[sizeof(sink_ctx)] = {0};
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  LockGuard<Spinlock> g(sink_mu);
  std::memcpy(sink_ctx, buf, sizeof(sink_ctx));
}

void clear_run_context() {
  LockGuard<Spinlock> g(sink_mu);
  sink_ctx[0] = '\0';
}

void run_context(char* buf, std::size_t len) {
  if (len == 0) return;
  LockGuard<Spinlock> g(sink_mu);
  std::snprintf(buf, len, "%s", sink_ctx);
}

void error_headerf(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  LockGuard<Spinlock> g(sink_mu);
  vheaderf_locked(fmt, ap);
  va_end(ap);
}

[[noreturn]] void fatal_errorf(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  {
    LockGuard<Spinlock> g(sink_mu);
    vheaderf_locked(fmt, ap);
  }
  va_end(ap);
  std::abort();
}

[[noreturn]] void assert_fail(const char* expr, const char* file, int line,
                              const char* msg) {
  fatal_errorf("assertion failed: %s\n  at %s:%d\n  %s\n", expr, file, line,
               msg ? msg : "");
}

}  // namespace pint
