#include "support/watchdog.hpp"

#include <algorithm>
#include <chrono>

#include "support/timer.hpp"

namespace pint {

void Watchdog::arm() {
  if (armed_ || entries_.empty()) return;
  {
    std::lock_guard<std::mutex> g(mu_);
    stop_ = false;
  }
  tripped_.store(false, std::memory_order_release);
  tripped_name_.store(nullptr, std::memory_order_release);
  const std::uint64_t t0 = now_ns();
  for (Entry& e : entries_) {
    e.last_beats = e.hb->beats();
    e.changed_at_ns = t0;
  }
  thread_ = std::thread([this] { monitor(); });
  armed_ = true;
}

void Watchdog::disarm() {
  if (!armed_) return;
  {
    std::lock_guard<std::mutex> g(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
  armed_ = false;
}

void Watchdog::monitor() {
  const std::uint32_t poll_ms =
      opt_.poll_ms != 0
          ? opt_.poll_ms
          : std::clamp<std::uint32_t>(opt_.deadline_ms / 4, 1, 100);
  const std::uint64_t deadline_ns = std::uint64_t(opt_.deadline_ms) * 1000000;
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    if (cv_.wait_for(lk, std::chrono::milliseconds(poll_ms),
                     [this] { return stop_; })) {
      return;  // disarmed
    }
    const std::uint64_t now = now_ns();
    for (Entry& e : entries_) {
      const std::uint64_t beats = e.hb->beats();
      if (beats != e.last_beats || e.hb->idle()) {
        // Progress, or a legitimate wait: both count as alive.  An idle
        // heartbeat's deadline restarts from the moment it turns busy.
        e.last_beats = beats;
        e.changed_at_ns = now;
        continue;
      }
      if (now - e.changed_at_ns < deadline_ns) continue;
      // Busy and silent past the deadline: trip once and stop monitoring.
      tripped_name_.store(e.name, std::memory_order_release);
      tripped_.store(true, std::memory_order_release);
      lk.unlock();
      if (snapshot_) snapshot_(e.name);
      if (on_stall_) on_stall_(e.name);
      return;
    }
  }
}

}  // namespace pint
