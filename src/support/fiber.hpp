#pragma once

// Stackful fibers (user-level execution contexts).
//
// The work-stealing runtime gives every spawned task its own fiber so that a
// suspended parent frame (its continuation) can migrate to a thief worker —
// the library-level equivalent of the cactus stack in Cilk.  Stacks are
// mmap'd with a PROT_NONE guard page below the usable region so overflow
// faults instead of corrupting a neighbour.
//
// The context switch is a hand-rolled x86-64 SysV switch (callee-saved GPRs
// + rsp), in the style of boost::context's fcontext.  It deliberately does
// not save the x87/MXCSR control words: no code in this project alters them.
//
// IMPORTANT: code that may be suspended and resumed on a *different* OS
// thread must never cache thread_local addresses across a suspension point.
// All TLS access in this project is confined to noinline functions in .cpp
// files (see runtime/scheduler.cpp) for exactly this reason.

#include <cstddef>
#include <cstdint>

#include "support/sanitizer.hpp"

namespace pint {

/// Saved execution context: the stack pointer plus (in sanitizer lanes) the
/// metadata TSan/ASan need to follow the stack switch (see
/// support/sanitizer.hpp).
struct Context {
  void* sp = nullptr;
  san::ContextMeta san;
};

/// Switches from the current context (saved into `save`) to `load`.
/// Returns when something later switches back into `save`.
void ctx_switch(Context& save, Context& load);

/// Final switch out of a context that will never be resumed (a task fiber
/// whose entry function is done).  Identical to ctx_switch except that the
/// sanitizer annotations treat the current stack as dying, so ASan releases
/// its fake frames instead of keeping them for a resume that never comes.
void ctx_switch_final(Context& save, Context& load);

class Fiber {
 public:
  using Entry = void (*)(void* arg);

  /// Allocates a fiber with `stack_bytes` of usable stack (rounded up to the
  /// page size) and prepares it to run entry(arg) on first switch-in.
  static Fiber* create(std::size_t stack_bytes, Entry entry, void* arg);

  /// Re-arms a finished fiber to run entry(arg) again (pool reuse).
  void reset(Entry entry, void* arg);

  /// Unmaps the stack and frees the descriptor.
  void destroy();

  Context& context() { return ctx_; }

  /// Usable stack range [stack_lo, stack_hi): the byte range a race detector
  /// must clear from its access history when this stack is recycled.
  std::uintptr_t stack_lo() const { return reinterpret_cast<std::uintptr_t>(stack_base_); }
  std::uintptr_t stack_hi() const { return stack_lo() + stack_size_; }

  /// Opaque per-fiber slot for the scheduler (points at its TaskFrame).
  void* user = nullptr;

 private:
  friend void fiber_entry_shim(void* p);
  Fiber() = default;
  Context ctx_;
  Entry entry_ = nullptr;  // user entry, invoked via the internal shim
  void* arg_ = nullptr;
  void* stack_base_ = nullptr;  // usable base (above the guard page)
  std::size_t stack_size_ = 0;  // usable bytes
  void* map_base_ = nullptr;    // mmap base (guard page included)
  std::size_t map_size_ = 0;
};

}  // namespace pint
