#pragma once

// Pipeline telemetry: span tracing, counters, and a background sampler
// (DESIGN.md §8 "Observability").
//
// Recording model
//   * Each recording thread owns a lock-free ring buffer of fixed-size
//     events; recording a span endpoint or counter sample is a bounds check
//     plus two stores into thread-local memory (no locks, no allocation on
//     the hot path once the buffer exists).  When the ring wraps, the oldest
//     events are overwritten - per-name accumulator totals survive the wrap,
//     so aggregate span times stay exact even when the raw stream does not.
//   * Tracks: each thread names its track with set_thread_role() ("core0",
//     "writer", "lreader", ...).  A thread may change roles mid-run (the
//     phased one-core PINT mode runs core, writer, and both reader phases on
//     the calling thread); the exported trace splits such a thread into one
//     track per role, which is what makes the Fig. 2 breakdown visible as
//     consecutive track segments.
//   * A `Sampler` runs a caller-supplied probe on its own thread at a fixed
//     cadence, turning monitoring-safe atomics (queue depth, cursor lag,
//     pool occupancy, heartbeat state) into a time series of gauge samples.
//
// Name lifetime: span and count() names must be string literals (the event
// stores the pointer).  gauge() and set_thread_role() copy the string, so
// dynamically built names ("shard3", per-lane lag gauges) are safe there.
//
// Control: recording is off by default; set_enabled(true) arms every site.
// enabled() is a single relaxed atomic load, so a disarmed site costs a
// load+branch.  Compiling with -DPINT_TELEMETRY=OFF (PINT_TELEMETRY_ENABLED
// == 0) replaces the whole API with inline no-ops: zero stores, zero
// branches, zero bytes of buffer.
//
// Export (quiescence only - no thread may be recording):
//   * write_chrome_trace(): Chrome trace-event JSON ("Trace Event Format"),
//     loadable in chrome://tracing and Perfetto.  One track per role.
//   * write_metrics_json(): flat aggregate JSON (span totals, counter
//     totals, gauge series summaries) merged with caller-supplied key/value
//     pairs (the harness passes the Stats snapshot).

#ifndef PINT_TELEMETRY_ENABLED
#define PINT_TELEMETRY_ENABLED 1
#endif

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace pint::telem {

enum class EventKind : std::uint8_t {
  kBegin,   // span opens on this thread
  kEnd,     // span closes (value = duration ns, for exact export)
  kCount,   // monotonically accumulated count (value = running per-thread total)
  kGauge,   // sampled instantaneous value
  kRole,    // thread renamed its track
};

/// Introspection view of one retained event (tests and exporters).
struct EventRec {
  std::uint64_t ts_ns = 0;
  std::string track;  // role active when the event was recorded
  std::string name;
  std::uint64_t value = 0;
  EventKind kind = EventKind::kBegin;
};

/// One aggregated span or counter, exact across ring wrap-around.
struct Total {
  std::string name;
  std::uint64_t count = 0;     // completed spans / count() calls
  std::uint64_t total = 0;     // spans: summed ns; counts: summed deltas
};

#if PINT_TELEMETRY_ENABLED

namespace detail {
extern std::atomic<bool> g_on;
void span_begin(const char* name, std::uint64_t t0_ns);
void span_end(const char* name, std::uint64_t t0_ns);
std::uint64_t ts_now();
}  // namespace detail

/// Single relaxed load: the cost of every disarmed recording site.
inline bool enabled() {
  return detail::g_on.load(std::memory_order_relaxed);
}

/// Arms/disarms recording.  Call at quiescence only (no concurrent
/// recorders); typically: reset(); set_enabled(true); <run>; set_enabled
/// (false); <export>.
void set_enabled(bool on);

/// Drops all retained events and totals and recycles buffers of exited
/// threads.  Quiescence only.
void reset();

/// Ring size (events per thread) for buffers created after this call; the
/// next reset() re-applies it to live threads' buffers too.  Clamped to a
/// sane range; also settable via $PINT_TELEMETRY_EVENTS.
void set_ring_capacity(std::size_t events);

/// Names the calling thread's track.  Copies `role`; safe for snprintf'd
/// names.  No-op while disabled.
void set_thread_role(const char* role);

/// Accumulating counter: bumps the per-thread total for `name` (a string
/// literal) and records the running total as a kCount event.
void count(const char* name, std::uint64_t delta = 1);

/// Instantaneous sample (kGauge event).  Copies `name`.
void gauge(const char* name, std::uint64_t value);

/// RAII span: records kBegin at construction and kEnd (with duration) at
/// destruction, and adds the duration to the per-thread span total.  `name`
/// must be a string literal.  Costs nothing beyond the enabled() check when
/// disarmed.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name)
      : name_(enabled() ? name : nullptr), t0_(0) {
    if (name_ != nullptr) {
      t0_ = detail::ts_now();
      detail::span_begin(name_, t0_);
    }
  }
  ~ScopedSpan() {
    if (name_ != nullptr) detail::span_end(name_, t0_);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;
  std::uint64_t t0_;
};

/// Background gauge sampler: runs `probe` on its own thread (track `role`)
/// every `period_us` until stop(), plus one final sample on the way out so
/// the series covers run end.  start() is a no-op while telemetry is
/// disabled, so detectors wire it unconditionally.
class Sampler {
 public:
  struct Options {
    std::uint32_t period_us = 200;
    const char* role = "sampler";
  };
  /// Passed to the probe; forwards to gauge().  Exists so probes do not
  /// depend on free functions (and so a future exporter can intercept).
  class Sink {
   public:
    void gauge(const char* name, std::uint64_t value) {
      ::pint::telem::gauge(name, value);
    }
  };
  using Probe = std::function<void(Sink&)>;

  Sampler() = default;
  ~Sampler() { stop(); }
  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  void start(Probe probe) { start(std::move(probe), Options()); }
  void start(Probe probe, const Options& opt);
  void stop();

 private:
  std::thread thread_;
  // stop() wakes the sleeper promptly via a flag + cv owned by the cpp.
  struct Waiter;
  Waiter* waiter_ = nullptr;
};

/// Writes Chrome trace-event JSON ("traceEvents" array, ts in microseconds,
/// thread_name metadata per track).  Returns false on I/O failure.
bool write_chrome_trace(const std::string& path);

/// Writes flat metrics JSON: {"spans": {...}, "counters": {...},
/// "series": {...}, "stats": {<extra>}, "telemetry": {...}}.
bool write_metrics_json(
    const std::string& path,
    const std::vector<std::pair<std::string, std::uint64_t>>& extra = {});

/// All retained events, oldest-first per thread, with resolved track names.
std::vector<EventRec> snapshot_events();
/// Aggregated per-name span totals (merged across threads; wrap-exact).
std::vector<Total> span_totals();
/// Aggregated per-name count() totals (merged across threads; wrap-exact).
std::vector<Total> counter_totals();
/// Events lost to ring wrap-around since the last reset().
std::uint64_t dropped_events();

#else  // !PINT_TELEMETRY_ENABLED ------------------------------------------
// The whole API compiles to nothing: no buffers, no atomics, no branches.

inline bool enabled() { return false; }
inline void set_enabled(bool) {}
inline void reset() {}
inline void set_ring_capacity(std::size_t) {}
inline void set_thread_role(const char*) {}
inline void count(const char*, std::uint64_t = 1) {}
inline void gauge(const char*, std::uint64_t) {}

class ScopedSpan {
 public:
  explicit ScopedSpan(const char*) {}
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
};

class Sampler {
 public:
  struct Options {
    std::uint32_t period_us = 200;
    const char* role = "sampler";
  };
  class Sink {
   public:
    void gauge(const char*, std::uint64_t) {}
  };
  using Probe = std::function<void(Sink&)>;
  void start(Probe) {}
  void start(Probe, const Options&) {}
  void stop() {}
};

inline bool write_chrome_trace(const std::string&) { return false; }
inline bool write_metrics_json(
    const std::string&,
    const std::vector<std::pair<std::string, std::uint64_t>>& = {}) {
  return false;
}
inline std::vector<EventRec> snapshot_events() { return {}; }
inline std::vector<Total> span_totals() { return {}; }
inline std::vector<Total> counter_totals() { return {}; }
inline std::uint64_t dropped_events() { return 0; }

#endif  // PINT_TELEMETRY_ENABLED

}  // namespace pint::telem

// Statement-position helpers for literal-named spans/counts.  Expand to
// nothing (not even the enabled() load) under -DPINT_TELEMETRY=OFF.
#if PINT_TELEMETRY_ENABLED
#define PINT_TELEM_CAT2(a, b) a##b
#define PINT_TELEM_CAT(a, b) PINT_TELEM_CAT2(a, b)
#define PINT_TSPAN(name) \
  ::pint::telem::ScopedSpan PINT_TELEM_CAT(pint_tspan_, __LINE__)(name)
#define PINT_TCOUNT(name) ::pint::telem::count(name)
#else
#define PINT_TSPAN(name) ((void)0)
#define PINT_TCOUNT(name) ((void)0)
#endif
