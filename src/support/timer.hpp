#pragma once

// Wall-clock timing helpers for the benchmark harness and component
// work-breakdown accounting (paper Fig. 2).

#include <ctime>

#include <chrono>
#include <cstdint>

namespace pint {

inline std::uint64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// CPU time consumed by the calling thread. Used for component busy-time
/// accounting: on an oversubscribed machine wall time would charge a worker
/// for intervals it spent preempted.
inline std::uint64_t thread_cpu_ns() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return std::uint64_t(ts.tv_sec) * 1000000000ull + std::uint64_t(ts.tv_nsec);
}

class Timer {
 public:
  Timer() : start_(now_ns()) {}
  void reset() { start_ = now_ns(); }
  std::uint64_t elapsed_ns() const { return now_ns() - start_; }
  double elapsed_s() const { return double(elapsed_ns()) * 1e-9; }

 private:
  std::uint64_t start_;
};

/// Accumulates per-thread CPU time across many disjoint measured sections;
/// used by treap workers to attribute their processing time (Fig. 2 work
/// breakdown). Sections must start and stop on the same thread.
class StopwatchAccum {
 public:
  void start() { t0_ = thread_cpu_ns(); }
  void stop() { total_ += thread_cpu_ns() - t0_; }
  std::uint64_t total_ns() const { return total_; }
  double total_s() const { return double(total_) * 1e-9; }
  void clear() { total_ = 0; }

 private:
  std::uint64_t t0_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace pint
