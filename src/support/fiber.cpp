#include "support/fiber.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include <cstring>
#include <new>

#include "support/assert.hpp"

#if !defined(__x86_64__)
#error "fiber.cpp implements the context switch for x86-64 SysV only"
#endif

// pint_ctx_switch(void** save_sp, void* load_sp)
//
// Saves callee-saved GPRs + rsp of the caller into *save_sp's stack, then
// installs load_sp and restores the registers the target context saved when
// it last suspended.  A brand-new fiber's stack is crafted (below) so the
// final `ret` lands in pint_fiber_thunk with r12 = arg and rbx = entry.
__asm__(
    ".text\n"
    ".globl pint_ctx_switch\n"
    ".type pint_ctx_switch,@function\n"
    ".align 16\n"
    "pint_ctx_switch:\n"
    "  pushq %rbp\n"
    "  pushq %rbx\n"
    "  pushq %r12\n"
    "  pushq %r13\n"
    "  pushq %r14\n"
    "  pushq %r15\n"
    "  movq %rsp, (%rdi)\n"
    "  movq %rsi, %rsp\n"
    "  popq %r15\n"
    "  popq %r14\n"
    "  popq %r13\n"
    "  popq %r12\n"
    "  popq %rbx\n"
    "  popq %rbp\n"
    "  ret\n"
    ".size pint_ctx_switch,.-pint_ctx_switch\n"
    "\n"
    ".globl pint_fiber_thunk\n"
    ".type pint_fiber_thunk,@function\n"
    ".align 16\n"
    "pint_fiber_thunk:\n"
    "  movq %r12, %rdi\n"   // arg
    "  pushq $0\n"          // align rsp to 16 before the call
    "  callq *%rbx\n"       // entry(arg) -- must never return
    "  ud2\n"
    ".size pint_fiber_thunk,.-pint_fiber_thunk\n");

extern "C" void pint_ctx_switch(void** save_sp, void* load_sp);
extern "C" void pint_fiber_thunk();

namespace pint {

// The sanitizer annotations must bracket the raw switch: TSan needs to know
// the destination stack *before* execution moves there, and ASan's
// finish-call must be the first thing that runs once this context is
// resumed (which is exactly "after pint_ctx_switch returns").  A fresh
// fiber's first resume never returns through here - it lands in the entry
// trampoline, which calls san::on_fiber_entry() instead.
void ctx_switch(Context& save, Context& load) {
#if defined(PINT_ASAN)
  void* fake = nullptr;
  __sanitizer_start_switch_fiber(&fake, load.san.stack_bottom,
                                 load.san.stack_size);
#endif
#if defined(PINT_TSAN)
  __tsan_switch_to_fiber(load.san.tsan_fiber, 0);
#endif
  pint_ctx_switch(&save.sp, load.sp);
#if defined(PINT_ASAN)
  __sanitizer_finish_switch_fiber(fake, nullptr, nullptr);
#endif
}

void ctx_switch_final(Context& save, Context& load) {
#if defined(PINT_ASAN)
  // nullptr fake-stack-save: the current stack is done for good (until the
  // fiber is reset and entered fresh), so ASan frees its fake frames now.
  __sanitizer_start_switch_fiber(nullptr, load.san.stack_bottom,
                                 load.san.stack_size);
#endif
#if defined(PINT_TSAN)
  __tsan_switch_to_fiber(load.san.tsan_fiber, 0);
#endif
  pint_ctx_switch(&save.sp, load.sp);
  PINT_UNREACHABLE();  // a final switch is never resumed
}

namespace {

std::size_t page_size() {
  static const std::size_t p = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  return p;
}

std::size_t round_up(std::size_t n, std::size_t align) {
  return (n + align - 1) / align * align;
}

// Builds the initial stack image so that switching into the context runs
// pint_fiber_thunk with r12 = arg and rbx = entry.  Layout mirrors the pop
// sequence in pint_ctx_switch.
void* make_initial_sp(void* stack_base, std::size_t stack_size,
                      Fiber::Entry entry, void* arg) {
  auto top = reinterpret_cast<std::uintptr_t>(stack_base) + stack_size;
  top &= ~std::uintptr_t(15);  // 16-byte aligned stack top
  auto* slots = reinterpret_cast<void**>(top);
  // slots[-1] : fake return address (0) above the thunk frame
  // slots[-2] : ret target = pint_fiber_thunk
  // slots[-3..-8] : rbp, rbx, r12, r13, r14, r15
  slots[-1] = nullptr;
  slots[-2] = reinterpret_cast<void*>(&pint_fiber_thunk);
  slots[-3] = nullptr;                          // rbp
  slots[-4] = reinterpret_cast<void*>(entry);   // rbx
  slots[-5] = arg;                              // r12
  slots[-6] = nullptr;                          // r13
  slots[-7] = nullptr;                          // r14
  slots[-8] = nullptr;                          // r15
  return static_cast<void*>(slots - 8);
}

}  // namespace

// Every fiber starts here (the initial stack image points the thunk at this
// shim with the Fiber* as argument): the sanitizer entry annotation must be
// the first thing that runs on a fresh stack, before any user frame exists.
void fiber_entry_shim(void* p) {
  san::on_fiber_entry();
  auto* f = static_cast<Fiber*>(p);
  f->entry_(f->arg_);
}

Fiber* Fiber::create(std::size_t stack_bytes, Entry entry, void* arg) {
  const std::size_t pg = page_size();
  const std::size_t usable = round_up(stack_bytes < pg ? pg : stack_bytes, pg);
  const std::size_t total = usable + pg;  // + guard page

  void* map = ::mmap(nullptr, total, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS | MAP_STACK, -1, 0);
  PINT_CHECK_MSG(map != MAP_FAILED, "fiber stack mmap failed");
  PINT_CHECK(::mprotect(map, pg, PROT_NONE) == 0);

  auto* f = new Fiber();
  f->map_base_ = map;
  f->map_size_ = total;
  f->stack_base_ = static_cast<char*>(map) + pg;
  f->stack_size_ = usable;
  san::create_fiber_meta(f->ctx_.san, f->stack_base_, f->stack_size_);
  f->reset(entry, arg);
  return f;
}

void Fiber::reset(Entry entry, void* arg) {
  entry_ = entry;
  arg_ = arg;
  san::clear_stack_poison(stack_base_, stack_size_);
  ctx_.sp = make_initial_sp(stack_base_, stack_size_, &fiber_entry_shim, this);
}

void Fiber::destroy() {
  san::destroy_fiber_meta(ctx_.san);
  san::clear_stack_poison(stack_base_, stack_size_);
  ::munmap(map_base_, map_size_);
  delete this;
}

}  // namespace pint
