#include "oracle/oracle_detector.hpp"

#include <cstdlib>

#include "detect/instrument.hpp"
#include "support/assert.hpp"
#include "support/timer.hpp"

namespace pint::oracle {

OracleDetector::OracleDetector(const Options& opt) : opt_(opt) {
  rep_.set_verbose(opt_.verbose_races);
}

OracleDetector::~OracleDetector() {
  for (StrandInfo* s : strands_) delete s;
}

OracleDetector::StrandInfo* OracleDetector::alloc_strand(
    const reach::Engine::Label& l, detect::lockset_t lsid) {
  auto* s = new StrandInfo{l, ++next_sid_, lsid};
  strands_.push_back(s);
  return s;
}

void OracleDetector::record(StrandInfo* who, detect::addr_t lo,
                            detect::addr_t hi, bool write) {
  const auto g = opt_.granule;
  for (detect::addr_t a = lo / g; a <= hi / g; ++a) {
    auto& hist = bytes_[a];
    bool already = false;
    for (const Access& prev : hist) {
      if (prev.who == who) {
        if (prev.write == write) already = true;
        continue;  // a strand cannot race with itself
      }
      if (!prev.write && !write) continue;  // read-read never races
      if (detect::locksets_share(prev.who->lsid, who->lsid)) {
        continue;  // both segments held a common mutex: not a race
      }
      if (reach_.parallel(prev.who->label, who->label)) {
        auto a_sid = prev.who->sid, b_sid = who->sid;
        if (a_sid > b_sid) std::swap(a_sid, b_sid);
        if (pairs_.insert({a_sid, b_sid}).second) {
          // Mirror the pair into the shared reporter so DetectorRunner
          // callers see the oracle's verdict the same way as any detector's.
          rep_.report(prev.who->sid, prev.write, who->sid, write, a * g,
                      a * g + g - 1);
        }
      }
    }
    if (!already) hist.push_back({who, write});
  }
}

void OracleDetector::clear_range(detect::addr_t lo, detect::addr_t hi) {
  const auto g = opt_.granule;
  auto it = bytes_.lower_bound(lo / g);
  const auto end = bytes_.upper_bound(hi / g);
  while (it != end) it = bytes_.erase(it);
}

void OracleDetector::on_access(rt::Worker&, rt::TaskFrame& f, detect::addr_t lo,
                               detect::addr_t hi, bool is_write) {
  record(static_cast<StrandInfo*>(f.det_strand), lo, hi, is_write);
}

void OracleDetector::on_heap_free(rt::Worker&, rt::TaskFrame&, void* base,
                                  detect::addr_t lo, detect::addr_t hi) {
  clear_range(lo, hi);
  std::free(base);
}

void OracleDetector::on_root_start(rt::Worker&, rt::TaskFrame& f) {
  f.det_strand = alloc_strand(reach_.root_label());
}

void OracleDetector::on_spawn(rt::Worker&, rt::TaskFrame& parent,
                              rt::SyncBlock& blk, rt::TaskFrame& child) {
  auto* u = static_cast<StrandInfo*>(parent.det_strand);
  auto* j = static_cast<StrandInfo*>(blk.det_sync);
  if (j == nullptr) {
    j = alloc_strand({});
    blk.det_sync = j;
  }
  const auto labels = reach_.on_spawn(u->label, &j->label);
  // Same lockset rule as every detector: the continuation inherits the
  // parent's held locks, the child starts empty (see StintDetector).
  child.det_strand = alloc_strand(labels.child);
  parent.det_cont = alloc_strand(labels.cont, u->lsid);
}

void OracleDetector::on_lock_event(rt::TaskFrame& f, detect::addr_t lock,
                                   bool acquire) {
  auto* u = static_cast<StrandInfo*>(f.det_strand);
  PINT_ASSERT(u != nullptr);
  auto& tbl = detect::LocksetTable::instance();
  const detect::lockset_t nid =
      acquire ? tbl.acquire(u->lsid, lock) : tbl.release(u->lsid, lock);
  if (nid == u->lsid) return;
  // New segment: same label (sibling segments are ordered by neither order,
  // so they can never be judged parallel), fresh sid so the per-byte dedup
  // re-records accesses under the new lockset.
  f.det_strand = alloc_strand(u->label, nid);
}

void OracleDetector::on_lock_acquire(rt::Worker&, rt::TaskFrame& f,
                                     detect::addr_t lock) {
  if (!opt_.tuning.lock_edges) return;
  on_lock_event(f, lock, true);
}

void OracleDetector::on_lock_release(rt::Worker&, rt::TaskFrame& f,
                                     detect::addr_t lock) {
  if (!opt_.tuning.lock_edges) return;
  on_lock_event(f, lock, false);
}

void OracleDetector::on_spawn_return(rt::Worker&, rt::TaskFrame& child,
                                     bool stolen) {
  PINT_CHECK_MSG(!stolen, "oracle must run on one worker");
  clear_range(child.fiber->stack_lo(), child.fiber->stack_hi() - 1);
}

void OracleDetector::on_continuation(rt::Worker&, rt::TaskFrame& parent, bool) {
  parent.det_strand = parent.det_cont;
  parent.det_cont = nullptr;
}

void OracleDetector::on_after_sync(rt::Worker&, rt::TaskFrame& f,
                                   rt::SyncBlock& blk, bool) {
  auto* j = static_cast<StrandInfo*>(blk.det_sync);
  if (j == nullptr) return;
  // Join maintenance (no-op for both current backends; seam contract).
  reach_.on_join(static_cast<StrandInfo*>(f.det_strand)->label, j->label);
  f.det_strand = j;
  blk.det_sync = nullptr;
}

detect::RunResult OracleDetector::run(std::function<void()> fn) {
  PINT_CHECK_MSG(!used_, "OracleDetector instances are single-use");
  used_ = true;
  opt_.tuning.apply_globals();
  rt::Scheduler::Options so;
  so.workers = 1;
  so.hooks = this;
  so.stack_bytes = opt_.stack_bytes;
  rt::Scheduler sched(so);
  detect::set_active_detector(this);
  Timer total;
  sched.run([&] { fn(); });
  stats_.total_ns.store(total.elapsed_ns());
  stats_.core_ns.store(total.elapsed_ns());
  stats_.strands.store(next_sid_);
  detect::set_active_detector(nullptr);
  return {};
}

}  // namespace pint::oracle
