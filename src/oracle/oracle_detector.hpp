#pragma once

// Exact-oracle detector, used only by tests.
//
// Runs the program on ONE worker (the serial elision order, which is always
// DAG-conforming) and keeps, per byte granule, EVERY accessor ever seen (not
// the 1/2/3-accessor summaries real detectors keep).  A race is recorded for
// every conflicting parallel pair, so the oracle's race set is the ground
// truth that the real detectors' iff-guarantee (Theorem 5) is validated
// against: a detector must report something iff the oracle's set is
// non-empty, and every pair a detector reports must be in the oracle's set.
//
// Intended for small tests only: memory/time is proportional to accessors
// kept per location.

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "detect/detector.hpp"
#include "detect/report.hpp"
#include "detect/run_result.hpp"
#include "detect/stats.hpp"
#include "detect/strand.hpp"
#include "reach/engine.hpp"
#include "runtime/scheduler.hpp"

namespace pint::oracle {

class OracleDetector final : public detect::Detector,
                             public detect::DetectorRunner,
                             public rt::SchedulerHooks {
 public:
  /// Of the shared knobs only `stack_bytes` matters to the oracle (it keeps
  /// raw accesses, so there is nothing to coalesce and no history store to
  /// swap); they exist so the oracle runs through the same seam as the real
  /// detectors.
  struct Options : detect::CommonOptions {
    /// Granule for exact tracking; tests use byte-accurate (1).
    std::size_t granule = 1;
  };

  OracleDetector() : OracleDetector(Options{}) {}
  explicit OracleDetector(const Options& opt);
  ~OracleDetector() override;

  /// Serial exhaustive detection; cannot degrade, always returns kOk.
  detect::RunResult run(std::function<void()> fn) override;

  detect::RaceReporter& reporter() override { return rep_; }
  const detect::Stats& stats() const override { return stats_; }

  /// All conflicting parallel pairs, as symmetric (min sid, max sid) pairs.
  const std::set<std::pair<std::uint64_t, std::uint64_t>>& race_pairs() const {
    return pairs_;
  }
  bool any_race() const { return !pairs_.empty(); }
  /// Is (a, b) a true racing pair?
  bool is_racing_pair(std::uint64_t a, std::uint64_t b) const {
    if (a > b) std::swap(a, b);
    return pairs_.count({a, b}) != 0;
  }

  // --- detect::Detector ---
  void on_access(rt::Worker& w, rt::TaskFrame& f, detect::addr_t lo,
                 detect::addr_t hi, bool is_write) override;
  void on_heap_free(rt::Worker& w, rt::TaskFrame& f, void* base,
                    detect::addr_t lo, detect::addr_t hi) override;
  void on_lock_acquire(rt::Worker& w, rt::TaskFrame& f,
                       detect::addr_t lock) override;
  void on_lock_release(rt::Worker& w, rt::TaskFrame& f,
                       detect::addr_t lock) override;
  const char* name() const override { return "oracle"; }

  // --- rt::SchedulerHooks ---
  void on_root_start(rt::Worker& w, rt::TaskFrame& f) override;
  void on_spawn(rt::Worker& w, rt::TaskFrame& parent, rt::SyncBlock& blk,
                rt::TaskFrame& child) override;
  void on_spawn_return(rt::Worker& w, rt::TaskFrame& child, bool stolen) override;
  void on_continuation(rt::Worker& w, rt::TaskFrame& parent, bool stolen) override;
  void on_after_sync(rt::Worker& w, rt::TaskFrame& f, rt::SyncBlock& blk,
                     bool trivial) override;

 private:
  struct StrandInfo {
    reach::Engine::Label label;
    std::uint64_t sid;
    detect::lockset_t lsid = 0;  // lockset held during this segment
  };
  struct Access {
    StrandInfo* who;
    bool write;
  };

  StrandInfo* alloc_strand(const reach::Engine::Label& l,
                           detect::lockset_t lsid = 0);
  void on_lock_event(rt::TaskFrame& f, detect::addr_t lock, bool acquire);
  void record(StrandInfo* who, detect::addr_t lo, detect::addr_t hi, bool write);
  void clear_range(detect::addr_t lo, detect::addr_t hi);

  Options opt_;
  reach::Engine reach_;
  detect::RaceReporter rep_;
  detect::Stats stats_;
  std::vector<StrandInfo*> strands_;
  std::uint64_t next_sid_ = 0;
  std::map<detect::addr_t, std::vector<Access>> bytes_;  // granule -> history
  std::set<std::pair<std::uint64_t, std::uint64_t>> pairs_;
  bool used_ = false;
};

}  // namespace pint::oracle
