#pragma once

// Non-overlapping interval treap (the STINT access-history structure).
//
// Stores disjoint, inclusive byte intervals [lo, hi], each owned by one
// accessor (a strand's reachability label + id), in a treap keyed by `lo`
// with random heap priorities.  The no-overlap invariant means interval
// endpoints are sorted consistently with the keys, which the query path
// exploits for pruning.
//
// Three mutation flavors match the three roles a treap plays in PINT:
//
//  * insert_writer  - "last writer" semantics: every overlapped segment is
//    reported to a callback (race check), then the new accessor replaces the
//    overlap exactly; partially-overlapped old intervals are truncated, e.g.
//    {[1,4]:u, [6,10]:v} + write [3,7]:w  =>  {[1,2]:u, [3,7]:w, [8,10]:v}.
//  * insert_reader  - "relevant reader" semantics: each overlapped segment
//    keeps either the previous or the new accessor, decided by a resolver
//    (series => new; parallel => left/right-most by English order); gaps
//    inside [lo, hi] always take the new accessor.
//  * erase_range    - clears [lo, hi] (stack-frame clearing at spawned
//    function return, and freed heap ranges; paper §III-F).
//
// The treap is strictly sequential - in PINT each instance is owned by one
// treap worker; in STINT everything runs on one thread (paper §III-C).

#include <cstdint>
#include <new>
#include <type_traits>
#include <vector>

#include "reach/engine.hpp"
#include "support/arena.hpp"
#include "support/assert.hpp"
#include "support/rng.hpp"

namespace pint::treap {

using addr_t = std::uint64_t;

/// Persistent identity of an interval's accessor. Kept in the treap after
/// the transient strand record is recycled (labels live in the OM arenas).
struct Accessor {
  reach::Engine::Label label;
  std::uint64_t sid = 0;  // strand id, for reporting and self-access checks
  const char* tag = nullptr;  // optional task name, surfaced in race reports
  std::uint32_t lsid = 0;     // interned lockset held during the accesses
};

class IntervalTreap {
 public:
  // The arena knob is snapshotted at construction (detectors build their
  // stores in the constructor, before run() re-applies globals) so every
  // chunk's release matches its allocation provenance.
  explicit IntervalTreap(std::uint64_t seed = 0x51A7EEDULL)
      : rng_(seed), use_arena_(support::arena_recycle()) {}
  ~IntervalTreap() {
    for (Node* c : chunks_) {
      if (use_arena_) {
        support::SlabSource::instance().give(c, sizeof(Node) * kChunk);
      } else {
        delete[] c;
      }
    }
  }
  IntervalTreap(const IntervalTreap&) = delete;
  IntervalTreap& operator=(const IntervalTreap&) = delete;

  /// Invokes cb(seg_lo, seg_hi, accessor) for every stored segment
  /// overlapping [lo, hi], in address order. Non-mutating.
  template <class F>
  void query(addr_t lo, addr_t hi, F&& cb) const {
    query_rec(root_, lo, hi, cb);
  }

  /// Last-writer insert: cb(seg_lo, seg_hi, prev_accessor) per overlap, then
  /// [lo, hi] is owned by `a`.
  template <class F>
  void insert_writer(addr_t lo, addr_t hi, const Accessor& a, F&& cb) {
    Node *left, *right;
    carve(lo, hi, &left, &right);
    for (const Piece& p : scratch_) cb(p.lo, p.hi, p.who);
    root_ = merge(merge(left, make_node(lo, hi, a)), right);
  }

  /// Reader insert: for each overlapped segment, `resolve(prev, a)` returns
  /// true if the NEW accessor wins the segment; gaps take the new accessor.
  /// Adjacent result segments with the same winner are coalesced.
  template <class R>
  void insert_reader(addr_t lo, addr_t hi, const Accessor& a, R&& resolve) {
    Node *left, *right;
    carve(lo, hi, &left, &right);
    root_ = merge(merge(left, reader_cover(lo, hi, a, resolve)), right);
  }

  /// Removes all coverage of [lo, hi], truncating boundary intervals.
  void erase_range(addr_t lo, addr_t hi) {
    Node *left, *right;
    carve(lo, hi, &left, &right);
    root_ = merge(left, right);
  }

  // --- Bulk sorted-run apply (DESIGN.md §10) -------------------------------
  //
  // Each *_run operation takes a run of k intervals - sorted by lo, pairwise
  // non-overlapping (adjacency allowed), all owned by one accessor, exactly
  // the shape of a finalized strand record list - and applies it in ONE
  // left-to-right carve of the run's span instead of k independent root
  // walks: O(k + m + log n) amortized, where m is the stored coverage inside
  // the span.  The per-overlapped-segment callback/resolver sequence is
  // identical to the per-interval loop: stored segments are disjoint and the
  // run intervals are disjoint and sorted, so ordering events by (interval,
  // segment.lo) - the per-interval loop - and by (segment.lo, interval) -
  // the sweep below - yields the same sequence.  Gap coverage between run
  // intervals is preserved with its original owner (possibly re-keyed nodes,
  // never changed contents).

  /// Run query: cb(seg_lo, seg_hi, accessor) for every stored segment part
  /// overlapping each interval, in the per-interval loop's order.
  template <class Iv, class F>
  void query_run(const Iv* iv, std::size_t k, F&& cb) const {
    if (k == 0) return;
    if (k == 1) {
      query(iv[0].lo, iv[0].hi, cb);
      return;
    }
    if (!run_is_dense(iv, k)) {
      // One frontier-pruned in-order walk instead of k root descents.  The
      // emission order is (segment, interval), equal to the per-interval
      // order by the same §10 argument the dense join below relies on.
      assert_run_sorted(iv, k);
      std::size_t j = 0;
      query_multi(root_, iv, k, &j, cb);
      return;
    }
    assert_run_sorted(iv, k);
    std::size_t j = 0;  // first interval that can still overlap a segment
    auto join = [&](addr_t lo, addr_t hi, const Accessor& who) {
      while (j < k && iv[j].hi < lo) ++j;
      for (std::size_t x = j; x < k && iv[x].lo <= hi; ++x) {
        cb(iv[x].lo > lo ? iv[x].lo : lo, iv[x].hi < hi ? iv[x].hi : hi, who);
      }
    };
    query_rec(root_, iv[0].lo, iv[k - 1].hi, join);
  }

  /// Run writer insert: per overlapped segment part cb(lo, hi, prev), then
  /// every interval of the run is owned by `a`.
  template <class Iv, class F>
  void insert_writer_run(const Iv* iv, std::size_t k, const Accessor& a,
                         F&& cb) {
    if (k == 0) return;
    if (k == 1) {
      insert_writer(iv[0].lo, iv[0].hi, a, cb);
      return;
    }
    if (!run_is_dense(iv, k)) {
      // Incremental frontier apply (DESIGN.md §13): each interval's carve
      // works on the shrinking right remainder instead of the whole tree.
      assert_run_sorted(iv, k);
      Node* done = nullptr;
      Node* rest = root_;
      root_ = nullptr;
      for (std::size_t j = 0; j < k; ++j) {
        Node *l, *r;
        carve_tree(&rest, iv[j].lo, iv[j].hi, &l, &r);
        for (const Piece& p : scratch_) cb(p.lo, p.hi, p.who);
        done = merge(done, merge(l, make_node(iv[j].lo, iv[j].hi, a)));
        rest = r;
      }
      root_ = merge(done, rest);
      return;
    }
    assert_run_sorted(iv, k);
    Node *left, *right;
    carve(iv[0].lo, iv[k - 1].hi, &left, &right);
    pieces_out_.clear();
    std::size_t si = 0;
    addr_t seg_lo = scratch_.empty() ? 0 : scratch_[0].lo;
    for (std::size_t j = 0; j < k; ++j) {
      const addr_t lo = iv[j].lo, hi = iv[j].hi;
      sweep_keep_before(lo, &si, &seg_lo);
      while (si < scratch_.size() && seg_lo <= hi) {
        const Piece& p = scratch_[si];
        cb(seg_lo, p.hi < hi ? p.hi : hi, p.who);
        if (p.hi > hi) {  // segment continues into the gap after iv[j]
          seg_lo = hi + 1;
          break;
        }
        ++si;
        if (si < scratch_.size()) seg_lo = scratch_[si].lo;
      }
      pieces_out_.push_back({lo, hi, a});
    }
    PINT_ASSERT(si == scratch_.size());  // span ends at iv[k-1].hi
    root_ = merge(merge(left, build_sorted()), right);
  }

  /// Run reader insert: same winner rule as insert_reader per interval;
  /// winner coalescing never crosses an interval boundary (so the final
  /// contents match k separate insert_reader calls exactly).
  template <class Iv, class R>
  void insert_reader_run(const Iv* iv, std::size_t k, const Accessor& a,
                         R&& resolve) {
    if (k == 0) return;
    if (k == 1) {
      insert_reader(iv[0].lo, iv[0].hi, a, resolve);
      return;
    }
    if (!run_is_dense(iv, k)) {
      // Incremental frontier apply; contents AND shape match k insert_reader
      // calls exactly (same carves, same RNG order, and a treap's shape is a
      // function of its key/priority set alone).
      assert_run_sorted(iv, k);
      Node* done = nullptr;
      Node* rest = root_;
      root_ = nullptr;
      for (std::size_t j = 0; j < k; ++j) {
        Node *l, *r;
        carve_tree(&rest, iv[j].lo, iv[j].hi, &l, &r);
        done = merge(
            done, merge(l, reader_cover(iv[j].lo, iv[j].hi, a, resolve)));
        rest = r;
      }
      root_ = merge(done, rest);
      return;
    }
    assert_run_sorted(iv, k);
    Node *left, *right;
    carve(iv[0].lo, iv[k - 1].hi, &left, &right);
    pieces_out_.clear();
    std::size_t si = 0;
    addr_t seg_lo = scratch_.empty() ? 0 : scratch_[0].lo;
    for (std::size_t j = 0; j < k; ++j) {
      const addr_t lo = iv[j].lo, hi = iv[j].hi;
      sweep_keep_before(lo, &si, &seg_lo);
      const std::size_t mark = pieces_out_.size();
      addr_t cursor = lo;
      bool covered_to_hi = false;
      while (si < scratch_.size() && seg_lo <= hi) {
        const Piece& p = scratch_[si];
        const addr_t phi = p.hi < hi ? p.hi : hi;
        if (seg_lo > cursor) push_piece_from(mark, cursor, seg_lo - 1, a);
        const Accessor& w = resolve(p.who, a) ? a : p.who;
        push_piece_from(mark, seg_lo, phi, w);
        if (phi == hi) covered_to_hi = true;  // avoids the hi+1 wrap below
        if (p.hi > hi) {
          seg_lo = hi + 1;
          break;
        }
        ++si;
        if (si < scratch_.size()) seg_lo = scratch_[si].lo;
        if (covered_to_hi) break;
        cursor = phi + 1;
      }
      if (!covered_to_hi && cursor <= hi) push_piece_from(mark, cursor, hi, a);
    }
    PINT_ASSERT(si == scratch_.size());
    root_ = merge(merge(left, build_sorted()), right);
  }

  /// Run erase: clears every interval of the run; gap coverage survives.
  /// Unlike the writer/reader runs there are no callbacks, so this skips the
  /// carve + Piece materialization entirely: one in-order zipper sweep over
  /// the span's nodes drops covered ones and REUSES each node with a
  /// surviving sub-segment in place (first survivor keeps the node, later
  /// survivors of the same node get fresh ones), rebuilding via the same
  /// right-spine stack as build_sorted().  O(k + m + log n) with no
  /// per-kept-node release/alloc churn.
  template <class Iv>
  void erase_run(const Iv* iv, std::size_t k) {
    if (k == 0) return;
    if (k == 1) {
      erase_range(iv[0].lo, iv[0].hi);
      return;
    }
    if (!run_is_dense(iv, k)) {
      // Incremental frontier erase, mirroring the sparse insert paths.
      assert_run_sorted(iv, k);
      Node* done = nullptr;
      Node* rest = root_;
      root_ = nullptr;
      for (std::size_t j = 0; j < k; ++j) {
        Node *l, *r;
        carve_tree(&rest, iv[j].lo, iv[j].hi, &l, &r);
        done = merge(done, l);
        rest = r;
      }
      root_ = merge(done, rest);
      return;
    }
    assert_run_sorted(iv, k);
    const addr_t span_lo = iv[0].lo;
    const addr_t span_hi = iv[k - 1].hi;
    Node *left, *b, *mid, *right;
    split(root_, span_lo, &left, &b);
    root_ = nullptr;
    split(b, span_hi == kMaxAddr ? kMaxAddr : span_hi + 1, &mid, &right);
    if (span_hi == kMaxAddr && right) {
      // span_hi+1 would wrap; nothing can start after kMaxAddr anyway.
      mid = merge(mid, right);
      right = nullptr;
    }
    spine_.clear();
    std::size_t j = 0;  // sweep frontier into the run
    // Predecessor straddle: truncate in place (key and priority unchanged,
    // so it merges back untouched); the part inside the span joins the
    // sweep as a headless segment whose gap survivors get fresh nodes.
    Node* pred = detach_max(&left);
    if (pred) {
      if (pred->hi >= span_lo) {
        const addr_t tail_hi = pred->hi;
        const Accessor tail_who = pred->who;
        pred->hi = span_lo - 1;  // pred->lo < span_lo by the split
        left = merge(left, pred);
        erase_sweep_segment(span_lo, tail_hi, tail_who, nullptr, iv, k, &j);
      } else {
        left = merge(left, pred);
      }
    }
    erase_sweep(mid, iv, k, &j);
    Node* kept = spine_.empty() ? nullptr : spine_.front();
    root_ = merge(merge(left, kept), right);
  }

  bool empty() const { return root_ == nullptr; }
  std::size_t size() const { return count_rec(root_); }

  /// Releases every stored interval back to the node free list (chunks are
  /// retained).  Used by the tiered history's compaction, which rebuilds the
  /// cold tier from a full traversal and then empties the hot frontier.
  void clear() {
    clear_rec(root_);
    root_ = nullptr;
  }

  /// In-order traversal of all stored intervals: cb(lo, hi, accessor).
  template <class F>
  void for_each(F&& cb) const {
    for_each_rec(root_, cb);
  }

  /// Verifies BST order on lo, the no-overlap invariant, and heap order.
  bool check_invariants() const {
    bool ok = true;
    addr_t prev_hi = 0;
    bool first = true;
    auto visit = [&](addr_t lo, addr_t hi, const Accessor&) {
      if (lo > hi) ok = false;
      if (!first && lo <= prev_hi) ok = false;
      first = false;
      prev_hi = hi;
    };
    for_each_rec(root_, visit);
    return ok && heap_ok(root_);
  }

 private:
  struct Node {
    addr_t lo = 0, hi = 0;
    Accessor who;
    std::uint32_t prio = 0;
    Node* l = nullptr;
    Node* r = nullptr;
  };
  struct Piece {
    addr_t lo, hi;
    Accessor who;
  };

  Node* make_node(addr_t lo, addr_t hi, const Accessor& a) {
    Node* n;
    if (free_) {
      n = free_;
      free_ = n->r;
    } else {
      if (used_ == kChunk) {
        chunks_.push_back(alloc_chunk());
        used_ = 0;
      }
      n = &chunks_.back()[used_++];
    }
    n->lo = lo;
    n->hi = hi;
    n->who = a;
    n->prio = static_cast<std::uint32_t>(rng_.next());
    n->l = n->r = nullptr;
    return n;
  }
  void release(Node* n) {
    n->r = free_;
    free_ = n;
  }

  /// Node chunks are recycled raw through the process-wide SlabSource when
  /// the arena knob was on at construction (DESIGN.md §13); nodes are
  /// placement-constructed into the recycled block, and the trivial
  /// destructor makes the wholesale give-back in ~IntervalTreap safe.
  Node* alloc_chunk() {
    static_assert(std::is_trivially_destructible_v<Node>);
    if (!use_arena_) return new Node[kChunk];
    void* raw = support::SlabSource::instance().take(sizeof(Node) * kChunk);
    Node* arr = static_cast<Node*>(raw);
    for (std::size_t i = 0; i < kChunk; ++i) ::new (arr + i) Node();
    return arr;
  }

  void push_piece(addr_t lo, addr_t hi, const Accessor& w) {
    push_piece_from(0, lo, hi, w);
  }

  /// push_piece whose coalescing never reaches below index `floor`: the run
  /// paths set floor to the current interval's first piece, so coalescing
  /// stays within one interval (bit-identical to per-interval inserts).
  void push_piece_from(std::size_t floor, addr_t lo, addr_t hi,
                       const Accessor& w) {
    if (pieces_out_.size() > floor && pieces_out_.back().who.sid == w.sid &&
        pieces_out_.back().hi + 1 == lo) {
      pieces_out_.back().hi = hi;  // coalesce same-winner neighbours
    } else {
      pieces_out_.push_back({lo, hi, w});
    }
  }

  /// Sparse-run guard for the bulk paths.  The run apply carves (or, for
  /// erase, sweeps) the WHOLE span [iv[0].lo, iv[k-1].hi], materializing
  /// every stored segment in between - O(span contents) per run.  A run
  /// whose intervals cover only a sliver of that span (strided access over
  /// a large array, e.g. fft's butterfly reads) turns this quadratic:
  /// every run rebuilds the bulk of the treap.  Those runs go through the
  /// per-interval path instead - k root walks, O(k log n), never
  /// catastrophic - which is bit-identical by the §10 equivalence.  The
  /// bar is covered > span/4: the coalesced-record shapes the bulk path
  /// exists for sit at 50-100% density, strided patterns orders below it.
  template <class Iv>
  static bool run_is_dense(const Iv* iv, std::size_t k) {
    const addr_t need = (iv[k - 1].hi - iv[0].lo) / 4;
    addr_t covered = 0;
    for (std::size_t j = 0; j < k; ++j) {
      covered += iv[j].hi - iv[j].lo + 1;
      if (covered > need) return true;  // early out: dense runs scan a few
    }
    return false;
  }

  template <class Iv>
  static void assert_run_sorted(const Iv* iv, std::size_t k) {
#ifndef NDEBUG
    for (std::size_t j = 0; j < k; ++j) {
      PINT_ASSERT(iv[j].lo <= iv[j].hi);
      if (j > 0) PINT_ASSERT(iv[j - 1].hi < iv[j].lo);
    }
#else
    (void)iv;
    (void)k;
#endif
  }

  /// Run-sweep helper: emits keep pieces (original owner, no coalescing -
  /// they were distinct nodes and must stay distinct) for stored coverage
  /// strictly before `lo`.  *si / *seg_lo are the sweep frontier: the
  /// current scratch_ segment and the first not-yet-consumed byte in it.
  void sweep_keep_before(addr_t lo, std::size_t* si, addr_t* seg_lo) {
    while (*si < scratch_.size() && scratch_[*si].hi < lo) {
      pieces_out_.push_back({*seg_lo, scratch_[*si].hi, scratch_[*si].who});
      ++*si;
      if (*si < scratch_.size()) *seg_lo = scratch_[*si].lo;
    }
    if (*si < scratch_.size() && *seg_lo < lo) {
      pieces_out_.push_back({*seg_lo, lo - 1, scratch_[*si].who});
      *seg_lo = lo;
    }
  }

  /// Appends a node (strictly increasing key) to the right-spine stack.
  /// The tie rule (pop only on strictly greater priority) matches merge()'s
  /// `a->prio >= b->prio`, so heap_ok's strict check holds - for any node
  /// priorities, including reused ones.
  void spine_push(Node* n) {
    n->l = n->r = nullptr;
    Node* last_popped = nullptr;
    while (!spine_.empty() && spine_.back()->prio < n->prio) {
      last_popped = spine_.back();
      spine_.pop_back();
    }
    n->l = last_popped;
    if (!spine_.empty()) spine_.back()->r = n;
    spine_.push_back(n);
  }

  /// Builds a treap from the sorted, disjoint pieces_out_ in O(m) with the
  /// right-spine stack.
  Node* build_sorted() {
    spine_.clear();
    for (const Piece& p : pieces_out_) spine_push(make_node(p.lo, p.hi, p.who));
    return spine_.empty() ? nullptr : spine_.front();
  }

  /// erase_run zipper: in-order walk of the span's nodes, sweeping each
  /// against the run (n->r is captured first - the segment handler may
  /// relink or release the node).
  template <class Iv>
  void erase_sweep(Node* n, const Iv* iv, std::size_t k, std::size_t* j) {
    if (!n) return;
    erase_sweep(n->l, iv, k, j);
    Node* r = n->r;
    erase_sweep_segment(n->lo, n->hi, n->who, n, iv, k, j);
    erase_sweep(r, iv, k, j);
  }

  /// Emits the parts of segment [slo, shi] not covered by the run onto the
  /// spine, reusing `reuse` (may be null) for the first surviving part and
  /// releasing it if nothing survives.  *j advances monotonically.
  template <class Iv>
  void erase_sweep_segment(addr_t slo, addr_t shi, const Accessor& who,
                           Node* reuse, const Iv* iv, std::size_t k,
                           std::size_t* j) {
    addr_t cur = slo;
    for (;;) {
      while (*j < k && iv[*j].hi < cur) ++*j;
      if (*j == k || iv[*j].lo > shi) {  // remainder survives whole
        emit_kept(cur, shi, who, &reuse);
        break;
      }
      if (iv[*j].lo > cur) emit_kept(cur, iv[*j].lo - 1, who, &reuse);
      const addr_t stop = shi < iv[*j].hi ? shi : iv[*j].hi;
      if (stop == shi) break;  // covered to the end (also avoids hi+1 wrap)
      cur = stop + 1;
    }
    if (reuse) release(reuse);
  }

  void emit_kept(addr_t lo, addr_t hi, const Accessor& who, Node** reuse) {
    Node* n = *reuse;
    if (n) {
      *reuse = nullptr;
      n->lo = lo;
      n->hi = hi;
    } else {
      n = make_node(lo, hi, who);
    }
    spine_push(n);
  }

  /// Splits by key: a = nodes with node.lo < k, b = the rest.  Iterative
  /// top-down descent (the treap ops are the history lanes' hot loop, and
  /// the recursive form pays a call frame per level).
  static void split(Node* t, addr_t k, Node** a, Node** b) {
    while (t) {
      if (t->lo < k) {
        *a = t;
        a = &t->r;
        t = t->r;
      } else {
        *b = t;
        b = &t->l;
        t = t->l;
      }
    }
    *a = nullptr;
    *b = nullptr;
  }

  /// Iterative merge; the priority tie rule (left wins on >=) matches the
  /// recursive original, so shapes are unchanged.
  static Node* merge(Node* a, Node* b) {
    if (!a) return b;
    if (!b) return a;
    Node* root;
    Node** link = &root;
    for (;;) {
      if (a->prio >= b->prio) {
        *link = a;
        link = &a->r;
        a = a->r;
        if (!a) {
          *link = b;
          break;
        }
      } else {
        *link = b;
        link = &b->l;
        b = b->l;
        if (!b) {
          *link = a;
          break;
        }
      }
    }
    return root;
  }

  /// Detaches the maximum-key node. Heap order survives because the removed
  /// node's left child has a smaller priority than the removed node, hence
  /// than the parent too.
  static Node* detach_max(Node** t) {
    if (!*t) return nullptr;
    Node** link = t;
    while ((*link)->r) link = &(*link)->r;
    Node* m = *link;
    *link = m->l;
    m->l = nullptr;
    return m;
  }

  /// Builds the winner cover of [lo, hi] from the current scratch_ (the
  /// just-carved overlapped segments): gaps take `a`, overlapped segments go
  /// through `resolve`, adjacent same-winner pieces coalesce.  Returns the
  /// merged middle tree.  Shared by insert_reader and the sparse run apply.
  template <class R>
  Node* reader_cover(addr_t lo, addr_t hi, const Accessor& a, R& resolve) {
    pieces_out_.clear();
    addr_t cursor = lo;
    bool covered_to_hi = false;
    for (const Piece& p : scratch_) {
      if (p.lo > cursor) push_piece(cursor, p.lo - 1, a);
      const Accessor& w = resolve(p.who, a) ? a : p.who;
      push_piece(p.lo, p.hi, w);
      if (p.hi == hi) {  // avoids the hi+1 wrap when hi == kMaxAddr
        covered_to_hi = true;
        break;
      }
      cursor = p.hi + 1;
    }
    if (!covered_to_hi && cursor <= hi) push_piece(cursor, hi, a);
    Node* mid = nullptr;
    for (const Piece& p : pieces_out_) mid = merge(mid, make_node(p.lo, p.hi, p.who));
    return mid;
  }

  /// Removes everything overlapping [lo, hi] from the tree, records the
  /// overlapped segments (trimmed to [lo, hi]) into scratch_ in address
  /// order, and reattaches truncated boundary remainders to *left / *right.
  void carve(addr_t lo, addr_t hi, Node** left, Node** right) {
    carve_tree(&root_, lo, hi, left, right);
  }

  /// carve() generalized over an arbitrary subtree: the sparse run paths
  /// carve each interval out of the shrinking right remainder instead of
  /// re-splitting the whole tree from the root per interval.  The caller
  /// guarantees every node left of the carve window that could straddle it
  /// is inside *tree (true for the frontier apply: processed intervals all
  /// end strictly before the next interval's lo).
  void carve_tree(Node** tree, addr_t lo, addr_t hi, Node** left,
                  Node** right) {
    scratch_.clear();
    Node *a, *b;
    split(*tree, lo, &a, &b);
    *tree = nullptr;
    Node* rightrem = nullptr;

    Node* pred = detach_max(&a);
    if (pred) {
      if (pred->hi < lo) {
        a = merge(a, pred);  // no overlap; put back
      } else {
        scratch_.push_back({lo, pred->hi < hi ? pred->hi : hi, pred->who});
        if (pred->lo < lo) {
          Node* lr = make_node(pred->lo, lo - 1, pred->who);
          a = merge(a, lr);
        }
        if (pred->hi > hi) rightrem = make_node(hi + 1, pred->hi, pred->who);
        release(pred);
      }
    }

    Node *m, *c;
    split(b, hi == kMaxAddr ? kMaxAddr : hi + 1, &m, &c);
    if (hi == kMaxAddr && c) {
      // hi+1 would wrap; nothing can start after kMaxAddr anyway.
      m = merge(m, c);
      c = nullptr;
    }
    collect_overlaps(m, hi, &rightrem);
    *left = a;
    *right = merge(rightrem, c);
  }

  /// In-order walk of the middle tree: all nodes have lo in [lo, hi]; trim
  /// the last one's tail past hi into *rightrem; release the nodes.
  void collect_overlaps(Node* n, addr_t hi, Node** rightrem) {
    if (!n) return;
    collect_overlaps(n->l, hi, rightrem);
    scratch_.push_back({n->lo, n->hi < hi ? n->hi : hi, n->who});
    if (n->hi > hi) {
      PINT_ASSERT(*rightrem == nullptr);  // only the last node can spill over
      *rightrem = make_node(hi + 1, n->hi, n->who);
    }
    Node* r = n->r;
    release(n);
    collect_overlaps(r, hi, rightrem);
  }

  /// Multi-range query walk for sorted disjoint runs: *j is the frontier
  /// (first interval whose hi the walk has not passed).  A left subtree is
  /// pruned when every remaining interval starts at/after n->lo (disjoint
  /// segments mean the whole left subtree ends before n->lo); the right
  /// subtree is pruned once the frontier is exhausted.
  template <class Iv, class F>
  static void query_multi(const Node* n, const Iv* iv, std::size_t k,
                          std::size_t* j, F& cb) {
    if (!n || *j >= k) return;
    if (iv[*j].lo < n->lo) query_multi(n->l, iv, k, j, cb);
    while (*j < k && iv[*j].hi < n->lo) ++*j;
    for (std::size_t x = *j; x < k && iv[x].lo <= n->hi; ++x) {
      cb(iv[x].lo > n->lo ? iv[x].lo : n->lo,
         iv[x].hi < n->hi ? iv[x].hi : n->hi, n->who);
    }
    if (*j >= k) return;
    query_multi(n->r, iv, k, j, cb);
  }

  template <class F>
  static void query_rec(const Node* n, addr_t lo, addr_t hi, F& cb) {
    if (!n) return;
    if (n->lo > hi) {  // n and its right subtree start after the range
      query_rec(n->l, lo, hi, cb);
      return;
    }
    if (n->hi < lo) {  // n and its left subtree end before the range
      query_rec(n->r, lo, hi, cb);
      return;
    }
    query_rec(n->l, lo, hi, cb);
    cb(n->lo > lo ? n->lo : lo, n->hi < hi ? n->hi : hi, n->who);
    query_rec(n->r, lo, hi, cb);
  }

  template <class F>
  static void for_each_rec(const Node* n, F& cb) {
    if (!n) return;
    for_each_rec(n->l, cb);
    cb(n->lo, n->hi, n->who);
    for_each_rec(n->r, cb);
  }

  static std::size_t count_rec(const Node* n) {
    return n ? 1 + count_rec(n->l) + count_rec(n->r) : 0;
  }

  void clear_rec(Node* n) {
    if (n == nullptr) return;
    clear_rec(n->l);
    clear_rec(n->r);
    release(n);
  }
  static bool heap_ok(const Node* n) {
    if (!n) return true;
    if (n->l && n->l->prio > n->prio) return false;
    if (n->r && n->r->prio > n->prio) return false;
    return heap_ok(n->l) && heap_ok(n->r);
  }

  static constexpr addr_t kMaxAddr = ~addr_t(0);
  static constexpr std::size_t kChunk = 512;

  Node* root_ = nullptr;
  Xoshiro256 rng_;
  bool use_arena_ = false;
  Node* free_ = nullptr;
  std::vector<Node*> chunks_;
  std::size_t used_ = kChunk;
  std::vector<Piece> scratch_;
  std::vector<Piece> pieces_out_;
  std::vector<Node*> spine_;  // build_sorted() right spine
};

}  // namespace pint::treap
