#pragma once

// Deprecated umbrella header.  The stable public include is pint_api.hpp,
// which adds the DetectorKind/DetectorSpec/make_detector factory and the
// PINT_* instrumentation macros on top of everything this header exposed.
// This alias stays so existing includes keep compiling; new code should
// include "pint_api.hpp".

#pragma message( \
    "pint.hpp is deprecated: include \"pint_api.hpp\" instead (same " \
    "contents plus the detector factory and PINT_* macros)")

#include "pint_api.hpp"
