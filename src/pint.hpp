#pragma once

// Umbrella header for the PINT library.
//
// Quickstart:
//
//   #include "pint.hpp"
//
//   void work(std::vector<long>& v) {
//     pint::rt::SpawnScope sc;                  // a Cilk sync block
//     sc.spawn([&] {
//       pint::record_write(&v[0], 8);           // instrument accesses
//       v[0] = 1;
//     });
//     pint::record_write(&v[0], 8);             // races with the child!
//     v[0] = 2;
//     sc.sync();                                 // (also implicit in ~SpawnScope)
//   }
//
//   int main() {
//     std::vector<long> v(1);
//     pint::pintd::PintDetector::Options opt;
//     opt.core_workers = 4;                      // + 3 treap workers
//     pint::pintd::PintDetector det(opt);
//     det.run([&] { work(v); });
//     return det.reporter().any() ? 1 : 0;
//   }
//
// Components (see DESIGN.md for the architecture):
//   rt::Scheduler / rt::SpawnScope   - fork-join work-stealing runtime
//   pintd::PintDetector              - the parallel interval-based detector
//   stint::StintDetector             - sequential baseline (ALENEX'22)
//   cracer::CracerDetector           - per-access shadow-memory baseline
//   oracle::OracleDetector           - exact reference for tests
//   detect::DetectorRunner           - the shared run/reporter/stats seam
//   record_read/record_write         - instrumentation facade
//   dmalloc/dfree                    - detector-aware heap allocation
//   telem::*                         - span tracing + Chrome-trace export

#include "cracer/cracer_detector.hpp"
#include "detect/instrument.hpp"
#include "detect/run_result.hpp"
#include "kernels/kernels.hpp"
#include "oracle/oracle_detector.hpp"
#include "pint/pint_detector.hpp"
#include "runtime/parallel_for.hpp"
#include "runtime/scheduler.hpp"
#include "stint/stint_detector.hpp"
#include "support/telemetry.hpp"
