#pragma once

// Shared access-history processing: how one strand record is applied to a
// writer / reader interval treap.  Used by all three of PINT's treap workers
// and by STINT's synchronous processing - the semantics are identical, only
// *when* and *on which thread* they run differs (paper §III-A).

#include <atomic>

#include "detect/granule_map.hpp"
#include "detect/lockset.hpp"
#include "detect/report.hpp"
#include "detect/stats.hpp"
#include "detect/strand.hpp"
#include "reach/engine.hpp"
#include "treap/interval_treap.hpp"

namespace pint::detect {

// ---------------------------------------------------------------------------
// Bulk-run knob (DESIGN.md §10)
// ---------------------------------------------------------------------------
//
// When on (the default), a strand whose record list is canonical (sorted +
// disjoint, see AccessBuffer::canonical) is applied through the stores' bulk
// *_run API - one amortized carve per list instead of one root walk per
// interval.  The callback/resolver sequence is identical either way, so race
// reports are bit-identical; the equivalence suite (tests/test_bulk_apply)
// flips this off to prove it.  Same global-knob shape as
// set_access_fast_path: flip only while no detector is running.

inline std::atomic<bool>& bulk_apply_knob() {
  static std::atomic<bool> on{true};
  return on;
}
inline void set_bulk_apply(bool on) {
  bulk_apply_knob().store(on, std::memory_order_relaxed);
}
inline bool bulk_apply() {
  return bulk_apply_knob().load(std::memory_order_relaxed);
}

/// One *_run call of k intervals issued to a history store.
inline void note_bulk_run(Stats& stats, std::size_t k) {
  stats.bulk_runs.fetch_add(1, std::memory_order_relaxed);
  stats.bulk_run_intervals.fetch_add(k, std::memory_order_relaxed);
}

/// Which reader the reader treap retains for each interval.
enum class ReaderSide {
  kLeftMost,   // parallel detection: first in English order
  kRightMost,  // parallel detection: last in English order
  kSerial,     // serial detection (STINT): replace only when in series
};

inline treap::Accessor accessor_of(const Strand& s) {
  return {s.label, s.sid, s.tag, s.lsid};
}

// HistoryKind (treap vs granule-map store) lives in detect/types.hpp so the
// ablation knob is nameable without this header's treap dependency.

/// Overlap callback shared by every checking path: report a race when a
/// prior accessor of the overlapped segment is parallel to `me` and the two
/// segments held no common lock (epoch×lockset filtering, DESIGN.md §12).
/// `me` is captured by value; engine/reporter/stats by reference.  `memo`
/// (optional) is the calling history worker's private precedes() cache.
template <class Engine = reach::Engine>
inline auto make_conflict_cb(treap::Accessor me, bool prev_write,
                             bool cur_write, Engine& reach,
                             RaceReporter& rep, Stats& stats,
                             typename Engine::Memo* memo = nullptr) {
  return [me, prev_write, cur_write, &reach, &rep, &stats, memo](
             addr_t lo, addr_t hi, const treap::Accessor& prev) {
    if (prev.sid == me.sid) return;  // a strand cannot race with itself
    if (locksets_share(prev.lsid, me.lsid)) return;  // common mutex held
    stats.reach_queries.fetch_add(1, std::memory_order_relaxed);
    if (reach.parallel(prev.label, me.label, memo)) {
      rep.report(prev.sid, prev_write, me.sid, cur_write, lo, hi, prev.tag,
                 me.tag);
    }
  };
}

/// Reader-retention rule shared by reader inserts: the new reader wins when
/// it is in series after the stored one, or is the side's extreme among
/// parallel readers (stored readers are never DAG-successors of `me` thanks
/// to DAG-conforming processing).  One Relation answers series-ness AND the
/// left/right tiebreak (left_of(me, prev) is the negated English bit), so
/// the memo pays off even on the resolver path.
template <class Engine = reach::Engine>
inline auto make_reader_resolver(treap::Accessor me, Engine& reach,
                                 Stats& stats, ReaderSide side,
                                 typename Engine::Memo* memo = nullptr) {
  return [me, &reach, &stats, side, memo](const treap::Accessor& prev,
                                          const treap::Accessor& cur) {
    (void)cur;
    if (prev.sid == me.sid) return false;
    stats.reach_queries.fetch_add(1, std::memory_order_relaxed);
    const typename Engine::Relation r =
        reach.relation(prev.label, me.label, memo);
    if (r.eng && r.heb) return true;  // prev ~> me
    switch (side) {
      case ReaderSide::kLeftMost:
        return !r.eng;  // left_of(me, prev): me first in English order
      case ReaderSide::kRightMost:
        return r.eng;  // left_of(prev, me)
      case ReaderSide::kSerial:
        return false;  // Feng-Leiserson rule: keep the old parallel reader
    }
    return false;
  };
}

/// Reads checked against the last-writer history, then writes checked
/// against and inserted into it (query-before-insert, per Theorem 5's
/// proof), then clears applied. Works with any store exposing the treap's
/// query/insert_writer/insert_reader/erase_range interface.
template <class History, class Engine = reach::Engine>
inline void process_writer_treap(History& t, const Strand& s,
                                 Engine& reach, RaceReporter& rep,
                                 Stats& stats,
                                 typename Engine::Memo* memo = nullptr) {
  const treap::Accessor me = accessor_of(s);
  const bool bulk = bulk_apply();
  const auto& reads = s.reads.items();
  if (bulk && s.reads.canonical() && !reads.empty()) {
    note_bulk_run(stats, reads.size());
    t.query_run(reads.data(), reads.size(),
                make_conflict_cb(me, true, false, reach, rep, stats, memo));
  } else {
    for (const Interval& r : reads) {
      t.query(r.lo, r.hi,
              make_conflict_cb(me, true, false, reach, rep, stats, memo));
    }
  }
  const auto& writes = s.writes.items();
  if (bulk && s.writes.canonical() && !writes.empty()) {
    note_bulk_run(stats, writes.size());
    t.insert_writer_run(
        writes.data(), writes.size(), me,
        make_conflict_cb(me, true, true, reach, rep, stats, memo));
  } else {
    for (const Interval& w : writes) {
      t.insert_writer(
          w.lo, w.hi, me,
          make_conflict_cb(me, true, true, reach, rep, stats, memo));
    }
  }
  for (const Interval& c : s.clears) t.erase_range(c.lo, c.hi);
  for (const HeapFree& f : s.frees) t.erase_range(f.lo, f.hi);
}

/// Writes checked against the reader history, then reads inserted with the
/// side's retention rule, then clears applied.
template <class History, class Engine = reach::Engine>
inline void process_reader_treap(History& t, const Strand& s,
                                 Engine& reach, RaceReporter& rep,
                                 Stats& stats, ReaderSide side,
                                 typename Engine::Memo* memo = nullptr) {
  const treap::Accessor me = accessor_of(s);
  const bool bulk = bulk_apply();
  const auto& writes = s.writes.items();
  if (bulk && s.writes.canonical() && !writes.empty()) {
    note_bulk_run(stats, writes.size());
    t.query_run(writes.data(), writes.size(),
                make_conflict_cb(me, false, true, reach, rep, stats, memo));
  } else {
    for (const Interval& w : writes) {
      t.query(w.lo, w.hi,
              make_conflict_cb(me, false, true, reach, rep, stats, memo));
    }
  }
  const auto resolve = make_reader_resolver(me, reach, stats, side, memo);
  const auto& reads = s.reads.items();
  if (bulk && s.reads.canonical() && !reads.empty()) {
    note_bulk_run(stats, reads.size());
    t.insert_reader_run(reads.data(), reads.size(), me, resolve);
  } else {
    for (const Interval& r : reads) {
      t.insert_reader(r.lo, r.hi, me, resolve);
    }
  }
  for (const Interval& c : s.clears) t.erase_range(c.lo, c.hi);
  for (const HeapFree& f : s.frees) t.erase_range(f.lo, f.hi);
}

}  // namespace pint::detect
