#include "detect/tuning.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "detect/history.hpp"
#include "detect/types.hpp"
#include "support/arena.hpp"

namespace pint::detect {

namespace {

bool parse_bool(const std::string& v, bool* out) {
  if (v == "on" || v == "1" || v == "true") {
    *out = true;
    return true;
  }
  if (v == "off" || v == "0" || v == "false") {
    *out = false;
    return true;
  }
  return false;
}

bool parse_policy(const std::string& v, CursorPolicy* out) {
  if (v == "adaptive") *out = CursorPolicy::kAdaptive;
  else if (v == "inline") *out = CursorPolicy::kInline;
  else if (v == "wide") *out = CursorPolicy::kWide;
  else if (v == "bypass") *out = CursorPolicy::kBypass;
  else return false;
  return true;
}

void warn_once(const std::string& what) {
  static bool warned = false;
  if (warned) return;
  warned = true;
  std::fprintf(stderr, "pint: ignoring PINT_TUNING entry '%s'\n",
               what.c_str());
}

}  // namespace

Tuning Tuning::current() {
  Tuning t;
  t.bulk_apply = detect::bulk_apply();
  t.access_fast_path = detect::access_fast_path();
  t.cursor_policy = detect::cursor_policy();
  t.arena = support::arena_recycle();
  t.simd = detect::simd_merge();
  return t;
}

Tuning Tuning::parse(const char* spec, Tuning base) {
  if (spec == nullptr) return base;
  const char* p = spec;
  while (*p != '\0') {
    const char* end = std::strchr(p, ',');
    const std::string item(p, end == nullptr ? std::strlen(p) : end - p);
    p = end == nullptr ? p + item.size() : end + 1;
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos) {
      if (!item.empty()) warn_once(item);
      continue;
    }
    const std::string key = item.substr(0, eq);
    const std::string val = item.substr(eq + 1);
    bool ok = false;
    if (key == "bulk") ok = parse_bool(val, &base.bulk_apply);
    else if (key == "fastpath") ok = parse_bool(val, &base.access_fast_path);
    else if (key == "cursor") ok = parse_policy(val, &base.cursor_policy);
    else if (key == "memo") ok = parse_bool(val, &base.memo);
    else if (key == "locks") ok = parse_bool(val, &base.lock_edges);
    else if (key == "arena") ok = parse_bool(val, &base.arena);
    else if (key == "tier") ok = parse_bool(val, &base.tier);
    else if (key == "simd") ok = parse_bool(val, &base.simd);
    if (!ok) warn_once(item);
  }
  return base;
}

Tuning Tuning::from_env() {
  // getenv once per process; the spec string is parsed onto each snapshot so
  // a legacy setter flipped between constructions is still honored.
  static const char* spec = std::getenv("PINT_TUNING");
  return parse(spec, current());
}

void Tuning::apply_globals() const {
  set_bulk_apply(bulk_apply);
  set_access_fast_path(access_fast_path);
  set_cursor_policy(cursor_policy);
  support::set_arena_recycle(arena);
  set_simd_merge(simd);
}

}  // namespace pint::detect
