#pragma once

// Per-granule hashmap access history - the conventional design the paper
// contrasts with the interval treap, packaged with the SAME role semantics
// so it can stand in for one of PINT's three treaps (or STINT's two).
//
// One map instance plays exactly one role: last-writer, left-most reader,
// right-most reader, or serial reader. Like the treaps it is strictly
// sequential - a single owner thread - so PINT's pipeline is unchanged and
// benchmarking "treap vs hashmap under an identical asynchronous pipeline"
// isolates the access-history data structure itself (ablation_history).
//
// Storage: open-addressing table from 8-byte granule to the accessor record,
// growing by rehash at 70% load. Interval operations iterate the granules of
// the range, which is precisely the per-location cost profile the paper's
// interval coalescing is designed to avoid.

#include <cstdint>
#include <memory>
#include <vector>

#include "support/assert.hpp"
#include "treap/interval_treap.hpp"

namespace pint::detect {

class GranuleMap {
 public:
  static constexpr std::uint64_t kGranuleBytes = 8;

  /// Minimum slot count: capacities below it (notably 0, whose mask would
  /// underflow to all-ones over an empty table) are rounded up to it.
  static constexpr std::size_t kMinCapacity = 16;

  explicit GranuleMap(std::size_t capacity_pow2 = 1 << 12)
      : mask_(normalized(capacity_pow2) - 1), slots_(mask_ + 1) {
    const std::size_t cap = mask_ + 1;
    PINT_CHECK_MSG((cap & (cap - 1)) == 0, "capacity must be a power of 2");
  }

  /// cb(granule_lo, granule_hi, accessor) for every granule of [lo, hi]
  /// with a recorded accessor. Bounds reported at granule granularity.
  template <class F>
  void query(treap::addr_t lo, treap::addr_t hi, F&& cb) const {
    std::uint64_t glo = lo / kGranuleBytes;
    std::uint64_t ghi = hi / kGranuleBytes;
    if (min_key_ > max_key_) return;
    if (glo < min_key_) glo = min_key_;
    if (ghi > max_key_) ghi = max_key_;
    for (std::uint64_t g = glo; g <= ghi; ++g) {
      const Slot* s = find(g);
      if (s != nullptr) {
        cb(g * kGranuleBytes, g * kGranuleBytes + kGranuleBytes - 1, s->who);
      }
    }
  }

  /// Last-writer semantics: report previous owners, then overwrite.
  template <class F>
  void insert_writer(treap::addr_t lo, treap::addr_t hi,
                     const treap::Accessor& a, F&& cb) {
    for (std::uint64_t g = lo / kGranuleBytes; g <= hi / kGranuleBytes; ++g) {
      Slot* s = find_or_insert(g);
      if (s->occupied) {
        cb(g * kGranuleBytes, g * kGranuleBytes + kGranuleBytes - 1, s->who);
      }
      s->who = a;
      s->occupied = true;
    }
  }

  /// Reader semantics: per granule, resolve(prev, a) true => a wins.
  template <class R>
  void insert_reader(treap::addr_t lo, treap::addr_t hi,
                     const treap::Accessor& a, R&& resolve) {
    for (std::uint64_t g = lo / kGranuleBytes; g <= hi / kGranuleBytes; ++g) {
      Slot* s = find_or_insert(g);
      if (!s->occupied || resolve(s->who, a)) {
        s->who = a;
        s->occupied = true;
      }
    }
  }

  // --- Bulk sorted-run shims (uniform History interface, DESIGN.md §10) ---
  //
  // A per-granule map has no cross-interval structure to exploit, so the
  // run flavors just loop - but exposing them keeps the History template
  // interface uniform, letting process_*_treap use one code path for both
  // stores (and the ablation measure exactly the data-structure delta).

  template <class Iv, class F>
  void query_run(const Iv* iv, std::size_t k, F&& cb) const {
    for (std::size_t j = 0; j < k; ++j) query(iv[j].lo, iv[j].hi, cb);
  }

  template <class Iv, class F>
  void insert_writer_run(const Iv* iv, std::size_t k, const treap::Accessor& a,
                         F&& cb) {
    for (std::size_t j = 0; j < k; ++j) insert_writer(iv[j].lo, iv[j].hi, a, cb);
  }

  template <class Iv, class R>
  void insert_reader_run(const Iv* iv, std::size_t k, const treap::Accessor& a,
                         R&& resolve) {
    for (std::size_t j = 0; j < k; ++j) {
      insert_reader(iv[j].lo, iv[j].hi, a, resolve);
    }
  }

  template <class Iv>
  void erase_run(const Iv* iv, std::size_t k) {
    for (std::size_t j = 0; j < k; ++j) erase_range(iv[j].lo, iv[j].hi);
  }

  void erase_range(treap::addr_t lo, treap::addr_t hi) {
    // Clamp to the granule range ever inserted: shadow stores skip unmapped
    // regions, so clearing a (huge) never-touched stack range must be cheap.
    std::uint64_t g = lo / kGranuleBytes;
    std::uint64_t gend = hi / kGranuleBytes;
    if (min_key_ > max_key_) return;  // empty map
    if (g < min_key_) g = min_key_;
    if (gend > max_key_) gend = max_key_;
    for (; g <= gend; ++g) {
      Slot* s = find_mutable(g);
      if (s != nullptr) {
        s->occupied = false;  // key stays: acts as a tombstone slot
        --live_;
      }
    }
  }

  std::size_t size() const { return live_; }
  std::size_t capacity() const { return mask_ + 1; }

 private:
  static std::size_t normalized(std::size_t capacity_pow2) {
    return capacity_pow2 < kMinCapacity ? kMinCapacity : capacity_pow2;
  }

  struct Slot {
    std::uint64_t key = 0;  // granule + 1; 0 = never used
    bool occupied = false;  // false with key != 0 = tombstone
    treap::Accessor who;
  };

  static std::size_t hash(std::uint64_t g) {
    std::uint64_t h = g * 0x9e3779b97f4a7c15ULL;
    return std::size_t(h ^ (h >> 31));
  }

  const Slot* find(std::uint64_t g) const {
    const std::uint64_t key = g + 1;
    std::size_t i = hash(g) & mask_;
    for (;;) {
      const Slot& s = slots_[i];
      if (s.key == key) return s.occupied ? &s : nullptr;
      if (s.key == 0) return nullptr;
      i = (i + 1) & mask_;
    }
  }
  Slot* find_mutable(std::uint64_t g) {
    return const_cast<Slot*>(static_cast<const GranuleMap*>(this)->find(g));
  }

  Slot* find_or_insert(std::uint64_t g) {
    if ((filled_ + 1) * 10 >= capacity() * 7) grow();
    const std::uint64_t key = g + 1;
    std::size_t i = hash(g) & mask_;
    for (;;) {
      Slot& s = slots_[i];
      if (s.key == key) {
        if (!s.occupied) ++live_;  // will be revived by the caller
        return &s;
      }
      if (s.key == 0) {
        s.key = key;
        ++filled_;
        ++live_;
        s.occupied = false;
        if (g < min_key_) min_key_ = g;
        if (g > max_key_) max_key_ = g;
        return &s;
      }
      i = (i + 1) & mask_;
    }
  }

  void grow() {
    std::vector<Slot> old = std::move(slots_);
    mask_ = mask_ * 2 + 1;
    slots_.assign(mask_ + 1, Slot{});
    filled_ = 0;
    live_ = 0;
    for (const Slot& s : old) {
      if (s.key == 0 || !s.occupied) continue;
      std::size_t i = hash(s.key - 1) & mask_;
      while (slots_[i].key != 0) i = (i + 1) & mask_;
      slots_[i] = s;
      ++filled_;
      ++live_;
    }
  }

  std::size_t mask_;
  std::vector<Slot> slots_;
  std::size_t filled_ = 0;  // slots with a key (incl. tombstones)
  std::size_t live_ = 0;    // occupied slots
  std::uint64_t min_key_ = ~std::uint64_t(0);  // observed granule bounds
  std::uint64_t max_key_ = 0;
};

}  // namespace pint::detect
