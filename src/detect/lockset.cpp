#include "detect/lockset.hpp"

#include <algorithm>
#include <atomic>
#include <unordered_map>

#include "support/assert.hpp"
#include "support/spinlock.hpp"

namespace pint::detect {

namespace {

struct Set {
  std::vector<addr_t> locks;  // sorted, non-empty once interned
};

std::uint64_t hash_mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

std::uint64_t hash_set(const std::vector<addr_t>& locks) {
  std::uint64_t h = 0x27d4eb2f165667c5ULL;
  for (addr_t a : locks) h = hash_mix(h, a);
  return h;
}

}  // namespace

struct LocksetTable::Impl {
  // Append-only chunked id -> Set storage.  Chunk pointers are published
  // with release so a lane that learned an id through any happens-before
  // edge can read the set lock-free.
  static constexpr std::uint32_t kChunkBits = 10;
  static constexpr std::uint32_t kChunkSize = 1u << kChunkBits;
  static constexpr std::uint32_t kMaxChunks = 1u << 12;  // 4M interned sets

  Spinlock mu;
  // Interned-set count; mutated under mu, read lock-free by set_of's bounds
  // assert on the query path (hence atomic).
  std::atomic<std::uint32_t> count{1};  // id 0 is the implicit empty set
  std::atomic<Set*> chunks[kMaxChunks] = {};
  // Interning index (under mu): set hash -> candidate ids.
  std::unordered_map<std::uint64_t, std::vector<lockset_t>> index;
  // Exact-keyed direct-mapped transition memo (under mu): lock events repeat
  // the same (cur, lock) transitions, so most acquires hit here.
  struct Trans {
    lockset_t cur = 0;
    addr_t lock = 0;
    lockset_t out = 0;
    std::uint8_t kind = 0;  // 0 invalid, 1 acquire, 2 release
  };
  static constexpr std::size_t kTransSlots = 2048;
  Trans tmemo[kTransSlots];
  // Lock-free intersects() pair memo: packed (a << 33) | (b << 2) |
  // (verdict << 1) | 1.  Exact-keyed, so a slot collision only costs a
  // recompute, never a wrong verdict.
  static constexpr std::size_t kPairSlots = 4096;
  std::atomic<std::uint64_t> pmemo[kPairSlots] = {};

  const Set& set_of(lockset_t id) const {
    PINT_ASSERT(id != 0 && id < count.load(std::memory_order_relaxed));
    const Set* chunk =
        chunks[id >> kChunkBits].load(std::memory_order_acquire);
    return chunk[id & (kChunkSize - 1)];
  }

  // Under mu: intern `locks` (sorted, non-empty), reusing an existing id.
  lockset_t intern(std::vector<addr_t>&& locks) {
    const std::uint64_t h = hash_set(locks);
    std::vector<lockset_t>& cands = index[h];
    for (lockset_t id : cands) {
      if (set_of(id).locks == locks) return id;
    }
    const lockset_t id = count.load(std::memory_order_relaxed);
    PINT_CHECK_MSG(id < kMaxChunks * kChunkSize, "lockset table full");
    std::atomic<Set*>& slot = chunks[id >> kChunkBits];
    Set* chunk = slot.load(std::memory_order_relaxed);
    if (chunk == nullptr) {
      chunk = new Set[kChunkSize];
      slot.store(chunk, std::memory_order_release);
    }
    chunk[id & (kChunkSize - 1)].locks = std::move(locks);
    count.store(id + 1, std::memory_order_relaxed);
    cands.push_back(id);
    return id;
  }

  static std::size_t trans_slot(lockset_t cur, addr_t lock, std::uint8_t k) {
    return std::size_t(hash_mix(hash_mix(cur, lock), k)) & (kTransSlots - 1);
  }
};

LocksetTable::LocksetTable() : impl_(new Impl) {}

LocksetTable& LocksetTable::instance() {
  static LocksetTable t;
  return t;
}

lockset_t LocksetTable::acquire(lockset_t cur, addr_t lock) {
  LockGuard<Spinlock> g(impl_->mu);
  Impl::Trans& t = impl_->tmemo[Impl::trans_slot(cur, lock, 1)];
  if (t.kind == 1 && t.cur == cur && t.lock == lock) return t.out;
  std::vector<addr_t> locks;
  if (cur != 0) locks = impl_->set_of(cur).locks;
  const auto it = std::lower_bound(locks.begin(), locks.end(), lock);
  lockset_t out = cur;
  if (it == locks.end() || *it != lock) {
    locks.insert(it, lock);
    out = impl_->intern(std::move(locks));
  }
  t = {cur, lock, out, 1};
  return out;
}

lockset_t LocksetTable::release(lockset_t cur, addr_t lock) {
  if (cur == 0) return 0;  // unmatched release of an empty set
  LockGuard<Spinlock> g(impl_->mu);
  Impl::Trans& t = impl_->tmemo[Impl::trans_slot(cur, lock, 2)];
  if (t.kind == 2 && t.cur == cur && t.lock == lock) return t.out;
  std::vector<addr_t> locks = impl_->set_of(cur).locks;
  const auto it = std::lower_bound(locks.begin(), locks.end(), lock);
  lockset_t out = cur;
  if (it != locks.end() && *it == lock) {
    locks.erase(it);
    out = locks.empty() ? 0 : impl_->intern(std::move(locks));
  }
  t = {cur, lock, out, 2};
  return out;
}

bool LocksetTable::intersects(lockset_t a, lockset_t b) const {
  if (a == 0 || b == 0) return false;
  if (a == b) return true;
  // Normalize so (a, b) and (b, a) share a memo entry.
  if (a > b) std::swap(a, b);
  std::atomic<std::uint64_t>* slot = nullptr;
  if (b < (1u << 31)) {  // ids fit the packed entry (always, in practice)
    const std::size_t s =
        std::size_t(hash_mix(a, b)) & (Impl::kPairSlots - 1);
    slot = &impl_->pmemo[s];
    const std::uint64_t e = slot->load(std::memory_order_relaxed);
    if ((e & 1) != 0 && (e >> 33) == a && ((e >> 2) & 0x7fffffffULL) == b) {
      return ((e >> 1) & 1) != 0;
    }
  }
  const Set& sa = impl_->set_of(a);
  const Set& sb = impl_->set_of(b);
  bool share = false;
  for (std::size_t i = 0, j = 0;
       i < sa.locks.size() && j < sb.locks.size();) {
    if (sa.locks[i] == sb.locks[j]) {
      share = true;
      break;
    }
    if (sa.locks[i] < sb.locks[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  if (slot != nullptr) {
    const std::uint64_t e = (std::uint64_t(a) << 33) |
                            (std::uint64_t(b) << 2) |
                            (std::uint64_t(share) << 1) | 1u;
    slot->store(e, std::memory_order_relaxed);
  }
  return share;
}

const std::vector<addr_t>& LocksetTable::locks(lockset_t id) const {
  static const std::vector<addr_t> kEmpty;
  if (id == 0) return kEmpty;
  return impl_->set_of(id).locks;
}

std::size_t LocksetTable::size() const {
  return impl_->count.load(std::memory_order_relaxed);
}

}  // namespace pint::detect
