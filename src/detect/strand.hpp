#pragma once

// The transient strand record.
//
// A Strand accumulates one strand's coalesced accesses plus the ordering
// bookkeeping of the paper's Algorithms 1-2 (pred counter, child pointer)
// and the deferred-resource lists of §III-F (stack-clear ranges, deferred
// heap frees, the retired fiber whose stack must not be reused early).
//
// Only the *label* is persistent: treaps copy {label, sid} into their nodes,
// so the Strand object itself is recycled once all three treap workers have
// processed it (the paper's fetch-and-add consumer counter).

#include <atomic>
#include <cstdint>
#include <vector>

#include "detect/lockset.hpp"
#include "detect/types.hpp"
#include "reach/engine.hpp"

namespace pint::rt {
struct TaskFrame;
}

namespace pint::detect {

struct Strand {
  std::uint64_t sid = 0;
  reach::Engine::Label label;
  /// Task name of the strand's owning task (named spawns); for reports.
  const char* tag = nullptr;
  /// Interned lockset held while this segment's accesses were recorded
  /// (0 = none).  A lock acquire/release splits the strand into a new
  /// segment with the SAME label but a fresh sid and lsid, so every history
  /// record carries the exact lockset of its accesses.
  lockset_t lsid = 0;

  AccessBuffer reads;
  AccessBuffer writes;
  std::vector<Interval> clears;  // stack ranges to erase from each treap
  std::vector<HeapFree> frees;   // deferred heap frees (writer performs them)

  // --- Algorithm 1/2 bookkeeping ---
  /// Number of uncollected immediate predecessors (meaningful only when this
  /// strand is the first strand of a trace: a stolen continuation or the
  /// sync node of a non-trivial sync).
  std::atomic<std::int32_t> pred{0};
  /// Successor whose pred the writer decrements upon collecting this strand
  /// (the continuation for a spawn node; the sync node for a return node
  /// whose continuation was stolen or a strand leading into a non-trivial
  /// sync). Null otherwise.
  Strand* collect_child = nullptr;

  // --- recycling ---
  /// Remaining treap workers that have not yet processed this strand.
  std::atomic<std::int32_t> consumers{0};
  /// Finished task frame whose fiber stack is retired by this (return-node)
  /// strand; the writer returns it to the scheduler pool when it processes
  /// this strand, which is exactly when reuse becomes safe.
  rt::TaskFrame* retired_frame = nullptr;
  std::uint32_t owner_worker = 0;
  Strand* pool_next = nullptr;

  void reset(std::uint64_t id) {
    sid = id;
    label = {};
    tag = nullptr;
    lsid = 0;
    reads.clear();
    writes.clear();
    clears.clear();
    frees.clear();
    pred.store(0, std::memory_order_relaxed);
    collect_child = nullptr;
    consumers.store(0, std::memory_order_relaxed);
    retired_frame = nullptr;
  }

  bool has_work() const {
    return !reads.empty() || !writes.empty() || !clears.empty() ||
           !frees.empty();
  }
};

}  // namespace pint::detect
