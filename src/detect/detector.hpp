#pragma once

// The memory-event interface every detector implements, plus the process-
// wide registry the instrumentation facade dispatches through.
//
// Detectors additionally implement rt::SchedulerHooks for the control-flow
// events (spawn/sync/steal); this interface covers only the data side:
// memory accesses and heap management.

#include <cstddef>

#include "detect/types.hpp"

namespace pint::rt {
class Worker;
struct TaskFrame;
}

namespace pint::detect {

class Detector {
 public:
  virtual ~Detector() = default;

  /// A memory access of [lo, hi] by the current strand of `frame`,
  /// executing on `worker`. Interval detectors append to the strand's
  /// coalescing buffer; per-access detectors (C-RACER) check immediately.
  virtual void on_access(rt::Worker& worker, rt::TaskFrame& frame, addr_t lo,
                         addr_t hi, bool is_write) = 0;

  /// The current strand frees a heap block: `base` goes to ::free, [lo, hi]
  /// must be cleared from the access history. Synchronous detectors do both
  /// now; PINT defers both to the writer treap worker.
  virtual void on_heap_free(rt::Worker& worker, rt::TaskFrame& frame,
                            void* base, addr_t lo, addr_t hi) = 0;

  /// The current strand acquired / released the mutex at address `lock`
  /// (the __pint_lock_* hooks; recorded AFTER the real acquire and BEFORE
  /// the real release, so the recorded critical section nests inside the
  /// real one).  Lock-aware detectors split the strand into a new segment
  /// carrying the updated lockset; the default ignores lock events.
  virtual void on_lock_acquire(rt::Worker& /*worker*/,
                               rt::TaskFrame& /*frame*/, addr_t /*lock*/) {}
  virtual void on_lock_release(rt::Worker& /*worker*/,
                               rt::TaskFrame& /*frame*/, addr_t /*lock*/) {}

  virtual const char* name() const = 0;
};

/// Installs / clears the detector the record_* facade routes to. Call before
/// / after Scheduler::run; not thread-safe against in-flight accesses.
void set_active_detector(Detector* d);
Detector* active_detector();

}  // namespace pint::detect
