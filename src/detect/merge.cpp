#include "detect/types.hpp"

// AccessBuffer::finalize backend (DESIGN.md §13): turn the recorded interval
// list into the canonical minimal sorted disjoint set.
//
// Three routes, all producing the identical bytes (the canonical set is
// unique, so the route is unobservable in results - only in Stats):
//
//  * already-sorted scan: one branchless-friendly pass detects sortedness;
//    streaming kernels record monotonically increasing spill streams, so
//    they skip the sort entirely and go straight to the merge loop.
//  * radix + SIMD: a stable LSD radix sort on (lo - min_lo) - stability is
//    irrelevant to the output (equal-lo intervals merge commutatively) but
//    makes the pass count data-dependent and comparison-free - then an
//    AVX2 pass computes the merge break mask (lo[i] > hi[i-1] + 1, with the
//    same uint64 wrap semantics as the scalar loop) plus a hi-monotonicity
//    check that guards the mask's validity.  Runtime-dispatched on
//    __builtin_cpu_supports("avx2"); nested intervals (non-monotone hi)
//    fall back to the scalar merge of the already-sorted data.
//  * scalar: std::sort + the seed merge loop (knob off, tiny inputs,
//    non-x86, or fallback).

#include <algorithm>
#include <cstring>

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace pint::detect {

namespace {

constexpr std::size_t kSimdMin = 32;  // below this, std::sort wins anyway

bool sorted_by_lo(const Interval* a, std::size_t n) {
  // Accumulate instead of early-exit: the loop auto-vectorizes and the
  // common callers are either fully sorted or unsorted within a few lanes.
  bool ok = true;
  for (std::size_t i = 1; i < n; ++i) ok &= a[i].lo >= a[i - 1].lo;
  return ok;
}

/// The seed merge loop, verbatim semantics (including the hi+1 wrap at the
/// address-space top).  Input must be sorted by lo; returns the new size.
std::size_t merge_sorted_scalar(Interval* a, std::size_t n) {
  std::size_t out = 0;
  for (std::size_t i = 1; i < n; ++i) {
    if (a[i].lo <= a[out].hi + 1) {
      a[out].hi = std::max(a[out].hi, a[i].hi);
    } else {
      a[++out] = a[i];
    }
  }
  return out + 1;
}

/// Stable LSD radix sort by (lo - base); byte digits, pass count bounded by
/// the actual key range.  Scratch is thread-local so the steady state
/// allocates nothing.
void radix_sort_by_lo(std::vector<Interval>& items) {
  const std::size_t n = items.size();
  static thread_local std::vector<Interval> scratch;
  if (scratch.size() < n) scratch.resize(n);

  addr_t min_lo = items[0].lo, max_lo = items[0].lo;
  for (std::size_t i = 1; i < n; ++i) {
    min_lo = std::min(min_lo, items[i].lo);
    max_lo = std::max(max_lo, items[i].lo);
  }
  const addr_t range = max_lo - min_lo;

  Interval* src = items.data();
  Interval* dst = scratch.data();
  // shift < 64 guard: a full-width key range would otherwise ask for
  // `range >> 64`, which is undefined (and on x86 evaluates as >> 0,
  // turning the pass loop infinite).
  for (unsigned shift = 0; shift < 64 && (shift == 0 || (range >> shift) != 0);
       shift += 8) {
    std::size_t count[256] = {};
    for (std::size_t i = 0; i < n; ++i)
      ++count[((src[i].lo - min_lo) >> shift) & 0xff];
    std::size_t pos = 0;
    for (std::size_t b = 0; b < 256; ++b) {
      const std::size_t c = count[b];
      count[b] = pos;
      pos += c;
    }
    for (std::size_t i = 0; i < n; ++i)
      dst[count[((src[i].lo - min_lo) >> shift) & 0xff]++] = src[i];
    std::swap(src, dst);
  }
  if (src != items.data())
    std::memcpy(items.data(), src, n * sizeof(Interval));
}

#if defined(__x86_64__)

bool have_avx2() {
  static const bool ok = __builtin_cpu_supports("avx2");
  return ok;
}

/// AVX2 merge of sorted intervals: vector pass fills brk[i] = 1 iff interval
/// i starts a new output interval, while checking that hi is non-decreasing
/// (which makes hi[i-1] the running maximum, so the mask is exact).
/// Returns false when hi is non-monotone (nested intervals) - caller runs
/// the scalar merge instead.
__attribute__((target("avx2"))) bool merge_sorted_avx2(Interval* a,
                                                       std::size_t n,
                                                       std::size_t* out_n) {
  static thread_local std::vector<unsigned char> brk;
  if (brk.size() < n) brk.resize(n);
  brk[0] = 1;

  // SoA shadows of lo[1..] and hi[0..] + 1, sign-biased for the signed
  // 64-bit compare (AVX2 has no unsigned epi64 compare).
  static thread_local std::vector<std::uint64_t> lo_sh, hip_sh;
  if (lo_sh.size() < n) {
    lo_sh.resize(n);
    hip_sh.resize(n);
  }
  const std::uint64_t bias = 0x8000000000000000ull;
  bool mono = true;
  for (std::size_t i = 1; i < n; ++i) {
    lo_sh[i] = a[i].lo ^ bias;
    hip_sh[i] = (a[i - 1].hi + 1) ^ bias;  // wraps exactly like the scalar
    mono &= a[i].hi >= a[i - 1].hi;
  }
  if (!mono) return false;

  std::size_t i = 1;
  for (; i + 4 <= n; i += 4) {
    const __m256i lo = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(lo_sh.data() + i));
    const __m256i hp = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(hip_sh.data() + i));
    const __m256i gt = _mm256_cmpgt_epi64(lo, hp);  // break iff lo > hi+1
    const int mask = _mm256_movemask_pd(_mm256_castsi256_pd(gt));
    brk[i + 0] = static_cast<unsigned char>(mask & 1);
    brk[i + 1] = static_cast<unsigned char>((mask >> 1) & 1);
    brk[i + 2] = static_cast<unsigned char>((mask >> 2) & 1);
    brk[i + 3] = static_cast<unsigned char>((mask >> 3) & 1);
  }
  for (; i < n; ++i) brk[i] = a[i].lo > a[i - 1].hi + 1 ? 1 : 0;

  // Collapse runs: with hi monotone, each output interval is
  // {lo of run head, hi of run tail}.
  std::size_t out = 0;
  std::size_t head = 0;
  for (std::size_t j = 1; j < n; ++j) {
    if (brk[j]) {
      a[out++] = {a[head].lo, a[j - 1].hi};
      head = j;
    }
  }
  a[out++] = {a[head].lo, a[n - 1].hi};
  *out_n = out;
  return true;
}

#else

bool have_avx2() { return false; }
bool merge_sorted_avx2(Interval*, std::size_t, std::size_t*) { return false; }

#endif  // __x86_64__

}  // namespace

FinalizePath finalize_intervals(std::vector<Interval>& items) {
  const std::size_t n = items.size();
  PINT_ASSERT(n >= 2);
  if (sorted_by_lo(items.data(), n)) {
    items.resize(merge_sorted_scalar(items.data(), n));
    return FinalizePath::kSorted;
  }
  if (simd_merge() && n >= kSimdMin && have_avx2()) {
    radix_sort_by_lo(items);
    std::size_t m = 0;
    if (merge_sorted_avx2(items.data(), n, &m)) {
      items.resize(m);
      return FinalizePath::kSimd;
    }
    items.resize(merge_sorted_scalar(items.data(), n));
    return FinalizePath::kScalar;
  }
  std::sort(items.begin(), items.end(),
            [](const Interval& a, const Interval& b) { return a.lo < b.lo; });
  items.resize(merge_sorted_scalar(items.data(), n));
  return FinalizePath::kScalar;
}

}  // namespace pint::detect
