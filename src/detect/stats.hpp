#pragma once

// Counters and component timings collected during a detection run.  The
// work-breakdown fields (core/writer/lreader/rreader) feed the Fig. 2
// harness directly.

#include <atomic>
#include <cstdint>

namespace pint::detect {

struct Stats {
  // Access volume.
  std::atomic<std::uint64_t> raw_reads{0};
  std::atomic<std::uint64_t> raw_writes{0};
  std::atomic<std::uint64_t> read_intervals{0};
  std::atomic<std::uint64_t> write_intervals{0};

  // Computation shape.
  std::atomic<std::uint64_t> strands{0};
  std::atomic<std::uint64_t> traces{0};
  std::atomic<std::uint64_t> steals{0};
  std::atomic<std::uint64_t> reach_queries{0};

  // Time, nanoseconds.
  std::atomic<std::uint64_t> core_ns{0};     // core component (wall)
  std::atomic<std::uint64_t> writer_ns{0};   // writer treap worker busy time
  std::atomic<std::uint64_t> lreader_ns{0};  // left-most reader treap worker
  std::atomic<std::uint64_t> rreader_ns{0};  // right-most reader treap worker
  std::atomic<std::uint64_t> total_ns{0};    // whole detection run (wall)

  void clear() {
    raw_reads = raw_writes = read_intervals = write_intervals = 0;
    strands = traces = steals = reach_queries = 0;
    core_ns = writer_ns = lreader_ns = rreader_ns = total_ns = 0;
  }

  /// Plain-value snapshot for printing.
  struct Snapshot {
    std::uint64_t raw_reads, raw_writes, read_intervals, write_intervals;
    std::uint64_t strands, traces, steals, reach_queries;
    std::uint64_t core_ns, writer_ns, lreader_ns, rreader_ns, total_ns;
    double coalesce_factor() const {
      const auto raw = raw_reads + raw_writes;
      const auto iv = read_intervals + write_intervals;
      return iv == 0 ? 0.0 : double(raw) / double(iv);
    }
  };
  Snapshot snapshot() const {
    return {raw_reads.load(),      raw_writes.load(), read_intervals.load(),
            write_intervals.load(), strands.load(),    traces.load(),
            steals.load(),          reach_queries.load(), core_ns.load(),
            writer_ns.load(),       lreader_ns.load(), rreader_ns.load(),
            total_ns.load()};
  }
};

}  // namespace pint::detect
