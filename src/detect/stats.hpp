#pragma once

// Counters and component timings collected during a detection run.  The
// work-breakdown fields (core/writer/lreader/rreader) feed the Fig. 2
// harness directly.

#include <atomic>
#include <cstdint>

namespace pint::detect {

struct Stats {
  // Access volume.
  std::atomic<std::uint64_t> raw_reads{0};
  std::atomic<std::uint64_t> raw_writes{0};
  std::atomic<std::uint64_t> read_intervals{0};
  std::atomic<std::uint64_t> write_intervals{0};

  // Hot-path effectiveness (DESIGN.md §9/§11).  fastpath_accesses counts
  // raw accesses recorded through the thread-local AccessCursor;
  // fastpath_hits the subset absorbed in cursor storage (open interval +
  // pending ring - no per-access AccessBuffer touch; the bounded
  // end-of-strand drain is the hand-off, not a miss); cursor_spills the
  // complement (ring overflow / bypass / ablation add_raw events);
  // slowpath_accesses those that took the classic detector-load +
  // virtual-dispatch route.  policy_switches / policy_bypass expose the
  // per-call-site adaptive policy: mode transitions taken and accesses
  // routed by bypass-mode sites.  memo_queries/memo_hits are the history
  // workers' SP-order coordinate-memo totals (a hit = all four label
  // coordinates served from cache).
  std::atomic<std::uint64_t> fastpath_accesses{0};
  std::atomic<std::uint64_t> fastpath_hits{0};
  std::atomic<std::uint64_t> cursor_spills{0};
  std::atomic<std::uint64_t> policy_switches{0};
  std::atomic<std::uint64_t> policy_bypass{0};
  std::atomic<std::uint64_t> slowpath_accesses{0};
  std::atomic<std::uint64_t> memo_queries{0};
  std::atomic<std::uint64_t> memo_hits{0};

  // AccessBuffer::add tail-probe fast path (DESIGN.md §13).  Every add()
  // probes the last kTails stored intervals for a stream to extend before
  // appending: tail_probe_hits counts absorbed adds, tail_probe_misses the
  // appends.  Only spill/slow-route adds reach add() at all, so these
  // counters expose exactly the traffic the cursor could not absorb.
  std::atomic<std::uint64_t> tail_probe_hits{0};
  std::atomic<std::uint64_t> tail_probe_misses{0};

  // Allocation-free hot path (DESIGN.md §13).  arena_reuses / arena_fresh
  // are the per-run delta of the process-wide recycler counters (objects +
  // slabs served from a freelist vs from the system allocator; concurrent
  // detectors blur the attribution, same caveat as deep_backoffs).
  // empty_strand_skips counts strands collected with no recorded work that
  // skipped queue publication entirely.  finalize_sorted_skips counts
  // AccessBuffer seals whose items were already sorted (no sort at all);
  // finalize_simd those that took the vectorized merge.  tier_compactions /
  // tier_cold_hits are the tiered history stores' compaction sweeps and
  // cold-tier segment emissions.
  std::atomic<std::uint64_t> arena_reuses{0};
  std::atomic<std::uint64_t> arena_fresh{0};
  std::atomic<std::uint64_t> empty_strand_skips{0};
  std::atomic<std::uint64_t> finalize_sorted_skips{0};
  std::atomic<std::uint64_t> finalize_simd{0};
  std::atomic<std::uint64_t> tier_compactions{0};
  std::atomic<std::uint64_t> tier_cold_hits{0};

  // Bulk-run apply + batched lane consumption (DESIGN.md §10).  bulk_runs
  // counts *_run calls issued to a history store, bulk_run_intervals the
  // intervals they carried (ratio = average run length).  batch_drains /
  // batch_strands are the consumer lanes' head-snapshot batches and the
  // strands they drained; prefetch_issues the next-strand software
  // prefetches; deep_backoffs the Backoff waits that reached the bounded
  // sleep tier (process-wide delta attributed to the run).
  std::atomic<std::uint64_t> bulk_runs{0};
  std::atomic<std::uint64_t> bulk_run_intervals{0};
  std::atomic<std::uint64_t> batch_drains{0};
  std::atomic<std::uint64_t> batch_strands{0};
  std::atomic<std::uint64_t> prefetch_issues{0};
  std::atomic<std::uint64_t> deep_backoffs{0};

  // Computation shape.
  std::atomic<std::uint64_t> strands{0};
  std::atomic<std::uint64_t> traces{0};
  std::atomic<std::uint64_t> steals{0};
  std::atomic<std::uint64_t> reach_queries{0};

  // Pipeline pressure & degradation (robustness layer).  These make
  // overload and fault handling visible instead of silent: sustained
  // queue-full pressure shows up as stalled_pushes/backoff_pauses, shed
  // load as dropped_strands, survived allocation failures as oom_events,
  // and watchdog interventions as watchdog_trips.
  std::atomic<std::uint64_t> stalled_pushes{0};   // try_push found ring full
  std::atomic<std::uint64_t> backoff_pauses{0};   // collect() backoff waits
  std::atomic<std::uint64_t> dropped_strands{0};  // shed at the queue cap
  std::atomic<std::uint64_t> oom_events{0};       // allocation-failure falls
  std::atomic<std::uint64_t> watchdog_trips{0};   // stall interventions

  // Time, nanoseconds.
  std::atomic<std::uint64_t> core_ns{0};     // core component (wall)
  std::atomic<std::uint64_t> writer_ns{0};   // writer treap worker busy time
  std::atomic<std::uint64_t> lreader_ns{0};  // left-most reader treap worker
  std::atomic<std::uint64_t> rreader_ns{0};  // right-most reader treap worker
  std::atomic<std::uint64_t> total_ns{0};    // whole detection run (wall)

  // QUIESCENCE CONTRACT: the individual counters are atomic, so concurrent
  // fetch_add from detector workers is always safe - but clear() and
  // snapshot() are multi-field operations with no ordering between fields.
  // Calling either while a detection run is in flight yields a torn view
  // (some fields pre-, some post-update), and clear() would silently drop
  // in-flight increments.  Both may only be called at quiescence: before a
  // run starts or after PintDetector::run() has returned (all worker and
  // history threads joined - the joins publish every increment).

  void clear() {
    raw_reads = raw_writes = read_intervals = write_intervals = 0;
    fastpath_accesses = fastpath_hits = slowpath_accesses = 0;
    cursor_spills = policy_switches = policy_bypass = 0;
    memo_queries = memo_hits = 0;
    tail_probe_hits = tail_probe_misses = 0;
    arena_reuses = arena_fresh = empty_strand_skips = 0;
    finalize_sorted_skips = finalize_simd = 0;
    tier_compactions = tier_cold_hits = 0;
    bulk_runs = bulk_run_intervals = 0;
    batch_drains = batch_strands = prefetch_issues = deep_backoffs = 0;
    strands = traces = steals = reach_queries = 0;
    stalled_pushes = backoff_pauses = dropped_strands = 0;
    oom_events = watchdog_trips = 0;
    core_ns = writer_ns = lreader_ns = rreader_ns = total_ns = 0;
  }

  /// Plain-value snapshot for printing.
  struct Snapshot {
    std::uint64_t raw_reads, raw_writes, read_intervals, write_intervals;
    std::uint64_t fastpath_accesses, fastpath_hits, slowpath_accesses;
    std::uint64_t cursor_spills, policy_switches, policy_bypass;
    std::uint64_t memo_queries, memo_hits;
    std::uint64_t tail_probe_hits, tail_probe_misses;
    std::uint64_t arena_reuses, arena_fresh, empty_strand_skips;
    std::uint64_t finalize_sorted_skips, finalize_simd;
    std::uint64_t tier_compactions, tier_cold_hits;
    std::uint64_t bulk_runs, bulk_run_intervals;
    std::uint64_t batch_drains, batch_strands, prefetch_issues, deep_backoffs;
    std::uint64_t strands, traces, steals, reach_queries;
    std::uint64_t stalled_pushes, backoff_pauses, dropped_strands;
    std::uint64_t oom_events, watchdog_trips;
    std::uint64_t core_ns, writer_ns, lreader_ns, rreader_ns, total_ns;
    double coalesce_factor() const {
      const auto raw = raw_reads + raw_writes;
      const auto iv = read_intervals + write_intervals;
      return iv == 0 ? 0.0 : double(raw) / double(iv);
    }
    double fastpath_hit_rate() const {
      return fastpath_accesses == 0
                 ? 0.0
                 : double(fastpath_hits) / double(fastpath_accesses);
    }
    double memo_hit_rate() const {
      return memo_queries == 0 ? 0.0
                               : double(memo_hits) / double(memo_queries);
    }
    double avg_run_len() const {
      return bulk_runs == 0 ? 0.0
                            : double(bulk_run_intervals) / double(bulk_runs);
    }
    double avg_batch() const {
      return batch_drains == 0 ? 0.0
                               : double(batch_strands) / double(batch_drains);
    }
  };
  Snapshot snapshot() const {
    return {raw_reads.load(),         raw_writes.load(),
            read_intervals.load(),    write_intervals.load(),
            fastpath_accesses.load(), fastpath_hits.load(),
            slowpath_accesses.load(), cursor_spills.load(),
            policy_switches.load(),   policy_bypass.load(),
            memo_queries.load(),      memo_hits.load(),
            tail_probe_hits.load(),   tail_probe_misses.load(),
            arena_reuses.load(),      arena_fresh.load(),
            empty_strand_skips.load(),
            finalize_sorted_skips.load(), finalize_simd.load(),
            tier_compactions.load(),  tier_cold_hits.load(),
            bulk_runs.load(),
            bulk_run_intervals.load(), batch_drains.load(),
            batch_strands.load(),     prefetch_issues.load(),
            deep_backoffs.load(),     strands.load(),
            traces.load(),            steals.load(),
            reach_queries.load(),     stalled_pushes.load(),
            backoff_pauses.load(),    dropped_strands.load(),
            oom_events.load(),        watchdog_trips.load(),
            core_ns.load(),           writer_ns.load(),
            lreader_ns.load(),        rreader_ns.load(),
            total_ns.load()};
  }
};

}  // namespace pint::detect
