#pragma once

// Shared value types for the race detectors: byte intervals, the runtime
// access coalescer, and deferred-free records.

#include <algorithm>
#include <cstdint>
#include <vector>

#include "support/assert.hpp"

namespace pint::detect {

using addr_t = std::uint64_t;

/// Which backing store holds the access history. kTreap is the paper's
/// design; kGranuleMap is the conventional per-location hashmap, kept as an
/// ablation that isolates the data structure under the identical pipeline.
/// (Lives here rather than history.hpp so light headers - detector options,
/// the bench harness - can name it without pulling in the treap.)
enum class HistoryKind { kTreap, kGranuleMap };

/// Inclusive byte range [lo, hi].
struct Interval {
  addr_t lo = 0;
  addr_t hi = 0;
  bool operator==(const Interval&) const = default;
};

/// A heap block whose free() was deferred to the writer treap worker
/// (paper §III-F): `base` is passed to ::free, [lo, hi] is the byte range to
/// clear from the access history.
struct HeapFree {
  void* base = nullptr;
  addr_t lo = 0;
  addr_t hi = 0;
};

/// Runtime access coalescer (the STINT mechanism PINT reuses): an access
/// that extends or overlaps one of the most recent intervals is merged on
/// the fly - checking the last few entries (not just one) handles the
/// interleaved access streams of real inner loops, e.g. B[k][j] / C[i][j] in
/// a GEMM.  Everything that escapes the fast path is sort-merged when the
/// strand ends.  This is what turns per-access instrumentation into
/// per-interval access-history operations.
class AccessBuffer {
 public:
  static constexpr std::size_t kTails = 4;

  /// Records without any merging - the "no runtime coalescing" ablation.
  void add_raw(addr_t lo, addr_t hi) {
    PINT_ASSERT(lo <= hi);
    items_.push_back({lo, hi});
  }

  void add(addr_t lo, addr_t hi) {
    PINT_ASSERT(lo <= hi);
    const std::size_t n = items_.size();
    const std::size_t probes = n < kTails ? n : kTails;
    for (std::size_t t = 0; t < probes; ++t) {
      Interval& b = items_[n - 1 - t];
      if (lo >= b.lo && lo <= b.hi + 1) {  // extends / overlaps this stream
        if (hi > b.hi) b.hi = hi;
        return;
      }
    }
    items_.push_back({lo, hi});
  }

  /// Sort-merge all buffered intervals in place. After this, items() is a
  /// minimal sorted set of disjoint intervals. When `coalesce` is false the
  /// buffer is left exactly as recorded (ablation mode: every access becomes
  /// its own access-history operation, modulo the tail fast path).
  void finalize(bool coalesce = true) {
    canonical_ = coalesce || items_.size() <= 1;
    if (!coalesce || items_.size() <= 1) return;
    std::sort(items_.begin(), items_.end(),
              [](const Interval& a, const Interval& b) { return a.lo < b.lo; });
    std::size_t out = 0;
    for (std::size_t i = 1; i < items_.size(); ++i) {
      if (items_[i].lo <= items_[out].hi + 1) {
        items_[out].hi = std::max(items_[out].hi, items_[i].hi);
      } else {
        items_[++out] = items_[i];
      }
    }
    items_.resize(out + 1);
  }

  const std::vector<Interval>& items() const { return items_; }
  bool empty() const { return items_.empty(); }
  std::size_t raw_count() const { return items_.size(); }
  void clear() {
    items_.clear();
    canonical_ = false;
  }

  /// True after finalize() left items() sorted and pairwise disjoint - the
  /// precondition of the history stores' bulk *_run apply.  False until the
  /// buffer is finalized, and after a coalesce-off (raw order) finalize with
  /// more than one interval.
  bool canonical() const { return canonical_; }

 private:
  std::vector<Interval> items_;
  bool canonical_ = false;
};

inline addr_t addr_of(const void* p) {
  return reinterpret_cast<addr_t>(p);
}

}  // namespace pint::detect
