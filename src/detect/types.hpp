#pragma once

// Shared value types for the race detectors: byte intervals, the runtime
// access coalescer, and deferred-free records.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <vector>

#include "support/assert.hpp"

namespace pint::detect {

using addr_t = std::uint64_t;

/// Which backing store holds the access history. kTreap is the paper's
/// design; kGranuleMap is the conventional per-location hashmap, kept as an
/// ablation that isolates the data structure under the identical pipeline.
/// (Lives here rather than history.hpp so light headers - detector options,
/// the bench harness - can name it without pulling in the treap.)
enum class HistoryKind { kTreap, kGranuleMap };

/// Inclusive byte range [lo, hi].
struct Interval {
  addr_t lo = 0;
  addr_t hi = 0;
  bool operator==(const Interval&) const = default;
};

/// A heap block whose free() was deferred to the writer treap worker
/// (paper §III-F): `base` is passed to ::free, [lo, hi] is the byte range to
/// clear from the access history.
struct HeapFree {
  void* base = nullptr;
  addr_t lo = 0;
  addr_t hi = 0;
};

/// Global knob for the vectorized finalize path (DESIGN.md §13; pushed by
/// Tuning::apply_globals, same pattern as the bulk-apply knob).  Off routes
/// every finalize through std::sort + the scalar merge loop; results are
/// bit-identical either way because the canonical minimal disjoint set is
/// unique.
inline std::atomic<bool>& simd_merge_knob() {
  static std::atomic<bool> on{true};
  return on;
}
inline void set_simd_merge(bool on) {
  simd_merge_knob().store(on, std::memory_order_relaxed);
}
inline bool simd_merge() {
  return simd_merge_knob().load(std::memory_order_relaxed);
}

/// Which code path finalize() took for a buffer (seal-time accounting).
enum class FinalizePath : std::uint8_t {
  kNone,    ///< nothing to do (<=1 interval or coalesce off)
  kSorted,  ///< already-sorted input: merge scan only, no sort
  kScalar,  ///< std::sort + scalar merge (knob off / tiny / fallback)
  kSimd,    ///< radix bucketing + vectorized merge mask
};

/// Sort-merge `items` into the canonical minimal sorted disjoint set.
/// Implemented in detect/merge.cpp (runtime-dispatched SIMD + scalar).
FinalizePath finalize_intervals(std::vector<Interval>& items);

/// Runtime access coalescer (the STINT mechanism PINT reuses): an access
/// that extends or overlaps one of the most recent intervals is merged on
/// the fly - checking the last few entries (not just one) handles the
/// interleaved access streams of real inner loops, e.g. B[k][j] / C[i][j] in
/// a GEMM.  Everything that escapes the fast path is sort-merged when the
/// strand ends.  This is what turns per-access instrumentation into
/// per-interval access-history operations.
class AccessBuffer {
 public:
  static constexpr std::size_t kTails = 4;
  /// Shrink-to-slab bound: clear() releases backing store grown past this
  /// many intervals, so one outlier strand does not pin a huge buffer across
  /// every recycle of its Strand record (arena lifecycle, DESIGN.md §13).
  static constexpr std::size_t kSlabIntervals = 4096;

  /// Records without any merging - the "no runtime coalescing" ablation.
  void add_raw(addr_t lo, addr_t hi) {
    PINT_ASSERT(lo <= hi);
    items_.push_back({lo, hi});
  }

  void add(addr_t lo, addr_t hi) {
    PINT_ASSERT(lo <= hi);
    const std::size_t n = items_.size();
    const std::size_t probes = n < kTails ? n : kTails;
    for (std::size_t t = 0; t < probes; ++t) {
      Interval& b = items_[n - 1 - t];
      if (lo >= b.lo && lo <= b.hi + 1) {  // extends / overlaps this stream
        if (hi > b.hi) b.hi = hi;
        ++tail_hits_;
        return;
      }
    }
    ++tail_misses_;
    items_.push_back({lo, hi});
  }

  /// Sort-merge all buffered intervals in place. After this, items() is a
  /// minimal sorted set of disjoint intervals. When `coalesce` is false the
  /// buffer is left exactly as recorded (ablation mode: every access becomes
  /// its own access-history operation, modulo the tail fast path).
  /// Dispatches to detect/merge.cpp: already-sorted scan, radix + SIMD
  /// merge, or the scalar sort-merge - all producing the identical unique
  /// canonical set (fin_path() says which ran).
  void finalize(bool coalesce = true) {
    canonical_ = coalesce || items_.size() <= 1;
    fin_path_ = FinalizePath::kNone;
    if (!coalesce || items_.size() <= 1) return;
    fin_path_ = finalize_intervals(items_);
  }

  const std::vector<Interval>& items() const { return items_; }
  bool empty() const { return items_.empty(); }
  std::size_t raw_count() const { return items_.size(); }
  void clear() {
    items_.clear();
    if (items_.capacity() > kSlabIntervals) {
      std::vector<Interval> slab;
      slab.reserve(kSlabIntervals);
      items_.swap(slab);
    }
    canonical_ = false;
    fin_path_ = FinalizePath::kNone;
    tail_hits_ = tail_misses_ = 0;
  }

  /// True after finalize() left items() sorted and pairwise disjoint - the
  /// precondition of the history stores' bulk *_run apply.  False until the
  /// buffer is finalized, and after a coalesce-off (raw order) finalize with
  /// more than one interval.
  bool canonical() const { return canonical_; }

  /// Seal-time accounting, folded into Stats by the detectors and reset by
  /// clear() when the strand is recycled.
  FinalizePath fin_path() const { return fin_path_; }
  std::uint64_t tail_hits() const { return tail_hits_; }
  std::uint64_t tail_misses() const { return tail_misses_; }

 private:
  std::vector<Interval> items_;
  std::uint64_t tail_hits_ = 0;
  std::uint64_t tail_misses_ = 0;
  bool canonical_ = false;
  FinalizePath fin_path_ = FinalizePath::kNone;
};

inline addr_t addr_of(const void* p) {
  return reinterpret_cast<addr_t>(p);
}

}  // namespace pint::detect
