#pragma once

// Tiered access-history store (DESIGN.md §13): a flat sorted-array COLD tier
// under the treap HOT frontier.
//
// The treap's per-interval node churn lives in regions that are written once
// and then queried or re-carved much later; a flat sorted array serves those
// with branchless binary search and in-place trims, while the treap keeps
// absorbing the active frontier.  Compaction periodically merges the hot
// frontier into a fresh cold array (segment boundaries copied verbatim -
// never coalesced - so the stored segment structure is EXACTLY the plain
// treap's at every point).
//
// Bit-identity contract: with the tier enabled, every operation produces the
// same callback/resolver event sequence and the same resulting segment set
// as the plain IntervalTreap.  The mechanism:
//
//  * All event emission is in address order, merged two-ways across tiers
//    (stored segments are disjoint ACROSS tiers, so the merge is a zipper).
//  * Mutations vacate [lo, hi] from both tiers first (cold: in-place trims;
//    a straddling segment's right remainder moves to hot as its own node,
//    which is tier-invariant), then replay the treap's own piece-building
//    logic - including push_piece's same-sid adjacency coalescing - into
//    the hot treap.
//  * The *_run bulk APIs delegate to the per-interval loop, which is
//    bit-identical by the §10 equivalence argument.
//
// Invariants (check_invariants verifies them):
//  I1  live cold segments are sorted by lo, non-empty, pairwise disjoint;
//  I2  no byte is covered by both a live cold segment and the hot treap;
//  I3  hot ∪ cold equals the segment set (boundaries and owners included)
//      of the equivalent plain treap.
//
// Each instance is single-owner, like the treap it wraps.

#include <cstdint>
#include <vector>

#include "support/assert.hpp"
#include "treap/interval_treap.hpp"

namespace pint::detect {

class TieredHistory {
 public:
  using Accessor = treap::Accessor;
  using taddr_t = treap::addr_t;

  /// `enabled` = false makes every call a straight pass-through to the
  /// wrapped treap (the ablation / default); `compact_every` bounds how many
  /// hot inserts accumulate before a compaction sweep (tests shrink it to
  /// force compactions on small workloads).
  explicit TieredHistory(std::uint64_t seed, bool enabled = false,
                         std::size_t compact_every = 1024)
      : hot_(seed), enabled_(enabled), compact_every_(compact_every) {}

  template <class F>
  void query(taddr_t lo, taddr_t hi, F&& cb) const {
    if (!enabled_) {
      hot_.query(lo, hi, cb);
      return;
    }
    scratch_hot_.clear();
    hot_.query(lo, hi, [&](taddr_t l, taddr_t h, const Accessor& a) {
      scratch_hot_.push_back({l, h, a});
    });
    // Zipper with the cold walk, in address order.
    std::size_t hi_idx = 0;
    cold_walk(lo, hi, [&](taddr_t l, taddr_t h, const Accessor& a) {
      while (hi_idx < scratch_hot_.size() && scratch_hot_[hi_idx].lo < l) {
        const Piece& p = scratch_hot_[hi_idx++];
        cb(p.lo, p.hi, p.who);
      }
      ++cold_hits_;
      cb(l, h, a);
    });
    for (; hi_idx < scratch_hot_.size(); ++hi_idx) {
      const Piece& p = scratch_hot_[hi_idx];
      cb(p.lo, p.hi, p.who);
    }
  }

  template <class F>
  void insert_writer(taddr_t lo, taddr_t hi, const Accessor& a, F&& cb) {
    if (!enabled_) {
      hot_.insert_writer(lo, hi, a, cb);
      return;
    }
    carve_tiered(lo, hi);
    for (const Piece& p : merged_) cb(p.lo, p.hi, p.who);
    hot_insert(lo, hi, a);
    maybe_compact();
  }

  template <class R>
  void insert_reader(taddr_t lo, taddr_t hi, const Accessor& a, R&& resolve) {
    if (!enabled_) {
      hot_.insert_reader(lo, hi, a, resolve);
      return;
    }
    carve_tiered(lo, hi);
    // The treap's winner-cover construction, verbatim (interval_treap.hpp
    // insert_reader), over the merged carve output.
    pieces_.clear();
    taddr_t cursor = lo;
    bool covered_to_hi = false;
    for (const Piece& p : merged_) {
      if (p.lo > cursor) push_piece(cursor, p.lo - 1, a);
      const Accessor& w = resolve(p.who, a) ? a : p.who;
      push_piece(p.lo, p.hi, w);
      if (p.hi == hi) {  // avoids the hi+1 wrap when hi == kMaxAddr
        covered_to_hi = true;
        break;
      }
      cursor = p.hi + 1;
    }
    if (!covered_to_hi && cursor <= hi) push_piece(cursor, hi, a);
    for (const Piece& p : pieces_) hot_insert(p.lo, p.hi, p.who);
    maybe_compact();
  }

  void erase_range(taddr_t lo, taddr_t hi) {
    if (!enabled_) {
      hot_.erase_range(lo, hi);
      return;
    }
    cold_vacate(lo, hi, nullptr);
    hot_.erase_range(lo, hi);
  }

  // --- bulk sorted-run API (DESIGN.md §10) -------------------------------
  // With the tier enabled these delegate to the per-interval loop, which is
  // bit-identical to the treap's sweep by the §10 equivalence; disabled they
  // pass through to the treap's real bulk paths.

  template <class Iv, class F>
  void query_run(const Iv* iv, std::size_t k, F&& cb) const {
    if (!enabled_) {
      hot_.query_run(iv, k, cb);
      return;
    }
    for (std::size_t j = 0; j < k; ++j) query(iv[j].lo, iv[j].hi, cb);
  }

  template <class Iv, class F>
  void insert_writer_run(const Iv* iv, std::size_t k, const Accessor& a,
                         F&& cb) {
    if (!enabled_) {
      hot_.insert_writer_run(iv, k, a, cb);
      return;
    }
    for (std::size_t j = 0; j < k; ++j) insert_writer(iv[j].lo, iv[j].hi, a, cb);
  }

  template <class Iv, class R>
  void insert_reader_run(const Iv* iv, std::size_t k, const Accessor& a,
                         R&& resolve) {
    if (!enabled_) {
      hot_.insert_reader_run(iv, k, a, resolve);
      return;
    }
    for (std::size_t j = 0; j < k; ++j) {
      insert_reader(iv[j].lo, iv[j].hi, a, resolve);
    }
  }

  template <class Iv>
  void erase_run(const Iv* iv, std::size_t k) {
    if (!enabled_) {
      hot_.erase_run(iv, k);
      return;
    }
    for (std::size_t j = 0; j < k; ++j) erase_range(iv[j].lo, iv[j].hi);
  }

  // --- introspection -----------------------------------------------------

  bool empty() const { return hot_.empty() && live_cold_ == 0; }
  std::size_t size() const { return hot_.size() + live_cold_; }

  template <class F>
  void for_each(F&& cb) const {
    if (!enabled_) {
      hot_.for_each(cb);
      return;
    }
    query(0, ~taddr_t(0), cb);
  }

  bool check_invariants() const {
    if (!enabled_) return hot_.check_invariants();
    if (!hot_.check_invariants()) return false;
    taddr_t prev_hi = 0;
    bool first = true;
    std::size_t live = 0;
    for (const ColdSeg& s : cold_) {
      if (s.dead) continue;
      ++live;
      if (s.lo > s.hi) return false;                    // non-empty (I1)
      if (!first && s.lo <= prev_hi) return false;      // sorted+disjoint (I1)
      first = false;
      prev_hi = s.hi;
      bool overlap = false;                             // tier-disjoint (I2)
      hot_.query(s.lo, s.hi,
                 [&](taddr_t, taddr_t, const Accessor&) { overlap = true; });
      if (overlap) return false;
    }
    return live == live_cold_;
  }

  /// Compaction sweeps run so far / segments served from the cold tier.
  std::uint64_t compactions() const { return compactions_; }
  std::uint64_t cold_hits() const { return cold_hits_; }
  bool enabled() const { return enabled_; }

 private:
  struct Piece {
    taddr_t lo, hi;
    Accessor who;
  };
  struct ColdSeg {
    taddr_t lo, hi;
    Accessor who;
    bool dead = false;
  };

  static void hot_noop(taddr_t, taddr_t, const Accessor&) {
    PINT_ASSERT(!"tiered history: hot insert must target a vacated range");
  }

  /// Insert one segment as its own hot node.  [lo, hi] was vacated from both
  /// tiers, so the treap carve finds nothing (the callback asserts that).
  void hot_insert(taddr_t lo, taddr_t hi, const Accessor& a) {
    hot_.insert_writer(lo, hi, a, hot_noop);
    ++hot_inserts_;
  }

  /// Index of the first cold segment (live or dead) whose live predecessor
  /// cannot overlap [lo, ...): standard lower_bound by lo, then walk back to
  /// the nearest live predecessor (only it can straddle lo, by I1).
  std::size_t cold_first(taddr_t lo) const {
    std::size_t b = 0, e = cold_.size();
    while (b < e) {
      const std::size_t m = b + (e - b) / 2;
      if (cold_[m].lo < lo) {
        b = m + 1;
      } else {
        e = m;
      }
    }
    std::size_t i = b;
    while (i > 0) {
      const ColdSeg& p = cold_[i - 1];
      if (!p.dead) {
        if (p.hi >= lo) --i;  // predecessor straddles lo: include it
        break;
      }
      --i;  // dead entry: keep walking back to the live predecessor
    }
    // Skip leading dead entries so the caller starts on a candidate.
    while (i < cold_.size() && cold_[i].dead) ++i;
    return i;
  }

  /// cb(lo, hi, who) for every live cold segment part overlapping [lo, hi],
  /// trimmed, in address order.  Non-mutating.
  template <class F>
  void cold_walk(taddr_t lo, taddr_t hi, F&& cb) const {
    for (std::size_t i = cold_first(lo); i < cold_.size(); ++i) {
      const ColdSeg& s = cold_[i];
      if (s.dead) continue;
      if (s.lo > hi) break;
      if (s.hi < lo) continue;  // the straddle candidate missed
      cb(s.lo > lo ? s.lo : lo, s.hi < hi ? s.hi : hi, s.who);
    }
  }

  /// Removes all cold coverage of [lo, hi].  Trimmed-out parts are appended
  /// to *out (in address order) when non-null; a straddling segment's right
  /// remainder past hi stays cold (in-place lo trim keeps I1); a segment
  /// straddling BOTH ends keeps its left part cold and moves its right
  /// remainder to the hot treap as its own node (same two-segment structure
  /// the treap's carve leaves behind).
  void cold_vacate(taddr_t lo, taddr_t hi, std::vector<Piece>* out) {
    for (std::size_t i = cold_first(lo); i < cold_.size(); ++i) {
      ColdSeg& s = cold_[i];
      if (s.dead) continue;
      if (s.lo > hi) break;
      if (s.hi < lo) continue;
      const taddr_t cut_lo = s.lo > lo ? s.lo : lo;
      const taddr_t cut_hi = s.hi < hi ? s.hi : hi;
      if (out != nullptr) out->push_back({cut_lo, cut_hi, s.who});
      const bool left_rem = s.lo < lo;
      const bool right_rem = s.hi > hi;
      if (left_rem && right_rem) {
        hot_insert(hi + 1, s.hi, s.who);  // right half becomes a hot node
        --hot_inserts_;  // structural move, not frontier growth
        s.hi = lo - 1;
      } else if (left_rem) {
        s.hi = lo - 1;
      } else if (right_rem) {
        s.lo = hi + 1;
      } else {
        s.dead = true;
        --live_cold_;
        ++dead_cold_;
      }
    }
  }

  /// Vacates [lo, hi] from both tiers and leaves the removed coverage -
  /// trimmed, address-ordered, tier-merged - in merged_.
  void carve_tiered(taddr_t lo, taddr_t hi) {
    scratch_cold_.clear();
    cold_vacate(lo, hi, &scratch_cold_);
    scratch_hot_.clear();
    hot_.query(lo, hi, [&](taddr_t l, taddr_t h, const Accessor& a) {
      scratch_hot_.push_back({l, h, a});
    });
    if (!scratch_hot_.empty()) hot_.erase_range(lo, hi);
    cold_hits_ += scratch_cold_.size();
    merged_.clear();
    std::size_t c = 0, t = 0;
    while (c < scratch_cold_.size() && t < scratch_hot_.size()) {
      if (scratch_cold_[c].lo < scratch_hot_[t].lo) {
        merged_.push_back(scratch_cold_[c++]);
      } else {
        merged_.push_back(scratch_hot_[t++]);
      }
    }
    for (; c < scratch_cold_.size(); ++c) merged_.push_back(scratch_cold_[c]);
    for (; t < scratch_hot_.size(); ++t) merged_.push_back(scratch_hot_[t]);
  }

  /// interval_treap.hpp push_piece, verbatim coalescing rule.
  void push_piece(taddr_t lo, taddr_t hi, const Accessor& w) {
    if (!pieces_.empty() && pieces_.back().who.sid == w.sid &&
        pieces_.back().hi + 1 == lo) {
      pieces_.back().hi = hi;
    } else {
      pieces_.push_back({lo, hi, w});
    }
  }

  /// Merge the hot frontier into a fresh cold array once enough inserts
  /// accumulated (or the dead fraction grew past half).  Segment boundaries
  /// and owners are copied verbatim: the stored structure is unchanged.
  void maybe_compact() {
    if (hot_inserts_ < compact_every_ &&
        !(cold_.size() >= 64 && dead_cold_ * 2 > cold_.size())) {
      return;
    }
    scratch_hot_.clear();
    hot_.for_each([&](taddr_t l, taddr_t h, const Accessor& a) {
      scratch_hot_.push_back({l, h, a});
    });
    std::vector<ColdSeg> fresh;
    fresh.reserve(live_cold_ + scratch_hot_.size());
    std::size_t t = 0;
    for (const ColdSeg& s : cold_) {
      if (s.dead) continue;
      while (t < scratch_hot_.size() && scratch_hot_[t].lo < s.lo) {
        fresh.push_back({scratch_hot_[t].lo, scratch_hot_[t].hi,
                         scratch_hot_[t].who, false});
        ++t;
      }
      fresh.push_back(s);
    }
    for (; t < scratch_hot_.size(); ++t) {
      fresh.push_back(
          {scratch_hot_[t].lo, scratch_hot_[t].hi, scratch_hot_[t].who, false});
    }
    cold_.swap(fresh);
    live_cold_ = cold_.size();
    dead_cold_ = 0;
    hot_.clear();
    hot_inserts_ = 0;
    ++compactions_;
  }

  treap::IntervalTreap hot_;
  bool enabled_;
  std::size_t compact_every_;
  std::vector<ColdSeg> cold_;
  std::size_t live_cold_ = 0;
  std::size_t dead_cold_ = 0;
  std::size_t hot_inserts_ = 0;
  std::uint64_t compactions_ = 0;
  mutable std::uint64_t cold_hits_ = 0;
  mutable std::vector<Piece> scratch_hot_;
  std::vector<Piece> scratch_cold_;
  std::vector<Piece> merged_;
  std::vector<Piece> pieces_;
};

}  // namespace pint::detect
