#pragma once

// One struct for every cross-cutting detector knob (DESIGN.md §12.5).
//
// The bulk-apply, access-fast-path and cursor-policy toggles are process
// globals (they live next to the thread-local cursor machinery); the memo
// and lock-edge toggles are per-detector.  Tuning gathers all of them so
// callers set knobs in ONE place - `options.tuning.bulk_apply = false` -
// instead of hunting for per-subsystem setters, and so the environment
// override (PINT_TUNING=...) is parsed in one place instead of three.
//
// Lifecycle: a default-constructed Tuning snapshots the LIVE globals plus
// the PINT_TUNING overlay, so `CommonOptions` built after a test flipped a
// legacy setter still honors that setter.  Detector::run() calls
// apply_globals() at start (quiescence: the scheduler is not running yet),
// which writes the global knobs back - a no-op unless the caller edited the
// struct.

#include "detect/instrument.hpp"

namespace pint::detect {

struct Tuning {
  /// Sorted-run bulk treap apply (DESIGN.md §10).  Global knob.
  bool bulk_apply = true;
  /// Thread-local AccessCursor fast path (DESIGN.md §9).  Global knob.
  bool access_fast_path = true;
  /// Cursor miss-path policy (DESIGN.md §11).  Global knob.
  CursorPolicy cursor_policy = CursorPolicy::kAdaptive;
  /// Per-lane relation() memo caches (DESIGN.md §11.2).  Per-detector: off
  /// means the detector passes null memos, the bit-identity ablation.
  bool memo = true;
  /// Lock-aware detection (DESIGN.md §12): handle the lock hooks and filter
  /// conflicts whose segments share a mutex.  Per-detector: off ignores
  /// lock events entirely (records keep lsid 0, the pre-lock behavior).
  bool lock_edges = true;
  /// Arena-batched allocation (DESIGN.md §13): strand/trace/chunk pools and
  /// treap node chunks draw from process-wide recyclers and retire
  /// wholesale.  Global knob; changes allocation provenance only, never
  /// stored bytes - results are bit-identical either way.
  bool arena = true;
  /// Tiered history (DESIGN.md §13): each history lane keeps a flat sorted
  /// cold tier under the treap hot frontier.  Per-detector: read at
  /// construction (the stores are built in the constructor).  Off by
  /// default: the tier wins on query-dominated stores and is measured by
  /// micro_treap; the kernel suite is rewrite-heavy.
  bool tier = false;
  /// SIMD/branchless AccessBuffer::finalize (DESIGN.md §13): sortedness
  /// detector + radix bucketing + AVX2 merge mask, runtime-dispatched with
  /// a bit-identical scalar fallback.  Global knob.
  bool simd = true;

  /// Snapshot of the live global knobs + per-detector defaults.
  static Tuning current();

  /// current() overlaid with the PINT_TUNING environment variable, e.g.
  ///   PINT_TUNING=bulk=off,cursor=wide,memo=on,locks=off,arena=off,simd=off
  /// Unknown keys/values warn once on stderr and are ignored.
  static Tuning from_env();

  /// Overlay a spec string ("bulk=off,cursor=adaptive,...") onto `base`.
  static Tuning parse(const char* spec, Tuning base);

  /// Push the global knobs (bulk_apply / access_fast_path / cursor_policy /
  /// arena / simd) into their process globals.  Call only at quiescence.
  void apply_globals() const;

  bool operator==(const Tuning&) const = default;
};

}  // namespace pint::detect
