#pragma once

// The unified detector run API.
//
// Every detector in the repo (PINT, STINT, C-RACER, the test oracle) runs a
// task-parallel program to completion and leaves behind a race report plus
// counters.  This header is the one seam through which callers drive any of
// them: `run()` returns the shared `RunResult`, and `DetectorRunner` is the
// minimal interface the bench harness and tests dispatch through instead of
// per-system switch branches.
//
// `RunStatus`/`RunResult` originated as PINT's degradation report (see
// DESIGN.md "Failure model & degradation"); the synchronous detectors cannot
// degrade and always return kOk, which is exactly what makes the shared type
// safe: callers check `ok()` uniformly and only PINT ever says otherwise.

#include <cstdint>
#include <functional>

#include "detect/report.hpp"
#include "detect/stats.hpp"
#include "detect/tuning.hpp"
#include "detect/types.hpp"

namespace pint::detect {

/// Terminal status of one detection run.  Anything other than kOk means the
/// pipeline degraded; the reporter/stats still describe whatever detection
/// work completed.
enum class RunStatus : std::uint8_t {
  kOk = 0,
  /// An allocation failed (strand/trace/chunk pool, or the sequential-mode
  /// ring cap was hit).  The run completed by draining the pipeline and/or
  /// shedding strands; detection results cover the surviving strands.
  kOutOfMemory = 1,
  /// The watchdog found a busy pipeline stage silent past its deadline,
  /// dumped a progress snapshot to the error sink, and cancelled the
  /// history pipeline so run() could return instead of hanging.
  kStalled = 2,
};

struct RunResult {
  RunStatus status = RunStatus::kOk;
  /// History threads could not be spawned; the run fell back to the
  /// paper's sequential one-core history mode (status stays kOk - the
  /// detection itself is complete and exact).
  bool degraded_sequential_history = false;
  bool watchdog_tripped = false;
  /// Strands shed at the sequential-mode ring cap (kOutOfMemory only).
  std::uint64_t dropped_strands = 0;

  bool ok() const { return status == RunStatus::kOk; }
  const char* status_name() const {
    switch (status) {
      case RunStatus::kOk: return "ok";
      case RunStatus::kOutOfMemory: return "out-of-memory";
      case RunStatus::kStalled: return "stalled";
    }
    return "?";
  }
};

/// Options every detector shares.  Each detector's `Options` derives from
/// this, so callers keep writing `o.coalesce = ...` while the harness can
/// fill the common knobs without knowing which detector it holds.  Detectors
/// that have no use for a field ignore it (C-RACER checks per access, so
/// `coalesce`/`history` are inert there; the oracle ignores everything but
/// `stack_bytes`).
struct CommonOptions {
  /// Runtime coalescing of accesses into intervals (ablation knob).
  bool coalesce = true;
  /// Access-history store: the paper's interval treap, or a per-granule
  /// hashmap under the identical pipeline (ablation knob).
  HistoryKind history = HistoryKind::kTreap;
  std::size_t stack_bytes = std::size_t(1) << 18;
  bool verbose_races = false;
  std::uint64_t seed = 42;
  /// Cross-cutting knobs (DESIGN.md §12.5).  Defaults to the live globals +
  /// the PINT_TUNING overlay at construction; run() applies the global
  /// subset back, so editing this struct is the one place to tune a run.
  Tuning tuning = Tuning::from_env();
};

/// The dispatch seam: run a program under detection, harvest the results.
/// Implementations are single-use - construct, run once, read reporter and
/// stats, destroy.
class DetectorRunner {
 public:
  virtual ~DetectorRunner() = default;
  /// Executes fn() to completion under race detection.
  virtual RunResult run(std::function<void()> fn) = 0;
  virtual RaceReporter& reporter() = 0;
  virtual const Stats& stats() const = 0;
  virtual const char* name() const = 0;
};

}  // namespace pint::detect
