#pragma once

// Interned locksets for epoch×lockset race filtering (DESIGN.md §12).
//
// Each strand segment carries a compact `lockset_t` id naming the exact set
// of mutexes held while its accesses were recorded (0 = no locks, the
// overwhelmingly common case).  History records inherit the id through
// `treap::Accessor` / the shadow cells, and the conflict paths suppress a
// report when both sides' segments share a lock - two parallel accesses
// guarded by a common mutex are not a race (PWR-style lockset reasoning,
// layered over the interval machinery instead of replacing it).
//
// Ids are interned process-wide in a LocksetTable: acquire/release are rare
// control events, so the transitions run under one spinlock; the id -> set
// mapping is append-only chunked storage readable lock-free from the history
// lanes, and `intersects` pairs are memoized in a small direct-mapped atomic
// cache.  When no program locks exist the whole feature costs two integer
// compares per conflict candidate.

#include <cstdint>
#include <vector>

#include "detect/types.hpp"

namespace pint::detect {

/// Interned lockset id.  0 is the empty set and is never interned.
using lockset_t = std::uint32_t;

class LocksetTable {
 public:
  /// Process-wide table (ids must mean the same set in every detector that
  /// ran in this process - race reports and the oracle compare across runs).
  static LocksetTable& instance();

  /// Id of `cur` ∪ {lock}.  Returns `cur` when the lock is already held
  /// (recursive acquire).  Thread-safe; intended for control events only.
  lockset_t acquire(lockset_t cur, addr_t lock);

  /// Id of `cur` ∖ {lock}.  Returns `cur` when the lock is not in the set
  /// (unmatched release), 0 when the set becomes empty.
  lockset_t release(lockset_t cur, addr_t lock);

  /// Do the two sets share at least one lock?  Lock-free (callable from
  /// every history lane concurrently); both ids must have been published to
  /// this thread via a happens-before edge, which the strand hand-off queues
  /// already provide.
  bool intersects(lockset_t a, lockset_t b) const;

  /// The sorted lock addresses of an interned id (test/debug use).
  const std::vector<addr_t>& locks(lockset_t id) const;

  /// Number of interned sets, counting the implicit empty set as id 0.
  std::size_t size() const;

 private:
  LocksetTable();
  struct Impl;
  Impl* impl_;
};

/// The conflict-path filter: true iff both segments held a common lock.
/// First two compares are the no-locks fast path - `a` and `b` are 0 for
/// every record of a lock-free program.
inline bool locksets_share(lockset_t a, lockset_t b) {
  if (a == 0 || b == 0) return false;
  if (a == b) return true;
  return LocksetTable::instance().intersects(a, b);
}

}  // namespace pint::detect
