#pragma once

// Race reporting: thread-safe, deduplicated by strand pair.
//
// Per the paper's guarantee (Theorem 5), a detector must report *a* race
// between a pair of strands iff a race exists; the exact set of reported
// pairs may differ between detectors and schedules.  Tests therefore check
// (a) the any-race boolean and (b) that every reported pair is a true racing
// pair per the oracle.

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <unordered_set>
#include <vector>

#include "detect/types.hpp"
#include "support/spinlock.hpp"

namespace pint::detect {

struct RaceRecord {
  std::uint64_t prev_sid = 0;  // strand already in the access history
  std::uint64_t cur_sid = 0;   // strand whose access triggered the report
  bool prev_write = false;
  bool cur_write = false;
  addr_t lo = 0;
  addr_t hi = 0;
  const char* prev_tag = nullptr;  // task names from named spawns, if any
  const char* cur_tag = nullptr;
};

class RaceReporter {
 public:
  explicit RaceReporter(std::size_t max_records = 256)
      : max_records_(max_records) {}

  void report(std::uint64_t prev_sid, bool prev_write, std::uint64_t cur_sid,
              bool cur_write, addr_t lo, addr_t hi,
              const char* prev_tag = nullptr, const char* cur_tag = nullptr) {
    raw_reports_.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t key = pair_key(prev_sid, cur_sid, prev_write, cur_write);
    LockGuard<Spinlock> g(mu_);
    if (!dedup_.insert(key).second) return;
    distinct_.fetch_add(1, std::memory_order_relaxed);
    if (records_.size() < max_records_) {
      records_.push_back({prev_sid, cur_sid, prev_write, cur_write, lo, hi,
                          prev_tag, cur_tag});
    } else {
      // Counting continues above; make the record truncation itself
      // observable instead of silently capping the detail a caller sees.
      dropped_.fetch_add(1, std::memory_order_relaxed);
    }
    if (verbose_) {
      std::fprintf(stderr,
                   "RACE: strand %llu '%s' (%s) with strand %llu '%s' (%s) on "
                   "[0x%llx, 0x%llx]\n",
                   (unsigned long long)prev_sid,
                   prev_tag ? prev_tag : "<unnamed>",
                   prev_write ? "write" : "read", (unsigned long long)cur_sid,
                   cur_tag ? cur_tag : "<unnamed>",
                   cur_write ? "write" : "read", (unsigned long long)lo,
                   (unsigned long long)hi);
    }
  }

  bool any() const { return distinct_.load(std::memory_order_acquire) != 0; }
  std::uint64_t distinct_races() const {
    return distinct_.load(std::memory_order_acquire);
  }
  std::uint64_t raw_reports() const {
    return raw_reports_.load(std::memory_order_acquire);
  }
  /// Distinct races whose detail record was shed once max_records was hit
  /// (distinct_races() keeps counting; records() holds the first
  /// max_records of them).
  std::uint64_t dropped_records() const {
    return dropped_.load(std::memory_order_acquire);
  }
  std::vector<RaceRecord> records() const {
    LockGuard<Spinlock> g(mu_);
    return records_;
  }
  void set_verbose(bool v) { verbose_ = v; }
  void clear() {
    LockGuard<Spinlock> g(mu_);
    records_.clear();
    dedup_.clear();
    distinct_.store(0);
    raw_reports_.store(0);
    dropped_.store(0);
  }

 private:
  static std::uint64_t pair_key(std::uint64_t a, std::uint64_t b, bool aw,
                                bool bw) {
    // Symmetric in the pair but keeps the kind bits.
    if (a > b) std::swap(a, b);
    std::uint64_t h = a * 0x9e3779b97f4a7c15ULL;
    h ^= b + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    return (h << 2) | (std::uint64_t(aw) << 1) | std::uint64_t(bw);
  }

  const std::size_t max_records_;
  mutable Spinlock mu_;
  std::unordered_set<std::uint64_t> dedup_;
  std::vector<RaceRecord> records_;
  std::atomic<std::uint64_t> distinct_{0};
  std::atomic<std::uint64_t> raw_reports_{0};
  std::atomic<std::uint64_t> dropped_{0};
  bool verbose_ = false;
};

}  // namespace pint::detect
