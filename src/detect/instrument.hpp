#pragma once

// Instrumentation facade - what the Tapir compiler pass provides in the
// paper's setup, exposed here as an explicit API the benchmark kernels call.
//
//   pint::record_read(p, n) / record_write(p, n)  - a memory access
//   pint::dmalloc(n) / dfree(p)                   - detector-aware heap
//
// With no active detector every call is a cheap early-out, which is how the
// "baseline" rows of the evaluation tables are measured (same binary, same
// call sites, detection off).
//
// All functions are defined out-of-line (instrument.cpp): they read
// thread-local state and must never be inlined across a spawn/sync where
// the calling code can migrate between OS threads.

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace pint {

namespace detail {
/// True while a detector is installed. Read inline so that the "baseline"
/// configuration (detection off) pays only a predictable test-and-branch per
/// call site, mirroring an uninstrumented build.
extern std::atomic<bool> g_instrumentation_on;
void record_access_slow(const void* p, std::size_t bytes, bool write);
}  // namespace detail

inline void record_read(const void* p, std::size_t bytes) {
  if (!detail::g_instrumentation_on.load(std::memory_order_relaxed)) return;
  detail::record_access_slow(p, bytes, false);
}
inline void record_write(const void* p, std::size_t bytes) {
  if (!detail::g_instrumentation_on.load(std::memory_order_relaxed)) return;
  detail::record_access_slow(p, bytes, true);
}

/// Typed helpers for single loads/stores.
template <class T>
inline T iload(const T& ref) {
  record_read(&ref, sizeof(T));
  return ref;
}
template <class T>
inline void istore(T& ref, const T& v) {
  record_write(&ref, sizeof(T));
  ref = v;
}

/// Detector-aware heap allocation. dfree clears the block's access history
/// (synchronously or deferred, per the active detector) before the memory
/// can be reused; using plain free() under a detector risks false races
/// through allocator reuse (paper §III-F).
void* dmalloc(std::size_t bytes);
void dfree(void* p);

}  // namespace pint
