#pragma once

// Instrumentation facade - what the Tapir compiler pass provides in the
// paper's setup, exposed here as an explicit API the benchmark kernels call.
//
//   pint::record_read(p, n) / record_write(p, n)  - a memory access
//   pint::dmalloc(n) / dfree(p)                   - detector-aware heap
//
// With no active detector every call is a cheap early-out, which is how the
// "baseline" rows of the evaluation tables are measured (same binary, same
// call sites, detection off).
//
// Fast path (DESIGN.md §9): while a strand executes, the detector installs a
// thread-local AccessCursor pointing straight at the strand's read/write
// AccessBuffers.  record_read/record_write then coalesce inline against a
// last-interval cache - no detector load, no worker lookup, no virtual call.
// The cursor is installed at every strand begin and invalidated (flushed)
// at every strand end, so between install and invalidate the owning OS
// thread never changes (strand boundaries are exactly the scheduler's
// migration points).
//
// All recording functions are defined out-of-line (instrument.cpp): they
// read thread-local state and must never be inlined across a spawn/sync
// where the calling code can migrate between OS threads.  The inline
// wrappers below only test constants and one global flag - nothing
// thread-local - before making the (noinline) call.

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace pint {

namespace detail {
/// True while a detector is installed. Read inline so that the "baseline"
/// configuration (detection off) pays only a predictable test-and-branch per
/// call site, mirroring an uninstrumented build.
extern std::atomic<bool> g_instrumentation_on;
/// Dispatch: takes the AccessCursor fast path when one is installed on this
/// thread, else falls through to the classic detector route.  noinline so
/// the thread-local cursor is re-derived on every call (fiber migration).
/// The per-lane entry points fold the read/write lane into the cursor's
/// TLS displacement at compile time (the wrappers below always know the
/// lane); the bool form dispatches for callers that don't.
void record_access_read(const void* p, std::size_t bytes);
void record_access_write(const void* p, std::size_t bytes);
void record_access(const void* p, std::size_t bytes, bool write);
/// The classic route (atomic detector load + worker lookup + virtual
/// on_access).  Kept callable directly so benchmarks can measure the fast
/// path against it; `set_access_fast_path(false)` forces every access here.
void record_access_slow(const void* p, std::size_t bytes, bool write);
}  // namespace detail

inline void record_read(const void* p, std::size_t bytes) {
  if (bytes == 0) return;  // zero-length: never crosses the call boundary
  if (!detail::g_instrumentation_on.load(std::memory_order_relaxed)) return;
  detail::record_access_read(p, bytes);
}
inline void record_write(const void* p, std::size_t bytes) {
  if (bytes == 0) return;  // zero-length: never crosses the call boundary
  if (!detail::g_instrumentation_on.load(std::memory_order_relaxed)) return;
  detail::record_access_write(p, bytes);
}

/// Typed helpers for single loads/stores.
template <class T>
inline T iload(const T& ref) {
  record_read(&ref, sizeof(T));
  return ref;
}
template <class T>
inline void istore(T& ref, const T& v) {
  record_write(&ref, sizeof(T));
  ref = v;
}

/// Detector-aware heap allocation. dfree clears the block's access history
/// (synchronously or deferred, per the active detector) before the memory
/// can be reused; using plain free() under a detector risks false races
/// through allocator reuse (paper §III-F).
void* dmalloc(std::size_t bytes);
void dfree(void* p);

/// Lock hooks (DESIGN.md §12) - what the compiler pass would emit around
/// mutex operations.  Call lock_acquire AFTER the real acquire succeeds and
/// lock_release BEFORE the real release, so the recorded critical section
/// nests inside the real one; the mutex's address is its identity.  With no
/// active detector both are the same cheap early-out as record_read.
void lock_acquire(const void* mutex);
void lock_release(const void* mutex);

extern "C" {
/// C-linkage spellings for instrumented builds (the Tapir-style pass emits
/// calls to these symbols).
void __pint_lock_acquire(void* mutex);
void __pint_lock_release(void* mutex);
}

/// RAII critical section: acquires the real lock, then records the acquire;
/// records the release, then releases the real lock.  The shape every
/// lock-aware kernel uses.
template <class Mutex>
class InstrumentedLockGuard {
 public:
  explicit InstrumentedLockGuard(Mutex& m) : m_(m) {
    m_.lock();
    lock_acquire(&m_);
  }
  ~InstrumentedLockGuard() {
    lock_release(&m_);
    m_.unlock();
  }
  InstrumentedLockGuard(const InstrumentedLockGuard&) = delete;
  InstrumentedLockGuard& operator=(const InstrumentedLockGuard&) = delete;

 private:
  Mutex& m_;
};

namespace detect {

class AccessBuffer;

/// What cursor_invalidate() hands back to the detector: the raw-access
/// counts recorded through the cursor since install, how many of them were
/// absorbed in cursor storage (open interval + pending ring - no per-access
/// AccessBuffer touch; the bounded end-of-strand drain is the normal
/// hand-off, not a miss), and the adaptive-policy activity (spills = the
/// per-access buffer touches that did happen, whether ring overflow or
/// bypass; bypassed = the subset routed by a bypass-mode site; switches =
/// per-site policy transitions taken while this strand ran).
struct CursorFlush {
  std::uint64_t raw_reads = 0;
  std::uint64_t raw_writes = 0;
  std::uint64_t hits = 0;
  std::uint64_t spills = 0;
  std::uint64_t bypassed = 0;
  std::uint64_t policy_switches = 0;
};

/// Installs this thread's AccessCursor over the given strand buffers.  Any
/// previously installed cursor is flushed first (its counts are dropped -
/// detectors always invalidate before installing, so that path only guards
/// against misuse).  No-op while the fast path is globally disabled.
void cursor_install(AccessBuffer* reads, AccessBuffer* writes, bool coalesce);

/// Flushes the cursor's cached intervals into the strand buffers, detaches
/// it, and returns the counters accumulated since install.  Must run on the
/// thread that owns the strand (detectors call it from the scheduler hooks
/// that end the strand, which always run there).  Safe to call with no
/// cursor installed (returns zeros).
CursorFlush cursor_invalidate();

/// Hard reset: drop the cursor without flushing.  Only for thread entry /
/// defensive use where no strand can be current.
void cursor_reset();

bool cursor_installed();

/// Global knob (tests / benchmarks): false routes every access through
/// record_access_slow, exactly the pre-cursor behavior.  Default true.
/// Flip only at quiescence (no detection run in flight).
void set_access_fast_path(bool on);
bool access_fast_path();

/// Cursor miss-path policy (DESIGN.md §11).  kAdaptive (the default) lets a
/// per-call-site stride predictor pick between the three fixed modes; the
/// fixed values force one mode at every site - ablation / bit-identity
/// knobs, exactly like set_access_fast_path.  Any policy yields identical
/// race reports: every route funnels into the same AccessBuffer, whose
/// finalize() sort-merge is invariant under intermediate merge policy.
/// Flip only at quiescence.
enum class CursorPolicy : std::uint8_t {
  kAdaptive = 0,  // per-site state machine (inline -> wide -> bypass)
  kInline = 1,    // always the base pending ring (the PR 4 behavior)
  kWide = 2,      // always the widened pending ring
  kBypass = 3,    // every miss goes straight to AccessBuffer::add
};
void set_cursor_policy(CursorPolicy p);
CursorPolicy cursor_policy();
const char* cursor_policy_name(CursorPolicy p);

/// Clears the calling thread's per-site policy table (tests: deterministic
/// counter runs).  Worker threads' tables are untouched; policy state never
/// affects verdicts, only where misses are routed.
void cursor_policy_reset();

}  // namespace detect

}  // namespace pint
