#include "detect/instrument.hpp"

#include <atomic>
#include <cstdlib>

#include "detect/detector.hpp"
#include "detect/types.hpp"
#include "runtime/scheduler.hpp"
#include "support/assert.hpp"

namespace pint {

namespace {

std::atomic<detect::Detector*> g_active{nullptr};

// Global fast-path switch (tests/benchmarks).  Checked only at install time:
// with the knob off no cursor ever becomes installed, so the per-access
// dispatch needs no extra load.
std::atomic<bool> g_fast_path{true};

// dmalloc header: remembers the user size so dfree knows the range to clear.
struct BlockHeader {
  std::size_t user_bytes;
  std::uint64_t magic;
};
constexpr std::uint64_t kBlockMagic = 0xD17EC70BA110CULL;
constexpr std::size_t kHeaderBytes = 16;
static_assert(sizeof(BlockHeader) <= kHeaderBytes);

// ---------------------------------------------------------------------------
// AccessCursor (DESIGN.md §9)
// ---------------------------------------------------------------------------
//
// One per OS thread.  Owned by at most one strand at a time: detectors
// install it when a strand begins executing on this thread and invalidate it
// at the strand's end (spawn / sync / return / steal boundaries).  Between
// those two hook calls the strand cannot migrate - the scheduler only moves
// work at exactly those boundaries - so everything below is single-threaded
// by construction and needs no atomics.
//
// Per lane (reads / writes) the cursor keeps the STINT tail-probing shape
// entirely in cursor storage: one open interval extended in the common case,
// plus a small pending ring standing in for AccessBuffer::kTails streams.
// Only when all of those miss does an interval spill into the strand's
// AccessBuffer.  Any intermediate merge policy yields the same final
// interval set: AccessBuffer::finalize() sort-merges to the minimal disjoint
// cover when the strand is sealed.

// The per-access hit path is a single extension predicate against the open
// interval, so the cursor is laid out around it: the open intervals and raw
// counters for both lanes share the first (64-byte aligned) cache line and
// are indexed directly by `write`; everything rarer lives behind them and is
// only touched by the noinline miss path.
//
// Two sentinel encodings of the open interval keep the hit path free of
// state branches (the predicate is `lo >= open.lo && lo <= open.hi + 1`):
//
//   empty       lo = ~0, hi = ~0 - 1   matches only an access at address ~0,
//                                      which extension then records exactly;
//   never-match lo = 1,  hi = ~0       hi + 1 wraps to 0, so no address
//                                      satisfies both comparisons.
//
// "Never-match" stands in for cursor-not-installed AND for the coalesce-off
// ablation: either way every access falls into the miss path, which sorts
// out which of the two it was.
struct alignas(64) AccessCursor {
  // kPend + the open interval = AccessBuffer::kTails interleaved streams
  // (the base ring); kWidePend is the widened ring the adaptive policy can
  // grant a site whose strided miss traffic overflows the base ring.
  static constexpr unsigned kPend = detect::AccessBuffer::kTails - 1;
  static constexpr unsigned kWidePend = 12;

  // --- hot line: open interval + raw counters, indexed by `write` ---
  detect::addr_t lo[2] = {1, 1};
  detect::addr_t hi[2] = {~detect::addr_t(0), ~detect::addr_t(0)};
  std::uint64_t raw[2] = {0, 0};

  // --- miss-path state ---
  std::uint64_t spilled = 0;   // per-access buffer touches; hits = raw - spilled
  std::uint64_t bypassed = 0;  // subset of spilled routed by bypass sites
  std::uint64_t switches = 0;  // per-site policy transitions since install
  detect::AccessBuffer* out[2] = {nullptr, nullptr};
  detect::Interval pend[2][kWidePend] = {};
  unsigned npend[2] = {0, 0};
  bool coalesce = true;
  bool installed = false;

  void set_open_empty(int lane) {
    lo[lane] = ~detect::addr_t(0);
    hi[lane] = ~detect::addr_t(0) - 1;
  }
  void set_never_match(int lane) {
    lo[lane] = 1;
    hi[lane] = ~detect::addr_t(0);
  }
  bool open_empty(int lane) const { return lo[lane] > hi[lane]; }
};

thread_local AccessCursor t_cursor;

// ---------------------------------------------------------------------------
// Per-call-site adaptive policy (DESIGN.md §11)
// ---------------------------------------------------------------------------
//
// Keyed by the kernel-side call site of record_read/record_write (the
// return address of the noinline entry point - the inline wrappers melt
// into the kernel, so this is a stable per-instruction key).  All state is
// thread-local and touched only on the MISS path; the hit path is exactly
// the PR 4 predicate.  A site's stride predictor and windowed spill rate
// drive a three-mode machine:
//
//   INLINE --(spill-heavy window, strided)--> WIDE
//   INLINE --(spill-heavy window, irregular)--> BYPASS
//   WIDE   --(spill-heavy window)--> BYPASS     (widening didn't help)
//   WIDE   --(spill-light window)--> INLINE     (de-escalate)
//   BYPASS --(lease expires)--> INLINE          (probation retry)
//
// Mode changes where misses are routed, never what is recorded: every
// route lands in the strand's AccessBuffer before the seal, and finalize()
// canonicalizes - so verdicts are policy-invariant by construction.
enum : std::uint8_t { kModeInline = 0, kModeWide = 1, kModeBypass = 2 };

constexpr std::uint64_t kRawWindow = 4096;   // raw accesses per decision
constexpr std::uint16_t kStridedStreak = 8;  // "regular" stride threshold
constexpr std::uint32_t kBypassLease = 4096;  // miss events before probation

struct SiteState {
  const void* site = nullptr;
  std::uint8_t mode = kModeInline;
  std::uint16_t events = 0;  // demote-stage miss events in the window
  std::uint16_t spills = 0;  // of which spilled to the AccessBuffer
  std::uint16_t streak = 0;  // consecutive equal non-zero strides
  std::uint32_t lease = 0;   // remaining bypass-mode miss events
  detect::addr_t last_lo = 0;
  std::int64_t stride = 0;
  std::uint64_t raw_mark = 0;  // cursor raw total at window start
};

constexpr std::size_t kSiteSlots = 64;
struct SiteTable {
  SiteState s[kSiteSlots];
};
thread_local SiteTable t_sites;

std::atomic<detect::CursorPolicy> g_policy{detect::CursorPolicy::kAdaptive};

SiteState* site_state(const void* site) {
  const auto x = std::uint64_t(reinterpret_cast<std::uintptr_t>(site));
  SiteState& st =
      t_sites.s[std::size_t((x >> 2) * 0x9e3779b97f4a7c15ULL >> 32) &
                (kSiteSlots - 1)];
  if (PINT_UNLIKELY(st.site != site)) {
    st = SiteState{};  // direct-mapped: a colliding site steals the slot
    st.site = site;
  }
  return &st;
}

// Advances the site's predictor by one miss event and returns the mode to
// use for it.  Window decisions run on the *completed* window before the
// event is counted.
std::uint8_t site_advance(SiteState* st, AccessCursor& c, detect::addr_t lo) {
  if (st->mode == kModeBypass) {
    if (st->lease == 0 || --st->lease == 0) {
      st->mode = kModeInline;  // probation: re-try the ring
      st->events = st->spills = st->streak = 0;
      ++c.switches;
    }
    return st->mode;
  }
  const auto stride = std::int64_t(lo - st->last_lo);
  st->last_lo = lo;
  if (stride == st->stride && stride != 0) {
    if (st->streak < 0xffff) ++st->streak;
  } else {
    st->stride = stride;
    st->streak = 1;
  }
  const std::uint64_t raw_now = c.raw[0] + c.raw[1];
  if (st->events == 0) st->raw_mark = raw_now;
  // Decision windows span kRawWindow RAW accesses, not N miss events: a
  // window keyed on miss events oversamples bursts (mmul's spills cluster
  // at tile boundaries, so 64 demote events can arrive within a few hundred
  // accesses and look "heavy" while the overall spill rate is ~4%).  Only
  // when spills are a sizable fraction of all traffic over a full window is
  // the cursor demonstrably not absorbing.  raw is cursor-wide (the hit
  // path is siteless by design), so a busy well-absorbed neighbor site can
  // mask a bad one - acceptable: then the bad site's spills are a small
  // share of traffic anyway.  The raw counters reset at cursor_install, so
  // a window spanning strands can see raw_now < raw_mark; the unsigned wrap
  // makes the delta huge and the verdict "very light", a conservative
  // de-escalation.
  const std::uint64_t raw_delta = raw_now - st->raw_mark;
  if (raw_delta >= kRawWindow) {
    const bool heavy = std::uint64_t(st->spills) * 8 >= raw_delta;
    // De-escalation hysteresis: WIDE drops back to INLINE only when spills
    // are near-absent, else a wide ring that is merely coping would flip
    // back, re-create the heaviness, and oscillate.
    const bool vlight = std::uint64_t(st->spills) * 64 <= raw_delta;
    if (st->mode == kModeInline && heavy) {
      st->mode = st->streak >= kStridedStreak ? kModeWide : kModeBypass;
      if (st->mode == kModeBypass) st->lease = kBypassLease;
      ++c.switches;
    } else if (st->mode == kModeWide) {
      if (heavy) {
        st->mode = kModeBypass;
        st->lease = kBypassLease;
        ++c.switches;
      } else if (vlight) {
        st->mode = kModeInline;
        ++c.switches;
      }
    }
    st->events = st->spills = 0;
    st->raw_mark = raw_now;
  }
  ++st->events;
  return st->mode;
}

void flush_lane(AccessCursor& c, int lane) {
  if (c.out[lane] == nullptr) return;
  if (c.coalesce) {
    // In ablation mode open/pend never hold data (never-match sentinel
    // routes every access straight to add_raw), so there is nothing to
    // drain - and the sentinel must not be emitted as an interval.
    if (!c.open_empty(lane)) c.out[lane]->add(c.lo[lane], c.hi[lane]);
    for (unsigned i = 0; i < c.npend[lane]; ++i) {
      c.out[lane]->add(c.pend[lane][i].lo, c.pend[lane][i].hi);
    }
  }
  c.set_never_match(lane);
  c.npend[lane] = 0;
  c.out[lane] = nullptr;
}

// The cursor miss path: uninstalled dispatch and the ablation mode first
// (both were folded into the hit predicate via the never-match sentinel),
// then the per-site policy decision, then the pending streams, then demote
// the open interval (spilling the oldest pending entries past the mode's
// ring capacity) and open a fresh interval for this access.  `site` is the
// kernel-side call site (return address of the noinline entry point).
PINT_NOINLINE void cursor_record_miss(AccessCursor& c, detect::addr_t lo,
                                      detect::addr_t hi, bool write,
                                      const void* site) {
  if (PINT_UNLIKELY(!c.installed)) {
    detail::record_access_slow(reinterpret_cast<const void*>(lo),
                               hi - lo + 1, write);
    return;
  }
  if (PINT_UNLIKELY(!c.coalesce)) {
    c.out[write]->add_raw(lo, hi);  // ablation mode: no merging anywhere
    ++c.spilled;
    return;
  }
  // The pending-ring probe lives inline in record_lane now (two-stream
  // kernels ping-pong between the open interval and the ring every other
  // access; paying an out-of-line call for each absorbed bounce dominated
  // chol/mmul).  Reaching here means a genuinely new interval, so the site
  // state's `events` counts exactly the demote-stage misses, as before.
  const detect::CursorPolicy forced = g_policy.load(std::memory_order_relaxed);
  SiteState* st = nullptr;
  std::uint8_t mode;
  if (PINT_LIKELY(forced == detect::CursorPolicy::kAdaptive)) {
    st = site_state(site);
    mode = site_advance(st, c, lo);
  } else {
    mode = forced == detect::CursorPolicy::kWide     ? kModeWide
           : forced == detect::CursorPolicy::kBypass ? kModeBypass
                                                     : kModeInline;
  }
  if (mode == kModeBypass) {
    // Straight to the strand buffer: no predictor upkeep is charged to a
    // site whose traffic the cursor demonstrably cannot absorb.
    c.out[write]->add(lo, hi);
    ++c.spilled;
    ++c.bypassed;
    return;
  }
  if (!c.open_empty(write)) {
    const unsigned limit =
        mode == kModeWide ? AccessCursor::kWidePend : AccessCursor::kPend;
    while (c.npend[write] >= limit) {
      c.out[write]->add(c.pend[write][0].lo, c.pend[write][0].hi);
      ++c.spilled;
      if (st) ++st->spills;
      for (unsigned i = 1; i < c.npend[write]; ++i) {
        c.pend[write][i - 1] = c.pend[write][i];
      }
      --c.npend[write];
    }
    c.pend[write][c.npend[write]++] = {c.lo[write], c.hi[write]};
  }
  c.lo[write] = lo;
  c.hi[write] = hi;
}

}  // namespace

namespace detail {

std::atomic<bool> g_instrumentation_on{false};

PINT_NOINLINE void record_access_slow(const void* p, std::size_t bytes,
                                      bool write) {
  detect::Detector* d = g_active.load(std::memory_order_relaxed);
  if (d == nullptr || bytes == 0) return;
  rt::Worker* w = rt::current_worker();
  if (w == nullptr || w->current_frame() == nullptr) return;  // outside a run
  const detect::addr_t lo = detect::addr_of(p);
  d->on_access(*w, *w->current_frame(), lo, lo + bytes - 1, write);
}

// The per-lane hit path, branch-minimal by design: one raw-counter
// increment plus the same extension predicate as AccessBuffer::add's tail
// probe; installed/ablation state is encoded in the open-interval sentinels
// (see AccessCursor above), so the raw counters tick even with no cursor
// installed - install resets them, so only in-strand counts are ever read.
// kLane is a compile-time constant so every cursor field is a fixed TLS
// displacement (no lane indexing in the emitted code).  Callers guarantee
// bytes > 0 (the inline wrappers hoist that check).
template <int kLane>
inline void record_lane(const void* p, std::size_t bytes, const void* site) {
  AccessCursor& c = t_cursor;
  const detect::addr_t lo = detect::addr_of(p);
  const detect::addr_t hi = lo + bytes - 1;
  ++c.raw[kLane];
  if (PINT_LIKELY(lo >= c.lo[kLane] && lo <= c.hi[kLane] + 1)) {
    if (hi > c.hi[kLane]) c.hi[kLane] = hi;
    return;
  }
  // Pending-ring probe, still inline: a miss absorbed by a pending stream is
  // the steady state for multi-stream kernels (A[i][k]/A[j][k] ping-pong),
  // and npend > 0 implies installed && coalesce, so no sentinel state can
  // reach the extension predicate below.
  const unsigned np = c.npend[kLane];
  for (unsigned i = 0; i < np; ++i) {
    detect::Interval& b = c.pend[kLane][i];
    if (lo >= b.lo && lo <= b.hi + 1) {
      if (hi > b.hi) b.hi = hi;
      return;
    }
  }
  cursor_record_miss(c, lo, hi, kLane != 0, site);
}

// noinline: re-derive the thread-local cursor on every call, for the same
// fiber-migration reason as rt::current_worker().  The return address is
// the adaptive policy's call-site key: the inline wrappers melt into the
// kernel, so it names the kernel-side instrumentation point.  It is only
// materialized on the miss path (the argument is evaluated at the call,
// which sits inside the miss branch).
#if defined(__GNUC__) || defined(__clang__)
#define PINT_CALL_SITE() __builtin_return_address(0)
#else
#define PINT_CALL_SITE() nullptr
#endif
PINT_NOINLINE void record_access_read(const void* p, std::size_t bytes) {
  record_lane<0>(p, bytes, PINT_CALL_SITE());
}
PINT_NOINLINE void record_access_write(const void* p, std::size_t bytes) {
  record_lane<1>(p, bytes, PINT_CALL_SITE());
}
PINT_NOINLINE void record_access(const void* p, std::size_t bytes,
                                 bool write) {
  if (write) {
    record_lane<1>(p, bytes, PINT_CALL_SITE());
  } else {
    record_lane<0>(p, bytes, PINT_CALL_SITE());
  }
}

}  // namespace detail

namespace detect {

void set_active_detector(Detector* d) {
  g_active.store(d, std::memory_order_seq_cst);
  detail::g_instrumentation_on.store(d != nullptr, std::memory_order_seq_cst);
}
Detector* active_detector() { return g_active.load(std::memory_order_relaxed); }

PINT_NOINLINE void cursor_install(AccessBuffer* reads, AccessBuffer* writes,
                                  bool coalesce) {
  if (!g_fast_path.load(std::memory_order_relaxed)) return;
  AccessCursor& c = t_cursor;
  if (PINT_UNLIKELY(c.installed)) {
    // Misuse guard: detectors invalidate before installing, so a live
    // cursor here means a caller skipped that - flush rather than lose the
    // previous strand's buffered intervals (the counts are dropped).
    flush_lane(c, 0);
    flush_lane(c, 1);
  }
  PINT_ASSERT(reads != nullptr && writes != nullptr);
  c.out[0] = reads;
  c.out[1] = writes;
  // Coalescing starts from the empty open interval; the ablation keeps the
  // never-match sentinel so every access takes the miss path's add_raw.
  for (int lane = 0; lane < 2; ++lane) {
    if (coalesce) {
      c.set_open_empty(lane);
    } else {
      c.set_never_match(lane);
    }
    c.npend[lane] = 0;
  }
  c.raw[0] = c.raw[1] = 0;
  c.spilled = c.bypassed = c.switches = 0;
  c.coalesce = coalesce;
  c.installed = true;
}

PINT_NOINLINE CursorFlush cursor_invalidate() {
  AccessCursor& c = t_cursor;
  CursorFlush out;
  if (!c.installed) return out;
  out.raw_reads = c.raw[0];
  out.raw_writes = c.raw[1];
  // A hit is an access absorbed in cursor storage: everything except the
  // per-access spills (ring overflow, bypass routing, ablation add_raw).
  // The end-of-strand drain below is a bounded hand-off, not a miss.  A
  // capacity shrink can spill several ring entries for one access, so the
  // difference is clamped.
  const std::uint64_t raw = c.raw[0] + c.raw[1];
  out.hits = raw > c.spilled ? raw - c.spilled : 0;
  out.spills = c.spilled;
  out.bypassed = c.bypassed;
  out.policy_switches = c.switches;
  flush_lane(c, 0);
  flush_lane(c, 1);
  c.raw[0] = c.raw[1] = 0;
  c.spilled = c.bypassed = c.switches = 0;
  c.installed = false;
  return out;
}

PINT_NOINLINE void cursor_reset() { t_cursor = AccessCursor{}; }

void set_cursor_policy(CursorPolicy p) {
  g_policy.store(p, std::memory_order_seq_cst);
}
CursorPolicy cursor_policy() {
  return g_policy.load(std::memory_order_relaxed);
}
const char* cursor_policy_name(CursorPolicy p) {
  switch (p) {
    case CursorPolicy::kAdaptive: return "adaptive";
    case CursorPolicy::kInline: return "inline";
    case CursorPolicy::kWide: return "wide";
    case CursorPolicy::kBypass: return "bypass";
  }
  return "?";
}
PINT_NOINLINE void cursor_policy_reset() { t_sites = SiteTable{}; }

PINT_NOINLINE bool cursor_installed() { return t_cursor.installed; }

void set_access_fast_path(bool on) {
  g_fast_path.store(on, std::memory_order_seq_cst);
}
bool access_fast_path() { return g_fast_path.load(std::memory_order_relaxed); }

}  // namespace detect

namespace {

// Shared slow route of the lock hooks: same dispatch as record_access_slow
// (lock events are control events - there is no cursor fast path to take,
// and detectors flush the cursor themselves when they split the strand).
PINT_NOINLINE void lock_event(const void* mutex, bool acquire) {
  detect::Detector* d = g_active.load(std::memory_order_relaxed);
  if (d == nullptr || mutex == nullptr) return;
  rt::Worker* w = rt::current_worker();
  if (w == nullptr || w->current_frame() == nullptr) return;  // outside a run
  const detect::addr_t lock = detect::addr_of(mutex);
  if (acquire) {
    d->on_lock_acquire(*w, *w->current_frame(), lock);
  } else {
    d->on_lock_release(*w, *w->current_frame(), lock);
  }
}

}  // namespace

void lock_acquire(const void* mutex) {
  if (!detail::g_instrumentation_on.load(std::memory_order_relaxed)) return;
  lock_event(mutex, true);
}
void lock_release(const void* mutex) {
  if (!detail::g_instrumentation_on.load(std::memory_order_relaxed)) return;
  lock_event(mutex, false);
}

extern "C" {
void __pint_lock_acquire(void* mutex) { lock_acquire(mutex); }
void __pint_lock_release(void* mutex) { lock_release(mutex); }
}

void* dmalloc(std::size_t bytes) {
  void* base = std::malloc(bytes + kHeaderBytes);
  PINT_CHECK_MSG(base != nullptr, "dmalloc: out of memory");
  auto* h = static_cast<BlockHeader*>(base);
  h->user_bytes = bytes;
  h->magic = kBlockMagic;
  return static_cast<char*>(base) + kHeaderBytes;
}

void dfree(void* p) {
  if (p == nullptr) return;
  void* base = static_cast<char*>(p) - kHeaderBytes;
  auto* h = static_cast<BlockHeader*>(base);
  PINT_CHECK_MSG(h->magic == kBlockMagic, "dfree: not a dmalloc block");
  h->magic = 0;
  const std::size_t bytes = h->user_bytes;

  detect::Detector* d = g_active.load(std::memory_order_relaxed);
  rt::Worker* w = rt::current_worker();
  if (d != nullptr && w != nullptr && w->current_frame() != nullptr &&
      bytes > 0) {
    const detect::addr_t lo = detect::addr_of(p);
    d->on_heap_free(*w, *w->current_frame(), base, lo, lo + bytes - 1);
    return;  // the detector owns the actual free now
  }
  std::free(base);
}

}  // namespace pint
