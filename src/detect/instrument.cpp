#include "detect/instrument.hpp"

#include <atomic>
#include <cstdlib>

#include "detect/detector.hpp"
#include "runtime/scheduler.hpp"
#include "support/assert.hpp"

namespace pint {

namespace {

std::atomic<detect::Detector*> g_active{nullptr};

// dmalloc header: remembers the user size so dfree knows the range to clear.
struct BlockHeader {
  std::size_t user_bytes;
  std::uint64_t magic;
};
constexpr std::uint64_t kBlockMagic = 0xD17EC70BA110CULL;
constexpr std::size_t kHeaderBytes = 16;
static_assert(sizeof(BlockHeader) <= kHeaderBytes);

}  // namespace

namespace detail {

std::atomic<bool> g_instrumentation_on{false};

PINT_NOINLINE void record_access_slow(const void* p, std::size_t bytes,
                                      bool write) {
  detect::Detector* d = g_active.load(std::memory_order_relaxed);
  if (d == nullptr || bytes == 0) return;
  rt::Worker* w = rt::current_worker();
  if (w == nullptr || w->current_frame() == nullptr) return;  // outside a run
  const detect::addr_t lo = detect::addr_of(p);
  d->on_access(*w, *w->current_frame(), lo, lo + bytes - 1, write);
}

}  // namespace detail

namespace detect {
void set_active_detector(Detector* d) {
  g_active.store(d, std::memory_order_seq_cst);
  detail::g_instrumentation_on.store(d != nullptr, std::memory_order_seq_cst);
}
Detector* active_detector() { return g_active.load(std::memory_order_relaxed); }
}  // namespace detect

void* dmalloc(std::size_t bytes) {
  void* base = std::malloc(bytes + kHeaderBytes);
  PINT_CHECK_MSG(base != nullptr, "dmalloc: out of memory");
  auto* h = static_cast<BlockHeader*>(base);
  h->user_bytes = bytes;
  h->magic = kBlockMagic;
  return static_cast<char*>(base) + kHeaderBytes;
}

void dfree(void* p) {
  if (p == nullptr) return;
  void* base = static_cast<char*>(p) - kHeaderBytes;
  auto* h = static_cast<BlockHeader*>(base);
  PINT_CHECK_MSG(h->magic == kBlockMagic, "dfree: not a dmalloc block");
  h->magic = 0;
  const std::size_t bytes = h->user_bytes;

  detect::Detector* d = g_active.load(std::memory_order_relaxed);
  rt::Worker* w = rt::current_worker();
  if (d != nullptr && w != nullptr && w->current_frame() != nullptr &&
      bytes > 0) {
    const detect::addr_t lo = detect::addr_of(p);
    d->on_heap_free(*w, *w->current_frame(), base, lo, lo + bytes - 1);
    return;  // the detector owns the actual free now
  }
  std::free(base);
}

}  // namespace pint
