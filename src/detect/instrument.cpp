#include "detect/instrument.hpp"

#include <atomic>
#include <cstdlib>

#include "detect/detector.hpp"
#include "detect/types.hpp"
#include "runtime/scheduler.hpp"
#include "support/assert.hpp"

namespace pint {

namespace {

std::atomic<detect::Detector*> g_active{nullptr};

// Global fast-path switch (tests/benchmarks).  Checked only at install time:
// with the knob off no cursor ever becomes installed, so the per-access
// dispatch needs no extra load.
std::atomic<bool> g_fast_path{true};

// dmalloc header: remembers the user size so dfree knows the range to clear.
struct BlockHeader {
  std::size_t user_bytes;
  std::uint64_t magic;
};
constexpr std::uint64_t kBlockMagic = 0xD17EC70BA110CULL;
constexpr std::size_t kHeaderBytes = 16;
static_assert(sizeof(BlockHeader) <= kHeaderBytes);

// ---------------------------------------------------------------------------
// AccessCursor (DESIGN.md §9)
// ---------------------------------------------------------------------------
//
// One per OS thread.  Owned by at most one strand at a time: detectors
// install it when a strand begins executing on this thread and invalidate it
// at the strand's end (spawn / sync / return / steal boundaries).  Between
// those two hook calls the strand cannot migrate - the scheduler only moves
// work at exactly those boundaries - so everything below is single-threaded
// by construction and needs no atomics.
//
// Per lane (reads / writes) the cursor keeps the STINT tail-probing shape
// entirely in cursor storage: one open interval extended in the common case,
// plus a small pending ring standing in for AccessBuffer::kTails streams.
// Only when all of those miss does an interval spill into the strand's
// AccessBuffer.  Any intermediate merge policy yields the same final
// interval set: AccessBuffer::finalize() sort-merges to the minimal disjoint
// cover when the strand is sealed.

// The per-access hit path is a single extension predicate against the open
// interval, so the cursor is laid out around it: the open intervals and raw
// counters for both lanes share the first (64-byte aligned) cache line and
// are indexed directly by `write`; everything rarer lives behind them and is
// only touched by the noinline miss path.
//
// Two sentinel encodings of the open interval keep the hit path free of
// state branches (the predicate is `lo >= open.lo && lo <= open.hi + 1`):
//
//   empty       lo = ~0, hi = ~0 - 1   matches only an access at address ~0,
//                                      which extension then records exactly;
//   never-match lo = 1,  hi = ~0       hi + 1 wraps to 0, so no address
//                                      satisfies both comparisons.
//
// "Never-match" stands in for cursor-not-installed AND for the coalesce-off
// ablation: either way every access falls into the miss path, which sorts
// out which of the two it was.
struct alignas(64) AccessCursor {
  // kPend + the open interval = AccessBuffer::kTails interleaved streams.
  static constexpr unsigned kPend = detect::AccessBuffer::kTails - 1;

  // --- hot line: open interval + raw counters, indexed by `write` ---
  detect::addr_t lo[2] = {1, 1};
  detect::addr_t hi[2] = {~detect::addr_t(0), ~detect::addr_t(0)};
  std::uint64_t raw[2] = {0, 0};

  // --- miss-path state ---
  std::uint64_t opens = 0;  // new-interval events; hits = raw - opens
  detect::AccessBuffer* out[2] = {nullptr, nullptr};
  detect::Interval pend[2][kPend] = {};
  unsigned npend[2] = {0, 0};
  bool coalesce = true;
  bool installed = false;

  void set_open_empty(int lane) {
    lo[lane] = ~detect::addr_t(0);
    hi[lane] = ~detect::addr_t(0) - 1;
  }
  void set_never_match(int lane) {
    lo[lane] = 1;
    hi[lane] = ~detect::addr_t(0);
  }
  bool open_empty(int lane) const { return lo[lane] > hi[lane]; }
};

thread_local AccessCursor t_cursor;

void flush_lane(AccessCursor& c, int lane) {
  if (c.out[lane] == nullptr) return;
  if (c.coalesce) {
    // In ablation mode open/pend never hold data (never-match sentinel
    // routes every access straight to add_raw), so there is nothing to
    // drain - and the sentinel must not be emitted as an interval.
    if (!c.open_empty(lane)) c.out[lane]->add(c.lo[lane], c.hi[lane]);
    for (unsigned i = 0; i < c.npend[lane]; ++i) {
      c.out[lane]->add(c.pend[lane][i].lo, c.pend[lane][i].hi);
    }
  }
  c.set_never_match(lane);
  c.npend[lane] = 0;
  c.out[lane] = nullptr;
}

// The cursor miss path: uninstalled dispatch and the ablation mode first
// (both were folded into the hit predicate via the never-match sentinel),
// then the pending streams, then demote the open interval (spilling the
// oldest pending one to the AccessBuffer if the ring is full) and open a
// fresh interval for this access.
PINT_NOINLINE void cursor_record_miss(AccessCursor& c, detect::addr_t lo,
                                      detect::addr_t hi, bool write) {
  if (PINT_UNLIKELY(!c.installed)) {
    detail::record_access_slow(reinterpret_cast<const void*>(lo),
                               hi - lo + 1, write);
    return;
  }
  if (PINT_UNLIKELY(!c.coalesce)) {
    c.out[write]->add_raw(lo, hi);  // ablation mode: no merging anywhere
    return;
  }
  for (unsigned i = 0; i < c.npend[write]; ++i) {
    detect::Interval& b = c.pend[write][i];
    if (lo >= b.lo && lo <= b.hi + 1) {
      if (hi > b.hi) b.hi = hi;
      return;
    }
  }
  ++c.opens;
  if (!c.open_empty(write)) {
    if (c.npend[write] == AccessCursor::kPend) {
      c.out[write]->add(c.pend[write][0].lo, c.pend[write][0].hi);
      for (unsigned i = 1; i < AccessCursor::kPend; ++i) {
        c.pend[write][i - 1] = c.pend[write][i];
      }
      c.npend[write] = AccessCursor::kPend - 1;
    }
    c.pend[write][c.npend[write]++] = {c.lo[write], c.hi[write]};
  }
  c.lo[write] = lo;
  c.hi[write] = hi;
}

}  // namespace

namespace detail {

std::atomic<bool> g_instrumentation_on{false};

PINT_NOINLINE void record_access_slow(const void* p, std::size_t bytes,
                                      bool write) {
  detect::Detector* d = g_active.load(std::memory_order_relaxed);
  if (d == nullptr || bytes == 0) return;
  rt::Worker* w = rt::current_worker();
  if (w == nullptr || w->current_frame() == nullptr) return;  // outside a run
  const detect::addr_t lo = detect::addr_of(p);
  d->on_access(*w, *w->current_frame(), lo, lo + bytes - 1, write);
}

// The per-lane hit path, branch-minimal by design: one raw-counter
// increment plus the same extension predicate as AccessBuffer::add's tail
// probe; installed/ablation state is encoded in the open-interval sentinels
// (see AccessCursor above), so the raw counters tick even with no cursor
// installed - install resets them, so only in-strand counts are ever read.
// kLane is a compile-time constant so every cursor field is a fixed TLS
// displacement (no lane indexing in the emitted code).  Callers guarantee
// bytes > 0 (the inline wrappers hoist that check).
template <int kLane>
inline void record_lane(const void* p, std::size_t bytes) {
  AccessCursor& c = t_cursor;
  const detect::addr_t lo = detect::addr_of(p);
  const detect::addr_t hi = lo + bytes - 1;
  ++c.raw[kLane];
  if (PINT_LIKELY(lo >= c.lo[kLane] && lo <= c.hi[kLane] + 1)) {
    if (hi > c.hi[kLane]) c.hi[kLane] = hi;
    return;
  }
  cursor_record_miss(c, lo, hi, kLane != 0);
}

// noinline: re-derive the thread-local cursor on every call, for the same
// fiber-migration reason as rt::current_worker().
PINT_NOINLINE void record_access_read(const void* p, std::size_t bytes) {
  record_lane<0>(p, bytes);
}
PINT_NOINLINE void record_access_write(const void* p, std::size_t bytes) {
  record_lane<1>(p, bytes);
}
PINT_NOINLINE void record_access(const void* p, std::size_t bytes,
                                 bool write) {
  if (write) {
    record_lane<1>(p, bytes);
  } else {
    record_lane<0>(p, bytes);
  }
}

}  // namespace detail

namespace detect {

void set_active_detector(Detector* d) {
  g_active.store(d, std::memory_order_seq_cst);
  detail::g_instrumentation_on.store(d != nullptr, std::memory_order_seq_cst);
}
Detector* active_detector() { return g_active.load(std::memory_order_relaxed); }

PINT_NOINLINE void cursor_install(AccessBuffer* reads, AccessBuffer* writes,
                                  bool coalesce) {
  if (!g_fast_path.load(std::memory_order_relaxed)) return;
  AccessCursor& c = t_cursor;
  if (PINT_UNLIKELY(c.installed)) {
    // Misuse guard: detectors invalidate before installing, so a live
    // cursor here means a caller skipped that - flush rather than lose the
    // previous strand's buffered intervals (the counts are dropped).
    flush_lane(c, 0);
    flush_lane(c, 1);
  }
  PINT_ASSERT(reads != nullptr && writes != nullptr);
  c.out[0] = reads;
  c.out[1] = writes;
  // Coalescing starts from the empty open interval; the ablation keeps the
  // never-match sentinel so every access takes the miss path's add_raw.
  for (int lane = 0; lane < 2; ++lane) {
    if (coalesce) {
      c.set_open_empty(lane);
    } else {
      c.set_never_match(lane);
    }
    c.npend[lane] = 0;
  }
  c.raw[0] = c.raw[1] = 0;
  c.opens = 0;
  c.coalesce = coalesce;
  c.installed = true;
}

PINT_NOINLINE CursorFlush cursor_invalidate() {
  AccessCursor& c = t_cursor;
  CursorFlush out;
  if (!c.installed) return out;
  out.raw_reads = c.raw[0];
  out.raw_writes = c.raw[1];
  // Every access that did not open a fresh interval extended an existing
  // one; the ablation never merges, so it reports no hits.
  out.hits = c.coalesce ? c.raw[0] + c.raw[1] - c.opens : 0;
  flush_lane(c, 0);
  flush_lane(c, 1);
  c.raw[0] = c.raw[1] = 0;
  c.opens = 0;
  c.installed = false;
  return out;
}

PINT_NOINLINE void cursor_reset() { t_cursor = AccessCursor{}; }

PINT_NOINLINE bool cursor_installed() { return t_cursor.installed; }

void set_access_fast_path(bool on) {
  g_fast_path.store(on, std::memory_order_seq_cst);
}
bool access_fast_path() { return g_fast_path.load(std::memory_order_relaxed); }

}  // namespace detect

void* dmalloc(std::size_t bytes) {
  void* base = std::malloc(bytes + kHeaderBytes);
  PINT_CHECK_MSG(base != nullptr, "dmalloc: out of memory");
  auto* h = static_cast<BlockHeader*>(base);
  h->user_bytes = bytes;
  h->magic = kBlockMagic;
  return static_cast<char*>(base) + kHeaderBytes;
}

void dfree(void* p) {
  if (p == nullptr) return;
  void* base = static_cast<char*>(p) - kHeaderBytes;
  auto* h = static_cast<BlockHeader*>(base);
  PINT_CHECK_MSG(h->magic == kBlockMagic, "dfree: not a dmalloc block");
  h->magic = 0;
  const std::size_t bytes = h->user_bytes;

  detect::Detector* d = g_active.load(std::memory_order_relaxed);
  rt::Worker* w = rt::current_worker();
  if (d != nullptr && w != nullptr && w->current_frame() != nullptr &&
      bytes > 0) {
    const detect::addr_t lo = detect::addr_of(p);
    d->on_heap_free(*w, *w->current_frame(), base, lo, lo + bytes - 1);
    return;  // the detector owns the actual free now
  }
  std::free(base);
}

}  // namespace pint
