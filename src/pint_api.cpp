#include "pint_api.hpp"

#include "support/assert.hpp"

namespace pint {

std::unique_ptr<detect::DetectorRunner> make_detector(
    const DetectorSpec& spec) {
  switch (spec.kind) {
    case DetectorKind::kPint: {
      pintd::PintDetector::Options o;
      static_cast<detect::CommonOptions&>(o) = spec.common;
      o.core_workers = spec.workers;
      o.parallel_history = spec.parallel_history;
      o.history_shards = spec.history_shards;
      return std::make_unique<pintd::PintDetector>(o);
    }
    case DetectorKind::kStint: {
      stint::StintDetector::Options o;
      static_cast<detect::CommonOptions&>(o) = spec.common;
      return std::make_unique<stint::StintDetector>(o);
    }
    case DetectorKind::kCracer: {
      cracer::CracerDetector::Options o;
      static_cast<detect::CommonOptions&>(o) = spec.common;
      o.workers = spec.workers;
      return std::make_unique<cracer::CracerDetector>(o);
    }
    case DetectorKind::kOracle: {
      oracle::OracleDetector::Options o;
      static_cast<detect::CommonOptions&>(o) = spec.common;
      return std::make_unique<oracle::OracleDetector>(o);
    }
  }
  PINT_CHECK_MSG(false, "unknown DetectorKind");
  return nullptr;
}

}  // namespace pint
