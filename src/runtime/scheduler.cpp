#include "runtime/scheduler.hpp"

#include <cstdio>

#include "detect/instrument.hpp"
#include "support/telemetry.hpp"

namespace pint::rt {

namespace {
thread_local Worker* t_worker = nullptr;

// Core workers are "core<i>" tracks in the exported trace.  The calling
// thread (worker 0) may later be renamed by a detector running its phased
// history on it - role changes split the track, they don't fight.
void set_core_role(int id) {
  if (!telem::enabled()) return;
  char role[16];
  std::snprintf(role, sizeof(role), "core%d", id);
  telem::set_thread_role(role);
}
}  // namespace

// noinline so the TLS address is recomputed on every call: user code can
// migrate between OS threads at spawn/sync points, and a cached TLS slot
// would read the *previous* thread's worker.
PINT_NOINLINE Worker* current_worker() { return t_worker; }

void task_entry_trampoline(void* arg);

// ---------------------------------------------------------------------------
// Scheduler
// ---------------------------------------------------------------------------

Scheduler::Scheduler(const Options& opt) : opt_(opt) {
  PINT_CHECK(opt_.workers >= 1);
  hooks_ = opt_.hooks ? opt_.hooks : &default_hooks_;
  std::uint64_t seed = opt_.seed;
  for (int i = 0; i < opt_.workers; ++i) {
    workers_.push_back(std::make_unique<Worker>(*this, i, splitmix64(seed)));
  }
}

Scheduler::~Scheduler() {
  for (TaskFrame* f : all_frames_) {
    f->fiber->destroy();
    delete f;
  }
}

TaskFrame* Scheduler::checkout_frame() {
  TaskFrame* f = nullptr;
  {
    LockGuard<Spinlock> g(pool_lock_);
    if (!frame_pool_.empty()) {
      f = frame_pool_.back();
      frame_pool_.pop_back();
    }
  }
  if (!f) {
    f = new TaskFrame();
    f->sched = this;
    f->fiber = Fiber::create(opt_.stack_bytes, &task_entry_trampoline, f);
    f->fiber->user = f;
    LockGuard<Spinlock> g(pool_lock_);
    all_frames_.push_back(f);
  }
  f->parent_frame = nullptr;
  f->parent_scope = nullptr;
  f->scope = nullptr;
  f->det_strand = nullptr;
  f->det_cont = nullptr;
  f->task_name = nullptr;
  f->fiber->reset(&task_entry_trampoline, f);
  return f;
}

void Scheduler::release_frame(TaskFrame* f) {
  LockGuard<Spinlock> g(pool_lock_);
  frame_pool_.push_back(f);
}

std::uint64_t Scheduler::total_steals() const {
  std::uint64_t n = 0;
  for (const auto& w : workers_) n += w->steals();
  return n;
}

void Scheduler::run_frame(TaskFrame* root) {
  stop_.store(false, std::memory_order_relaxed);
  hooks_->on_run_begin(*this);

  std::vector<std::thread> threads;
  threads.reserve(workers_.size() - 1);
  for (std::size_t i = 1; i < workers_.size(); ++i) {
    Worker* w = workers_[i].get();
    threads.emplace_back([w, i] {
      t_worker = w;
      set_core_role(int(i));
      // Fresh OS thread: make sure no stale AccessCursor state is live
      // before any strand installs one here.  Worker 0 is deliberately NOT
      // reset: it runs on the caller's thread, which may belong to an outer
      // nested scheduler whose cursor must survive this run.
      detect::cursor_reset();
      san::adopt_current_thread_stack(w->loop_ctx_.san);
      w->loop();
      t_worker = nullptr;
    });
  }

  Worker* w0 = workers_[0].get();
  Worker* saved = t_worker;  // allow nested schedulers in tests
  if (saved != nullptr && saved->cur_frame_ != nullptr) {
    // Nested scheduler: worker 0's loop runs on the outer task's fiber, so
    // the sanitizers must identify this loop context with that fiber stack.
    Fiber* fb = saved->cur_frame_->fiber;
    san::adopt_current_stack(w0->loop_ctx_.san,
                             reinterpret_cast<const void*>(fb->stack_lo()),
                             fb->stack_hi() - fb->stack_lo());
  } else {
    san::adopt_current_thread_stack(w0->loop_ctx_.san);
  }
  t_worker = w0;
  set_core_role(0);
  w0->resume_next_ = root;
  w0->loop();
  t_worker = saved;

  for (auto& th : threads) th.join();
  hooks_->on_run_end(*this);
}

// ---------------------------------------------------------------------------
// Worker loop
// ---------------------------------------------------------------------------

void Worker::switch_into(TaskFrame* f) {
  cur_frame_ = f;
  ctx_switch(loop_ctx_, f->fiber->context());
  cur_frame_ = nullptr;
}

void Worker::loop() {
  Backoff bo;
  for (;;) {
    if (park_pending_ != nullptr) {
      // The fiber that just switched away is now fully suspended at its
      // sync; let the last-returning child resume it.
      park_pending_->parked.store(true, std::memory_order_release);
      park_pending_ = nullptr;
    }
    if (retire_frame_ != nullptr) {
      TaskFrame* f = retire_frame_;
      retire_frame_ = nullptr;
      if (!sched_->hooks()->on_task_retire(*this, *f)) {
        sched_->release_frame(f);
      }
    }
    if (resume_next_ != nullptr) {
      TaskFrame* f = resume_next_;
      resume_next_ = nullptr;
      if (resume_wait_ != nullptr) {
        // We won the join race; wait until the parent's context is saved.
        Backoff wb;
        while (!resume_wait_->parked.load(std::memory_order_acquire)) wb.pause();
        resume_wait_ = nullptr;
      }
      bo.reset();
      switch_into(f);
      continue;
    }
    if (sched_->stop_.load(std::memory_order_acquire)) break;

    const int n = sched_->num_workers();
    if (n > 1) {
      const int victim =
          int((std::uint64_t(id_) + 1 + rng_.next_below(std::uint64_t(n - 1))) %
              std::uint64_t(n));
      TaskFrame* pf = sched_->workers_[victim]->deque_.steal();
      if (pf != nullptr) {
        ++steals_;
        PINT_TCOUNT("core.steal");
        // The frame is suspended at a spawn; its innermost scope is the one
        // this continuation belongs to.
        pf->scope->steal_happened.store(true, std::memory_order_release);
        sched_->hooks()->on_continuation(*this, *pf, /*stolen=*/true);
        bo.reset();
        switch_into(pf);
        continue;
      }
    }
    bo.pause();
  }
}

// ---------------------------------------------------------------------------
// Task entry / return protocol (runs on task fibers)
// ---------------------------------------------------------------------------

void task_entry_trampoline(void* arg) {
  // (sanitizer entry annotation already done by fiber_entry_shim)
  TaskFrame* f = static_cast<TaskFrame*>(arg);
  Scheduler* s = f->sched;
  if (f->parent_frame == nullptr) {
    s->hooks()->on_root_start(*current_worker(), *f);
  } else {
    // Publish the parent's continuation ONLY NOW: we are on the child fiber,
    // so the ctx_switch in spawn_prepared has fully saved the parent's
    // context. Publishing before the switch would let a thief resume the
    // parent from a stale context. (The deque push's release fence orders
    // the context stores before any thief's read.)
    current_worker()->deque().push(f->parent_frame);
  }

  f->invoke(f);

  // --- epilogue: the task's final strand (its return node) ends here ---
  Worker* w = current_worker();
  if (f->parent_frame == nullptr) {
    s->hooks()->on_root_end(*w, *f);
    w->retire_frame_ = f;
    w->resume_next_ = nullptr;
    w->resume_wait_ = nullptr;
    s->stop_.store(true, std::memory_order_release);
    Context dummy;
    ctx_switch_final(dummy, w->loop_ctx_);
  }

  TaskFrame* parent = f->parent_frame;
  SyncBlock* pb = f->parent_scope;
  TaskFrame* popped = w->deque_.pop();
  const bool stolen = (popped == nullptr);
  PINT_ASSERT(stolen || popped == parent);
  s->hooks()->on_spawn_return(*w, *f, stolen);
  w->retire_frame_ = f;

  if (!stolen) {
    // Fast path: resume the parent's continuation on this worker, exactly
    // the sequential order.
    s->hooks()->on_continuation(*w, *parent, /*stolen=*/false);
    const std::uint32_t prev = pb->join.fetch_sub(1, std::memory_order_acq_rel);
    PINT_ASSERT(prev >= 2);
    (void)prev;
    w->resume_next_ = parent;
    w->resume_wait_ = nullptr;
  } else {
    const std::uint32_t prev = pb->join.fetch_sub(1, std::memory_order_acq_rel);
    if (prev == 1) {
      // Last returning child of a non-trivial sync: resume the parent past
      // its sync (after waiting for it to finish parking).
      w->resume_next_ = parent;
      w->resume_wait_ = pb;
    } else {
      w->resume_next_ = nullptr;
      w->resume_wait_ = nullptr;
    }
  }
  Context dummy;
  ctx_switch_final(dummy, w->loop_ctx_);
}

void spawn_prepared(TaskFrame* child) {
  Worker* w = current_worker();
  TaskFrame* parent = w->cur_frame_;
  SyncBlock* b = child->parent_scope;
  PINT_ASSERT(parent == b->frame || b->frame == nullptr || b->frame == parent);
  b->join.fetch_add(1, std::memory_order_relaxed);
  parent->sched->hooks()->on_spawn(*w, *parent, *b, *child);
  w->cur_frame_ = child;
  // NOTE: the continuation is NOT in the deque yet - the child's trampoline
  // publishes it after this switch has saved the parent's context.
  ctx_switch(parent->fiber->context(), child->fiber->context());
  // Resumed here after the child returned (same worker) or after a steal
  // (different worker). `w` and `parent->...` caches are stale; re-fetch
  // anything needed via current_worker().
}

// ---------------------------------------------------------------------------
// SpawnScope
// ---------------------------------------------------------------------------

SpawnScope::SpawnScope() {
  Worker* w = current_worker();
  PINT_CHECK_MSG(w != nullptr && w->cur_frame_ != nullptr,
                 "SpawnScope must be constructed inside a running task");
  TaskFrame* f = w->cur_frame_;
  block_.frame = f;
  block_.prev = f->scope;
  block_.join.store(1, std::memory_order_relaxed);
  block_.steal_happened.store(false, std::memory_order_relaxed);
  block_.parked.store(false, std::memory_order_relaxed);
  block_.det_sync = nullptr;
  f->scope = &block_;
}

SpawnScope::~SpawnScope() {
  sync();
  Worker* w = current_worker();
  TaskFrame* f = w->cur_frame_;
  PINT_ASSERT(f->scope == &block_);
  f->scope = block_.prev;
}

void SpawnScope::sync() {
  Worker* w = current_worker();
  TaskFrame* f = w->cur_frame_;
  SyncBlock* b = &block_;
  Scheduler* s = f->sched;

  const bool nontrivial = b->steal_happened.load(std::memory_order_acquire);
  if (!nontrivial) {
    // All children (if any) returned on this worker; the sync is a no-op.
    PINT_ASSERT(b->join.load(std::memory_order_relaxed) == 1);
    s->hooks()->on_sync(*w, *f, *b, /*trivial=*/true);
    s->hooks()->on_after_sync(*w, *f, *b, /*trivial=*/true);
    return;
  }

  s->hooks()->on_sync(*w, *f, *b, /*trivial=*/false);
  const std::uint32_t prev = b->join.fetch_sub(1, std::memory_order_acq_rel);
  if (prev != 1) {
    // Outstanding children: park this fiber; the last child resumes it.
    w->park_pending_ = b;
    ctx_switch(f->fiber->context(), w->loop_ctx_);
    // Resumed (possibly on a different worker).
  }
  Worker* w2 = current_worker();
  b->join.store(1, std::memory_order_relaxed);
  b->steal_happened.store(false, std::memory_order_relaxed);
  b->parked.store(false, std::memory_order_relaxed);
  s->hooks()->on_after_sync(*w2, *f, *b, /*trivial=*/false);
}

}  // namespace pint::rt
