#pragma once

// Convenience loop skeletons over the fork-join runtime: recursive binary
// splitting with a grain size, the idiom every benchmark kernel hand-rolls.
// Both must be called from inside a running task (Scheduler::run body).

#include <cstddef>
#include <utility>

#include "runtime/scheduler.hpp"

namespace pint::rt {

/// Invokes body(i) for i in [begin, end), in parallel, splitting ranges
/// down to `grain` iterations. body must be safe to run concurrently on
/// disjoint indices.
template <class F>
void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  const F& body) {
  if (begin >= end) return;
  if (end - begin <= grain) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }
  const std::size_t mid = begin + (end - begin) / 2;
  SpawnScope sc;
  sc.spawn([&, begin, mid] { parallel_for(begin, mid, grain, body); });
  parallel_for(mid, end, grain, body);
  sc.sync();
}

/// Parallel reduction: combine(acc, leaf(i)) over [begin, end) with an
/// associative `combine`; `init` is the identity. Each branch reduces its
/// half into a local accumulator, so no sharing or locking occurs.
template <class T, class Leaf, class Combine>
T parallel_reduce(std::size_t begin, std::size_t end, std::size_t grain,
                  T init, const Leaf& leaf, const Combine& combine) {
  if (begin >= end) return init;
  if (end - begin <= grain) {
    T acc = init;
    for (std::size_t i = begin; i < end; ++i) acc = combine(acc, leaf(i));
    return acc;
  }
  const std::size_t mid = begin + (end - begin) / 2;
  T left = init;
  SpawnScope sc;
  sc.spawn([&, begin, mid] {
    left = parallel_reduce(begin, mid, grain, init, leaf, combine);
  });
  const T right = parallel_reduce(mid, end, grain, init, leaf, combine);
  sc.sync();
  return combine(left, right);
}

}  // namespace pint::rt
