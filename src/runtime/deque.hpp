#pragma once

// Chase-Lev work-stealing deque (Le et al., PPoPP'13 weak-memory version).
//
// The owner pushes/pops continuation records at the bottom; thieves steal
// from the top (the OLDEST continuation), which is what makes a worker's
// execution between successful steals follow the sequential order - the
// property PINT's trace data structure depends on (paper Lemma 1).
//
// Capacity is fixed: the deque only ever holds one pending continuation per
// suspended frame on this worker, i.e. its size is bounded by the spawn
// nesting depth.  Overflow is a hard error rather than a silent resize.

#include <atomic>
#include <cstdint>
#include <memory>

#include "support/assert.hpp"

namespace pint::rt {

struct TaskFrame;

class WsDeque {
 public:
  explicit WsDeque(std::size_t capacity_pow2 = 1 << 13)
      : mask_(capacity_pow2 - 1),
        buf_(new std::atomic<TaskFrame*>[capacity_pow2]) {
    PINT_CHECK_MSG((capacity_pow2 & mask_) == 0, "capacity must be a power of 2");
  }

  /// Owner only.
  void push(TaskFrame* f) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    PINT_CHECK_MSG(b - t <= static_cast<std::int64_t>(mask_),
                   "work-stealing deque overflow (spawn nesting too deep)");
    buf_[b & mask_].store(f, std::memory_order_relaxed);
    // Release STORE rather than the paper's release fence + relaxed store:
    // the two are equivalent publication-wise (and cost the same on x86),
    // but TSan does not model standalone fences, so the fence form makes the
    // frame hand-off invisible to the tsan lane and yields false races.
    bottom_.store(b + 1, std::memory_order_release);
  }

  /// Owner only. Returns nullptr if the deque is empty (i.e. the youngest
  /// continuation was stolen).
  TaskFrame* pop() {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    bottom_.store(b, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_relaxed);
    if (t > b) {  // already empty
      bottom_.store(b + 1, std::memory_order_relaxed);
      return nullptr;
    }
    TaskFrame* f = buf_[b & mask_].load(std::memory_order_relaxed);
    if (t == b) {
      // Last element: race against thieves for it.
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        f = nullptr;  // a thief won
      }
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return f;
  }

  /// Thieves. Returns nullptr on empty or lost race.
  TaskFrame* steal() {
    std::int64_t t = top_.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_acquire);
    if (t >= b) return nullptr;
    TaskFrame* f = buf_[t & mask_].load(std::memory_order_relaxed);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return nullptr;
    }
    return f;
  }

  bool empty() const {
    return top_.load(std::memory_order_acquire) >=
           bottom_.load(std::memory_order_acquire);
  }

 private:
  alignas(64) std::atomic<std::int64_t> top_{0};
  alignas(64) std::atomic<std::int64_t> bottom_{0};
  const std::size_t mask_;
  std::unique_ptr<std::atomic<TaskFrame*>[]> buf_;
};

}  // namespace pint::rt
