#pragma once

// Fork-join work-stealing runtime with continuation stealing.
//
// This is the substrate PINT runs on - a library-level reproduction of the
// Cilk execution model:
//
//  * `spawn(f)` pushes the *continuation* of the caller onto the worker's
//    deque and runs the child immediately (work-first).  An un-stolen
//    continuation is popped and resumed by the same worker, so execution
//    between successful steals follows the 1-worker (sequential) order.
//  * `sync()` waits for the children of the innermost SpawnScope.  A sync is
//    *trivial* (a no-op) when no continuation of the scope was stolen.
//  * Every spawned task runs on a pooled fiber; per-task stacks stand in for
//    the cactus stack, and fiber reuse reproduces the stack-reuse hazard the
//    detector must handle (paper §III-F).
//
// Detectors observe execution through SchedulerHooks, whose callbacks map
// 1:1 onto Algorithm 1 of the paper (Spawn / SpawnReturn / Continuation /
// Sync / AfterSync) plus task-retire, where a detector may take ownership of
// a finished task's fiber to defer its reuse until the access history has
// processed the return strand.
//
// THREADING RULE: user code may migrate between OS threads at any spawn or
// sync.  Never cache the current Worker (or anything reached through
// thread_local) across those calls; always re-fetch via current_worker(),
// which is deliberately noinline in scheduler.cpp.

#include <atomic>
#include <cstdint>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "runtime/deque.hpp"
#include "support/assert.hpp"
#include "support/fiber.hpp"
#include "support/rng.hpp"
#include "support/spinlock.hpp"

namespace pint::rt {

class Scheduler;
class Worker;
struct TaskFrame;
struct SyncBlock;

/// Detector callbacks; every method corresponds to a runtime event the
/// paper's Algorithm 1 instruments. All default to no-ops.
class SchedulerHooks {
 public:
  virtual ~SchedulerHooks() = default;
  virtual void on_run_begin(Scheduler&) {}
  virtual void on_run_end(Scheduler&) {}
  /// Root strand begins (before the root closure runs).
  virtual void on_root_start(Worker&, TaskFrame&) {}
  /// Root closure finished; its final strand ends.
  virtual void on_root_end(Worker&, TaskFrame&) {}
  /// Strand of the parent (2nd arg) ends at a spawn; the child (4th arg) is
  /// about to run.
  virtual void on_spawn(Worker&, TaskFrame& /*parent*/, SyncBlock&,
                        TaskFrame& /*child*/) {}
  /// Final strand of the child (the return node) ends. The bool says whether
  /// the parent's continuation for this spawn was stolen.
  virtual void on_spawn_return(Worker&, TaskFrame& /*child*/,
                               bool /*continuation_stolen*/) {}
  /// The continuation strand of the parent frame is about to execute; on a
  /// thief if stolen, else on the same worker right after the child returned.
  virtual void on_continuation(Worker&, TaskFrame& /*parent*/, bool /*stolen*/) {}
  /// Strand leading into a sync ends (before any wait).
  virtual void on_sync(Worker&, TaskFrame&, SyncBlock&, bool /*trivial*/) {}
  /// Sync passed; the sync-node strand begins.
  virtual void on_after_sync(Worker&, TaskFrame&, SyncBlock&, bool /*trivial*/) {}
  /// Called from the worker loop after a finished task's fiber has been
  /// switched away from. Return true to take ownership of the frame (defer
  /// its reuse); the owner must eventually call Scheduler::release_frame.
  virtual bool on_task_retire(Worker&, TaskFrame&) { return false; }
};

/// One sync block (one Cilk "sync region") of an executing task. Lives on
/// the task's fiber stack inside a SpawnScope; shared with children and
/// thieves, hence the atomics.
struct SyncBlock {
  /// 1 (parent's token, released at sync) + number of outstanding children.
  std::atomic<std::uint32_t> join{1};
  /// Set by a thief that steals a continuation belonging to this block.
  std::atomic<bool> steal_happened{false};
  /// Parent fiber fully suspended at the sync; last child may resume it.
  std::atomic<bool> parked{false};
  TaskFrame* frame = nullptr;  // owning frame
  SyncBlock* prev = nullptr;   // enclosing scope
  void* det_sync = nullptr;    // detector slot: the block's sync-node strand
};

/// Runtime state of one task (root or spawned child), paired 1:1 with a
/// fiber. Pooled; may be held back by a detector via on_task_retire.
struct TaskFrame {
  Fiber* fiber = nullptr;
  Scheduler* sched = nullptr;
  TaskFrame* parent_frame = nullptr;  // spawner (null for root)
  SyncBlock* parent_scope = nullptr;  // scope in the parent this task joins
  SyncBlock* scope = nullptr;         // innermost active scope of this task
  void* det_strand = nullptr;         // detector slot: current strand
  void* det_cont = nullptr;           // detector slot: pending continuation strand
  /// Optional user label for this task (set via the named spawn overloads;
  /// must point at storage outliving the run, e.g. a string literal).
  /// Race reports carry it so a report reads "strand 'merge-left' ...".
  const char* task_name = nullptr;

  // Type-erased closure (inline storage; heap fallback for big captures).
  static constexpr std::size_t kInlineClosure = 256;
  alignas(std::max_align_t) unsigned char closure_buf[kInlineClosure];
  void* closure_heap = nullptr;
  void (*invoke)(TaskFrame*) = nullptr;

  template <class F>
  void set_closure(F&& f) {
    using Fn = std::decay_t<F>;
    void* mem;
    if constexpr (sizeof(Fn) <= kInlineClosure) {
      mem = closure_buf;
    } else {
      closure_heap = ::operator new(sizeof(Fn));
      mem = closure_heap;
    }
    new (mem) Fn(std::forward<F>(f));
    invoke = [](TaskFrame* self) {
      void* p = self->closure_heap ? self->closure_heap : self->closure_buf;
      Fn* fn = static_cast<Fn*>(p);
      (*fn)();
      fn->~Fn();
      if (self->closure_heap) {
        ::operator delete(self->closure_heap);
        self->closure_heap = nullptr;
      }
    };
  }
};

/// Returns the worker executing the calling code. noinline on purpose: the
/// result must never be cached across a spawn/sync (fiber migration).
Worker* current_worker();

class Worker {
 public:
  Worker(Scheduler& s, int id, std::uint64_t seed)
      : sched_(&s), id_(id), rng_(seed) {}

  int id() const { return id_; }
  Scheduler& scheduler() { return *sched_; }
  TaskFrame* current_frame() { return cur_frame_; }
  WsDeque& deque() { return deque_; }
  std::uint64_t steals() const { return steals_; }

  /// Detector slot: per-core-worker state (e.g. PINT's trace list).
  void* det_worker = nullptr;

 private:
  friend class Scheduler;
  friend struct SpawnScope;
  friend void spawn_prepared(TaskFrame* child);
  friend void task_entry_trampoline(void* arg);

  void loop();
  void switch_into(TaskFrame* f);

  Scheduler* sched_;
  int id_;
  Xoshiro256 rng_;
  WsDeque deque_;
  TaskFrame* cur_frame_ = nullptr;
  Context loop_ctx_;

  // "Action" slots: set by fiber-side code before switching back to the
  // worker loop; consumed at the top of the loop.
  TaskFrame* retire_frame_ = nullptr;   // finished task to retire
  TaskFrame* resume_next_ = nullptr;    // frame to switch into next
  SyncBlock* resume_wait_ = nullptr;    // spin until parked before resuming
  SyncBlock* park_pending_ = nullptr;   // mark parked after switching away

  std::uint64_t steals_ = 0;
};

class Scheduler {
 public:
  struct Options {
    int workers = 1;
    std::size_t stack_bytes = std::size_t(1) << 18;  // 256 KiB usable / task
    SchedulerHooks* hooks = nullptr;
    std::uint64_t seed = 0xC0FFEE;
  };

  explicit Scheduler(const Options& opt);
  ~Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Runs `root()` to completion (including all its spawned descendants)
  /// across the configured workers. The calling thread acts as worker 0.
  template <class F>
  void run(F&& root) {
    TaskFrame* rf = checkout_frame();
    rf->parent_frame = nullptr;
    rf->parent_scope = nullptr;
    rf->set_closure(std::forward<F>(root));
    run_frame(rf);
  }

  int num_workers() const { return int(workers_.size()); }
  Worker& worker(int i) { return *workers_[i]; }
  SchedulerHooks* hooks() { return hooks_; }
  std::uint64_t total_steals() const;

  /// Frame/fiber pool. release_frame is thread-safe: detectors return
  /// deferred frames from treap-worker threads.
  TaskFrame* checkout_frame();
  void release_frame(TaskFrame* f);

 private:
  friend class Worker;
  friend struct SpawnScope;
  friend void spawn_prepared(TaskFrame* child);
  friend void task_entry_trampoline(void* arg);

  void run_frame(TaskFrame* root);

  Options opt_;
  SchedulerHooks* hooks_;
  SchedulerHooks default_hooks_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<bool> stop_{true};

  Spinlock pool_lock_;
  std::vector<TaskFrame*> frame_pool_;
  std::vector<TaskFrame*> all_frames_;  // for destruction
};

/// Prepared-child handoff used by SpawnScope::spawn (defined in .cpp so the
/// template below stays small).
void spawn_prepared(TaskFrame* child);

/// RAII sync block. Construct inside a task; spawn children through it; it
/// syncs on destruction (Cilk's implicit sync at function end).
struct SpawnScope {
  SpawnScope();
  ~SpawnScope();
  SpawnScope(const SpawnScope&) = delete;
  SpawnScope& operator=(const SpawnScope&) = delete;

  template <class F>
  void spawn(F&& f) {
    spawn(nullptr, std::forward<F>(f));
  }

  /// Named spawn: `name` labels the task in race reports (string literal or
  /// other storage outliving the run).
  template <class F>
  void spawn(const char* name, F&& f) {
    Worker* w = current_worker();
    TaskFrame* parent = w->current_frame();
    PINT_ASSERT(parent->scope == &block_);
    TaskFrame* child = parent->sched->checkout_frame();
    child->parent_frame = parent;
    child->parent_scope = &block_;
    child->task_name = name;
    child->set_closure(std::forward<F>(f));
    spawn_prepared(child);
    // NOTE: when spawn_prepared returns, this code may be running on a
    // different worker (the continuation may have been stolen).
  }

  void sync();

 private:
  SyncBlock block_;
};

/// Convenience: spawn into the innermost scope of the current task. The
/// named overload labels the task in race reports.
template <class F>
void spawn(const char* name, F&& f) {
  Worker* w = current_worker();
  TaskFrame* parent = w->current_frame();
  SyncBlock* b = parent->scope;
  PINT_CHECK_MSG(b != nullptr, "spawn() requires an enclosing SpawnScope");
  TaskFrame* child = parent->sched->checkout_frame();
  child->parent_frame = parent;
  child->parent_scope = b;
  child->task_name = name;
  child->set_closure(std::forward<F>(f));
  spawn_prepared(child);
}

template <class F>
void spawn(F&& f) {
  spawn(nullptr, std::forward<F>(f));
}

}  // namespace pint::rt
