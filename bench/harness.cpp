#include "bench/harness.hpp"

#include <cstring>
#include <memory>
#include <thread>

#include "cracer/cracer_detector.hpp"
#include "kernels/kernels.hpp"
#include "pint/pint_detector.hpp"
#include "runtime/scheduler.hpp"
#include "stint/stint_detector.hpp"
#include "support/assert.hpp"
#include "support/telemetry.hpp"
#include "support/timer.hpp"

namespace pint::bench {

namespace {

const char* system_tag(System s) {
  switch (s) {
    case System::kBaseline: return "base";
    case System::kStint: return "stint";
    case System::kPint: return "pint";
    case System::kPintSeq: return "pintseq";
    case System::kCracer: return "cracer";
  }
  return "unknown";
}

/// "trace.json" + "mmul-pintseq-w1" -> "trace-mmul-pintseq-w1.json", so one
/// --trace-out base path serves every cell of a figure's sweep.
std::string tagged_path(const std::string& base, const std::string& tag) {
  const auto slash = base.find_last_of('/');
  const auto dot = base.find_last_of('.');
  if (dot == std::string::npos || (slash != std::string::npos && dot < slash)) {
    return base + "-" + tag;
  }
  return base.substr(0, dot) + "-" + tag + base.substr(dot);
}

std::string spec_tag(const RunSpec& spec) {
  std::string t = spec.kernel + "-" + system_tag(spec.system) + "-w" +
                  std::to_string(spec.workers);
  if (spec.history_shards > 0) t += "-s" + std::to_string(spec.history_shards);
  if (!spec.coalesce) t += "-raw";
  if (spec.history == detect::HistoryKind::kGranuleMap) t += "-hash";
  return t;
}

/// The unified dispatch seam: every detector system is constructed here and
/// driven through detect::DetectorRunner afterwards.  Baseline (no detector)
/// returns nullptr and is timed inline by run_once().
std::unique_ptr<detect::DetectorRunner> make_runner(const RunSpec& spec) {
  switch (spec.system) {
    case System::kBaseline:
      return nullptr;
    case System::kStint: {
      stint::StintDetector::Options o;
      o.coalesce = spec.coalesce;
      o.history = spec.history;
      o.seed = spec.seed;
      return std::make_unique<stint::StintDetector>(o);
    }
    case System::kPint:
    case System::kPintSeq: {
      pintd::PintDetector::Options o;
      o.core_workers = spec.workers;
      o.parallel_history = spec.system == System::kPint;
      o.coalesce = spec.coalesce;
      o.history = spec.history;
      o.history_shards = spec.history_shards;
      o.seed = spec.seed;
      return std::make_unique<pintd::PintDetector>(o);
    }
    case System::kCracer: {
      cracer::CracerDetector::Options o;
      o.workers = spec.workers;
      o.seed = spec.seed;
      return std::make_unique<cracer::CracerDetector>(o);
    }
  }
  return nullptr;
}

/// Stats snapshot flattened for write_metrics_json()'s "stats" section.
std::vector<std::pair<std::string, std::uint64_t>> stats_kv(
    const detect::Stats::Snapshot& s, const detect::RunResult& rr) {
  return {
      {"raw_reads", s.raw_reads},
      {"raw_writes", s.raw_writes},
      {"read_intervals", s.read_intervals},
      {"write_intervals", s.write_intervals},
      {"fastpath_accesses", s.fastpath_accesses},
      {"fastpath_hits", s.fastpath_hits},
      {"slowpath_accesses", s.slowpath_accesses},
      {"memo_queries", s.memo_queries},
      {"memo_hits", s.memo_hits},
      {"tail_probe_hits", s.tail_probe_hits},
      {"tail_probe_misses", s.tail_probe_misses},
      {"empty_strand_skips", s.empty_strand_skips},
      {"finalize_sorted_skips", s.finalize_sorted_skips},
      {"finalize_simd", s.finalize_simd},
      {"arena_reuses", s.arena_reuses},
      {"arena_fresh", s.arena_fresh},
      {"tier_compactions", s.tier_compactions},
      {"tier_cold_hits", s.tier_cold_hits},
      {"bulk_runs", s.bulk_runs},
      {"bulk_run_intervals", s.bulk_run_intervals},
      {"batch_drains", s.batch_drains},
      {"batch_strands", s.batch_strands},
      {"prefetch_issues", s.prefetch_issues},
      {"deep_backoffs", s.deep_backoffs},
      {"strands", s.strands},
      {"traces", s.traces},
      {"steals", s.steals},
      {"reach_queries", s.reach_queries},
      {"stalled_pushes", s.stalled_pushes},
      {"backoff_pauses", s.backoff_pauses},
      {"dropped_strands", s.dropped_strands},
      {"oom_events", s.oom_events},
      {"watchdog_trips", s.watchdog_trips},
      {"core_ns", s.core_ns},
      {"writer_ns", s.writer_ns},
      {"lreader_ns", s.lreader_ns},
      {"rreader_ns", s.rreader_ns},
      {"total_ns", s.total_ns},
      {"run_status", std::uint64_t(rr.status)},
      {"degraded_sequential_history",
       std::uint64_t(rr.degraded_sequential_history)},
      {"watchdog_tripped", std::uint64_t(rr.watchdog_tripped)},
  };
}

BenchResult run_once(const RunSpec& spec, bool traced) {
  kernels::KernelConfig kc;
  kc.scale = spec.scale;
  kc.seed = spec.seed;
  auto k = kernels::make_kernel(spec.kernel, kc);
  k->prepare();

  BenchResult r;
  Timer setup;
  auto runner = make_runner(spec);
  r.setup_seconds = setup.elapsed_s();
  if (runner == nullptr) {
    rt::Scheduler::Options so;
    so.workers = spec.workers;
    rt::Scheduler sched(so);
    Timer t;
    sched.run([&] { k->run(); });
    r.seconds = t.elapsed_s();
  } else {
    if (traced) {
      telem::reset();
      telem::set_enabled(true);
    }
    r.detect = runner->run([&] { k->run(); });
    if (traced) {
      telem::set_enabled(false);
      const std::string tag = spec_tag(spec);
      if (!spec.trace_out.empty()) {
        const std::string p = tagged_path(spec.trace_out, tag);
        if (telem::write_chrome_trace(p)) {
          r.trace_path = p;
        } else {
          std::fprintf(stderr,
                       "# warning: could not write trace %s (I/O error or "
                       "PINT_TELEMETRY=OFF build)\n",
                       p.c_str());
        }
      }
      if (!spec.stats_json.empty()) {
        const std::string p = tagged_path(spec.stats_json, tag);
        if (telem::write_metrics_json(
                p, stats_kv(runner->stats().snapshot(), r.detect))) {
          r.stats_path = p;
        } else {
          std::fprintf(stderr,
                       "# warning: could not write metrics %s (I/O error or "
                       "PINT_TELEMETRY=OFF build)\n",
                       p.c_str());
        }
      }
    }
    r.seconds = double(runner->stats().total_ns.load()) * 1e-9;
    r.races = runner->reporter().distinct_races();
    r.stats = runner->stats().snapshot();
  }
  r.verified = !spec.verify || k->verify();
  return r;
}

}  // namespace

BenchResult run_spec(const RunSpec& spec) {
  // Telemetry is captured on the LAST rep only and that rep is returned, so
  // the exported trace describes exactly the run the figure prints.  Without
  // telemetry the historical best-of-reps selection applies.
  const bool tracing =
      spec.system != System::kBaseline &&
      (!spec.trace_out.empty() || !spec.stats_json.empty());
  BenchResult best;
  for (int i = 0; i < spec.reps; ++i) {
    const bool last = i + 1 == spec.reps;
    BenchResult r = run_once(spec, tracing && last);
    PINT_CHECK_MSG(r.verified, "benchmark kernel verification failed");
    PINT_CHECK_MSG(r.races == 0, "unexpected race reported on race-free kernel");
    if (i == 0 || (tracing ? last : r.seconds < best.seconds)) {
      best = std::move(r);
    }
  }
  return best;
}

Args parse_args(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const char* s = argv[i];
    auto next = [&]() -> const char* {
      PINT_CHECK_MSG(i + 1 < argc, "missing flag value");
      return argv[++i];
    };
    // Accepts both "--flag VALUE" and "--flag=VALUE" for the telemetry
    // flags (the ci.sh lane and docs use the = form).
    auto eq_value = [&](const char* flag) -> const char* {
      const std::size_t n = std::strlen(flag);
      if (std::strncmp(s, flag, n) == 0 && s[n] == '=') return s + n + 1;
      return nullptr;
    };
    if (std::strcmp(s, "--scale") == 0) {
      a.scale = std::atof(next());
    } else if (std::strcmp(s, "--workers") == 0) {
      a.workers = std::atoi(next());
    } else if (std::strcmp(s, "--reps") == 0) {
      a.reps = std::atoi(next());
    } else if (std::strcmp(s, "--kernel") == 0) {
      a.kernels.push_back(next());
    } else if (std::strcmp(s, "--trace-out") == 0) {
      a.trace_out = next();
    } else if (const char* v = eq_value("--trace-out")) {
      a.trace_out = v;
    } else if (std::strcmp(s, "--stats-json") == 0) {
      a.stats_json = next();
    } else if (const char* v2 = eq_value("--stats-json")) {
      a.stats_json = v2;
    } else if (std::strcmp(s, "--json") == 0) {
      a.json = next();
    } else if (const char* v3 = eq_value("--json")) {
      a.json = v3;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--scale S] [--workers N] [--reps R] "
                   "[--kernel NAME]... [--trace-out FILE] [--stats-json FILE] "
                   "[--json FILE]\n",
                   argv[0]);
      std::exit(2);
    }
  }
  return a;
}

void print_environment_note(const char* figure) {
  std::printf("# %s\n", figure);
  std::printf(
      "# Host: %u hardware thread(s). The paper used 2x20-core Xeon Gold "
      "6148;\n"
      "# on this machine extra workers timeslice one core, so parallel\n"
      "# speedups are bounded by 1 and the meaningful comparisons are the\n"
      "# single-core work/overhead ratios (see DESIGN.md, substitutions).\n",
      std::thread::hardware_concurrency());
}

}  // namespace pint::bench
