#include "bench/harness.hpp"

#include <cstring>
#include <thread>

#include "cracer/cracer_detector.hpp"
#include "kernels/kernels.hpp"
#include "pint/pint_detector.hpp"
#include "runtime/scheduler.hpp"
#include "stint/stint_detector.hpp"
#include "support/assert.hpp"
#include "support/timer.hpp"

namespace pint::bench {

namespace {

RunResult run_once(const RunSpec& spec) {
  kernels::KernelConfig kc;
  kc.scale = spec.scale;
  kc.seed = spec.seed;
  auto k = kernels::make_kernel(spec.kernel, kc);
  k->prepare();

  RunResult r;
  switch (spec.system) {
    case System::kBaseline: {
      rt::Scheduler::Options so;
      so.workers = spec.workers;
      rt::Scheduler sched(so);
      Timer t;
      sched.run([&] { k->run(); });
      r.seconds = t.elapsed_s();
      break;
    }
    case System::kStint: {
      stint::StintDetector::Options o;
      o.coalesce = spec.coalesce;
      o.seed = spec.seed;
      stint::StintDetector d(o);
      d.run([&] { k->run(); });
      r.seconds = double(d.stats().total_ns.load()) * 1e-9;
      r.races = d.reporter().distinct_races();
      r.stats = d.stats().snapshot();
      break;
    }
    case System::kPint:
    case System::kPintSeq: {
      pintd::PintDetector::Options o;
      o.core_workers = spec.workers;
      o.parallel_history = spec.system == System::kPint;
      o.coalesce = spec.coalesce;
      o.seed = spec.seed;
      pintd::PintDetector d(o);
      d.run([&] { k->run(); });
      r.seconds = double(d.stats().total_ns.load()) * 1e-9;
      r.races = d.reporter().distinct_races();
      r.stats = d.stats().snapshot();
      break;
    }
    case System::kCracer: {
      cracer::CracerDetector::Options o;
      o.workers = spec.workers;
      o.seed = spec.seed;
      cracer::CracerDetector d(o);
      d.run([&] { k->run(); });
      r.seconds = double(d.stats().total_ns.load()) * 1e-9;
      r.races = d.reporter().distinct_races();
      r.stats = d.stats().snapshot();
      break;
    }
  }
  r.verified = !spec.verify || k->verify();
  return r;
}

}  // namespace

RunResult run_spec(const RunSpec& spec) {
  RunResult best;
  for (int i = 0; i < spec.reps; ++i) {
    RunResult r = run_once(spec);
    PINT_CHECK_MSG(r.verified, "benchmark kernel verification failed");
    PINT_CHECK_MSG(r.races == 0, "unexpected race reported on race-free kernel");
    if (i == 0 || r.seconds < best.seconds) best = r;
  }
  return best;
}

Args parse_args(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const char* s = argv[i];
    auto next = [&]() -> const char* {
      PINT_CHECK_MSG(i + 1 < argc, "missing flag value");
      return argv[++i];
    };
    if (std::strcmp(s, "--scale") == 0) {
      a.scale = std::atof(next());
    } else if (std::strcmp(s, "--workers") == 0) {
      a.workers = std::atoi(next());
    } else if (std::strcmp(s, "--reps") == 0) {
      a.reps = std::atoi(next());
    } else if (std::strcmp(s, "--kernel") == 0) {
      a.kernels.push_back(next());
    } else {
      std::fprintf(stderr,
                   "usage: %s [--scale S] [--workers N] [--reps R] "
                   "[--kernel NAME]...\n",
                   argv[0]);
      std::exit(2);
    }
  }
  return a;
}

void print_environment_note(const char* figure) {
  std::printf("# %s\n", figure);
  std::printf(
      "# Host: %u hardware thread(s). The paper used 2x20-core Xeon Gold "
      "6148;\n"
      "# on this machine extra workers timeslice one core, so parallel\n"
      "# speedups are bounded by 1 and the meaningful comparisons are the\n"
      "# single-core work/overhead ratios (see DESIGN.md, substitutions).\n",
      std::thread::hardware_concurrency());
}

}  // namespace pint::bench
