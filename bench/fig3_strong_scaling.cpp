// Reproduces Figure 3: strong scaling of PINT.
//
// Fixed input, varying number of core workers (plus the three treap
// workers). For each cell we print total time, and when the history drain
// dominates (total noticeably above core), the core-component time in
// parentheses - exactly the annotation style of the paper's table.
//
// NOTE: on a single-CPU host added workers cannot reduce wall time; the
// harness still exercises the real multi-worker code paths (steals, traces,
// asynchronous treap workers), and the meaningful signals are (a) the
// core-vs-total gap and (b) how little total time GROWS as workers are
// added - oversubscription magnifies any shared-structure stall, so a flat
// row here is the single-core shadow of real strong scaling.
//
// --json FILE emits the sweep plus a per-kernel "efficiency_at_max"
// (total at 1 worker / (max_workers * total at max workers)); the committed
// BENCH_fig3.json snapshot of that file is what scripts/perfgate.py's
// scaling key gates against (efficiency at max workers must not regress
// >10%), and the JSON records which reachability backend produced it.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.hpp"
#include "reach/engine.hpp"

using namespace pint;
using bench::RunSpec;
using bench::System;

namespace {

struct Row {
  int workers = 0;
  double total_s = 0;
  double core_s = 0;
};

struct KernelSweep {
  std::string name;
  std::vector<Row> rows;
  double efficiency_at_max = 0;
};

bool write_json(const std::string& path, double scale, int max_workers,
                const std::vector<KernelSweep>& sweeps) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "{\n  \"bench\": \"fig3_strong_scaling\",\n");
  std::fprintf(f, "  \"backend\": \"%s\",\n", reach::Engine::kName);
  std::fprintf(f, "  \"scale\": %g,\n", scale);
  std::fprintf(f, "  \"max_workers\": %d,\n", max_workers);
  std::fprintf(f, "  \"kernels\": [\n");
  for (std::size_t k = 0; k < sweeps.size(); ++k) {
    const KernelSweep& s = sweeps[k];
    std::fprintf(f, "    {\"name\": \"%s\", \"rows\": [", s.name.c_str());
    for (std::size_t i = 0; i < s.rows.size(); ++i) {
      std::fprintf(f,
                   "%s\n      {\"workers\": %d, \"total_s\": %.6f, "
                   "\"core_s\": %.6f}",
                   i ? "," : "", s.rows[i].workers, s.rows[i].total_s,
                   s.rows[i].core_s);
    }
    std::fprintf(f, "\n    ], \"efficiency_at_max\": %.4f}%s\n",
                 s.efficiency_at_max, k + 1 < sweeps.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Args args = bench::parse_args(argc, argv);
  const double scale = args.scale > 0 ? args.scale : 8.0;
  const std::vector<std::string> kernels =
      args.kernels.empty()
          ? std::vector<std::string>{"heat", "mmul", "sort", "stra"}
          : args.kernels;
  const std::vector<int> worker_counts =
      args.workers > 0 ? std::vector<int>{args.workers}
                       : std::vector<int>{1, 2, 4, 8};

  bench::print_environment_note("Figure 3: strong scaling of PINT");
  std::printf("# scale=%.3g; backend=%s; cells: total seconds, (core "
              "seconds) when the treap component dominates\n\n",
              scale, reach::Engine::kName);

  std::printf("%-6s |", "bench");
  for (int w : worker_counts) std::printf(" %13s%-2d", "core workers=", w);
  std::printf("\n");

  std::vector<KernelSweep> sweeps;
  for (const auto& name : kernels) {
    KernelSweep sweep;
    sweep.name = name;
    std::printf("%-6s |", name.c_str());
    for (int w : worker_counts) {
      RunSpec s;
      s.kernel = name;
      s.scale = scale;
      s.reps = args.reps;
      s.workers = w;
      s.system = System::kPint;
      s.trace_out = args.trace_out;
      s.stats_json = args.stats_json;
      const auto r = bench::run_spec(s);
      const double total = double(r.stats.total_ns) * 1e-9;
      const double core = double(r.stats.core_ns) * 1e-9;
      sweep.rows.push_back({w, total, core});
      if (total > core * 1.10) {
        std::printf(" %7.3f(%5.3f)", total, core);
      } else {
        std::printf(" %7.3f%8s", total, "");
      }
    }
    // Strong-scaling efficiency at the widest sweep point: T1 / (W * TW).
    // 1.0 = ideal speedup; on a 1-CPU host the ceiling is 1/W and the
    // number measures pure oversubscription overhead (how much total time
    // inflated on the way to W workers).
    const Row& first = sweep.rows.front();
    const Row& last = sweep.rows.back();
    if (last.workers > first.workers && last.total_s > 0) {
      sweep.efficiency_at_max =
          first.total_s / (double(last.workers) * last.total_s);
    }
    sweeps.push_back(sweep);
    std::printf("\n");
  }

  if (!args.json.empty()) {
    const int max_w = worker_counts.back();
    if (!write_json(args.json, scale, max_w, sweeps)) {
      std::fprintf(stderr, "error: could not write %s\n", args.json.c_str());
      return 1;
    }
    std::printf("\n# wrote %s\n", args.json.c_str());
  }
  return 0;
}
