// Reproduces Figure 3: strong scaling of PINT.
//
// Fixed input, varying number of core workers (plus the three treap
// workers). For each cell we print total time, and when the history drain
// dominates (total noticeably above core), the core-component time in
// parentheses - exactly the annotation style of the paper's table.
//
// NOTE: on a single-CPU host added workers cannot reduce wall time; the
// harness still exercises the real multi-worker code paths (steals, traces,
// asynchronous treap workers), and the core-vs-total gap remains the
// meaningful signal.

#include <cstdio>
#include <vector>

#include "bench/harness.hpp"

using namespace pint;
using bench::RunSpec;
using bench::System;

int main(int argc, char** argv) {
  bench::Args args = bench::parse_args(argc, argv);
  const double scale = args.scale > 0 ? args.scale : 8.0;
  const std::vector<std::string> kernels =
      args.kernels.empty()
          ? std::vector<std::string>{"heat", "mmul", "sort", "stra"}
          : args.kernels;
  const std::vector<int> worker_counts =
      args.workers > 0 ? std::vector<int>{args.workers}
                       : std::vector<int>{1, 2, 4, 8};

  bench::print_environment_note("Figure 3: strong scaling of PINT");
  std::printf("# scale=%.3g; cells: total seconds, (core seconds) when the "
              "treap component dominates\n\n", scale);

  std::printf("%-6s |", "bench");
  for (int w : worker_counts) std::printf(" %13s%-2d", "core workers=", w);
  std::printf("\n");

  for (const auto& name : kernels) {
    std::printf("%-6s |", name.c_str());
    for (int w : worker_counts) {
      RunSpec s;
      s.kernel = name;
      s.scale = scale;
      s.reps = args.reps;
      s.workers = w;
      s.system = System::kPint;
      s.trace_out = args.trace_out;
      s.stats_json = args.stats_json;
      const auto r = bench::run_spec(s);
      const double total = double(r.stats.total_ns) * 1e-9;
      const double core = double(r.stats.core_ns) * 1e-9;
      if (total > core * 1.10) {
        std::printf(" %7.3f(%5.3f)", total, core);
      } else {
        std::printf(" %7.3f%8s", total, "");
      }
    }
    std::printf("\n");
  }
  return 0;
}
