// Reproduces Figure 4: weak scaling of PINT.
//
// Worker count and problem size grow together, using the paper's per-kernel
// growth rules: heat and sort double the problem size per worker doubling;
// mmul scales the matrix dimension by 1.5x per doubling; stra doubles the
// dimension per doubling.  Each cell shows baseline time (run on the same
// number of workers), PINT time, and the overhead ratio - the paper's claim
// is that the overhead stays flat (or shrinks) until the treap component
// saturates.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/harness.hpp"

using namespace pint;
using bench::RunSpec;
using bench::System;

namespace {

/// Work-scale factor for `w` workers relative to 1, per the paper's rules.
/// Our KernelConfig::scale multiplies *work*, and the dense kernels map
/// scale -> dimension via cbrt.
double weak_scale(const std::string& kernel, int w, double base) {
  const double doublings = std::log2(double(w));
  if (kernel == "heat" || kernel == "sort") return base * double(w);
  if (kernel == "mmul") return base * std::pow(1.5, 3.0 * doublings);
  if (kernel == "stra") return base * std::pow(2.0, 3.0 * doublings);
  return base * double(w);
}

}  // namespace

int main(int argc, char** argv) {
  bench::Args args = bench::parse_args(argc, argv);
  const double base_scale = args.scale > 0 ? args.scale : 2.0;
  const std::vector<std::string> kernels =
      args.kernels.empty()
          ? std::vector<std::string>{"heat", "mmul", "sort", "stra"}
          : args.kernels;
  const std::vector<int> worker_counts =
      args.workers > 0 ? std::vector<int>{args.workers}
                       : std::vector<int>{1, 2, 4};

  bench::print_environment_note("Figure 4: weak scaling of PINT");
  std::printf("# base scale=%.3g at 1 worker; per-kernel growth rules as in "
              "the paper\n\n", base_scale);

  std::printf("%-6s %-9s |", "bench", "row");
  for (int w : worker_counts) std::printf(" %10s=%-2d", "workers", w);
  std::printf("\n");

  for (const auto& name : kernels) {
    std::vector<double> base_t, pint_t;
    for (int w : worker_counts) {
      RunSpec s;
      s.kernel = name;
      s.scale = weak_scale(name, w, base_scale);
      s.reps = args.reps;
      s.workers = w;
      s.trace_out = args.trace_out;
      s.stats_json = args.stats_json;
      s.system = System::kBaseline;
      base_t.push_back(bench::run_spec(s).seconds);
      s.system = System::kPint;
      pint_t.push_back(bench::run_spec(s).seconds);
    }
    std::printf("%-6s %-9s |", name.c_str(), "baseline");
    for (double t : base_t) std::printf(" %12.3f", t);
    std::printf("\n%-6s %-9s |", "", "PINT");
    for (double t : pint_t) std::printf(" %12.3f", t);
    std::printf("\n%-6s %-9s |", "", "overhead");
    for (std::size_t i = 0; i < base_t.size(); ++i) {
      std::printf(" %11.2fx", pint_t[i] / base_t[i]);
    }
    std::printf("\n");
  }
  std::printf("\n# overhead = PINT / baseline at the same worker count and "
              "input size.\n");
  return 0;
}
