#pragma once

// Shared benchmark harness: runs a kernel under one of the four systems the
// paper evaluates (baseline / STINT / PINT / C-RACER) and returns wall time
// plus the detector's stats. Used by every figure-reproduction binary.
//
// All detector systems run through the detect::DetectorRunner seam, so the
// harness has exactly one post-run path (races, stats, telemetry export)
// regardless of system.  Pass --trace-out=FILE / --stats-json=FILE to any
// figure binary to capture a Chrome-trace JSON and a flat metrics JSON of
// each detector run (file names are tagged per spec; see run_spec()).

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "detect/run_result.hpp"
#include "detect/stats.hpp"

namespace pint::bench {

enum class System { kBaseline, kStint, kPint, kPintSeq, kCracer };

struct RunSpec {
  std::string kernel;
  System system = System::kBaseline;
  double scale = 1.0;
  /// Workers executing the computation. For PINT these are core workers
  /// (the three treap workers come on top, as in the paper's "P-3" setup).
  int workers = 1;
  bool coalesce = true;
  /// Access-history store (treap vs per-granule hashmap ablation).
  detect::HistoryKind history = detect::HistoryKind::kTreap;
  /// PINT only: >0 replaces the 3 role-workers with N address shards.
  int history_shards = 0;
  std::uint64_t seed = 12345;
  /// Repetitions; the minimum time is reported (paper uses the mean of 5;
  /// min is steadier on a shared 1-CPU container).
  int reps = 1;
  bool verify = true;
  /// Base paths for telemetry export; empty disables. The harness inserts a
  /// per-spec tag ("<kernel>-<system>-w<N>[...]") before the extension so
  /// one base path serves a whole figure's sweep.
  std::string trace_out;
  std::string stats_json;
};

struct BenchResult {
  double seconds = 0.0;            // best wall time of the detection run
  /// Detector construction time for the reported rep (reserve carving, store
  /// setup).  Separated from `seconds` so the steady-state overhead figure
  /// is not padded with setup - and so the arena's cross-instance recycling
  /// (DESIGN.md §13) is visible as setup shrinking after the first rep.
  double setup_seconds = 0.0;
  std::uint64_t races = 0;         // distinct races reported (should be 0)
  detect::Stats::Snapshot stats{}; // from the reported rep (zeros for baseline)
  bool verified = true;
  /// Detector completion status (default-ok for baseline runs).
  detect::RunResult detect{};
  /// Telemetry files actually written for this spec ("" when not requested,
  /// not a detector run, or the build has PINT_TELEMETRY=OFF).
  std::string trace_path;
  std::string stats_path;
};

/// Runs the spec; aborts on verification failure or unexpected races.
/// Without telemetry the best-of-reps result is returned; with telemetry
/// only the LAST rep is traced and that rep is returned, so the numbers a
/// figure prints are the numbers in the exported files.
BenchResult run_spec(const RunSpec& spec);

/// Command-line helpers shared by the figure binaries.
struct Args {
  double scale = -1.0;  // <0: binary default
  int workers = -1;
  int reps = 1;
  std::vector<std::string> kernels;  // empty: binary default
  std::string trace_out;   // --trace-out=FILE (Chrome trace JSON base path)
  std::string stats_json;  // --stats-json=FILE (metrics JSON base path)
  std::string json;        // --json FILE: figure-level summary JSON (only
                           // figure binaries that document it emit one)
};
Args parse_args(int argc, char** argv);

/// Prints the standard header naming the machine constraints (1-CPU
/// container vs the paper's 2x20-core Xeon).
void print_environment_note(const char* figure);

}  // namespace pint::bench
