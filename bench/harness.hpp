#pragma once

// Shared benchmark harness: runs a kernel under one of the four systems the
// paper evaluates (baseline / STINT / PINT / C-RACER) and returns wall time
// plus the detector's stats. Used by every figure-reproduction binary.

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "detect/stats.hpp"

namespace pint::bench {

enum class System { kBaseline, kStint, kPint, kPintSeq, kCracer };

struct RunSpec {
  std::string kernel;
  System system = System::kBaseline;
  double scale = 1.0;
  /// Workers executing the computation. For PINT these are core workers
  /// (the three treap workers come on top, as in the paper's "P-3" setup).
  int workers = 1;
  bool coalesce = true;
  std::uint64_t seed = 12345;
  /// Repetitions; the minimum time is reported (paper uses the mean of 5;
  /// min is steadier on a shared 1-CPU container).
  int reps = 1;
  bool verify = true;
};

struct RunResult {
  double seconds = 0.0;            // best wall time of the detection run
  std::uint64_t races = 0;         // distinct races reported (should be 0)
  detect::Stats::Snapshot stats{}; // from the best rep (zeros for baseline)
  bool verified = true;
};

/// Runs the spec; aborts on verification failure or unexpected races.
RunResult run_spec(const RunSpec& spec);

/// Command-line helpers shared by the figure binaries.
struct Args {
  double scale = -1.0;  // <0: binary default
  int workers = -1;
  int reps = 1;
  std::vector<std::string> kernels;  // empty: binary default
};
Args parse_args(int argc, char** argv);

/// Prints the standard header naming the machine constraints (1-CPU
/// container vs the paper's 2x20-core Xeon).
void print_environment_note(const char* figure);

}  // namespace pint::bench
