// Reproduces Figure 2: PINT's parallelization overhead and work breakdown.
//
// Left half:  parallelization overhead = PINT one-core time / STINT time,
//             and the one-core work breakdown across PINT's components
//             (core, writer treap, right-most reader treap, left-most
//             reader treap) measured with the phased one-core mode.
// Right half: parallel execution - time until the core component finished
//             vs total time including the asynchronous history drain.
//
// Expected shape: overhead around 1.0-1.5x; treap work small relative to
// core work except fft; core time ~= total time (history overlaps) except
// fft, where the treap component dominates.

#include <cstdio>

#include "bench/harness.hpp"
#include "kernels/kernels.hpp"

using namespace pint;
using bench::RunSpec;
using bench::System;

int main(int argc, char** argv) {
  bench::Args args = bench::parse_args(argc, argv);
  const double scale = args.scale > 0 ? args.scale : 8.0;
  const int par_workers = args.workers > 0 ? args.workers : 4;
  const auto& kernels =
      args.kernels.empty() ? kernels::kernel_names() : args.kernels;

  bench::print_environment_note(
      "Figure 2: parallelization overhead and work breakdown of PINT");
  std::printf("# scale=%.3g; parallel column uses %d core workers + 3 treap workers\n\n",
              scale, par_workers);

  std::printf("%-6s | %9s | %9s %9s %9s %9s | %9s %9s\n", "bench", "par.ovh",
              "core(s)", "writer(s)", "rreader(s)", "lreader(s)", "parcore(s)",
              "partotal(s)");
  std::printf("-------+-----------+------------------------------------------"
              "+---------------------\n");

  for (const auto& name : kernels) {
    RunSpec s;
    s.kernel = name;
    s.scale = scale;
    s.reps = args.reps;
    s.workers = 1;
    s.trace_out = args.trace_out;
    s.stats_json = args.stats_json;

    s.system = System::kStint;
    const auto stint = bench::run_spec(s);
    s.system = System::kPintSeq;
    const auto p1 = bench::run_spec(s);

    s.system = System::kPint;
    s.workers = par_workers;
    const auto pn = bench::run_spec(s);

    std::printf("%-6s | %8.2fx | %9.3f %9.3f %9.3f %9.3f | %9.3f %9.3f\n",
                name.c_str(), p1.seconds / stint.seconds,
                double(p1.stats.core_ns) * 1e-9,
                double(p1.stats.writer_ns) * 1e-9,
                double(p1.stats.rreader_ns) * 1e-9,
                double(p1.stats.lreader_ns) * 1e-9,
                double(pn.stats.core_ns) * 1e-9,
                double(pn.stats.total_ns) * 1e-9);
  }
  std::printf(
      "\n# par.ovh = PINT-1-core / STINT (paper: 1.03x-1.41x).\n"
      "# core/writer/rreader/lreader: one-core phased work breakdown.\n"
      "# parcore vs partotal: little gap => asynchronous history keeps up.\n");
  return 0;
}
