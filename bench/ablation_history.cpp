// Ablation: interval treap vs per-granule hashmap as the access-history
// store, everything else (pipeline, coalescing, reachability) identical.
//
// This isolates the paper's central data-structure claim from its pipeline
// contribution: STINT rows compare the stores synchronously; PINT rows
// compare them under the asynchronous three-worker pipeline.  Expected
// shape: the treap wins big wherever coalescing produces large single-touch
// intervals (heat, sort: one treap op replaces interval_bytes/8 hashmap
// ops); the gap shrinks to ~1-2x where intervals are tiny (fft) or where
// the same granules are re-touched so the map hits hot slots (mmul).

#include <cstdio>

#include "bench/harness.hpp"
#include "kernels/kernels.hpp"

using namespace pint;
using bench::RunSpec;
using bench::System;

namespace {

double run_one(const bench::Args& args, const std::string& kernel,
               double scale, System system, detect::HistoryKind kind,
               int workers) {
  RunSpec s;
  s.kernel = kernel;
  s.scale = scale;
  s.system = system;
  s.history = kind;
  s.workers = workers;
  s.reps = args.reps;
  s.trace_out = args.trace_out;
  s.stats_json = args.stats_json;
  return bench::run_spec(s).seconds;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Args args = bench::parse_args(argc, argv);
  const double scale = args.scale > 0 ? args.scale : 4.0;
  const int workers = args.workers > 0 ? args.workers : 4;
  const auto& kernels =
      args.kernels.empty() ? kernels::kernel_names() : args.kernels;

  bench::print_environment_note(
      "Ablation: access-history store (interval treap vs per-granule hashmap)");
  std::printf("# scale=%.3g; PINT rows use %d core workers + 3 history workers\n\n",
              scale, workers);
  std::printf("%-6s | %12s %12s %9s | %12s %12s %9s\n", "bench",
              "STINT-treap", "STINT-hash", "hash/treap", "PINT-treap",
              "PINT-hash", "hash/treap");
  std::printf("-------+---------------------------------------+--------------------------------------\n");

  for (const auto& name : kernels) {
    const double st =
        run_one(args, name, scale, System::kStint, detect::HistoryKind::kTreap, 1);
    const double sh = run_one(args, name, scale, System::kStint,
                              detect::HistoryKind::kGranuleMap, 1);
    const double pt = run_one(args, name, scale, System::kPint,
                              detect::HistoryKind::kTreap, workers);
    const double ph = run_one(args, name, scale, System::kPint,
                              detect::HistoryKind::kGranuleMap, workers);
    std::printf("%-6s | %11.3fs %11.3fs %8.2fx | %11.3fs %11.3fs %8.2fx\n",
                name.c_str(), st, sh, sh / st, pt, ph, ph / pt);
  }
  std::printf("\n# hash/treap > 1 quantifies the interval treap's advantage "
              "for that kernel.\n");
  return 0;
}
