// Reproduces Figure 1: running times of the seven benchmarks.
//
// Left half:  single-core times of baseline, STINT, PINT (one-core phased
//             mode), and C-RACER, with race-detection overhead factors in
//             brackets (system / baseline).
// Right half: multi-worker times of baseline, PINT (N core workers + 3
//             treap workers), and C-RACER (N workers), with scalability vs
//             the system's own single-core run in parentheses.
//
// Expected shape (paper §IV-A): PINT's overhead is close to STINT's and far
// below C-RACER's everywhere except fft, where tiny strided accesses erase
// the interval advantage and C-RACER is competitive or better.

#include <cstdio>

#include "bench/harness.hpp"
#include "kernels/kernels.hpp"

using namespace pint;
using bench::RunSpec;
using bench::System;

int main(int argc, char** argv) {
  bench::Args args = bench::parse_args(argc, argv);
  const double scale = args.scale > 0 ? args.scale : 8.0;
  const int par_workers = args.workers > 0 ? args.workers : 4;
  const auto& kernels =
      args.kernels.empty() ? kernels::kernel_names() : args.kernels;

  bench::print_environment_note("Figure 1: running time overview");
  std::printf("# scale=%.3g, parallel runs use %d workers (+3 treap workers for PINT)\n\n",
              scale, par_workers);

  std::printf("%-6s | %10s %18s %18s %18s | %12s %16s %16s\n", "bench",
              "base1(s)", "STINT [ovh]", "PINT1 [ovh]", "C-RACER1 [ovh]",
              "baseN(s)", "PINT-N (scal)", "C-RACER-N (scal)");
  std::printf("-------+-----------------------------------------------------"
              "--------------+------------------------------------------------\n");

  for (const auto& name : kernels) {
    RunSpec s;
    s.kernel = name;
    s.scale = scale;
    s.reps = args.reps;
    s.workers = 1;
    s.trace_out = args.trace_out;
    s.stats_json = args.stats_json;

    s.system = System::kBaseline;
    const auto base1 = bench::run_spec(s);
    s.system = System::kStint;
    const auto stint = bench::run_spec(s);
    s.system = System::kPintSeq;
    const auto pint1 = bench::run_spec(s);
    s.system = System::kCracer;
    const auto cracer1 = bench::run_spec(s);

    s.workers = par_workers;
    s.system = System::kBaseline;
    const auto basen = bench::run_spec(s);
    s.system = System::kPint;
    const auto pintn = bench::run_spec(s);
    s.system = System::kCracer;
    const auto cracern = bench::run_spec(s);

    std::printf(
        "%-6s | %10.3f %10.3f [%5.2fx] %10.3f [%5.2fx] %10.3f [%6.2fx] | "
        "%12.3f %9.3f (%4.2fx) %9.3f (%4.2fx)\n",
        name.c_str(), base1.seconds, stint.seconds,
        stint.seconds / base1.seconds, pint1.seconds,
        pint1.seconds / base1.seconds, cracer1.seconds,
        cracer1.seconds / base1.seconds, basen.seconds, pintn.seconds,
        pint1.seconds / pintn.seconds, cracern.seconds,
        cracer1.seconds / cracern.seconds);
  }
  std::printf(
      "\n# [ovh] = time / baseline-1-worker time; (scal) = own 1-worker time /"
      " N-worker time.\n");
  return 0;
}
