// Ablation: how much of PINT/STINT's advantage comes from coalescing
// accesses into intervals (the design choice DESIGN.md calls out).
//
// With coalescing OFF, every recorded access becomes its own access-history
// operation - the treap is then paying per access like a hashmap but with
// O(log n) operations, which is exactly why the paper's fft row looks the
// way it does.

#include <cstdio>

#include "bench/harness.hpp"
#include "kernels/kernels.hpp"

using namespace pint;
using bench::RunSpec;
using bench::System;

int main(int argc, char** argv) {
  bench::Args args = bench::parse_args(argc, argv);
  const double scale = args.scale > 0 ? args.scale : 4.0;
  const auto& kernels =
      args.kernels.empty() ? kernels::kernel_names() : args.kernels;

  bench::print_environment_note("Ablation: runtime coalescing on/off (STINT)");
  std::printf("# scale=%.3g\n\n", scale);
  std::printf("%-6s | %12s %12s %8s | %14s %14s\n", "bench", "coalesce(s)",
              "raw(s)", "ratio", "intervals", "raw records");
  std::printf("-------+-------------------------------------+------------------------------\n");

  for (const auto& name : kernels) {
    RunSpec s;
    s.kernel = name;
    s.scale = scale;
    s.reps = args.reps;
    s.workers = 1;
    s.system = System::kStint;
    s.trace_out = args.trace_out;
    s.stats_json = args.stats_json;

    s.coalesce = true;
    const auto on = bench::run_spec(s);
    s.coalesce = false;
    const auto off = bench::run_spec(s);

    std::printf("%-6s | %12.3f %12.3f %7.2fx | %14llu %14llu\n", name.c_str(),
                on.seconds, off.seconds, off.seconds / on.seconds,
                (unsigned long long)(on.stats.read_intervals +
                                     on.stats.write_intervals),
                (unsigned long long)(off.stats.read_intervals +
                                     off.stats.write_intervals));
  }
  std::printf(
      "\n# ratio quantifies the benefit of runtime coalescing. Dense kernels\n"
      "# (per-element records) gain 30-50x; sort records at range granularity\n"
      "# already, so it gains ~nothing; fft gains only on its butterfly\n"
      "# streams - the strided gathers stay one interval per access either\n"
      "# way, which is why fft is the interval history's worst case.\n");
  return 0;
}
