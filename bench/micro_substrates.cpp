// Microbenchmarks for the remaining substrates: order maintenance, the
// work-stealing deque, the access-history queue, and spawn/sync overhead.

#include <benchmark/benchmark.h>

#include <thread>
#include <vector>

#include "detect/strand.hpp"
#include "om/order_maintenance.hpp"
#include "pint/ah_queue.hpp"
#include "runtime/deque.hpp"
#include "runtime/scheduler.hpp"
#include "support/rng.hpp"

using namespace pint;

namespace {

void BM_OmInsertAfterChain(benchmark::State& state) {
  om::List l;
  om::Item* cur = l.base();
  std::uint64_t n = 0;
  for (auto _ : state) {
    cur = l.insert_after(cur);
    ++n;
  }
  state.SetItemsProcessed(std::int64_t(n));
}
BENCHMARK(BM_OmInsertAfterChain);

void BM_OmInsertAfterHotspot(benchmark::State& state) {
  // Repeated insert-after-the-same-item: the worst case for tag gaps,
  // forcing regular redistributions.
  om::List l;
  om::Item* pivot = l.insert_after(l.base());
  std::uint64_t n = 0;
  for (auto _ : state) {
    l.insert_after(pivot);
    ++n;
  }
  state.SetItemsProcessed(std::int64_t(n));
}
BENCHMARK(BM_OmInsertAfterHotspot);

void BM_OmPrecedes(benchmark::State& state) {
  om::List l;
  std::vector<om::Item*> items{l.base()};
  om::Item* cur = l.base();
  for (int i = 0; i < (1 << 14); ++i) items.push_back(cur = l.insert_after(cur));
  Xoshiro256 rng(3);
  bool acc = false;
  for (auto _ : state) {
    const auto* a = items[rng.next_below(items.size())];
    const auto* b = items[rng.next_below(items.size())];
    acc ^= l.precedes(a, b);
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_OmPrecedes);

void BM_OmPrecedesUnderConcurrentInserts(benchmark::State& state) {
  om::List l;
  std::vector<om::Item*> items{l.base()};
  om::Item* cur = l.base();
  for (int i = 0; i < (1 << 12); ++i) items.push_back(cur = l.insert_after(cur));
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    Xoshiro256 rng(5);
    om::Item* w = l.base();
    while (!stop.load(std::memory_order_relaxed)) {
      w = l.insert_after(items[rng.next_below(items.size())]);
      (void)w;
    }
  });
  Xoshiro256 rng(7);
  bool acc = false;
  for (auto _ : state) {
    const auto* a = items[rng.next_below(items.size())];
    const auto* b = items[rng.next_below(items.size())];
    acc ^= l.precedes(a, b);
  }
  stop.store(true);
  writer.join();
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_OmPrecedesUnderConcurrentInserts);

void BM_DequePushPop(benchmark::State& state) {
  rt::WsDeque d;
  auto* fake = reinterpret_cast<rt::TaskFrame*>(0x10);
  std::uint64_t n = 0;
  for (auto _ : state) {
    d.push(fake);
    benchmark::DoNotOptimize(d.pop());
    ++n;
  }
  state.SetItemsProcessed(std::int64_t(n));
}
BENCHMARK(BM_DequePushPop);

void BM_AhQueuePushReclaim(benchmark::State& state) {
  pintd::AhQueue q(1 << 10);
  std::vector<detect::Strand> strands(1 << 10);
  std::size_t i = 0;
  std::uint64_t n = 0;
  for (auto _ : state) {
    detect::Strand* s = &strands[i++ & ((1 << 10) - 1)];
    s->consumers.store(0, std::memory_order_relaxed);
    while (!q.try_push(s)) q.reclaim([](detect::Strand*) {});
    ++n;
  }
  state.SetItemsProcessed(std::int64_t(n));
}
BENCHMARK(BM_AhQueuePushReclaim);

void BM_SpawnSyncFib(benchmark::State& state) {
  struct Fib {
    static void go(int n, long* out) {
      if (n < 2) {
        *out = n;
        return;
      }
      long a = 0, b = 0;
      rt::SpawnScope sc;
      sc.spawn([&] { go(n - 1, &a); });
      go(n - 2, &b);
      sc.sync();
      *out = a + b;
    }
  };
  rt::Scheduler::Options so;
  so.workers = int(state.range(0));
  for (auto _ : state) {
    rt::Scheduler sched(so);
    long r = 0;
    sched.run([&] { Fib::go(20, &r); });
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_SpawnSyncFib)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
