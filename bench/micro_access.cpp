// Access hot-path microbenchmark (DESIGN.md §9, §11): ns/access for the
// thread-local AccessCursor fast path vs the classic record_access_slow
// route, cursor and reachability-memo hit rates plus policy counters per
// kernel, and the geo-mean detection overhead over all seven kernels.  The
// perf-smoke and perfgate CI lanes run this and check the emitted JSON
// (see scripts/ci.sh, scripts/perfgate.py).
//
//   ./micro_access [--json FILE] [--accesses N] [--scale S]
//
// Exit status is non-zero when the cursor fast path fails its acceptance
// bar (>= 3x lower ns/access than the slow route), so the lane catches a
// regression that silently falls off the fast path.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/harness.hpp"
#include "detect/instrument.hpp"
#include "kernels/kernels.hpp"
#include "stint/stint_detector.hpp"
#include "support/timer.hpp"

using namespace pint;

namespace {

struct AccessTiming {
  double ns_per_access = 0.0;
  double hit_rate = 0.0;  // cursor hit rate (0 on the slow route)
};

/// Times a sequential read loop inside one detector strand.  `fast` flips
/// the global cursor knob BEFORE the run, so the same record_read() wrapper
/// dispatches to the cursor (fast) or to record_access_slow (slow): the two
/// timings differ only in the hot path under test.
AccessTiming time_access_loop(bool fast, std::uint64_t accesses) {
  detect::set_access_fast_path(fast);
  stint::StintDetector::Options opt;
  stint::StintDetector det(opt);
  std::vector<unsigned char> buf(1 << 20);
  const std::uint64_t mask = buf.size() - 1;
  double best_s = 1e300;
  det.run([&] {
    for (int rep = 0; rep < 3; ++rep) {
      Timer t;
      for (std::uint64_t i = 0; i < accesses; ++i) {
        record_read(buf.data() + ((i * 8) & mask), 8);
      }
      best_s = std::min(best_s, t.elapsed_s());
    }
  });
  detect::set_access_fast_path(true);
  const auto s = det.stats().snapshot();
  AccessTiming out;
  out.ns_per_access = best_s * 1e9 / double(accesses);
  if (s.fastpath_accesses > 0) {
    out.hit_rate = double(s.fastpath_hits) / double(s.fastpath_accesses);
  }
  return out;
}

struct KernelRow {
  std::string name;
  double base_s = 0.0;
  double pint_s = 0.0;
  double setup_s = 0.0;   // detector construction (outside the steady state)
  double overhead = 0.0;  // pint_s / base_s
  std::uint64_t memo_queries = 0;
  std::uint64_t memo_hits = 0;
  double memo_hit_rate = 0.0;
  double cursor_hit_rate = 0.0;
  double tail_hit_rate = 0.0;
  std::uint64_t cursor_spills = 0;
  std::uint64_t policy_switches = 0;
  std::uint64_t policy_bypass = 0;
};

KernelRow run_kernel(const std::string& name, double scale) {
  bench::RunSpec spec;
  spec.kernel = name;
  spec.scale = scale;
  // Best-of: these kernels are sub-ms at bench scale, so reps are nearly
  // free, and on a shared 1-core host the best-of-3 minimum still carried
  // ~10% geomean jitter between runs - 7 reps converges it to the true min.
  spec.reps = 7;
  KernelRow row;
  row.name = name;
  spec.system = bench::System::kBaseline;
  row.base_s = bench::run_spec(spec).seconds;
  spec.system = bench::System::kPintSeq;
  const bench::BenchResult r = bench::run_spec(spec);
  row.pint_s = r.seconds;
  row.setup_s = r.setup_seconds;
  row.overhead = row.base_s > 0 ? row.pint_s / row.base_s : 0.0;
  row.memo_queries = r.stats.memo_queries;
  row.memo_hits = r.stats.memo_hits;
  if (row.memo_queries > 0) {
    row.memo_hit_rate = double(row.memo_hits) / double(row.memo_queries);
  }
  if (r.stats.fastpath_accesses > 0) {
    row.cursor_hit_rate =
        double(r.stats.fastpath_hits) / double(r.stats.fastpath_accesses);
  }
  const std::uint64_t tails =
      r.stats.tail_probe_hits + r.stats.tail_probe_misses;
  if (tails > 0) {
    row.tail_hit_rate = double(r.stats.tail_probe_hits) / double(tails);
  }
  row.cursor_spills = r.stats.cursor_spills;
  row.policy_switches = r.stats.policy_switches;
  row.policy_bypass = r.stats.policy_bypass;
  return row;
}

bool write_json(const std::string& path, const AccessTiming& fast,
                const AccessTiming& slow, double speedup,
                const std::vector<KernelRow>& rows, double geomean,
                double geomean3) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "{\n");
  std::fprintf(f,
               "  \"ns_per_access\": {\"fast\": %.3f, \"slow\": %.3f, "
               "\"speedup\": %.2f},\n",
               fast.ns_per_access, slow.ns_per_access, speedup);
  std::fprintf(f, "  \"cursor_hit_rate\": %.4f,\n", fast.hit_rate);
  std::fprintf(f, "  \"geomean_overhead\": %.3f,\n", geomean);
  // Over {mmul, heat, sort} only - the kernel set older BENCH_access.json
  // snapshots used - so the perf gate compares like with like across the
  // switch to the full seven-kernel sweep.
  std::fprintf(f, "  \"geomean_overhead_3kernel\": %.3f,\n", geomean3);
  std::fprintf(f, "  \"kernels\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const KernelRow& r = rows[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"base_s\": %.6f, \"pintseq_s\": "
                 "%.6f, \"setup_s\": %.6f, "
                 "\"overhead\": %.2f, \"cursor_hit_rate\": %.4f, "
                 "\"tail_hit_rate\": %.4f, "
                 "\"cursor_spills\": %llu, \"policy_switches\": %llu, "
                 "\"policy_bypass\": %llu, "
                 "\"memo_queries\": %llu, \"memo_hits\": %llu, "
                 "\"memo_hit_rate\": %.4f}%s\n",
                 r.name.c_str(), r.base_s, r.pint_s, r.setup_s, r.overhead,
                 r.cursor_hit_rate, r.tail_hit_rate,
                 (unsigned long long)r.cursor_spills,
                 (unsigned long long)r.policy_switches,
                 (unsigned long long)r.policy_bypass,
                 (unsigned long long)r.memo_queries,
                 (unsigned long long)r.memo_hits, r.memo_hit_rate,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_access.json";
  std::uint64_t accesses = std::uint64_t(1) << 22;
  double scale = 0.2;
  for (int i = 1; i < argc; ++i) {
    const char* s = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", s);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(s, "--json") == 0) {
      json_path = next();
    } else if (std::strcmp(s, "--accesses") == 0) {
      accesses = std::strtoull(next(), nullptr, 10);
    } else if (std::strcmp(s, "--scale") == 0) {
      scale = std::atof(next());
    } else if (std::strcmp(s, "--policy") == 0) {
      // Force a cursor policy for the whole run (perf A/B of the adaptive
      // machine; verdicts are policy-invariant, see DESIGN.md §11).
      const std::string p = next();
      if (p == "adaptive") {
        detect::set_cursor_policy(detect::CursorPolicy::kAdaptive);
      } else if (p == "inline") {
        detect::set_cursor_policy(detect::CursorPolicy::kInline);
      } else if (p == "wide") {
        detect::set_cursor_policy(detect::CursorPolicy::kWide);
      } else if (p == "bypass") {
        detect::set_cursor_policy(detect::CursorPolicy::kBypass);
      } else {
        std::fprintf(stderr, "unknown --policy %s\n", p.c_str());
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: %s [--json FILE] [--accesses N] [--scale S] "
                   "[--policy adaptive|inline|wide|bypass]\n",
                   argv[0]);
      return 2;
    }
  }

  bench::print_environment_note("micro_access: hot-path cost");

  const AccessTiming fast = time_access_loop(true, accesses);
  const AccessTiming slow = time_access_loop(false, accesses);
  const double speedup =
      fast.ns_per_access > 0 ? slow.ns_per_access / fast.ns_per_access : 0.0;
  std::printf("# %llu accesses, best of 3 reps\n",
              (unsigned long long)accesses);
  std::printf("%-28s %10.3f ns/access  (cursor hit rate %.4f)\n",
              "cursor fast path", fast.ns_per_access, fast.hit_rate);
  std::printf("%-28s %10.3f ns/access\n", "record_access_slow route",
              slow.ns_per_access);
  std::printf("%-28s %10.2fx\n", "speedup", speedup);

  // Full seven-kernel sweep (paper table order).  Older snapshots covered
  // only {mmul, heat, sort}; a separate geomean over that subset is kept in
  // the JSON so the perf gate can compare across the switch.
  const std::vector<std::string>& kernel_set = kernels::kernel_names();
  std::vector<KernelRow> rows;
  double log_sum = 0.0, log_sum3 = 0.0;
  std::size_t n3 = 0;
  std::printf("\n# kernels at scale %.2f (baseline vs one-core phased PINT)\n",
              scale);
  std::printf("%-8s %10s %10s %9s %9s %12s %10s %12s %9s %7s %8s\n", "kernel",
              "base_s", "pint_s", "setup_s", "overhead", "cursor_hit",
              "tail_hit", "memo_hit", "spills", "switch", "bypass");
  for (const auto& name : kernel_set) {
    rows.push_back(run_kernel(name, scale));
    const KernelRow& r = rows.back();
    log_sum += std::log(r.overhead);
    if (r.name == "mmul" || r.name == "heat" || r.name == "sort") {
      log_sum3 += std::log(r.overhead);
      ++n3;
    }
    std::printf(
        "%-8s %10.4f %10.4f %9.5f %8.2fx %12.4f %10.4f %12.4f %9llu %7llu "
        "%8llu\n",
        r.name.c_str(), r.base_s, r.pint_s, r.setup_s, r.overhead,
        r.cursor_hit_rate, r.tail_hit_rate, r.memo_hit_rate,
        (unsigned long long)r.cursor_spills,
        (unsigned long long)r.policy_switches,
        (unsigned long long)r.policy_bypass);
  }
  const double geomean = std::exp(log_sum / double(rows.size()));
  const double geomean3 = n3 > 0 ? std::exp(log_sum3 / double(n3)) : 0.0;
  std::printf("%-8s %31.2fx  (3-kernel equivalent %.2fx)\n", "geomean",
              geomean, geomean3);

  if (!write_json(json_path, fast, slow, speedup, rows, geomean, geomean3)) {
    std::fprintf(stderr, "error: could not write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("\n# wrote %s\n", json_path.c_str());

  if (speedup < 3.0) {
    std::fprintf(stderr,
                 "FAIL: cursor fast path speedup %.2fx is below the 3x "
                 "acceptance bar\n",
                 speedup);
    return 1;
  }
  bool memo_live = false;
  for (const KernelRow& r : rows) memo_live = memo_live || r.memo_hits > 0;
  if (!memo_live) {
    std::fprintf(stderr, "FAIL: no kernel shows a nonzero memo hit rate\n");
    return 1;
  }
  // Hit-rate acceptance bars on the two measured gaps this bench exposed:
  // sort's cursor rate (was 0.00 under the old opens-as-misses accounting)
  // and heat's memo rate (was 0.12 before per-label coordinate caching).
  for (const KernelRow& r : rows) {
    if (r.name == "sort" && r.cursor_hit_rate <= 0.5) {
      std::fprintf(stderr,
                   "FAIL: sort cursor hit rate %.4f is below the 0.5 bar\n",
                   r.cursor_hit_rate);
      return 1;
    }
    if (r.name == "heat" && r.memo_hit_rate <= 0.5) {
      std::fprintf(stderr,
                   "FAIL: heat memo hit rate %.4f is below the 0.5 bar\n",
                   r.memo_hit_rate);
      return 1;
    }
  }
  return 0;
}
