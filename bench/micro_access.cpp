// Access hot-path microbenchmark (DESIGN.md §9): ns/access for the
// thread-local AccessCursor fast path vs the classic record_access_slow
// route, cursor and reachability-memo hit rates, and the geo-mean detection
// overhead on a few small kernels.  The perf-smoke CI lane runs this and
// checks the emitted JSON (see scripts/ci.sh).
//
//   ./micro_access [--json FILE] [--accesses N] [--scale S]
//
// Exit status is non-zero when the cursor fast path fails its acceptance
// bar (>= 3x lower ns/access than the slow route), so the lane catches a
// regression that silently falls off the fast path.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/harness.hpp"
#include "detect/instrument.hpp"
#include "stint/stint_detector.hpp"
#include "support/timer.hpp"

using namespace pint;

namespace {

struct AccessTiming {
  double ns_per_access = 0.0;
  double hit_rate = 0.0;  // cursor hit rate (0 on the slow route)
};

/// Times a sequential read loop inside one detector strand.  `fast` flips
/// the global cursor knob BEFORE the run, so the same record_read() wrapper
/// dispatches to the cursor (fast) or to record_access_slow (slow): the two
/// timings differ only in the hot path under test.
AccessTiming time_access_loop(bool fast, std::uint64_t accesses) {
  detect::set_access_fast_path(fast);
  stint::StintDetector::Options opt;
  stint::StintDetector det(opt);
  std::vector<unsigned char> buf(1 << 20);
  const std::uint64_t mask = buf.size() - 1;
  double best_s = 1e300;
  det.run([&] {
    for (int rep = 0; rep < 3; ++rep) {
      Timer t;
      for (std::uint64_t i = 0; i < accesses; ++i) {
        record_read(buf.data() + ((i * 8) & mask), 8);
      }
      best_s = std::min(best_s, t.elapsed_s());
    }
  });
  detect::set_access_fast_path(true);
  const auto s = det.stats().snapshot();
  AccessTiming out;
  out.ns_per_access = best_s * 1e9 / double(accesses);
  if (s.fastpath_accesses > 0) {
    out.hit_rate = double(s.fastpath_hits) / double(s.fastpath_accesses);
  }
  return out;
}

struct KernelRow {
  std::string name;
  double base_s = 0.0;
  double pint_s = 0.0;
  double overhead = 0.0;  // pint_s / base_s
  std::uint64_t memo_queries = 0;
  std::uint64_t memo_hits = 0;
  double memo_hit_rate = 0.0;
  double cursor_hit_rate = 0.0;
};

KernelRow run_kernel(const std::string& name, double scale) {
  bench::RunSpec spec;
  spec.kernel = name;
  spec.scale = scale;
  spec.reps = 1;
  KernelRow row;
  row.name = name;
  spec.system = bench::System::kBaseline;
  row.base_s = bench::run_spec(spec).seconds;
  spec.system = bench::System::kPintSeq;
  const bench::BenchResult r = bench::run_spec(spec);
  row.pint_s = r.seconds;
  row.overhead = row.base_s > 0 ? row.pint_s / row.base_s : 0.0;
  row.memo_queries = r.stats.memo_queries;
  row.memo_hits = r.stats.memo_hits;
  if (row.memo_queries > 0) {
    row.memo_hit_rate = double(row.memo_hits) / double(row.memo_queries);
  }
  if (r.stats.fastpath_accesses > 0) {
    row.cursor_hit_rate =
        double(r.stats.fastpath_hits) / double(r.stats.fastpath_accesses);
  }
  return row;
}

bool write_json(const std::string& path, const AccessTiming& fast,
                const AccessTiming& slow, double speedup,
                const std::vector<KernelRow>& rows, double geomean) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "{\n");
  std::fprintf(f,
               "  \"ns_per_access\": {\"fast\": %.3f, \"slow\": %.3f, "
               "\"speedup\": %.2f},\n",
               fast.ns_per_access, slow.ns_per_access, speedup);
  std::fprintf(f, "  \"cursor_hit_rate\": %.4f,\n", fast.hit_rate);
  std::fprintf(f, "  \"geomean_overhead\": %.3f,\n", geomean);
  std::fprintf(f, "  \"kernels\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const KernelRow& r = rows[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"base_s\": %.6f, \"pintseq_s\": "
                 "%.6f, \"overhead\": %.2f, \"cursor_hit_rate\": %.4f, "
                 "\"memo_queries\": %llu, \"memo_hits\": %llu, "
                 "\"memo_hit_rate\": %.4f}%s\n",
                 r.name.c_str(), r.base_s, r.pint_s, r.overhead,
                 r.cursor_hit_rate, (unsigned long long)r.memo_queries,
                 (unsigned long long)r.memo_hits, r.memo_hit_rate,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_access.json";
  std::uint64_t accesses = std::uint64_t(1) << 22;
  double scale = 0.2;
  for (int i = 1; i < argc; ++i) {
    const char* s = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", s);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(s, "--json") == 0) {
      json_path = next();
    } else if (std::strcmp(s, "--accesses") == 0) {
      accesses = std::strtoull(next(), nullptr, 10);
    } else if (std::strcmp(s, "--scale") == 0) {
      scale = std::atof(next());
    } else {
      std::fprintf(stderr,
                   "usage: %s [--json FILE] [--accesses N] [--scale S]\n",
                   argv[0]);
      return 2;
    }
  }

  bench::print_environment_note("micro_access: hot-path cost");

  const AccessTiming fast = time_access_loop(true, accesses);
  const AccessTiming slow = time_access_loop(false, accesses);
  const double speedup =
      fast.ns_per_access > 0 ? slow.ns_per_access / fast.ns_per_access : 0.0;
  std::printf("# %llu accesses, best of 3 reps\n",
              (unsigned long long)accesses);
  std::printf("%-28s %10.3f ns/access  (cursor hit rate %.4f)\n",
              "cursor fast path", fast.ns_per_access, fast.hit_rate);
  std::printf("%-28s %10.3f ns/access\n", "record_access_slow route",
              slow.ns_per_access);
  std::printf("%-28s %10.2fx\n", "speedup", speedup);

  const std::vector<std::string> kernel_set = {"mmul", "heat", "sort"};
  std::vector<KernelRow> rows;
  double log_sum = 0.0;
  std::printf("\n# kernels at scale %.2f (baseline vs one-core phased PINT)\n",
              scale);
  std::printf("%-8s %10s %10s %9s %12s %12s\n", "kernel", "base_s", "pint_s",
              "overhead", "cursor_hit", "memo_hit");
  for (const auto& name : kernel_set) {
    rows.push_back(run_kernel(name, scale));
    const KernelRow& r = rows.back();
    log_sum += std::log(r.overhead);
    std::printf("%-8s %10.4f %10.4f %8.2fx %12.4f %12.4f\n", r.name.c_str(),
                r.base_s, r.pint_s, r.overhead, r.cursor_hit_rate,
                r.memo_hit_rate);
  }
  const double geomean = std::exp(log_sum / double(rows.size()));
  std::printf("%-8s %31.2fx\n", "geomean", geomean);

  if (!write_json(json_path, fast, slow, speedup, rows, geomean)) {
    std::fprintf(stderr, "error: could not write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("\n# wrote %s\n", json_path.c_str());

  if (speedup < 3.0) {
    std::fprintf(stderr,
                 "FAIL: cursor fast path speedup %.2fx is below the 3x "
                 "acceptance bar\n",
                 speedup);
    return 1;
  }
  bool memo_live = false;
  for (const KernelRow& r : rows) memo_live = memo_live || r.memo_hits > 0;
  if (!memo_live) {
    std::fprintf(stderr, "FAIL: no kernel shows a nonzero memo hit rate\n");
    return 1;
  }
  return 0;
}
