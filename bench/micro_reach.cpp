// Relabel-storm microbenchmark for the reachability backends (DESIGN.md §14).
//
//   ./micro_reach [--json FILE] [--spawns N] [--no-bar]
//
// Times precedes() under concurrent STRUCTURAL churn, which is exactly the
// regime that separates the two engines: SpOrder's order-maintenance lists
// take tag-exhaustion relabels on hot insertion points and serve readers
// through seqlocks (a relabel storm stalls every concurrent query), while
// DePa labels are immutable words - a query never synchronizes with a spawn.
//
// Both engines are driven by the same harness in ONE binary:
//
//   * half the threads are BUILDERS: each executes a bounded-depth
//     recursive fork-join schedule (spawn descends into the child, joins
//     return to the block's sync strand - depths stay O(log work), like
//     any real cilk-style program, which also keeps DePa paths a few words
//     long).  Three shapes: `deep` (descend-biased: a near-full recursion
//     stack keeps one migrating hot insertion point per builder), `wide`
//     (256-child fan blocks: one sync node, siblings spawned off the
//     continuation chain), `steal` (deep, but every 64 spawns the builder
//     swaps its current strand with a random peer through a shared board,
//     re-creating work-stealing's migrating insertion points - the worst
//     relabel storm SpOrder sees);
//   * the other half are QUERIERS: each draws random pairs from a sliding
//     window over the last 4k published labels and calls precedes() with NO
//     memo - the raw oracle is the thing under test.  (A memo hit costs the
//     same for both engines, so routing through MemoCache only measures the
//     cache; worse, the faster engine publishes more labels, churns the
//     window faster, and gets a *lower* hit rate - an anti-signal.)
//
// Labels are published once into a pre-sized slot array (write the label,
// then release-store the ready flag; queriers acquire-load before reading),
// so the harness itself adds no locks to the measured paths.  Cells are
// TIME-boxed, not count-boxed: SpOrder's spawn rate under a storm runs an
// order of magnitude below DePa's (that asymmetry is itself a finding, see
// the committed numbers), so a fixed spawn budget either starves the
// queriers on one engine or runs far longer on the other.  Every cell gets the same
// wall-clock window with churn live for all of it; builders that fill the
// publication array keep spawning unpublished, so the structural churn
// never stops.  Throughput numbers are queries/sec and spawns/sec over the
// window.
//
// The committed BENCH_reach.json is the evidence behind this PR's
// acceptance bar, enforced in-binary: DePa must clear 2x SpOrder
// queries/sec on the steal schedule at 16 threads.

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "reach/engine.hpp"
#include "support/rng.hpp"
#include "support/spinlock.hpp"

using namespace pint;

namespace {

constexpr int kWindow = 4096;     // queriers sample the last 4k labels
constexpr int kStealPeriod = 64;  // steal schedule: swap frontiers every N
constexpr int kFanBlock = 256;    // wide schedule: spawns per sync block

enum class Sched { kDeep, kWide, kSteal };

const char* sched_name(Sched s) {
  switch (s) {
    case Sched::kDeep: return "deep";
    case Sched::kWide: return "wide";
    case Sched::kSteal: return "steal";
  }
  return "?";
}

struct CellResult {
  std::string engine;
  std::string schedule;
  int threads = 0;
  double elapsed_s = 0;
  std::uint64_t spawns = 0;
  std::uint64_t queries = 0;
  double spawns_per_s = 0;
  double queries_per_s = 0;
};

template <class E>
struct Slot {
  typename E::Label label;
  std::atomic<std::uint32_t> ready{0};
};

/// One benchmark cell: build + query the given engine under one schedule
/// for a fixed wall-clock window.
template <class E>
CellResult run_cell(Sched sched, int threads, std::uint64_t capacity,
                    int msec, std::uint64_t prebuild) {
  const int builders = threads / 2;
  const int queriers = threads - builders;

  E eng;
  // Pre-grow the structure to detector scale before the clock starts: a real
  // run holds millions of strand labels, and SpOrder's storm cost scales with
  // list size (a top-level relabel walks every group inside an open seqlock
  // window), so a cold list flatters it enormously.  Single-threaded, deep
  // recursive shape, unpublished - it only exists to mature the structure.
  if (prebuild > 0) {
    Xoshiro256 rng(991);
    std::vector<typename E::Label> syncs;
    typename E::Label warm_sync;
    auto cur = eng.on_spawn(eng.root_label(), &warm_sync).child;
    for (std::uint64_t spawned = 0; spawned < prebuild;) {
      if (syncs.size() < 48 && (syncs.empty() || rng.next_below(100) < 92)) {
        typename E::Label sync;
        const auto s = eng.on_spawn(cur, &sync);
        syncs.push_back(sync);
        cur = s.child;
        ++spawned;
      } else {
        cur = syncs.back();
        syncs.pop_back();
      }
    }
  }
  std::vector<Slot<E>> slots(capacity + std::uint64_t(builders));
  std::atomic<std::uint64_t> reserve{0};
  std::atomic<int> ready_threads{0};
  std::atomic<bool> go{false};

  // Seed each builder with its own child of a root fan, so frontiers start
  // parallel to each other (steal swaps then cross genuinely unrelated
  // subtrees).
  auto frontier = std::vector<typename E::Label>(std::size_t(builders));
  {
    auto cur = eng.root_label();
    typename E::Label sync;
    for (int b = 0; b < builders; ++b) {
      const auto s = eng.on_spawn(cur, &sync);
      frontier[std::size_t(b)] = s.child;
      cur = s.cont;
    }
  }
  // Steal board: one published frontier per builder, swapped under a lock
  // (off the measured fast path: every kStealPeriod spawns).
  Spinlock board_mu;
  std::vector<typename E::Label> board = frontier;

  auto publish = [&](std::uint64_t idx, const typename E::Label& l) {
    slots[idx].label = l;
    slots[idx].ready.store(1, std::memory_order_release);
  };

  std::vector<std::uint64_t> queries_done(std::size_t(queriers), 0);
  std::vector<std::uint64_t> spawns_done(std::size_t(builders), 0);
  std::atomic<std::int64_t> deadline_ns{0};  // set by main at the go signal
  auto past_deadline = [&] {
    return std::chrono::steady_clock::now().time_since_epoch().count() >=
           deadline_ns.load(std::memory_order_relaxed);
  };

  std::vector<std::thread> crew;
  crew.reserve(std::size_t(threads));

  // Schedule shape: descend probability (out of 100), sibling fan per
  // block, and max recursion depth.
  const int p_descend = sched == Sched::kWide ? 25 : 92;
  const int fan = sched == Sched::kWide ? kFanBlock : 1;
  const int max_depth = sched == Sched::kWide ? 8 : 48;

  for (int b = 0; b < builders; ++b) {
    crew.emplace_back([&, b] {
      Xoshiro256 rng(std::uint64_t(b) * 77 + 13);
      // Explicit recursion stack: each frame is an open sync block (its
      // continuation strand and sync node); popping a frame joins the block
      // and continues from the sync strand.
      struct Frame {
        typename E::Label cont;
        typename E::Label sync;
        int fan_left;
      };
      std::vector<Frame> stack;
      stack.reserve(std::size_t(max_depth) + 1);
      auto cur = frontier[std::size_t(b)];
      std::uint64_t spawned = 0;
      int since_swap = 0;
      ready_threads.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      while (true) {
        // Deadline checked every step: a single storm-afflicted on_spawn is
        // the expensive unit here, so a sparser check could overshoot badly.
        if (past_deadline()) break;
        const bool can_descend = int(stack.size()) < max_depth;
        if (can_descend &&
            (stack.empty() || int(rng.next_below(100)) < p_descend)) {
          // Open a block at the current strand; descend into the child.
          Frame f;
          f.sync = typename E::Label{};
          const auto s = eng.on_spawn(cur, &f.sync);
          f.cont = s.cont;
          f.fan_left = fan - 1;
          stack.push_back(f);
          const std::uint64_t idx =
              reserve.fetch_add(1, std::memory_order_relaxed);
          if (idx < capacity) publish(idx, s.child);
          cur = s.child;
          ++spawned;
        } else if (!stack.empty() && stack.back().fan_left > 0) {
          // Widen the innermost block: a sibling off its continuation.
          Frame& f = stack.back();
          const auto s = eng.on_spawn(f.cont, &f.sync);
          f.cont = s.cont;
          --f.fan_left;
          const std::uint64_t idx =
              reserve.fetch_add(1, std::memory_order_relaxed);
          if (idx < capacity) publish(idx, s.child);
          cur = s.child;
          ++spawned;
        } else if (!stack.empty()) {
          // Join: the block's strands complete; continue after its sync.
          cur = stack.back().sync;
          stack.pop_back();
        }
        if (sched == Sched::kSteal && ++since_swap >= kStealPeriod) {
          since_swap = 0;
          const auto other =
              std::size_t(rng.next_below(std::uint64_t(builders)));
          LockGuard<Spinlock> g(board_mu);
          std::swap(cur, board[other]);
        }
      }
      spawns_done[std::size_t(b)] = spawned;
    });
  }

  for (int q = 0; q < queriers; ++q) {
    crew.emplace_back([&, q] {
      Xoshiro256 rng(std::uint64_t(q) * 1931 + 7);
      std::uint64_t done = 0;
      std::uint64_t attempts = 0;
      std::uint64_t sink = 0;
      ready_threads.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      while (true) {
        if ((attempts++ & 63) == 0 && past_deadline()) break;
        const std::uint64_t hi = reserve.load(std::memory_order_relaxed);
        if (hi == 0) continue;
        const std::uint64_t top = hi < capacity ? hi : capacity;
        const std::uint64_t lo = top > kWindow ? top - kWindow : 0;
        const std::uint64_t span = top - lo;
        if (span == 0) continue;
        const std::uint64_t a = lo + rng.next_below(span);
        const std::uint64_t b = lo + rng.next_below(span);
        if (slots[a].ready.load(std::memory_order_acquire) == 0 ||
            slots[b].ready.load(std::memory_order_acquire) == 0) {
          continue;
        }
        sink += eng.precedes(slots[a].label, slots[b].label, nullptr) ? 1 : 0;
        ++done;
      }
      queries_done[std::size_t(q)] = done + (sink & 1);  // keep sink alive
    });
  }

  while (ready_threads.load() < threads) std::this_thread::yield();
  const auto t0 = std::chrono::steady_clock::now();
  deadline_ns.store(
      (t0 + std::chrono::milliseconds(msec)).time_since_epoch().count(),
      std::memory_order_relaxed);
  go.store(true, std::memory_order_release);
  for (auto& t : crew) t.join();
  const auto t1 = std::chrono::steady_clock::now();

  CellResult r;
  r.engine = E::kName;
  r.schedule = sched_name(sched);
  r.threads = threads;
  r.elapsed_s = std::chrono::duration<double>(t1 - t0).count();
  for (std::uint64_t d : spawns_done) r.spawns += d;
  for (std::uint64_t d : queries_done) r.queries += d;
  r.spawns_per_s = double(r.spawns) / r.elapsed_s;
  r.queries_per_s = double(r.queries) / r.elapsed_s;
  return r;
}

bool write_json(const std::string& path, std::uint64_t capacity,
                std::uint64_t prebuild, const std::vector<CellResult>& cells,
                double storm_ratio) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "{\n  \"bench\": \"micro_reach\",\n");
  std::fprintf(f, "  \"slot_capacity\": %llu,\n", (unsigned long long)capacity);
  std::fprintf(f, "  \"prebuild_strands\": %llu,\n",
               (unsigned long long)prebuild);
  std::fprintf(f, "  \"cells\": [\n");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellResult& c = cells[i];
    std::fprintf(f,
                 "    {\"engine\": \"%s\", \"schedule\": \"%s\", "
                 "\"threads\": %d, \"elapsed_s\": %.4f, "
                 "\"spawns_per_s\": %.0f, \"queries_per_s\": %.0f}%s\n",
                 c.engine.c_str(), c.schedule.c_str(), c.threads, c.elapsed_s,
                 c.spawns_per_s, c.queries_per_s,
                 i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"ratios\": [\n");
  bool first = true;
  for (const CellResult& d : cells) {
    if (d.engine != "depa") continue;
    for (const CellResult& s : cells) {
      if (s.engine != "sporder" || s.schedule != d.schedule ||
          s.threads != d.threads) {
        continue;
      }
      std::fprintf(f,
                   "%s    {\"schedule\": \"%s\", \"threads\": %d, "
                   "\"depa_over_sporder_qps\": %.2f}",
                   first ? "" : ",\n", d.schedule.c_str(), d.threads,
                   d.queries_per_s / s.queries_per_s);
      first = false;
    }
  }
  std::fprintf(f, "\n  ],\n");
  std::fprintf(f, "  \"storm_geomean_16\": %.2f\n}\n", storm_ratio);
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_reach.json";
  std::uint64_t capacity = std::uint64_t(1) << 20;  // published-label slots
  int msec = 1000;                                  // wall window per cell
  std::uint64_t prebuild = std::uint64_t(1) << 21;  // pre-grown strand count
  bool enforce_bar = true;
  for (int i = 1; i < argc; ++i) {
    const char* s = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", s);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(s, "--json") == 0) {
      json_path = next();
    } else if (std::strcmp(s, "--slots") == 0) {
      capacity = std::strtoull(next(), nullptr, 10);
    } else if (std::strcmp(s, "--msec") == 0) {
      msec = int(std::strtol(next(), nullptr, 10));
    } else if (std::strcmp(s, "--prebuild") == 0) {
      prebuild = std::strtoull(next(), nullptr, 10);
    } else if (std::strcmp(s, "--no-bar") == 0) {
      enforce_bar = false;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--json FILE] [--slots N] [--msec M] "
                   "[--prebuild N] [--no-bar]\n",
                   argv[0]);
      return 2;
    }
  }

  std::printf(
      "# micro_reach: precedes() under structural churn, %d ms/cell, "
      "%llu label slots, %llu pre-grown strands\n",
      msec, (unsigned long long)capacity, (unsigned long long)prebuild);
  std::printf("%-8s %-6s %8s %12s %14s %14s\n", "engine", "sched", "threads",
              "elapsed_s", "spawns/s", "queries/s");

  std::vector<CellResult> cells;
  double storm_log_sum = 0;
  int storm_cells = 0;
  for (const int threads : {4, 16}) {
    for (const Sched sched : {Sched::kDeep, Sched::kWide, Sched::kSteal}) {
      CellResult sp = run_cell<reach::SpOrderEngine>(sched, threads, capacity,
                                                     msec, prebuild);
      CellResult dp =
          run_cell<reach::DePaEngine>(sched, threads, capacity, msec, prebuild);
      for (const CellResult* c : {&sp, &dp}) {
        std::printf("%-8s %-6s %8d %12.3f %14.0f %14.0f\n", c->engine.c_str(),
                    c->schedule.c_str(), c->threads, c->elapsed_s,
                    c->spawns_per_s, c->queries_per_s);
      }
      std::printf("         %-6s %8d ratio depa/sporder qps: %.2fx\n",
                  sched_name(sched), threads,
                  dp.queries_per_s / sp.queries_per_s);
      if (threads == 16) {
        storm_log_sum += std::log(dp.queries_per_s / sp.queries_per_s);
        ++storm_cells;
      }
      cells.push_back(sp);
      cells.push_back(dp);
    }
  }
  // Aggregate over the three 16-worker storm schedules with a geometric
  // mean: any single cell's ratio swings wildly run-to-run (whether a
  // relabel cascade lands inside the window is scheduling luck - observed
  // spread on one cell is ~2x to ~10000x), and a ratio-of-rates aggregates
  // multiplicatively, not additively.
  const double storm_geomean = std::exp(storm_log_sum / storm_cells);
  std::printf("         storm geomean (all 16-thread cells): %.2fx\n",
              storm_geomean);

  if (!write_json(json_path, capacity, prebuild, cells, storm_geomean)) {
    std::fprintf(stderr, "error: could not write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("\n# wrote %s\n", json_path.c_str());

  // Acceptance bar (DESIGN.md §14): across the relabel-storm schedules at
  // 16 threads DePa queries must average >= 2x SpOrder's rate.
  if (enforce_bar && storm_geomean < 2.0) {
    std::fprintf(stderr,
                 "FAIL: 16-thread depa/sporder qps geomean %.2f is below "
                 "the 2.0x bar\n",
                 storm_geomean);
    return 1;
  }
  return 0;
}
