// Extension experiment (paper §VI): sharded history workers.
//
// The paper's scaling limit is the busiest sequential treap worker - for
// fft (and mmul/sort at large inputs) the history component dominates.
// This harness compares the paper's 3 role-workers against N address-
// sharded history workers and reports the BUSIEST history worker's
// processing time: on real parallel hardware that number is the history
// component's critical path, so driving it down with shard count is exactly
// the relief the paper's conclusion asks for.  (On this 1-CPU container
// wall-clock totals cannot improve; the critical-path column is the
// meaningful one.)

#include <algorithm>
#include <cstdio>

#include "bench/harness.hpp"
#include "kernels/kernels.hpp"

using namespace pint;
using bench::RunSpec;
using bench::System;

namespace {

struct Row {
  double total_s;
  double busiest_history_s;
  double history_work_s;
};

Row run(const bench::Args& args, const std::string& kernel, double scale,
        int shards) {
  RunSpec spec;
  spec.kernel = kernel;
  spec.scale = scale;
  spec.system = System::kPint;
  spec.workers = 2;
  spec.history_shards = shards;
  spec.reps = args.reps;
  spec.trace_out = args.trace_out;
  spec.stats_json = args.stats_json;
  const auto s = bench::run_spec(spec).stats;
  Row r;
  r.total_s = double(s.total_ns) * 1e-9;
  if (shards == 0) {
    r.busiest_history_s =
        double(std::max({s.writer_ns, s.lreader_ns, s.rreader_ns})) * 1e-9;
    r.history_work_s = double(s.writer_ns + s.lreader_ns + s.rreader_ns) * 1e-9;
  } else {
    r.busiest_history_s = double(s.lreader_ns) * 1e-9;  // max shard
    r.history_work_s = double(s.rreader_ns) * 1e-9;     // sum of shards
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Args args = bench::parse_args(argc, argv);
  const double scale = args.scale > 0 ? args.scale : 8.0;
  const std::vector<std::string> kernels =
      args.kernels.empty() ? std::vector<std::string>{"fft", "mmul", "sort"}
                           : args.kernels;

  bench::print_environment_note(
      "Extension (paper SVI): address-sharded history workers");
  std::printf("# scale=%.3g, 2 core workers; critical path = busiest history "
              "worker's busy time\n\n", scale);
  std::printf("%-6s %-14s | %10s %14s %14s\n", "bench", "config", "total(s)",
              "crit.path(s)", "total work(s)");
  std::printf("----------------------+------------------------------------------\n");

  for (const auto& name : kernels) {
    const Row base = run(args, name, scale, 0);
    std::printf("%-6s %-14s | %10.3f %14.3f %14.3f\n", name.c_str(),
                "3 role-workers", base.total_s, base.busiest_history_s,
                base.history_work_s);
    for (int shards : {2, 4, 8}) {
      const Row r = run(args, name, scale, shards);
      std::printf("%-6s %2d %-11s | %10.3f %14.3f %14.3f\n", "", shards,
                  "shards", r.total_s, r.busiest_history_s, r.history_work_s);
    }
    std::printf("\n");
  }
  std::printf("# crit.path should drop roughly linearly with shard count; if\n"
              "# it does, the paper's treap bottleneck is removed on real\n"
              "# multi-core hardware.\n");
  return 0;
}
