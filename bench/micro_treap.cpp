// Microbenchmarks for the interval treap - the data-structure-level version
// of the paper's access-history tradeoff: one treap operation covers a whole
// interval, while a hashmap history pays per location.

#include <benchmark/benchmark.h>

#include <unordered_map>

#include "support/rng.hpp"
#include "treap/interval_treap.hpp"

using namespace pint;

namespace {

treap::Accessor acc(std::uint64_t sid) { return {{}, sid}; }

void BM_TreapInsertDisjoint(benchmark::State& state) {
  const std::uint64_t span = 1 << 20;
  std::uint64_t i = 0;
  treap::IntervalTreap t;
  for (auto _ : state) {
    const std::uint64_t lo = (i * 64) % span;
    t.insert_writer(lo, lo + 63, acc(i), [](auto, auto, const auto&) {});
    ++i;
  }
  state.SetItemsProcessed(std::int64_t(i));
}
BENCHMARK(BM_TreapInsertDisjoint);

void BM_TreapInsertOverlapping(benchmark::State& state) {
  Xoshiro256 rng(7);
  const std::uint64_t span = 1 << 20;
  std::uint64_t i = 0;
  treap::IntervalTreap t;
  for (auto _ : state) {
    const std::uint64_t lo = rng.next_below(span);
    const std::uint64_t len = 1 + rng.next_below(512);
    t.insert_writer(lo, lo + len, acc(i), [](auto, auto, const auto&) {});
    ++i;
  }
  state.SetItemsProcessed(std::int64_t(i));
}
BENCHMARK(BM_TreapInsertOverlapping);

void BM_TreapQuery(benchmark::State& state) {
  treap::IntervalTreap t;
  const std::uint64_t n = std::uint64_t(state.range(0));
  for (std::uint64_t i = 0; i < n; ++i) {
    t.insert_writer(i * 64, i * 64 + 63, acc(i), [](auto, auto, const auto&) {});
  }
  Xoshiro256 rng(9);
  std::uint64_t hits = 0;
  for (auto _ : state) {
    const std::uint64_t lo = rng.next_below(n * 64);
    t.query(lo, lo + 255, [&](auto, auto, const auto&) { ++hits; });
  }
  benchmark::DoNotOptimize(hits);
}
BENCHMARK(BM_TreapQuery)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17);

void BM_TreapEraseRange(benchmark::State& state) {
  Xoshiro256 rng(11);
  treap::IntervalTreap t;
  std::uint64_t i = 0;
  for (auto _ : state) {
    // Keep the tree populated: insert 4, erase a larger random range.
    for (int k = 0; k < 4; ++k, ++i) {
      const std::uint64_t lo = rng.next_below(1 << 20);
      t.insert_writer(lo, lo + 127, acc(i), [](auto, auto, const auto&) {});
    }
    const std::uint64_t lo = rng.next_below(1 << 20);
    t.erase_range(lo, lo + 1023);
  }
}
BENCHMARK(BM_TreapEraseRange);

/// The per-location alternative: same coverage recorded into a hashmap with
/// one entry per 8-byte granule (what C-RACER's shadow memory pays).
void BM_HashmapPerGranuleInsert(benchmark::State& state) {
  std::unordered_map<std::uint64_t, std::uint64_t> shadow;
  Xoshiro256 rng(13);
  std::uint64_t i = 0;
  for (auto _ : state) {
    const std::uint64_t lo = rng.next_below(1 << 20);
    for (std::uint64_t g = lo / 8; g <= (lo + 511) / 8; ++g) shadow[g] = i;
    ++i;
  }
  state.SetItemsProcessed(std::int64_t(i));
}
BENCHMARK(BM_HashmapPerGranuleInsert);

}  // namespace

BENCHMARK_MAIN();
