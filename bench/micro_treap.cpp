// Microbenchmarks for the interval treap - the data-structure-level version
// of the paper's access-history tradeoff: one treap operation covers a whole
// interval, while a hashmap history pays per location.
//
// Besides the google-benchmark suite, `--bulk-json FILE` runs a self-timed
// comparison of the per-record insert/query/erase loops against the bulk
// sorted-run API (DESIGN.md §10) and writes the results as JSON.  The writer
// rows are gated: the run API must be at least kSpeedupBar x faster per
// interval or the process exits non-zero (the ci.sh perf lane runs this).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "support/rng.hpp"
#include "treap/interval_treap.hpp"

using namespace pint;

namespace {

treap::Accessor acc(std::uint64_t sid) { return {{}, sid}; }

void BM_TreapInsertDisjoint(benchmark::State& state) {
  const std::uint64_t span = 1 << 20;
  const std::uint64_t slots = span / 64;  // disjoint 64-byte slots per treap
  std::uint64_t i = 0, total = 0;
  auto t = std::make_unique<treap::IntervalTreap>();
  for (auto _ : state) {
    if (i == slots) {
      // Address space exhausted: start a fresh treap so every timed insert
      // really is disjoint (the old `(i*64) % span` wrap silently turned
      // them into same-slot replacements once i passed `slots`).
      state.PauseTiming();
      t = std::make_unique<treap::IntervalTreap>();
      i = 0;
      state.ResumeTiming();
    }
    const std::uint64_t lo = i * 64;
    t->insert_writer(lo, lo + 63, acc(i), [](auto, auto, const auto&) {});
    ++i;
    ++total;
  }
  state.SetItemsProcessed(std::int64_t(total));
}
BENCHMARK(BM_TreapInsertDisjoint);

void BM_TreapInsertOverlapping(benchmark::State& state) {
  Xoshiro256 rng(7);
  const std::uint64_t span = 1 << 20;
  std::uint64_t i = 0;
  treap::IntervalTreap t;
  for (auto _ : state) {
    const std::uint64_t lo = rng.next_below(span);
    const std::uint64_t len = 1 + rng.next_below(512);
    t.insert_writer(lo, lo + len, acc(i), [](auto, auto, const auto&) {});
    ++i;
  }
  state.SetItemsProcessed(std::int64_t(i));
}
BENCHMARK(BM_TreapInsertOverlapping);

void BM_TreapQuery(benchmark::State& state) {
  treap::IntervalTreap t;
  const std::uint64_t n = std::uint64_t(state.range(0));
  for (std::uint64_t i = 0; i < n; ++i) {
    t.insert_writer(i * 64, i * 64 + 63, acc(i), [](auto, auto, const auto&) {});
  }
  Xoshiro256 rng(9);
  std::uint64_t hits = 0;
  for (auto _ : state) {
    const std::uint64_t lo = rng.next_below(n * 64);
    t.query(lo, lo + 255, [&](auto, auto, const auto&) { ++hits; });
  }
  benchmark::DoNotOptimize(hits);
}
BENCHMARK(BM_TreapQuery)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17);

void BM_TreapEraseRange(benchmark::State& state) {
  Xoshiro256 rng(11);
  treap::IntervalTreap t;
  std::uint64_t i = 0;
  for (auto _ : state) {
    // Keep the tree populated: insert 4, erase a larger random range.
    for (int k = 0; k < 4; ++k, ++i) {
      const std::uint64_t lo = rng.next_below(1 << 20);
      t.insert_writer(lo, lo + 127, acc(i), [](auto, auto, const auto&) {});
    }
    const std::uint64_t lo = rng.next_below(1 << 20);
    t.erase_range(lo, lo + 1023);
  }
}
BENCHMARK(BM_TreapEraseRange);

/// The per-location alternative: same coverage recorded into a hashmap with
/// one entry per 8-byte granule (what C-RACER's shadow memory pays).
void BM_HashmapPerGranuleInsert(benchmark::State& state) {
  std::unordered_map<std::uint64_t, std::uint64_t> shadow;
  Xoshiro256 rng(13);
  std::uint64_t i = 0;
  for (auto _ : state) {
    const std::uint64_t lo = rng.next_below(1 << 20);
    for (std::uint64_t g = lo / 8; g <= (lo + 511) / 8; ++g) shadow[g] = i;
    ++i;
  }
  state.SetItemsProcessed(std::int64_t(i));
}
BENCHMARK(BM_HashmapPerGranuleInsert);

// --- bulk-run self-timed comparison (--bulk-json) --------------------------

struct Iv {
  treap::addr_t lo, hi;
};

constexpr std::size_t kRuns = 256;     // strand records per pass
constexpr std::size_t kRunLen = 64;    // intervals per record (sorted run)
constexpr std::uint64_t kLen = 64;     // bytes per interval
constexpr int kReps = 3;               // best-of for each timed pass
constexpr double kSpeedupBar = 2.0;    // enforced on the writer rows

/// Layout of one pass: run r holds kRunLen intervals of kLen bytes spaced
/// `gap` bytes apart (gap 0 = adjacent, the coalesced-record shape).
std::vector<std::vector<Iv>> make_runs(std::uint64_t gap) {
  std::vector<std::vector<Iv>> runs(kRuns);
  const std::uint64_t stride = kLen + gap;
  for (std::size_t r = 0; r < kRuns; ++r) {
    const std::uint64_t base = std::uint64_t(r) * kRunLen * stride;
    runs[r].reserve(kRunLen);
    for (std::size_t j = 0; j < kRunLen; ++j) {
      const std::uint64_t lo = base + std::uint64_t(j) * stride;
      runs[r].push_back({lo, lo + kLen - 1});
    }
  }
  return runs;
}

void populate(treap::IntervalTreap& t, const std::vector<std::vector<Iv>>& runs) {
  for (const auto& run : runs) {
    t.insert_writer_run(run.data(), run.size(), acc(1),
                        [](auto, auto, const auto&) {});
  }
}

double now_ns() {
  return double(std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now().time_since_epoch())
                    .count());
}

struct Row {
  const char* name;
  double per_record_ns;  // ns per interval, best of kReps
  double bulk_ns;
  bool enforced;
  double speedup() const { return bulk_ns == 0 ? 0 : per_record_ns / bulk_ns; }
};

/// Times `body(treap)` over a freshly populated treap, best of kReps, and
/// returns ns per interval.  `sink` defeats dead-code elimination.
template <class Body>
double time_pass(const std::vector<std::vector<Iv>>& runs, Body&& body,
                 std::uint64_t* sink) {
  double best = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    treap::IntervalTreap t(0x5EED + rep);
    populate(t, runs);
    const double t0 = now_ns();
    body(t, sink);
    const double ns = now_ns() - t0;
    if (rep == 0 || ns < best) best = ns;
  }
  return best / double(kRuns * kRunLen);
}

/// One-time correctness gate: per-record and run-API replacement passes must
/// leave identical treap contents and fire the same callback sequence.
bool bulk_matches_per_record(const std::vector<std::vector<Iv>>& runs) {
  treap::IntervalTreap a(0xABCD), b(0xABCD);
  populate(a, runs);
  populate(b, runs);
  std::vector<std::uint64_t> ca, cb;
  for (const auto& run : runs) {
    for (const Iv& iv : run) {
      a.insert_writer(iv.lo, iv.hi, acc(2), [&](auto lo, auto hi, const auto& w) {
        ca.push_back(lo);
        ca.push_back(hi);
        ca.push_back(w.sid);
      });
    }
    b.insert_writer_run(run.data(), run.size(), acc(2),
                        [&](auto lo, auto hi, const auto& w) {
                          cb.push_back(lo);
                          cb.push_back(hi);
                          cb.push_back(w.sid);
                        });
  }
  if (ca != cb) return false;
  std::vector<std::uint64_t> fa, fb;
  a.for_each([&](auto lo, auto hi, const auto& w) {
    fa.push_back(lo);
    fa.push_back(hi);
    fa.push_back(w.sid);
  });
  b.for_each([&](auto lo, auto hi, const auto& w) {
    fb.push_back(lo);
    fb.push_back(hi);
    fb.push_back(w.sid);
  });
  return fa == fb && a.check_invariants() && b.check_invariants();
}

Row bench_writer(const char* name, std::uint64_t gap) {
  const auto runs = make_runs(gap);
  std::uint64_t sink = 0;
  const double per_rec = time_pass(runs, [&](treap::IntervalTreap& t,
                                             std::uint64_t* s) {
    for (const auto& run : runs) {
      for (const Iv& iv : run) {
        t.insert_writer(iv.lo, iv.hi, acc(2),
                        [&](auto lo, auto, const auto&) { *s += lo; });
      }
    }
  }, &sink);
  const double bulk = time_pass(runs, [&](treap::IntervalTreap& t,
                                          std::uint64_t* s) {
    for (const auto& run : runs) {
      t.insert_writer_run(run.data(), run.size(), acc(2),
                          [&](auto lo, auto, const auto&) { *s += lo; });
    }
  }, &sink);
  std::printf("# sink=%llu\n", (unsigned long long)sink);
  return {name, per_rec, bulk, true};
}

Row bench_reader(const char* name, std::uint64_t gap) {
  const auto runs = make_runs(gap);
  auto resolve = [](const treap::Accessor& prev, const treap::Accessor&) {
    return (prev.sid & 1) != 0;  // deterministic winner rule
  };
  std::uint64_t sink = 0;
  const double per_rec = time_pass(runs, [&](treap::IntervalTreap& t,
                                             std::uint64_t* s) {
    for (const auto& run : runs) {
      for (const Iv& iv : run) {
        t.insert_reader(iv.lo, iv.hi, acc(2), resolve);
      }
    }
    *s += t.size();
  }, &sink);
  const double bulk = time_pass(runs, [&](treap::IntervalTreap& t,
                                          std::uint64_t* s) {
    for (const auto& run : runs) {
      t.insert_reader_run(run.data(), run.size(), acc(2), resolve);
    }
    *s += t.size();
  }, &sink);
  std::printf("# sink=%llu\n", (unsigned long long)sink);
  return {name, per_rec, bulk, true};
}

Row bench_erase(const char* name, std::uint64_t gap) {
  const auto runs = make_runs(gap);
  std::uint64_t sink = 0;
  const double per_rec = time_pass(runs, [&](treap::IntervalTreap& t,
                                             std::uint64_t* s) {
    for (const auto& run : runs) {
      for (const Iv& iv : run) t.erase_range(iv.lo, iv.hi);
    }
    *s += t.size();
  }, &sink);
  const double bulk = time_pass(runs, [&](treap::IntervalTreap& t,
                                          std::uint64_t* s) {
    for (const auto& run : runs) t.erase_run(run.data(), run.size());
    *s += t.size();
  }, &sink);
  std::printf("# sink=%llu\n", (unsigned long long)sink);
  return {name, per_rec, bulk, true};
}

int run_bulk_bench(const std::string& json_path) {
  if (!bulk_matches_per_record(make_runs(64)) ||
      !bulk_matches_per_record(make_runs(0))) {
    std::fprintf(stderr, "FAIL: run API diverges from per-record inserts\n");
    return 1;
  }
  std::vector<Row> rows;
  rows.push_back(bench_writer("writer_disjoint", 64));
  rows.push_back(bench_writer("writer_adjacent", 0));
  rows.push_back(bench_reader("reader_disjoint", 64));
  rows.push_back(bench_erase("erase_disjoint", 64));

  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "FAIL: cannot open %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"micro_treap_bulk\",\n");
  std::fprintf(f, "  \"runs\": %zu, \"run_len\": %zu, \"interval_bytes\": %llu,\n",
               kRuns, kRunLen, (unsigned long long)kLen);
  std::fprintf(f, "  \"speedup_bar\": %.2f,\n  \"rows\": [\n", kSpeedupBar);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"per_record_ns_per_interval\": %.2f, "
                 "\"bulk_ns_per_interval\": %.2f, \"speedup\": %.2f, "
                 "\"enforced\": %s}%s\n",
                 r.name, r.per_record_ns, r.bulk_ns, r.speedup(),
                 r.enforced ? "true" : "false",
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);

  bool ok = true;
  for (const Row& r : rows) {
    std::printf("%-16s per-record %8.2f ns/iv  bulk %8.2f ns/iv  speedup %.2fx%s\n",
                r.name, r.per_record_ns, r.bulk_ns, r.speedup(),
                r.enforced ? "" : "  (informational)");
    if (r.enforced && r.speedup() < kSpeedupBar) {
      std::fprintf(stderr, "FAIL: %s speedup %.2fx < %.2fx bar\n", r.name,
                   r.speedup(), kSpeedupBar);
      ok = false;
    }
  }
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  // `--bulk-json FILE` (or =FILE) bypasses google-benchmark entirely: the
  // bulk-vs-per-record comparison is self-timed so it can enforce the CI bar
  // and emit the compact JSON the perf lane archives.
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--bulk-json") == 0 && i + 1 < argc) {
      return run_bulk_bench(argv[i + 1]);
    }
    if (std::strncmp(argv[i], "--bulk-json=", 12) == 0) {
      return run_bulk_bench(argv[i] + 12);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
