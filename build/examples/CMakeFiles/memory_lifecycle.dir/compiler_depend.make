# Empty compiler generated dependencies file for memory_lifecycle.
# This may be replaced when dependencies are built.
