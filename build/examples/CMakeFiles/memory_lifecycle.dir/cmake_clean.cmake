file(REMOVE_RECURSE
  "CMakeFiles/memory_lifecycle.dir/memory_lifecycle.cpp.o"
  "CMakeFiles/memory_lifecycle.dir/memory_lifecycle.cpp.o.d"
  "memory_lifecycle"
  "memory_lifecycle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_lifecycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
