# Empty compiler generated dependencies file for debug_parallel_sort.
# This may be replaced when dependencies are built.
