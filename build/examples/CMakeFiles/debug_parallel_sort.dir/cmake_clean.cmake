file(REMOVE_RECURSE
  "CMakeFiles/debug_parallel_sort.dir/debug_parallel_sort.cpp.o"
  "CMakeFiles/debug_parallel_sort.dir/debug_parallel_sort.cpp.o.d"
  "debug_parallel_sort"
  "debug_parallel_sort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debug_parallel_sort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
