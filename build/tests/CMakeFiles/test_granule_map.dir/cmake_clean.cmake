file(REMOVE_RECURSE
  "CMakeFiles/test_granule_map.dir/test_granule_map.cpp.o"
  "CMakeFiles/test_granule_map.dir/test_granule_map.cpp.o.d"
  "test_granule_map"
  "test_granule_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_granule_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
