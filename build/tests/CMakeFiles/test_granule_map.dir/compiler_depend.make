# Empty compiler generated dependencies file for test_granule_map.
# This may be replaced when dependencies are built.
