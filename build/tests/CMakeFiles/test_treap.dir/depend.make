# Empty dependencies file for test_treap.
# This may be replaced when dependencies are built.
