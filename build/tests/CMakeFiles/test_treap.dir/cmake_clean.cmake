file(REMOVE_RECURSE
  "CMakeFiles/test_treap.dir/test_treap.cpp.o"
  "CMakeFiles/test_treap.dir/test_treap.cpp.o.d"
  "test_treap"
  "test_treap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_treap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
