file(REMOVE_RECURSE
  "CMakeFiles/test_random_property.dir/test_random_property.cpp.o"
  "CMakeFiles/test_random_property.dir/test_random_property.cpp.o.d"
  "test_random_property"
  "test_random_property.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_random_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
