file(REMOVE_RECURSE
  "CMakeFiles/test_parallel_for.dir/test_parallel_for.cpp.o"
  "CMakeFiles/test_parallel_for.dir/test_parallel_for.cpp.o.d"
  "test_parallel_for"
  "test_parallel_for.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parallel_for.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
