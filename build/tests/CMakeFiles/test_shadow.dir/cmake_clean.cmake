file(REMOVE_RECURSE
  "CMakeFiles/test_shadow.dir/test_shadow.cpp.o"
  "CMakeFiles/test_shadow.dir/test_shadow.cpp.o.d"
  "test_shadow"
  "test_shadow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shadow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
