# Empty dependencies file for test_om.
# This may be replaced when dependencies are built.
