file(REMOVE_RECURSE
  "CMakeFiles/test_om.dir/test_om.cpp.o"
  "CMakeFiles/test_om.dir/test_om.cpp.o.d"
  "test_om"
  "test_om.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_om.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
