# Empty dependencies file for test_reach.
# This may be replaced when dependencies are built.
