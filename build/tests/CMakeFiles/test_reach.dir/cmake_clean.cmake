file(REMOVE_RECURSE
  "CMakeFiles/test_reach.dir/test_reach.cpp.o"
  "CMakeFiles/test_reach.dir/test_reach.cpp.o.d"
  "test_reach"
  "test_reach.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reach.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
