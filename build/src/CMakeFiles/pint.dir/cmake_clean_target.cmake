file(REMOVE_RECURSE
  "libpint.a"
)
