file(REMOVE_RECURSE
  "CMakeFiles/pint.dir/cracer/cracer_detector.cpp.o"
  "CMakeFiles/pint.dir/cracer/cracer_detector.cpp.o.d"
  "CMakeFiles/pint.dir/detect/instrument.cpp.o"
  "CMakeFiles/pint.dir/detect/instrument.cpp.o.d"
  "CMakeFiles/pint.dir/kernels/chol.cpp.o"
  "CMakeFiles/pint.dir/kernels/chol.cpp.o.d"
  "CMakeFiles/pint.dir/kernels/fft.cpp.o"
  "CMakeFiles/pint.dir/kernels/fft.cpp.o.d"
  "CMakeFiles/pint.dir/kernels/heat.cpp.o"
  "CMakeFiles/pint.dir/kernels/heat.cpp.o.d"
  "CMakeFiles/pint.dir/kernels/mmul.cpp.o"
  "CMakeFiles/pint.dir/kernels/mmul.cpp.o.d"
  "CMakeFiles/pint.dir/kernels/registry.cpp.o"
  "CMakeFiles/pint.dir/kernels/registry.cpp.o.d"
  "CMakeFiles/pint.dir/kernels/sort.cpp.o"
  "CMakeFiles/pint.dir/kernels/sort.cpp.o.d"
  "CMakeFiles/pint.dir/kernels/strassen.cpp.o"
  "CMakeFiles/pint.dir/kernels/strassen.cpp.o.d"
  "CMakeFiles/pint.dir/om/order_maintenance.cpp.o"
  "CMakeFiles/pint.dir/om/order_maintenance.cpp.o.d"
  "CMakeFiles/pint.dir/oracle/oracle_detector.cpp.o"
  "CMakeFiles/pint.dir/oracle/oracle_detector.cpp.o.d"
  "CMakeFiles/pint.dir/pint/pint_detector.cpp.o"
  "CMakeFiles/pint.dir/pint/pint_detector.cpp.o.d"
  "CMakeFiles/pint.dir/runtime/scheduler.cpp.o"
  "CMakeFiles/pint.dir/runtime/scheduler.cpp.o.d"
  "CMakeFiles/pint.dir/stint/stint_detector.cpp.o"
  "CMakeFiles/pint.dir/stint/stint_detector.cpp.o.d"
  "CMakeFiles/pint.dir/support/fiber.cpp.o"
  "CMakeFiles/pint.dir/support/fiber.cpp.o.d"
  "libpint.a"
  "libpint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
