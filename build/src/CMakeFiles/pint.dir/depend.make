# Empty dependencies file for pint.
# This may be replaced when dependencies are built.
