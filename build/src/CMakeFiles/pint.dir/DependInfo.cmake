
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cracer/cracer_detector.cpp" "src/CMakeFiles/pint.dir/cracer/cracer_detector.cpp.o" "gcc" "src/CMakeFiles/pint.dir/cracer/cracer_detector.cpp.o.d"
  "/root/repo/src/detect/instrument.cpp" "src/CMakeFiles/pint.dir/detect/instrument.cpp.o" "gcc" "src/CMakeFiles/pint.dir/detect/instrument.cpp.o.d"
  "/root/repo/src/kernels/chol.cpp" "src/CMakeFiles/pint.dir/kernels/chol.cpp.o" "gcc" "src/CMakeFiles/pint.dir/kernels/chol.cpp.o.d"
  "/root/repo/src/kernels/fft.cpp" "src/CMakeFiles/pint.dir/kernels/fft.cpp.o" "gcc" "src/CMakeFiles/pint.dir/kernels/fft.cpp.o.d"
  "/root/repo/src/kernels/heat.cpp" "src/CMakeFiles/pint.dir/kernels/heat.cpp.o" "gcc" "src/CMakeFiles/pint.dir/kernels/heat.cpp.o.d"
  "/root/repo/src/kernels/mmul.cpp" "src/CMakeFiles/pint.dir/kernels/mmul.cpp.o" "gcc" "src/CMakeFiles/pint.dir/kernels/mmul.cpp.o.d"
  "/root/repo/src/kernels/registry.cpp" "src/CMakeFiles/pint.dir/kernels/registry.cpp.o" "gcc" "src/CMakeFiles/pint.dir/kernels/registry.cpp.o.d"
  "/root/repo/src/kernels/sort.cpp" "src/CMakeFiles/pint.dir/kernels/sort.cpp.o" "gcc" "src/CMakeFiles/pint.dir/kernels/sort.cpp.o.d"
  "/root/repo/src/kernels/strassen.cpp" "src/CMakeFiles/pint.dir/kernels/strassen.cpp.o" "gcc" "src/CMakeFiles/pint.dir/kernels/strassen.cpp.o.d"
  "/root/repo/src/om/order_maintenance.cpp" "src/CMakeFiles/pint.dir/om/order_maintenance.cpp.o" "gcc" "src/CMakeFiles/pint.dir/om/order_maintenance.cpp.o.d"
  "/root/repo/src/oracle/oracle_detector.cpp" "src/CMakeFiles/pint.dir/oracle/oracle_detector.cpp.o" "gcc" "src/CMakeFiles/pint.dir/oracle/oracle_detector.cpp.o.d"
  "/root/repo/src/pint/pint_detector.cpp" "src/CMakeFiles/pint.dir/pint/pint_detector.cpp.o" "gcc" "src/CMakeFiles/pint.dir/pint/pint_detector.cpp.o.d"
  "/root/repo/src/runtime/scheduler.cpp" "src/CMakeFiles/pint.dir/runtime/scheduler.cpp.o" "gcc" "src/CMakeFiles/pint.dir/runtime/scheduler.cpp.o.d"
  "/root/repo/src/stint/stint_detector.cpp" "src/CMakeFiles/pint.dir/stint/stint_detector.cpp.o" "gcc" "src/CMakeFiles/pint.dir/stint/stint_detector.cpp.o.d"
  "/root/repo/src/support/fiber.cpp" "src/CMakeFiles/pint.dir/support/fiber.cpp.o" "gcc" "src/CMakeFiles/pint.dir/support/fiber.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
