file(REMOVE_RECURSE
  "CMakeFiles/ext_sharded_history.dir/ext_sharded_history.cpp.o"
  "CMakeFiles/ext_sharded_history.dir/ext_sharded_history.cpp.o.d"
  "ext_sharded_history"
  "ext_sharded_history.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_sharded_history.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
