# Empty compiler generated dependencies file for ext_sharded_history.
# This may be replaced when dependencies are built.
