# Empty compiler generated dependencies file for micro_treap.
# This may be replaced when dependencies are built.
