file(REMOVE_RECURSE
  "CMakeFiles/micro_treap.dir/micro_treap.cpp.o"
  "CMakeFiles/micro_treap.dir/micro_treap.cpp.o.d"
  "micro_treap"
  "micro_treap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_treap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
