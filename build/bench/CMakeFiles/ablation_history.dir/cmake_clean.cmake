file(REMOVE_RECURSE
  "CMakeFiles/ablation_history.dir/ablation_history.cpp.o"
  "CMakeFiles/ablation_history.dir/ablation_history.cpp.o.d"
  "ablation_history"
  "ablation_history.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_history.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
