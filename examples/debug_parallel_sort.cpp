// A debugging-session walkthrough: a parallel mergesort with a subtle
// off-by-one in its parallel merge. The bug corrupts output only under some
// schedules - on most runs the sort "works". PINT reports the race
// deterministically on every run, because race detection depends on the
// logical series-parallel structure, not on the observed interleaving.
//
//   $ ./debug_parallel_sort

#include <algorithm>
#include <cstdio>
#include <vector>

#include "pint_api.hpp"
#include "support/rng.hpp"

using namespace pint;

namespace {

using Iter = long*;

void merge_halves(const long* x, std::size_t nx, const long* y, std::size_t ny,
                  long* out, bool buggy) {
  if (nx + ny <= 512) {
    record_read(x, nx * sizeof(long));
    record_read(y, ny * sizeof(long));
    record_write(out, (nx + ny) * sizeof(long));
    std::merge(x, x + nx, y, y + ny, out);
    return;
  }
  if (nx < ny) {
    merge_halves(y, ny, x, nx, out, buggy);
    return;
  }
  const std::size_t mx = nx / 2;
  record_read(&x[mx], sizeof(long));
  const std::size_t my = std::size_t(std::lower_bound(y, y + ny, x[mx]) - y);
  // BUG (when `buggy`): the right sub-merge starts one slot early, so the
  // two parallel sub-merges both write out[mx+my-1].
  const std::size_t off = buggy && mx + my > 0 ? mx + my - 1 : mx + my;
  rt::SpawnScope sc;
  sc.spawn([=] { merge_halves(x, mx, y, my, out, buggy); });
  merge_halves(x + mx, nx - mx, y + my, ny - my, out + off, buggy);
  sc.sync();
}

void sort_rec(long* a, long* tmp, std::size_t n, bool buggy) {
  if (n <= 512) {
    record_read(a, n * sizeof(long));
    record_write(a, n * sizeof(long));
    std::sort(a, a + n);
    return;
  }
  const std::size_t h = n / 2;
  rt::SpawnScope sc;
  sc.spawn([=] { sort_rec(a, tmp, h, buggy); });
  sort_rec(a + h, tmp + h, n - h, buggy);
  sc.sync();
  merge_halves(a, h, a + h, n - h, tmp, buggy);
  record_read(tmp, n * sizeof(long));
  record_write(a, n * sizeof(long));
  std::copy(tmp, tmp + n, a);
}

bool run_once(bool buggy, int trial) {
  Xoshiro256 rng(1234);
  std::vector<long> v(1 << 15), tmp(v.size());
  for (long& x : v) x = long(rng.next() % 100000);

  pintd::PintDetector::Options opt;
  opt.core_workers = 4;
  opt.seed = std::uint64_t(trial) * 7919 + 1;  // vary the schedule
  pintd::PintDetector det(opt);
  det.run([&] { sort_rec(v.data(), tmp.data(), v.size(), buggy); });

  const bool sorted = std::is_sorted(v.begin(), v.end());
  std::printf("  trial %d: output sorted: %-3s  race reported: %s\n", trial,
              sorted ? "yes" : "NO", det.reporter().any() ? "YES" : "no");
  return det.reporter().any();
}

}  // namespace

int main() {
  std::printf("correct merge (control):\n");
  bool any = false;
  for (int t = 0; t < 2; ++t) any |= run_once(false, t);
  if (any) {
    std::printf("unexpected false positive!\n");
    return 1;
  }

  std::printf("\nbuggy merge - output often LOOKS fine, the race is real:\n");
  int caught = 0;
  for (int t = 0; t < 3; ++t) caught += run_once(true, t);
  std::printf("\nPINT flagged the bug in %d/3 runs (determinacy-race "
              "detection is schedule-independent).\n", caught);
  return caught == 3 ? 0 : 1;
}
