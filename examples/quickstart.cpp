// Quickstart: write a tiny fork-join program, seed a determinacy race, and
// let PINT find it.
//
//   $ ./quickstart
//
// The program computes a parallel sum twice: once with correct partitioning
// (no race) and once with an off-by-one overlap between the halves (a
// write-write race PINT reports).

#include <cstdio>
#include <vector>

#include "pint_api.hpp"

namespace {

/// Sums v[lo, hi) into *out, splitting recursively. `shared_acc` makes both
/// halves accumulate into the SAME variable - the classic reduction bug: two
/// logically parallel strands write one memory location.
void sum_range(const std::vector<long>& v, std::size_t lo, std::size_t hi,
               long* out, bool shared_acc) {
  if (hi - lo <= 256) {
    long t = 0;
    pint::record_read(&v[lo], (hi - lo) * sizeof(long));
    for (std::size_t i = lo; i < hi; ++i) t += v[i];
    pint::record_read(out, sizeof(long));
    pint::record_write(out, sizeof(long));
    *out += t;
    return;
  }
  const std::size_t mid = lo + (hi - lo) / 2;
  long left = 0, right = 0;
  pint::rt::SpawnScope sc;
  sc.spawn("sum-left-half", [&, lo, mid] { sum_range(v, lo, mid, &left, shared_acc); });
  sum_range(v, mid, hi, shared_acc ? &left : &right, shared_acc);
  sc.sync();
  pint::record_read(&left, sizeof(long));
  pint::record_read(&right, sizeof(long));
  pint::record_write(out, sizeof(long));
  *out += shared_acc ? left : left + right;
}

long run_detected(const std::vector<long>& v, bool shared_acc, bool* racy) {
  pint::pintd::PintDetector::Options opt;
  opt.core_workers = 2;  // plus the three treap workers
  pint::pintd::PintDetector det(opt);
  long total = 0;
  det.run([&] { sum_range(v, 0, v.size(), &total, shared_acc); });
  *racy = det.reporter().any();
  std::printf("  strands=%llu  intervals=%llu  races=%llu\n",
              (unsigned long long)det.stats().strands.load(),
              (unsigned long long)(det.stats().read_intervals.load() +
                                   det.stats().write_intervals.load()),
              (unsigned long long)det.reporter().distinct_races());
  for (const auto& rec : det.reporter().records()) {
    if (rec.prev_tag == nullptr && rec.cur_tag == nullptr) continue;
    std::printf("  e.g. task '%s' (%s) races with task '%s' (%s)\n",
                rec.prev_tag ? rec.prev_tag : "<main>",
                rec.prev_write ? "write" : "read",
                rec.cur_tag ? rec.cur_tag : "<main>",
                rec.cur_write ? "write" : "read");
    break;
  }
  return total;
}

}  // namespace

int main() {
  std::vector<long> v(1 << 16);
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = long(i % 7) - 3;

  std::printf("correct partitioning:\n");
  bool racy = false;
  const long ok = run_detected(v, /*shared_acc=*/false, &racy);
  std::printf("  sum=%ld, race reported: %s\n\n", ok, racy ? "YES" : "no");
  if (racy) return 1;  // a false positive would be a bug

  std::printf("shared accumulator (seeded bug):\n");
  const long bad = run_detected(v, /*shared_acc=*/true, &racy);
  std::printf("  sum=%ld, race reported: %s\n", bad, racy ? "YES" : "no");
  return racy ? 0 : 1;  // the race must be caught
}
