// Compare the three race-detection systems on one of the paper's benchmark
// kernels - a miniature of the Figure-1 experiment you can point at any
// kernel and size:
//
//   $ ./compare_detectors [kernel] [scale] [workers]
//   $ ./compare_detectors mmul 4 4

#include <cstdio>
#include <cstdlib>
#include <string>

#include "pint_api.hpp"
#include "support/timer.hpp"

using namespace pint;

namespace {

kernels::KernelConfig make_cfg(double scale) {
  kernels::KernelConfig cfg;
  cfg.scale = scale;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "mmul";
  const double scale = argc > 2 ? std::atof(argv[2]) : 4.0;
  const int workers = argc > 3 ? std::atoi(argv[3]) : 4;

  std::printf("kernel=%s scale=%.2f workers=%d\n", name.c_str(), scale, workers);

  // Baseline: same binary, detection off (record_* calls early-out).
  double base_s = 0;
  {
    auto k = kernels::make_kernel(name, make_cfg(scale));
    k->prepare();
    rt::Scheduler::Options o;
    o.workers = workers;
    rt::Scheduler s(o);
    Timer t;
    s.run([&] { k->run(); });
    base_s = t.elapsed_s();
    std::printf("%-10s %8.3fs  (verified: %s)\n", "baseline", base_s,
                k->verify() ? "yes" : "NO");
  }
  {
    auto k = kernels::make_kernel(name, make_cfg(scale));
    k->prepare();
    stint::StintDetector det;
    det.run([&] { k->run(); });
    const double s = double(det.stats().total_ns.load()) * 1e-9;
    std::printf("%-10s %8.3fs  [%5.1fx]  races=%llu (sequential execution)\n",
                det.name(), s, s / base_s,
                (unsigned long long)det.reporter().distinct_races());
  }
  {
    auto k = kernels::make_kernel(name, make_cfg(scale));
    k->prepare();
    pintd::PintDetector::Options o;
    o.core_workers = workers;
    pintd::PintDetector det(o);
    det.run([&] { k->run(); });
    const double s = double(det.stats().total_ns.load()) * 1e-9;
    const auto st = det.stats().snapshot();
    std::printf(
        "%-10s %8.3fs  [%5.1fx]  races=%llu (%d core + 3 treap workers, "
        "%.0fx coalescing)\n",
        det.name(), s, s / base_s,
        (unsigned long long)det.reporter().distinct_races(), workers,
        st.coalesce_factor());
  }
  {
    auto k = kernels::make_kernel(name, make_cfg(scale));
    k->prepare();
    cracer::CracerDetector::Options o;
    o.workers = workers;
    cracer::CracerDetector det(o);
    det.run([&] { k->run(); });
    const double s = double(det.stats().total_ns.load()) * 1e-9;
    std::printf("%-10s %8.3fs  [%5.1fx]  races=%llu (per-access shadow memory)\n",
                det.name(), s, s / base_s,
                (unsigned long long)det.reporter().distinct_races());
  }
  return 0;
}
