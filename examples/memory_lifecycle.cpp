// Demonstrates the two memory-reuse hazards from paper §III-F and how PINT's
// asynchronous access history stays precise through both:
//
//  1. STACK REUSE: a spawned task's fiber stack is recycled for a later
//     (logically parallel) task; without return-node clearing + deferred
//     fiber release this would be a flood of false races.
//  2. HEAP REUSE: dfree() defers the real free() to the writer treap worker,
//     so the allocator cannot hand the block to a strand whose accesses
//     would be processed before the old owner's.
//
//   $ ./memory_lifecycle

#include <cstdio>
#include <vector>

#include "pint_api.hpp"

using namespace pint;

namespace {

/// Writes its own stack frame. Pooled fibers make successive tasks reuse
/// these exact addresses.
void stack_worker() {
  long frame[64] = {};
  record_write(&frame[0], sizeof(frame));
  for (int i = 0; i < 64; ++i) frame[i] = i;
  record_read(&frame[0], sizeof(frame));
  long sum = 0;
  for (int i = 0; i < 64; ++i) sum += frame[i];
  if (sum < 0) std::printf("impossible\n");  // keep `frame` alive
}

/// Allocates, writes, frees - repeatedly, so the allocator recycles blocks
/// across logically-parallel strands.
void heap_worker(int rounds) {
  for (int r = 0; r < rounds; ++r) {
    void* p = dmalloc(256);
    record_write(p, 256);
    auto* bytes = static_cast<unsigned char*>(p);
    for (int i = 0; i < 256; ++i) bytes[i] = (unsigned char)(i ^ r);
    record_read(p, 256);
    dfree(p);
  }
}

}  // namespace

int main() {
  pintd::PintDetector::Options opt;
  opt.core_workers = 3;
  pintd::PintDetector det(opt);

  det.run([] {
    // Phase 1: many short-lived parallel tasks writing their own stacks.
    {
      rt::SpawnScope sc;
      for (int i = 0; i < 200; ++i) sc.spawn([] { stack_worker(); });
      sc.sync();
    }
    // Phase 2: sequential task pairs that definitely share a pooled fiber.
    {
      rt::SpawnScope sc;
      for (int i = 0; i < 50; ++i) {
        sc.spawn([] { stack_worker(); });
        sc.sync();
      }
    }
    // Phase 3: parallel heap churn through dmalloc/dfree.
    {
      rt::SpawnScope sc;
      for (int i = 0; i < 8; ++i) sc.spawn([] { heap_worker(100); });
      sc.sync();
    }
  });

  std::printf("strands processed : %llu\n",
              (unsigned long long)det.stats().strands.load());
  std::printf("false races       : %llu (must be 0)\n",
              (unsigned long long)det.reporter().distinct_races());
  return det.reporter().any() ? 1 : 0;
}
